(* Wi-Fi ACK aggregation: the motivating workload from the paper's intro.

   Link-layer aggregation on Wi-Fi releases ACKs in bursts on a ~60 ms
   clock (Goyal et al., NSDI 2020 measured tens of milliseconds).  A
   latency-sensitive video call (PCC Vivace here) sharing the downlink
   with a wired peer starves, because its delay-gradient measurements are
   quantized to the aggregation period.

   Run with: dune exec examples/wifi_ack_aggregation.exe *)

let () =
  let rate = Sim.Units.mbps 120. in
  let rm = Sim.Units.ms 60. in
  let aggregation_period = Sim.Units.ms 60. in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm ~duration:60.
         [
           (* The Wi-Fi client: ACKs leave only on the aggregation clock. *)
           Sim.Network.flow
             ~ack_policy:(Sim.Network.Aggregate { period = aggregation_period })
             (Pcc_vivace.make ~params:{ Pcc_vivace.default_params with seed = 3 } ());
           (* The wired client. *)
           Sim.Network.flow (Pcc_vivace.make ());
         ])
  in
  let x1 = Sim.Network.throughput net ~flow:0 ~t0:10. ~t1:60. in
  let x2 = Sim.Network.throughput net ~flow:1 ~t0:10. ~t1:60. in
  Printf.printf "wifi flow (aggregated ACKs): %6.2f Mbit/s\n" (Sim.Units.to_mbps x1);
  Printf.printf "wired flow:                  %6.2f Mbit/s\n" (Sim.Units.to_mbps x2);
  Printf.printf "starvation ratio: %.1f:1\n" (x2 /. Float.max x1 1.);
  (* The mechanism: the wifi flow's RTT samples only move in 60 ms steps. *)
  let rtts =
    Sim.Series.window_values (Sim.Flow.rtt_series (Sim.Network.flows net).(0))
      ~t0:30. ~t1:60.
  in
  if Array.length rtts > 0 then
    Printf.printf "wifi flow RTT quantiles: p10=%.0f ms, p90=%.0f ms\n"
      (Sim.Units.to_ms (Sim.Stats.percentile rtts 10.))
      (Sim.Units.to_ms (Sim.Stats.percentile rtts 90.))
