(* Fault injection: a mid-run link blackout, watched by the runtime
   invariant monitor.

   A Reno and a BBR flow share a 12 Mbit/s bottleneck.  At t = 8 s the
   link goes completely dark for 2 s (a declarative Fault.Link_blackout
   — it compiles into the link's piecewise service rate, so the queue
   holds its packets and every in-flight ACK stops).  Both flows blow
   their retransmission timers, collapse their windows, and must find
   their way back once the link returns; the monitor audits the
   simulator's own conservation laws the whole time.

   Run with: dune exec examples/blackout_recovery.exe *)

let rate = Sim.Units.mbps 12.
let blackout_start = 8.
let blackout_end = 10.
let duration = 20.

let () =
  let faults =
    Sim.Fault.plan
      [ Sim.Fault.Link_blackout { t0 = blackout_start; t1 = blackout_end } ]
  in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer:(64 * 1500)
         ~rm:0.04 ~seed:1 ~faults ~monitor_period:0.05 ~duration
         [ Sim.Network.flow (Reno.make ()); Sim.Network.flow (Bbr.make ()) ])
  in
  let delivered flow t =
    match Sim.Series.value_at (Sim.Flow.delivered_series flow) t with
    | Some v -> v
    | None -> 0.
  in
  Printf.printf "12 Mbit/s link, blackout on [%.0f s, %.0f s]\n\n" blackout_start
    blackout_end;
  Printf.printf "%-6s %-16s %-16s %-16s %s\n" "flow" "before blackout"
    "during blackout" "after blackout" "lost bytes / probes";
  Array.iter
    (fun flow ->
      let phase t0 t1 = (delivered flow t1 -. delivered flow t0) /. (t1 -. t0) in
      Printf.printf "%-6s %-16s %-16s %-16s %d / %d\n"
        (if Sim.Flow.id flow = 0 then "reno" else "bbr")
        (Experiments.Report.mbps (phase 2. blackout_start))
        (Experiments.Report.mbps (phase (blackout_start +. 0.3) blackout_end))
        (Experiments.Report.mbps (phase (blackout_end +. 1.) duration))
        (Sim.Flow.lost_bytes flow) (Sim.Flow.stall_probes flow))
    (Sim.Network.flows net);
  let monitor_ok =
    match Sim.Network.invariant net with
    | None -> true
    | Some inv ->
        Printf.printf "\ninvariant monitor: %s\n" (Sim.Invariant.report inv);
        Sim.Invariant.ok inv
  in
  Printf.printf
    "\nBoth flows starve while the link is dark, then climb back — the\n\
     blackout stresses the protocols, never the simulator's bookkeeping.\n";
  (* A monitored example is a check, not just a demo: violations must be
     visible to CI, so they set the exit status. *)
  if not monitor_ok then exit 1
