(* Bring your own CCA: implement the Cca.t interface from scratch and put
   the new algorithm through the paper's analysis pipeline.

   The toy CCA below is "AIAD-on-delay": add a packet per RTT while the
   measured queueing delay is under a target, subtract one when over.  It
   is delay-convergent — so Theorem 1 applies to it, and the convergence
   measurement below exhibits the bounded band the theorem needs.

   Run with: dune exec examples/custom_cca.exe *)

let make_aiad ?(target_ms = 5.) () =
  let mss = float_of_int Cca.default_mss in
  let cwnd = ref (4. *. mss) in
  let base_rtt = ref infinity in
  let epoch = ref 0. in
  let on_ack (a : Cca.ack_info) =
    if a.rtt < !base_rtt then base_rtt := a.rtt;
    if a.now -. !epoch >= a.rtt then begin
      epoch := a.now;
      let queueing = a.rtt -. !base_rtt in
      if queueing < target_ms /. 1000. then cwnd := !cwnd +. mss
      else cwnd := Float.max (!cwnd -. mss) (2. *. mss)
    end
  in
  {
    Cca.name = "aiad-on-delay";
    on_ack;
    on_loss =
      (fun (l : Cca.loss_info) ->
        if l.kind = `Timeout then cwnd := 2. *. mss);
    on_send = (fun _ -> ());
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> !cwnd);
    pacing_rate = (fun () -> None);
    inspect = (fun () -> [ ("cwnd", !cwnd); ("base_rtt", !base_rtt) ]);
  }

let () =
  (* 1. Is it delay-convergent?  Measure the band on a few rates. *)
  let rates = List.map Sim.Units.mbps [ 4.; 16.; 64. ] in
  List.iter
    (fun rate ->
      let m =
        Core.Convergence.measure ~make_cca:(fun () -> make_aiad ()) ~rate ~rm:0.04
          ~duration:20. ()
      in
      Printf.printf
        "C=%5.1f Mbit/s: converged=%b T=%4.1fs band=[%.2f, %.2f] ms delta=%.2f ms \
         efficiency=%.2f\n"
        (Sim.Units.to_mbps rate) m.Core.Convergence.converged
        m.Core.Convergence.t_converge
        (Sim.Units.to_ms m.Core.Convergence.d_min)
        (Sim.Units.to_ms m.Core.Convergence.d_max)
        (Sim.Units.to_ms m.Core.Convergence.delta)
        m.Core.Convergence.efficiency)
    rates;
  (* 2. So the paper predicts starvation once jitter exceeds 2*delta.
        Check with a 2-flow duel where flow 1's path jitters by 12 ms. *)
  let d = 0.012 in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant (Sim.Units.mbps 32.)) ~rm:0.04
         ~duration:40.
         [
           Sim.Network.flow
             ~jitter:(Sim.Jitter.Trace (fun t -> if t < 1. then 0. else d))
             ~jitter_bound:d
             (make_aiad ());
           Sim.Network.flow (make_aiad ());
         ])
  in
  let x1 = Sim.Network.throughput net ~flow:0 ~t0:20. ~t1:40. in
  let x2 = Sim.Network.throughput net ~flow:1 ~t0:20. ~t1:40. in
  Printf.printf "with %.0f ms jitter on flow 1: %5.2f vs %5.2f Mbit/s (ratio %.1f)\n"
    (Sim.Units.to_ms d) (Sim.Units.to_mbps x1) (Sim.Units.to_mbps x2)
    (x2 /. Float.max x1 1.)
