(* Quickstart: simulate two Copa flows sharing a bottleneck, give one of
   them a jittery ACK path, and measure what happens to fairness.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let rate = Sim.Units.mbps 24. in
  let rm = Sim.Units.ms 40. in

  (* A network is a list of flow specs plus a bottleneck description.  The
     second flow's ACK path carries up to 5 ms of non-congestive delay —
     the paper's section-3 delay element. *)
  let config =
    Sim.Network.config
      ~rate:(Sim.Link.Constant rate)
      ~rm ~duration:30.
      [
        Sim.Network.flow (Copa.make ());
        Sim.Network.flow
          ~jitter:(Sim.Jitter.Uniform { lo = 0.; hi = 0.005 })
          ~jitter_bound:0.005 (Copa.make ());
      ]
  in
  let net = Sim.Network.run_config config in

  (* Per-flow throughput over the post-warmup window, plus fairness. *)
  let report = Core.Fairness.of_network net () in
  Array.iteri
    (fun i x ->
      Printf.printf "flow %d throughput: %6.2f Mbit/s\n" i (Sim.Units.to_mbps x))
    report.Core.Fairness.throughputs;
  Printf.printf "throughput ratio: %.2f   jain index: %.3f   utilization: %.2f\n"
    report.Core.Fairness.ratio report.Core.Fairness.jain
    report.Core.Fairness.utilization;

  (* Every flow records an RTT trace you can inspect. *)
  let rtt = Sim.Flow.rtt_series (Sim.Network.flows net).(0) in
  match Sim.Series.min_max_in rtt ~t0:10. ~t1:30. with
  | Some (lo, hi) ->
      Printf.printf "flow 0 converged RTT band: [%.2f, %.2f] ms\n"
        (Sim.Units.to_ms lo) (Sim.Units.to_ms hi)
  | None -> print_endline "no RTT samples"
