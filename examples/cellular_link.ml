(* Cellular-style trace replay: the Mahimahi workflow.

   The paper's §2.1 names cellular links (tens of milliseconds of delay
   variation) among the jitter sources that defeat delay-convergent CCAs.
   This example replays a synthetic bursty opportunity trace — the same
   abstraction Mahimahi's mm-link uses for recorded cellular traces — and
   compares how the CCA families fare on it.

   Run with: dune exec examples/cellular_link.exe *)

let () =
  let mean_rate = Sim.Units.mbps 12. in
  let rm = Sim.Units.ms 40. in
  let run name make_cca =
    (* A fresh but identically-seeded trace per run: same link for all. *)
    let trace =
      Sim.Link.cellular_trace ~rng:(Sim.Rng.create ~seed:11) ~period:2. ~mean_rate
        ~burstiness:5. ()
    in
    let net =
      Sim.Network.run_config
        (Sim.Network.config ~rate:trace ~buffer:(120 * 1500) ~rm ~duration:30.
           [ Sim.Network.flow (make_cca ()) ])
    in
    let x = (Sim.Network.throughputs net ()).(0) in
    let f = (Sim.Network.flows net).(0) in
    let rtts = Sim.Series.window_values (Sim.Flow.rtt_series f) ~t0:10. ~t1:30. in
    let p95 =
      if Array.length rtts = 0 then nan else Sim.Stats.percentile rtts 95.
    in
    Printf.printf "%-8s  throughput %6.2f Mbit/s (util %4.2f)   p95 RTT %6.1f ms\n"
      name (Sim.Units.to_mbps x)
      (x /. mean_rate)
      (Sim.Units.to_ms p95)
  in
  Printf.printf "Synthetic cellular link: %.0f Mbit/s average, 5x bursty, Rm = 40 ms\n\n"
    (Sim.Units.to_mbps mean_rate);
  run "reno" (fun () -> Reno.make ());
  run "cubic" (fun () -> Cubic.make ());
  run "vegas" (fun () -> Vegas.make ());
  run "copa" (fun () -> Copa.make ());
  run "ledbat" (fun () -> Ledbat.make ());
  run "bbr" (fun () -> Bbr.make ());
  print_newline ();
  print_endline
    "The burst structure is exactly the non-congestive jitter of the paper's\n\
     sec. 2.1: delay-convergent CCAs leave throughput on the table or inflate\n\
     delay, depending on which side of their delay band the bursts land."
