(* Definition 2, drawn.

   The paper defines s-fairness as an *eventual* property: there must be a
   finite time after which the faster flow's cumulative throughput stays
   under s times the slower one's.  This example plots that ratio
   trajectory for two scenarios:

   - two identical Reno flows: the ratio dives toward 1 and stays there —
     the network is s-fair for small s;
   - two Copa flows with a poisoned min-RTT on one path (the sec. 5.1
     jitter pattern): the ratio settles well above s and never comes back
     down — the network is not s-fair for this s, however long it runs.

   Run with: dune exec examples/fairness_trajectory.exe *)

let points net =
  let traj = Core.Fairness.ratio_trajectory net ~dt:0.5 in
  Array.to_list
    (Array.map2
       (fun t v -> (t, Float.min v 20.))
       (Sim.Series.times traj) (Sim.Series.values traj))

let () =
  let rate = Sim.Units.mbps 24. in
  let duration = 40. in
  let reno_net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate)
         ~buffer:(Sim.Units.bdp_bytes ~rate ~rtt:0.04)
         ~rm:0.04 ~duration
         [ Sim.Network.flow (Reno.make ()); Sim.Network.flow (Reno.make ()) ])
  in
  let poison t = if t < 0.05 then 0. else 0.005 in
  let copa_net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.04 ~duration
         [
           Sim.Network.flow ~jitter:(Sim.Jitter.Trace poison) ~jitter_bound:0.005
             (Copa.make ());
           Sim.Network.flow (Copa.make ());
         ])
  in
  print_string
    (Experiments.Ascii_plot.render
       ~title:
         "Definition 2: cumulative throughput ratio over time (capped at 20)"
       ~x_label:"time (s)"
       [ ("reno/reno (converges)", points reno_net);
         ("copa w/ poisoned minRTT (stays unfair)", points copa_net) ]);
  (match Core.Fairness.s_fair_from reno_net ~dt:0.5 ~s:2. with
  | Some t -> Printf.printf "reno/reno is 2-fair from t = %.1f s\n" t
  | None -> print_endline "reno/reno never became 2-fair");
  match Core.Fairness.s_fair_from copa_net ~dt:0.5 ~s:2. with
  | Some t -> Printf.printf "poisoned copa claims 2-fairness from t = %.1f s (!)\n" t
  | None -> print_endline "poisoned copa never becomes 2-fair: starvation"
