(* Adversarial delay emulation: Theorem 2 as an executable demo.

   Record how Vegas behaves alone on a 4 Mbit/s link, then replay exactly
   that delay trajectory — using only a bounded non-congestive delay
   element — on links 10x, 100x and 1000x faster.  The deterministic CCA
   cannot tell the difference and keeps sending at ~4 Mbit/s, so the fast
   links sit idle: efficient delay-convergent CCAs must keep more queueing
   delay than the network's jitter bound (paper, Theorem 2 / sec. 6.1).

   Run with: dune exec examples/adversarial_link.exe *)

let () =
  let outcome =
    Core.Theorem2.run
      ~make_cca:(fun () -> Vegas.make ())
      ~rate:(Sim.Units.mbps 4.) ~rm:0.04
      ~multipliers:[ 10.; 100.; 1000. ]
      ~duration:30. ()
  in
  let base = outcome.Core.Theorem2.base in
  Printf.printf "reference run:  C = %s, converged band [%.1f, %.1f] ms\n"
    (Experiments.Report.mbps base.Core.Convergence.rate)
    (Sim.Units.to_ms base.Core.Convergence.d_min)
    (Sim.Units.to_ms base.Core.Convergence.d_max);
  Printf.printf "jitter budget D = %.2f ms\n\n" (Sim.Units.to_ms outcome.Core.Theorem2.big_d);
  Printf.printf "%-14s %-14s %-12s %s\n" "link rate" "throughput" "utilization"
    "jitter-bound violations";
  List.iter
    (fun (p : Core.Theorem2.point) ->
      Printf.printf "%-14s %-14s %-12.4f %d\n"
        (Experiments.Report.mbps p.fast_rate)
        (Experiments.Report.mbps p.throughput)
        p.utilization p.jitter_violations)
    outcome.Core.Theorem2.points
