(* BBR RTT-unfairness duel (the paper's section-5.2 scenario).

   Two BBR flows share 120 Mbit/s; one has a 40 ms propagation RTT, the
   other 80 ms.  A couple of milliseconds of ACK jitter pushes both into
   cwnd-limited mode, whose fixed point gives each flow
   cwnd_i = 2 C Rm_i / n + alpha — so the small-RTT flow ends up with an
   order of magnitude less throughput.

   Run with: dune exec examples/bbr_rtt_duel.exe *)

let () =
  let rate = Sim.Units.mbps 120. in
  let jitter = Sim.Jitter.Uniform { lo = 0.; hi = 0.002 } in
  let mk seed = Bbr.make ~params:{ Bbr.default_params with seed } () in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.04 ~duration:60.
         [
           Sim.Network.flow ~jitter ~jitter_bound:0.002 (mk 1);
           Sim.Network.flow ~extra_rm:0.04 ~jitter ~jitter_bound:0.002 (mk 2);
         ])
  in
  let x1 = Sim.Network.throughput net ~flow:0 ~t0:10. ~t1:60. in
  let x2 = Sim.Network.throughput net ~flow:1 ~t0:10. ~t1:60. in
  Printf.printf "BBR flow with Rm=40 ms: %6.2f Mbit/s\n" (Sim.Units.to_mbps x1);
  Printf.printf "BBR flow with Rm=80 ms: %6.2f Mbit/s\n" (Sim.Units.to_mbps x2);
  Printf.printf "ratio: %.1f:1 (paper observed ~13:1 on Mahimahi)\n"
    (Float.max x1 x2 /. Float.min x1 x2);
  (* Show the cwnd-limited equilibrium the paper derives: RTT ~ 2 Rm + n*alpha/C. *)
  let flows = Sim.Network.flows net in
  Array.iter
    (fun f ->
      let rtts = Sim.Series.window_values (Sim.Flow.rtt_series f) ~t0:40. ~t1:60. in
      if Array.length rtts > 0 then
        Printf.printf "flow %d median RTT in steady state: %.1f ms\n" (Sim.Flow.id f)
          (Sim.Units.to_ms (Sim.Stats.median rtts)))
    flows
