type t = { key : string; thunk : unit -> bytes }

let create ~key f = { key; thunk = (fun () -> Marshal.to_bytes (f ()) []) }
let key t = t.key
let force t = t.thunk ()
let decode b = Marshal.from_bytes b 0
