type t = {
  dir : string;
  version : string;
  mutable hits : int;
  mutable misses : int;
}

(* What one cache file holds.  The key is stored redundantly and checked on
   read: a digest collision (or a hand-edited file) degrades to a miss
   instead of silently decoding the wrong experiment's bytes. *)
type entry = { e_key : string; e_stdout : string; e_payload : bytes }

let default_version () =
  match Digest.file Sys.executable_name with
  | d -> Digest.to_hex d
  | exception Sys_error _ -> "unversioned"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(dir = "_cache") ?version () =
  let version = match version with Some v -> v | None -> default_version () in
  mkdir_p dir;
  { dir; version; hits = 0; misses = 0 }

let path t ~key =
  let digest = Digest.to_hex (Digest.string (t.version ^ "\x00" ^ key)) in
  Filename.concat t.dir (digest ^ ".job")

let find t ~key =
  let miss () =
    t.misses <- t.misses + 1;
    None
  in
  match In_channel.with_open_bin (path t ~key) In_channel.input_all with
  | exception Sys_error _ -> miss ()
  | raw ->
      (* 16-byte digest prefix over the marshalled entry: a truncated,
         torn or bit-flipped file fails here and degrades to a miss
         before Marshal ever parses it. *)
      if String.length raw < 16 then miss ()
      else begin
        let blob = String.sub raw 16 (String.length raw - 16) in
        if Digest.string blob <> String.sub raw 0 16 then miss ()
        else
          match (Marshal.from_string blob 0 : entry) with
          | exception _ -> miss ()
          | e ->
              if e.e_key = key then begin
                t.hits <- t.hits + 1;
                Some (e.e_stdout, e.e_payload)
              end
              else miss ()
      end

(* Crash-atomic write: temp + fsync + rename, then fsync the directory so
   the rename survives a crash.  A SIGKILL at any instant leaves either no
   entry or a complete one — the property the resume machinery relies on. *)
let write_atomic path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length content in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write_substring fd content !written (n - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  try
    let dfd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close dfd)
      (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())
  with Unix.Unix_error _ -> ()

let store t ~key ~stdout ~payload =
  let blob =
    Marshal.to_string { e_key = key; e_stdout = stdout; e_payload = payload } []
  in
  write_atomic (path t ~key) (Digest.string blob ^ blob)

let hits t = t.hits
let misses t = t.misses
let dir t = t.dir
