type t = {
  dir : string;
  version : string;
  mutable hits : int;
  mutable misses : int;
}

(* What one cache file holds.  The key is stored redundantly and checked on
   read: a digest collision (or a hand-edited file) degrades to a miss
   instead of silently decoding the wrong experiment's bytes. *)
type entry = { e_key : string; e_stdout : string; e_payload : bytes }

let default_version () =
  match Digest.file Sys.executable_name with
  | d -> Digest.to_hex d
  | exception Sys_error _ -> "unversioned"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(dir = "_cache") ?version () =
  let version = match version with Some v -> v | None -> default_version () in
  mkdir_p dir;
  { dir; version; hits = 0; misses = 0 }

let path t ~key =
  let digest = Digest.to_hex (Digest.string (t.version ^ "\x00" ^ key)) in
  Filename.concat t.dir (digest ^ ".job")

let find t ~key =
  let miss () =
    t.misses <- t.misses + 1;
    None
  in
  match In_channel.with_open_bin (path t ~key) In_channel.input_all with
  | exception Sys_error _ -> miss ()
  | raw -> (
      match (Marshal.from_string raw 0 : entry) with
      | exception _ -> miss ()
      | e ->
          if e.e_key = key then begin
            t.hits <- t.hits + 1;
            Some (e.e_stdout, e.e_payload)
          end
          else miss ())

let store t ~key ~stdout ~payload =
  let tmp = Filename.temp_file ~temp_dir:t.dir "store" ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc
        (Marshal.to_string { e_key = key; e_stdout = stdout; e_payload = payload } []));
  Sys.rename tmp (path t ~key)

let hits t = t.hits
let misses t = t.misses
let dir t = t.dir
