(** A named unit of pure simulation work.

    A job couples a stable key with a thunk whose result is serializable
    with [Marshal] (no closures, no custom blocks): floats, ints, strings,
    records, lists and arrays of those.  The pool transports results
    across a process boundary as marshalled bytes, so the same
    representation is used even when a job runs in-process — which is what
    makes serial and parallel executions byte-identical and lets results
    be cached on disk.

    Keys must be unique within one {!Pool.run} call and stable across
    program runs: the on-disk cache addresses entries by
    [digest (code version, key)], so a key must encode every parameter
    that affects the result (seed, duration, quick flag, scenario...). *)

type t

val create : key:string -> (unit -> 'a) -> t
(** [create ~key thunk] names a unit of work.  [thunk]'s result must be
    marshallable; it is serialized with [Marshal.to_bytes _ []] when the
    job runs. *)

val key : t -> string

val force : t -> bytes
(** Run the thunk now, in this process, and return the marshalled
    result.  Any exception the thunk raises passes through. *)

val decode : bytes -> 'a
(** Deserialize a payload produced by {!force} (directly or via the pool
    or cache).  The caller asserts the result type: decoding at a type
    other than the one the job produced is undefined behaviour, which is
    why cache keys are versioned by a digest of the executable. *)
