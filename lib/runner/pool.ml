type stats = {
  jobs : int;
  cache_hits : int;
  executed : int;
  respawns : int;
  retried : int;
  quarantined : int;
  resumed : int;
}

type backend = [ `Fork | `Domain ]

exception Job_failed of { key : string; reason : string }
exception Heap_ceiling_exceeded of { limit : int; reached : int }

let () =
  Printexc.register_printer (function
    | Heap_ceiling_exceeded { limit; reached } ->
        Some
          (Printf.sprintf
             "Pool.Heap_ceiling_exceeded(limit=%d words, reached=%d words)"
             limit reached)
    | _ -> None)

let default_workers () = Domain.recommended_domain_count ()

(* Major-GC alarm tripping a hard heap ceiling.  Raising from the alarm
   unwinds whatever allocation site triggered the collection, which is
   only safe to do in a disposable forked worker — the job is abandoned
   as a deterministic failure (no retry), the worker keeps serving. *)
let with_heap_ceiling limit f =
  match limit with
  | None -> f ()
  | Some limit ->
      let alarm =
        Gc.create_alarm (fun () ->
            let reached = (Gc.quick_stat ()).Gc.heap_words in
            if reached > limit then
              raise (Heap_ceiling_exceeded { limit; reached }))
      in
      Fun.protect ~finally:(fun () -> Gc.delete_alarm alarm) f

(* ------------------------------------------------------------------ *)
(* Length-prefixed Marshal frames over pipes                           *)
(* ------------------------------------------------------------------ *)

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (pos + n) (len - n)
  end

let write_frame fd payload =
  let hdr = Bytes.create 8 in
  Bytes.set_int64_be hdr 0 (Int64.of_int (Bytes.length payload));
  write_all fd hdr 0 8;
  write_all fd payload 0 (Bytes.length payload)

(* [false] on EOF or a short read (a worker that died mid-frame). *)
let rec read_all fd buf pos len =
  len = 0
  ||
  match Unix.read fd buf pos len with
  | 0 -> false
  | n -> read_all fd buf (pos + n) (len - n)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all fd buf pos len

let read_frame fd =
  let hdr = Bytes.create 8 in
  if not (read_all fd hdr 0 8) then None
  else begin
    let len = Int64.to_int (Bytes.get_int64_be hdr 0) in
    if len < 0 || len > 1 lsl 30 then None
    else
      let buf = Bytes.create len in
      if read_all fd buf 0 len then Some buf else None
  end

(* ------------------------------------------------------------------ *)
(* Per-job stdout capture                                              *)
(* ------------------------------------------------------------------ *)

(* Redirect fd 1 to a temp file around [f] so a job's prints can be
   replayed later in job order.  Works identically in-process and in a
   worker, which is what keeps -j 1 and -j N byte-identical. *)
let with_stdout_captured f =
  flush Stdlib.stdout;
  let path = Filename.temp_file "ccstarve_job" ".out" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let result = try Ok (f ()) with e -> Error e in
  flush Stdlib.stdout;
  Unix.dup2 saved Unix.stdout;
  Unix.close saved;
  let out =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error _ -> ""
  in
  (try Sys.remove path with Sys_error _ -> ());
  (out, result)

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

type response = { r_idx : int; r_out : string; r_res : (bytes, string) result }

let worker_loop ?heap_ceiling jobs req_r resp_w : unit =
  let rec loop () =
    match read_frame req_r with
    | None -> Unix._exit 0 (* parent closed the request pipe: done *)
    | Some frame ->
        let idx : int = Marshal.from_bytes frame 0 in
        let out, res =
          with_stdout_captured (fun () ->
              with_heap_ceiling heap_ceiling (fun () -> Job.force jobs.(idx)))
        in
        let r_res =
          match res with
          | Ok payload -> Ok payload
          | Error e -> Error (Printexc.to_string e)
        in
        write_frame resp_w (Marshal.to_bytes { r_idx = idx; r_out = out; r_res } []);
        loop ()
  in
  try loop () with _ -> Unix._exit 1

(* ------------------------------------------------------------------ *)
(* Parent side                                                         *)
(* ------------------------------------------------------------------ *)

type worker = {
  pid : int;
  to_w : Unix.file_descr;
  from_w : Unix.file_descr;
  mutable current : int option; (* index of the in-flight job *)
  mutable started : float;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run_serial ?cache ?(on_done = fun _ -> ()) jobs =
  let hits = ref 0 and executed = ref 0 in
  let results =
    List.map
      (fun j ->
        let key = Job.key j in
        match Option.bind cache (fun c -> Cache.find c ~key) with
        | Some (out, payload) ->
            incr hits;
            on_done j;
            (out, Ok payload)
        | None -> (
            let out, res = with_stdout_captured (fun () -> Job.force j) in
            match res with
            | Error e -> (out, Error (Printexc.to_string e))
            | Ok payload ->
                incr executed;
                Option.iter
                  (fun c -> Cache.store c ~key ~stdout:out ~payload)
                  cache;
                on_done j;
                (out, Ok payload)))
      jobs
  in
  ( results,
    {
      jobs = List.length jobs;
      cache_hits = !hits;
      executed = !executed;
      respawns = 0;
      retried = 0;
      quarantined = 0;
      resumed = 0;
    } )

(* ------------------------------------------------------------------ *)
(* Domain-based backend                                                *)
(* ------------------------------------------------------------------ *)

(* Shared-memory parallelism for jobs that are *silent* on stdout: fd
   redirection is process-global, so per-job stdout capture cannot work
   across concurrent domains — fresh jobs report "" and the cache records
   "".  Census-style jobs print nothing (their tables are built by the
   merge in the parent), which is what keeps -j 1, fork and domain runs
   byte-identical.  Crash isolation, per-attempt timeouts and heap
   ceilings remain fork-only — a domain that dies takes the process with
   it — so [`Fork] stays the fallback for untrusted jobs.

   Each [results] slot is written by exactly one domain and read by the
   parent only after [Domain.join], which establishes the happens-before
   edge; the only shared mutable cell during the run is the [Atomic] work
   counter. *)
let run_domains ~workers ?cache ?(on_done = fun _ -> ()) jobs_list =
  let jobs = Array.of_list jobs_list in
  let n = Array.length jobs in
  let results : (bytes, string) result option array = Array.make n None in
  let outs = Array.make n "" in
  let hits = ref 0 in
  let todo = ref [] in
  for i = n - 1 downto 0 do
    match Option.bind cache (fun c -> Cache.find c ~key:(Job.key jobs.(i))) with
    | Some (out, payload) ->
        results.(i) <- Some (Ok payload);
        outs.(i) <- out;
        incr hits;
        on_done jobs.(i)
    | None -> todo := i :: !todo
  done;
  let todo = Array.of_list !todo in
  let next = Atomic.make 0 in
  let work () =
    let rec loop () =
      let k = Atomic.fetch_and_add next 1 in
      if k < Array.length todo then begin
        let i = todo.(k) in
        results.(i) <-
          Some
            (try Ok (Job.force jobs.(i))
             with e -> Error (Printexc.to_string e));
        loop ()
      end
    in
    loop ()
  in
  let helpers =
    Array.init
      (max 0 (min (workers - 1) (Array.length todo - 1)))
      (fun _ -> Domain.spawn work)
  in
  work ();
  Array.iter Domain.join helpers;
  (* Merge parent-side, in job order: cache stores and completion
     callbacks happen in the same deterministic order as a serial run. *)
  let executed = ref 0 in
  Array.iter
    (fun i ->
      match results.(i) with
      | Some (Ok payload) ->
          incr executed;
          Option.iter
            (fun c -> Cache.store c ~key:(Job.key jobs.(i)) ~stdout:"" ~payload)
            cache;
          on_done jobs.(i)
      | Some (Error _) | None -> ())
    todo;
  ( Array.to_list (Array.mapi (fun i r -> (outs.(i), Option.get r)) results),
    {
      jobs = n;
      cache_hits = !hits;
      executed = !executed;
      respawns = 0;
      retried = 0;
      quarantined = 0;
      resumed = 0;
    } )

let run_parallel ~workers ~timeout ?cache ~max_attempts ?heap_ceiling
    ?(on_done = fun _ -> ()) jobs_list =
  let jobs = Array.of_list jobs_list in
  let n = Array.length jobs in
  let results : (string * (bytes, string) result) option array =
    Array.make n None
  in
  let hits = ref 0 and executed = ref 0 and respawns = ref 0 in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    match Option.bind cache (fun c -> Cache.find c ~key:(Job.key jobs.(i))) with
    | Some (out, payload) ->
        results.(i) <- Some (out, Ok payload);
        incr hits;
        on_done jobs.(i)
    | None -> Queue.add i queue
  done;
  let remaining = ref (Queue.length queue) in
  let finish () =
    ( Array.to_list (Array.map Option.get results),
      {
        jobs = n;
        cache_hits = !hits;
        executed = !executed;
        respawns = !respawns;
        retried = 0;
        quarantined = 0;
        resumed = 0;
      } )
  in
  if !remaining = 0 then finish ()
  else begin
    let n_workers = max 1 (min workers !remaining) in
    let attempts = Array.make n 0 in
    (* Writes to a dead worker must surface as EPIPE, not kill the parent. *)
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
    in
    let pool = ref [] in
    let spawn () =
      (* Children must not inherit other workers' parent-side pipe ends:
         a surviving copy of a request write-end would keep that worker
         from ever seeing EOF at shutdown. *)
      let parent_fds = List.concat_map (fun w -> [ w.to_w; w.from_w ]) !pool in
      let req_r, req_w = Unix.pipe () in
      let resp_r, resp_w = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
          List.iter close_quiet parent_fds;
          Unix.close req_w;
          Unix.close resp_r;
          worker_loop ?heap_ceiling jobs req_r resp_w;
          Unix._exit 1
      | pid ->
          Unix.close req_r;
          Unix.close resp_w;
          let w = { pid; to_w = req_w; from_w = resp_r; current = None; started = 0. } in
          pool := w :: !pool;
          w
    in
    let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> () in
    let kill_worker w =
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      close_quiet w.to_w;
      close_quiet w.from_w;
      pool := List.filter (fun w' -> w' != w) !pool;
      reap w.pid
    in
    let cleanup () =
      List.iter (fun w -> try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ()) !pool;
      List.iter
        (fun w ->
          close_quiet w.to_w;
          close_quiet w.from_w;
          reap w.pid)
        !pool;
      pool := [];
      match old_sigpipe with
      | Some b -> Sys.set_signal Sys.sigpipe b
      | None -> ()
    in
    Fun.protect ~finally:cleanup (fun () ->
        let slots = Array.init n_workers (fun _ -> spawn ()) in
        (* A failed job records an [Error] in its slot and the matrix
           keeps going — the caller decides whether one failure poisons
           the whole run ({!run}) or gets retried/quarantined
           ({!Supervise}). *)
        let fail ?(out = "") i reason =
          results.(i) <- Some (out, Error reason);
          decr remaining
        in
        let rec dispatch k =
          match Queue.take_opt queue with
          | None -> ()
          | Some i ->
              let w = slots.(k) in
              attempts.(i) <- attempts.(i) + 1;
              w.current <- Some i;
              w.started <- Unix.gettimeofday ();
              (try write_frame w.to_w (Marshal.to_bytes i [])
               with Unix.Unix_error _ -> crash k "request pipe closed")
        and crash k reason =
          let w = slots.(k) in
          incr respawns;
          let job = w.current in
          w.current <- None;
          kill_worker w;
          (match job with
          | Some i ->
              if attempts.(i) >= max_attempts then fail i reason
              else Queue.add i queue
          | None -> ());
          slots.(k) <- spawn ();
          dispatch k
        in
        for k = 0 to n_workers - 1 do
          dispatch k
        done;
        while !remaining > 0 do
          Array.iteri
            (fun k w ->
              if w.current = None && not (Queue.is_empty queue) then dispatch k)
            slots;
          (match timeout with
          | Some tmo ->
              let now = Unix.gettimeofday () in
              Array.iteri
                (fun k w ->
                  if w.current <> None && now -. w.started > tmo then
                    crash k (Printf.sprintf "timed out after %.1f s" tmo))
                slots
          | None -> ());
          (* A timeout (or crash) that exhausted a job's attempts may
             have just recorded the last outstanding result. *)
          if !remaining > 0 then begin
          let busy =
            Array.to_list slots |> List.filter (fun w -> w.current <> None)
          in
          assert (busy <> []);
          let fds = List.map (fun w -> w.from_w) busy in
          match Unix.select fds [] [] 0.25 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | [], _, _ -> ()
          | fd :: _, _, _ -> (
              (* Handle one worker per select round: a crash inside the
                 handler respawns with fresh (possibly recycled) fds, so
                 the rest of this readable set would be stale. *)
              let k = ref (-1) in
              Array.iteri (fun i w -> if w.from_w == fd then k := i) slots;
              let k = !k in
              if k >= 0 then
                let w = slots.(k) in
                match read_frame w.from_w with
                | None -> crash k "worker exited unexpectedly"
                | Some frame -> (
                    let resp : response = Marshal.from_bytes frame 0 in
                    match resp.r_res with
                    | Error msg ->
                        (* The job itself raised: deterministic, no
                           retry.  The worker is still healthy. *)
                        fail ~out:resp.r_out resp.r_idx msg;
                        w.current <- None;
                        dispatch k
                    | Ok payload ->
                        results.(resp.r_idx) <- Some (resp.r_out, Ok payload);
                        Option.iter
                          (fun c ->
                            Cache.store c ~key:(Job.key jobs.(resp.r_idx))
                              ~stdout:resp.r_out ~payload)
                          cache;
                        on_done jobs.(resp.r_idx);
                        incr executed;
                        decr remaining;
                        w.current <- None;
                        dispatch k))
          end
        done;
        finish ())
  end

let run_results ?(backend = `Fork) ?(workers = 1) ?timeout ?cache
    ?(max_attempts = 2) ?heap_ceiling_words ?on_done jobs =
  if workers <= 1 then run_serial ?cache ?on_done jobs
  else
    match backend with
    | `Fork ->
        run_parallel ~workers ~timeout ?cache ~max_attempts
          ?heap_ceiling:heap_ceiling_words ?on_done jobs
    | `Domain -> run_domains ~workers ?cache ?on_done jobs

let run ?backend ?workers ?timeout ?cache ?max_attempts ?heap_ceiling_words
    jobs =
  let results, stats =
    run_results ?backend ?workers ?timeout ?cache ?max_attempts
      ?heap_ceiling_words jobs
  in
  let results =
    List.map2
      (fun j (out, res) ->
        match res with
        | Ok payload -> (out, payload)
        | Error reason -> raise (Job_failed { key = Job.key j; reason }))
      jobs results
  in
  (results, stats)
