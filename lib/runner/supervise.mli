(** Supervised job execution: deadlines, heap ceilings, retries with
    backoff, quarantine, failure records and crash-resume.

    A supervised run drives {!Pool.run_results} in waves through a small
    state machine per job:

    {v pending -> running -> done
                        \-> retrying (capped exponential backoff + jitter)
                        \-> quarantined v}

    Failures are retried up to [max_attempts] total attempts — except a
    blown heap ceiling, which is deterministic and quarantines
    immediately.  Quarantined jobs never poison their siblings: the rest
    of the matrix completes and the caller decides what a quarantine
    means.  Each quarantine leaves a structured failure record
    ([<cache>/failures/<md5(key)>.json]: key, final reason, attempt
    history, last checkpoint hash if a [checkpoint_of] hook was given).

    With a [journal], every completion and quarantine is appended (fsync'd,
    digest-guarded against torn lines) as it happens; re-running the same
    matrix with the same journal path resumes — journaled-done jobs whose
    cache entries are intact are not re-executed ([resumed] in the stats),
    and everything else recomputes. *)

type policy = {
  max_attempts : int;  (** total attempts before quarantine (default 3) *)
  deadline : float option;  (** per-attempt wall-clock seconds (workers only) *)
  heap_ceiling_words : int option;
      (** per-job major-heap bound (workers only); exceeding it
          quarantines without retry *)
  backoff_base : float;  (** first retry delay, seconds (default 0.05) *)
  backoff_max : float;  (** backoff cap, seconds (default 2.0) *)
  sleep : float -> unit;
      (** injectable for tests; default [Unix.sleepf].  Called once per
          retry wave with the largest backoff owed in that wave. *)
}

val default_policy : policy

val backoff : policy -> key:string -> attempt:int -> float
(** [min backoff_max (base * 2^(attempt-1) * (1 + 0.5 * jitter))] with
    deterministic per-(key, attempt) jitter in [0, 1) — replayable, no
    clock involved. *)

type attempt = { attempt : int; error : string }

type outcome =
  | Done of { out : string; payload : bytes }
  | Quarantined of { reason : string; history : attempt list }
      (** [history] is oldest-first *)

val failure_record_path : Cache.t -> string -> string
(** Where the failure record for a job key would be written:
    [<cache dir>/failures/<md5(key)>.json]. *)

val run :
  ?workers:int ->
  ?policy:policy ->
  ?cache:Cache.t ->
  ?journal:string ->
  ?checkpoint_of:(string -> string option) ->
  Job.t list ->
  outcome list * Pool.stats
(** Execute the matrix under supervision; outcomes in job order.  The
    stats aggregate across waves and fill [retried] (attempts beyond each
    job's first), [quarantined] and [resumed].  Failure records and the
    journal are only persisted when [cache] / [journal] are given.
    @raise Invalid_argument if [policy.max_attempts < 1]. *)
