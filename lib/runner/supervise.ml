type policy = {
  max_attempts : int;
  deadline : float option;
  heap_ceiling_words : int option;
  backoff_base : float;
  backoff_max : float;
  sleep : float -> unit;
}

let default_policy =
  {
    max_attempts = 3;
    deadline = None;
    heap_ceiling_words = None;
    backoff_base = 0.05;
    backoff_max = 2.0;
    sleep = Unix.sleepf;
  }

type attempt = { attempt : int; error : string }

type outcome =
  | Done of { out : string; payload : bytes }
  | Quarantined of { reason : string; history : attempt list }

(* Deterministic jitter: spreads simultaneous retries without consulting
   the clock, so a supervised run is replayable. *)
let backoff policy ~key ~attempt =
  let frac = float_of_int (Hashtbl.hash (key, attempt) land 0xFFFF) /. 65536. in
  Float.min policy.backoff_max
    (policy.backoff_base
    *. (2. ** float_of_int (attempt - 1))
    *. (1. +. (0.5 *. frac)))

(* ------------------------------------------------------------------ *)
(* Resume journal                                                      *)
(* ------------------------------------------------------------------ *)

(* Append-only, fsync'd per line: "done <md5(key)> <key>" when a job's
   result reached the cache, "quarantine <md5(key)> <key>" when it was
   abandoned.  The digest makes torn lines (a crash mid-append)
   self-invalidating — a line whose digest does not match its key is
   ignored, and the job simply recomputes. *)

let key_digest key = Digest.to_hex (Digest.string key)

let parse_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i -> (
      let kind = String.sub line 0 i in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      match String.index_opt rest ' ' with
      | None -> None
      | Some j ->
          let md5 = String.sub rest 0 j in
          let key = String.sub rest (j + 1) (String.length rest - j - 1) in
          if md5 <> key_digest key then None
          else
            (match kind with
            | "done" -> Some (`Done, key)
            | "quarantine" -> Some (`Quarantine, key)
            | _ -> None))

let read_journal path =
  let done_keys = Hashtbl.create 32 and quarantined = Hashtbl.create 8 in
  (match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> ()
  | content ->
      String.split_on_char '\n' content
      |> List.iter (fun line ->
             match parse_line line with
             | Some (`Done, key) -> Hashtbl.replace done_keys key ()
             | Some (`Quarantine, key) -> Hashtbl.replace quarantined key ()
             | None -> ()));
  (done_keys, quarantined)

let append_journal path kind key =
  let line = Printf.sprintf "%s %s %s\n" kind (key_digest key) key in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length line in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write_substring fd line !written (n - !written)
      done;
      Unix.fsync fd)

(* ------------------------------------------------------------------ *)
(* Failure records                                                     *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let failure_record_path cache key =
  Filename.concat (Filename.concat (Cache.dir cache) "failures")
    (key_digest key ^ ".json")

let write_failure_record cache ~key ~reason ~history ~checkpoint =
  let dir = Filename.concat (Cache.dir cache) "failures" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let attempts =
    history
    |> List.map (fun a ->
           Printf.sprintf "    {\"attempt\": %d, \"error\": \"%s\"}" a.attempt
             (json_escape a.error))
    |> String.concat ",\n"
  in
  let body =
    Printf.sprintf
      "{\n\
      \  \"key\": \"%s\",\n\
      \  \"reason\": \"%s\",\n\
      \  \"last_checkpoint_hash\": %s,\n\
      \  \"attempts\": [\n%s\n  ]\n\
       }\n"
      (json_escape key) (json_escape reason)
      (match checkpoint with
      | Some h -> Printf.sprintf "\"%s\"" (json_escape h)
      | None -> "null")
      attempts
  in
  Cache.write_atomic (failure_record_path cache key) body

(* ------------------------------------------------------------------ *)
(* Supervised execution                                                *)
(* ------------------------------------------------------------------ *)

let heap_ceiling_error reason =
  (* Substring match on the registered printer's output: blowing the
     heap ceiling is a property of the job, not of scheduling luck, so
     retrying it would just burn the budget. *)
  let needle = "Heap_ceiling_exceeded" in
  let n = String.length needle and m = String.length reason in
  let rec at i = i + n <= m && (String.sub reason i n = needle || at (i + 1)) in
  at 0

let run ?workers ?(policy = default_policy) ?cache ?journal ?checkpoint_of jobs
    =
  if policy.max_attempts < 1 then
    invalid_arg "Supervise.run: max_attempts must be >= 1";
  let jobs_arr = Array.of_list jobs in
  let n = Array.length jobs_arr in
  let outcomes : outcome option array = Array.make n None in
  let history = Array.make n [] (* newest first *) in
  let attempt_count = Array.make n 0 in
  let resumed = ref 0 and retried = ref 0 and quarantined_n = ref 0 in
  let cache_hits = ref 0 and executed = ref 0 and respawns = ref 0 in
  let journal_done key =
    match journal with Some p -> append_journal p "done" key | None -> ()
  in
  let quarantine i reason =
    let key = Job.key jobs_arr.(i) in
    outcomes.(i) <- Some (Quarantined { reason; history = List.rev history.(i) });
    incr quarantined_n;
    (match cache with
    | Some c ->
        write_failure_record c ~key ~reason ~history:(List.rev history.(i))
          ~checkpoint:(Option.bind checkpoint_of (fun f -> f key))
    | None -> ());
    match journal with Some p -> append_journal p "quarantine" key | None -> ()
  in
  (* Resume: a journaled "done" short-circuits the job iff its cache
     entry is still present and intact; a missing or corrupt entry falls
     through to recomputation.  A journaled "quarantine" is final for
     this journal's lifetime. *)
  (match journal with
  | None -> ()
  | Some path ->
      let done_keys, quarantined_keys = read_journal path in
      Array.iteri
        (fun i j ->
          let key = Job.key j in
          if Hashtbl.mem done_keys key then begin
            match Option.bind cache (fun c -> Cache.find c ~key) with
            | Some (out, payload) ->
                outcomes.(i) <- Some (Done { out; payload });
                incr resumed
            | None -> ()
          end
          else if Hashtbl.mem quarantined_keys key then begin
            history.(i) <-
              [ { attempt = 0; error = "quarantined by a previous run" } ];
            outcomes.(i) <-
              Some
                (Quarantined
                   {
                     reason = "quarantined by a previous run (resume journal)";
                     history = history.(i);
                   });
            incr quarantined_n
          end)
        jobs_arr);
  let pending () =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun i -> if outcomes.(i) = None then Some i else None)
            (Seq.init n Fun.id)))
  in
  let wave = ref 0 in
  let rec loop () =
    match pending () with
    | [] -> ()
    | idxs ->
        incr wave;
        if !wave > 1 then begin
          (* One sleep per wave: the longest backoff owed by any job in
             it (jobs re-run together anyway). *)
          let b =
            List.fold_left
              (fun acc i ->
                Float.max acc
                  (backoff policy ~key:(Job.key jobs_arr.(i))
                     ~attempt:attempt_count.(i)))
              0. idxs
          in
          if b > 0. then policy.sleep b
        end;
        let wave_jobs = List.map (fun i -> jobs_arr.(i)) idxs in
        (* The journal line is written from inside the pool the moment a
           job's result lands, not after the wave: a run killed mid-wave
           must leave breadcrumbs for every job that actually finished. *)
        let results, stats =
          Pool.run_results ?workers ?timeout:policy.deadline ?cache
            ~max_attempts:1 ?heap_ceiling_words:policy.heap_ceiling_words
            ~on_done:(fun j -> journal_done (Job.key j))
            wave_jobs
        in
        cache_hits := !cache_hits + stats.Pool.cache_hits;
        executed := !executed + stats.Pool.executed;
        respawns := !respawns + stats.Pool.respawns;
        List.iter2
          (fun i (out, res) ->
            match res with
            | Ok payload -> outcomes.(i) <- Some (Done { out; payload })
            | Error reason ->
                attempt_count.(i) <- attempt_count.(i) + 1;
                history.(i) <-
                  { attempt = attempt_count.(i); error = reason }
                  :: history.(i);
                if heap_ceiling_error reason then
                  quarantine i ("heap ceiling exceeded: " ^ reason)
                else if attempt_count.(i) >= policy.max_attempts then
                  quarantine i
                    (Printf.sprintf "failed %d attempt(s), last: %s"
                       attempt_count.(i) reason)
                else incr retried)
          idxs results;
        loop ()
  in
  loop ();
  let outcomes =
    Array.to_list
      (Array.map
         (function Some o -> o | None -> assert false)
         outcomes)
  in
  ( outcomes,
    {
      Pool.jobs = n;
      cache_hits = !cache_hits;
      executed = !executed;
      respawns = !respawns;
      retried = !retried;
      quarantined = !quarantined_n;
      resumed = !resumed;
    } )
