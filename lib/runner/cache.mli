(** Content-addressed on-disk cache of job results.

    An entry stores a job's marshalled result together with the stdout it
    produced, so a cache hit replays exactly what the simulation would
    have printed.  Entries live under one directory, one file per job,
    named [digest (version, key)]: the version stamp defaults to a digest
    of the running executable, so a rebuild that changes any code (and
    hence possibly any result, or the memory layout [Marshal] relies on)
    silently invalidates everything, while re-running the same binary hits.

    Writes are crash-atomic: temp file, [fsync], atomic rename, directory
    [fsync] — a SIGKILL or power cut at any instant leaves either no entry
    or a complete one.  Every entry also carries a digest of its content,
    so truncated or bit-flipped files are detected on read.  Unreadable or
    corrupt entries are treated as misses (and recomputed), never
    errors. *)

type t

val create : ?dir:string -> ?version:string -> unit -> t
(** [dir] defaults to ["_cache"] (created, along with parents, if
    missing).  [version] defaults to the hex digest of
    [Sys.executable_name]. *)

val find : t -> key:string -> (string * bytes) option
(** [(captured stdout, marshalled result)] for a previously stored job,
    or [None]. *)

val store : t -> key:string -> stdout:string -> payload:bytes -> unit

val hits : t -> int
(** Successful {!find}s so far on this handle. *)

val misses : t -> int
val dir : t -> string

val write_atomic : string -> string -> unit
(** The crash-atomic file-write primitive (temp + [fsync] + rename +
    directory [fsync]) used for entries, exposed for sibling artifacts
    (journals, failure records). *)
