(** Fork-based worker pool with deterministic merge.

    [run jobs] executes every job and returns, in job order, the pair of
    the stdout the job printed and its marshalled result.  Jobs are
    dispatched to [workers] forked child processes over pipes carrying
    length-prefixed [Marshal] frames; a worker that crashes is respawned
    and its in-flight job retried; a worker stuck past [timeout] is
    killed the same way.  Because each job's stdout is captured at the
    job and replayed by the caller in job order, and results are
    collected into a slot per job, the observable output is byte-for-byte
    identical to the serial run regardless of how jobs were scheduled
    across workers.

    With [workers <= 1] jobs run serially in-process (no fork), through
    the same capture machinery, so serial and parallel runs share one
    output path.  With a [cache], jobs whose key is already stored are
    not executed at all — their recorded stdout and result are replayed —
    and freshly computed results are stored.

    Jobs must be pure (their thunks re-run after a crash must produce the
    same result) and must not write to stderr if byte-identical streams
    are required there too (only stdout is captured). *)

type stats = {
  jobs : int;  (** total jobs submitted *)
  cache_hits : int;  (** jobs served from the cache, not executed *)
  executed : int;  (** jobs actually simulated this run *)
  respawns : int;  (** workers replaced after a crash or timeout *)
}

exception Job_failed of { key : string; reason : string }
(** Raised when a job raises, or when it exhausts [max_attempts] via
    worker crashes or timeouts.  All workers are killed first. *)

val default_workers : unit -> int
(** Parallelism matching the machine (the runtime's recommended domain
    count). *)

val run :
  ?workers:int ->
  ?timeout:float ->
  ?cache:Cache.t ->
  ?max_attempts:int ->
  Job.t list ->
  (string * bytes) list * stats
(** [run jobs] = per-job [(captured stdout, marshalled result)] in job
    order, plus counters.  [workers] defaults to [1] (serial,
    in-process).  [timeout] is per job attempt, in wall seconds, enforced
    only on forked workers.  [max_attempts] (default 2) bounds executions
    of one job across crashes/timeouts; an exception raised by the job
    itself fails immediately (it is deterministic).
    @raise Job_failed as described above. *)
