(** Fork-based worker pool with deterministic merge.

    [run jobs] executes every job and returns, in job order, the pair of
    the stdout the job printed and its marshalled result.  Jobs are
    dispatched to [workers] forked child processes over pipes carrying
    length-prefixed [Marshal] frames; a worker that crashes is respawned
    and its in-flight job retried; a worker stuck past [timeout] is
    killed the same way.  Because each job's stdout is captured at the
    job and replayed by the caller in job order, and results are
    collected into a slot per job, the observable output is byte-for-byte
    identical to the serial run regardless of how jobs were scheduled
    across workers.

    With [workers <= 1] jobs run serially in-process (no fork), through
    the same capture machinery, so serial and parallel runs share one
    output path.  With a [cache], jobs whose key is already stored are
    not executed at all — their recorded stdout and result are replayed —
    and freshly computed results are stored.

    Jobs must be pure (their thunks re-run after a crash must produce the
    same result) and must not write to stderr if byte-identical streams
    are required there too (only stdout is captured). *)

type stats = {
  jobs : int;  (** total jobs submitted *)
  cache_hits : int;  (** jobs served from the cache, not executed *)
  executed : int;  (** jobs actually simulated this run *)
  respawns : int;  (** workers replaced after a crash or timeout *)
  retried : int;
      (** job attempts beyond the first, across supervision waves —
          always 0 from {!run}/{!run_results}; filled by {!Supervise} *)
  quarantined : int;
      (** jobs abandoned after exhausting every supervised attempt —
          always 0 from {!run}/{!run_results}; filled by {!Supervise} *)
  resumed : int;
      (** jobs skipped because a resume journal marked them done —
          always 0 from {!run}/{!run_results}; filled by {!Supervise} *)
}

exception Job_failed of { key : string; reason : string }
(** Raised by {!run} when a job raises, or when it exhausts
    [max_attempts] via worker crashes or timeouts.  All workers are
    killed first. *)

exception Heap_ceiling_exceeded of { limit : int; reached : int }
(** A job's major heap grew past the configured ceiling (in words).
    Raised inside the worker by a GC alarm and surfaced to the caller as
    that job's [Error] string — a deterministic failure, never retried. *)

val default_workers : unit -> int
(** Parallelism matching the machine (the runtime's recommended domain
    count). *)

(** How parallel workers are realized when [workers >= 2]:

    - [`Fork] (the default): isolated child processes.  Full feature set
      — per-job stdout capture, crash respawns, per-attempt [timeout],
      [heap_ceiling_words] — at the cost of a fork per worker and a
      [Marshal] round-trip per result.
    - [`Domain]: shared-memory domains in this process, work-stealing off
      one atomic counter.  No fork, no pipe, no marshalling across a
      process boundary — but also no isolation: [timeout],
      [max_attempts] and [heap_ceiling_words] are ignored (a stuck or
      crashing job takes the whole run down), and since fd redirection
      is process-global there is {e no per-job stdout capture}: fresh
      jobs report [""] and the cache records [""].  Only hand this
      backend jobs that print nothing (the census cells, whose tables
      are built by the merge); such runs stay byte-identical to [-j 1]
      and to [`Fork].

    The two backends do not mix within one process: on OCaml 5,
    [Unix.fork] is disallowed for the rest of the process once any
    domain has been spawned, so after the first [`Domain] run a
    [`Fork] run can only be served from the cache.  Pick one backend
    per process (the CLI's [--pool] does exactly that).

    Serial runs ([workers <= 1]) ignore the backend entirely. *)
type backend = [ `Fork | `Domain ]

val run_results :
  ?backend:backend ->
  ?workers:int ->
  ?timeout:float ->
  ?cache:Cache.t ->
  ?max_attempts:int ->
  ?heap_ceiling_words:int ->
  ?on_done:(Job.t -> unit) ->
  Job.t list ->
  (string * (bytes, string) result) list * stats
(** Like {!run} but total: every job yields either [Ok payload] or
    [Error reason] in its slot and the whole matrix always completes —
    one bad job cannot discard its siblings' finished work.  [Error]
    covers a raising job (including {!Heap_ceiling_exceeded}), and a
    worker crash / per-attempt [timeout] repeated [max_attempts] times.
    [heap_ceiling_words] bounds each job's major heap; like [timeout] it
    is enforced only on forked workers ([workers >= 2]).  [on_done] fires
    in the parent the moment a job's result lands (cache hit or fresh
    execution, after any cache store) — {!Supervise} uses it to journal
    completions incrementally so a killed run can resume. *)

val run :
  ?backend:backend ->
  ?workers:int ->
  ?timeout:float ->
  ?cache:Cache.t ->
  ?max_attempts:int ->
  ?heap_ceiling_words:int ->
  Job.t list ->
  (string * bytes) list * stats
(** [run jobs] = per-job [(captured stdout, marshalled result)] in job
    order, plus counters.  [workers] defaults to [1] (serial,
    in-process).  [timeout] is per job attempt, in wall seconds, enforced
    only on forked workers.  [max_attempts] (default 2) bounds executions
    of one job across crashes/timeouts; an exception raised by the job
    itself fails immediately (it is deterministic).  Implemented on
    {!run_results}: the full matrix runs (and caches) before the first
    failure is raised.
    @raise Job_failed as described above. *)
