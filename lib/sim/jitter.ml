type request = { flow : int; arrival : float; sent : float }

type policy =
  | No_jitter
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Trace of (float -> float)
  | Controller of (request -> float)

(* All-float box: assigning the field is an unboxed store, unlike a
   mutable float field in the mixed record below (2 words per write —
   [last_release] is written once per packet on the hot path). *)
type fbox = { mutable v : float }

type t = {
  policy : policy;
  bound : float;
  rng : Rng.t;
  last_release : fbox;
  mutable violations : int;
  mutable max_requested : float;
  mutable worst_excess : float;
}

let create ?(bound = infinity) ~rng policy =
  if Float.is_nan bound || bound < 0. then
    invalid_arg "Jitter.create: bound must be non-negative";
  (match policy with
  | Uniform { lo; hi } ->
      if not (Float.is_finite lo && Float.is_finite hi) then
        invalid_arg "Jitter.create: Uniform bounds must be finite";
      if lo < 0. then invalid_arg "Jitter.create: Uniform lo must be >= 0";
      if lo > hi then invalid_arg "Jitter.create: Uniform lo > hi"
  | No_jitter | Constant _ | Trace _ | Controller _ -> ());
  {
    policy;
    bound;
    rng;
    last_release = { v = neg_infinity };
    violations = 0;
    max_requested = 0.;
    worst_excess = 0.;
  }

let release_at t ~flow ~arrival ~sent =
  let d =
    match t.policy with
    | No_jitter -> 0.
    | Constant d -> d
    | Uniform { lo; hi } -> Rng.uniform t.rng ~lo ~hi
    | Trace f -> f arrival
    | Controller f -> f { flow; arrival; sent }
  in
  if d > t.max_requested then t.max_requested <- d;
  let clamped = Float.max 0. (Float.min d t.bound) in
  if d < -1e-9 || d > t.bound +. 1e-9 then begin
    t.violations <- t.violations + 1;
    let excess = Float.max (-.d) (d -. t.bound) in
    if excess > t.worst_excess then t.worst_excess <- excess
  end;
  let release = Float.max (arrival +. clamped) t.last_release.v in
  t.last_release.v <- release;
  release

let release_time t req = release_at t ~flow:req.flow ~arrival:req.arrival ~sent:req.sent

let bound t = t.bound
let violations t = t.violations

let fold_state buf t =
  Rng.fold_state buf t.rng;
  Statebuf.f buf t.bound;
  Statebuf.f buf t.last_release.v;
  Statebuf.i buf t.violations;
  Statebuf.f buf t.max_requested;
  Statebuf.f buf t.worst_excess
let max_requested t = t.max_requested
let worst_excess t = t.worst_excess
