(* All-float box: assigning the field is an unboxed store, unlike a
   mutable float field in the mixed record below (2 words per write). *)
type fbox = { mutable v : float }

type 'a t = {
  eq : Event_queue.t;
  dummy : 'a;
  deliver : 'a -> unit;
  handle : Event_queue.handle;
  mutable items : 'a array; (* ring buffer *)
  mutable dues : float array; (* parallel ring, unboxed *)
  mutable head : int;
  mutable len : int;
  last_due : fbox; (* largest due ever accepted by the ring *)
  mutable pushes : int;
  mutable fallbacks : int;
}

let length t = t.len
let pushes t = t.pushes
let fallbacks t = t.fallbacks

let reset_last_due t =
  if t.len > 0 then invalid_arg "Delay_line.reset_last_due: line not empty";
  t.last_due.v <- neg_infinity

let fire t =
  let cap = Array.length t.items in
  let x = t.items.(t.head) in
  t.items.(t.head) <- t.dummy;
  t.head <- (if t.head + 1 = cap then 0 else t.head + 1);
  t.len <- t.len - 1;
  t.deliver x;
  (* Re-arm for the new head (if [deliver] pushed while the line was
     empty the handle is already armed; schedule_handle just moves it). *)
  if t.len > 0 then Event_queue.schedule_handle t.eq t.handle ~at:t.dues.(t.head)

let create ~eq ~dummy deliver =
  let t =
    {
      eq;
      dummy;
      deliver;
      handle = Event_queue.handle ignore;
      items = [||];
      dues = [||];
      head = 0;
      len = 0;
      last_due = { v = neg_infinity };
      pushes = 0;
      fallbacks = 0;
    }
  in
  Event_queue.set_action t.handle (fun () -> fire t);
  t

let fold_state item buf t =
  Statebuf.i buf t.len;
  let cap = Array.length t.items in
  for k = 0 to t.len - 1 do
    let idx = (t.head + k) mod cap in
    Statebuf.f buf t.dues.(idx);
    item buf t.items.(idx)
  done;
  Statebuf.f buf t.last_due.v;
  Statebuf.i buf t.pushes;
  Statebuf.i buf t.fallbacks

let ensure_room t =
  let cap = Array.length t.items in
  if cap = 0 then begin
    t.items <- Array.make 16 t.dummy;
    t.dues <- Array.make 16 0.
  end
  else if t.len = cap then begin
    let items = Array.make (2 * cap) t.dummy and dues = Array.make (2 * cap) 0. in
    (* Unwrap the ring so head lands at 0. *)
    let tail_run = min t.len (cap - t.head) in
    Array.blit t.items t.head items 0 tail_run;
    Array.blit t.dues t.head dues 0 tail_run;
    Array.blit t.items 0 items tail_run (t.len - tail_run);
    Array.blit t.dues 0 dues tail_run (t.len - tail_run);
    t.items <- items;
    t.dues <- dues;
    t.head <- 0
  end

let push t ~due x =
  if not (Float.is_finite due) then invalid_arg "Delay_line.push: non-finite time";
  t.pushes <- t.pushes + 1;
  if due < t.last_due.v then begin
    (* Non-monotone release schedule: this payload would overtake queued
       ones, so hand it straight to the event queue — exactly the naive
       per-packet scheduling the line replaces — and count the escape. *)
    t.fallbacks <- t.fallbacks + 1;
    Event_queue.schedule t.eq ~at:due (fun () -> t.deliver x)
  end
  else begin
    t.last_due.v <- due;
    ensure_room t;
    let cap = Array.length t.items in
    let tail = t.head + t.len in
    let tail = if tail >= cap then tail - cap else tail in
    t.items.(tail) <- x;
    t.dues.(tail) <- due;
    t.len <- t.len + 1;
    if t.len = 1 then Event_queue.schedule_handle t.eq t.handle ~at:due
  end
