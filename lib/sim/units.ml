let mbps x = x *. 1e6 /. 8.
let to_mbps r = r *. 8. /. 1e6
let ms x = x /. 1000.
let to_ms t = t *. 1000.
let kbps x = x *. 1e3 /. 8.

let bdp_bytes ~rate ~rtt = int_of_float (Float.round (rate *. rtt))

let bdp_packets ~rate ~rtt ~mss = rate *. rtt /. float_of_int mss

let feq ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))
