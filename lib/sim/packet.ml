type t = {
  flow : int;
  seq : int;
  size : int;
  sent_at : float;
  delivered_at_send : int;
  app_limited : bool;
  mutable ce : bool;
}

type delivery = { packet : t; delivered_at : float }

let dummy =
  {
    flow = -2;
    seq = -1;
    size = 0;
    sent_at = neg_infinity;
    delivered_at_send = 0;
    app_limited = false;
    ce = false;
  }

let fold_state buf p =
  Statebuf.i buf p.flow;
  Statebuf.i buf p.seq;
  Statebuf.i buf p.size;
  Statebuf.f buf p.sent_at;
  Statebuf.i buf p.delivered_at_send;
  Statebuf.b buf p.app_limited;
  Statebuf.b buf p.ce

let pp ppf p =
  Format.fprintf ppf "pkt[flow=%d seq=%d size=%d sent=%.6f]" p.flow p.seq p.size
    p.sent_at
