(* Delta-debugging for invariant-tripping scenarios: shorten the horizon,
   drop fault events, drop flows — keeping every step that still trips the
   original check — until a fixpoint.  Configs embed instantiated CCA
   closures whose mutable state dirties on first run, so every trial runs
   a deep copy and the configs held here stay pristine. *)

let copy_config (cfg : Network.config) : Network.config =
  Marshal.from_string (Marshal.to_string cfg [ Marshal.Closures ]) 0

let trips ?monitor_period cfg =
  let cfg = copy_config cfg in
  let cfg =
    match (cfg.Network.monitor_period, monitor_period) with
    | Some _, _ -> cfg
    | None, Some p -> { cfg with Network.monitor_period = Some p }
    | None, None -> { cfg with Network.monitor_period = Some 0.05 }
  in
  let net = Network.run_config cfg in
  match Network.invariant net with
  | None -> []
  | Some inv -> List.filter (fun (_, n) -> n > 0) (Invariant.by_check inv)

type result = {
  config : Network.config;
  check : string;
  violations : int;
  runs : int;
}

(* Remap fault events after dropping flow [drop]: events targeting it
   vanish, higher flow indices shift down by one. *)
let remap_event drop = function
  | Fault.Ack_blackhole { flow; t0; t1 } ->
      if flow = drop then None
      else
        Some
          (Fault.Ack_blackhole
             { flow = (if flow > drop then flow - 1 else flow); t0; t1 })
  | Fault.Bursty_loss b ->
      if b.flow = drop then None
      else
        Some
          (Fault.Bursty_loss
             { b with flow = (if b.flow > drop then b.flow - 1 else b.flow) })
  | (Fault.Link_blackout _ | Fault.Rate_step _ | Fault.Buffer_resize _) as e ->
      Some e

let shrink ?(max_runs = 200) ?monitor_period cfg0 =
  let runs = ref 0 in
  let last_tally = ref [] in
  let run_trial cfg =
    incr runs;
    trips ?monitor_period cfg
  in
  match run_trial cfg0 with
  | [] -> None
  | (target, _) :: _ as tally0 ->
      last_tally := tally0;
      let still cfg =
        if !runs >= max_runs then false
        else begin
          let tally = run_trial cfg in
          if List.mem_assoc target tally then begin
            last_tally := tally;
            true
          end
          else false
        end
      in
      let shrink_duration cfg =
        let rec go (cfg : Network.config) =
          let half = cfg.Network.duration /. 2. in
          if half <= 0. then cfg
          else
            let cand = { cfg with Network.duration = half } in
            if still cand then go cand else cfg
        in
        go cfg
      in
      let shrink_faults (cfg : Network.config) =
        let rec go cfg =
          let evs = Fault.events cfg.Network.faults in
          let n = List.length evs in
          let rec try_drop i =
            if i >= n then cfg
            else
              let cand =
                {
                  cfg with
                  Network.faults =
                    Fault.plan (List.filteri (fun j _ -> j <> i) evs);
                }
              in
              if still cand then go cand else try_drop (i + 1)
          in
          try_drop 0
        in
        go cfg
      in
      let shrink_flows (cfg : Network.config) =
        let rec go cfg =
          let n = List.length cfg.Network.flows in
          let rec try_drop i =
            if i >= n || n <= 1 then cfg
            else
              let cand =
                {
                  cfg with
                  Network.flows =
                    List.filteri (fun j _ -> j <> i) cfg.Network.flows;
                  faults =
                    Fault.plan
                      (List.filter_map (remap_event i)
                         (Fault.events cfg.Network.faults));
                }
              in
              if still cand then go cand else try_drop (i + 1)
          in
          try_drop 0
        in
        go cfg
      in
      let rec fixpoint cfg =
        let cfg' = shrink_flows (shrink_faults (shrink_duration cfg)) in
        if cfg' == cfg || !runs >= max_runs then cfg' else fixpoint cfg'
      in
      let final = fixpoint (copy_config cfg0) in
      Some
        {
          config = final;
          check = target;
          violations =
            (match List.assoc_opt target !last_tally with
            | Some n -> n
            | None -> 0);
          runs = !runs;
        }

let describe r =
  Printf.sprintf
    "invariant %S still trips with %d flow(s), %d fault event(s), duration \
     %.3f s (%d violation(s); %d trial run(s))"
    r.check
    (List.length r.config.Network.flows)
    (List.length (Fault.events r.config.Network.faults))
    r.config.Network.duration r.violations r.runs

(* --- Reproducer files ---------------------------------------------------- *)

(* The config embeds CCA closures, so the marshaled result is only
   readable in the producing binary.  The binary digest sits OUTSIDE the
   blob: it must be checked before Marshal ever parses foreign code
   pointers. *)

let repro_magic = "ccstarve-repro\n"
let self_digest = lazy (Digest.to_hex (Digest.file Sys.executable_name))

let write_repro path r =
  let blob = Marshal.to_string r [ Marshal.Closures ] in
  Snapshot.write_atomic_file path
    (repro_magic ^ Lazy.force self_digest ^ Digest.string blob ^ blob)

let load_repro path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let mlen = String.length repro_magic in
  (* magic + 32-char hex binary digest + 16-byte blob digest *)
  if String.length content < mlen + 48 || String.sub content 0 mlen <> repro_magic
  then raise (Snapshot.Incompatible (path ^ ": not a reproducer file"));
  let binary = String.sub content mlen 32 in
  if binary <> Lazy.force self_digest then
    raise
      (Snapshot.Incompatible
         (Printf.sprintf
            "%s: reproducer written by binary %s, this binary is %s" path
            binary (Lazy.force self_digest)));
  let digest = String.sub content (mlen + 32) 16 in
  let blob =
    String.sub content (mlen + 48) (String.length content - mlen - 48)
  in
  if Digest.string blob <> digest then
    raise (Snapshot.Incompatible (path ^ ": corrupt reproducer (digest mismatch)"));
  (Marshal.from_string blob 0 : result)
