(** Open-loop traffic source: packets arrive by a stochastic process,
    independent of any feedback from the network.

    The closed-loop flows in {!Flow} are what the paper studies, but
    they cannot be validated against queueing theory — their arrival
    process depends on the queue.  An open-loop source can: Poisson
    arrivals with exponential sizes into a constant-rate FIFO is an
    M/M/1 queue, and with fixed sizes an M/D/1 queue, both with
    closed-form mean waiting times.  [lib/validate] drives one of these
    into a bare {!Link} and checks the simulator's measured sojourn
    times and occupancy against the formulas — an oracle that no amount
    of self-consistent byte-identity can fake. *)

(** Inter-arrival process. *)
type arrivals =
  | Poisson of { rate : float }
      (** exponential gaps with mean [1/rate] (arrivals per second) *)
  | Periodic of { period : float }  (** deterministic gaps *)

(** Packet-size distribution, bytes. *)
type sizes =
  | Fixed of int
  | Exponential of { mean : float }
      (** sizes are drawn exponentially and rounded to at least one byte;
          use a large mean (≥ 10^3) so discretization error is
          negligible relative to the mean *)

type t

val create :
  eq:Event_queue.t -> rng:Rng.t -> arrivals:arrivals -> sizes:sizes ->
  ?flow:int -> ?until:float -> send:(Packet.t -> unit) -> unit -> t
(** Arm the source on the event queue: from the first arrival (one gap
    after [Event_queue.now]) until [until] (default: forever), each
    arrival draws a size and hands a fresh packet to [send].  Packets
    carry [flow] (default 0) and consecutive [seq]; [sent_at] is the
    arrival time.  All draws come from [rng] in arrival order — one gap
    draw, then one size draw when the distribution needs it — so a
    source is reproducible from its generator.

    @raise Invalid_argument on a non-positive rate, period, size or
    mean. *)

val sent_packets : t -> int
val sent_bytes : t -> int
(** Arrivals generated so far (counted when handed to [send]). *)

val stop : t -> unit
(** Cancel the pending arrival; no further packets are generated. *)
