(** The paper's non-congestive delay element (§3).

    Sits on a flow's ACK return path and may hold each packet for an extra
    delay in [0, D] without reordering.  The element is flow-specific: the
    starvation construction gives the two flows different delay schedules.

    Policies cover every jitter source the evaluation uses, plus the
    [Controller] hook that the Theorem 1/2 machinery uses to impose an exact
    delay trajectory computed online from simulator state. *)

type request = {
  flow : int;
  arrival : float;  (** time the packet reached this element *)
  sent : float;  (** original send time (lets controllers target a total RTT) *)
}

type policy =
  | No_jitter
  | Constant of float  (** every packet held exactly this long *)
  | Uniform of { lo : float; hi : float }  (** i.i.d. uniform extra delay *)
  | Trace of (float -> float)  (** extra delay as a function of arrival time *)
  | Controller of (request -> float)
      (** arbitrary online adversary; the element clamps the result to
          [0, bound] and counts the clamp as a violation *)

type t

val create : ?bound:float -> rng:Rng.t -> policy -> t
(** [bound] is the model's D; defaults to [infinity] (policy output is
    trusted).  Draws for [Uniform] come from [rng].

    [Uniform] parameters are validated here rather than surfacing as
    garbage mid-run: both bounds must be finite with [0 <= lo <= hi].
    ([hi] larger than [bound] is allowed — the element clamps at release
    time and counts violations, which the threshold experiments rely
    on.)  [bound] itself must be non-negative ([infinity] ok).
    [Constant]/[Trace]/[Controller] delays are deliberately not
    validated: out-of-range requests from them are the adversarial
    inputs the violation counters exist to measure.
    @raise Invalid_argument on an invalid [Uniform] or negative/NaN
    [bound]. *)

val release_time : t -> request -> float
(** Time at which the packet leaves the element: arrival + clamped policy
    delay, pushed forward if needed so that releases never reorder.  The
    forward push means successive release times are always monotone
    non-decreasing — the property {!Delay_line} relies on. *)

val release_at : t -> flow:int -> arrival:float -> sent:float -> float
(** Same as {!release_time} but taking the request fields as plain
    arguments: the hot path's variant, which only materializes a
    {!request} record for the [Controller] policy. *)

val bound : t -> float

val violations : t -> int
(** Number of packets whose requested delay fell outside [0, bound] (the
    element clamped it).  The theorem checkers require this to stay 0. *)

val max_requested : t -> float
(** Largest delay any policy invocation requested (before clamping). *)

val worst_excess : t -> float
(** Largest distance by which a request fell outside [0, bound] — 0 when
    there were no violations.  Distinguishes packet-granularity boundary
    riding (sub-millisecond) from a genuinely infeasible schedule. *)

val fold_state : Buffer.t -> t -> unit
(** Append the element's mutable state (RNG words, last release,
    violation counters) to a {!Statebuf} encoding.  The policy itself is
    configuration, not state, and is not folded. *)
