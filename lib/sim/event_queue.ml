(* Structure-of-arrays binary heap: event times live in an unboxed float
   array, FIFO tie-break sequence numbers in an int array, and the payload
   (a [handle]) in a third.  Keeping the three side by side — instead of a
   heap of {time; seq; action} records — means scheduling a preallocated
   handle writes three array slots and allocates nothing, which is what
   makes the simulator's per-packet hot path allocation-free. *)

type handle = {
  mutable pos : int; (* slot in the heap arrays; [idle] when not queued *)
  mutable action : unit -> unit;
}

let idle = -1

let make_handle f = { pos = idle; action = f }
let handle f = make_handle f
let set_action h f = h.action <- f

let dummy_handle = make_handle ignore

type t = {
  mutable times : float array; (* unboxed *)
  mutable seqs : int array;
  mutable slots : handle array;
  mutable size : int;
  mutable now : float;
  mutable next_seq : int;
  mutable step_hook : (float -> unit) option;
}

let create ?(start = 0.) () =
  { times = [||]; seqs = [||]; slots = [||]; size = 0; now = start;
    next_seq = 0; step_hook = None }

let set_step_hook t f = t.step_hook <- f

let now t = t.now
let pending t = t.size

(* (time, seq) lexicographic order; times are validated finite so plain
   float comparison is exact. *)
let less t i j =
  let ti = t.times.(i) and tj = t.times.(j) in
  ti < tj || (ti = tj && t.seqs.(i) < t.seqs.(j))

let ensure_room t =
  let cap = Array.length t.times in
  if cap = 0 then begin
    t.times <- Array.make 16 0.;
    t.seqs <- Array.make 16 0;
    t.slots <- Array.make 16 dummy_handle
  end
  else if t.size = cap then begin
    let times = Array.make (2 * cap) 0.
    and seqs = Array.make (2 * cap) 0
    and slots = Array.make (2 * cap) dummy_handle in
    Array.blit t.times 0 times 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.slots 0 slots 0 t.size;
    t.times <- times;
    t.seqs <- seqs;
    t.slots <- slots
  end

let swap t i j =
  let ti = t.times.(i) and si = t.seqs.(i) and hi = t.slots.(i) in
  t.times.(i) <- t.times.(j);
  t.seqs.(i) <- t.seqs.(j);
  t.slots.(i) <- t.slots.(j);
  t.times.(j) <- ti;
  t.seqs.(j) <- si;
  t.slots.(j) <- hi;
  t.slots.(i).pos <- i;
  t.slots.(j).pos <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t l !smallest then smallest := l;
  if r < t.size && less t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let validate t at =
  if not (Float.is_finite at) then
    invalid_arg "Event_queue.schedule: non-finite time";
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Event_queue.schedule: time %.9f is before now %.9f" at t.now)

let push t h ~at =
  ensure_room t;
  let i = t.size in
  t.times.(i) <- at;
  t.seqs.(i) <- t.next_seq;
  t.slots.(i) <- h;
  h.pos <- i;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let schedule t ~at action =
  validate t at;
  push t (make_handle action) ~at

let schedule_after t ~delay action =
  schedule t ~at:(t.now +. Float.max 0. delay) action

let schedule_handle t h ~at =
  validate t at;
  if h.pos >= 0 then begin
    (* Already queued: move it.  A fresh sequence number keeps the FIFO
       tie-break identical to cancelling and scheduling anew. *)
    let i = h.pos in
    t.times.(i) <- at;
    t.seqs.(i) <- t.next_seq;
    t.next_seq <- t.next_seq + 1;
    sift_up t i;
    sift_down t h.pos
  end
  else push t h ~at

let cancel t h =
  if h.pos >= 0 then begin
    let i = h.pos in
    h.pos <- idle;
    t.size <- t.size - 1;
    if i < t.size then begin
      let last = t.size in
      t.times.(i) <- t.times.(last);
      t.seqs.(i) <- t.seqs.(last);
      let moved = t.slots.(last) in
      t.slots.(i) <- moved;
      moved.pos <- i;
      t.slots.(last) <- dummy_handle;
      sift_up t i;
      sift_down t moved.pos
    end
    else t.slots.(i) <- dummy_handle
  end

let is_scheduled h = h.pos >= 0

let scheduled_time t h = if h.pos >= 0 then t.times.(h.pos) else infinity

let scheduled_at t h = if h.pos >= 0 then Some t.times.(h.pos) else None

let pop_root t =
  let h = t.slots.(0) in
  h.pos <- idle;
  t.size <- t.size - 1;
  if t.size > 0 then begin
    let last = t.size in
    t.times.(0) <- t.times.(last);
    t.seqs.(0) <- t.seqs.(last);
    let moved = t.slots.(last) in
    t.slots.(0) <- moved;
    moved.pos <- 0;
    t.slots.(last) <- dummy_handle;
    sift_down t 0
  end
  else t.slots.(0) <- dummy_handle;
  h

let step t =
  if t.size = 0 then false
  else begin
    (* Skip the write (and the float box it allocates) when consecutive
       events share a timestamp. *)
    if t.times.(0) <> t.now then t.now <- t.times.(0);
    (* Observer hook, pre-pop: it sees the clock already advanced and the
       due event still pending.  A [None] branch here is vastly cheaper
       than a recurring heap event — at the simulator's typical 6-14
       pending events, one extra resident slot deepens every sift path
       and costs ~10% wall; a predicted branch costs nothing. *)
    (match t.step_hook with None -> () | Some f -> f t.now);
    let h = pop_root t in
    h.action ();
    true
  end

let run_until t horizon =
  let rec loop () =
    if t.size > 0 && t.times.(0) <= horizon then begin
      ignore (step t);
      loop ()
    end
    else t.now <- Float.max t.now horizon
  in
  loop ()

let run t = while step t do () done

(* The heap's array layout is a deterministic function of the operation
   sequence, so identical runs produce identical folds, and a marshalled
   copy reproduces the layout exactly.  Actions are closures and cannot
   be content-hashed; the armed times and FIFO sequence numbers pin the
   schedule, which is what divergence diagnosis needs. *)
let fold_state buf t =
  Statebuf.f buf t.now;
  Statebuf.i buf t.size;
  Statebuf.i buf t.next_seq;
  for i = 0 to t.size - 1 do
    Statebuf.f buf t.times.(i);
    Statebuf.i buf t.seqs.(i)
  done
