type event = { time : float; seq : int; action : unit -> unit }

type t = { heap : event Heap.t; mutable now : float; mutable next_seq : int }

let compare_event a b =
  match Float.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c

let dummy_event = { time = neg_infinity; seq = -1; action = ignore }

let create ?(start = 0.) () =
  { heap = Heap.create ~dummy:dummy_event ~cmp:compare_event (); now = start;
    next_seq = 0 }

let now t = t.now

let schedule t ~at action =
  if not (Float.is_finite at) then invalid_arg "Event_queue.schedule: non-finite time";
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Event_queue.schedule: time %.9f is before now %.9f" at t.now);
  Heap.push t.heap { time = at; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let schedule_after t ~delay action =
  schedule t ~at:(t.now +. Float.max 0. delay) action

let pending t = Heap.size t.heap

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some ev ->
      t.now <- ev.time;
      ev.action ();
      true

let run_until t horizon =
  let rec loop () =
    match Heap.peek t.heap with
    | Some ev when ev.time <= horizon ->
        ignore (step t);
        loop ()
    | _ -> t.now <- Float.max t.now horizon
  in
  loop ()

let run t = while step t do () done
