(* Hybrid scheduler: a hierarchical timing wheel for near-future events
   plus two structure-of-arrays binary heaps — a tiny "due" heap holding
   wheel entries whose tick the cursor has reached (re-sorted exactly by
   their original (time, seq)), and an "overflow" heap for events beyond
   the wheel's horizon.  In [Heap] backend mode the wheel is absent and
   everything routes through the overflow heap, which reproduces the
   previous pure-heap scheduler byte for byte.

   Pop order is identical across backends: a single global FIFO sequence
   counter is consumed per insertion in both modes, the wheel stores the
   exact (time, seq) it was given, and container-vs-container decisions
   are made in integer tick space (never by multiplying ticks back into
   float time, which could misorder by an ulp) with exact (time, seq)
   comparison between heap roots.  Heap invariant: every due-heap entry
   has tick <= wheel cursor < tick of every wheel entry, so the due heap
   root is always earlier than anything in the wheel and only the
   overflow heap needs comparing against. *)

type handle = {
  mutable where : int; (* container: [idle], [in_due], [in_overflow], [in_wheel] *)
  mutable pos : int; (* heap slot or wheel vec index; [idle] when idle *)
  mutable wslot : int; (* wheel slot id when [where = in_wheel] *)
  mutable action : unit -> unit;
}

let idle = -1
let in_due = 0
let in_overflow = 1
let in_wheel = 2

let make_handle f = { where = idle; pos = idle; wslot = idle; action = f }
let handle f = make_handle f
let set_action h f = h.action <- f

let dummy_handle = make_handle ignore

type heap = {
  tag : int; (* written into [handle.where] for entries stored here *)
  mutable htimes : float array; (* unboxed *)
  mutable hseqs : int array;
  mutable hslots : handle array;
  mutable hsize : int;
}

let mkheap tag = { tag; htimes = [||]; hseqs = [||]; hslots = [||]; hsize = 0 }

(* (time, seq) lexicographic order; times are validated finite so plain
   float comparison is exact. *)
let hless hp i j =
  let ti = hp.htimes.(i) and tj = hp.htimes.(j) in
  ti < tj || (ti = tj && hp.hseqs.(i) < hp.hseqs.(j))

let ensure_room hp =
  let cap = Array.length hp.htimes in
  if cap = 0 then begin
    hp.htimes <- Array.make 16 0.;
    hp.hseqs <- Array.make 16 0;
    hp.hslots <- Array.make 16 dummy_handle
  end
  else if hp.hsize = cap then begin
    let times = Array.make (2 * cap) 0.
    and seqs = Array.make (2 * cap) 0
    and slots = Array.make (2 * cap) dummy_handle in
    Array.blit hp.htimes 0 times 0 hp.hsize;
    Array.blit hp.hseqs 0 seqs 0 hp.hsize;
    Array.blit hp.hslots 0 slots 0 hp.hsize;
    hp.htimes <- times;
    hp.hseqs <- seqs;
    hp.hslots <- slots
  end

let hswap hp i j =
  let ti = hp.htimes.(i) and si = hp.hseqs.(i) and hi = hp.hslots.(i) in
  hp.htimes.(i) <- hp.htimes.(j);
  hp.hseqs.(i) <- hp.hseqs.(j);
  hp.hslots.(i) <- hp.hslots.(j);
  hp.htimes.(j) <- ti;
  hp.hseqs.(j) <- si;
  hp.hslots.(j) <- hi;
  hp.hslots.(i).pos <- i;
  hp.hslots.(j).pos <- j

let rec sift_up hp i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if hless hp i parent then begin
      hswap hp i parent;
      sift_up hp parent
    end
  end

let rec sift_down hp i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < hp.hsize && hless hp l !smallest then smallest := l;
  if r < hp.hsize && hless hp r !smallest then smallest := r;
  if !smallest <> i then begin
    hswap hp i !smallest;
    sift_down hp !smallest
  end

let hpush hp h ~time ~seq =
  ensure_room hp;
  let i = hp.hsize in
  hp.htimes.(i) <- time;
  hp.hseqs.(i) <- seq;
  hp.hslots.(i) <- h;
  h.where <- hp.tag;
  h.pos <- i;
  hp.hsize <- hp.hsize + 1;
  sift_up hp i

(* In-place move of a queued entry (Heap backend only, where the target
   container cannot change): one sift path instead of remove + push. *)
let hmove hp h ~time ~seq =
  let i = h.pos in
  hp.htimes.(i) <- time;
  hp.hseqs.(i) <- seq;
  sift_up hp i;
  sift_down hp h.pos

let hremove hp h =
  let i = h.pos in
  h.where <- idle;
  h.pos <- idle;
  hp.hsize <- hp.hsize - 1;
  if i < hp.hsize then begin
    let last = hp.hsize in
    hp.htimes.(i) <- hp.htimes.(last);
    hp.hseqs.(i) <- hp.hseqs.(last);
    let moved = hp.hslots.(last) in
    hp.hslots.(i) <- moved;
    moved.pos <- i;
    hp.hslots.(last) <- dummy_handle;
    sift_up hp i;
    sift_down hp moved.pos
  end
  else hp.hslots.(i) <- dummy_handle

let hpop hp =
  let h = hp.hslots.(0) in
  h.where <- idle;
  h.pos <- idle;
  hp.hsize <- hp.hsize - 1;
  if hp.hsize > 0 then begin
    let last = hp.hsize in
    hp.htimes.(0) <- hp.htimes.(last);
    hp.hseqs.(0) <- hp.hseqs.(last);
    let moved = hp.hslots.(last) in
    hp.hslots.(0) <- moved;
    moved.pos <- 0;
    hp.hslots.(last) <- dummy_handle;
    sift_down hp 0
  end
  else hp.hslots.(0) <- dummy_handle;
  h

type backend = Heap | Wheel

type t = {
  backend : backend;
  due : heap;
  overflow : heap;
  (* Created lazily, on the first insert into a queue that has outgrown
     [wheel_threshold]; always [None] when [backend = Heap].  Laziness
     matters for churny small runs: a wheel is ~a thousand words of slot
     vecs that a 2-flow simulation would pay for and never use. *)
  mutable wheel : handle Timer_wheel.t option;
  wheel_threshold : int;
  mutable now : float;
  mutable next_seq : int;
  (* Total events queued across the three containers, maintained by
     insert / cancel / pop.  Makes [pending] O(1) and — more
     importantly — turns the per-insertion small-queue bypass check into
     a single int compare instead of an option match plus three loads,
     which is what kept tiny populations at parity with the pure heap. *)
  mutable count : int;
  mutable step_hook : (float -> unit) option;
}

(* Below this many pending events a binary heap (depth <= 8) beats the
   wheel's cascade constants, so small queues route through the overflow
   heap and a 2-flow run costs the same as the pure-heap backend.
   Placement is a pure optimization: [source] orders containers by exact
   (time, seq), so any event is correct in any container. *)
let default_wheel_threshold = 256

let create ?(backend = Wheel) ?(wheel_threshold = default_wheel_threshold)
    ?(start = 0.) () =
  {
    backend;
    due = mkheap in_due;
    overflow = mkheap in_overflow;
    wheel = None;
    wheel_threshold;
    now = start;
    next_seq = 0;
    count = 0;
    step_hook = None;
  }

let wheel_of t =
  match t.wheel with
  | Some w -> w
  | None ->
      let w =
        Timer_wheel.create ~granularity:256e-6 ~start:t.now ~dummy:dummy_handle
          ~move:(fun h ~slot ~idx ->
            h.where <- in_wheel;
            h.wslot <- slot;
            h.pos <- idx)
          ~due:(fun h ~time ~seq -> hpush t.due h ~time ~seq)
          ()
      in
      t.wheel <- Some w;
      w

let backend t = t.backend
let set_step_hook t f = t.step_hook <- f
let now t = t.now

let pending t = t.count
let wheel_allocated t = t.wheel <> None

let validate t at =
  if not (Float.is_finite at) then
    invalid_arg "Event_queue.schedule: non-finite time";
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Event_queue.schedule: time %.9f is before now %.9f" at t.now)

let insert t h ~at =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.count <- t.count + 1;
  match t.backend with
  | Heap -> hpush t.overflow h ~time:at ~seq
  | Wheel ->
      if t.count <= t.wheel_threshold then hpush t.overflow h ~time:at ~seq
      else (
        match Timer_wheel.add (wheel_of t) ~time:at ~seq h with
        | Timer_wheel.Placed -> () (* the wheel's move callback filed it *)
        | Timer_wheel.Due -> hpush t.due h ~time:at ~seq
        | Timer_wheel.Far -> hpush t.overflow h ~time:at ~seq)

let schedule t ~at action =
  validate t at;
  insert t (make_handle action) ~at

let schedule_after t ~delay action =
  schedule t ~at:(t.now +. Float.max 0. delay) action

let cancel t h =
  if h.where = in_due then begin
    hremove t.due h;
    t.count <- t.count - 1
  end
  else if h.where = in_overflow then begin
    hremove t.overflow h;
    t.count <- t.count - 1
  end
  else if h.where = in_wheel then begin
    (match t.wheel with
    | Some w -> Timer_wheel.remove w ~slot:h.wslot ~idx:h.pos
    | None -> assert false);
    h.where <- idle;
    h.pos <- idle;
    t.count <- t.count - 1
  end

let schedule_handle t h ~at =
  validate t at;
  if h.where = idle then insert t h ~at
  else if h.where = in_overflow then begin
    (* Overflow-resident (pure-heap backend, small queue, or far
       future): move in place.  A fresh sequence number keeps the FIFO
       tie-break identical to cancel + re-arm, and leaving a near event
       in the overflow heap is fine — see [default_wheel_threshold]. *)
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    hmove t.overflow h ~time:at ~seq
  end
  else begin
    (* Due- or wheel-resident: the new time may belong to a different
       container (wheel level, due heap, overflow); cancel + insert
       re-files it, and both halves are O(1) when wheel-resident. *)
    cancel t h;
    insert t h ~at
  end

let is_scheduled h = h.where <> idle

let scheduled_time t h =
  if h.where = in_due then t.due.htimes.(h.pos)
  else if h.where = in_overflow then t.overflow.htimes.(h.pos)
  else if h.where = in_wheel then
    match t.wheel with
    | Some w -> Timer_wheel.time_at w ~slot:h.wslot ~idx:h.pos
    | None -> assert false
  else infinity

let scheduled_at t h =
  let at = scheduled_time t h in
  if Float.is_finite at then Some at else None

(* Pick the heap holding the globally next event.  If the wheel might
   own it (due heap empty), advance the cursor to the wheel's next
   pending tick — migrating that tick's entries into the due heap —
   unless the overflow root is strictly earlier in tick space.  Returns
   a heap whose root is the global minimum; an empty heap means the
   whole queue is empty. *)
let source t =
  (match t.wheel with
  | Some w when t.due.hsize = 0 && Timer_wheel.size w > 0 ->
      let tk = Timer_wheel.next_tick w in
      if
        t.overflow.hsize = 0
        || Timer_wheel.tick_of w t.overflow.htimes.(0) >= tk
      then Timer_wheel.advance w tk
  | _ -> ());
  if t.due.hsize = 0 then t.overflow
  else if t.overflow.hsize = 0 then t.due
  else begin
    let td = t.due.htimes.(0) and tv = t.overflow.htimes.(0) in
    if td < tv || (td = tv && t.due.hseqs.(0) < t.overflow.hseqs.(0)) then t.due
    else t.overflow
  end

let step t =
  let hp = source t in
  if hp.hsize = 0 then false
  else begin
    (* Skip the write (and the float box it allocates) when consecutive
       events share a timestamp. *)
    if hp.htimes.(0) <> t.now then t.now <- hp.htimes.(0);
    (* Observer hook, pre-pop: it sees the clock already advanced and the
       due event still pending.  A [None] branch here is vastly cheaper
       than a recurring heap event — one extra resident slot deepens
       every sift path; a predicted branch costs nothing. *)
    (match t.step_hook with None -> () | Some f -> f t.now);
    let h = hpop hp in
    t.count <- t.count - 1;
    h.action ();
    true
  end

let run_until t horizon =
  let rec loop () =
    let hp = source t in
    if hp.hsize > 0 && hp.htimes.(0) <= horizon then begin
      if hp.htimes.(0) <> t.now then t.now <- hp.htimes.(0);
      (match t.step_hook with None -> () | Some f -> f t.now);
      let h = hpop hp in
      t.count <- t.count - 1;
      h.action ();
      loop ()
    end
    else t.now <- Float.max t.now horizon
  in
  loop ()

let run t = while step t do () done

(* Container layouts are deterministic functions of the operation
   sequence, so identical runs produce identical folds, and a marshalled
   copy reproduces the layout exactly.  Actions are closures and cannot
   be content-hashed; the armed times and FIFO sequence numbers pin the
   schedule, which is what divergence diagnosis needs.  In [Heap] mode
   the due heap is always empty and the wheel absent, so the encoding is
   bit-identical to the pre-wheel pure-heap fold. *)
let fold_heap buf hp =
  for i = 0 to hp.hsize - 1 do
    Statebuf.f buf hp.htimes.(i);
    Statebuf.i buf hp.hseqs.(i)
  done

let fold_state buf t =
  Statebuf.f buf t.now;
  Statebuf.i buf (pending t);
  Statebuf.i buf t.next_seq;
  fold_heap buf t.due;
  fold_heap buf t.overflow;
  match t.wheel with None -> () | Some w -> Timer_wheel.fold_state buf w
