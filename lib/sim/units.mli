(** Unit conventions and conversions.

    Throughout the code base: time is seconds ([float]), data sizes are bytes
    ([int]), and rates are bytes per second ([float]).  The paper quotes link
    rates in Mbit/s and delays in milliseconds; these helpers convert at API
    boundaries so internal code never mixes units. *)

val mbps : float -> float
(** [mbps x] is [x] Mbit/s expressed in bytes/s. *)

val to_mbps : float -> float
(** [to_mbps r] converts a rate in bytes/s to Mbit/s. *)

val ms : float -> float
(** [ms x] is [x] milliseconds in seconds. *)

val to_ms : float -> float
(** [to_ms t] converts seconds to milliseconds. *)

val kbps : float -> float
(** [kbps x] is [x] kbit/s in bytes/s. *)

val bdp_bytes : rate:float -> rtt:float -> int
(** Bandwidth-delay product in bytes for [rate] bytes/s and [rtt] seconds,
    rounded to the nearest byte. *)

val bdp_packets : rate:float -> rtt:float -> mss:int -> float
(** Bandwidth-delay product in packets of size [mss]. *)

val feq : ?eps:float -> float -> float -> bool
(** Approximate float equality: [|a - b| <= eps * max(1, |a|, |b|)].
    Default [eps] is [1e-9]. *)
