(** Sender endpoint: drives a {!Cca.t} against the simulated network.

    The flow sends fixed-size segments subject to the CCA's congestion
    window and pacing rate, detects losses by a packet-reordering threshold
    (3, the dup-ACK analogue) plus a retransmission timeout, feeds every
    event to the CCA, and records the traces the analysis layer consumes.

    Data is modeled as an infinite byte stream: a "lost" segment is not
    retransmitted, the sender just keeps sending new segments, and
    throughput is measured as acknowledged bytes over time.  This is the
    standard fluid abstraction and matches the paper's throughput
    definition (§4.2: bytes acknowledged in [0, t] divided by t).

    A flow may instead be given a finite [size_bytes]; it then stops
    producing new segments once that much data has been sent and
    {e completes} — quiescing all of its timers — when the last segment
    leaves the outstanding table.  Populations of such flows model churn
    (arrivals via [start_time], departures via completion). *)

type t

(** Structure-of-arrays arena for per-flow hot mutable state.  All flows
    of one simulation share a table: the pacing clock, progress clock and
    RTT estimator live in flat unboxed float arrays (one row per flow)
    rather than per-flow boxed records, and the CCA scratch event records
    are allocated once per table.  Sharing the scratch is safe because
    flow event processing is synchronous and non-reentrant across flows,
    and the {!Cca} contract forbids retaining the records. *)
module Table : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Rows are added by {!Flow.create} and the arrays double on demand;
      [capacity] (default 16) merely pre-sizes them. *)

  val flows : t -> int
  (** Rows ever allocated (monotone; recycled rows are not re-counted). *)

  val capacity : t -> int
  (** Current row capacity of the backing arrays.  With row recycling a
      churning population's capacity is bounded by its {e peak
      concurrency}, not by how many flows ever existed — the recycling
      test pins this. *)

  val free : t -> int -> unit
  (** Return a row to the free list for reuse by a later [alloc].  The
      caller must ensure no live flow still owns the row ({!Flow.respawn}
      reuses a completed flow's row in place and does {e not} free it).
      @raise Invalid_argument if the row was never allocated. *)
end

val create :
  eq:Event_queue.t ->
  id:int ->
  cca:Cca.t ->
  ?mss:int ->
  ?start_time:float ->
  ?stop_time:float ->
  ?min_rto:float ->
  ?initial_pacing:float ->
  ?inspect_period:float ->
  ?record_series:bool ->
  ?table:Table.t ->
  ?size_bytes:int ->
  ?on_complete:(unit -> unit) ->
  transmit:(Packet.t -> unit) ->
  unit ->
  t
(** The flow schedules its own start at [start_time] (default 0) and stops
    sending new segments at [stop_time].  [transmit] injects a packet into
    the network.  [min_rto] defaults to 200 ms.

    [initial_pacing] (bytes/s) spreads the opening window over time instead
    of dumping it as a line-rate burst: it paces sends until the first ACK
    arrives, after which the CCA's own pacing (or lack of it) governs.  The
    Theorem 1 construction uses this to hand a converged CCA instance to a
    new network without a queue-spike transient, matching the fluid model's
    initial conditions.

    [record_series] (default [true]) controls the per-ACK RTT / cwnd /
    delivered traces.  Disabling it keeps {!delivered_bytes} and friends
    exact while bounding the flow's memory — useful for long benchmark
    runs where checkpoint size would otherwise grow with history.

    [table] places the flow's hot state in a shared {!Table} (one fresh
    private row is allocated otherwise — equivalent, just less compact
    for large populations).  [size_bytes] bounds the data the flow
    sends; [on_complete] fires once when a sized flow completes.  The
    flow does not retransmit, so "complete" means every segment was
    acked or declared lost. *)

val respawn : t -> cca:Cca.t -> start_time:float -> ?size_bytes:int -> unit -> unit
(** Reincarnate a {!completed} sized flow as a new flow in place: same
    id, table row, outstanding rings and event handles, new CCA, start
    time and byte budget.  Counters, the RTT estimator and completion
    state are reset exactly as {!create} initializes them, and the start
    event is re-armed, so the observable event sequence is identical to
    destroying the flow and creating a fresh one — but nothing is
    allocated.  This is what lets a census run one million flows through
    a few thousand flow slots.  Only legal on flows created with
    [record_series = false] and no [inspect_period] (traces would
    silently concatenate incarnations).
    @raise Invalid_argument if the flow has not completed or records
    traces. *)

val id : t -> int
val cca : t -> Cca.t
val mss : t -> int

val receive_ack : t -> Packet.delivery list -> unit
(** Deliver a batch of ACKed packets (oldest first) at the current
    simulation time.  A batch of size > 1 models a coalesced delayed ACK:
    the CCA sees a single [on_ack] whose [acked_bytes] covers the batch and
    whose RTT is sampled from the newest packet. *)

val receive_ack_one : t -> Packet.t -> unit
(** ACK a single packet at the current simulation time.  Behaviorally
    identical to [receive_ack t [ { packet; delivered_at } ]] (the
    delivery time is not consulted) but allocation-free — the hot path for
    immediate-ACK flows. *)

val sent_bytes : t -> int
(** Cumulative bytes handed to the transmit callback (every segment is
    mss-sized, so this is [mss * packets sent]).  Anchors the end-to-end
    conservation oracle: sent = delivered downstream + dropped along the
    path + still in flight. *)

val delivered_bytes : t -> int
(** Cumulative bytes acknowledged. *)

val lost_bytes : t -> int
val inflight : t -> int

val outstanding_bytes : t -> int
(** Bytes in the retransmission bookkeeping table.  Always equals
    {!inflight}; the invariant monitor cross-checks the two. *)

val degraded_count : t -> int
(** How often an insane CCA output (NaN or negative cwnd / pacing rate)
    was clamped instead of corrupting the run. *)

val stall_probes : t -> int
(** Probe segments forced out after a full RTO passed with nothing
    outstanding and the CCA's gates still refusing to send — the
    graceful-degradation path that recovers a flow from a collapsed
    window (e.g. after a link blackout ate every ACK). *)

val size_bytes : t -> int option
(** The sized flow's byte budget; [None] for the unbounded stream. *)

val completed : t -> bool
(** Whether a sized flow has finished (always [false] when unbounded). *)

val completion_time : t -> float option
(** Simulation time the flow completed at, once {!completed}. *)

val throughput : t -> t0:float -> t1:float -> float
(** Mean delivery rate (bytes/s) over the interval, from the cumulative
    delivered-bytes trace. *)

val goodput : t -> horizon:float -> float
(** Delivered bytes per second over the flow's own active lifetime —
    from its start time to its completion, or to [horizon] while
    incomplete.  Needs no recorded series, so census populations can run
    with [record_series = false]. *)

val rtt_series : t -> Series.t
(** (ack time, RTT sample). *)

val cwnd_series : t -> Series.t
(** (ack time, cwnd bytes). *)

val delivered_series : t -> Series.t
(** (ack time, cumulative delivered bytes). *)

val rate_series : t -> window:float -> Series.t
(** Delivery rate (bytes/s) computed over trailing windows of the delivered
    trace — the "sending rate" series plotted in the paper's figures. *)

val inspect_series : t -> (string * Series.t) list
(** The CCA's {!Cca.t.inspect} internals sampled every [inspect_period]
    seconds (empty unless that option was given to {!create}) — e.g.
    BBR's bandwidth estimate or Copa's velocity over time. *)

val fold_state : Buffer.t -> t -> unit
(** Append the flow's transport state (counters, RTT estimator, live
    outstanding window keyed by sequence number, recorded series) to a
    {!Statebuf} encoding — part of the simulator's checkpoint content
    hash.  The encoding is independent of the outstanding ring's
    capacity, so it is stable across ring growth. *)
