type verdict = Pass | Mark

type red_state = {
  wq : float;
  max_p : float;
  min_th : float;
  max_th : float;
  rng : Rng.t;
  mutable avg : float;
  mutable count : int; (* packets since last mark, for spacing *)
}

type codel_state = {
  target : float;
  interval : float;
  mutable first_above : float option; (* when sojourn first exceeded target *)
  mutable marking : bool;
  mutable next_mark : float;
  mutable mark_count : int;
}

type discipline =
  | Threshold of int
  | Red of red_state
  | Codel of codel_state

type t = { discipline : discipline; mutable marks : int }

let threshold ~mark_above = { discipline = Threshold mark_above; marks = 0 }

let red ?(wq = 0.002) ?(max_p = 0.1) ~min_th ~max_th ~rng () =
  if max_th <= min_th then invalid_arg "Aqm.red: max_th must exceed min_th";
  {
    discipline =
      Red
        {
          wq;
          max_p;
          min_th = float_of_int min_th;
          max_th = float_of_int max_th;
          rng;
          avg = 0.;
          count = 0;
        };
    marks = 0;
  }

let codel ?(target = 0.005) ?(interval = 0.1) () =
  {
    discipline =
      Codel
        {
          target;
          interval;
          first_above = None;
          marking = false;
          next_mark = 0.;
          mark_count = 0;
        };
    marks = 0;
  }

let register t v =
  (match v with Mark -> t.marks <- t.marks + 1 | Pass -> ());
  v

let on_enqueue t ~now ~queue_bytes =
  ignore now;
  match t.discipline with
  | Threshold mark_above ->
      register t (if queue_bytes > mark_above then Mark else Pass)
  | Red s ->
      s.avg <- ((1. -. s.wq) *. s.avg) +. (s.wq *. float_of_int queue_bytes);
      if s.avg < s.min_th then begin
        s.count <- 0;
        register t Pass
      end
      else if s.avg >= s.max_th then begin
        s.count <- 0;
        register t Mark
      end
      else begin
        let pb = s.max_p *. (s.avg -. s.min_th) /. (s.max_th -. s.min_th) in
        (* Spacing correction from the RED paper: pa = pb / (1 - count*pb). *)
        let denom = 1. -. (float_of_int s.count *. pb) in
        let pa = if denom <= 0. then 1. else pb /. denom in
        if Rng.bool s.rng ~p:pa then begin
          s.count <- 0;
          register t Mark
        end
        else begin
          s.count <- s.count + 1;
          register t Pass
        end
      end
  | Codel _ -> Pass

let codel_control_law s now =
  s.next_mark <-
    now +. (s.interval /. sqrt (float_of_int (max s.mark_count 1)))

let on_dequeue t ~now ~sojourn =
  match t.discipline with
  | Threshold _ | Red _ -> Pass
  | Codel s ->
      if sojourn < s.target then begin
        s.first_above <- None;
        s.marking <- false;
        register t Pass
      end
      else begin
        match s.first_above with
        | None ->
            s.first_above <- Some now;
            register t Pass
        | Some t0 ->
            if not s.marking then begin
              if now -. t0 >= s.interval then begin
                s.marking <- true;
                s.mark_count <- 1;
                codel_control_law s now;
                register t Mark
              end
              else register t Pass
            end
            else if now >= s.next_mark then begin
              s.mark_count <- s.mark_count + 1;
              codel_control_law s now;
              register t Mark
            end
            else register t Pass
      end

let marks t = t.marks

let fold_state buf t =
  Statebuf.i buf t.marks;
  match t.discipline with
  | Threshold th ->
      Statebuf.i buf 0;
      Statebuf.i buf th
  | Red s ->
      Statebuf.i buf 1;
      Statebuf.f buf s.avg;
      Statebuf.i buf s.count;
      Rng.fold_state buf s.rng
  | Codel s ->
      Statebuf.i buf 2;
      Statebuf.opt Statebuf.f buf s.first_above;
      Statebuf.b buf s.marking;
      Statebuf.f buf s.next_mark;
      Statebuf.i buf s.mark_count
