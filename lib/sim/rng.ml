type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used for seeding and splitting. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let state = ref seed64 in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let create ~seed = of_seed64 (Int64.of_int seed)

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

(* FNV-1a, 64-bit: a simple, well-mixed string hash.  Only used to turn a
   stream label into seed material, never for hash tables, so the weak
   avalanche on short inputs is papered over by the splitmix64 finalizer
   in [stream]. *)
let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let stream t ~label =
  (* Fold the parent's four state words and the label hash through
     splitmix64 without touching the parent: reading [t.s0..s3] does not
     advance the stream, so [stream] calls commute with each other and
     with later draws from [t].  Distinct labels land in distinct
     splitmix chains, giving statistically independent children. *)
  let state = ref (fnv1a64 label) in
  let fold w = state := Int64.logxor (splitmix64 state) w in
  fold t.s0;
  fold t.s1;
  fold t.s2;
  fold t.s3;
  of_seed64 (splitmix64 state)

let float t bound =
  (* 53 high bits -> uniform in [0,1). *)
  let u = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float u /. 9007199254740992. *. bound

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float t (float_of_int bound))

let bool t ~p = float t 1. < p

let exponential t ~mean =
  if not (mean > 0.) then invalid_arg "Rng.exponential: mean must be positive";
  (* Inverse CDF on the open interval: [float] returns values in [0,1),
     so [1. -. u] is in (0,1] and the log is finite. *)
  let u = float t 1. in
  -.mean *. log (1. -. u)

let pareto t ~alpha ~xm =
  if not (alpha > 0.) then invalid_arg "Rng.pareto: alpha must be positive";
  if not (xm > 0.) then invalid_arg "Rng.pareto: xm must be positive";
  (* Inverse CDF; [1. -. u] in (0,1] keeps the power finite. *)
  let u = float t 1. in
  xm *. ((1. -. u) ** (-1. /. alpha))

let fold_state buf t =
  Statebuf.i64 buf t.s0;
  Statebuf.i64 buf t.s1;
  Statebuf.i64 buf t.s2;
  Statebuf.i64 buf t.s3
