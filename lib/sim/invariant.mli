(** Runtime invariant monitor for the simulator.

    A passive recorder of named conservation-law checks that {!Network}
    (or any harness) evaluates while a simulation runs: packet/byte
    conservation at the bottleneck, event-clock monotonicity, queue
    occupancy against the buffer, jitter-bound compliance, and CCA output
    sanity.  A failed check never aborts the run — it is tallied and (up
    to a cap) recorded with a human-readable detail, so chaos harnesses
    can assert "zero violations" and debugging sessions can read what
    went wrong and when. *)

type violation = {
  time : float;  (** simulation time at which the check failed *)
  check : string;  (** check name, e.g. ["link-conservation"] *)
  detail : string;
}

type t

val create : ?max_recorded : int -> unit -> t
(** A fresh monitor.  At most [max_recorded] (default 100) violations keep
    their full detail; the total count and per-check tally are exact
    regardless. *)

val record : t -> time:float -> check:string -> detail:string -> unit
(** Record a violation directly. *)

val check : t -> time:float -> name:string -> detail:(unit -> string) -> bool -> unit
(** [check t ~time ~name ~detail cond] records a violation of [name] when
    [cond] is false.  [detail] is only forced on failure. *)

val count : t -> int
(** Total violations recorded so far. *)

val checks_run : t -> int
(** Total conditions evaluated (passes + failures). *)

val ok : t -> bool
(** [count t = 0]. *)

val violations : t -> violation list
(** Recorded violations, oldest first (capped at [max_recorded]). *)

val by_check : t -> (string * int) list
(** Exact per-check failure tally, sorted by check name. *)

val summary : t -> string
(** One-line human-readable summary, e.g.
    ["0 violations in 1200 checks"] or
    ["3 violations in 1200 checks: link-conservation x2, queue-bound x1"]. *)

val violation_to_string : violation -> string
(** ["[t=<sim time>] <check>: <detail>"] — every rendered violation leads
    with the simulation time so logs from monitored runs are greppable
    and sortable. *)

val report : ?max_lines:int -> t -> string
(** The {!summary} line followed by up to [max_lines] (default 20)
    recorded violations, one {!violation_to_string} per line, plus a
    truncation marker when more were tallied than shown. *)

val fold_state : Buffer.t -> t -> unit
(** Append the counts and the per-check tally (sorted by check name) to a
    {!Statebuf} encoding — part of the simulator's checkpoint content
    hash. *)
