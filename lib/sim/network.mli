(** Full network assembly: n flows sharing one bottleneck (§3 model).

    Data path:  sender → (per-flow random loss) → shared FIFO bottleneck →
    per-flow propagation delay → receiver.
    ACK path:   receiver → per-flow ACK policy (immediate / delayed /
    aggregated) → per-flow non-congestive delay element ({!Jitter}) → sender.

    The resulting RTT is [queueing + transmission + Rm + jitter], matching
    the paper's decomposition in §2.1. *)

(** Receiver-side acknowledgment generation. *)
type ack_policy =
  | Immediate
  | Delayed of { count : int; timeout : float }
      (** coalesce up to [count] deliveries or wait at most [timeout] — the
          delayed-ACK jitter source of Figure 7 *)
  | Aggregate of { period : float }
      (** ACKs leave the receiver only at integer multiples of [period] —
          the ACK-aggregation source of the PCC Vivace experiment (§5.3) *)

type flow_spec = {
  cca : Cca.t;
  start_time : float;
  stop_time : float option;
  extra_rm : float;  (** added to the base [rm], for unequal-RTT scenarios *)
  jitter : Jitter.policy;
  jitter_bound : float;  (** the model's D for this flow's path *)
  ack_policy : ack_policy;
  loss_rate : float;  (** i.i.d. drop probability on the data path *)
  mss : int;
  initial_pacing : float option;
      (** pace sends at this rate until the first ACK (see {!Flow.create}) *)
  inspect_period : float option;
      (** sample the CCA's internals into {!Flow.inspect_series} at this
          period *)
  record_series : bool;
      (** record the per-ACK RTT / cwnd / delivered traces (see
          {!Flow.create}); defaults to [true] *)
  size_bytes : int option;
      (** finite flow size: stop producing segments after this many bytes
          and complete when the last one is acked or lost (see
          {!Flow.create}); [None] (the default) is the unbounded stream *)
}

val flow : ?start_time:float -> ?stop_time:float -> ?extra_rm:float ->
  ?jitter:Jitter.policy -> ?jitter_bound:float -> ?ack_policy:ack_policy ->
  ?loss_rate:float -> ?mss:int -> ?initial_pacing:float ->
  ?inspect_period:float -> ?record_series:bool -> ?size_bytes:int ->
  Cca.t -> flow_spec
(** Spec with defaults: starts at 0, never stops, no extra delay, no jitter
    (bound [infinity]), immediate ACKs, no random loss, 1500-byte MSS,
    unbounded size. *)

type config = {
  rate : Link.rate;
  buffer : int option;  (** bottleneck buffer, bytes; [None] = unbounded *)
  ecn_threshold : int option;
      (** queue depth (bytes) above which arriving packets are CE-marked
          (sec. 6.4 explicit signaling); [None] disables ECN *)
  aqm : Aqm.t option;  (** alternatively, a full {!Aqm} discipline *)
  discipline : Link.discipline;
      (** queue scheduling: shared FIFO (the §3 model) or DRR per-flow
          isolation (the conclusion's "stronger isolation") *)
  rm : float;  (** base minimum propagation RTT, seconds *)
  flows : flow_spec list;
  t0 : float;  (** simulation start time (flows still start at their own
                   [start_time], which must be >= [t0]) *)
  duration : float;  (** horizon is [t0 + duration] *)
  seed : int;
  record_queue : bool;
  initial_queue_bytes : int;
      (** bytes of phantom traffic pre-loaded into the bottleneck at [t0] —
          sets the initial queueing delay d*(t0) that the Theorem 1
          construction chooses *)
  faults : Fault.plan;
      (** fault schedule: blackouts and rate steps compile into the link's
          service rate, buffer resizes become scheduled events, bursty loss
          and ACK blackholes hook the data / return paths (see {!Fault}) *)
  monitor_period : float option;
      (** audit the runtime invariants ({!invariant}) at this period;
          [None] (the default) disables the monitor *)
  backend : Event_queue.backend;
      (** event scheduler backend (default {!Event_queue.Wheel}); both
          backends pop in the same order, so results are identical — the
          {!Event_queue.Heap} baseline exists for benchmarking and for
          timelines beyond the wheel's horizon *)
}

val config :
  rate:Link.rate -> ?buffer:int -> ?ecn_threshold:int -> ?aqm:Aqm.t ->
  ?discipline:Link.discipline -> rm:float -> ?seed:int -> ?record_queue:bool ->
  ?initial_queue_bytes:int -> ?t0:float -> ?faults:Fault.plan ->
  ?monitor_period:float -> ?backend:Event_queue.backend ->
  duration:float -> flow_spec list -> config
(** @raise Invalid_argument on malformed parameters, including ack-policy
    parameters ([Delayed] count < 1 or timeout <= 0, [Aggregate] period
    <= 0) and non-positive [size_bytes]. *)

type t

val build : config -> t
(** Assemble the network without running it. *)

val run : t -> t
(** Run to [duration]; returns the handle to read results from (the
    argument itself).  In split-run mode (see {!set_split_run}) the
    simulation runs to mid-horizon, is serialized, and {e both} the
    restored copy and the original are finished; {!run} raises unless
    their full state hashes agree, so every experiment doubles as an
    end-to-end checkpoint/restore equivalence proof.  The original is
    still what is returned: callers may hold aliases into
    config-embedded objects (warmed CCA instances) that must see the
    fully evolved state. *)

val run_config : config -> t
(** [build |> run]. *)

val run_to : t -> float -> unit
(** Advance the simulation to [min time horizon] without finalizing:
    the closing audit does not run and the network can be advanced
    further (or serialized) afterwards.  Used by {!Snapshot} to pause at
    checkpoint boundaries. *)

val now : t -> float
(** Current simulation time. *)

val start_time : t -> float
val horizon : t -> float
(** [t0] and [t0 + duration] of the underlying config. *)

val config_of : t -> config

(** {2 Checkpointing} *)

val serialize : t -> string
(** Marshal the complete simulation state — flows, link, queues, delay
    lines, RNG streams, recorded series, pending events and the closures
    tying them together — into one opaque payload.  Restoring it yields a
    network whose future is byte-identical to the original's.  The
    payload is only valid in the producing binary ([Marshal.Closures]);
    use {!Snapshot} for a guarded on-disk format. *)

val deserialize : string -> t
(** Inverse of {!serialize}.  Unsafe across binaries — see {!Snapshot}. *)

val state_hash : t -> string
(** Hex digest of the network's observable mutable state, computed from
    per-module [fold_state] encodings (not from the Marshal payload), so
    it is stable across binaries and heap layouts.  Two runs of the same
    configuration that have processed the same events hash identically;
    this is the divergence oracle used by checkpoint equivalence tests
    and CI determinism checks. *)

val fingerprint : t -> (string * string) list
(** The named per-component digests underlying {!state_hash}
    (["event-queue"], ["link"], ["flow0"], ...) — lets a divergence
    report name the first component that differs rather than just "the
    hash changed". *)

val set_split_run : bool -> unit
(** Globally switch {!run} into split-run mode (default off): run to
    mid-horizon, serialize, finish both the restored copy and the
    original, and fail hard if their state hashes differ.  Not part of
    the serialized state. *)

val event_queue : t -> Event_queue.t
val link : t -> Link.t
val flows : t -> Flow.t array
val jitters : t -> Jitter.t array
val random_losses : t -> int array
(** Packets dropped by the random-loss element, per flow. *)

val received_bytes : t -> int array
(** Bytes actually delivered to each flow's receiver (post-bottleneck,
    post-propagation) — the far end of the data path's conservation
    chain: sent = pre-link drops + link drops + in link + propagating +
    received.  A fresh copy per call. *)

val propagating_bytes : t -> int array
(** Bytes per flow currently on the post-bottleneck propagation delay
    line (out of the link, not yet at the receiver).  A fresh array per
    call. *)

val phantom_flow_id : int
(** Flow id ([-1]) carried by the phantom packets that pre-load the
    bottleneck ([initial_queue_bytes]) — the id under which the link's
    per-flow byte counters account for that traffic. *)

val delay_line_fallbacks : t -> int
(** Total packets across all delay lines (data propagation and ACK
    return paths) that arrived with a non-monotone due time and fell
    back to a standalone per-packet event.  Expected to be 0 for every
    built-in jitter policy; a nonzero value means a [Controller] (or
    future policy) broke monotonicity and the simulator quietly paid
    the per-packet cost for those packets — results stay correct. *)

val force_audit : t -> unit
(** Run one invariant audit right now (a no-op without [monitor_period]).
    Lets tests and oracles check the conservation identities at an
    arbitrary instant instead of waiting for the next periodic tick. *)

val invariant : t -> Invariant.t option
(** The runtime invariant monitor; [None] unless [monitor_period] was
    given.  Checks run: event-clock monotonicity, link byte conservation
    (offered = delivered + dropped + queued; the phantom initial-queue
    bytes enter through [offered] like any other traffic), queue occupancy
    against the (possibly resized) buffer, jitter-bound compliance
    (promotes {!Jitter.violations} to a reported check), per-flow
    inflight accounting, CCA-output sanity, and the per-flow data-path
    conservation chain: sender-to-link ("flow-conservation": sent =
    pre-link drops + offered), end-to-end ("path-conservation": sent =
    pre-link drops + link drops + in link + propagating + received) and
    per-flow-slices-tile-the-aggregates ("link-flow-conservation").
    All byte identities are exact, not approximate — any slack is an
    accounting bug. *)

val fault_data_drops : t -> int array
(** Data packets consumed by the fault layer's bursty loss, per flow
    (all zeros when the config carries no faults). *)

val fault_ack_drops : t -> int array
(** ACK batches blackholed by the fault layer, per flow. *)

val throughput : t -> flow:int -> t0:float -> t1:float -> float
(** Bytes/s acknowledged by the given flow over the interval. *)

val throughputs : t -> ?warmup_frac:float -> unit -> float array
(** Per-flow throughput over [warmup_frac * duration, duration].
    Default warmup fraction 0.25. *)

val goodputs : t -> float array
(** Per-flow {!Flow.goodput} over each flow's own active lifetime (start
    to completion, or to the horizon while incomplete).  The per-flow
    rate measure for churning populations of sized flows, where a shared
    measurement window would misrepresent flows that lived outside it. *)

val utilization : t -> ?warmup_frac:float -> unit -> float
(** Sum of flow throughputs over the mean link rate in the same window. *)
