(** Hierarchical timing wheel: O(1) schedule/cancel for near-future
    events, backing {!Event_queue}'s hybrid scheduler.

    Time is discretised into ticks of [granularity] seconds (default
    1e-6 s).  The wheel has {!levels} levels of {!slots_per_level}
    slots; level [l] spans [32^(l+1)] ticks, so the default horizon is
    [32^7] ticks ~ 9.5 hours of simulated time at 1 us resolution.

    Level assignment is by the highest differing 5-bit group between an
    event's tick and the cursor's tick (the scheme used by hashed
    hierarchical wheels): an entry lives at the level of its highest
    tick-bit that differs from the cursor.  This makes cascades strictly
    downward — when the cursor enters a level-[l] block, every entry in
    that block's slot re-files at a level [< l] or becomes due — and
    makes slot reconstruction wrap-free, so the next pending tick can be
    recovered exactly from occupancy bitmaps.

    Events whose tick differs from the cursor above the top level do not
    fit ([add] returns [Far]); the caller keeps those in a separate
    overflow structure (Event_queue uses its binary heap).  Entries
    store the exact [(time, seq)] pair they were scheduled with, so the
    caller can reproduce a binary heap's FIFO tie-break order exactly.

    The wheel never runs callbacks itself: [move] reports storage
    relocation (for handle back-pointers) and [due] surrenders entries
    whose tick the cursor has reached.  Both must not reentrantly mutate
    the wheel. *)

type 'a t

val slot_bits : int
(** 5: slots per level = 32, so occupancy bitmaps are plain [int]s. *)

val slots_per_level : int
val levels : int

val horizon_ticks : int
(** [32^levels]: ticks representable before [add] answers [Far]. *)

type placement =
  | Placed  (** stored in the wheel; [move] was called with its location *)
  | Due  (** tick <= cursor: caller must treat it as immediately runnable *)
  | Far  (** beyond the horizon: caller must keep it elsewhere *)

val create :
  ?granularity:float ->
  start:float ->
  dummy:'a ->
  move:('a -> slot:int -> idx:int -> unit) ->
  due:('a -> time:float -> seq:int -> unit) ->
  unit ->
  'a t
(** [granularity] is the tick width in seconds (default [1e-6]).
    [start] positions the initial cursor.  [dummy] fills vacated slots
    so the wheel never retains popped items.  [move x ~slot ~idx] is
    called whenever [x] is stored or relocated; [remove] takes the same
    coordinates back.  [due x ~time ~seq] is called from {!advance} for
    every entry whose tick the cursor reached, in unspecified order —
    the caller re-sorts by [(time, seq)] (Event_queue pushes into its
    due heap). *)

val size : 'a t -> int
(** Entries currently stored in the wheel (excludes [Due]/[Far]). *)

val granularity : 'a t -> float

val tick_of : 'a t -> float -> int
(** The discretisation used for every placement decision:
    [floor (time / granularity)].  Exposed so the caller can compare
    overflow-heap times against wheel ticks in tick space (float
    products of tick * granularity could misorder by an ulp). *)

val cursor : 'a t -> int
(** Current cursor tick.  Entries in the wheel all have
    [tick > cursor]. *)

val add : 'a t -> time:float -> seq:int -> 'a -> placement
(** O(1).  On [Placed], [move] has been called with the entry's
    location.  On [Due]/[Far] the wheel stores nothing. *)

val remove : 'a t -> slot:int -> idx:int -> unit
(** O(1) cancel by location (as last reported via [move]).  The entry
    occupying the slot's tail is swapped in and gets a [move]
    callback. *)

val time_at : 'a t -> slot:int -> idx:int -> float
val seq_at : 'a t -> slot:int -> idx:int -> int

val next_tick : 'a t -> int
(** Smallest tick among stored entries; O(1) amortised via an exact
    memo, O(levels * 32 + occupied-slot scan) on recompute.
    Precondition: [size t > 0]. *)

val advance : 'a t -> int -> unit
(** [advance t target] moves the cursor to [target] (which must be
    [> cursor t] and [<= next_tick t] when entries exist — the caller
    advances to exactly the next pending tick), cascading higher-level
    slots downward and emitting every entry with [tick = target] via
    [due]. *)

val fold_state : Buffer.t -> 'a t -> unit
(** Deterministic digest of cursor + stored [(time, seq)] pairs in
    storage order, for {!Statebuf} fingerprints. *)
