(** Array-backed binary min-heap, polymorphic in the element type.

    The ordering is supplied at creation time.  Used by the event scheduler
    and by several analysis routines; kept separate so it can be property
    tested in isolation.

    The heap never retains references to popped or cleared elements: every
    vacated slot is overwritten with the creation-time [dummy].  This
    matters when elements are closures — the event queue's thunks capture
    packets and flows, and a heap that pinned them in the backing array
    would leak a run's worth of simulation state. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** Fresh empty heap.  [cmp] must be a total order; the minimum element
    (per [cmp]) is served first.  [dummy] is a throwaway value of the
    element type used to fill unused slots of the backing array; it is
    never compared against, never returned, and should not capture
    anything worth collecting. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element without removing it.  O(1). *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element.  O(log n).  The heap drops
    its reference to the element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Empty the heap, overwriting all occupied slots with the dummy. *)

val to_sorted_list : 'a t -> 'a list
(** Drains a copy of the heap; the heap itself is unchanged.  O(n log n). *)
