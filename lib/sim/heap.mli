(** Array-backed binary min-heap, polymorphic in the element type.

    The ordering is supplied at creation time.  Used by the event scheduler
    and by several analysis routines; kept separate so it can be property
    tested in isolation. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** Fresh empty heap.  [cmp] must be a total order; the minimum element
    (per [cmp]) is served first. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element without removing it.  O(1). *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element.  O(log n). *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Drains a copy of the heap; the heap itself is unchanged.  O(n log n). *)
