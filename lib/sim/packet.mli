(** Packets and delivery records flowing through the simulated network. *)

type t = {
  flow : int;  (** flow identifier, dense from 0 *)
  seq : int;  (** per-flow sequence number *)
  size : int;  (** bytes, including header abstraction *)
  sent_at : float;
  delivered_at_send : int;
      (** sender's cumulative-delivered counter when this packet left, used
          for delivery-rate samples (BBR-style rate estimation) *)
  app_limited : bool;
  mutable ce : bool;
      (** congestion-experienced mark, set by an ECN-enabled bottleneck
          (paper sec. 6.4) and echoed to the sender in the ACK *)
}

(** What the receiver hands to the ACK path for one delivered packet. *)
type delivery = {
  packet : t;
  delivered_at : float;  (** time the packet reached the receiver *)
}

val dummy : t
(** Placeholder packet (flow [-2], size 0) for preallocated buffers — ring
    slots, in-service registers — that need a value of the packet type
    without pinning a real packet.  Never enters the network. *)

val fold_state : Buffer.t -> t -> unit
(** Append every field to a {!Statebuf} encoding — part of the
    simulator's checkpoint content hash. *)

val pp : Format.formatter -> t -> unit
