type rate =
  | Constant of float
  | Piecewise of (float * float) array
  | Opportunities of { times : float array; period : float; bytes : int }

type discipline = Fifo | Drr of { quantum : int }

let rate_at spec time =
  match spec with
  | Constant r -> r
  | Opportunities { times; period; bytes } ->
      ignore time;
      if period <= 0. then invalid_arg "Link.rate_at: non-positive period"
      else float_of_int (Array.length times * bytes) /. period
  | Piecewise segs ->
      if Array.length segs = 0 then invalid_arg "Link.rate_at: empty piecewise rate";
      let rec search lo hi =
        (* Largest i with segs.(i) start <= time, or 0. *)
        if lo >= hi then lo
        else
          let mid = (lo + hi + 1) / 2 in
          if fst segs.(mid) <= time then search mid hi else search lo (mid - 1)
      in
      let i = if time < fst segs.(0) then 0 else search 0 (Array.length segs - 1) in
      snd segs.(i)

(* First opportunity strictly after [start] in a cyclic trace. *)
let next_opportunity ~times ~period start =
  let n = Array.length times in
  if n = 0 || period <= 0. then infinity
  else begin
    let cycle = Float.floor (start /. period) in
    let base = cycle *. period in
    let offset = start -. base in
    (* Binary search for the first trace time strictly greater. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if times.(mid) > offset then search lo mid else search (mid + 1) hi
    in
    let at i =
      (* Index beyond this cycle wraps into the next one. *)
      let k = i / n and j = i mod n in
      base +. (float_of_int k *. period) +. times.(j)
    in
    (* [base +. times.(i)] can round back onto [start] when base is large;
       skip forward until the result strictly advances, or the link serves
       its whole backlog in zero time. *)
    let rec first_after i = if at i > start then at i else first_after (i + 1) in
    first_after (search 0 n)
  end

let transmit_end spec ~start ~bytes =
  let bytes = float_of_int bytes in
  match spec with
  | Constant r -> if r <= 0. then infinity else start +. (bytes /. r)
  | Opportunities { times; period; bytes = _ } -> next_opportunity ~times ~period start
  | Piecewise segs ->
      let n = Array.length segs in
      if n = 0 then invalid_arg "Link.transmit_end: empty piecewise rate";
      let rec go i t remaining =
        if remaining <= 0. then t
        else if i >= n then
          (* Last segment extends forever. *)
          let r = snd segs.(n - 1) in
          if r <= 0. then infinity else t +. (remaining /. r)
        else begin
          let seg_start = fst segs.(i) and r = if i = 0 then snd segs.(0) else snd segs.(i - 1) in
          if t >= seg_start then go (i + 1) t remaining
          else if r <= 0. then go (i + 1) seg_start remaining
          else begin
            let capacity = r *. (seg_start -. t) in
            if capacity >= remaining then t +. (remaining /. r)
            else go (i + 1) seg_start (remaining -. capacity)
          end
        end
      in
      (* Find the first breakpoint after [start]. *)
      let rec first_after i = if i < n && fst segs.(i) <= start then first_after (i + 1) else i in
      go (first_after 0) start bytes

let mean_rate spec ~t0 ~t1 =
  if t1 <= t0 then rate_at spec t0
  else
    match spec with
    | Constant r -> r
    | Opportunities _ -> rate_at spec 0.
    | Piecewise segs ->
        (* Exact integral of the step function over [t0, t1], divided by
           the window — no sampling error. *)
        let n = Array.length segs in
        if n = 0 then invalid_arg "Link.mean_rate: empty piecewise rate";
        let rec first_after i =
          if i < n && fst segs.(i) <= t0 then first_after (i + 1) else i
        in
        let acc = ref 0. and cursor = ref t0 and v = ref (rate_at spec t0) in
        let i = ref (first_after 0) in
        while !i < n && fst segs.(!i) < t1 do
          acc := !acc +. (!v *. (fst segs.(!i) -. !cursor));
          cursor := fst segs.(!i);
          v := snd segs.(!i);
          incr i
        done;
        (!acc +. (!v *. (t1 -. !cursor))) /. (t1 -. t0)

(* Scheduler internals: one shared FIFO (a growable ring of packets with a
   parallel unboxed array of enqueue times — no per-packet tuple or queue
   cell), or per-flow queues served deficit-round-robin. *)
type fifo = {
  mutable pkts : Packet.t array;
  mutable enq : float array;
  mutable head : int;
  mutable len : int;
}

type sched =
  | Sfifo of fifo
  | Sdrr of {
      queues : (int, (Packet.t * float) Queue.t) Hashtbl.t;
      round : int Queue.t; (* flows with backlog, in round order *)
      in_round : (int, unit) Hashtbl.t;
      deficits : (int, int) Hashtbl.t;
      quantum : int;
    }

let fifo_grow f =
  let cap = Array.length f.pkts in
  if cap = 0 then begin
    f.pkts <- Array.make 64 Packet.dummy;
    f.enq <- Array.make 64 0.
  end
  else begin
    let pkts = Array.make (2 * cap) Packet.dummy and enq = Array.make (2 * cap) 0. in
    let tail_run = min f.len (cap - f.head) in
    Array.blit f.pkts f.head pkts 0 tail_run;
    Array.blit f.enq f.head enq 0 tail_run;
    Array.blit f.pkts 0 pkts tail_run (f.len - tail_run);
    Array.blit f.enq 0 enq tail_run (f.len - tail_run);
    f.pkts <- pkts;
    f.enq <- enq;
    f.head <- 0
  end

let fifo_push f pkt time =
  if f.len = Array.length f.pkts then fifo_grow f;
  let cap = Array.length f.pkts in
  let tail = f.head + f.len in
  let tail = if tail >= cap then tail - cap else tail in
  f.pkts.(tail) <- pkt;
  f.enq.(tail) <- time;
  f.len <- f.len + 1

let sched_of_discipline = function
  | Fifo -> Sfifo { pkts = [||]; enq = [||]; head = 0; len = 0 }
  | Drr { quantum } ->
      if quantum <= 0 then invalid_arg "Link: DRR quantum must be positive";
      Sdrr
        {
          queues = Hashtbl.create 8;
          round = Queue.create ();
          in_round = Hashtbl.create 8;
          deficits = Hashtbl.create 8;
          quantum;
        }

let sched_push sched pkt enq_time =
  match sched with
  | Sfifo f -> fifo_push f pkt enq_time
  | Sdrr d ->
      let f = pkt.Packet.flow in
      let q =
        match Hashtbl.find_opt d.queues f with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace d.queues f q;
            q
      in
      Queue.push (pkt, enq_time) q;
      if not (Hashtbl.mem d.in_round f) then begin
        Hashtbl.replace d.in_round f ();
        Queue.push f d.round
      end

(* DRR pop keeps the tuple representation: per-flow isolation is not the
   hot path.  The FIFO pop below is tuple-free. *)
let rec sched_pop_drr sched =
  match sched with
  | Sfifo _ -> assert false
  | Sdrr d -> begin
      match Queue.peek_opt d.round with
      | None -> None
      | Some f -> begin
          let q = Hashtbl.find d.queues f in
          if Queue.is_empty q then begin
            ignore (Queue.pop d.round);
            Hashtbl.remove d.in_round f;
            Hashtbl.replace d.deficits f 0;
            sched_pop_drr sched
          end
          else begin
            let pkt, _ = Queue.peek q in
            let deficit =
              match Hashtbl.find_opt d.deficits f with Some v -> v | None -> 0
            in
            if deficit >= pkt.Packet.size then begin
              Hashtbl.replace d.deficits f (deficit - pkt.Packet.size);
              Some (Queue.pop q)
            end
            else begin
              (* End of this flow's turn: top up and rotate. *)
              Hashtbl.replace d.deficits f (deficit + d.quantum);
              ignore (Queue.pop d.round);
              Queue.push f d.round;
              sched_pop_drr sched
            end
          end
        end
    end

let load_mahimahi_trace ?(bytes = 1500) path =
  let ic = open_in path in
  let entries = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = String.trim (input_line ic) in
          if line <> "" && line.[0] <> '#' then begin
            match int_of_string_opt line with
            | Some ms when ms >= 0 -> entries := ms :: !entries
            | Some _ | None ->
                invalid_arg
                  (Printf.sprintf "Link.load_mahimahi_trace: bad line %S" line)
          end
        done
      with End_of_file -> ());
  match List.rev !entries with
  | [] -> invalid_arg "Link.load_mahimahi_trace: empty trace"
  | ms_list ->
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      if not (sorted ms_list) then
        invalid_arg "Link.load_mahimahi_trace: timestamps must be non-decreasing";
      let last = List.nth ms_list (List.length ms_list - 1) in
      (* Mahimahi semantics: the trace loops with period = last timestamp;
         an opportunity exactly at the period belongs to the next cycle's
         origin, so clamp it just inside. *)
      let period = Float.max (float_of_int last /. 1000.) 0.001 in
      let times =
        Array.of_list
          (List.map
             (fun ms -> Float.min (float_of_int ms /. 1000.) (period -. 1e-9))
             ms_list)
      in
      Opportunities { times; period; bytes }

let cellular_trace ~rng ~period ?(bytes = 1500) ~mean_rate ~burstiness () =
  if burstiness < 1. then invalid_arg "Link.cellular_trace: burstiness must be >= 1";
  let n_opportunities =
    int_of_float (Float.round (mean_rate *. period /. float_of_int bytes))
  in
  (* Alternate fast/slow regimes with random dwell times; opportunity
     spacing within a regime is 1/(regime rate). *)
  let fast = 2. *. burstiness /. (1. +. burstiness) in
  let slow = 2. /. (1. +. burstiness) in
  let base_spacing = period /. float_of_int (max n_opportunities 1) in
  let times = ref [] in
  let t = ref 0. in
  let in_fast = ref true in
  let regime_left = ref 0. in
  while !t < period do
    if !regime_left <= 0. then begin
      in_fast := not !in_fast;
      regime_left := Rng.uniform rng ~lo:(0.05 *. period) ~hi:(0.2 *. period)
    end;
    let spacing = base_spacing /. (if !in_fast then fast else slow) in
    times := !t :: !times;
    t := !t +. spacing;
    regime_left := !regime_left -. spacing
  done;
  Opportunities { times = Array.of_list (List.rev !times); period; bytes }

(* All-float box: assigning the field is an unboxed store, unlike a
   mutable float field in the mixed record below (2 words per write). *)
type fbox = { mutable v : float }

(* Test-only accounting fault: bytes added to the link's delivered-bytes
   counter per serviced packet, i.e. a deliberate off-by-[skew] in the
   byte bookkeeping that the conservation oracles must catch.  A global
   (like {!Network.set_split_run}) rather than per-link state so a
   shrinker re-running candidate configs sees the same fault; never part
   of the serialized state.  Defaults to 0 = accounting is exact. *)
let accounting_skew = ref 0
let set_accounting_skew n = accounting_skew := n

(* Per-flow byte accounting, indexed by [flow + 1] so the phantom
   initial-queue flow (id -1) gets slot 0.  Grown on demand: links are
   built before the flow population is known. *)
type per_flow = {
  mutable offered : int array;
  mutable delivered : int array;
  mutable dropped : int array;
}

let pf_ensure pf idx =
  let cap = Array.length pf.offered in
  if idx >= cap then begin
    let ncap = max (idx + 1) (max 8 (2 * cap)) in
    let grow a =
      let b = Array.make ncap 0 in
      Array.blit a 0 b 0 cap;
      b
    in
    pf.offered <- grow pf.offered;
    pf.delivered <- grow pf.delivered;
    pf.dropped <- grow pf.dropped
  end

let pf_get a idx = if idx < Array.length a then a.(idx) else 0

type t = {
  eq : Event_queue.t;
  rate : rate;
  mutable buffer : int option;
  aqm : Aqm.t option;
  sched : sched;
  mutable on_dequeue : Packet.t -> unit;
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable in_service : Packet.t; (* valid iff busy; Packet.dummy otherwise *)
  in_service_enq : fbox;
  complete : Event_queue.handle; (* one persistent completion event slot *)
  mutable drops : int;
  mutable ce_marks : int;
  mutable offered_bytes : int;
  mutable dropped_bytes : int;
  mutable delivered_bytes : int;
  per_flow : per_flow;
  record_queue : bool;
  queue_series : Series.t;
}

let set_on_dequeue t f = t.on_dequeue <- f

let record t =
  if t.record_queue then
    Series.add t.queue_series ~time:(Event_queue.now t.eq) (float_of_int t.queued_bytes)

let mark t pkt =
  if not pkt.Packet.ce then begin
    pkt.Packet.ce <- true;
    t.ce_marks <- t.ce_marks + 1
  end

(* Pop the next packet to serve into the [in_service] registers.  Returns
   false when the scheduler is empty.  The FIFO path reads the ring
   directly — no tuple or option allocation per packet. *)
let sched_pop_into t =
  match t.sched with
  | Sfifo f ->
      if f.len = 0 then false
      else begin
        t.in_service <- f.pkts.(f.head);
        t.in_service_enq.v <- f.enq.(f.head);
        f.pkts.(f.head) <- Packet.dummy;
        f.head <- (if f.head + 1 = Array.length f.pkts then 0 else f.head + 1);
        f.len <- f.len - 1;
        true
      end
  | Sdrr _ -> begin
      match sched_pop_drr t.sched with
      | None -> false
      | Some (pkt, enq) ->
          t.in_service <- pkt;
          t.in_service_enq.v <- enq;
          true
    end

(* Service loop.  One persistent completion callback per link ([complete]
   handle, armed once per serviced packet): the packet in service and its
   enqueue time live in mutable registers instead of a fresh closure. *)
let rec start_service t =
  if not t.busy then
    if sched_pop_into t then begin
      let now = Event_queue.now t.eq in
      let finish = transmit_end t.rate ~start:now ~bytes:t.in_service.Packet.size in
      if Float.is_finite finish then begin
        t.busy <- true;
        Event_queue.schedule_handle t.eq t.complete ~at:finish
      end
      else begin
        (* Rate trace carries no more bytes: the link is dead; put the
           packet back on the scheduler. *)
        sched_push t.sched t.in_service t.in_service_enq.v;
        t.in_service <- Packet.dummy
      end
    end

and on_complete t =
  let served = t.in_service in
  t.in_service <- Packet.dummy;
  t.queued_bytes <- t.queued_bytes - served.Packet.size;
  t.delivered_bytes <- t.delivered_bytes + served.Packet.size + !accounting_skew;
  let fi = served.Packet.flow + 1 in
  pf_ensure t.per_flow fi;
  t.per_flow.delivered.(fi) <- t.per_flow.delivered.(fi) + served.Packet.size;
  t.busy <- false;
  let now = Event_queue.now t.eq in
  (match t.aqm with
  | Some aqm -> begin
      match Aqm.on_dequeue aqm ~now ~sojourn:(now -. t.in_service_enq.v) with
      | Aqm.Mark -> mark t served
      | Aqm.Pass -> ()
    end
  | None -> ());
  record t;
  t.on_dequeue served;
  start_service t

let create ~eq ~rate ?buffer ?ecn_threshold ?aqm ?(discipline = Fifo) ~record_queue
    () =
  let aqm =
    match (aqm, ecn_threshold) with
    | Some _, Some _ ->
        invalid_arg "Link.create: give either ecn_threshold or aqm, not both"
    | Some a, None -> Some a
    | None, Some th -> Some (Aqm.threshold ~mark_above:th)
    | None, None -> None
  in
  let t =
    {
      eq;
      rate;
      buffer;
      aqm;
      sched = sched_of_discipline discipline;
      on_dequeue = (fun _ -> invalid_arg "Link: on_dequeue not set");
      queued_bytes = 0;
      busy = false;
      in_service = Packet.dummy;
      in_service_enq = { v = 0. };
      complete = Event_queue.handle ignore;
      drops = 0;
      ce_marks = 0;
      offered_bytes = 0;
      dropped_bytes = 0;
      delivered_bytes = 0;
      per_flow = { offered = [||]; delivered = [||]; dropped = [||] };
      record_queue;
      queue_series = Series.create ~name:"queue_bytes" ();
    }
  in
  Event_queue.set_action t.complete (fun () -> on_complete t);
  t

let enqueue t pkt =
  t.offered_bytes <- t.offered_bytes + pkt.Packet.size;
  let fi = pkt.Packet.flow + 1 in
  pf_ensure t.per_flow fi;
  t.per_flow.offered.(fi) <- t.per_flow.offered.(fi) + pkt.Packet.size;
  let fits =
    match t.buffer with
    | None -> true
    | Some cap -> t.queued_bytes + pkt.Packet.size <= cap
  in
  if not fits then begin
    t.drops <- t.drops + 1;
    t.dropped_bytes <- t.dropped_bytes + pkt.Packet.size;
    t.per_flow.dropped.(fi) <- t.per_flow.dropped.(fi) + pkt.Packet.size;
    `Dropped
  end
  else begin
    let now = Event_queue.now t.eq in
    (match t.aqm with
    | Some aqm -> begin
        match Aqm.on_enqueue aqm ~now ~queue_bytes:t.queued_bytes with
        | Aqm.Mark -> mark t pkt
        | Aqm.Pass -> ()
      end
    | None -> ());
    sched_push t.sched pkt now;
    t.queued_bytes <- t.queued_bytes + pkt.Packet.size;
    record t;
    start_service t;
    `Enqueued
  end

let fold_sched buf = function
  | Sfifo f ->
      Statebuf.i buf 0;
      Statebuf.i buf f.len;
      let cap = Array.length f.pkts in
      for k = 0 to f.len - 1 do
        let idx = (f.head + k) mod cap in
        Packet.fold_state buf f.pkts.(idx);
        Statebuf.f buf f.enq.(idx)
      done
  | Sdrr d ->
      Statebuf.i buf 1;
      Statebuf.i buf d.quantum;
      (* Hashtbl iteration order is insertion-history dependent; fold flow
         ids in sorted order so the encoding is canonical. *)
      let flows =
        Hashtbl.fold (fun f _ acc -> f :: acc) d.queues []
        |> List.sort compare
      in
      Statebuf.i buf (List.length flows);
      List.iter
        (fun f ->
          Statebuf.i buf f;
          let q = Hashtbl.find d.queues f in
          Statebuf.i buf (Queue.length q);
          Queue.iter
            (fun (pkt, enq) ->
              Packet.fold_state buf pkt;
              Statebuf.f buf enq)
            q;
          Statebuf.i buf
            (match Hashtbl.find_opt d.deficits f with Some v -> v | None -> 0))
        flows;
      Statebuf.i buf (Queue.length d.round);
      Queue.iter (Statebuf.i buf) d.round

let fold_state buf t =
  Statebuf.opt Statebuf.i buf t.buffer;
  Statebuf.i buf t.queued_bytes;
  Statebuf.b buf t.busy;
  Packet.fold_state buf t.in_service;
  Statebuf.f buf t.in_service_enq.v;
  Statebuf.i buf t.drops;
  Statebuf.i buf t.ce_marks;
  Statebuf.i buf t.offered_bytes;
  Statebuf.i buf t.dropped_bytes;
  Statebuf.i buf t.delivered_bytes;
  (* Fold per-flow counters only up to the last nonzero slot so the
     encoding does not depend on array growth history. *)
  let last_nonzero =
    let last = ref (-1) in
    let scan a =
      Array.iteri (fun i v -> if v <> 0 && i > !last then last := i) a
    in
    scan t.per_flow.offered;
    scan t.per_flow.delivered;
    scan t.per_flow.dropped;
    !last
  in
  Statebuf.i buf (last_nonzero + 1);
  for i = 0 to last_nonzero do
    Statebuf.i buf (pf_get t.per_flow.offered i);
    Statebuf.i buf (pf_get t.per_flow.delivered i);
    Statebuf.i buf (pf_get t.per_flow.dropped i)
  done;
  fold_sched buf t.sched;
  Statebuf.opt Aqm.fold_state buf t.aqm;
  Statebuf.b buf t.record_queue;
  Series.fold_state buf t.queue_series

let queued_bytes t = t.queued_bytes

let queue_delay t =
  let r = rate_at t.rate (Event_queue.now t.eq) in
  if r <= 0. then infinity else float_of_int t.queued_bytes /. r

let drops t = t.drops
let ce_marks t = t.ce_marks
let offered_bytes t = t.offered_bytes
let dropped_bytes t = t.dropped_bytes
let delivered_bytes t = t.delivered_bytes
let offered_bytes_for t ~flow = pf_get t.per_flow.offered (flow + 1)
let delivered_bytes_for t ~flow = pf_get t.per_flow.delivered (flow + 1)
let dropped_bytes_for t ~flow = pf_get t.per_flow.dropped (flow + 1)
let queue_series t = t.queue_series
let buffer t = t.buffer

let set_buffer t buffer =
  (match buffer with
  | Some b when b < 0 -> invalid_arg "Link.set_buffer: negative buffer"
  | _ -> ());
  t.buffer <- buffer
