(** Declarative fault injection for simulated networks.

    A fault plan is a list of scheduled events applied to a
    {!Network.config}: link blackouts (service rate forced to 0 over a
    window), rate renegotiation steps, mid-run buffer resizes,
    Gilbert-Elliott bursty loss on a flow's data path, and ACK blackhole
    windows on a flow's return path.  Link-rate faults compile into a
    {!Link.Piecewise} schedule, so the existing service loop needs no
    special cases; stochastic faults draw from a dedicated {!Rng} stream
    split off the experiment seed, so every faulty scenario replays
    bit-identically for a given seed. *)

type event =
  | Link_blackout of { t0 : float; t1 : float }
      (** bottleneck rate forced to 0 on [t0, t1); queued packets wait,
          arrivals still obey the drop-tail buffer *)
  | Rate_step of { at : float; rate : float }
      (** capacity renegotiation: the nominal link rate becomes [rate]
          (bytes/s) from [at] until the next step *)
  | Buffer_resize of { at : float; buffer : int option }
      (** drop-tail capacity becomes [buffer] bytes at [at] ([None] =
          unbounded).  Already-queued packets are never evicted; a shrink
          below the current occupancy only blocks new admissions until
          the queue drains. *)
  | Ack_blackhole of { flow : int; t0 : float; t1 : float }
      (** ACKs of this flow arriving at the return path on [t0, t1) are
          silently discarded *)
  | Bursty_loss of {
      flow : int;
      t0 : float;
      t1 : float;
      p_enter : float;  (** per-packet good->bad transition probability *)
      p_exit : float;  (** per-packet bad->good transition probability *)
      loss_good : float;  (** drop probability in the good state *)
      loss_bad : float;  (** drop probability in the bad state *)
    }
      (** Gilbert-Elliott two-state Markov loss on the flow's data path,
          active on [t0, t1) (the chain rests in the good state outside
          the window).  Replaces the i.i.d. Bernoulli [loss_rate] with
          correlated loss bursts. *)

type plan

val plan : event list -> plan
(** Validate and freeze a schedule.
    @raise Invalid_argument on an empty window ([t1 <= t0]), a negative
    time, rate or buffer, a probability outside [0, 1], a drop
    probability of 1 (the flow could never recover), or a negative flow
    index. *)

val none : plan
(** The empty plan (no faults). *)

val events : plan -> event list
val is_empty : plan -> bool

val blackouts : plan -> (float * float) list
(** Blackout windows, sorted by start time. *)

val buffer_events : plan -> (float * int option) list
(** Buffer resizes, sorted by time. *)

val compile_rate : plan -> Link.rate -> Link.rate
(** Fold the plan's blackouts and rate steps into a service-rate
    schedule.  Returns the base rate unchanged when the plan carries no
    link-rate faults.
    @raise Invalid_argument if link-rate faults are combined with an
    {!Link.Opportunities} trace (opportunity traces have no meaningful
    piecewise overlay). *)

(** {1 Runtime state}

    The stochastic faults (Gilbert-Elliott chains) and the drop counters
    live in an instance bound to one simulation run. *)

type t

val instantiate : plan -> nflows:int -> rng:Rng.t -> t
(** Fresh runtime state; per-flow chains draw from independent streams
    split off [rng]. *)

val data_drop : t -> flow:int -> now:float -> bool
(** Ask whether the data packet a flow is transmitting at [now] is
    consumed by a fault.  Advances the flow's Gilbert-Elliott chain (one
    transition per packet) and counts the drop.  Flows outside any
    bursty-loss window never drop and their chain rests in good. *)

val ack_drop : t -> flow:int -> now:float -> bool
(** Ask whether an ACK (batch) arriving at the return path at [now]
    falls into one of the flow's blackhole windows; counts the drop. *)

val data_drops : t -> int array
(** Packets consumed by bursty loss, per flow. *)

val ack_drops : t -> int array
(** ACK batches blackholed, per flow. *)

val fold_state : Buffer.t -> t -> unit
(** Append the per-flow chain states (RNG stream + good/bad bit) and drop
    counters to a {!Statebuf} encoding — part of the simulator's
    checkpoint content hash.  The static windows come from the plan and
    are covered by the configuration, not folded here. *)
