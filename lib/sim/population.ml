(* Churning-population engine for the starvation census.

   [Network] materializes one flow spec, one flow, one jitter element and
   two delay lines per flow *for the whole run* — fine at 10^4 flows,
   hopeless at 10^6.  This engine exploits what a census population
   actually is: a birth-death process whose *concurrency* is bounded
   (arrival rate x mean lifetime) even when the total flow count is not.
   It keeps a pool of flow *slots* sized by peak concurrency and streams
   the population through them:

   - Arrivals are generated lazily by one persistent event-queue handle
     (Poisson gaps over the arrival window), not pre-materialized.
   - A departed flow's slot — its [Flow.t], outstanding rings, ACK delay
     line and (columnar) CCA row — is recycled via {!Flow.respawn} for
     the next arrival.  Steady-state churn allocates almost nothing.
   - [Packet.flow] carries the *slot* id, so the link's per-flow
     counters and the delivery dispatch stay bounded by concurrency.

   Slot-reuse safety: a slot is recycled only when its flow has
   completed AND every packet it ever pushed into the link has come back
   through the ACK line ([refs] = 0).  The census path has no loss
   downstream of link admission — a packet the link accepts is always
   eventually delivered and acked — so [refs] provably drains.  Until it
   does, the completed flow stays parked: a straggler ACK arriving after
   a spurious-RTO completion hits [Flow.receive_ack_one] on the old
   incarnation, where the emptied outstanding table makes it a no-op. *)

type config = {
  n : int;
  duration : float;
  arrival_frac : float;
  rate : float;
  buffer : int option;
  rm : float;
  mss : int;
  jitter_d : float;
  seed : int;
  key : string;
  alpha : float;
  xm : float;
  size_cap : int;
}

type result = {
  goodputs : float array;
  spawned : int;
  completed : int;
  peak_active : int;
  peak_pending : int;
  slots : int;
  table_capacity : int;
  fallbacks : int;
}

type slot_state = Active | Retired | Free

type slot = {
  sid : int;
  flow : Flow.t;
  ack_line : Packet.t Delay_line.t;
  mutable inst : Cca.instance;
  mutable jitter : Jitter.t option;
  mutable refs : int; (* packets admitted by the link, not yet acked *)
  mutable state : slot_state;
  mutable flow_no : int; (* population index of the current incarnation *)
}

let validate cfg =
  if cfg.n <= 0 then invalid_arg "Population.run: n must be positive";
  if not (cfg.duration > 0.) then
    invalid_arg "Population.run: duration must be positive";
  if not (cfg.arrival_frac > 0. && cfg.arrival_frac <= 1.) then
    invalid_arg "Population.run: arrival_frac must be in (0, 1]";
  if not (cfg.rate > 0.) then invalid_arg "Population.run: rate must be positive";
  if cfg.rm < 0. then invalid_arg "Population.run: negative propagation delay";
  if cfg.mss <= 0 then invalid_arg "Population.run: mss must be positive";
  if cfg.jitter_d < 0. then invalid_arg "Population.run: negative jitter";
  if not (cfg.alpha > 0. && cfg.xm > 0.) then
    invalid_arg "Population.run: pareto parameters must be positive";
  if cfg.size_cap < cfg.mss then
    invalid_arg "Population.run: size_cap below one segment"

let run ~cca:make_cca cfg =
  validate cfg;
  let eq = Event_queue.create () in
  let link =
    Link.create ~eq ~rate:(Link.Constant cfg.rate) ?buffer:cfg.buffer
      ~record_queue:false ()
  in
  let master = Rng.create ~seed:cfg.seed in
  let arrivals_rng = Rng.stream master ~label:(cfg.key ^ "/arrivals") in
  let sizes_rng = Rng.stream master ~label:(cfg.key ^ "/sizes") in
  let jitter_rng = Rng.stream master ~label:(cfg.key ^ "/jitter") in
  let horizon = cfg.duration in
  let window = cfg.arrival_frac *. cfg.duration in
  let mean_gap = window /. float_of_int cfg.n in
  let table = Flow.Table.create ~capacity:64 () in
  let goodputs = Array.make cfg.n 0. in

  (* Slot store and free stack — both flat and growable. *)
  let slots : slot option array ref = ref [||] in
  let nslots = ref 0 in
  let get_slot id =
    match (!slots).(id) with Some s -> s | None -> assert false
  in
  let add_slot s =
    if !nslots = Array.length !slots then begin
      let cap = max 64 (2 * Array.length !slots) in
      let b = Array.make cap None in
      Array.blit !slots 0 b 0 !nslots;
      slots := b
    end;
    (!slots).(!nslots) <- Some s;
    incr nslots
  in
  let free_stack = ref [||] in
  let nfree = ref 0 in
  let push_free sid =
    if !nfree = Array.length !free_stack then begin
      let cap = max 64 (2 * Array.length !free_stack) in
      let b = Array.make cap 0 in
      Array.blit !free_stack 0 b 0 !nfree;
      free_stack := b
    end;
    (!free_stack).(!nfree) <- sid;
    incr nfree
  in
  let pop_free () =
    if !nfree = 0 then None
    else begin
      decr nfree;
      Some (!free_stack).(!nfree)
    end
  in

  let spawned = ref 0 in
  let completed = ref 0 in
  let active = ref 0 in
  let peak_active = ref 0 in
  let peak_pending = ref 0 in

  let maybe_free s =
    if s.state = Retired && s.refs = 0 then begin
      s.state <- Free;
      push_free s.sid
    end
  in
  let complete_slot s =
    goodputs.(s.flow_no) <- Flow.goodput s.flow ~horizon;
    incr completed;
    decr active;
    s.state <- Retired;
    maybe_free s
  in
  let transmit_slot s pkt =
    match Link.enqueue link pkt with
    | `Enqueued -> s.refs <- s.refs + 1
    | `Dropped -> ()
  in
  let ack_slot s pkt =
    (* Decrement before the flow sees the ACK: if this ACK completes the
       flow, [complete_slot]'s [maybe_free] must already see [refs] = 0. *)
    s.refs <- s.refs - 1;
    Flow.receive_ack_one s.flow pkt;
    maybe_free s
  in

  (* One shared post-bottleneck propagation line: the link is FIFO and
     the propagation delay constant, so dequeue + rm is globally
     monotone — a single line replaces one per flow. *)
  let data_line =
    Delay_line.create ~eq ~dummy:Packet.dummy (fun pkt ->
        let s = get_slot pkt.Packet.flow in
        let arrival = Event_queue.now eq in
        let release =
          match s.jitter with
          | Some j ->
              Jitter.release_at j ~flow:s.sid ~arrival ~sent:pkt.Packet.sent_at
          | None -> arrival
        in
        Delay_line.push s.ack_line ~due:release pkt)
  in
  Link.set_on_dequeue link (fun pkt ->
      Delay_line.push data_line ~due:(Event_queue.now eq +. cfg.rm) pkt);

  let fresh_jitter () =
    if cfg.jitter_d > 0. then
      Some
        (Jitter.create ~bound:cfg.jitter_d ~rng:(Rng.split jitter_rng)
           (Jitter.Uniform { lo = 0.; hi = cfg.jitter_d }))
    else None
  in

  let new_slot ~start_time ~size ~flow_no =
    let sid = !nslots in
    let inst = make_cca ~slot:sid ~prev:None in
    let flow =
      Flow.create ~eq ~id:sid ~cca:inst.Cca.cca ~mss:cfg.mss ~start_time
        ~record_series:false ~table ~size_bytes:size
        ~on_complete:(fun () -> complete_slot (get_slot sid))
        ~transmit:(fun pkt -> transmit_slot (get_slot sid) pkt)
        ()
    in
    let ack_line =
      Delay_line.create ~eq ~dummy:Packet.dummy (fun pkt ->
          ack_slot (get_slot sid) pkt)
    in
    add_slot
      {
        sid;
        flow;
        ack_line;
        inst;
        jitter = fresh_jitter ();
        refs = 0;
        state = Active;
        flow_no;
      }
  in
  let respawn_slot sid ~start_time ~size ~flow_no =
    let s = get_slot sid in
    let next = make_cca ~slot:sid ~prev:(Some s.inst) in
    if next != s.inst then s.inst.Cca.release ();
    s.inst <- next;
    s.jitter <- fresh_jitter ();
    (* [refs] = 0 implies the per-slot ACK line is empty; forget the old
       incarnation's release watermark so the new flow's (earlier-looking
       relative to jitter) releases stay on the allocation-free path. *)
    Delay_line.reset_last_due s.ack_line;
    Flow.respawn s.flow ~cca:next.Cca.cca ~start_time ~size_bytes:size ();
    s.flow_no <- flow_no;
    s.state <- Active
  in

  (* Lazy Poisson arrivals: one persistent handle; gaps and sizes come
     from order-independent labeled streams, in flow order, so the
     population is a pure function of (seed, key) regardless of how many
     slots exist or how they are recycled. *)
  let next_t = ref 0. in
  let arrival_h = Event_queue.handle ignore in
  let spawn_next () =
    let now = Event_queue.now eq in
    let k = !spawned in
    spawned := k + 1;
    let size =
      min cfg.size_cap
        (int_of_float (Rng.pareto sizes_rng ~alpha:cfg.alpha ~xm:cfg.xm))
    in
    (match pop_free () with
    | Some sid -> respawn_slot sid ~start_time:now ~size ~flow_no:k
    | None -> new_slot ~start_time:now ~size ~flow_no:k);
    incr active;
    if !active > !peak_active then peak_active := !active;
    let p = Event_queue.pending eq in
    if p > !peak_pending then peak_pending := p;
    if !spawned < cfg.n then begin
      next_t := !next_t +. Rng.exponential arrivals_rng ~mean:mean_gap;
      Event_queue.schedule_handle eq arrival_h ~at:(Float.min !next_t window)
    end
  in
  Event_queue.set_action arrival_h spawn_next;
  next_t := Rng.exponential arrivals_rng ~mean:mean_gap;
  Event_queue.schedule_handle eq arrival_h ~at:(Float.min !next_t window);

  Event_queue.run_until eq horizon;

  (* Survivors: flows still active at the horizon score their delivered
     bytes over their truncated lifetime, exactly as {!Network.goodputs}
     does for incomplete flows. *)
  for sid = 0 to !nslots - 1 do
    let s = get_slot sid in
    if s.state = Active then goodputs.(s.flow_no) <- Flow.goodput s.flow ~horizon
  done;

  let fallbacks = ref (Delay_line.fallbacks data_line) in
  for sid = 0 to !nslots - 1 do
    fallbacks := !fallbacks + Delay_line.fallbacks (get_slot sid).ack_line
  done;

  {
    goodputs;
    spawned = !spawned;
    completed = !completed;
    peak_active = !peak_active;
    peak_pending = !peak_pending;
    slots = !nslots;
    table_capacity = Flow.Table.capacity table;
    fallbacks = !fallbacks;
  }
