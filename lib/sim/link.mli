(** Constant- or variable-rate FIFO bottleneck with a drop-tail buffer.

    Packets are served in arrival order at the link rate; a packet occupies
    the buffer from enqueue until its transmission completes.  The
    time-varying rate form implements the paper's "strong model" (§6.5)
    where an adversary may vary the link rate arbitrarily. *)

(** Service rate specification, bytes/s. *)
type rate =
  | Constant of float
  | Piecewise of (float * float) array
      (** [(t_i, r_i)] sorted by [t_i]; rate [r_i] applies from [t_i] until
          the next breakpoint.  [r_0] also applies before [t_0].  Rates may
          be 0 (the link pauses). *)
  | Opportunities of { times : float array; period : float; bytes : int }
      (** Mahimahi-style trace replay: one delivery opportunity of up to
          [bytes] at each [times.(i) + k * period] for k = 0, 1, ... —
          [times] sorted, all within [0, period).  A packet departs at the
          first unused opportunity at or after its service turn; smaller
          packets still consume a whole opportunity.  [rate_at] reports the
          trace's average rate. *)

(** Queue scheduling discipline. *)
type discipline =
  | Fifo  (** single shared queue — the paper's §3 model *)
  | Drr of { quantum : int }
      (** per-flow queues served deficit-round-robin — the "stronger
          isolation" the conclusion suggests; [quantum] in bytes *)

val rate_at : rate -> float -> float

val transmit_end : rate -> start:float -> bytes:int -> float
(** Time at which a transmission of [bytes] beginning at [start] completes;
    [infinity] if the remaining rate trace cannot carry the bytes.  For
    [Opportunities] this is the first opportunity strictly after [start]
    (each serves one packet regardless of [bytes]). *)

val mean_rate : rate -> t0:float -> t1:float -> float
(** Time-average of the rate over [t0, t1].  Exact piecewise integral for
    [Piecewise] (no sampling error); the constant for [Constant]; the
    trace's whole-period average for [Opportunities] (matching [rate_at]).
    Falls back to [rate_at t0] when [t1 <= t0]. *)

val load_mahimahi_trace : ?bytes:int -> string -> rate
(** Parse a Mahimahi [mm-link] trace file: one millisecond timestamp per
    line, each an opportunity to deliver one MTU; the file's last
    timestamp defines the loop period.  Blank lines and [#] comments are
    skipped.
    @raise Sys_error if the file cannot be read.
    @raise Invalid_argument on malformed or unsorted content. *)

val cellular_trace :
  rng:Rng.t -> period:float -> ?bytes:int -> mean_rate:float ->
  burstiness:float -> unit -> rate
(** Synthesize an [Opportunities] trace resembling a cellular link: the
    opportunity process alternates between fast and slow regimes with
    random dwell times, averaging [mean_rate] bytes/s over [period].
    [burstiness] >= 1 is the fast/slow rate ratio (1 = smooth). *)

type t

val create :
  eq:Event_queue.t -> rate:rate -> ?buffer:int -> ?ecn_threshold:int ->
  ?aqm:Aqm.t -> ?discipline:discipline -> record_queue:bool -> unit -> t
(** [buffer] is the queue capacity in bytes (including the packet in
    service); omit it for the paper's ideal unbounded queue.  When
    [record_queue] is set, the occupancy is logged to a series on every
    enqueue/dequeue.

    ECN (sec. 6.4): [ecn_threshold] installs the paper's simple
    threshold AQM (mark arrivals above that many queued bytes); [aqm]
    installs an arbitrary {!Aqm} discipline (RED, CoDel).  Give at most
    one.  Unlike delay or loss, the CE mark is an unambiguous congestion
    signal. *)

val set_on_dequeue : t -> (Packet.t -> unit) -> unit
(** Called when a packet finishes transmission.  Must be set before any
    traffic arrives. *)

val enqueue : t -> Packet.t -> [ `Enqueued | `Dropped ]

val queued_bytes : t -> int
val queue_delay : t -> float
(** Current backlog divided by the current rate — the queueing delay a
    packet arriving now would see.  [infinity] when the rate is 0. *)

val drops : t -> int

val ce_marks : t -> int
(** Packets marked congestion-experienced so far. *)

val offered_bytes : t -> int
(** Total bytes presented to {!enqueue} (admitted or dropped). *)

val dropped_bytes : t -> int
(** Bytes rejected by the drop-tail buffer.  Conservation invariant:
    [offered_bytes = delivered_bytes + dropped_bytes + queued_bytes]. *)

val delivered_bytes : t -> int

val offered_bytes_for : t -> flow:int -> int
val delivered_bytes_for : t -> flow:int -> int
val dropped_bytes_for : t -> flow:int -> int
(** Per-flow slices of the byte counters above (flow id [-1] is the
    phantom initial-queue traffic).  Flows the link has never seen
    report 0.  Per-link-per-flow conservation holds exactly:
    [offered_for = delivered_for + dropped_for + bytes of that flow
    still queued or in service]. *)

val set_accounting_skew : int -> unit
(** Test-only fault injection: add this many bytes to the {e aggregate}
    delivered-bytes counter per serviced packet — a deliberate
    accounting bug that the conservation oracles in [lib/validate] must
    detect.  Global (not per link, not serialized), so a shrinker
    re-running candidate configs reproduces the fault.  Callers must
    reset it to 0; production code never touches it. *)

val queue_series : t -> Series.t
(** Occupancy trace (bytes); empty unless [record_queue] was set. *)

val buffer : t -> int option
(** Current drop-tail capacity ([None] = unbounded). *)

val set_buffer : t -> int option -> unit
(** Resize the drop-tail buffer mid-run (fault injection).  Queued
    packets are never evicted; a shrink below the current occupancy only
    blocks new admissions until the queue drains below the new cap.
    @raise Invalid_argument on a negative size. *)

val fold_state : Buffer.t -> t -> unit
(** Append the queue contents (in service order), AQM state and the
    byte/drop counters to a {!Statebuf} encoding — part of the
    simulator's checkpoint content hash.  DRR per-flow queues are folded
    in sorted flow-id order so the encoding is canonical. *)
