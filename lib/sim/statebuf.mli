(** Canonical byte encoding of simulator state for content hashing.

    Primitives for the per-module [fold_state] hooks: fixed-width
    little-endian integers and IEEE-bit-pattern floats appended to a
    [Buffer.t], so state digests are deterministic and comparable across
    processes and binaries (no [Marshal] code pointers involved). *)

val f : Buffer.t -> float -> unit
(** Append a float by its IEEE-754 bit pattern (distinguishes [-0.],
    preserves NaN payloads). *)

val i : Buffer.t -> int -> unit
val i64 : Buffer.t -> int64 -> unit
val b : Buffer.t -> bool -> unit

val s : Buffer.t -> string -> unit
(** Length-prefixed, so concatenations cannot alias. *)

val opt : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit

val digest : (Buffer.t -> 'a -> unit) -> 'a -> string
(** [digest fold v] = hex MD5 of [fold]'s encoding of [v]: one
    component's fingerprint. *)
