(* Per-flow hot mutable floats live in structure-of-arrays tables shared
   by every flow of a simulation: OCaml float arrays are flat, so
   assigning an element is an unboxed store (the same discipline the
   packet rings use), and a population of flows keeps its hot state in a
   handful of contiguous arrays instead of one boxed record per flow —
   which is what lets a census run 10^5 concurrent flows without the
   per-flow header/padding overhead dominating memory. *)

module Table = struct
  type t = {
    mutable cap : int;
    mutable n : int;
    mutable next_send_time : float array;
    mutable last_progress : float array; (* last ACK arrival or send start *)
    mutable srtt : float array;
    mutable rttvar : float array;
    mutable done_time : float array; (* completion time; nan = not done *)
    (* Scratch event records passed to the CCA: one allocation per table
       instead of one per flow (let alone per ACK / send).  Safe to share
       across flows because event processing is synchronous — a flow's
       ACK/send handler never reenters another flow's, and the Cca
       contract forbids retaining the record beyond the callback. *)
    ack_scratch : Cca.ack_info;
    send_scratch : Cca.send_info;
    (* Freed rows awaiting reuse (a stack).  A churning population
       allocates one row per concurrent flow, not per flow ever started:
       without recycling a million-flow census would grow the table to
       10^6 rows for a peak concurrency of a few thousand. *)
    mutable free_rows : int array;
    mutable nfree : int;
  }

  let create ?(capacity = 16) () =
    let capacity = max 1 capacity in
    {
      cap = capacity;
      n = 0;
      next_send_time = Array.make capacity 0.;
      last_progress = Array.make capacity 0.;
      srtt = Array.make capacity 0.;
      rttvar = Array.make capacity 0.;
      done_time = Array.make capacity nan;
      ack_scratch =
        {
          Cca.now = 0.;
          rtt = 0.;
          acked_bytes = 0;
          sent_time = 0.;
          delivered = 0;
          delivered_now = 0;
          inflight = 0;
          app_limited = false;
          ecn_ce = false;
        };
      send_scratch = { Cca.now = 0.; sent_bytes = 0; inflight = 0 };
      free_rows = [||];
      nfree = 0;
    }

  let flows t = t.n
  let capacity t = t.cap

  let grow t =
    let cap = 2 * t.cap in
    let extend a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 t.n;
      b
    in
    t.next_send_time <- extend t.next_send_time 0.;
    t.last_progress <- extend t.last_progress 0.;
    t.srtt <- extend t.srtt 0.;
    t.rttvar <- extend t.rttvar 0.;
    t.done_time <- extend t.done_time nan;
    t.cap <- cap

  let alloc t ~start_time =
    let ix =
      if t.nfree > 0 then begin
        t.nfree <- t.nfree - 1;
        t.free_rows.(t.nfree)
      end
      else begin
        if t.n = t.cap then grow t;
        let ix = t.n in
        t.n <- ix + 1;
        ix
      end
    in
    t.next_send_time.(ix) <- 0.;
    t.last_progress.(ix) <- start_time;
    t.srtt.(ix) <- 0.;
    t.rttvar.(ix) <- 0.;
    t.done_time.(ix) <- nan;
    ix

  let free t ix =
    if ix < 0 || ix >= t.n then invalid_arg "Flow.Table.free: row out of range";
    if t.nfree = Array.length t.free_rows then begin
      let cap = max 16 (2 * Array.length t.free_rows) in
      let b = Array.make cap 0 in
      Array.blit t.free_rows 0 b 0 t.nfree;
      t.free_rows <- b
    end;
    t.free_rows.(t.nfree) <- ix;
    t.nfree <- t.nfree + 1
end

(* Per-ACK history the analysis layer reads.  Optional as a group: a
   census flow ([record_series = false], no [inspect_period]) carries
   [None] and pays one word for the whole block — at 10^5+ concurrent
   flows the four series/table headers per flow were a measurable slice
   of the bytes-per-flow budget. *)
type traces = {
  rtt_series : Series.t;
  cwnd_series : Series.t;
  delivered_series : Series.t;
  inspect_tbl : (string, Series.t) Hashtbl.t;
  mutable inspect_keys : string list; (* insertion order, newest first *)
}

type t = {
  id : int;
  mss : int;
  mutable cca : Cca.t;
  eq : Event_queue.t;
  transmit : Packet.t -> unit;
  mutable start_time : float;
  stop_time : float option;
  min_rto : float;
  initial_pacing : float option;
  tbl : Table.t;
  ix : int; (* this flow's row in [tbl] *)
  mutable size_bytes : int option; (* application bytes to send; None = unbounded *)
  mutable seg_limit : int; (* first seq not to send; max_int when unbounded *)
  on_complete : (unit -> unit) option;
  mutable got_first_ack : bool;
  (* Outstanding-segment table: a ring of unboxed arrays indexed by
     [seq land (cap - 1)].  Live seqs are confined to the window
     [min_out, next_seq); as long as the window fits in the (power of
     two) capacity the index mapping is injective, so membership is two
     array reads and insert/remove allocate nothing.  [out_size.(i) = 0]
     means the slot is free.  Rings start tiny (16 slots) and double on
     demand: an idle or low-rate flow never pays for a large window. *)
  mutable out_sent : float array; (* send time *)
  mutable out_size : int array; (* segment bytes; 0 = absent *)
  mutable out_dats : int array; (* delivered counter at send *)
  mutable next_seq : int;
  mutable min_out : int; (* no outstanding seq is below this *)
  mutable inflight : int;
  mutable delivered : int;
  mutable lost : int;
  mutable highest_acked : int; (* largest acked seq; -1 initially *)
  start_h : Event_queue.handle; (* flow start (re-armed by respawn) *)
  send_h : Event_queue.handle; (* paced-send wakeup *)
  timer_h : Event_queue.handle; (* CCA timer *)
  rto_h : Event_queue.handle; (* retransmission-timeout check *)
  mutable running : bool;
  mutable degraded : int; (* insane CCA outputs clamped *)
  mutable stall_probes : int; (* forced probe segments after a stall *)
  record_series : bool;
  traces : traces option;
}

let dupack_threshold = 3
let initial_ring = 16

let id t = t.id
let cca t = t.cca
let mss t = t.mss

(* Every segment this sender emits is exactly [mss] bytes (see
   [send_packet]), so the cumulative byte count is derivable from the
   next sequence number — no separate counter to keep consistent. *)
let sent_bytes t = t.next_seq * t.mss

let delivered_bytes t = t.delivered
let lost_bytes t = t.lost
let inflight t = t.inflight

(* Trace accessors degrade gracefully for traceless (census) flows: a
   fresh empty series, not an exception — callers treat "no trace" and
   "no samples" identically. *)
let rtt_series t =
  match t.traces with
  | Some tr -> tr.rtt_series
  | None -> Series.create ~name:(Printf.sprintf "flow%d.rtt" t.id) ()

let degraded_count t = t.degraded
let stall_probes t = t.stall_probes
let size_bytes t = t.size_bytes
let completed t = not (Float.is_nan t.tbl.Table.done_time.(t.ix))

let completion_time t =
  let d = t.tbl.Table.done_time.(t.ix) in
  if Float.is_nan d then None else Some d

let outstanding_bytes t =
  let mask = Array.length t.out_size - 1 in
  let acc = ref 0 in
  for seq = t.min_out to t.next_seq - 1 do
    acc := !acc + t.out_size.(seq land mask)
  done;
  !acc

let inspect_series t =
  match t.traces with
  | None -> []
  | Some tr ->
      (* [inspect_keys] is newest-first; report in insertion order. *)
      List.rev tr.inspect_keys
      |> List.map (fun k -> (k, Hashtbl.find tr.inspect_tbl k))

let cwnd_series t =
  match t.traces with
  | Some tr -> tr.cwnd_series
  | None -> Series.create ~name:(Printf.sprintf "flow%d.cwnd" t.id) ()

let delivered_series t =
  match t.traces with
  | Some tr -> tr.delivered_series
  | None -> Series.create ~name:(Printf.sprintf "flow%d.delivered" t.id) ()

let now t = Event_queue.now t.eq

let stopped t =
  match t.stop_time with Some st -> now t >= st | None -> false

let rto t =
  Float.max t.min_rto
    (t.tbl.Table.srtt.(t.ix) +. (4. *. t.tbl.Table.rttvar.(t.ix)))

(* --- Outstanding-segment ring ------------------------------------------- *)

(* Double the ring so the live window fits, moving every live slot to its
   index under the new mask.  Called {e before} the new head slot is
   written (see [send_packet]), so the copy loop only ever reads live
   seqs — no slot in [min_out, next_seq) aliases another. *)
let grow_outstanding t =
  let old_mask = Array.length t.out_size - 1 in
  (* Rings start empty ([||]) so an armed-but-never-sending flow costs
     nothing; the first send lands here and allocates the initial 16. *)
  let cap = max initial_ring (2 * Array.length t.out_size) in
  let sent = Array.make cap 0. in
  let size = Array.make cap 0 in
  let dats = Array.make cap 0 in
  for seq = t.min_out to t.next_seq - 1 do
    let i = seq land old_mask in
    if t.out_size.(i) > 0 then begin
      let j = seq land (cap - 1) in
      sent.(j) <- t.out_sent.(i);
      size.(j) <- t.out_size.(i);
      dats.(j) <- t.out_dats.(i)
    end
  done;
  t.out_sent <- sent;
  t.out_size <- size;
  t.out_dats <- dats

(* --- CCA output sanitization -------------------------------------------- *)

(* A buggy or degenerate CCA can emit a NaN or negative window / pacing
   rate.  Rather than corrupting the run (NaN comparisons silently fail
   and wedge the send loop), clamp to a sane value and count it; the
   invariant monitor reports the tally as a [cca-sane] violation. *)

let effective_cwnd t =
  let c = t.cca.Cca.cwnd () in
  if Float.is_nan c || c < 0. then begin
    t.degraded <- t.degraded + 1;
    float_of_int t.mss
  end
  else c

let effective_pacing t =
  match t.cca.Cca.pacing_rate () with
  | Some r when Float.is_finite r && r > 0. -> Some r
  | Some r when Float.is_nan r || r < 0. ->
      t.degraded <- t.degraded + 1;
      if t.got_first_ack then None else t.initial_pacing
  | Some _ | None -> if t.got_first_ack then None else t.initial_pacing

(* --- CCA timer plumbing ------------------------------------------------- *)

(* All three flow timers are preallocated cancellable handles: re-arming
   one writes three array slots and allocates nothing, and a superseded
   deadline moves the existing entry instead of abandoning a dead
   closure in the queue. *)

let rec sync_timer t =
  match t.cca.Cca.next_timer () with
  | None -> ()
  | Some want ->
      let want = Float.max want (now t) in
      if not (Event_queue.scheduled_time t.eq t.timer_h <= want) then
        Event_queue.schedule_handle t.eq t.timer_h ~at:want

and fire_timer t =
  let rec drain guard =
    if guard = 0 then failwith (t.cca.Cca.name ^ ": timer does not advance");
    match t.cca.Cca.next_timer () with
    | Some want when want <= now t ->
        t.cca.Cca.on_timer (now t);
        drain (guard - 1)
    | _ -> ()
  in
  drain 1000;
  maybe_send t;
  sync_timer t

(* --- Completion (sized flows) ------------------------------------------- *)

(* A flow created with [size_bytes] completes once every segment up to
   [seg_limit] has left the outstanding table — acked or declared lost
   (this sender does not retransmit; losses are terminal, as everywhere
   else in the model).  Completion quiesces the flow: all three timers
   are cancelled, so a departed flow costs the scheduler nothing. *)
and maybe_complete t =
  if
    t.seg_limit <> max_int
    && t.next_seq >= t.seg_limit
    && t.inflight = 0
    && Float.is_nan t.tbl.Table.done_time.(t.ix)
  then begin
    t.tbl.Table.done_time.(t.ix) <- now t;
    t.running <- false;
    Event_queue.cancel t.eq t.send_h;
    Event_queue.cancel t.eq t.timer_h;
    Event_queue.cancel t.eq t.rto_h;
    match t.on_complete with None -> () | Some f -> f ()
  end

(* --- Sending ------------------------------------------------------------ *)

and send_packet t =
  let time = now t in
  let seq = t.next_seq in
  let pkt =
    {
      Packet.flow = t.id;
      seq;
      size = t.mss;
      sent_at = time;
      delivered_at_send = t.delivered;
      app_limited = false;
      ce = false;
    }
  in
  (* Grow before writing the head slot: once [seq] joins, the live
     window [min_out, seq] holds [seq + 1 - min_out] seqs, and the ring
     index map is injective only while that fits the capacity. *)
  if seq + 1 - t.min_out > Array.length t.out_size then grow_outstanding t;
  let i = seq land (Array.length t.out_size - 1) in
  t.out_sent.(i) <- time;
  t.out_size.(i) <- t.mss;
  t.out_dats.(i) <- t.delivered;
  t.next_seq <- seq + 1;
  t.inflight <- t.inflight + t.mss;
  t.tbl.Table.last_progress.(t.ix) <- time;
  let sc = t.tbl.Table.send_scratch in
  sc.Cca.now <- time;
  sc.Cca.sent_bytes <- t.mss;
  sc.Cca.inflight <- t.inflight;
  t.cca.Cca.on_send sc;
  t.transmit pkt;
  schedule_rto t

and maybe_send t =
  if t.running && not (stopped t) && t.next_seq < t.seg_limit then begin
    let cwnd = effective_cwnd t in
    if float_of_int t.inflight +. float_of_int t.mss <= cwnd +. 1e-6 then begin
      let time = now t in
      let nst = t.tbl.Table.next_send_time.(t.ix) in
      if nst <= time +. 1e-12 then begin
        send_packet t;
        let pacing = effective_pacing t in
        (match pacing with
        | Some r when r > 0. ->
            t.tbl.Table.next_send_time.(t.ix) <-
              Float.max time t.tbl.Table.next_send_time.(t.ix)
              +. (float_of_int t.mss /. r)
        | Some _ | None -> t.tbl.Table.next_send_time.(t.ix) <- time);
        maybe_send t
      end
      else if not (Event_queue.scheduled_time t.eq t.send_h <= nst) then
        Event_queue.schedule_handle t.eq t.send_h ~at:nst
    end
  end

(* --- Retransmission timeout -------------------------------------------- *)

and schedule_rto t =
  if not (Event_queue.is_scheduled t.rto_h) then begin
    let deadline =
      Float.max (t.tbl.Table.last_progress.(t.ix) +. rto t) (now t +. 1e-6)
    in
    Event_queue.schedule_handle t.eq t.rto_h ~at:deadline
  end

and check_rto t =
  (* [active]: the flow both wants to make progress and has data left;
     a sized flow that exhausted its segments must neither stall-probe
     nor keep the RTO chain alive for sending's sake. *)
  let active =
    t.running && not (stopped t) && t.next_seq < t.seg_limit
  in
  if t.inflight > 0 || active then begin
    if now t -. t.tbl.Table.last_progress.(t.ix) >= rto t -. 1e-9 then begin
      if t.inflight > 0 then begin
        (* Timeout: declare everything outstanding lost. *)
        let lost_bytes = t.inflight in
        let mask = Array.length t.out_size - 1 in
        let lost_packets = ref [] in
        for seq = t.min_out to t.next_seq - 1 do
          let i = seq land mask in
          if t.out_size.(i) > 0 then begin
            lost_packets := (t.out_sent.(i), t.out_size.(i)) :: !lost_packets;
            t.out_size.(i) <- 0
          end
        done;
        t.min_out <- t.next_seq;
        t.inflight <- 0;
        t.lost <- t.lost + lost_bytes;
        t.tbl.Table.last_progress.(t.ix) <- now t;
        t.cca.Cca.on_loss
          {
            Cca.now = now t;
            lost_bytes;
            lost_packets = !lost_packets;
            inflight = 0;
            kind = `Timeout;
          };
        sync_timer t
      end;
      maybe_send t;
      if t.inflight = 0 && active then begin
        (* Stall probe: a full RTO elapsed with nothing outstanding and
           the CCA's window or pacing gate still refuses to send — e.g.
           the window collapsed below one segment after ACKs vanished in
           a blackout.  Force one segment out so ACK feedback (or the
           next timeout) can restart the control loop instead of
           deadlocking the flow. *)
        t.stall_probes <- t.stall_probes + 1;
        t.tbl.Table.next_send_time.(t.ix) <- now t;
        send_packet t
      end
    end;
    if t.inflight > 0 then schedule_rto t
  end;
  maybe_complete t

let sample_inspect t =
  match t.traces with
  | None -> ()
  | Some tr ->
      List.iter
        (fun (k, v) ->
          let s =
            match Hashtbl.find_opt tr.inspect_tbl k with
            | Some s -> s
            | None ->
                let s = Series.create ~name:k () in
                Hashtbl.replace tr.inspect_tbl k s;
                tr.inspect_keys <- k :: tr.inspect_keys;
                s
          in
          if Float.is_finite v then Series.add s ~time:(now t) v)
        (t.cca.Cca.inspect ())

let seg_limit_of ~mss size_bytes =
  match size_bytes with
  | None -> max_int
  | Some b ->
      if b <= 0 then invalid_arg "Flow.create: size_bytes must be positive";
      max 1 ((b + mss - 1) / mss)

let create ~eq ~id ~cca ?(mss = Cca.default_mss) ?(start_time = 0.) ?stop_time
    ?(min_rto = 0.2) ?initial_pacing ?inspect_period ?(record_series = true)
    ?table ?size_bytes ?on_complete ~transmit () =
  let tbl = match table with Some tb -> tb | None -> Table.create ~capacity:1 () in
  let ix = Table.alloc tbl ~start_time in
  let seg_limit = seg_limit_of ~mss size_bytes in
  let traces =
    if record_series || inspect_period <> None then
      Some
        {
          rtt_series = Series.create ~name:(Printf.sprintf "flow%d.rtt" id) ();
          cwnd_series = Series.create ~name:(Printf.sprintf "flow%d.cwnd" id) ();
          delivered_series =
            Series.create ~name:(Printf.sprintf "flow%d.delivered" id) ();
          inspect_tbl = Hashtbl.create 1;
          inspect_keys = [];
        }
    else None
  in
  let t =
    {
      id;
      mss;
      cca;
      eq;
      transmit;
      start_time;
      stop_time;
      min_rto;
      initial_pacing;
      tbl;
      ix;
      size_bytes;
      seg_limit;
      on_complete;
      got_first_ack = false;
      out_sent = [||];
      out_size = [||];
      out_dats = [||];
      next_seq = 0;
      min_out = 0;
      inflight = 0;
      delivered = 0;
      lost = 0;
      highest_acked = -1;
      start_h = Event_queue.handle ignore;
      send_h = Event_queue.handle ignore;
      timer_h = Event_queue.handle ignore;
      rto_h = Event_queue.handle ignore;
      running = false;
      degraded = 0;
      stall_probes = 0;
      record_series;
      traces;
    }
  in
  Event_queue.set_action t.send_h (fun () -> maybe_send t);
  Event_queue.set_action t.timer_h (fun () -> fire_timer t);
  Event_queue.set_action t.rto_h (fun () -> check_rto t);
  Event_queue.set_action t.start_h (fun () ->
      t.running <- true;
      t.tbl.Table.next_send_time.(t.ix) <- t.start_time;
      maybe_send t;
      (* Watchdog: if the CCA refused the very first send, the stall
         probe in [check_rto] gets the flow moving after one RTO. *)
      if t.inflight = 0 then schedule_rto t;
      sync_timer t);
  Event_queue.schedule_handle eq t.start_h ~at:start_time;
  (match inspect_period with
  | Some period when period > 0. ->
      let rec sample () =
        if t.running && not (stopped t) then sample_inspect t;
        (* A completed sized flow is gone for good: let the sampler die
           with it instead of ticking to the horizon. *)
        if not (completed t) then Event_queue.schedule_after eq ~delay:period sample
      in
      Event_queue.schedule eq ~at:start_time sample
  | Some _ | None -> ());
  t

(* Reincarnate a completed sized flow as a brand-new one, in place: same
   id (and therefore the same [Packet.flow] tag), same table row, same
   rings and handles — zero allocation beyond what the new CCA needed.
   This is the churn discipline of the million-flow census: a slot hosts
   thousands of flows over a run, and the event-operation sequence it
   produces is identical to destroying the flow and [create]ing a fresh
   one (one insert for the start event; the rings are provably all-zero
   at completion, so no clearing is needed — every slot is zeroed when
   its segment is acked or declared lost, and completion requires
   [inflight = 0]). *)
let respawn t ~cca ~start_time ?size_bytes () =
  if not (completed t) then invalid_arg "Flow.respawn: flow has not completed";
  (match t.traces with
  | Some _ ->
      (* Traces would silently concatenate incarnations; a census flow
         never records them, so reject rather than mislead. *)
      invalid_arg "Flow.respawn: flow records traces"
  | None -> ());
  Event_queue.cancel t.eq t.start_h;
  Event_queue.cancel t.eq t.send_h;
  Event_queue.cancel t.eq t.timer_h;
  Event_queue.cancel t.eq t.rto_h;
  t.cca <- cca;
  t.start_time <- start_time;
  t.size_bytes <- size_bytes;
  t.seg_limit <- seg_limit_of ~mss:t.mss size_bytes;
  t.got_first_ack <- false;
  t.next_seq <- 0;
  t.min_out <- 0;
  t.inflight <- 0;
  t.delivered <- 0;
  t.lost <- 0;
  t.highest_acked <- -1;
  t.running <- false;
  t.degraded <- 0;
  t.stall_probes <- 0;
  t.tbl.Table.next_send_time.(t.ix) <- 0.;
  t.tbl.Table.last_progress.(t.ix) <- start_time;
  t.tbl.Table.srtt.(t.ix) <- 0.;
  t.tbl.Table.rttvar.(t.ix) <- 0.;
  t.tbl.Table.done_time.(t.ix) <- nan;
  Event_queue.schedule_handle t.eq t.start_h ~at:start_time

(* Advance the lower bound on outstanding sequence numbers past every
   acked / lost hole.  Each seq is crossed at most once over the flow's
   lifetime, so the amortized cost is O(1) per packet. *)
let advance_min_out t =
  let mask = Array.length t.out_size - 1 in
  while t.min_out < t.next_seq && t.out_size.(t.min_out land mask) = 0 do
    t.min_out <- t.min_out + 1
  done

let detect_losses t =
  (* Packet-threshold loss detection: anything sent more than
     [dupack_threshold] packets before the highest acked packet and still
     outstanding is treated as lost.  [min_out] makes the common no-loss
     case O(1): when every outstanding seq is at or above the threshold
     there is nothing to scan. *)
  let threshold = t.highest_acked - dupack_threshold in
  if t.min_out < threshold then begin
    let mask = Array.length t.out_size - 1 in
    let hi = min threshold t.next_seq in
    let bytes = ref 0 and lost_packets = ref [] in
    for seq = t.min_out to hi - 1 do
      let i = seq land mask in
      if t.out_size.(i) > 0 then begin
        bytes := !bytes + t.out_size.(i);
        lost_packets := (t.out_sent.(i), t.out_size.(i)) :: !lost_packets;
        t.out_size.(i) <- 0
      end
    done;
    if !bytes > 0 then begin
      advance_min_out t;
      t.inflight <- t.inflight - !bytes;
      t.lost <- t.lost + !bytes;
      t.cca.Cca.on_loss
        {
          Cca.now = now t;
          lost_bytes = !bytes;
          lost_packets = !lost_packets;
          inflight = t.inflight;
          kind = `Dupack;
        }
    end
    else t.min_out <- hi (* everything below the threshold was a hole *)
  end

(* Shared tail of ACK processing, after the outstanding-table accounting:
   [newest] is the acked packet with the latest send time. *)
let finish_ack t ~(newest : Packet.t) ~acked_bytes ~any_ce =
  let time = now t in
  t.got_first_ack <- true;
  t.delivered <- t.delivered + acked_bytes;
  t.tbl.Table.last_progress.(t.ix) <- time;
  let rtt = time -. newest.Packet.sent_at in
  (* RFC 6298 smoothing, inlined so the samples stay unboxed. *)
  let tb = t.tbl in
  let ix = t.ix in
  if tb.Table.srtt.(ix) = 0. then begin
    tb.Table.srtt.(ix) <- rtt;
    tb.Table.rttvar.(ix) <- rtt /. 2.
  end
  else begin
    tb.Table.rttvar.(ix) <-
      (0.75 *. tb.Table.rttvar.(ix))
      +. (0.25 *. Float.abs (tb.Table.srtt.(ix) -. rtt));
    tb.Table.srtt.(ix) <- (0.875 *. tb.Table.srtt.(ix)) +. (0.125 *. rtt)
  end;
  let a = tb.Table.ack_scratch in
  a.Cca.now <- time;
  a.Cca.rtt <- rtt;
  a.Cca.acked_bytes <- acked_bytes;
  a.Cca.sent_time <- newest.Packet.sent_at;
  a.Cca.delivered <- newest.Packet.delivered_at_send;
  a.Cca.delivered_now <- t.delivered;
  a.Cca.inflight <- t.inflight;
  a.Cca.app_limited <- newest.Packet.app_limited;
  a.Cca.ecn_ce <- any_ce;
  t.cca.Cca.on_ack a;
  (match t.traces with
  | Some tr when t.record_series ->
      Series.add tr.rtt_series ~time rtt;
      Series.add tr.cwnd_series ~time (t.cca.Cca.cwnd ());
      Series.add tr.delivered_series ~time (float_of_int t.delivered)
  | Some _ | None -> ());
  detect_losses t;
  sync_timer t;
  maybe_send t;
  maybe_complete t;
  (* If this ACK emptied the pipe and the CCA still refuses to send
     (window below one segment), keep the RTO chain alive so the stall
     probe can recover the flow. *)
  if t.inflight = 0 && t.running && not (stopped t) then schedule_rto t

(* Look up and clear seq's outstanding entry; return its size, or 0 if
   the seq was already declared lost (a late ACK to ignore). *)
let take_outstanding t seq =
  if seq < t.min_out || seq >= t.next_seq then 0
  else begin
    let i = seq land (Array.length t.out_size - 1) in
    let size = t.out_size.(i) in
    if size > 0 then t.out_size.(i) <- 0;
    size
  end

let receive_ack t (deliveries : Packet.delivery list) =
  match deliveries with
  | [] -> ()
  | _ ->
      let newest =
        List.fold_left
          (fun acc (d : Packet.delivery) ->
            if d.packet.Packet.sent_at >= acc.Packet.sent_at then d.packet else acc)
          (List.hd deliveries).packet deliveries
      in
      let acked_bytes = ref 0 in
      let any_ce = ref false in
      List.iter
        (fun (d : Packet.delivery) ->
          let p = d.Packet.packet in
          let size = take_outstanding t p.Packet.seq in
          if size > 0 then begin
            t.inflight <- t.inflight - size;
            acked_bytes := !acked_bytes + size;
            if p.Packet.ce then any_ce := true;
            if p.Packet.seq > t.highest_acked then t.highest_acked <- p.Packet.seq
          end)
        deliveries;
      if !acked_bytes > 0 then begin
        advance_min_out t;
        finish_ack t ~newest ~acked_bytes:!acked_bytes ~any_ce:!any_ce
      end

(* Single-packet ACK: the immediate-ACK hot path.  Equivalent to
   [receive_ack t [ { packet; delivered_at = _ } ]] but with no delivery
   record, list, or fold. *)
let receive_ack_one t (p : Packet.t) =
  let size = take_outstanding t p.Packet.seq in
  if size > 0 then begin
    t.inflight <- t.inflight - size;
    if p.Packet.seq > t.highest_acked then t.highest_acked <- p.Packet.seq;
    advance_min_out t;
    finish_ack t ~newest:p ~acked_bytes:size ~any_ce:p.Packet.ce
  end

let fold_state buf t =
  Statebuf.i buf t.id;
  Statebuf.i buf t.mss;
  Statebuf.b buf t.got_first_ack;
  Statebuf.i buf t.next_seq;
  Statebuf.i buf t.min_out;
  Statebuf.i buf t.inflight;
  Statebuf.i buf t.delivered;
  Statebuf.i buf t.lost;
  Statebuf.i buf t.highest_acked;
  Statebuf.f buf t.tbl.Table.next_send_time.(t.ix);
  Statebuf.f buf t.tbl.Table.last_progress.(t.ix);
  Statebuf.f buf t.tbl.Table.srtt.(t.ix);
  Statebuf.f buf t.tbl.Table.rttvar.(t.ix);
  Statebuf.b buf t.running;
  Statebuf.i buf t.degraded;
  Statebuf.i buf t.stall_probes;
  (* Sized flows fold their limit and completion instant; unbounded
     flows keep the historical encoding byte for byte. *)
  if t.seg_limit <> max_int then begin
    Statebuf.i buf t.seg_limit;
    Statebuf.f buf t.tbl.Table.done_time.(t.ix)
  end;
  (* Live outstanding window: fold only occupied slots, keyed by seq, so
     the encoding is independent of ring capacity. *)
  let mask = Array.length t.out_size - 1 in
  for seq = t.min_out to t.next_seq - 1 do
    let i = seq land mask in
    if t.out_size.(i) > 0 then begin
      Statebuf.i buf seq;
      Statebuf.f buf t.out_sent.(i);
      Statebuf.i buf t.out_size.(i);
      Statebuf.i buf t.out_dats.(i)
    end
  done;
  match t.traces with
  | None -> ()
  | Some tr ->
      Series.fold_state buf tr.rtt_series;
      Series.fold_state buf tr.cwnd_series;
      Series.fold_state buf tr.delivered_series;
      List.iter
        (fun k -> Series.fold_state buf (Hashtbl.find tr.inspect_tbl k))
        (List.rev tr.inspect_keys)

let throughput t ~t0 ~t1 =
  if t1 <= t0 then 0.
  else begin
    let ds = delivered_series t in
    let at q =
      match Series.value_at ds q with Some v -> v | None -> 0.
    in
    (at t1 -. at t0) /. (t1 -. t0)
  end

(* Goodput over the flow's own active lifetime — delivered bytes per
   second between its start and its completion (or [horizon] while
   incomplete).  Unlike {!throughput} this needs no recorded series, so
   a census population can run with [record_series = false]. *)
let goodput t ~horizon =
  let stop =
    match completion_time t with Some d -> d | None -> horizon
  in
  let span = stop -. t.start_time in
  if span <= 0. then 0. else float_of_int t.delivered /. span

let rate_series t ~window =
  let out = Series.create ~name:(Printf.sprintf "flow%d.rate" t.id) () in
  let ds = delivered_series t in
  let times = Series.times ds in
  let values = Series.values ds in
  let n = Array.length times in
  let j = ref 0 in
  for i = 0 to n - 1 do
    let t1 = times.(i) in
    let t0 = t1 -. window in
    while !j < n && times.(!j) < t0 do incr j done;
    if !j < i then begin
      let dt = t1 -. times.(!j) in
      if dt > 0. then Series.add out ~time:t1 ((values.(i) -. values.(!j)) /. dt)
    end
  done;
  out
