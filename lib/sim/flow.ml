type sent_record = { sent_at : float; size : int; delivered_at_send : int }

type t = {
  id : int;
  mss : int;
  cca : Cca.t;
  eq : Event_queue.t;
  transmit : Packet.t -> unit;
  start_time : float;
  stop_time : float option;
  min_rto : float;
  initial_pacing : float option;
  mutable got_first_ack : bool;
  outstanding : (int, sent_record) Hashtbl.t;
  mutable next_seq : int;
  mutable inflight : int;
  mutable delivered : int;
  mutable lost : int;
  mutable highest_acked : int; (* largest acked seq; -1 initially *)
  mutable next_send_time : float;
  mutable send_event_at : float option;
  mutable timer_event_at : float option;
  mutable rto_pending : bool;
  mutable last_progress : float; (* last time an ACK arrived or a send began *)
  mutable srtt : float;
  mutable rttvar : float;
  mutable running : bool;
  mutable degraded : int; (* insane CCA outputs clamped *)
  mutable stall_probes : int; (* forced probe segments after a stall *)
  rtt_series : Series.t;
  cwnd_series : Series.t;
  delivered_series : Series.t;
  inspect_tbl : (string, Series.t) Hashtbl.t;
  mutable inspect_keys : string list; (* insertion order *)
}

let dupack_threshold = 3

let id t = t.id
let cca t = t.cca
let mss t = t.mss
let delivered_bytes t = t.delivered
let lost_bytes t = t.lost
let inflight t = t.inflight
let rtt_series t = t.rtt_series
let degraded_count t = t.degraded
let stall_probes t = t.stall_probes

let outstanding_bytes t =
  Hashtbl.fold (fun _ r acc -> acc + r.size) t.outstanding 0

let inspect_series t =
  (* [inspect_keys] is newest-first; report in insertion order. *)
  List.rev t.inspect_keys
  |> List.map (fun k -> (k, Hashtbl.find t.inspect_tbl k))
let cwnd_series t = t.cwnd_series
let delivered_series t = t.delivered_series

let now t = Event_queue.now t.eq

let stopped t =
  match t.stop_time with Some st -> now t >= st | None -> false

let rto t = Float.max t.min_rto (t.srtt +. (4. *. t.rttvar))

(* --- CCA output sanitization -------------------------------------------- *)

(* A buggy or degenerate CCA can emit a NaN or negative window / pacing
   rate.  Rather than corrupting the run (NaN comparisons silently fail
   and wedge the send loop), clamp to a sane value and count it; the
   invariant monitor reports the tally as a [cca-sane] violation. *)

let effective_cwnd t =
  let c = t.cca.Cca.cwnd () in
  if Float.is_nan c || c < 0. then begin
    t.degraded <- t.degraded + 1;
    float_of_int t.mss
  end
  else c

let effective_pacing t =
  match t.cca.Cca.pacing_rate () with
  | Some r when Float.is_finite r && r > 0. -> Some r
  | Some r when Float.is_nan r || r < 0. ->
      t.degraded <- t.degraded + 1;
      if t.got_first_ack then None else t.initial_pacing
  | Some _ | None -> if t.got_first_ack then None else t.initial_pacing

(* --- CCA timer plumbing ------------------------------------------------- *)

let rec sync_timer t =
  match t.cca.Cca.next_timer () with
  | None -> ()
  | Some want ->
      let want = Float.max want (now t) in
      let already = match t.timer_event_at with Some at -> at <= want | None -> false in
      if not already then begin
        t.timer_event_at <- Some want;
        Event_queue.schedule t.eq ~at:want (fun () -> fire_timer t want)
      end

and fire_timer t scheduled_at =
  (match t.timer_event_at with
  | Some at when at = scheduled_at -> t.timer_event_at <- None
  | _ -> ());
  let rec drain guard =
    if guard = 0 then failwith (t.cca.Cca.name ^ ": timer does not advance");
    match t.cca.Cca.next_timer () with
    | Some want when want <= now t ->
        t.cca.Cca.on_timer (now t);
        drain (guard - 1)
    | _ -> ()
  in
  drain 1000;
  maybe_send t;
  sync_timer t

(* --- Sending ------------------------------------------------------------ *)

and send_packet t =
  let time = now t in
  let pkt =
    {
      Packet.flow = t.id;
      seq = t.next_seq;
      size = t.mss;
      sent_at = time;
      delivered_at_send = t.delivered;
      app_limited = false;
      ce = false;
    }
  in
  t.next_seq <- t.next_seq + 1;
  Hashtbl.replace t.outstanding pkt.Packet.seq
    { sent_at = time; size = t.mss; delivered_at_send = t.delivered };
  t.inflight <- t.inflight + t.mss;
  t.last_progress <- time;
  t.cca.Cca.on_send { Cca.now = time; sent_bytes = t.mss; inflight = t.inflight };
  t.transmit pkt;
  schedule_rto t

and maybe_send t =
  if t.running && not (stopped t) then begin
    let cwnd = effective_cwnd t in
    if float_of_int t.inflight +. float_of_int t.mss <= cwnd +. 1e-6 then begin
      let time = now t in
      if t.next_send_time <= time +. 1e-12 then begin
        send_packet t;
        let pacing = effective_pacing t in
        (match pacing with
        | Some r when r > 0. ->
            t.next_send_time <- Float.max time t.next_send_time +. (float_of_int t.mss /. r)
        | Some _ | None -> t.next_send_time <- time);
        maybe_send t
      end
      else begin
        let already =
          match t.send_event_at with Some at -> at <= t.next_send_time | None -> false
        in
        if not already then begin
          t.send_event_at <- Some t.next_send_time;
          Event_queue.schedule t.eq ~at:t.next_send_time (fun () ->
              t.send_event_at <- None;
              maybe_send t)
        end
      end
    end
  end

(* --- Retransmission timeout -------------------------------------------- *)

and schedule_rto t =
  if not t.rto_pending then begin
    t.rto_pending <- true;
    let deadline = Float.max (t.last_progress +. rto t) (now t +. 1e-6) in
    Event_queue.schedule t.eq ~at:deadline (fun () -> check_rto t)
  end

and check_rto t =
  t.rto_pending <- false;
  let active = t.running && not (stopped t) in
  if t.inflight > 0 || active then begin
    if now t -. t.last_progress >= rto t -. 1e-9 then begin
      if t.inflight > 0 then begin
        (* Timeout: declare everything outstanding lost. *)
        let lost_bytes = t.inflight in
        let lost_packets =
          Hashtbl.fold (fun _ r acc -> (r.sent_at, r.size) :: acc) t.outstanding []
        in
        Hashtbl.reset t.outstanding;
        t.inflight <- 0;
        t.lost <- t.lost + lost_bytes;
        t.last_progress <- now t;
        t.cca.Cca.on_loss
          { Cca.now = now t; lost_bytes; lost_packets; inflight = 0; kind = `Timeout };
        sync_timer t
      end;
      maybe_send t;
      if t.inflight = 0 && active then begin
        (* Stall probe: a full RTO elapsed with nothing outstanding and
           the CCA's window or pacing gate still refuses to send — e.g.
           the window collapsed below one segment after ACKs vanished in
           a blackout.  Force one segment out so ACK feedback (or the
           next timeout) can restart the control loop instead of
           deadlocking the flow. *)
        t.stall_probes <- t.stall_probes + 1;
        t.next_send_time <- now t;
        send_packet t
      end
    end;
    if t.inflight > 0 then schedule_rto t
  end

let sample_inspect t =
  List.iter
    (fun (k, v) ->
      let s =
        match Hashtbl.find_opt t.inspect_tbl k with
        | Some s -> s
        | None ->
            let s = Series.create ~name:k () in
            Hashtbl.replace t.inspect_tbl k s;
            t.inspect_keys <- k :: t.inspect_keys;
            s
      in
      if Float.is_finite v then Series.add s ~time:(now t) v)
    (t.cca.Cca.inspect ())

let create ~eq ~id ~cca ?(mss = Cca.default_mss) ?(start_time = 0.) ?stop_time
    ?(min_rto = 0.2) ?initial_pacing ?inspect_period ~transmit () =
  let t =
    {
      id;
      mss;
      cca;
      eq;
      transmit;
      start_time;
      stop_time;
      min_rto;
      initial_pacing;
      got_first_ack = false;
      outstanding = Hashtbl.create 1024;
      next_seq = 0;
      inflight = 0;
      delivered = 0;
      lost = 0;
      highest_acked = -1;
      next_send_time = 0.;
      send_event_at = None;
      timer_event_at = None;
      rto_pending = false;
      last_progress = start_time;
      srtt = 0.;
      rttvar = 0.;
      running = false;
      degraded = 0;
      stall_probes = 0;
      rtt_series = Series.create ~name:(Printf.sprintf "flow%d.rtt" id) ();
      cwnd_series = Series.create ~name:(Printf.sprintf "flow%d.cwnd" id) ();
      delivered_series = Series.create ~name:(Printf.sprintf "flow%d.delivered" id) ();
      inspect_tbl = Hashtbl.create 8;
      inspect_keys = [];
    }
  in
  Event_queue.schedule eq ~at:start_time (fun () ->
      t.running <- true;
      t.next_send_time <- start_time;
      maybe_send t;
      (* Watchdog: if the CCA refused the very first send, the stall
         probe in [check_rto] gets the flow moving after one RTO. *)
      if t.inflight = 0 then schedule_rto t;
      sync_timer t);
  (match inspect_period with
  | Some period when period > 0. ->
      let rec sample () =
        if t.running && not (stopped t) then sample_inspect t;
        Event_queue.schedule_after eq ~delay:period sample
      in
      Event_queue.schedule eq ~at:start_time sample
  | Some _ | None -> ());
  t

let update_rtt_estimate t sample =
  if t.srtt = 0. then begin
    t.srtt <- sample;
    t.rttvar <- sample /. 2.
  end
  else begin
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. sample));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. sample)
  end

let detect_losses t =
  (* Packet-threshold loss detection: anything sent more than
     [dupack_threshold] packets before the highest acked packet and still
     outstanding is treated as lost. *)
  let threshold = t.highest_acked - dupack_threshold in
  let lost_seqs =
    Hashtbl.fold (fun seq _ acc -> if seq < threshold then seq :: acc else acc)
      t.outstanding []
  in
  match lost_seqs with
  | [] -> ()
  | seqs ->
      let bytes = ref 0 and lost_packets = ref [] in
      List.iter
        (fun seq ->
          match Hashtbl.find_opt t.outstanding seq with
          | Some r ->
              Hashtbl.remove t.outstanding seq;
              bytes := !bytes + r.size;
              lost_packets := (r.sent_at, r.size) :: !lost_packets
          | None -> ())
        seqs;
      t.inflight <- t.inflight - !bytes;
      t.lost <- t.lost + !bytes;
      t.cca.Cca.on_loss
        {
          Cca.now = now t;
          lost_bytes = !bytes;
          lost_packets = !lost_packets;
          inflight = t.inflight;
          kind = `Dupack;
        }

let receive_ack t (deliveries : Packet.delivery list) =
  match deliveries with
  | [] -> ()
  | _ ->
      let time = now t in
      let newest =
        List.fold_left
          (fun acc (d : Packet.delivery) ->
            if d.packet.Packet.sent_at >= acc.Packet.sent_at then d.packet else acc)
          (List.hd deliveries).packet deliveries
      in
      let acked_bytes = ref 0 in
      let any_ce = ref false in
      List.iter
        (fun (d : Packet.delivery) ->
          let p = d.Packet.packet in
          match Hashtbl.find_opt t.outstanding p.Packet.seq with
          | Some r ->
              Hashtbl.remove t.outstanding p.Packet.seq;
              t.inflight <- t.inflight - r.size;
              acked_bytes := !acked_bytes + r.size;
              if p.Packet.ce then any_ce := true;
              if p.Packet.seq > t.highest_acked then t.highest_acked <- p.Packet.seq
          | None -> (* already declared lost; ignore the late ACK *) ())
        deliveries;
      if !acked_bytes > 0 then begin
        t.got_first_ack <- true;
        t.delivered <- t.delivered + !acked_bytes;
        t.last_progress <- time;
        let rtt = time -. newest.Packet.sent_at in
        update_rtt_estimate t rtt;
        let info =
          {
            Cca.now = time;
            rtt;
            acked_bytes = !acked_bytes;
            sent_time = newest.Packet.sent_at;
            delivered = newest.Packet.delivered_at_send;
            delivered_now = t.delivered;
            inflight = t.inflight;
            app_limited = newest.Packet.app_limited;
            ecn_ce = !any_ce;
          }
        in
        t.cca.Cca.on_ack info;
        Series.add t.rtt_series ~time rtt;
        Series.add t.cwnd_series ~time (t.cca.Cca.cwnd ());
        Series.add t.delivered_series ~time (float_of_int t.delivered);
        detect_losses t;
        sync_timer t;
        maybe_send t;
        (* If this ACK emptied the pipe and the CCA still refuses to
           send (window below one segment), keep the RTO chain alive so
           the stall probe can recover the flow. *)
        if t.inflight = 0 && t.running && not (stopped t) then schedule_rto t
      end

let throughput t ~t0 ~t1 =
  if t1 <= t0 then 0.
  else begin
    let at q =
      match Series.value_at t.delivered_series q with Some v -> v | None -> 0.
    in
    (at t1 -. at t0) /. (t1 -. t0)
  end

let rate_series t ~window =
  let out = Series.create ~name:(Printf.sprintf "flow%d.rate" t.id) () in
  let times = Series.times t.delivered_series in
  let values = Series.values t.delivered_series in
  let n = Array.length times in
  let j = ref 0 in
  for i = 0 to n - 1 do
    let t1 = times.(i) in
    let t0 = t1 -. window in
    while !j < n && times.(!j) < t0 do incr j done;
    if !j < i then begin
      let dt = t1 -. times.(!j) in
      if dt > 0. then Series.add out ~time:t1 ((values.(i) -. values.(!j)) /. dt)
    end
  done;
  out
