(** Deterministic discrete-event scheduler.

    Events are thunks ordered by (time, insertion sequence).  The sequence
    tiebreak makes simultaneous events run in scheduling order, which keeps
    every simulation fully deterministic — a requirement for the paper's
    Theorem 1 construction, where a flow's trajectory must replay exactly. *)

type t

val create : ?start:float -> unit -> t
(** [start] (default 0) sets the initial clock — used by constructions that
    continue a flow on a new network sharing the old timeline. *)

val now : t -> float
(** Current simulation time. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Schedule a thunk at absolute time [at].
    @raise Invalid_argument if [at] is in the past or not finite. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
(** Schedule relative to [now].  Negative delays are clamped to [0.]. *)

val pending : t -> int
(** Number of events not yet executed. *)

val step : t -> bool
(** Run the next event.  Returns [false] when the queue is empty. *)

val run_until : t -> float -> unit
(** Run all events with time <= the horizon, then advance [now] to the
    horizon.  Events scheduled during execution are honored if they fall
    within the horizon. *)

val run : t -> unit
(** Run until the queue is empty.  Diverges if events keep rescheduling. *)
