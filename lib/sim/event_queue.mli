(** Deterministic discrete-event scheduler.

    Events are ordered by (time, insertion sequence).  The sequence
    tiebreak makes simultaneous events run in scheduling order, which keeps
    every simulation fully deterministic — a requirement for the paper's
    Theorem 1 construction, where a flow's trajectory must replay exactly.

    Two scheduling interfaces share one heap:

    - {!schedule} takes a fresh thunk per event — convenient, but each call
      allocates, which adds up to several heap words per simulated packet.
    - {!schedule_handle} re-arms a preallocated {!handle} whose callback was
      installed once.  Containers store times in unboxed float arrays, so
      re-arming a handle allocates nothing; handles are also cancellable and
      reschedulable, so superseded timers no longer pile dead closures into
      the queue.  This is the hot path used by {!Link}, {!Flow} and
      {!Delay_line}.

    Two backends share this interface with identical pop order:

    - {!Wheel} (the default) files near-future events in a hierarchical
      {!Timer_wheel} (O(1) arm/cancel/re-arm — the operation mix of
      pacing, RTO, delayed-ACK and delay-line timers), keeps entries
      whose tick the cursor has reached in a small "due" binary heap,
      and sends events beyond the wheel's ~9.5-simulated-hour horizon to
      an overflow heap.
    - {!Heap} routes everything through the overflow binary heap
      (O(log n) arm/cancel) — the pre-wheel scheduler, kept as the
      comparison baseline and for arbitrarily long timelines.

    Both backends consume one global FIFO sequence number per insertion
    and compare containers exactly (integer tick space between wheel and
    overflow, (time, seq) between heap roots), so a given schedule trace
    pops in the same order under either backend, byte for byte. *)

type t

type backend =
  | Heap  (** single binary heap — the pre-wheel scheduler *)
  | Wheel  (** hierarchical timing wheel + due/overflow heaps (default) *)

val create : ?backend:backend -> ?wheel_threshold:int -> ?start:float -> unit -> t
(** [start] (default 0) sets the initial clock — used by constructions that
    continue a flow on a new network sharing the old timeline.
    [backend] defaults to {!Wheel}.

    [wheel_threshold] (default 256) only applies to the {!Wheel} backend:
    while fewer events are pending, insertions route through the overflow
    heap — a depth-8 heap beats the wheel's cascade constants, so a 2-flow
    run costs the same as the pure-heap backend, and the wheel itself is
    only allocated once the queue outgrows the threshold.  Placement never
    affects pop order (containers are merged by exact (time, seq)); pass
    [0] to force every insertion through the wheel, as the equivalence
    tests do. *)

val backend : t -> backend

val now : t -> float
(** Current simulation time. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Schedule a thunk at absolute time [at].
    @raise Invalid_argument if [at] is in the past or not finite. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
(** Schedule relative to [now].  Negative delays are clamped to [0.]. *)

val pending : t -> int
(** Number of events not yet executed.  O(1): maintained as a counter
    rather than summing the containers, so hot paths can gate on queue
    size per insertion. *)

val wheel_allocated : t -> bool
(** Whether the lazy timer wheel has been materialized.  Always [false]
    under the {!Heap} backend; under {!Wheel} it stays [false] while the
    queue has never outgrown [wheel_threshold] — the small-population
    bypass the bench suite verifies. *)

val step : t -> bool
(** Run the next event.  Returns [false] when the queue is empty. *)

val set_step_hook : t -> (float -> unit) option -> unit
(** Install an observer called once per {!step} with the current clock,
    after it has advanced to the due event's time and before the event's
    action runs.  The
    hook must not mutate the queue (it is for periodic observers such as
    the invariant monitor, which audits whenever [now] crosses its next
    boundary).  Hook-based observation deliberately avoids a recurring
    heap event: at this simulator's typical handful of pending events,
    one extra resident slot measurably deepens every sift path, while an
    un-taken branch in [step] is free.  [None] (the default) removes the
    hook. *)

val run_until : t -> float -> unit
(** Run all events with time <= the horizon, then advance [now] to the
    horizon.  Events scheduled during execution are honored if they fall
    within the horizon. *)

val run : t -> unit
(** Run until the queue is empty.  Diverges if events keep rescheduling. *)

(** {2 Allocation-free handles} *)

type handle
(** A reusable event slot: one callback, at most one queued occurrence.
    A handle belongs to at most one queue at a time. *)

val handle : (unit -> unit) -> handle
(** Fresh idle handle with the given callback. *)

val set_action : handle -> (unit -> unit) -> unit
(** Replace the callback — used to tie knots where the callback must
    capture a record that itself stores the handle.  Must not be called
    while the handle is queued. *)

val schedule_handle : t -> handle -> at:float -> unit
(** Arm the handle at absolute time [at].  If it is already queued it is
    {e moved} to [at] with a fresh sequence number (exactly as if it had
    been cancelled and re-armed); otherwise it is inserted.  Allocates
    nothing.
    @raise Invalid_argument if [at] is in the past or not finite. *)

val cancel : t -> handle -> unit
(** Remove the handle's queued occurrence, if any.  The slot is physically
    deleted from the heap (not tombstoned), so {!pending} stays honest. *)

val is_scheduled : handle -> bool

val scheduled_time : t -> handle -> float
(** Time the handle is armed for; [infinity] when idle.  Allocation-free
    (unlike {!scheduled_at}). *)

val scheduled_at : t -> handle -> float option

val fold_state : Buffer.t -> t -> unit
(** Append the clock and the armed (time, sequence) pairs to a
    {!Statebuf} encoding — part of the simulator's checkpoint content
    hash.  Event callbacks are closures and are not folded; two runs of
    the same binary and configuration produce identical folds. *)
