(** Streaming and batch statistics used by monitors and experiment reports. *)

(** Online mean/variance/extrema accumulator (Welford's algorithm). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** [nan] when empty. *)

  val variance : t -> float
  (** Sample variance (n-1 denominator).  [nan] for fewer than two
      samples: a singleton has no spread estimate, and returning [0.]
      for it while [mean] of an empty accumulator is [nan] made the
      small-count conventions inconsistent. *)

  val stddev : t -> float
  (** [sqrt (variance t)]; [nan] for fewer than two samples. *)

  val min : t -> float
  (** Smallest sample seen; [nan] when empty (not [infinity]). *)

  val max : t -> float
  (** Largest sample seen; [nan] when empty (not [neg_infinity]). *)
end

val mean : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,100], linear interpolation between order
    statistics.  The input need not be sorted.
    @raise Invalid_argument on an empty array or p outside [0,100]. *)

val median : float array -> float

val jain_index : float list -> float
(** Jain's fairness index: [(sum x)^2 / (n * sum x^2)].  1 = perfectly fair.
    @raise Invalid_argument on an empty list. *)

val max_min_ratio : float list -> float
(** Ratio of the largest to the smallest value; [infinity] if the smallest is
    zero while the largest is positive, [1.] when all are zero.  Values must
    be non-negative (they are throughputs).
    @raise Invalid_argument on an empty list or any negative value. *)
