(** Streaming and batch statistics used by monitors and experiment reports. *)

(** Online mean/variance/extrema accumulator (Welford's algorithm). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** [nan] when empty. *)

  val variance : t -> float
  (** Sample variance (n-1 denominator).  [nan] for fewer than two
      samples: a singleton has no spread estimate, and returning [0.]
      for it while [mean] of an empty accumulator is [nan] made the
      small-count conventions inconsistent. *)

  val stddev : t -> float
  (** [sqrt (variance t)]; [nan] for fewer than two samples. *)

  val min : t -> float
  (** Smallest sample seen; [nan] when empty (not [infinity]). *)

  val max : t -> float
  (** Largest sample seen; [nan] when empty (not [neg_infinity]). *)
end

val mean : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,100], linear interpolation between order
    statistics.  The input need not be sorted.
    @raise Invalid_argument on an empty array or p outside [0,100]. *)

val median : float array -> float

val jain_index : float list -> float
(** Jain's fairness index: [(sum x)^2 / (n * sum x^2)].  1 = perfectly fair.
    @raise Invalid_argument on an empty list. *)

val max_min_ratio : float list -> float
(** Ratio of the largest to the smallest value; [infinity] if the smallest is
    zero while the largest is positive, [1.] when all are zero.  Values must
    be non-negative (they are throughputs).
    @raise Invalid_argument on an empty list or any negative value. *)

(** Distribution of per-flow throughput ratios for large populations,
    with starvation reported as an explicit count rather than an
    infinite ratio.  {!max_min_ratio} collapses a 100k-flow census to
    [infinity] the moment one flow starves, which both hides how many
    starved and poisons JSON output; this summary keeps every field
    finite by construction. *)
type ratio_summary = {
  total : int;  (** population size *)
  starved : int;  (** flows with rate exactly 0 *)
  p50 : float;  (** quantiles of [max rate / rate] over non-starved flows *)
  p90 : float;
  p99 : float;
  max_ratio : float;  (** largest finite ratio (>= 1 when any flow moved) *)
}

val ratio_summary : float array -> ratio_summary
(** Quantiles are over the non-starved flows only and are therefore
    always finite; when {e every} flow starved they are reported as 0.
    No field is ever [inf] or [nan].
    @raise Invalid_argument on an empty array or any negative or
    non-finite rate. *)

val ratio_summary_in_place : float array -> ratio_summary
(** Same result as {!ratio_summary}, bit for bit, but destroys its input
    (rates are overwritten with ratios and the array is sorted) and
    allocates no intermediate arrays — one sort of the caller's buffer
    instead of a filtered copy plus three sorted copies.  This is what
    the million-flow census calls on its per-cell goodput column. *)
