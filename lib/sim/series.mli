(** Append-only time series with non-decreasing timestamps.

    Monitors record (time, value) samples; the analysis code in [lib/core]
    then queries windows, resamples onto uniform grids, and integrates.
    Values between samples are interpreted as a step function (the value
    holds until the next sample) — the natural reading for cwnd, queue
    length and delay trajectories. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val length : t -> int
val is_empty : t -> bool

val add : t -> time:float -> float -> unit
(** @raise Invalid_argument if [time] decreases. *)

val times : t -> float array
val values : t -> float array
val to_list : t -> (float * float) list

val last : t -> (float * float) option
val first : t -> (float * float) option

val fold_state : Buffer.t -> t -> unit
(** Append name, length and every (time, value) bit pattern to a
    {!Statebuf} encoding — part of the simulator's checkpoint content
    hash. *)

val value_at : t -> float -> float option
(** Step interpolation: the value of the latest sample at or before the
    query time; [None] before the first sample. *)

val window : t -> t0:float -> t1:float -> (float * float) list
(** Samples with [t0 <= time <= t1], in order.

    All four window queries locate both window ends by binary search, so
    they cost O(log n + k) for a window of k samples — repeated queries
    over a long run don't rescan the whole series.

    Degenerate windows are well-defined, not caller-discipline: a window
    containing no samples — whether it falls between two samples, lies
    entirely outside the recorded range, or is inverted ([t1 < t0]) —
    yields the empty result ([[]], [[||]], [None], [None] respectively).
    A point window [t0 = t1] that hits a sample time exactly yields just
    the samples at that time.  A NaN bound raises [Invalid_argument]
    from all four queries (it would otherwise select an arbitrary
    range). *)

val window_values : t -> t0:float -> t1:float -> float array
(** Values of the samples in the window, in time order (a single
    [Array.sub] of the backing store — no intermediate list).  Empty
    array on a window containing no samples; see {!window} for the
    degenerate-window contract. *)

val min_max_in : t -> t0:float -> t1:float -> (float * float) option
(** Extrema of samples within the window; [None] if no sample falls in
    it (including inverted windows — see {!window}).  Folds in place
    over the backing arrays. *)

val mean_in : t -> t0:float -> t1:float -> float option
(** Mean of samples within the window; [None] if no sample falls in it
    (including inverted windows — see {!window}).  Numerically identical
    to [Stats.mean (window_values t ~t0 ~t1)] (same left-to-right
    summation order). *)

val integral : t -> t0:float -> t1:float -> float
(** Integral of the step function over [t0, t1].  Uses the last sample at or
    before [t0] as the initial value (0 if none). *)

val resample : t -> t0:float -> t1:float -> dt:float -> (float * float) array
(** Step-sample onto the uniform grid t0, t0+dt, ...; grid points before the
    first sample get the first sample's value.
    @raise Invalid_argument on an empty series or non-positive [dt]. *)

val map : (float -> float) -> t -> t
(** Pointwise transformation of the values; timestamps preserved. *)
