module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean

  let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.n = 0 then nan else t.min
  let max t = if t.n = 0 then nan else t.max
end

let mean xs =
  if Array.length xs = 0 then nan
  else Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.

let jain_index xs =
  match xs with
  | [] -> invalid_arg "Stats.jain_index: empty list"
  | _ ->
      let n = float_of_int (List.length xs) in
      let s = List.fold_left ( +. ) 0. xs in
      let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
      if s2 = 0. then 1. else s *. s /. (n *. s2)

let max_min_ratio xs =
  match xs with
  | [] -> invalid_arg "Stats.max_min_ratio: empty list"
  | x :: rest ->
      let mn = List.fold_left Float.min x rest in
      let mx = List.fold_left Float.max x rest in
      (* Throughputs are non-negative by construction; with a negative
         value the old code could return 1. (mx = 0 while mn < 0), which
         silently read "perfectly fair".  Reject instead. *)
      if mn < 0. then invalid_arg "Stats.max_min_ratio: negative value";
      if mx = 0. then 1. else if mn = 0. then infinity else mx /. mn

type ratio_summary = {
  total : int;
  starved : int;
  p50 : float;
  p90 : float;
  p99 : float;
  max_ratio : float;
}

(* {!percentile} over a pre-sorted slice — same interpolation, no copy. *)
let percentile_sorted xs ~off ~len p =
  if len = 1 then xs.(off)
  else begin
    let rank = p /. 100. *. float_of_int (len - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (len - 1) in
    let frac = rank -. float_of_int lo in
    (xs.(off + lo) *. (1. -. frac)) +. (xs.(off + hi) *. frac)
  end

let ratio_summary_in_place xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.ratio_summary: empty array";
  for i = 0 to n - 1 do
    let x = xs.(i) in
    if not (Float.is_finite x && x >= 0.) then
      invalid_arg "Stats.ratio_summary: rates must be finite and >= 0"
  done;
  let mx = Array.fold_left Float.max 0. xs in
  (* Rewrite each live rate to its ratio [mx /. x] (every ratio >= 1) and
     each starved rate to exactly 0., so one sort of the whole array
     leaves the zeros as a prefix and the live ratios as a sorted suffix
     — quantiles without the per-call sorted copy that dominated census
     merge time at 10^6 flows. *)
  let starved = ref 0 in
  for i = 0 to n - 1 do
    let x = xs.(i) in
    if x > 0. then xs.(i) <- mx /. x
    else begin
      xs.(i) <- 0.;
      incr starved
    end
  done;
  let starved = !starved in
  let live = n - starved in
  if live = 0 then
    (* Everyone starved (or the run never moved a byte): there is no
       finite ratio to report; zeros keep the record serializable. *)
    { total = n; starved; p50 = 0.; p90 = 0.; p99 = 0.; max_ratio = 0. }
  else begin
    Array.sort Float.compare xs;
    let q p = percentile_sorted xs ~off:starved ~len:live p in
    {
      total = n;
      starved;
      p50 = q 50.;
      p90 = q 90.;
      p99 = q 99.;
      max_ratio = Float.max 1. xs.(n - 1);
    }
  end

let ratio_summary xs = ratio_summary_in_place (Array.copy xs)
