(** Deterministic, splittable pseudo-random number generator.

    xoshiro256** seeded through splitmix64.  Every stochastic element of a
    simulation (random loss, BBR probe phases, uniform jitter) draws from a
    stream split off a single experiment seed, so runs are reproducible and
    flows are statistically independent. *)

type t

val create : seed:int -> t

val split : t -> t
(** A new generator statistically independent of the parent.  Splitting
    {e advances} the parent, so the child depends on how many draws and
    splits preceded it — use {!stream} when the derivation must not
    depend on call order. *)

val stream : t -> label:string -> t
(** [stream t ~label] derives a generator from the parent's current
    state and the label, {e without} advancing the parent.  Consequences:
    deriving the same label twice from an untouched parent yields
    identical generators; deriving distinct labels yields statistically
    independent ones; and the order in which labels are derived is
    irrelevant.  This is what reproducible fuzzing wants: scenario [i]'s
    generator is a pure function of (master seed, label), no matter
    which scenarios ran before it. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val uniform : t -> lo:float -> hi:float -> float

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val bool : t -> p:float -> bool
(** Bernoulli draw: [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean (rate [1/mean]),
    via inverse-CDF — one uniform per draw, always finite and
    non-negative.  [mean] must be positive.  Used by the open-loop
    Poisson traffic source ({!Source}). *)

val pareto : t -> alpha:float -> xm:float -> float
(** Pareto-distributed draw (minimum [xm], shape [alpha]) via
    inverse-CDF — one uniform per draw, always finite and >= [xm].
    Both parameters must be positive.  Heavy-tailed flow sizes for the
    churn model use [alpha] close to the classic 1.5: most flows are a
    few segments, a few are elephants. *)

val bits64 : t -> int64

val fold_state : Buffer.t -> t -> unit
(** Append the full generator state (the four xoshiro words) to a
    {!Statebuf} encoding — part of the simulator's checkpoint content
    hash. *)
