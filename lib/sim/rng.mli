(** Deterministic, splittable pseudo-random number generator.

    xoshiro256** seeded through splitmix64.  Every stochastic element of a
    simulation (random loss, BBR probe phases, uniform jitter) draws from a
    stream split off a single experiment seed, so runs are reproducible and
    flows are statistically independent. *)

type t

val create : seed:int -> t

val split : t -> t
(** A new generator statistically independent of the parent. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val uniform : t -> lo:float -> hi:float -> float

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val bool : t -> p:float -> bool
(** Bernoulli draw: [true] with probability [p]. *)

val bits64 : t -> int64

val fold_state : Buffer.t -> t -> unit
(** Append the full generator state (the four xoshiro words) to a
    {!Statebuf} encoding — part of the simulator's checkpoint content
    hash. *)
