(* Canonical byte encoding of simulator state for content hashing.

   Every stateful module exposes [fold_state : Buffer.t -> t -> unit]
   built from these primitives.  The encoding is fixed-width
   little-endian, floats by IEEE bit pattern, so the resulting digests
   are stable across runs and across binaries (unlike [Marshal], which
   bakes in closure code pointers).  Two simulations whose folds differ
   have diverged in observable state; two identical folds are, for every
   quantity the simulator reports, the same state. *)

let f buf (x : float) = Buffer.add_int64_le buf (Int64.bits_of_float x)
let i buf (x : int) = Buffer.add_int64_le buf (Int64.of_int x)
let i64 buf (x : int64) = Buffer.add_int64_le buf x
let b buf (x : bool) = Buffer.add_char buf (if x then '\001' else '\000')

let s buf (x : string) =
  i buf (String.length x);
  Buffer.add_string buf x

let opt elt buf = function
  | None -> b buf false
  | Some v ->
      b buf true;
      elt buf v

(* Hex digest of one module's fold — the per-component fingerprint used
   to name the first divergent subsystem when two runs disagree. *)
let digest fold v =
  let buf = Buffer.create 256 in
  fold buf v;
  Digest.to_hex (Digest.string (Buffer.contents buf))
