type ack_policy =
  | Immediate
  | Delayed of { count : int; timeout : float }
  | Aggregate of { period : float }

type flow_spec = {
  cca : Cca.t;
  start_time : float;
  stop_time : float option;
  extra_rm : float;
  jitter : Jitter.policy;
  jitter_bound : float;
  ack_policy : ack_policy;
  loss_rate : float;
  mss : int;
  initial_pacing : float option;
  inspect_period : float option;
  record_series : bool;
  size_bytes : int option;
}

let flow ?(start_time = 0.) ?stop_time ?(extra_rm = 0.) ?(jitter = Jitter.No_jitter)
    ?(jitter_bound = infinity) ?(ack_policy = Immediate) ?(loss_rate = 0.)
    ?(mss = Cca.default_mss) ?initial_pacing ?inspect_period
    ?(record_series = true) ?size_bytes cca =
  {
    cca;
    start_time;
    stop_time;
    extra_rm;
    jitter;
    jitter_bound;
    ack_policy;
    loss_rate;
    mss;
    initial_pacing;
    inspect_period;
    record_series;
    size_bytes;
  }

type config = {
  rate : Link.rate;
  buffer : int option;
  ecn_threshold : int option;
  aqm : Aqm.t option;
  discipline : Link.discipline;
  rm : float;
  flows : flow_spec list;
  t0 : float;
  duration : float;
  seed : int;
  record_queue : bool;
  initial_queue_bytes : int;
  faults : Fault.plan;
  monitor_period : float option;
  backend : Event_queue.backend;
}

let config ~rate ?buffer ?ecn_threshold ?aqm ?(discipline = Link.Fifo) ~rm
    ?(seed = 42) ?(record_queue = false) ?(initial_queue_bytes = 0) ?(t0 = 0.)
    ?(faults = Fault.none) ?monitor_period ?(backend = Event_queue.Wheel)
    ~duration flows =
  if flows = [] then invalid_arg "Network.config: at least one flow required";
  if duration <= 0. then invalid_arg "Network.config: duration must be positive";
  if rm < 0. then invalid_arg "Network.config: negative propagation delay";
  if initial_queue_bytes < 0 then
    invalid_arg "Network.config: negative initial queue";
  (match monitor_period with
  | Some p when not (p > 0.) ->
      invalid_arg "Network.config: monitor_period must be positive"
  | Some _ | None -> ());
  List.iter
    (fun f ->
      if f.loss_rate < 0. || f.loss_rate >= 1. then
        invalid_arg "Network.config: loss_rate must be in [0, 1)";
      if f.extra_rm < 0. then invalid_arg "Network.config: negative extra_rm";
      (match f.ack_policy with
      | Immediate -> ()
      | Delayed { count; timeout } ->
          if count < 1 then
            invalid_arg "Network.config: Delayed ack count must be >= 1";
          if not (timeout > 0.) then
            invalid_arg "Network.config: Delayed ack timeout must be positive"
      | Aggregate { period } ->
          if not (period > 0.) then
            invalid_arg "Network.config: Aggregate ack period must be positive");
      (match f.size_bytes with
      | Some sz when sz <= 0 ->
          invalid_arg "Network.config: size_bytes must be positive"
      | Some _ | None -> ());
      match f.stop_time with
      | Some st when st <= f.start_time ->
          invalid_arg "Network.config: stop_time before start_time"
      | Some _ | None -> ())
    flows;
  { rate; buffer; ecn_threshold; aqm; discipline; rm; flows; t0; duration; seed;
    record_queue; initial_queue_bytes; faults; monitor_period; backend }

(* Per-flow delayed-ACK accumulator.  [count] mirrors the length of
   [held] so the per-delivery policy check is O(1) instead of two
   [List.length] walks per delivery; [timeout_h] is a preallocated,
   cancellable timer slot. *)
type delack_state = {
  mutable held : Packet.delivery list; (* newest first *)
  mutable count : int;
  timeout_h : Event_queue.handle;
}

(* Per-flow ACK return path: a delay line of single packets for
   immediate/aggregate ACKs (no delivery records or lists), or of
   oldest-first delivery batches for delayed ACKs. *)
type ack_path =
  | Fast of Packet.t Delay_line.t
  | Batched of Packet.delivery list Delay_line.t

type t = {
  cfg : config;
  eq : Event_queue.t;
  link : Link.t;
  effective_rate : Link.rate;
  flows : Flow.t array;
  jitters : Jitter.t array;
  loss_rngs : Rng.t array;
  data_lines : Packet.t Delay_line.t array;
  ack_paths : ack_path array;
  delacks : delack_state array;
  random_losses : int array;
  received_bytes : int array;
  faults : Fault.t option;
  invariant : Invariant.t option;
  audit : unit -> unit;
  mutable ran : bool;
}

let event_queue t = t.eq
let link t = t.link
let flows t = t.flows
let jitters t = t.jitters
let random_losses t = t.random_losses
let received_bytes t = Array.copy t.received_bytes

let propagating_bytes t =
  Array.mapi
    (fun i line -> Flow.mss t.flows.(i) * Delay_line.length line)
    t.data_lines
let invariant t = t.invariant

let delay_line_fallbacks t =
  let acc = ref 0 in
  Array.iter (fun l -> acc := !acc + Delay_line.fallbacks l) t.data_lines;
  Array.iter
    (function
      | Fast l -> acc := !acc + Delay_line.fallbacks l
      | Batched l -> acc := !acc + Delay_line.fallbacks l)
    t.ack_paths;
  !acc

let fault_data_drops t =
  match t.faults with
  | Some f -> Fault.data_drops f
  | None -> Array.make (Array.length t.flows) 0

let fault_ack_drops t =
  match t.faults with
  | Some f -> Fault.ack_drops f
  | None -> Array.make (Array.length t.flows) 0

let phantom_flow_id = -1

let build cfg =
  let eq = Event_queue.create ~backend:cfg.backend ~start:cfg.t0 () in
  let master_rng = Rng.create ~seed:cfg.seed in
  let effective_rate = Fault.compile_rate cfg.faults cfg.rate in
  let link = Link.create ~eq ~rate:effective_rate ?buffer:cfg.buffer
      ?ecn_threshold:cfg.ecn_threshold ?aqm:cfg.aqm ~discipline:cfg.discipline
      ~record_queue:cfg.record_queue () in
  let n = List.length cfg.flows in
  let specs = Array.of_list cfg.flows in
  let jitters =
    Array.map
      (fun spec -> Jitter.create ~bound:spec.jitter_bound ~rng:(Rng.split master_rng) spec.jitter)
      specs
  in
  let loss_rngs = Array.map (fun _ -> Rng.split master_rng) specs in
  (* Fault streams split last so fault-free runs stay bit-identical to
     builds that predate the fault layer. *)
  let faults =
    if Fault.is_empty cfg.faults then None
    else Some (Fault.instantiate cfg.faults ~nflows:n ~rng:(Rng.split master_rng))
  in
  let random_losses = Array.make n 0 in
  let received_bytes = Array.make n 0 in
  let flows = Array.make n None in
  let delacks =
    Array.map
      (fun _ -> { held = []; count = 0; timeout_h = Event_queue.handle ignore })
      specs
  in
  let get_flow i = match flows.(i) with Some f -> f | None -> assert false in

  (* ACK path: policy then jitter then sender.  Release times out of the
     jitter element are monotone per flow (it clamps to [last_release]),
     so each flow needs only one pending event: a delay line. *)
  let ack_paths =
    Array.init n (fun i ->
        match specs.(i).ack_policy with
        | Immediate | Aggregate _ ->
            Fast
              (Delay_line.create ~eq ~dummy:Packet.dummy (fun pkt ->
                   Flow.receive_ack_one (get_flow i) pkt))
        | Delayed _ ->
            Batched
              (Delay_line.create ~eq ~dummy:[] (fun oldest_first ->
                   Flow.receive_ack (get_flow i) oldest_first)))
  in
  let ack_dropped i ~arrival =
    match faults with
    | Some f -> Fault.ack_drop f ~flow:i ~now:arrival
    | None -> false
  in
  (* Single-packet release: the immediate/aggregate hot path.  No
     delivery record, batch list, closure or per-packet heap entry. *)
  let release_single i pkt ~arrival =
    if not (ack_dropped i ~arrival) then begin
      let release =
        Jitter.release_at jitters.(i) ~flow:i ~arrival
          ~sent:pkt.Packet.sent_at
      in
      match ack_paths.(i) with
      | Fast line -> Delay_line.push line ~due:release pkt
      | Batched _ -> assert false
    end
  in
  let release_batch i (batch : Packet.delivery list) ~arrival =
    match batch with
    | [] -> ()
    | _ when ack_dropped i ~arrival ->
        (* ACK blackhole: the whole batch vanishes on the return path. *)
        ()
    | _ ->
        let newest_sent =
          List.fold_left (fun acc (d : Packet.delivery) ->
              Float.max acc d.packet.Packet.sent_at)
            neg_infinity batch
        in
        let release =
          Jitter.release_at jitters.(i) ~flow:i ~arrival ~sent:newest_sent
        in
        let oldest_first = List.rev batch in
        (match ack_paths.(i) with
        | Batched line -> Delay_line.push line ~due:release oldest_first
        | Fast _ -> assert false)
  in
  let flush_delack i ~arrival =
    let st = delacks.(i) in
    Event_queue.cancel eq st.timeout_h;
    let batch = st.held in
    st.held <- [];
    st.count <- 0;
    release_batch i batch ~arrival
  in
  Array.iteri
    (fun i st ->
      Event_queue.set_action st.timeout_h (fun () ->
          if st.held <> [] then flush_delack i ~arrival:(Event_queue.now eq)))
    delacks;
  let on_delivery i pkt ~delivered_at =
    match specs.(i).ack_policy with
    | Immediate -> release_single i pkt ~arrival:delivered_at
    | Delayed { count; timeout } ->
        let st = delacks.(i) in
        st.held <- { Packet.packet = pkt; delivered_at } :: st.held;
        st.count <- st.count + 1;
        if st.count >= count then flush_delack i ~arrival:delivered_at
        else if st.count = 1 then
          Event_queue.schedule_handle eq st.timeout_h
            ~at:(delivered_at +. timeout)
    | Aggregate { period } ->
        let slot = Float.ceil (delivered_at /. period -. 1e-9) *. period in
        release_single i pkt ~arrival:(Float.max slot delivered_at)
  in

  (* Data path after the bottleneck: per-flow propagation, then receiver.
     The bottleneck is FIFO, so per-flow dequeue times are monotone and
     [dequeue + prop] is a monotone delivery schedule — one delay line
     per flow replaces the per-packet propagation events. *)
  let data_lines =
    Array.init n (fun i ->
        Delay_line.create ~eq ~dummy:Packet.dummy (fun pkt ->
            received_bytes.(i) <- received_bytes.(i) + pkt.Packet.size;
            on_delivery i pkt ~delivered_at:(Event_queue.now eq)))
  in
  let props = Array.map (fun spec -> cfg.rm +. spec.extra_rm) specs in
  Link.set_on_dequeue link (fun pkt ->
      let i = pkt.Packet.flow in
      if i <> phantom_flow_id then
        Delay_line.push data_lines.(i)
          ~due:(Event_queue.now eq +. props.(i))
          pkt);

  (* Sender-side transmit hook: random loss, then bursty fault loss,
     then the bottleneck. *)
  let transmit i pkt =
    let p = specs.(i).loss_rate in
    if p > 0. && Rng.bool loss_rngs.(i) ~p then
      random_losses.(i) <- random_losses.(i) + 1
    else if
      match faults with
      | Some f -> Fault.data_drop f ~flow:i ~now:(Event_queue.now eq)
      | None -> false
    then ()
    else ignore (Link.enqueue link pkt)
  in
  let table = Flow.Table.create ~capacity:n () in
  Array.iteri
    (fun i spec ->
      flows.(i) <-
        Some
          (Flow.create ~eq ~id:i ~cca:spec.cca ~mss:spec.mss
             ~start_time:(Float.max spec.start_time cfg.t0)
             ?stop_time:spec.stop_time ?initial_pacing:spec.initial_pacing
             ?inspect_period:spec.inspect_period
             ~record_series:spec.record_series ~table
             ?size_bytes:spec.size_bytes ~transmit:(transmit i) ()))
    specs;

  (* Phantom initial queue: sets d*(0) without generating ACKs. *)
  if cfg.initial_queue_bytes > 0 then begin
    let mss = Cca.default_mss in
    let remaining = ref cfg.initial_queue_bytes in
    while !remaining > 0 do
      let size = min mss !remaining in
      remaining := !remaining - size;
      ignore
        (Link.enqueue link
           {
             Packet.flow = phantom_flow_id;
             seq = 0;
             size;
             sent_at = 0.;
             delivered_at_send = 0;
             app_limited = false;
             ce = false;
           })
    done
  end;

  (* Mid-run buffer renegotiations from the fault plan. *)
  List.iter
    (fun (at, buf) ->
      Event_queue.schedule eq ~at:(Float.max at cfg.t0) (fun () ->
          Link.set_buffer link buf))
    (Fault.buffer_events cfg.faults);

  let flows = Array.map (function Some f -> f | None -> assert false) flows in

  (* Runtime invariant monitor: a periodic audit of the simulator's own
     conservation laws.  Opt-in ([monitor_period]) because the theorem
     machinery intentionally drives the jitter element into clamping. *)
  let invariant, audit =
    match cfg.monitor_period with
    | None -> (None, fun () -> ())
    | Some _ ->
        let inv = Invariant.create () in
        let prev_now = ref cfg.t0 in
        let prev_queued = ref (Link.queued_bytes link) in
        let prev_jitter = Array.make (Array.length jitters) 0 in
        let audit () =
          let now = Event_queue.now eq in
          Invariant.check inv ~time:now ~name:"clock-monotonic"
            ~detail:(fun () ->
              Printf.sprintf "clock moved backwards: %.9f -> %.9f" !prev_now now)
            (now >= !prev_now);
          prev_now := now;
          let offered = Link.offered_bytes link
          and delivered = Link.delivered_bytes link
          and dropped = Link.dropped_bytes link
          and queued = Link.queued_bytes link in
          (* [offered] already includes the phantom initial-queue bytes:
             they enter through [Link.enqueue] like any other packet.
             (The seed release added [initial_queue_bytes] on the left —
             a double count that fuzzing flagged on any warm-start
             scenario with the monitor enabled.) *)
          Invariant.check inv ~time:now ~name:"link-conservation"
            ~detail:(fun () ->
              Printf.sprintf
                "offered %d <> delivered %d + dropped %d + queued %d"
                offered delivered dropped queued)
            (offered = delivered + dropped + queued);
          (* Occupancy may exceed the cap only transiently after a buffer
             shrink, and then only while draining: admission control never
             admits above the cap, so any excess must shrink between
             audits. *)
          (match Link.buffer link with
          | None -> ()
          | Some cap ->
              Invariant.check inv ~time:now ~name:"queue-bound"
                ~detail:(fun () ->
                  Printf.sprintf "queued %d > buffer %d (previous audit %d)"
                    queued cap !prev_queued)
                (queued <= max cap !prev_queued));
          prev_queued := queued;
          let jitter_delta = ref 0 in
          Array.iteri
            (fun i j -> jitter_delta := !jitter_delta + Jitter.violations j - prev_jitter.(i))
            jitters;
          Invariant.check inv ~time:now ~name:"jitter-bound"
            ~detail:(fun () ->
              let parts = ref [] in
              Array.iteri
                (fun i j ->
                  let d = Jitter.violations j - prev_jitter.(i) in
                  if d > 0 then
                    parts := Printf.sprintf "flow %d x%d" i d :: !parts)
                jitters;
              Printf.sprintf "jitter element clamped %d new request(s): %s"
                !jitter_delta
                (String.concat ", " (List.rev !parts)))
            (!jitter_delta = 0);
          Array.iteri (fun i j -> prev_jitter.(i) <- Jitter.violations j) jitters;
          Array.iteri
            (fun i f ->
              let inflight = Flow.inflight f in
              Invariant.check inv ~time:now ~name:"inflight-nonneg"
                ~detail:(fun () ->
                  Printf.sprintf "flow %d inflight %d < 0" i inflight)
                (inflight >= 0);
              let outstanding = Flow.outstanding_bytes f in
              Invariant.check inv ~time:now ~name:"inflight-consistent"
                ~detail:(fun () ->
                  Printf.sprintf "flow %d inflight %d <> outstanding %d" i
                    inflight outstanding)
                (inflight = outstanding);
              let cca = Flow.cca f in
              let cwnd = cca.Cca.cwnd () in
              Invariant.check inv ~time:now ~name:"cca-sane"
                ~detail:(fun () ->
                  Printf.sprintf "flow %d (%s) cwnd = %h" i cca.Cca.name cwnd)
                ((not (Float.is_nan cwnd)) && cwnd >= 0.);
              match cca.Cca.pacing_rate () with
              | None -> ()
              | Some r ->
                  Invariant.check inv ~time:now ~name:"cca-sane"
                    ~detail:(fun () ->
                      Printf.sprintf "flow %d (%s) pacing rate = %h" i
                        cca.Cca.name r)
                    ((not (Float.is_nan r)) && r >= 0.))
            flows;
          (* Per-flow byte conservation along the data path.  Every
             counter below is updated synchronously inside an event, and
             the audit is its own event, so these are exact identities —
             any slack is an accounting bug, not timing. *)
          let fault_drops =
            match faults with
            | Some f -> Fault.data_drops f
            | None -> [||]
          in
          let sum_offered = ref (Link.offered_bytes_for link ~flow:phantom_flow_id)
          and sum_delivered =
            ref (Link.delivered_bytes_for link ~flow:phantom_flow_id)
          and sum_dropped = ref (Link.dropped_bytes_for link ~flow:phantom_flow_id)
          in
          Array.iteri
            (fun i f ->
              let mss = Flow.mss f in
              let sent = Flow.sent_bytes f in
              let prelink =
                mss
                * (random_losses.(i)
                  + if i < Array.length fault_drops then fault_drops.(i) else 0)
              in
              let offered_i = Link.offered_bytes_for link ~flow:i
              and delivered_i = Link.delivered_bytes_for link ~flow:i
              and dropped_i = Link.dropped_bytes_for link ~flow:i in
              sum_offered := !sum_offered + offered_i;
              sum_delivered := !sum_delivered + delivered_i;
              sum_dropped := !sum_dropped + dropped_i;
              (* Sender to link: every sent byte is dropped pre-link
                 (random loss / fault burst, whole packets) or offered. *)
              Invariant.check inv ~time:now ~name:"flow-conservation"
                ~detail:(fun () ->
                  Printf.sprintf
                    "flow %d sent %d <> pre-link drops %d + offered %d" i sent
                    prelink offered_i)
                (sent = prelink + offered_i);
              (* Sender to receiver: bytes still inside the link are
                 [offered - delivered - dropped] for this flow; bytes in
                 post-bottleneck propagation are mss-sized packets on the
                 data delay line. *)
              let in_link = offered_i - delivered_i - dropped_i in
              let in_prop = mss * Delay_line.length data_lines.(i) in
              Invariant.check inv ~time:now ~name:"path-conservation"
                ~detail:(fun () ->
                  Printf.sprintf
                    "flow %d sent %d <> pre-link %d + link drops %d + \
                     in-link %d + propagating %d + received %d"
                    i sent prelink dropped_i in_link in_prop
                    received_bytes.(i))
                (sent
                = prelink + dropped_i + in_link + in_prop + received_bytes.(i)))
            flows;
          (* The per-flow slices must tile the aggregate counters. *)
          Invariant.check inv ~time:now ~name:"link-flow-conservation"
            ~detail:(fun () ->
              Printf.sprintf
                "per-flow sums offered %d / delivered %d / dropped %d <> \
                 aggregates %d / %d / %d"
                !sum_offered !sum_delivered !sum_dropped offered delivered
                dropped)
            (!sum_offered = offered
            && !sum_delivered = delivered
            && !sum_dropped = dropped)
        in
        (Some inv, audit)
  in
  (* The monitor rides the scheduler's step hook rather than a recurring
     heap event: the event heap is tiny (~6-14 pending) and extremely hot,
     so one extra resident slot deepens every sift path and costs ~10%
     wall clock, while a hook branch is free when unused.  The audit runs
     at the first event at or after each period boundary; several missed
     boundaries collapse into one audit (the checks are state identities,
     not per-interval deltas, so skipping an idle boundary loses nothing). *)
  (match cfg.monitor_period with
  | None -> ()
  | Some period ->
      let due = ref cfg.t0 in
      Event_queue.set_step_hook eq
        (Some
           (fun now ->
             if now >= !due then begin
               audit ();
               let k = Float.of_int (int_of_float ((now -. cfg.t0) /. period)) +. 1. in
               due := cfg.t0 +. (k *. period)
             end)));

  {
    cfg;
    eq;
    link;
    effective_rate;
    flows;
    jitters;
    loss_rngs;
    data_lines;
    ack_paths;
    delacks;
    random_losses;
    received_bytes;
    faults;
    invariant;
    audit;
    ran = false;
  }

let now t = Event_queue.now t.eq
let start_time t = t.cfg.t0
let horizon t = t.cfg.t0 +. t.cfg.duration
let config_of t = t.cfg

(* --- Checkpoint serialization ------------------------------------------- *)

(* One Marshal call over the whole network record.  [Closures] captures
   every CCA, event action and audit closure together with the heap graph
   they share, so mutable-state aliasing (e.g. the delack arrays both in
   the record and in the ACK-path closures) is preserved exactly.  The
   payload is only readable by the producing binary; {!Snapshot} guards
   restores with the executable's digest. *)
let serialize t = Marshal.to_string t [ Marshal.Closures ]
let deserialize s : t = Marshal.from_string s 0

let fold_delivery buf (d : Packet.delivery) =
  Packet.fold_state buf d.Packet.packet;
  Statebuf.f buf d.Packet.delivered_at

let fold_batch buf batch =
  Statebuf.i buf (List.length batch);
  List.iter (fold_delivery buf) batch

(* Named components of the content hash: {!Snapshot.first_divergence}
   reports the first one whose digest differs between two runs. *)
let fingerprint t =
  let base =
    [
      ("event-queue", Statebuf.digest Event_queue.fold_state t.eq);
      ("link", Statebuf.digest Link.fold_state t.link);
    ]
  in
  let per_flow =
    Array.to_list
      (Array.mapi
         (fun i f ->
           (Printf.sprintf "flow%d" i, Statebuf.digest Flow.fold_state f))
         t.flows)
  in
  let rest =
    [
      ( "jitters",
        Statebuf.digest
          (fun buf a -> Array.iter (Jitter.fold_state buf) a)
          t.jitters );
      ( "loss-rngs",
        Statebuf.digest
          (fun buf a -> Array.iter (Rng.fold_state buf) a)
          t.loss_rngs );
      ( "data-lines",
        Statebuf.digest
          (fun buf a ->
            Array.iter (Delay_line.fold_state Packet.fold_state buf) a)
          t.data_lines );
      ( "ack-paths",
        Statebuf.digest
          (fun buf a ->
            Array.iter
              (function
                | Fast l -> Delay_line.fold_state Packet.fold_state buf l
                | Batched l -> Delay_line.fold_state fold_batch buf l)
              a)
          t.ack_paths );
      ( "delacks",
        Statebuf.digest
          (fun buf a ->
            Array.iter
              (fun st ->
                Statebuf.i buf st.count;
                fold_batch buf st.held)
              a)
          t.delacks );
      ( "random-losses",
        Statebuf.digest
          (fun buf a -> Array.iter (Statebuf.i buf) a)
          t.random_losses );
      ( "received",
        Statebuf.digest
          (fun buf a -> Array.iter (Statebuf.i buf) a)
          t.received_bytes );
      ("faults", Statebuf.digest (Statebuf.opt Fault.fold_state) t.faults);
      ( "invariant",
        Statebuf.digest (Statebuf.opt Invariant.fold_state) t.invariant );
    ]
  in
  base @ per_flow @ rest

let fold_state buf t =
  List.iter
    (fun (name, digest) ->
      Statebuf.s buf name;
      Statebuf.s buf digest)
    (fingerprint t);
  Statebuf.b buf t.ran

let state_hash t = Statebuf.digest fold_state t

(* --- Running ------------------------------------------------------------- *)

let run_to t time = Event_queue.run_until t.eq (Float.min time (horizon t))
let force_audit t = t.audit ()

let finish t =
  Event_queue.run_until t.eq (horizon t);
  t.audit ();
  t.ran <- true;
  t

(* Split-run mode: every [run] executes to mid-horizon, checkpoints,
   finishes the restored copy AND the original, and fails hard unless
   their full state hashes agree.  Flipping this one switch turns any
   experiment into an end-to-end proof that checkpoint/restore is exact
   for its scenarios.  The *original* is what the caller gets back:
   experiments may legitimately hold aliases into config-embedded
   objects — Theorem 1 re-uses CCA instances warmed on one network
   inside another — and those aliases must see the fully evolved state,
   not a copy's.  A module-level ref — deliberately not part of the
   marshaled state — so `repro --split-run` reaches every network the
   experiment registry builds without threading a flag through each
   experiment. *)
let split_run = ref false
let set_split_run v = split_run := v

let run t =
  if (not !split_run) || t.ran then finish t
  else begin
    run_to t (t.cfg.t0 +. (t.cfg.duration /. 2.));
    let snap = serialize t in
    let copy = finish (deserialize snap) in
    let t = finish t in
    if state_hash copy <> state_hash t then
      failwith
        (Printf.sprintf
           "Network.run (split-run): restored copy diverged from the \
            straight run after the t=%.6f checkpoint"
           (t.cfg.t0 +. (t.cfg.duration /. 2.)));
    t
  end

let run_config cfg = run (build cfg)

let throughput t ~flow ~t0 ~t1 = Flow.throughput t.flows.(flow) ~t0 ~t1

let throughputs t ?(warmup_frac = 0.25) () =
  let t1 = t.cfg.t0 +. t.cfg.duration in
  let t0 = t.cfg.t0 +. (warmup_frac *. t.cfg.duration) in
  Array.map (fun f -> Flow.throughput f ~t0 ~t1) t.flows

let goodputs t =
  let horizon = t.cfg.t0 +. t.cfg.duration in
  Array.map (fun f -> Flow.goodput f ~horizon) t.flows

let utilization t ?(warmup_frac = 0.25) () =
  let xs = throughputs t ~warmup_frac () in
  let total = Array.fold_left ( +. ) 0. xs in
  let t1 = t.cfg.t0 +. t.cfg.duration
  and t0 = t.cfg.t0 +. (warmup_frac *. t.cfg.duration) in
  (* Rate with fault blackouts / renegotiations folded in: the exact
     time-average of the (piecewise-constant) rate over the window. *)
  let mean_rate = Link.mean_rate t.effective_rate ~t0 ~t1 in
  if mean_rate <= 0. then 0. else total /. mean_rate
