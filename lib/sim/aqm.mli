(** Active queue management for the bottleneck (paper §6.4).

    The paper conjectures that AQM + ECN-reacting CCAs prevent starvation,
    and points past its simple threshold heuristic to RED and
    CoDel/PIE-style schemes.  Three disciplines are provided:

    - [Threshold]: mark every arrival that finds more than [mark_above]
      bytes queued (the paper's own example);
    - [Red]: Random Early Detection (Floyd & Jacobson 1993) over an EWMA
      of the queue depth, with the standard gentle linear mark probability
      between [min_th] and [max_th];
    - [Codel]: Controlled Delay (Nichols & Jacobson) on dequeue sojourn
      times — marks when the standing delay exceeds [target] for at least
      [interval], at the sqrt control-law spacing.

    All three are used in marking mode (ECN): the verdict says whether to
    set CE on the packet.  Dropping variants are what classic RED does for
    non-ECN flows; the experiments here pair AQM with ECN-capable CCAs as
    §6.4 prescribes, so marking is the behavior under study. *)

type verdict = Pass | Mark

type t

val threshold : mark_above:int -> t
(** Mark arrivals that see more than [mark_above] bytes queued. *)

val red :
  ?wq:float -> ?max_p:float -> min_th:int -> max_th:int -> rng:Rng.t -> unit -> t
(** RED: EWMA weight [wq] (default 0.002), max mark probability [max_p]
    (default 0.1) reached at [max_th] bytes of average queue; above
    [max_th] every packet is marked. *)

val codel : ?target:float -> ?interval:float -> unit -> t
(** CoDel: mark when the dequeue sojourn time stays above [target]
    (default 5 ms) for a full [interval] (default 100 ms); successive
    marks accelerate by the inverse-sqrt law. *)

val on_enqueue : t -> now:float -> queue_bytes:int -> verdict
(** Consulted when a packet arrives (Threshold, RED).  CoDel passes here. *)

val on_dequeue : t -> now:float -> sojourn:float -> verdict
(** Consulted when a packet finishes service (CoDel).  Threshold and RED
    pass here. *)

val marks : t -> int
(** Total marks issued by this discipline. *)

val fold_state : Buffer.t -> t -> unit
(** Append the discipline's mutable state (EWMA, CoDel control law, mark
    counters, RNG words) to a {!Statebuf} encoding. *)
