(* Hierarchical timing wheel (see the .mli for the scheme).

   Storage is structure-of-arrays per slot — parallel [times]/[seqs]/
   [items] vecs indexed by [slot = level * 32 + s] — so the float
   writes stay unboxed (the PR 3 fbox discipline) and a cancel is a
   swap-with-last.  Level assignment uses the XOR rule: an entry lives
   at the 5-bit group of the highest bit in [tick lxor cursor].  Two
   consequences carry the whole correctness argument:

   - cascades are strictly downward: when the cursor enters a level-l
     block, every entry filed there now agrees with the cursor on all
     bits >= 5*l, so it re-files at a level < l (or is due).  A flush
     can therefore never append into the slot it is draining.
   - slots are wrap-free: an occupied level-l slot s always satisfies
     s > cursor's level-l index (bits above agree, tick > cursor), so
     the lowest occupied level, lowest occupied slot, is the global
     minimum — [next_tick] needs no wrap adjustments.

   The wheel covers one 2^35-tick aligned epoch around the cursor
   (~9.5 simulated hours at the default 1 us granularity); anything
   beyond answers [Far] and lives in the caller's overflow heap. *)

let slot_bits = 5
let slots_per_level = 1 lsl slot_bits
let slot_mask = slots_per_level - 1
let levels = 7
let nslots = levels * slots_per_level
let horizon_ticks = 1 lsl (slot_bits * levels)

type placement = Placed | Due | Far

type 'a t = {
  g : float;
  inv_g : float;
  dummy : 'a;
  move : 'a -> slot:int -> idx:int -> unit;
  due : 'a -> time:float -> seq:int -> unit;
  times : float array array; (* [nslots] vecs, grown per slot *)
  seqs : int array array;
  items : 'a array array;
  lens : int array;
  bitmaps : int array; (* per level: bit s set iff slot (level,s) non-empty *)
  mutable cursor : int;
  mutable size : int;
  (* Exact next pending tick, or -1 = stale (recomputed lazily). *)
  mutable memo : int;
}

(* floor (time / g) with non-finite and overflowing inputs clamped so a
   pathological time degrades to Far/Due instead of undefined
   int_of_float behaviour. *)
let tick_raw inv_g time =
  let x = Float.floor (time *. inv_g) in
  if Float.is_nan x then max_int
  else if x >= 4.611686018427387904e18 (* 2^62 *) then max_int
  else if x <= -4.611686018427387904e18 then min_int
  else int_of_float x

let tick_of t time = tick_raw t.inv_g time

let create ?(granularity = 1e-6) ~start ~dummy ~move ~due () =
  if not (granularity > 0. && Float.is_finite granularity) then
    invalid_arg "Timer_wheel.create: granularity must be finite and > 0";
  let inv_g = 1. /. granularity in
  {
    g = granularity;
    inv_g;
    dummy;
    move;
    due;
    times = Array.make nslots [||];
    seqs = Array.make nslots [||];
    items = Array.make nslots (Array.make 0 dummy);
    lens = Array.make nslots 0;
    bitmaps = Array.make levels 0;
    cursor = tick_raw inv_g start;
    size = 0;
    memo = -1;
  }

let size t = t.size
let granularity t = t.g
let cursor t = t.cursor

(* 5-bit group of the highest set bit of [diff]; requires
   0 < diff < horizon_ticks. *)
let level_of diff =
  if diff < 0x2000000 then
    if diff < 0x400 then (if diff < 0x20 then 0 else 1)
    else if diff < 0x8000 then 2
    else if diff < 0x100000 then 3
    else 4
  else if diff < 0x40000000 then 5
  else 6

let push t ~slot ~time ~seq x =
  let len = t.lens.(slot) in
  let cap = Array.length t.seqs.(slot) in
  if len = cap then begin
    let ncap = if cap = 0 then 8 else cap * 2 in
    let nt = Array.make ncap 0. in
    let ns = Array.make ncap 0 in
    let ni = Array.make ncap t.dummy in
    Array.blit t.times.(slot) 0 nt 0 len;
    Array.blit t.seqs.(slot) 0 ns 0 len;
    Array.blit t.items.(slot) 0 ni 0 len;
    t.times.(slot) <- nt;
    t.seqs.(slot) <- ns;
    t.items.(slot) <- ni
  end;
  t.times.(slot).(len) <- time;
  t.seqs.(slot).(len) <- seq;
  t.items.(slot).(len) <- x;
  t.lens.(slot) <- len + 1;
  t.move x ~slot ~idx:len

let add t ~time ~seq x =
  let tk = tick_of t time in
  if tk <= t.cursor then Due
  else begin
    let diff = tk lxor t.cursor in
    if diff >= horizon_ticks then Far
    else begin
      let l = level_of diff in
      let s = (tk lsr (slot_bits * l)) land slot_mask in
      push t ~slot:((l lsl slot_bits) lor s) ~time ~seq x;
      t.bitmaps.(l) <- t.bitmaps.(l) lor (1 lsl s);
      t.size <- t.size + 1;
      if t.memo >= 0 && tk < t.memo then t.memo <- tk;
      Placed
    end
  end

let remove t ~slot ~idx =
  let last = t.lens.(slot) - 1 in
  let removed_tick = tick_of t t.times.(slot).(idx) in
  if idx < last then begin
    t.times.(slot).(idx) <- t.times.(slot).(last);
    t.seqs.(slot).(idx) <- t.seqs.(slot).(last);
    let x = t.items.(slot).(last) in
    t.items.(slot).(idx) <- x;
    t.move x ~slot ~idx
  end;
  t.items.(slot).(last) <- t.dummy;
  t.lens.(slot) <- last;
  if last = 0 then begin
    let l = slot lsr slot_bits and s = slot land slot_mask in
    t.bitmaps.(l) <- t.bitmaps.(l) land lnot (1 lsl s)
  end;
  t.size <- t.size - 1;
  if t.memo >= 0 && removed_tick = t.memo then t.memo <- -1

let time_at t ~slot ~idx = t.times.(slot).(idx)
let seq_at t ~slot ~idx = t.seqs.(slot).(idx)

let next_tick t =
  if t.memo >= 0 then t.memo
  else begin
    let l = ref 0 in
    while !l < levels && t.bitmaps.(!l) = 0 do
      incr l
    done;
    if !l >= levels then invalid_arg "Timer_wheel.next_tick: empty wheel";
    let bm = t.bitmaps.(!l) in
    let s = ref 0 in
    while bm land (1 lsl !s) = 0 do
      incr s
    done;
    let best =
      if !l = 0 then ((t.cursor lsr slot_bits) lsl slot_bits) lor !s
      else begin
        (* The lowest occupied slot of the lowest occupied level holds
           the minimum, but ticks within one level >= 1 slot span a
           32^l-tick block: scan its vec. *)
        let slot = (!l lsl slot_bits) lor !s in
        let len = t.lens.(slot) and tms = t.times.(slot) in
        let m = ref max_int in
        for i = 0 to len - 1 do
          let tk = tick_of t tms.(i) in
          if tk < !m then m := tk
        done;
        !m
      end
    in
    t.memo <- best;
    best
  end

(* Drain slot (l, s), re-filing each entry against the (already
   advanced) cursor.  Re-adds land at a strictly lower level, so the
   vec being drained is never appended to. *)
let flush t l s =
  let slot = (l lsl slot_bits) lor s in
  let len = t.lens.(slot) in
  if len > 0 then begin
    t.lens.(slot) <- 0;
    t.bitmaps.(l) <- t.bitmaps.(l) land lnot (1 lsl s);
    t.size <- t.size - len;
    let tms = t.times.(slot) and sqs = t.seqs.(slot) and its = t.items.(slot) in
    for i = 0 to len - 1 do
      let x = its.(i) in
      its.(i) <- t.dummy;
      let time = tms.(i) and seq = sqs.(i) in
      match add t ~time ~seq x with
      | Placed -> ()
      | Due -> t.due x ~time ~seq
      | Far -> assert false
    done
  end

(* Level-0 slot of the cursor's own tick: every entry is exactly due. *)
let emit t s =
  let len = t.lens.(s) in
  if len > 0 then begin
    t.lens.(s) <- 0;
    t.bitmaps.(0) <- t.bitmaps.(0) land lnot (1 lsl s);
    t.size <- t.size - len;
    let tms = t.times.(s) and sqs = t.seqs.(s) and its = t.items.(s) in
    for i = 0 to len - 1 do
      let x = its.(i) in
      its.(i) <- t.dummy;
      t.due x ~time:tms.(i) ~seq:sqs.(i)
    done
  end

let advance t target =
  let old = t.cursor in
  if target <= old then invalid_arg "Timer_wheel.advance: target <= cursor";
  t.cursor <- target;
  t.memo <- -1;
  let diff = target lxor old in
  if diff < horizon_ticks then begin
    (* Levels 1..level_of diff changed block; cascade top-down so each
       flush re-files into already-flushed (lower) territory. *)
    for l = level_of diff downto 1 do
      flush t l ((target lsr (slot_bits * l)) land slot_mask)
    done
  end
  else
    (* Cursor left the wheel's epoch entirely (only possible when the
       wheel is empty, since stored ticks share the epoch): every slot
       is empty, nothing to cascade. *)
    assert (t.size = 0);
  emit t (target land slot_mask)

let fold_state buf t =
  Statebuf.i buf t.cursor;
  Statebuf.i buf t.size;
  for slot = 0 to nslots - 1 do
    let len = t.lens.(slot) in
    if len > 0 then begin
      Statebuf.i buf slot;
      Statebuf.i buf len;
      for i = 0 to len - 1 do
        Statebuf.f buf t.times.(slot).(i);
        Statebuf.i buf t.seqs.(slot).(i)
      done
    end
  done
