type t = {
  s_format : int;
  s_binary : string;
  s_time : float;
  s_hash : string;
  s_payload : string;
}

exception Incompatible of string

let () =
  Printexc.register_printer (function
    | Incompatible msg -> Some (Printf.sprintf "Snapshot.Incompatible(%s)" msg)
    | _ -> None)

let format_version = 1

(* The payload embeds code pointers ([Marshal.Closures]), so it is only
   meaningful inside the binary that produced it.  Hashing the executable
   once per process is enough: a given process never changes binaries. *)
let self_digest = lazy (Digest.to_hex (Digest.file Sys.executable_name))

let time s = s.s_time
let hash s = s.s_hash

let capture net =
  {
    s_format = format_version;
    s_binary = Lazy.force self_digest;
    s_time = Network.now net;
    s_hash = Network.state_hash net;
    s_payload = Network.serialize net;
  }

let restore s =
  if s.s_format <> format_version then
    raise
      (Incompatible
         (Printf.sprintf "snapshot format %d, this binary speaks %d" s.s_format
            format_version));
  if s.s_binary <> Lazy.force self_digest then
    raise
      (Incompatible
         (Printf.sprintf
            "snapshot from binary %s cannot be restored by binary %s \
             (Marshal closures are binary-specific)"
            s.s_binary (Lazy.force self_digest)));
  let net = Network.deserialize s.s_payload in
  let h = Network.state_hash net in
  if h <> s.s_hash then
    raise
      (Incompatible
         (Printf.sprintf
            "restored state hashes to %s, snapshot recorded %s (corrupt \
             payload?)"
            h s.s_hash));
  net

(* --- Crash-atomic files -------------------------------------------------- *)

let write_atomic_file path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length content in
      let written = ref 0 in
      while !written < n do
        written :=
          !written
          + Unix.write_substring fd content !written (n - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  (* fsync the directory so the rename itself survives a crash.  Some
     filesystems refuse fsync on a directory fd; losing that durability
     is acceptable, losing the write is not. *)
  try
    let dfd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close dfd)
      (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())
  with Unix.Unix_error _ -> ()

let magic = "ccstarve-snapshot\n"

let save path s =
  let blob = Marshal.to_string s [] in
  write_atomic_file path (magic ^ Digest.string blob ^ blob)

let load path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let mlen = String.length magic in
  if String.length content < mlen + 16 || String.sub content 0 mlen <> magic
  then raise (Incompatible (path ^ ": not a snapshot file"));
  let digest = String.sub content mlen 16 in
  let blob = String.sub content (mlen + 16) (String.length content - mlen - 16) in
  if Digest.string blob <> digest then
    raise (Incompatible (path ^ ": corrupt snapshot (digest mismatch)"));
  (Marshal.from_string blob 0 : t)

(* --- Checkpointed runs --------------------------------------------------- *)

let run_with_checkpoints ?(interval = 1.0) ?on_checkpoint net =
  if not (interval > 0.) then
    invalid_arg "Snapshot.run_with_checkpoints: interval must be positive";
  let horizon = Network.horizon net in
  let emit t =
    match on_checkpoint with Some f -> f (capture t) | None -> ()
  in
  let rec loop t =
    let next = Network.now t +. interval in
    if next >= horizon then Network.run t
    else begin
      Network.run_to t next;
      emit t;
      loop t
    end
  in
  loop net

let first_divergence a b =
  let rec go a b =
    match (a, b) with
    | (ta, fa) :: resta, (tb, fb) :: restb ->
        if fa = fb then go resta restb
        else begin
          let component =
            (* First component present in either fingerprint whose digest
               differs (or is missing on one side). *)
            let rec scan = function
              | (name, d) :: rest -> begin
                  match List.assoc_opt name fb with
                  | Some d' when d' = d -> scan rest
                  | _ -> Some name
                end
              | [] -> (
                  match
                    List.find_opt (fun (n, _) -> not (List.mem_assoc n fa)) fb
                  with
                  | Some (n, _) -> Some n
                  | None -> None)
            in
            scan fa
          in
          Some (Float.min ta tb, Option.value component ~default:"?")
        end
    | [], [] -> None
    | _ -> None
  in
  go a b
