(** Full-fidelity simulation checkpoints.

    A snapshot freezes a running {!Network} — flows with their CCA
    closures, link and queue contents, delay lines, RNG streams, recorded
    series, fault chains and the pending event schedule — into a single
    payload whose restore is {e provably} equivalent to never having
    paused: running a scenario 0→T produces byte-identical statistics to
    running 0→T/2, snapshotting, restoring and running T/2→T (asserted by
    the split-run test matrix and by [repro --split-run] in CI).

    Two integrity layers travel with every snapshot:

    - the producing binary's digest, because the payload uses
      [Marshal.Closures] and is meaningless in any other executable;
    - a cross-binary-stable content hash ({!Network.state_hash}) of the
      simulator's observable state, re-verified after restore and usable
      to compare checkpoint streams from different builds — turning "the
      runs diverged" into "the first divergent checkpoint is at t=…,
      component …". *)

type t

exception Incompatible of string
(** Raised by {!restore}, {!load} and {!Shrink.load_repro} on a format or
    binary mismatch, a corrupt file, or a restored state that fails its
    recorded content hash. *)

val format_version : int

val capture : Network.t -> t
(** Snapshot the network at its current simulation time.  The network is
    not disturbed and can keep running. *)

val restore : t -> Network.t
(** Materialize an independent network from the snapshot: advancing the
    restored copy does not affect the original, and both futures are
    identical.  Verifies the binary digest and re-checks the content
    hash of the restored state.
    @raise Incompatible on any mismatch. *)

val time : t -> float
(** Simulation time at capture. *)

val hash : t -> string
(** {!Network.state_hash} at capture — stable across binaries. *)

val save : string -> t -> unit
(** Write crash-atomically: temp file + [fsync] + [rename] + directory
    [fsync], so a crash at any instant leaves either the old file or the
    new one, never a torn snapshot.  The content carries its own digest;
    truncation or corruption is detected at {!load} time. *)

val load : string -> t
(** @raise Incompatible on a missing magic, truncation or digest
    mismatch.  Binary compatibility is only checked at {!restore}. *)

val write_atomic_file : string -> string -> unit
(** The temp+[fsync]+rename+dir-[fsync] primitive underlying {!save},
    exposed for other persisted artifacts (cache entries, journals,
    failure records). *)

val run_with_checkpoints :
  ?interval:float -> ?on_checkpoint:(t -> unit) -> Network.t -> Network.t
(** Run the network to its horizon, pausing every [interval] simulated
    seconds (default 1.0) to capture a checkpoint and hand it to
    [on_checkpoint].  No checkpoint is emitted at the horizon itself
    (the finished network is the result).  Returns the handle
    {!Network.run} returns.
    @raise Invalid_argument if [interval <= 0]. *)

val first_divergence :
  (float * (string * string) list) list ->
  (float * (string * string) list) list ->
  (float * string) option
(** Compare two checkpoint streams of [(time, fingerprint)] pairs (see
    {!Network.fingerprint}) taken at the same cadence: [Some (t, comp)]
    names the earliest checkpoint time and first component at which they
    differ, [None] if one stream is a prefix of the other or they are
    identical. *)
