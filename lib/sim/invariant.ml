type violation = { time : float; check : string; detail : string }

type t = {
  max_recorded : int;
  mutable recorded : violation list; (* newest first *)
  mutable recorded_n : int;
  mutable total : int;
  mutable checks_run : int;
  tally : (string, int) Hashtbl.t;
}

let create ?(max_recorded = 100) () =
  if max_recorded < 0 then invalid_arg "Invariant.create: negative max_recorded";
  {
    max_recorded;
    recorded = [];
    recorded_n = 0;
    total = 0;
    checks_run = 0;
    tally = Hashtbl.create 8;
  }

let record t ~time ~check ~detail =
  t.total <- t.total + 1;
  let prev = match Hashtbl.find_opt t.tally check with Some n -> n | None -> 0 in
  Hashtbl.replace t.tally check (prev + 1);
  if t.recorded_n < t.max_recorded then begin
    t.recorded <- { time; check; detail } :: t.recorded;
    t.recorded_n <- t.recorded_n + 1
  end

let check t ~time ~name ~detail cond =
  t.checks_run <- t.checks_run + 1;
  if not cond then record t ~time ~check:name ~detail:(detail ())

let count t = t.total
let checks_run t = t.checks_run
let ok t = t.total = 0
let violations t = List.rev t.recorded

let by_check t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tally []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let summary t =
  if t.total = 0 then Printf.sprintf "0 violations in %d checks" t.checks_run
  else
    Printf.sprintf "%d violations in %d checks: %s" t.total t.checks_run
      (String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "%s x%d" k n) (by_check t)))

let violation_to_string v =
  Printf.sprintf "[t=%.6f] %s: %s" v.time v.check v.detail

let report ?(max_lines = 20) t =
  let lines =
    List.filteri (fun i _ -> i < max_lines) (violations t)
    |> List.map violation_to_string
  in
  let lines =
    if t.recorded_n > max_lines || t.total > t.recorded_n then
      lines
      @ [ Printf.sprintf "... (%d violations total)" t.total ]
    else lines
  in
  String.concat "\n" (summary t :: lines)

let fold_state buf t =
  Statebuf.i buf t.total;
  Statebuf.i buf t.checks_run;
  List.iter
    (fun (k, n) ->
      Statebuf.s buf k;
      Statebuf.i buf n)
    (by_check t)
