type arrivals = Poisson of { rate : float } | Periodic of { period : float }
type sizes = Fixed of int | Exponential of { mean : float }

type t = {
  eq : Event_queue.t;
  rng : Rng.t;
  arrivals : arrivals;
  sizes : sizes;
  flow : int;
  until : float;
  send : Packet.t -> unit;
  handle : Event_queue.handle;
  mutable seq : int;
  mutable sent_bytes : int;
}

let gap t =
  match t.arrivals with
  | Poisson { rate } -> Rng.exponential t.rng ~mean:(1. /. rate)
  | Periodic { period } -> period

let draw_size t =
  match t.sizes with
  | Fixed n -> n
  | Exponential { mean } -> max 1 (int_of_float (Rng.exponential t.rng ~mean))

let rec arrive t () =
  let now = Event_queue.now t.eq in
  let size = draw_size t in
  let pkt =
    {
      Packet.flow = t.flow;
      seq = t.seq;
      size;
      sent_at = now;
      delivered_at_send = 0;
      app_limited = false;
      ce = false;
    }
  in
  t.seq <- t.seq + 1;
  t.sent_bytes <- t.sent_bytes + size;
  t.send pkt;
  schedule_next t

and schedule_next t =
  let at = Event_queue.now t.eq +. gap t in
  if at <= t.until then Event_queue.schedule_handle t.eq t.handle ~at

let create ~eq ~rng ~arrivals ~sizes ?(flow = 0) ?(until = infinity) ~send () =
  (match arrivals with
  | Poisson { rate } when not (rate > 0.) ->
      invalid_arg "Source.create: Poisson rate must be positive"
  | Periodic { period } when not (period > 0.) ->
      invalid_arg "Source.create: period must be positive"
  | _ -> ());
  (match sizes with
  | Fixed n when n <= 0 -> invalid_arg "Source.create: size must be positive"
  | Exponential { mean } when not (mean > 0.) ->
      invalid_arg "Source.create: mean size must be positive"
  | _ -> ());
  let t =
    {
      eq;
      rng;
      arrivals;
      sizes;
      flow;
      until;
      send;
      handle = Event_queue.handle (fun () -> ());
      seq = 0;
      sent_bytes = 0;
    }
  in
  Event_queue.set_action t.handle (arrive t);
  schedule_next t;
  t

let sent_packets t = t.seq
let sent_bytes t = t.sent_bytes
let stop t = Event_queue.cancel t.eq t.handle
