(** Automatic minimization of invariant-tripping scenarios.

    When a run under the {!Invariant} monitor reports violations, [shrink]
    delta-debugs the configuration — halving the horizon, dropping fault
    events one at a time, dropping flows (with fault flow indices
    remapped) — keeping each reduction only if a fresh run still trips the
    {e same} check, and iterating to a fixpoint.  The output is a minimal
    runnable reproducer: typically one or two flows and at most one fault
    event, which turns "the chaos matrix failed" into a scenario small
    enough to read.

    Every trial runs a deep copy of the candidate config
    ({!copy_config}): configs embed instantiated CCA closures whose
    mutable state would otherwise leak between trials. *)

type result = {
  config : Network.config;  (** minimized scenario, monitor included *)
  check : string;  (** invariant check name it trips *)
  violations : int;  (** tally of [check] in the last confirming run *)
  runs : int;  (** trial runs spent *)
}

val copy_config : Network.config -> Network.config
(** Deep copy via a closure-carrying Marshal round trip, so running the
    copy cannot dirty CCA state reachable from the original. *)

val trips : ?monitor_period:float -> Network.config -> (string * int) list
(** Run a deep copy of the config to its horizon and return the
    invariant checks that failed with their tallies (empty when the run
    is clean).  If the config has no [monitor_period], one is supplied
    ([monitor_period], default 0.05 s). *)

val shrink :
  ?max_runs:int -> ?monitor_period:float -> Network.config -> result option
(** Minimize.  [None] if the initial run does not trip any invariant.
    At most [max_runs] (default 200) trial simulations are spent;
    whatever has been confirmed when the budget runs out is returned. *)

val describe : result -> string
(** One-line human summary: check name, flow / fault-event counts,
    duration, violation tally, trials spent. *)

val write_repro : string -> result -> unit
(** Persist crash-atomically.  The file embeds the producing binary's
    digest {e outside} the closure-carrying payload, so {!load_repro}
    refuses foreign files before [Marshal] ever parses them. *)

val load_repro : string -> result
(** @raise Snapshot.Incompatible on a foreign binary, bad magic,
    truncation or digest mismatch. *)
