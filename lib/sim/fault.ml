type event =
  | Link_blackout of { t0 : float; t1 : float }
  | Rate_step of { at : float; rate : float }
  | Buffer_resize of { at : float; buffer : int option }
  | Ack_blackhole of { flow : int; t0 : float; t1 : float }
  | Bursty_loss of {
      flow : int;
      t0 : float;
      t1 : float;
      p_enter : float;
      p_exit : float;
      loss_good : float;
      loss_bad : float;
    }

type plan = { evs : event list }

let finite x = Float.is_finite x

let check_window ~what t0 t1 =
  if (not (finite t0)) || (not (finite t1)) || t0 < 0. then
    invalid_arg (Printf.sprintf "Fault.plan: %s window times must be finite and >= 0" what);
  if t1 <= t0 then
    invalid_arg (Printf.sprintf "Fault.plan: %s window is empty (t1 <= t0)" what)

let check_prob ~what p =
  if (not (finite p)) || p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Fault.plan: %s must be in [0, 1]" what)

let validate = function
  | Link_blackout { t0; t1 } -> check_window ~what:"blackout" t0 t1
  | Rate_step { at; rate } ->
      if (not (finite at)) || at < 0. then
        invalid_arg "Fault.plan: rate-step time must be finite and >= 0";
      if (not (finite rate)) || rate < 0. then
        invalid_arg "Fault.plan: rate-step rate must be finite and >= 0"
  | Buffer_resize { at; buffer } ->
      if (not (finite at)) || at < 0. then
        invalid_arg "Fault.plan: buffer-resize time must be finite and >= 0";
      (match buffer with
      | Some b when b < 0 -> invalid_arg "Fault.plan: negative buffer"
      | _ -> ())
  | Ack_blackhole { flow; t0; t1 } ->
      if flow < 0 then invalid_arg "Fault.plan: negative flow index";
      check_window ~what:"ack-blackhole" t0 t1
  | Bursty_loss { flow; t0; t1; p_enter; p_exit; loss_good; loss_bad } ->
      if flow < 0 then invalid_arg "Fault.plan: negative flow index";
      check_window ~what:"bursty-loss" t0 t1;
      check_prob ~what:"p_enter" p_enter;
      check_prob ~what:"p_exit" p_exit;
      check_prob ~what:"loss_good" loss_good;
      check_prob ~what:"loss_bad" loss_bad;
      (* A drop probability of 1 in a state the chain can rest in means
         the flow could never deliver a packet again. *)
      if loss_good >= 1. then invalid_arg "Fault.plan: loss_good must be < 1";
      if loss_bad >= 1. && p_exit <= 0. then
        invalid_arg "Fault.plan: loss_bad = 1 with p_exit = 0 never recovers"

let plan evs =
  List.iter validate evs;
  { evs }

let none = { evs = [] }
let events p = p.evs
let is_empty p = p.evs = []

let blackouts p =
  List.filter_map
    (function Link_blackout { t0; t1 } -> Some (t0, t1) | _ -> None)
    p.evs
  |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

let rate_steps p =
  List.filter_map
    (function Rate_step { at; rate } -> Some (at, rate) | _ -> None)
    p.evs
  |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

let buffer_events p =
  List.filter_map
    (function Buffer_resize { at; buffer } -> Some (at, buffer) | _ -> None)
    p.evs
  |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

module FSet = Set.Make (Float)

let compile_rate p base =
  let blk = blackouts p and steps = rate_steps p in
  if blk = [] && steps = [] then base
  else begin
    (* The nominal (non-blackout) rate at time t: the base schedule
       overridden by the latest rate step at or before t. *)
    let base_rate =
      match base with
      | Link.Constant r -> fun _t -> r
      | Link.Piecewise segs ->
          fun t ->
            let r = ref (if Array.length segs > 0 then snd segs.(0) else 0.) in
            Array.iter (fun (t0, rt) -> if t0 <= t then r := rt) segs;
            !r
      | Link.Opportunities _ ->
          invalid_arg
            "Fault.compile_rate: link-rate faults cannot overlay an \
             Opportunities trace"
    in
    let nominal t =
      let stepped = ref None in
      List.iter (fun (at, rt) -> if at <= t then stepped := Some rt) steps;
      match !stepped with Some r -> r | None -> base_rate t
    in
    let in_blackout t = List.exists (fun (t0, t1) -> t0 <= t && t < t1) blk in
    (* Breakpoints: base segment starts, step times, blackout edges. *)
    let bps = ref (FSet.singleton 0.) in
    (match base with
    | Link.Piecewise segs -> Array.iter (fun (t0, _) -> bps := FSet.add t0 !bps)
        segs
    | _ -> ());
    List.iter (fun (at, _) -> bps := FSet.add at !bps) steps;
    List.iter
      (fun (t0, t1) -> bps := FSet.add t0 (FSet.add t1 !bps))
      blk;
    let segs =
      FSet.elements !bps
      |> List.map (fun t -> (t, if in_blackout t then 0. else nominal t))
    in
    (* Drop redundant consecutive segments with identical rates. *)
    let segs =
      List.fold_left
        (fun acc (t, r) ->
          match acc with
          | (_, r') :: _ when r' = r -> acc
          | _ -> (t, r) :: acc)
        [] segs
      |> List.rev
    in
    Link.Piecewise (Array.of_list segs)
  end

(* ------------------------------------------------------------------ *)
(* Runtime state                                                       *)

type chain = {
  windows : (float * float * float * float * float * float) list;
      (* t0, t1, p_enter, p_exit, loss_good, loss_bad *)
  rng : Rng.t;
  mutable bad : bool;
}

type t = {
  chains : chain array;
  ack_windows : (float * float) list array;
  data_drops : int array;
  ack_drops : int array;
}

let instantiate p ~nflows ~rng =
  if nflows < 0 then invalid_arg "Fault.instantiate: negative nflows";
  let chains =
    Array.init nflows (fun i ->
        let windows =
          List.filter_map
            (function
              | Bursty_loss { flow; t0; t1; p_enter; p_exit; loss_good; loss_bad }
                when flow = i ->
                  Some (t0, t1, p_enter, p_exit, loss_good, loss_bad)
              | _ -> None)
            p.evs
        in
        { windows; rng = Rng.split rng; bad = false })
  in
  let ack_windows =
    Array.init nflows (fun i ->
        List.filter_map
          (function
            | Ack_blackhole { flow; t0; t1 } when flow = i -> Some (t0, t1)
            | _ -> None)
          p.evs)
  in
  {
    chains;
    ack_windows;
    data_drops = Array.make nflows 0;
    ack_drops = Array.make nflows 0;
  }

let data_drop t ~flow ~now =
  if flow < 0 || flow >= Array.length t.chains then false
  else
    let c = t.chains.(flow) in
    let active =
      List.find_opt (fun (t0, t1, _, _, _, _) -> t0 <= now && now < t1) c.windows
    in
    match active with
    | None ->
        c.bad <- false;
        false
    | Some (_, _, p_enter, p_exit, loss_good, loss_bad) ->
        (* One Markov transition per packet, then a drop draw in the
           resulting state. *)
        let u = Rng.float c.rng 1.0 in
        if c.bad then (if u < p_exit then c.bad <- false)
        else if u < p_enter then c.bad <- true;
        let p = if c.bad then loss_bad else loss_good in
        let dropped = p > 0. && Rng.float c.rng 1.0 < p in
        if dropped then t.data_drops.(flow) <- t.data_drops.(flow) + 1;
        dropped

let ack_drop t ~flow ~now =
  if flow < 0 || flow >= Array.length t.ack_windows then false
  else
    let hit =
      List.exists (fun (t0, t1) -> t0 <= now && now < t1) t.ack_windows.(flow)
    in
    if hit then t.ack_drops.(flow) <- t.ack_drops.(flow) + 1;
    hit

let data_drops t = Array.copy t.data_drops
let ack_drops t = Array.copy t.ack_drops

let fold_state buf t =
  Statebuf.i buf (Array.length t.chains);
  Array.iter
    (fun c ->
      Rng.fold_state buf c.rng;
      Statebuf.b buf c.bad)
    t.chains;
  Array.iter (Statebuf.i buf) t.data_drops;
  Array.iter (Statebuf.i buf) t.ack_drops
