(** Per-flow FIFO delay queue with one outstanding event-queue entry.

    The paper's §3 model makes the bottleneck FIFO and the jitter element
    non-reordering, so each flow's delivery (and ACK-release) times are
    monotone non-decreasing.  That means a heap event per packet is
    unnecessary: queue the pending deliveries in a ring buffer and keep a
    single {!Event_queue.handle} armed for the head's due time.  The event
    queue's size becomes O(flows + link) instead of O(bytes in flight),
    and a push costs two array stores instead of a closure plus a heap
    record.

    Payloads are delivered strictly in push order at their due times.  If
    a due time ever regresses below the largest due accepted so far (a
    non-monotone policy), that payload falls back to naive per-packet
    {!Event_queue.schedule} — time-ordered delivery, exactly the semantics
    the line replaces — and the escape is counted in {!fallbacks}. *)

type 'a t

val create : eq:Event_queue.t -> dummy:'a -> ('a -> unit) -> 'a t
(** [create ~eq ~dummy deliver]: [deliver] is invoked once per payload, at
    its due time, inside its own event-queue event.  [dummy] fills vacated
    ring slots so the line never pins delivered payloads. *)

val push : 'a t -> due:float -> 'a -> unit
(** Append a payload due at absolute time [due].  Allocation-free on the
    monotone path.  [due] must be at or after the current head's due time
    minus nothing — i.e. callers must not push a due time earlier than the
    event-queue clock will be when the payload reaches the head (true for
    any [due >= now], which monotone sources guarantee).
    @raise Invalid_argument on a non-finite [due]. *)

val length : 'a t -> int
(** Payloads queued and not yet delivered (excludes fallback payloads). *)

val pushes : 'a t -> int
(** Total payloads ever pushed. *)

val fallbacks : 'a t -> int
(** Payloads that took the non-monotone per-packet escape hatch.  Stays 0
    for every jitter policy shipped today (the element clamps releases to
    monotone). *)

val reset_last_due : 'a t -> unit
(** Forget the monotonicity watermark.  Only legal while the line is
    empty (nothing queued to overtake): a recycled per-flow line serves
    a fresh flow whose release times restart below the previous
    incarnation's watermark, and without the reset every push of the new
    flow would take the per-packet fallback path.
    @raise Invalid_argument if the line is non-empty. *)

val fold_state : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a t -> unit
(** [fold_state item buf t] appends the queued payloads (via [item], in
    delivery order, with their due times) and the line's counters to a
    {!Statebuf} encoding.  Payloads that took the fallback path live in
    the event queue, not here; they are covered by the event-queue fold. *)
