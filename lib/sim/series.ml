type t = {
  series_name : string;
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create ?(name = "") () =
  { series_name = name; times = [||]; values = [||]; len = 0 }

let name t = t.series_name
let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = max 16 (2 * Array.length t.times) in
  let times = Array.make cap 0. and values = Array.make cap 0. in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.values 0 values 0 t.len;
  t.times <- times;
  t.values <- values

let add t ~time v =
  if t.len > 0 && time < t.times.(t.len - 1) then
    invalid_arg
      (Printf.sprintf "Series.add(%s): time %.9f < last %.9f" t.series_name time
         t.times.(t.len - 1));
  if t.len = Array.length t.times then grow t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- v;
  t.len <- t.len + 1

let times t = Array.sub t.times 0 t.len
let values t = Array.sub t.values 0 t.len

let to_list t =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) ((t.times.(i), t.values.(i)) :: acc)
  in
  build (t.len - 1) []

let last t = if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))
let first t = if t.len = 0 then None else Some (t.times.(0), t.values.(0))

(* Index of the last sample with time <= q, or -1. *)
let index_at t q =
  if t.len = 0 || q < t.times.(0) then -1
  else begin
    let lo = ref 0 and hi = ref (t.len - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.times.(mid) <= q then lo := mid else hi := mid - 1
    done;
    !lo
  end

let value_at t q =
  let i = index_at t q in
  if i < 0 then None else Some t.values.(i)

(* Index of the first sample with time >= q, or [t.len]. *)
let index_from t q =
  if t.len = 0 || q <= t.times.(0) then 0
  else if t.times.(t.len - 1) < q then t.len
  else begin
    (* Invariant: times.(lo) < q <= times.(hi). *)
    let lo = ref 0 and hi = ref (t.len - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.times.(mid) < q then lo := mid else hi := mid
    done;
    !hi
  end

(* Inclusive index range of samples with t0 <= time <= t1; empty iff
   lo > hi.  Both ends located by binary search, so the window queries
   below are O(log n + k) in the window size k, not O(n).  NaN bounds
   would silently break the binary-search invariants (every comparison
   is false), yielding an arbitrary non-empty range — reject them here
   so all four window queries share the check. *)
let window_range t ~t0 ~t1 =
  if Float.is_nan t0 || Float.is_nan t1 then
    invalid_arg
      (Printf.sprintf "Series.window(%s): nan window bound" t.series_name);
  (index_from t t0, index_at t t1)

let window t ~t0 ~t1 =
  let lo, hi = window_range t ~t0 ~t1 in
  let rec build i acc =
    if i < lo then acc else build (i - 1) ((t.times.(i), t.values.(i)) :: acc)
  in
  build hi []

let window_values t ~t0 ~t1 =
  let lo, hi = window_range t ~t0 ~t1 in
  if lo > hi then [||]
  else Array.sub t.values lo (hi - lo + 1)

let min_max_in t ~t0 ~t1 =
  let lo, hi = window_range t ~t0 ~t1 in
  if lo > hi then None
  else begin
    let mn = ref t.values.(lo) and mx = ref t.values.(lo) in
    for i = lo + 1 to hi do
      mn := Float.min !mn t.values.(i);
      mx := Float.max !mx t.values.(i)
    done;
    Some (!mn, !mx)
  end

let mean_in t ~t0 ~t1 =
  let lo, hi = window_range t ~t0 ~t1 in
  if lo > hi then None
  else begin
    (* Same operation order as [Stats.mean] (left-to-right sum starting
       from 0., then one divide) so results are bitwise identical to the
       old materialize-then-average path. *)
    let acc = ref 0. in
    for i = lo to hi do
      acc := !acc +. t.values.(i)
    done;
    Some (!acc /. float_of_int (hi - lo + 1))
  end

let integral t ~t0 ~t1 =
  if t1 <= t0 || t.len = 0 then 0.
  else begin
    let acc = ref 0. in
    let cursor = ref t0 in
    let i0 = index_at t t0 in
    let v = ref (if i0 < 0 then 0. else t.values.(i0)) in
    let i = ref (max i0 0) in
    (* Skip samples at or before t0 (their value is already in !v). *)
    while !i < t.len && t.times.(!i) <= t0 do incr i done;
    while !i < t.len && t.times.(!i) < t1 do
      acc := !acc +. (!v *. (t.times.(!i) -. !cursor));
      cursor := t.times.(!i);
      v := t.values.(!i);
      incr i
    done;
    !acc +. (!v *. (t1 -. !cursor))
  end

let resample t ~t0 ~t1 ~dt =
  if t.len = 0 then invalid_arg "Series.resample: empty series";
  if dt <= 0. then invalid_arg "Series.resample: dt must be positive";
  let n = int_of_float (Float.floor ((t1 -. t0) /. dt)) + 1 in
  if n <= 0 then [||]
  else
    Array.init n (fun k ->
        let q = t0 +. (float_of_int k *. dt) in
        let v = match value_at t q with Some v -> v | None -> t.values.(0) in
        (q, v))

let fold_state buf t =
  Statebuf.s buf t.series_name;
  Statebuf.i buf t.len;
  for i = 0 to t.len - 1 do
    Statebuf.f buf t.times.(i);
    Statebuf.f buf t.values.(i)
  done

let map f t =
  let out = create ~name:t.series_name () in
  for i = 0 to t.len - 1 do
    add out ~time:t.times.(i) (f t.values.(i))
  done;
  out
