type 'a t = {
  cmp : 'a -> 'a -> int;
  dummy : 'a; (* fills slots beyond [size]; never compared or returned *)
  mutable data : 'a array; (* [||] when empty *)
  mutable size : int;
  capacity_hint : int;
}

let create ?(capacity = 16) ~dummy ~cmp () =
  { cmp; dummy; data = [||]; size = 0; capacity_hint = max capacity 1 }

let size t = t.size
let is_empty t = t.size = 0

let ensure_room t =
  if Array.length t.data = 0 then t.data <- Array.make t.capacity_hint t.dummy
  else if t.size = Array.length t.data then begin
    let data = Array.make (2 * Array.length t.data) t.dummy in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  ensure_room t;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let root = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    (* Overwrite the vacated slot with the dummy: leaving the moved
       element's duplicate there would pin it (and every closure it
       captures) in the array long after it is popped. *)
    t.data.(t.size) <- t.dummy;
    if t.size > 0 then sift_down t 0;
    Some root
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0

let to_sorted_list t =
  let copy = { t with data = Array.copy t.data } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
