(** Churning flow population over one bottleneck — the census engine.

    Runs [n] finite flows (Poisson arrivals over the first
    [arrival_frac] of the horizon, Pareto sizes) through a pool of
    recycled flow slots sized by {e peak concurrency}, not by [n]: a
    departed flow's slot — [Flow.t], outstanding rings, ACK delay line,
    columnar CCA row — is reincarnated in place ({!Flow.respawn}) for
    the next arrival.  Memory and event-queue size scale with the
    birth-death process's concurrency bound, which is what makes a
    one-million-flow census fit one machine; see DESIGN.md §13.

    The run is deterministic: arrivals and sizes come from
    order-independent labeled RNG streams keyed by [(seed, key)], so the
    population is identical no matter how slots happen to be recycled. *)

type config = {
  n : int;  (** flows to spawn *)
  duration : float;  (** simulated horizon, seconds *)
  arrival_frac : float;  (** arrivals occur in [0, arrival_frac * duration] *)
  rate : float;  (** bottleneck rate, bytes/s *)
  buffer : int option;  (** drop-tail capacity, bytes; [None] = unbounded *)
  rm : float;  (** one-way propagation delay after the bottleneck *)
  mss : int;
  jitter_d : float;  (** ACK-path jitter bound D (uniform in [0, D]); 0 = none *)
  seed : int;
  key : string;  (** RNG stream namespace — make it unique per cell *)
  alpha : float;  (** Pareto shape for flow sizes *)
  xm : float;  (** Pareto scale (bytes) *)
  size_cap : int;  (** flow sizes are truncated to this many bytes *)
}

type result = {
  goodputs : float array;
      (** per-flow goodput in spawn order: delivered bytes over the
          flow's own lifetime (to completion, or to the horizon while
          incomplete).  Length [n]. *)
  spawned : int;  (** always [n] *)
  completed : int;
  peak_active : int;  (** concurrency high-water mark *)
  peak_pending : int;  (** event-queue high-water mark, sampled at spawns *)
  slots : int;  (** flow slots ever created — bounded by concurrency *)
  table_capacity : int;  (** rows in the shared {!Flow.Table} *)
  fallbacks : int;
      (** delay-line non-monotone escapes; 0 for every shipped policy *)
}

val run :
  cca:(slot:int -> prev:Cca.instance option -> Cca.instance) ->
  config ->
  result
(** [cca ~slot ~prev] supplies the congestion controller for each
    incarnation of a slot.  [prev] is the slot's previous instance when
    the slot is being recycled: a columnar factory resets and returns it
    (allocation-free churn); returning a different instance releases the
    old one.  Called once per spawned flow. *)
