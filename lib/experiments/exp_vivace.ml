let run ?(quick = false) () =
  let rate = Sim.Units.mbps 120. in
  let duration = if quick then 20. else 60. in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.06 ~duration
         [
           Sim.Network.flow ~ack_policy:(Sim.Network.Aggregate { period = 0.06 })
             (Pcc_vivace.make ~params:{ Pcc_vivace.default_params with seed = 3 } ());
           Sim.Network.flow (Pcc_vivace.make ());
         ])
  in
  let t0 = duration /. 6. in
  let x1 = Sim.Network.throughput net ~flow:0 ~t0 ~t1:duration in
  let x2 = Sim.Network.throughput net ~flow:1 ~t0 ~t1:duration in
  [
    Report.row ~id:"E5" ~label:"vivace 2-flow, flow1 ACKs on 60 ms grid"
      ~paper:"9.9 vs 99.4 Mbit/s (~10:1)"
      ~measured:(Printf.sprintf "%s vs %s" (Report.mbps x1) (Report.mbps x2))
      ~ok:(x2 /. Float.max x1 1. > 5.);
  ]
