let write_csv ~path ~cols rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," cols);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc
            (String.concat "," (List.map (Printf.sprintf "%.9g") row));
          output_char oc '\n')
        rows)

let series_to_rows ?(stride = 1) s =
  let times = Sim.Series.times s and values = Sim.Series.values s in
  let rows = ref [] in
  Array.iteri
    (fun i t -> if i mod stride = 0 then rows := [ t; values.(i) ] :: !rows)
    times;
  List.rev !rows

let figures ~dir ~quick =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let written = ref [] in
  let emit name cols rows =
    let path = Filename.concat dir (name ^ ".csv") in
    write_csv ~path ~cols rows;
    written := path :: !written
  in
  (* Figure 1: RTT trajectories. *)
  List.iter
    (fun (name, s) ->
      let stride = max 1 (Sim.Series.length s / 2000) in
      emit (Printf.sprintf "fig1_%s" name) [ "t"; "rtt_s" ]
        (series_to_rows ~stride s))
    (Exp_fig1.series ~quick ());
  (* Figure 3: analytic rate-delay bands. *)
  let rates =
    List.map Sim.Units.mbps
      [ 0.1; 0.2; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100. ]
  in
  List.iter
    (fun (name, pts) ->
      emit
        (Printf.sprintf "fig3_%s" name)
        [ "rate_mbps"; "d_min_s"; "d_max_s" ]
        (List.map
           (fun (r, (b : Core.Rate_delay.band)) ->
             [ Sim.Units.to_mbps r; b.d_min; b.d_max ])
           pts))
    (Exp_fig3.analytic_series ~rm:0.1 ~rates);
  (* Figure 7: cwnd traces. *)
  List.iter
    (fun (r : Exp_fig7.result) ->
      List.iter
        (fun (tag, s) ->
          let stride = max 1 (Sim.Series.length s / 2000) in
          emit
            (Printf.sprintf "fig7_%s_%s" r.cca_name tag)
            [ "t"; "cwnd_bytes" ]
            (series_to_rows ~stride s))
        [ ("delack", r.cwnd_delack); ("normal", r.cwnd_normal) ])
    (Exp_fig7.series ~quick ());
  (* Figures 4-6 from Theorem 1. *)
  (match Exp_theorem1.outcome ~quick () with
  | Error _ -> ()
  | Ok o ->
      emit "fig4_probes" [ "rate_mbps"; "d_max_s" ]
        (List.map
           (fun (m : Core.Convergence.measurement) ->
             [ Sim.Units.to_mbps m.rate; m.d_max ])
           o.Core.Theorem1.pair.Core.Pigeonhole.probes);
      emit "fig5_c1_rtt" [ "t"; "rtt_s" ]
        (series_to_rows ~stride:5
           o.Core.Theorem1.pair.Core.Pigeonhole.m1.Core.Convergence.rtt);
      emit "fig5_c2_rtt" [ "t"; "rtt_s" ]
        (series_to_rows ~stride:5
           o.Core.Theorem1.pair.Core.Pigeonhole.m2.Core.Convergence.rtt);
      emit "fig6_d_star" [ "t"; "d_star_s" ] (series_to_rows o.Core.Theorem1.d_star));
  (* E14 phase diagram. *)
  emit "e14_phase" [ "jitter_s"; "jitter_over_delta"; "ratio" ]
    (List.map
       (fun (p : Exp_threshold.point) -> [ p.jitter; p.jitter_over_delta; p.ratio ])
       (Exp_threshold.sweep ~quick ()));
  (* E17 cross-CCA matrix. *)
  emit "e17_matrix"
    [ "util"; "p95_rtt_s"; "jain"; "random_jitter_ratio"; "adversarial_ratio" ]
    (List.map
       (fun (e : Exp_matrix.entry) ->
         [ e.solo_utilization; e.solo_p95_rtt; e.pair_jain; e.jitter_ratio;
           e.adv_ratio ])
       (Exp_matrix.measure ~quick ()));
  (* E10 figure-of-merit grid. *)
  emit "e10_merit" [ "jitter_s"; "s"; "vegas"; "exponential" ]
    (List.map
       (fun (r : Core.Ambiguity.merit_row) -> [ r.jitter; r.s; r.vegas; r.exponential ])
       (Exp_alg1.merit_rows ()));
  List.rev !written
