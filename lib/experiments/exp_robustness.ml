type spread = {
  label : string;
  ratios : float list;
  min_ratio : float;
  max_ratio : float;
}

let rate = Sim.Units.mbps 120.

let bbr_ratio ~seed ~duration =
  let jitter = Sim.Jitter.Uniform { lo = 0.; hi = 0.002 } in
  let mk s = Bbr.make ~params:{ Bbr.default_params with seed = s } () in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.04 ~seed ~duration
         [
           Sim.Network.flow ~jitter ~jitter_bound:0.002 (mk seed);
           Sim.Network.flow ~extra_rm:0.04 ~jitter ~jitter_bound:0.002 (mk (seed + 100));
         ])
  in
  let t0 = duration /. 6. in
  let x1 = Sim.Network.throughput net ~flow:0 ~t0 ~t1:duration in
  let x2 = Sim.Network.throughput net ~flow:1 ~t0 ~t1:duration in
  Float.max x1 x2 /. Float.max (Float.min x1 x2) 1.

let copa_ratio ~seed ~duration =
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.059 ~seed ~duration
         [
           Sim.Network.flow ~jitter:(Sim.Jitter.Trace Exp_copa.poison_trace)
             ~jitter_bound:0.001 (Copa.make ());
           Sim.Network.flow ~jitter:(Sim.Jitter.Constant 0.001) ~jitter_bound:0.001
             (Copa.make ());
         ])
  in
  let t0 = duration /. 6. in
  let x1 = Sim.Network.throughput net ~flow:0 ~t0 ~t1:duration in
  let x2 = Sim.Network.throughput net ~flow:1 ~t0 ~t1:duration in
  x2 /. Float.max x1 1.

let scenarios = [ ("bbr Rm 40/80", bbr_ratio); ("copa poisoned", copa_ratio) ]

let params ~quick =
  ((if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5 ]),
   if quick then 20. else 60.)

let spread_of label ratios =
  {
    label;
    ratios;
    min_ratio = List.fold_left Float.min infinity ratios;
    max_ratio = List.fold_left Float.max 0. ratios;
  }

let measure ?(quick = false) () =
  let seeds, duration = params ~quick in
  List.map
    (fun (label, f) ->
      spread_of label (List.map (fun seed -> f ~seed ~duration) seeds))
    scenarios

let rows_of_spreads spreads =
  List.map
    (fun s ->
      let shown =
        String.concat ", " (List.map (Printf.sprintf "%.1f") s.ratios)
      in
      let threshold = if s.label = "bbr Rm 40/80" then 5. else 3. in
      Report.row ~id:"E16"
        ~label:(Printf.sprintf "seed robustness: %s" s.label)
        ~paper:"the starvation shape must hold for every seed"
        ~measured:(Printf.sprintf "ratios {%s}" shown)
        ~ok:(s.min_ratio > threshold))
    spreads

let run ?quick () = rows_of_spreads (measure ?quick ())

let plan ~quick =
  let seeds, duration = params ~quick in
  let jobs =
    List.concat_map
      (fun (label, f) ->
        List.map
          (fun seed ->
            Runner.Job.create
              ~key:(Printf.sprintf "robustness/%s/seed=%d/dur=%g" label seed duration)
              (fun () -> f ~seed ~duration))
          seeds)
      scenarios
  in
  let merge payloads =
    let ratios = List.map (fun b -> (Runner.Job.decode b : float)) payloads in
    let per = List.length seeds in
    let spreads =
      List.mapi
        (fun i (label, _) ->
          spread_of label
            (List.filteri (fun j _ -> j / per = i) ratios))
        scenarios
    in
    rows_of_spreads spreads
  in
  (jobs, merge)
