(** E7 + Figures 4, 5, 6: the full Theorem 1 construction, run end to end
    with FAST TCP (a delay-convergent CCA with multiplicative convergence,
    so the pigeonhole probes converge quickly).

    Checks, in proof order:
    - Step 1 found C1, C2 at least s/f apart with d_max gap < epsilon
      (Figure 4);
    - Step 2 trajectories converged (Figure 5);
    - Step 3's eta bounds hold analytically (Eq. 5, Figure 6) and at
      runtime (zero jitter clamps);
    - the shared-link throughput ratio reaches the target s. *)

val run : ?quick:bool -> unit -> Report.row list
(** Full mode also runs the construction against LEDBAT — a min-filter CCA
    with a very different delay map (constant standing queue) — to show the
    mechanism is CCA-agnostic. *)

val outcome : ?quick:bool -> unit -> (Core.Theorem1.outcome, string) result
(** The raw FAST construction result (trajectories, d*, probe list) for
    plotting. *)

val ledbat_outcome : unit -> (Core.Theorem1.outcome, string) result
(** The LEDBAT variant of the construction (always full-size). *)
