let outcome ?(quick = false) () =
  if quick then
    Core.Theorem1.run
      ~make_cca:(fun () -> Fast_tcp.make ())
      ~rm:0.01 ~s:3. ~f:0.8
      ~lambda0:(Sim.Units.mbps 4.)
      ~epsilon:0.002 ~phase2_duration:4. ~single_duration:10. ()
  else
    Core.Theorem1.run
      ~make_cca:(fun () -> Fast_tcp.make ())
      ~rm:0.02 ~s:4. ~f:0.8
      ~lambda0:(Sim.Units.mbps 2.)
      ~epsilon:0.002 ~phase2_duration:8. ~single_duration:20. ()

let ledbat_outcome () =
  (* LEDBAT's delay band is dominated by its 25 ms target, so successive
     probes' d_max values differ by little more than packet granularity;
     a 5 ms epsilon finds the pair within a couple of probes instead of
     marching into multi-gigabit rates. *)
  Core.Theorem1.run
    ~make_cca:(fun () -> Ledbat.make ())
    ~rm:0.02 ~s:3. ~f:0.8
    ~lambda0:(Sim.Units.mbps 4.)
    ~epsilon:0.005 ~phase2_duration:8. ~single_duration:20. ()

let ledbat_row () =
  match ledbat_outcome () with
  | Error e ->
      Report.row ~id:"E7b" ~label:"theorem 1 on ledbat" ~paper:"starvation"
        ~measured:("failed: " ^ e) ~ok:false
  | Ok o ->
      let open Core.Theorem1 in
      let worst =
        Array.fold_left
          (fun acc j -> Float.max acc (Sim.Jitter.worst_excess j))
          0.
          (Sim.Network.jitters o.net)
      in
      Report.row ~id:"E7b" ~label:"theorem 1 on ledbat (min-filter CCA)"
        ~paper:"the construction is CCA-agnostic"
        ~measured:
          (Printf.sprintf "C1=%s C2=%s ratio=%.1f (s=%.0f), analytic 0/%d, worst clamp excess %s"
             (Report.mbps o.pair.Core.Pigeonhole.c1)
             (Report.mbps o.pair.Core.Pigeonhole.c2)
             o.ratio o.target_s o.analytic.Core.Emulation.samples
             (Report.msec worst))
          (* LEDBAT's 1-packet AIAD granularity at megabit rates (a single
             packet is 3 ms of delay at C1 = 4 Mbit/s) makes the emulated
             system ride the eta boundary; accept boundary riding within
             one packet's worth of delay, reject real schedule breaks. *)
        ~ok:
          (o.starved
          && o.analytic.Core.Emulation.violations = 0
          && worst < 1500. /. Sim.Units.mbps 4.)

let case2_row ~quick () =
  let result =
    if quick then
      Core.Theorem1.run
        ~make_cca:(fun () -> Fast_tcp.make ())
        ~rm:0.01 ~s:3. ~f:0.8
        ~lambda0:(Sim.Units.mbps 4.)
        ~epsilon:0.002 ~phase2_duration:4. ~single_duration:10.
        ~construction:Core.Theorem1.Case2 ()
    else
      Core.Theorem1.run
        ~make_cca:(fun () -> Fast_tcp.make ())
        ~rm:0.02 ~s:4. ~f:0.8
        ~lambda0:(Sim.Units.mbps 2.)
        ~epsilon:0.002 ~phase2_duration:8. ~single_duration:20.
        ~construction:Core.Theorem1.Case2 ()
  in
  match result with
  | Error e ->
      Report.row ~id:"E7c" ~label:"appendix A case 2 (huge link, pure jitter)"
        ~paper:"the easy case of the case split" ~measured:("failed: " ^ e) ~ok:false
  | Ok o ->
      let open Core.Theorem1 in
      Report.row ~id:"E7c" ~label:"appendix A case 2 (huge link, pure jitter)"
        ~paper:"same starvation with queueing replaced by jitter; shows Theorem 2 too"
        ~measured:
          (Printf.sprintf
             "ratio %.1f (s=%.0f), clamps %d, link utilization %.3f"
             o.ratio o.target_s o.runtime_violations
             (Sim.Network.utilization o.net ()))
        ~ok:
          (o.starved && o.runtime_violations = 0
          (* The 50x link is mostly idle: the Theorem 2 under-utilization. *)
          && Sim.Network.utilization o.net () < 0.05)

let run ?(quick = false) () =
  let extra = if quick then [ case2_row ~quick () ] else [ case2_row ~quick (); ledbat_row () ] in
  (match outcome ~quick () with
  | Error e ->
      [
        Report.row ~id:"E7" ~label:"theorem 1 construction" ~paper:"starvation"
          ~measured:("failed: " ^ e) ~ok:false;
      ]
  | Ok o ->
      let open Core.Theorem1 in
      [
        Report.row ~id:"E7/F4" ~label:"step 1: pigeonhole pair"
          ~paper:"C2 >= (s/f) C1, d_max gap < eps"
          ~measured:
            (Printf.sprintf "C1=%s C2=%s gap=%s" (Report.mbps o.pair.Core.Pigeonhole.c1)
               (Report.mbps o.pair.Core.Pigeonhole.c2)
               (Report.msec o.pair.Core.Pigeonhole.gap))
          ~ok:
            (o.pair.Core.Pigeonhole.c2 >= 2. *. o.pair.Core.Pigeonhole.c1
            && o.pair.Core.Pigeonhole.gap < o.epsilon +. 1e-9);
        Report.row ~id:"E7/F5" ~label:"step 2: single-flow convergence"
          ~paper:"both flows converge on their ideal links"
          ~measured:
            (Printf.sprintf "T1=%.1fs T2=%.1fs"
               o.pair.Core.Pigeonhole.m1.Core.Convergence.t_converge
               o.pair.Core.Pigeonhole.m2.Core.Convergence.t_converge)
          ~ok:
            (o.pair.Core.Pigeonhole.m1.Core.Convergence.converged
            && o.pair.Core.Pigeonhole.m2.Core.Convergence.converged);
        Report.row ~id:"E7/F6" ~label:"step 3: eta in [0,D] (analytic, Eq. 5)"
          ~paper:"0 violations"
          ~measured:
            (Printf.sprintf "%d/%d violations, eta in [%s, %s], D=%s"
               o.analytic.Core.Emulation.violations o.analytic.Core.Emulation.samples
               (Report.msec o.analytic.Core.Emulation.eta_min)
               (Report.msec o.analytic.Core.Emulation.eta_max)
               (Report.msec o.big_d))
          ~ok:(o.analytic.Core.Emulation.violations = 0);
        Report.row ~id:"E7" ~label:"step 3: runtime emulation + starvation"
          ~paper:"x2/x1 >= s with a legal jitter trace"
          ~measured:
            (Printf.sprintf
               "x1=%s x2=%s ratio=%.1f (s=%.0f), clamps=%d, emulation error %s"
               (Report.mbps o.x1) (Report.mbps o.x2) o.ratio o.target_s
               o.runtime_violations
               (Report.msec o.max_emulation_error))
          ~ok:
            (o.starved && o.runtime_violations = 0
            && o.max_emulation_error < 0.001);
      ])
  @ extra
