let rate = Sim.Units.mbps 48.
let rm = 0.05

let measure ~quick make_cca =
  Core.Convergence.measure ~make_cca ~rate ~rm
    ~duration:(if quick then 10. else 30.)
    ()

let run ?(quick = false) () =
  let cases =
    [ ("copa", fun () -> Copa.make ()); ("vegas", fun () -> Vegas.make ()) ]
  in
  List.map
    (fun (name, mk) ->
      let m = measure ~quick mk in
      Report.row ~id:"F1" ~label:(name ^ " ideal-path convergence")
        ~paper:"converges to a bounded delay region"
        ~measured:(Printf.sprintf "T=%.1fs band=[%s, %s] delta=%s"
             m.Core.Convergence.t_converge (Report.msec m.Core.Convergence.d_min)
             (Report.msec m.Core.Convergence.d_max)
             (Report.msec m.Core.Convergence.delta))
        ~ok:m.Core.Convergence.converged)
    cases

let series ?(quick = false) () =
  [
    ("copa", (measure ~quick (fun () -> Copa.make ())).Core.Convergence.rtt);
    ("vegas", (measure ~quick (fun () -> Vegas.make ())).Core.Convergence.rtt);
  ]
