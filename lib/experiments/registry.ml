type experiment = {
  key : string;
  title : string;
  run : quick:bool -> Report.row list;
}

let all =
  [
    { key = "fig1"; title = "Figure 1: ideal-path delay convergence";
      run = (fun ~quick -> Exp_fig1.run ~quick ()) };
    { key = "fig3"; title = "Figures 2-3: rate-delay maps";
      run = (fun ~quick -> Exp_fig3.run ~quick ()) };
    { key = "copa"; title = "E1-E2: Copa min-RTT poisoning (sec. 5.1)";
      run = (fun ~quick -> Exp_copa.run ~quick ()) };
    { key = "bbr"; title = "E3-E4: BBR starvation and +alpha ablation (sec. 5.2)";
      run = (fun ~quick -> Exp_bbr.run ~quick ()) };
    { key = "vivace"; title = "E5: PCC Vivace ACK aggregation (sec. 5.3)";
      run = (fun ~quick -> Exp_vivace.run ~quick ()) };
    { key = "fig7"; title = "Figure 7: Reno/Cubic delayed-ACK unfairness";
      run = (fun ~quick -> Exp_fig7.run ~quick ()) };
    { key = "allegro"; title = "E6: PCC Allegro random loss (sec. 5.4)";
      run = (fun ~quick -> Exp_allegro.run ~quick ()) };
    { key = "theorem1"; title = "E7 + Figures 4-6: Theorem 1 construction";
      run = (fun ~quick -> Exp_theorem1.run ~quick ()) };
    { key = "theorem2"; title = "E8-E9: Theorems 2-3 constructions";
      run = (fun ~quick -> Exp_theorem2.run ~quick ()) };
    { key = "alg1"; title = "E10-E11: Algorithm 1 and the figure of merit (sec. 6.3)";
      run = (fun ~quick -> Exp_alg1.run ~quick ()) };
    { key = "ccac"; title = "E12: bounded model checking (appendix C)";
      run = (fun ~quick -> Exp_ccac.run ~quick ()) };
    { key = "ecn"; title = "E13: explicit signaling avoids starvation (sec. 6.4)";
      run = (fun ~quick -> Exp_ecn.run ~quick ()) };
    { key = "threshold"; title = "E14: starvation ratio vs jitter (the Theorem 1 boundary)";
      run = (fun ~quick -> Exp_threshold.run ~quick ()) };
    { key = "isolation"; title = "E15: DRR isolation vs the shared FIFO (conclusion)";
      run = (fun ~quick -> Exp_isolation.run ~quick ()) };
    { key = "robustness"; title = "E16: seed robustness of the headline ratios";
      run = (fun ~quick -> Exp_robustness.run ~quick ()) };
    { key = "matrix"; title = "E17: cross-CCA summary matrix";
      run = (fun ~quick -> Exp_matrix.run ~quick ()) };
    { key = "faults"; title = "E18: fault-scenario matrix (recovery + invariants)";
      run = (fun ~quick -> Exp_faults.run ~quick ()) };
  ]

let find key = List.find_opt (fun e -> e.key = key) all

let run_all ?(quick = false) () =
  List.concat_map
    (fun e ->
      let rows = e.run ~quick in
      Report.print_rows ~title:e.title rows;
      rows)
    all
