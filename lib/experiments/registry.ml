type plan = {
  jobs : Runner.Job.t list;
  merge : bytes list -> Report.row list;
}

type experiment = {
  key : string;
  title : string;
  plan : quick:bool -> backend:Fluid.Backend.t -> plan;
  run : quick:bool -> Report.row list;
}

let merge_solo key = function
  | [ b ] -> (Runner.Job.decode b : Report.row list)
  | payloads ->
      invalid_arg
        (Printf.sprintf "Registry: experiment %s expected 1 payload, got %d" key
           (List.length payloads))

(* Experiments that have not been decomposed into per-simulation jobs run
   as one job each: the whole [run] executes inside the job (its prints
   are captured and replayed by the pool) and the rows come back as the
   payload.  A packet-only experiment ignores the simulation backend —
   it is the same computation under any [--backend], so its cache key
   stays backend-free and caches naturally across backend selections. *)
let solo key run =
  let plan ~quick ~backend:_ =
    let job =
      Runner.Job.create
        ~key:(Printf.sprintf "%s/quick=%b" key quick)
        (fun () -> run ~quick)
    in
    { jobs = [ job ]; merge = merge_solo key }
  in
  plan

(* Backend-aware solo experiments: the backend changes the computation,
   so it must be part of the cache key — a cached packet run must never
   satisfy a [--backend fluid] request. *)
let solo_backend key run =
  let plan ~quick ~backend =
    let job =
      Runner.Job.create
        ~key:
          (Printf.sprintf "%s/quick=%b/backend=%s" key quick
             (Fluid.Backend.to_string backend))
        (fun () -> run ~quick ~backend)
    in
    { jobs = [ job ]; merge = merge_solo key }
  in
  plan

(* Experiments whose jobs carry raw measurements: the merge rebuilds the
   rows (and prints any experiment-specific tables) in the parent. *)
let planned plan_fn ~quick ~backend:_ =
  let jobs, merge = plan_fn ~quick in
  { jobs; merge }

(* As [planned], for experiments ported to the fluid/hybrid backends:
   the planner receives the backend and embeds it in every job key. *)
let planned_backend plan_fn ~quick ~backend =
  let jobs, merge = plan_fn ~quick ~backend in
  { jobs; merge }

let all =
  [
    { key = "fig1"; title = "Figure 1: ideal-path delay convergence";
      run = (fun ~quick -> Exp_fig1.run ~quick ());
      plan = solo "fig1" (fun ~quick -> Exp_fig1.run ~quick ()) };
    { key = "fig3"; title = "Figures 2-3: rate-delay maps";
      run = (fun ~quick -> Exp_fig3.run ~quick ());
      plan = solo "fig3" (fun ~quick -> Exp_fig3.run ~quick ()) };
    { key = "copa"; title = "E1-E2: Copa min-RTT poisoning (sec. 5.1)";
      run = (fun ~quick -> Exp_copa.run ~quick ());
      plan = solo "copa" (fun ~quick -> Exp_copa.run ~quick ()) };
    { key = "bbr"; title = "E3-E4: BBR starvation and +alpha ablation (sec. 5.2)";
      run = (fun ~quick -> Exp_bbr.run ~quick ());
      plan = solo "bbr" (fun ~quick -> Exp_bbr.run ~quick ()) };
    { key = "vivace"; title = "E5: PCC Vivace ACK aggregation (sec. 5.3)";
      run = (fun ~quick -> Exp_vivace.run ~quick ());
      plan = solo "vivace" (fun ~quick -> Exp_vivace.run ~quick ()) };
    { key = "fig7"; title = "Figure 7: Reno/Cubic delayed-ACK unfairness";
      run = (fun ~quick -> Exp_fig7.run ~quick ());
      plan = solo "fig7" (fun ~quick -> Exp_fig7.run ~quick ()) };
    { key = "allegro"; title = "E6: PCC Allegro random loss (sec. 5.4)";
      run = (fun ~quick -> Exp_allegro.run ~quick ());
      plan = solo "allegro" (fun ~quick -> Exp_allegro.run ~quick ()) };
    { key = "theorem1"; title = "E7 + Figures 4-6: Theorem 1 construction";
      run = (fun ~quick -> Exp_theorem1.run ~quick ());
      plan = solo "theorem1" (fun ~quick -> Exp_theorem1.run ~quick ()) };
    { key = "theorem2"; title = "E8-E9: Theorems 2-3 constructions";
      run = (fun ~quick -> Exp_theorem2.run ~quick ());
      plan = solo "theorem2" (fun ~quick -> Exp_theorem2.run ~quick ()) };
    { key = "alg1"; title = "E10-E11: Algorithm 1 and the figure of merit (sec. 6.3)";
      run = (fun ~quick -> Exp_alg1.run ~quick ());
      plan = solo "alg1" (fun ~quick -> Exp_alg1.run ~quick ()) };
    { key = "ccac"; title = "E12: bounded model checking (appendix C)";
      run = (fun ~quick -> Exp_ccac.run ~quick ());
      plan = solo "ccac" (fun ~quick -> Exp_ccac.run ~quick ()) };
    { key = "ecn"; title = "E13: explicit signaling avoids starvation (sec. 6.4)";
      run = (fun ~quick -> Exp_ecn.run ~quick ());
      plan = solo "ecn" (fun ~quick -> Exp_ecn.run ~quick ()) };
    { key = "threshold"; title = "E14: starvation ratio vs jitter (the Theorem 1 boundary)";
      run = (fun ~quick -> Exp_threshold.run ~quick ());
      plan = planned_backend Exp_threshold.plan };
    { key = "isolation"; title = "E15: DRR isolation vs the shared FIFO (conclusion)";
      run = (fun ~quick -> Exp_isolation.run ~quick ());
      plan = solo "isolation" (fun ~quick -> Exp_isolation.run ~quick ()) };
    { key = "robustness"; title = "E16: seed robustness of the headline ratios";
      run = (fun ~quick -> Exp_robustness.run ~quick ());
      plan = planned Exp_robustness.plan };
    { key = "matrix"; title = "E17: cross-CCA summary matrix";
      run = (fun ~quick -> Exp_matrix.run ~quick ());
      plan = planned Exp_matrix.plan };
    { key = "faults"; title = "E18: fault-scenario matrix (recovery + invariants)";
      run = (fun ~quick -> Exp_faults.run ~quick ());
      plan = planned Exp_faults.plan };
    { key = "census"; title = "E19: starvation census over a churning flow population";
      run = (fun ~quick -> Exp_census.run ~quick ());
      plan = planned_backend Exp_census.plan };
    { key = "validate"; title = "V1-V6: validation oracles (queueing, conservation, equilibria, metamorphic, fuzz, fluid backend)";
      run = (fun ~quick -> Exp_validate.run ~quick ());
      plan =
        solo_backend "validate" (fun ~quick ~backend ->
            Exp_validate.run ~quick ~backend ()) };
  ]

(* Experiments reachable by key but kept out of [all]: [selftest-fail]
   exists so the exit-code contract (quarantine => non-zero exit) can be
   asserted end to end against the real binary. *)
let failing_run ~quick:_ : Report.row list =
  failwith "selftest-fail: deliberate failure"

let hidden =
  [
    { key = "selftest-fail"; title = "hidden: deliberately failing job";
      run = failing_run; plan = solo "selftest-fail" failing_run };
  ]

let find key = List.find_opt (fun e -> e.key = key) (all @ hidden)
let keys () = List.map (fun e -> e.key) all

(* One place owns the "unknown key" contract: every CLI front end that
   takes experiment names reports the same error, and the error names
   what would have worked — a typo should cost one read, not a trip to
   `list`. *)
let select = function
  | [] -> Ok all
  | wanted ->
      let missing = List.filter (fun k -> find k = None) wanted in
      if missing <> [] then
        Error
          (Printf.sprintf "unknown experiment(s): %s\navailable: %s"
             (String.concat ", " missing)
             (String.concat ", " (keys ())))
      else Ok (List.filter_map find wanted)

let rec take_drop n = function
  | rest when n = 0 -> ([], rest)
  | [] -> invalid_arg "Registry: fewer results than jobs"
  | x :: rest ->
      let taken, left = take_drop (n - 1) rest in
      (x :: taken, left)

let run_selection ?(quick = false) ?(backend = `Fork)
    ?(sim_backend = Fluid.Backend.Packet) ?(workers = 1) ?cache ?timeout
    ?policy ?journal ?(allow_failures = false) experiments =
  let plans =
    List.map (fun e -> (e, e.plan ~quick ~backend:sim_backend)) experiments
  in
  let jobs = List.concat_map (fun (_, p) -> p.jobs) plans in
  let results, stats =
    match (backend, policy, journal) with
    (* The domain backend is unsupervised by construction (no process
       boundary to retry or deadline across), so it always takes the
       plain pool path, whatever policy/journal the caller set up. *)
    | `Domain, _, _ | `Fork, None, None ->
        let results, stats =
          Runner.Pool.run ~backend ~workers ?timeout ?cache jobs
        in
        (List.map (fun (out, payload) -> (out, Some payload)) results, stats)
    | `Fork, _, _ ->
        (* Supervised path: retries/quarantine/resume.  The merge layer
           needs every payload, so a quarantined job is a hard failure
           here unless [allow_failures] — but only after the rest of the
           matrix completed (and cached), so a re-run only re-executes
           the stragglers. *)
        let policy =
          match policy with
          | Some p -> p
          | None ->
              { Runner.Supervise.default_policy with deadline = timeout }
        in
        let outcomes, stats =
          Runner.Supervise.run ~workers ~policy ?cache ?journal jobs
        in
        let results =
          List.map2
            (fun j outcome ->
              match outcome with
              | Runner.Supervise.Done { out; payload } -> (out, Some payload)
              | Runner.Supervise.Quarantined { reason; _ } ->
                  if allow_failures then begin
                    Printf.eprintf "runner: job %s quarantined: %s\n"
                      (Runner.Job.key j) reason;
                    ("", None)
                  end
                  else
                    raise
                      (Runner.Pool.Job_failed
                         { key = Runner.Job.key j; reason }))
            jobs outcomes
        in
        (results, stats)
  in
  (* Replay each experiment's captured stdout in job order, then merge and
     print its table: the byte stream is the same whether the jobs ran
     serially, in parallel, or straight out of the cache.  An experiment
     with a quarantined job (allow_failures only) is skipped whole: its
     merge never sees a partial payload list. *)
  let rows, _ =
    List.fold_left
      (fun (acc, remaining) (e, p) ->
        let mine, rest = take_drop (List.length p.jobs) remaining in
        if List.exists (fun (_, payload) -> payload = None) mine then begin
          Printf.eprintf
            "runner: experiment %s skipped (quarantined job)\n" e.key;
          (acc, rest)
        end
        else begin
          List.iter (fun (out, _) -> print_string out) mine;
          let rows =
            p.merge (List.filter_map snd mine)
          in
          Report.print_rows ~title:e.title rows;
          (acc @ rows, rest)
        end)
      ([], results) plans
  in
  (rows, stats)

let run_all ?quick ?workers ?cache ?timeout () =
  run_selection ?quick ?workers ?cache ?timeout all
