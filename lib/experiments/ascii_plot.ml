let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let bounds series =
  let xmin = ref infinity and xmax = ref neg_infinity in
  let ymin = ref infinity and ymax = ref neg_infinity in
  List.iter
    (fun (_, pts) ->
      List.iter
        (fun (x, y) ->
          if x < !xmin then xmin := x;
          if x > !xmax then xmax := x;
          if y < !ymin then ymin := y;
          if y > !ymax then ymax := y)
        pts)
    series;
  (* Pad degenerate ranges so the mapping below stays well-defined. *)
  if !xmax <= !xmin then begin
    xmin := !xmin -. 0.5;
    xmax := !xmax +. 0.5
  end;
  if !ymax <= !ymin then begin
    ymin := !ymin -. 0.5;
    ymax := !ymax +. 0.5
  end;
  (!xmin, !xmax, !ymin, !ymax)

let render ?(width = 72) ?(height = 20) ?title ?x_label ?y_label series =
  let series = List.filter (fun (_, pts) -> pts <> []) series in
  if series = [] then "(no data)\n"
  else begin
    let xmin, xmax, ymin, ymax = bounds series in
    let canvas = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, pts) ->
        let marker = markers.(si mod Array.length markers) in
        List.iter
          (fun (x, y) ->
            let col =
              int_of_float
                (Float.round ((x -. xmin) /. (xmax -. xmin) *. float_of_int (width - 1)))
            in
            let row =
              int_of_float
                (Float.round
                   ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1)))
            in
            let row = height - 1 - row in
            if row >= 0 && row < height && col >= 0 && col < width then
              canvas.(row).(col) <- marker)
          pts)
      series;
    let buf = Buffer.create ((width + 16) * (height + 6)) in
    (match title with
    | Some t ->
        Buffer.add_string buf t;
        Buffer.add_char buf '\n'
    | None -> ());
    (match y_label with
    | Some l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n'
    | None -> ());
    let y_axis_width = 10 in
    Array.iteri
      (fun row line ->
        let label =
          if row = 0 then Printf.sprintf "%9.3g" ymax
          else if row = height - 1 then Printf.sprintf "%9.3g" ymin
          else String.make 9 ' '
        in
        Buffer.add_string buf label;
        Buffer.add_string buf " |";
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      canvas;
    Buffer.add_string buf (String.make y_axis_width ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%s%-9.3g%s%9.3g\n" (String.make y_axis_width ' ') xmin
         (String.make (max 1 (width - 18)) ' ')
         xmax);
    (match x_label with
    | Some l ->
        Buffer.add_string buf (String.make (y_axis_width + (width / 2)) ' ');
        Buffer.add_string buf l;
        Buffer.add_char buf '\n'
    | None -> ());
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s\n" markers.(si mod Array.length markers) name))
      series;
    Buffer.contents buf
  end

let render_series ?width ?height ?title (name, s) =
  let pts =
    Array.to_list (Array.map2 (fun t v -> (t, v)) (Sim.Series.times s) (Sim.Series.values s))
  in
  render ?width ?height ?title [ (name, pts) ]
