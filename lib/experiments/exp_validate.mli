(** The [validate] experiment: every {!Validate} oracle family as one
    report table — analytic queueing baselines, conservation identities,
    CCA equilibrium laws, metamorphic properties, a fixed-seed fuzz
    smoke batch, and the fluid-backend cross-validation (V6).  Prints
    each individual verdict so a CI failure names the oracle, scenario,
    expected/observed and tolerance without a rerun. *)

val run : quick:bool -> ?backend:Fluid.Backend.t -> unit -> Report.row list
(** Under [Packet] (the default), all families V1-V6.  Under [Fluid] or
    [Hybrid], only the V6 fluid/hybrid cross-validation family — the
    cheap CI backend-agreement entry point. *)
