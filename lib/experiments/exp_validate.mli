(** The [validate] experiment: every {!Validate} oracle family as one
    report table — analytic queueing baselines, conservation identities,
    CCA equilibrium laws, metamorphic properties, and a fixed-seed fuzz
    smoke batch.  Prints each individual verdict so a CI failure names
    the oracle, scenario, expected/observed and tolerance without a
    rerun. *)

val run : quick:bool -> unit -> Report.row list
