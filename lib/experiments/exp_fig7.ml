type result = {
  cca_name : string;
  x_delack : float;
  x_normal : float;
  ratio : float;
  cwnd_delack : Sim.Series.t;
  cwnd_normal : Sim.Series.t;
}

let run_one ~make_cca ~name ~duration =
  let rate = Sim.Units.mbps 6. in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer:(60 * 1500)
         ~rm:0.12 ~duration
         [
           Sim.Network.flow
             ~ack_policy:(Sim.Network.Delayed { count = 4; timeout = 0.05 })
             (make_cca ());
           Sim.Network.flow (make_cca ());
         ])
  in
  let t0 = duration /. 4. in
  let x1 = Sim.Network.throughput net ~flow:0 ~t0 ~t1:duration in
  let x2 = Sim.Network.throughput net ~flow:1 ~t0 ~t1:duration in
  let flows = Sim.Network.flows net in
  {
    cca_name = name;
    x_delack = x1;
    x_normal = x2;
    ratio = x2 /. x1;
    cwnd_delack = Sim.Flow.cwnd_series flows.(0);
    cwnd_normal = Sim.Flow.cwnd_series flows.(1);
  }

let series ?(quick = false) () =
  let duration = if quick then 60. else 200. in
  [
    run_one ~make_cca:(fun () -> Reno.make ()) ~name:"reno" ~duration;
    run_one ~make_cca:(fun () -> Cubic.make ()) ~name:"cubic" ~duration;
  ]

let run ?quick () =
  let results = series ?quick () in
  List.map
    (fun r ->
      let paper = match r.cca_name with "reno" -> "2.7x" | _ -> "3.2x" in
      Report.row ~id:"F7"
        ~label:(Printf.sprintf "%s, delayed-ACK x4 vs per-packet" r.cca_name)
        ~paper:(Printf.sprintf "bounded unfairness, ratio %s" paper)
        ~measured:(Printf.sprintf "%s vs %s (%.1fx)" (Report.mbps r.x_delack)
             (Report.mbps r.x_normal) r.ratio)
        ~ok:(r.ratio > 1.3 && r.ratio < 8.))
    results
