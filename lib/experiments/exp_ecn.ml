let rate = Sim.Units.mbps 48.
let rm = 0.04

let head_to_head ~make_cca ~ecn ~duration =
  let buffer = Sim.Units.bdp_bytes ~rate ~rtt:rm in
  let ecn_threshold = if ecn then Some (buffer / 4) else None in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ?ecn_threshold
         ~rm ~duration
         [
           Sim.Network.flow ~loss_rate:0.02 (make_cca ());
           Sim.Network.flow (make_cca ());
         ])
  in
  let t0 = duration /. 2. in
  ( Sim.Network.throughput net ~flow:0 ~t0 ~t1:duration,
    Sim.Network.throughput net ~flow:1 ~t0 ~t1:duration,
    Sim.Link.ce_marks (Sim.Network.link net) )

let run ?(quick = false) () =
  let duration = if quick then 30. else 90. in
  let x1_reno, x2_reno, _ =
    head_to_head ~make_cca:(fun () -> Reno.make ()) ~ecn:false ~duration
  in
  let x1_ecn, x2_ecn, marks =
    head_to_head ~make_cca:(fun () -> Ecn_reno.make ()) ~ecn:true ~duration
  in
  let ratio a b = Float.max a b /. Float.max (Float.min a b) 1. in
  [
    Report.row ~id:"E13a" ~label:"reno, 2% non-congestive loss on flow 1"
      ~paper:"loss-based CCAs starve under asymmetric loss (sec. 5.4)"
      ~measured:
        (Printf.sprintf "%s vs %s (ratio %.1f)" (Report.mbps x1_reno)
           (Report.mbps x2_reno) (ratio x1_reno x2_reno))
      ~ok:(ratio x1_reno x2_reno > 3.);
    Report.row ~id:"E13b" ~label:"ecn-reno + marking AQM, same loss"
      ~paper:"conjecture: ECN avoids starvation (sec. 6.4)"
      ~measured:
        (Printf.sprintf "%s vs %s (ratio %.1f, %d CE marks)" (Report.mbps x1_ecn)
           (Report.mbps x2_ecn) (ratio x1_ecn x2_ecn) marks)
        (* The lossy flow still drops 2% of its goodput and takes the odd
           retransmission timeout, so exact equality is not expected — the
           claim is the order-of-magnitude repair vs. plain Reno. *)
      ~ok:
        (ratio x1_ecn x2_ecn < 3.
        && ratio x1_ecn x2_ecn < ratio x1_reno x2_reno /. 3.
        && x1_ecn +. x2_ecn > 0.7 *. rate
        && marks > 0);
  ]
