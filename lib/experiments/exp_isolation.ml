type outcome = {
  fifo_copa : float;
  fifo_blast : float;
  drr_copa : float;
  drr_blast : float;
}

let rate = Sim.Units.mbps 24.
let rm = 0.04

let one ~discipline ~duration =
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~discipline ~rm ~duration
         [
           Sim.Network.flow (Copa.make ());
           (* A 240-packet fixed window never backs off: the BDP is 80
              packets, so it keeps a permanent ~160-packet standing queue
              (~80 ms of delay) in the shared case. *)
           Sim.Network.flow (Const_cwnd.make ~cwnd_packets:240. ());
         ])
  in
  let t0 = duration /. 2. in
  ( Sim.Network.throughput net ~flow:0 ~t0 ~t1:duration,
    Sim.Network.throughput net ~flow:1 ~t0 ~t1:duration )

let measure ?(quick = false) () =
  let duration = if quick then 20. else 40. in
  let fifo_copa, fifo_blast = one ~discipline:Sim.Link.Fifo ~duration in
  let drr_copa, drr_blast =
    one ~discipline:(Sim.Link.Drr { quantum = 1500 }) ~duration
  in
  { fifo_copa; fifo_blast; drr_copa; drr_blast }

let run ?quick () =
  let o = measure ?quick () in
  [
    Report.row ~id:"E15a" ~label:"copa vs unresponsive blaster, shared FIFO"
      ~paper:"delay-based flow reads the blaster's queue as congestion"
      ~measured:
        (Printf.sprintf "copa %s vs blast %s" (Report.mbps o.fifo_copa)
           (Report.mbps o.fifo_blast))
      ~ok:(o.fifo_copa < 0.25 *. rate);
    Report.row ~id:"E15b" ~label:"same flows, DRR per-flow isolation"
      ~paper:"conclusion: stronger isolation sidesteps the e2e dilemma"
      ~measured:
        (Printf.sprintf "copa %s vs blast %s" (Report.mbps o.drr_copa)
           (Report.mbps o.drr_blast))
      ~ok:(o.drr_copa > 0.4 *. rate && o.drr_copa > 2. *. o.fifo_copa);
  ]
