(** Figures 2 and 3: rate-delay maps.

    Figure 2 is the analytic band of a hypothetical delay-convergent CCA
    (we use the Vegas family).  Figure 3 plots the maps of Vegas/FAST,
    Copa, BBR (both modes) and PCC Vivace for Rm = 100 ms over
    0.1..100 Mbit/s.  The check compares analytic bands against simulated
    equilibria at spot rates: every empirical band must fall inside (or
    within a small tolerance of) the analytic one, and delta(C) must
    shrink or stay bounded as C grows — the property Theorem 1 exploits. *)

val run : ?quick:bool -> unit -> Report.row list

val analytic_series :
  rm:float -> rates:float list -> (string * (float * Core.Rate_delay.band) list) list
(** The Figure 3 curves: (cca name, [(rate, band); ...]). *)
