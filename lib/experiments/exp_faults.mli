(** E18: fault-scenario matrix — CCA recovery under injected faults.

    Runs each CCA through the {!Sim.Fault} scenario matrix (link
    blackout, capacity renegotiation, Gilbert-Elliott bursty loss, ACK
    blackhole, mid-run buffer shrink) with the runtime invariant monitor
    enabled, and reports how long the flow takes to resume delivering
    after the fault clears, the post/pre-fault throughput ratio, and the
    invariant-violation count (which must be zero: faults stress the
    protocols, never the simulator's own conservation laws). *)

type outcome = {
  cca : string;
  scenario : string;
  fault_window : float * float;  (** [(start, end)] of the injected fault *)
  pre_rate : float;  (** throughput (bytes/s) before the fault *)
  post_rate : float;  (** throughput after the fault clears *)
  recovery : float option;
      (** seconds after the fault clears until the flow delivers again;
          [None] if it never recovers *)
  violations : int;  (** invariant monitor total (expected 0) *)
  stall_probes : int;  (** forced probes that un-wedged the flow *)
  degraded : int;  (** clamped insane CCA outputs *)
}

val measure : ?quick:bool -> unit -> outcome list
val run : ?quick:bool -> unit -> Report.row list

val plan : quick:bool -> Runner.Job.t list * (bytes list -> Report.row list)
(** One job per (CCA, fault scenario) cell — the natural parallel grain
    of the matrix; the merge yields the same rows as {!run}. *)
