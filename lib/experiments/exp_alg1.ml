let merit_rows () =
  Core.Ambiguity.merit_table ~rm:0. ~rmax:0.1
    ~jitters:[ 0.005; 0.01; 0.02 ]
    ~ss:[ 1.5; 2.; 4. ]

let jitter_d = 0.01

(* Persistent 10 ms of extra one-way delay appearing after the flows have
   measured their floors — the same trick that poisons Copa in E1. *)
let late_jitter arrival = if arrival < 1. then 0. else jitter_d

let head_to_head ~make_cca ~duration =
  let rate = Sim.Units.mbps 20. in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.05 ~duration
         [
           Sim.Network.flow ~jitter:(Sim.Jitter.Trace late_jitter)
             ~jitter_bound:jitter_d (make_cca ());
           Sim.Network.flow (make_cca ());
         ])
  in
  let t0 = duration /. 2. in
  ( Sim.Network.throughput net ~flow:0 ~t0 ~t1:duration,
    Sim.Network.throughput net ~flow:1 ~t0 ~t1:duration )

let alg1_params =
  {
    Alg1.default_params with
    rm = 0.05;
    rmax = 0.1;
    d_jitter = jitter_d;
    s = 2.;
    mu_minus = Sim.Units.kbps 100.;
    a = Sim.Units.kbps 100.;
  }

let run ?(quick = false) () =
  let duration = if quick then 30. else 90. in
  let x1_alg, x2_alg = head_to_head ~make_cca:(fun () -> Alg1.make ~params:alg1_params ()) ~duration in
  let x1_veg, x2_veg = head_to_head ~make_cca:(fun () -> Vegas.make ()) ~duration in
  let ratio a b = Float.max a b /. Float.max (Float.min a b) 1. in
  let paper_point =
    Core.Ambiguity.exponential_range ~rm:0. ~rmax:0.1 ~jitter:0.01 ~s:2.
  in
  let vegas_point = Core.Ambiguity.vegas_range ~rm:0. ~rmax:0.1 ~jitter:0.01 ~s:2. in
  [
    Report.row ~id:"E10" ~label:"figure of merit mu+/mu- (D=10ms, Rmax=100ms, s=2)"
      ~paper:"Vegas family O(Rmax/D) ~ 5; exponential ~ 2^9-2^10"
      ~measured:(Printf.sprintf "vegas %.1f, exponential %.0f" vegas_point paper_point)
      ~ok:(paper_point > 100. *. vegas_point);
    Report.row ~id:"E11a" ~label:"alg1 2-flow, +10ms jitter on flow 1"
      ~paper:"stays s-fair (s=2) by design"
      ~measured:
        (Printf.sprintf "%s vs %s (ratio %.2f)" (Report.mbps x1_alg)
           (Report.mbps x2_alg) (ratio x1_alg x2_alg))
      ~ok:(ratio x1_alg x2_alg < 2.6);
    Report.row ~id:"E11b" ~label:"vegas 2-flow, same +10ms jitter"
      ~paper:"starves (delta_max = 0 << D/2)"
      ~measured:
        (Printf.sprintf "%s vs %s (ratio %.2f)" (Report.mbps x1_veg)
           (Report.mbps x2_veg) (ratio x1_veg x2_veg))
      ~ok:(ratio x1_veg x2_veg > 4.);
  ]
