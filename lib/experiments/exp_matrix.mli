(** E17 (extension): the cross-CCA summary matrix.

    One row per implemented CCA, three scenarios on a 24 Mbit/s, 40 ms
    link:

    - solo: utilization and p95 RTT (the delay/throughput trade the intro
      frames);
    - pair: Jain index of two identical flows (baseline fairness);
    - random jitter: throughput ratio when flow 1's ACK path gains up to
      10 ms of uniform non-congestive delay;
    - adversarial jitter: the same budget spent as the §3 model spends it —
      zero while the flow measures its floor, a persistent +10 ms after.

    The matrix makes two of the paper's points quantitative in one table:
    the delay-convergent family (Vegas, FAST, Copa, LEDBAT) is
    jitter-fragile while the loss-based family is delay-blind; and the
    *pattern* of jitter matters far more than its magnitude — random noise
    leaves min-filters a clean floor sample, the adversarial pattern does
    not (this is exactly why §3 models delay as non-deterministic rather
    than random). *)

type entry = {
  cca_name : string;
  solo_utilization : float;
  solo_p95_rtt : float;
  pair_jain : float;
  jitter_ratio : float;  (** uniform random jitter *)
  adv_ratio : float;  (** adversarial persistent-after-floor jitter *)
}

val measure : ?quick:bool -> unit -> entry list
val run : ?quick:bool -> unit -> Report.row list

val plan : quick:bool -> Runner.Job.t list * (bytes list -> Report.row list)
(** One job per CCA (its four scenarios together); the merge prints the
    matrix table and yields the same rows as {!run}. *)
