(** Figure 7: Reno and Cubic cwnd evolution under asymmetric delayed ACKs.

    Two flows on a 6 Mbit/s, Rm = 120 ms link with a 60-packet buffer;
    flow 1's receiver coalesces up to 4 ACKs, flow 2 ACKs every packet.
    The bursty flow is likelier to overflow the nearly-full drop-tail
    buffer, so it keeps a persistently smaller window — bounded unfairness,
    not starvation (paper: throughput ratios 2.7x Reno, 3.2x Cubic). *)

type result = {
  cca_name : string;
  x_delack : float;  (** bytes/s, the delayed-ACK flow *)
  x_normal : float;
  ratio : float;
  cwnd_delack : Sim.Series.t;  (** the Figure 7 cwnd traces *)
  cwnd_normal : Sim.Series.t;
}

val run_one : make_cca:(unit -> Cca.t) -> name:string -> duration:float -> result

val run : ?quick:bool -> unit -> Report.row list

val series : ?quick:bool -> unit -> result list
(** Full results with cwnd traces, for plotting. *)
