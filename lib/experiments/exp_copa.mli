(** §5.1 Copa experiments (E1, E2 in DESIGN.md).

    A 1 ms minimum-RTT under-estimate — one brief window of jitter-free
    packets on a path that otherwise carries 1 ms of non-congestive delay —
    makes Copa perceive a permanent phantom queue and collapse its rate.

    E1: single flow, 120 Mbit/s, Rm = 60 ms -> order-of-magnitude
    under-utilization (paper: 8 Mbit/s; analytically our Copa lands at
    1/(delta * 1 ms) packets/s ~ 24 Mbit/s with delta = 0.5).
    E2: two flows, only flow 1 poisoned -> ~5-10x starvation
    (paper: 8.8 vs 95 Mbit/s). *)

val poison_trace : float -> float
(** The jitter schedule: 0 during the first RTT-and-a-bit, 1 ms after —
    bounded by D = 1 ms, so it is a legal §3 delay element. *)

val run : ?quick:bool -> unit -> Report.row list
