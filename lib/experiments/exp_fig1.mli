(** Figure 1: ideal-path RTT trajectory of delay-convergent CCAs.

    Runs Copa and Vegas alone on a 48 Mbit/s, Rm = 50 ms ideal path and
    verifies the Definition-1 structure: an initial transient, then all
    samples inside a bounded converged region. *)

val run : ?quick:bool -> unit -> Report.row list

val series : ?quick:bool -> unit -> (string * Sim.Series.t) list
(** Named RTT trajectories for plotting the figure. *)
