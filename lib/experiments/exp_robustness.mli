(** E16 (extension): seed robustness of the headline starvation results.

    Every simulation here is deterministic given its seed, so a skeptic
    should ask whether the §5 ratios are seed-lottery wins.  This
    experiment re-runs the BBR unequal-RTT scenario (E3) and the Copa
    poisoning scenario (E2) across several seeds and reports the range of
    starvation ratios: the shape must hold for every seed, not one. *)

type spread = {
  label : string;
  ratios : float list;  (** one per seed *)
  min_ratio : float;
  max_ratio : float;
}

val run : ?quick:bool -> unit -> Report.row list
val measure : ?quick:bool -> unit -> spread list

val plan : quick:bool -> Runner.Job.t list * (bytes list -> Report.row list)
(** One job per (scenario, seed) pair, so a parallel runner can spread the
    seeds across workers; the merge rebuilds the per-scenario spreads from
    the job payloads in submission order and yields the same rows as
    {!run}. *)
