(** Terminal rendering of figure series.

    Good enough to eyeball the paper's figures without leaving the
    terminal: multiple series share one canvas, each drawn with its own
    marker, with min/max axis labels and a legend. *)

val render :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  (string * (float * float) list) list ->
  string
(** [render series] plots every (name, points) list onto one canvas
    (default 72x20 characters).  Points are scaled to the joint data
    bounds; degenerate ranges (a single x or constant y) are padded.
    Returns the multi-line string; empty series lists yield a stub. *)

val render_series :
  ?width:int -> ?height:int -> ?title:string -> string * Sim.Series.t -> string
(** Convenience wrapper for one recorded {!Sim.Series.t}. *)

val markers : char array
(** Marker characters, cycled across series in order. *)
