(** Paper-vs-measured reporting shared by the CLI, the benchmark harness
    and EXPERIMENTS.md generation. *)

type row = {
  id : string;  (** experiment id from DESIGN.md (E1, F7, ...) *)
  label : string;
  paper : string;  (** what the paper reports *)
  measured : string;
  ok : bool;  (** the qualitative shape holds *)
}

val row : id:string -> label:string -> paper:string -> measured:string -> ok:bool -> row

val print_rows : title:string -> row list -> unit
(** Render an aligned ASCII table on stdout. *)

val print_series :
  title:string -> cols:string list -> float list list -> unit
(** Print a small numeric table (one row per sample) — the "series" behind
    a paper figure. *)

val mbps : float -> string
(** Format bytes/s as "12.3 Mbit/s". *)

val msec : float -> string
(** Format seconds as "12.3 ms". *)

val all_ok : row list -> bool

val to_markdown : title:string -> row list -> string
(** Render rows as a GitHub-flavored markdown table (one section). *)
