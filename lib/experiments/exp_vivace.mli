(** §5.3 PCC Vivace ACK-aggregation experiment (E5).

    Two Vivace flows share 120 Mbit/s with Rm = 60 ms; flow 1's ACKs are
    released only at integer multiples of 60 ms (link-layer aggregation),
    destroying its sub-quantum delay-gradient and throughput measurements.
    Paper: 9.9 vs 99.4 Mbit/s. *)

val run : ?quick:bool -> unit -> Report.row list
