open Validate

(* One report row per oracle family; every individual verdict is printed
   so a CI failure is diagnosable from the log without rerunning. *)
let family ~id ~label ~paper verdicts =
  List.iter (fun v -> print_endline (Oracle.to_string v)) verdicts;
  let n = List.length verdicts in
  let bad = List.length (Oracle.failures verdicts) in
  Report.row ~id ~label ~paper
    ~measured:(Printf.sprintf "%d/%d verdicts hold" (n - bad) n)
    ~ok:(bad = 0)

(* A deliberately busy scenario for the end-state conservation audit:
   warm-started queue, mixed CCAs, random loss, a blackout and a rate
   step — every counter the conservation chain ties together is
   exercised. *)
let conservation_scenario () =
  let open Sim in
  let cfg =
    Network.config
      ~rate:(Link.Constant (Units.mbps 12.))
      ~rm:(Units.ms 40.) ~seed:23 ~duration:12. ~buffer:90_000
      ~initial_queue_bytes:40_000 ~monitor_period:0.05
      ~faults:
        (Fault.plan
           [
             Fault.Link_blackout { t0 = 3.0; t1 = 3.4 };
             Fault.Rate_step { at = 6.0; rate = Units.mbps 8. };
           ])
      [
        Network.flow (Reno.make ());
        Network.flow ~start_time:1.0 ~loss_rate:0.005 (Cubic.make ());
        Network.flow ~start_time:2.0
          ~ack_policy:(Network.Aggregate { period = 0.004 })
          (Vegas.make ());
      ]
  in
  Conservation.verdicts ~scenario:"mixed-cca-faulted" (Network.run_config cfg)

(* V6: the fluid backend cross-validated against the packet simulator
   (equilibrium ratio + standing queue inside the z=5 bands for
   Reno/Copa/Vegas, fluid byte conservation) plus the hybrid seam
   checks (chained conservation, min-RTT survival through the
   threshold scenario). *)
let fluid_family ~quick =
  family ~id:"V6" ~label:"fluid backend vs packet + hybrid seams"
    ~paper:"z=5 agreement bands; byte conservation across seams"
    (Fluid_oracle.all ~quick ())

let run ~quick ?(backend = Fluid.Backend.Packet) () =
  match backend with
  | Fluid.Backend.Fluid | Fluid.Backend.Hybrid ->
      (* Under a non-packet backend the experiment *is* the
         cross-validation: run the fluid/hybrid oracle families alone
         (this is the CI backend-agreement entry point, so it must stay
         cheap enough for the determinism job). *)
      [ fluid_family ~quick ]
  | Fluid.Backend.Packet ->
  let queueing_spec base =
    if quick then { base with Queueing.horizon = 90.; warmup = 10. } else base
  in
  let rng label = Sim.Rng.stream (Sim.Rng.create ~seed:7) ~label in
  let mm1 =
    Queueing.verdicts ~rng:(rng "mm1") (queueing_spec Queueing.mm1_default)
  in
  let md1 =
    Queueing.verdicts ~rng:(rng "md1") (queueing_spec Queueing.md1_default)
  in
  let fuzz_n = if quick then 4 else 12 in
  let fuzz = Fuzz.run ~log:print_endline ~seed:101 ~n:fuzz_n () in
  let fuzz_row =
    Report.row ~id:"V5" ~label:"scenario fuzzing (all oracles per sample)"
      ~paper:"0 violations"
      ~measured:
        (Printf.sprintf "%d scenarios, %d verdicts, %d violations"
           fuzz.Fuzz.samples fuzz.Fuzz.verdicts_checked
           (List.length fuzz.Fuzz.violations))
      ~ok:(fuzz.Fuzz.violations = [])
  in
  [
    family ~id:"V1" ~label:"M/M/1 + M/D/1 vs closed form"
      ~paper:"W, L, rho within z=5 bands" (mm1 @ md1);
    family ~id:"V2" ~label:"byte conservation (link + end-to-end)"
      ~paper:"exact identities" (conservation_scenario ());
    family ~id:"V3" ~label:"CCA equilibria (Reno law, Vegas/Copa queues)"
      ~paper:"analytic equilibrium bands" (Equilibrium.all ());
    family ~id:"V4" ~label:"metamorphic properties (6-scenario matrix)"
      ~paper:"rescale exact; shift/permute/jitter bands" (Metamorphic.all ());
    fuzz_row;
    fluid_family ~quick;
  ]
