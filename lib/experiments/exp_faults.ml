type outcome = {
  cca : string;
  scenario : string;
  fault_window : float * float;
  pre_rate : float;
  post_rate : float;
  recovery : float option;
  violations : int;
  stall_probes : int;
  degraded : int;
}

let rate = Sim.Units.mbps 12.
let rm = 0.04
let buffer = 64 * 1500

(* Each scenario is a fault plan plus the window the fault occupies,
   both scaled to the run duration. *)
let scenarios ~duration =
  let f0 = 0.4 *. duration in
  [
    ( "blackout",
      (f0, f0 +. (0.15 *. duration)),
      [ Sim.Fault.Link_blackout { t0 = f0; t1 = f0 +. (0.15 *. duration) } ] );
    ( "rate-step",
      (f0, 0.7 *. duration),
      [
        Sim.Fault.Rate_step { at = f0; rate = rate /. 4. };
        Sim.Fault.Rate_step { at = 0.7 *. duration; rate };
      ] );
    ( "bursty-loss",
      (f0, 0.7 *. duration),
      [
        Sim.Fault.Bursty_loss
          {
            flow = 0;
            t0 = f0;
            t1 = 0.7 *. duration;
            p_enter = 0.05;
            p_exit = 0.25;
            loss_good = 0.;
            loss_bad = 0.5;
          };
      ] );
    ( "ack-blackhole",
      (f0, f0 +. (0.1 *. duration)),
      [ Sim.Fault.Ack_blackhole { flow = 0; t0 = f0; t1 = f0 +. (0.1 *. duration) } ] );
    ( "buffer-shrink",
      (f0, 0.7 *. duration),
      [
        Sim.Fault.Buffer_resize { at = f0; buffer = Some (4 * 1500) };
        Sim.Fault.Buffer_resize { at = 0.7 *. duration; buffer = Some buffer };
      ] );
  ]

let ccas ~quick =
  let base = [ ("reno", fun () -> Reno.make ()); ("bbr", fun () -> Bbr.make ()) ] in
  if quick then base else base @ [ ("cubic", fun () -> Cubic.make ()) ]

(* First delivery after the fault clears, as a delay from [fault_end]. *)
let recovery_time flow ~fault_end =
  let s = Sim.Flow.delivered_series flow in
  let times = Sim.Series.times s and values = Sim.Series.values s in
  let base =
    match Sim.Series.value_at s fault_end with Some v -> v | None -> 0.
  in
  let n = Array.length times in
  let rec find i =
    if i >= n then None
    else if times.(i) > fault_end && values.(i) > base +. 0.5 then
      Some (times.(i) -. fault_end)
    else find (i + 1)
  in
  find 0

let run_one ~duration ~cca_name ~mk ~scenario ~window ~events =
  let f0, f1 = window in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm ~seed:7
         ~faults:(Sim.Fault.plan events) ~monitor_period:0.05 ~duration
         [ Sim.Network.flow (mk ()) ])
  in
  let flow = (Sim.Network.flows net).(0) in
  let warmup = 0.1 *. duration in
  let grace = 0.05 *. duration in
  {
    cca = cca_name;
    scenario;
    fault_window = window;
    pre_rate = Sim.Flow.throughput flow ~t0:warmup ~t1:f0;
    post_rate = Sim.Flow.throughput flow ~t0:(f1 +. grace) ~t1:duration;
    recovery = recovery_time flow ~fault_end:f1;
    violations =
      (match Sim.Network.invariant net with
      | Some inv -> Sim.Invariant.count inv
      | None -> 0);
    stall_probes = Sim.Flow.stall_probes flow;
    degraded = Sim.Flow.degraded_count flow;
  }

let duration_of ~quick = if quick then 10. else 30.

let measure ?(quick = false) () =
  let duration = duration_of ~quick in
  List.concat_map
    (fun (cca_name, mk) ->
      List.map
        (fun (scenario, window, events) ->
          run_one ~duration ~cca_name ~mk ~scenario ~window ~events)
        (scenarios ~duration))
    (ccas ~quick)

let rows_of_outcomes outcomes =
  List.map
    (fun o ->
      let ratio = o.post_rate /. Float.max o.pre_rate 1. in
      let recovered = o.recovery <> None in
      Report.row
        ~id:"E18"
        ~label:(Printf.sprintf "%s / %s" o.cca o.scenario)
        ~paper:"recovers, 0 violations"
        ~measured:
          (Printf.sprintf "rec %s, post/pre %.2f, viol %d%s"
             (match o.recovery with
             | Some r -> Printf.sprintf "%.2f s" r
             | None -> "never")
             ratio o.violations
             (if o.stall_probes > 0 then
                Printf.sprintf ", probes %d" o.stall_probes
              else ""))
        ~ok:(o.violations = 0 && recovered && ratio > 0.15))
    outcomes

let run ?quick () = rows_of_outcomes (measure ?quick ())

let plan ~quick =
  let duration = duration_of ~quick in
  let jobs =
    List.concat_map
      (fun (cca_name, mk) ->
        List.map
          (fun (scenario, window, events) ->
            Runner.Job.create
              ~key:(Printf.sprintf "faults/%s/%s/dur=%g" cca_name scenario duration)
              (fun () -> run_one ~duration ~cca_name ~mk ~scenario ~window ~events))
          (scenarios ~duration))
      (ccas ~quick)
  in
  let merge payloads =
    rows_of_outcomes
      (List.map (fun b -> (Runner.Job.decode b : outcome)) payloads)
  in
  (jobs, merge)
