type row = {
  id : string;
  label : string;
  paper : string;
  measured : string;
  ok : bool;
}

let row ~id ~label ~paper ~measured ~ok = { id; label; paper; measured; ok }

let pad s n = if String.length s >= n then s else s ^ String.make (n - String.length s) ' '

let print_rows ~title rows =
  let w_id = List.fold_left (fun a r -> max a (String.length r.id)) 2 rows in
  let w_label = List.fold_left (fun a r -> max a (String.length r.label)) 5 rows in
  let w_paper = List.fold_left (fun a r -> max a (String.length r.paper)) 5 rows in
  let w_meas = List.fold_left (fun a r -> max a (String.length r.measured)) 8 rows in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s  %s  %s  %s  %s\n" (pad "id" w_id) (pad "case" w_label)
    (pad "paper" w_paper) (pad "measured" w_meas) "ok";
  List.iter
    (fun r ->
      Printf.printf "%s  %s  %s  %s  %s\n" (pad r.id w_id) (pad r.label w_label)
        (pad r.paper w_paper) (pad r.measured w_meas)
        (if r.ok then "yes" else "NO"))
    rows

let print_series ~title ~cols data =
  Printf.printf "\n-- %s --\n" title;
  Printf.printf "%s\n" (String.concat "\t" cols);
  List.iter
    (fun values ->
      Printf.printf "%s\n" (String.concat "\t" (List.map (Printf.sprintf "%.6g") values)))
    data

let to_markdown ~title rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "## %s\n\n" title);
  Buffer.add_string buf "| id | case | paper | measured | shape holds |\n";
  Buffer.add_string buf "|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %s | %s | %s |\n" r.id r.label r.paper
           r.measured
           (if r.ok then "yes" else "**NO**")))
    rows;
  Buffer.contents buf

let mbps x = Printf.sprintf "%.2f Mbit/s" (Sim.Units.to_mbps x)
let msec x = Printf.sprintf "%.2f ms" (Sim.Units.to_ms x)
let all_ok rows = List.for_all (fun r -> r.ok) rows
