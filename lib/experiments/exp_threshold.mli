(** E14 (extension): the starvation phase diagram.

    Theorem 1 says starvation becomes *constructible* once the jitter
    bound D exceeds 2 delta_max.  This experiment traces that boundary
    empirically with a fixed adversary: two Copa flows share a link, and
    flow 1's path gains a persistent +D of non-congestive delay after the
    flows have measured their floors (the E1/E11 jitter pattern).  Sweeping
    D from a fraction of delta_max to many multiples produces the phase
    plot: near-fair below the threshold, unfairness growing rapidly past
    it.

    Copa is used because its delta_max is analytically known:
    delta(C) = 4 mss / C (§2.2), so the sweep can be expressed in units of
    delta_max. *)

type point = {
  jitter : float;  (** the D applied, seconds *)
  jitter_over_delta : float;  (** D / delta_max *)
  ratio : float;  (** measured throughput ratio *)
}

val sweep : ?quick:bool -> ?backend:Fluid.Backend.t -> unit -> point list
(** The phase curve.  Deterministic (seeded).  [backend] (default
    [Packet]) selects the simulation substrate: [Fluid] traces the same
    adversary through the discretised fluid laws, [Hybrid] runs packet
    windows around the t=0 start and t=1 jitter activation with fluid
    in between. *)

val run : ?quick:bool -> ?backend:Fluid.Backend.t -> unit -> Report.row list
(** Checks: the curve is near-fair at D << delta_max and unfair at
    D >> 2 delta_max, i.e. it crosses the paper's boundary.  The same
    acceptance shape must hold on every backend. *)

val plan :
  quick:bool ->
  backend:Fluid.Backend.t ->
  Runner.Job.t list * (bytes list -> Report.row list)
(** One job per sweep point (each point is an independent simulation);
    job keys embed the backend.  The merge reassembles the curve and
    yields the same rows as {!run}. *)
