type entry = {
  cca_name : string;
  solo_utilization : float;
  solo_p95_rtt : float;
  pair_jain : float;
  jitter_ratio : float;
  adv_ratio : float;
}

let rate = Sim.Units.mbps 24.
let rm = 0.04

let ccas () : (string * (unit -> Cca.t)) list =
  [
    ("vegas", fun () -> Vegas.make ());
    ("fast", fun () -> Fast_tcp.make ());
    ("copa", fun () -> Copa.make ());
    ("ledbat", fun () -> Ledbat.make ());
    ("bbr", fun () -> Bbr.make ());
    ("vivace", fun () -> Pcc_vivace.make ());
    ("reno", fun () -> Reno.make ());
    ("cubic", fun () -> Cubic.make ());
    ( "alg1",
      fun () ->
        Alg1.make
          ~params:{ Alg1.default_params with rm; rmax = 0.1; d_jitter = 0.01 } () );
  ]

(* 1.5 BDP of buffer: enough to show the loss-based family's standing
   bloat, small enough to avoid drop-tail lockout artifacts (the paper's
   Figure 7 uses a comparable 1-BDP scale). *)
let buffer = 3 * Sim.Units.bdp_bytes ~rate ~rtt:rm / 2

let solo ~make_cca ~duration =
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm ~duration
         [ Sim.Network.flow (make_cca ()) ])
  in
  let u = Sim.Network.utilization net () in
  let rtts =
    Sim.Series.window_values
      (Sim.Flow.rtt_series (Sim.Network.flows net).(0))
      ~t0:(duration /. 2.) ~t1:duration
  in
  let p95 = if Array.length rtts = 0 then nan else Sim.Stats.percentile rtts 95. in
  (u, p95)

let pair ~make_cca ~duration =
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm ~duration
         [ Sim.Network.flow (make_cca ()); Sim.Network.flow (make_cca ()) ])
  in
  (Core.Fairness.of_network net ()).Core.Fairness.jain

let jitter_duel ~policy ~make_cca ~duration =
  let d = 0.01 in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm ~duration
         [
           Sim.Network.flow ~jitter:(policy d) ~jitter_bound:d (make_cca ());
           Sim.Network.flow (make_cca ());
         ])
  in
  let t0 = duration /. 2. in
  let x1 = Sim.Network.throughput net ~flow:0 ~t0 ~t1:duration in
  let x2 = Sim.Network.throughput net ~flow:1 ~t0 ~t1:duration in
  Float.max x1 x2 /. Float.max (Float.min x1 x2) 1.

let random_policy d = Sim.Jitter.Uniform { lo = 0.; hi = d }
let adversarial_policy d = Sim.Jitter.Trace (fun t -> if t < 1. then 0. else d)

let entry_of ~cca_name ~make_cca ~duration =
  let solo_utilization, solo_p95_rtt = solo ~make_cca ~duration in
  {
    cca_name;
    solo_utilization;
    solo_p95_rtt;
    pair_jain = pair ~make_cca ~duration;
    jitter_ratio = jitter_duel ~policy:random_policy ~make_cca ~duration;
    adv_ratio = jitter_duel ~policy:adversarial_policy ~make_cca ~duration;
  }

let duration_of ~quick = if quick then 20. else 40.

let measure ?(quick = false) () =
  let duration = duration_of ~quick in
  List.map
    (fun (cca_name, make_cca) -> entry_of ~cca_name ~make_cca ~duration)
    (ccas ())

let rows_of_entries entries =
  Printf.printf "\n-- E17 matrix (link 24 Mbit/s, Rm 40 ms, jitter bound 10 ms) --\n";
  Printf.printf "%-8s %6s %8s %6s %12s %12s\n" "cca" "util" "p95_ms" "jain"
    "random_jit" "adversarial";
  List.iter
    (fun e ->
      Printf.printf "%-8s %6.2f %8.1f %6.3f %12.2f %12.2f\n" e.cca_name
        e.solo_utilization (Sim.Units.to_ms e.solo_p95_rtt) e.pair_jain
        e.jitter_ratio e.adv_ratio)
    entries;
  let find n = List.find (fun e -> e.cca_name = n) entries in
  let solo_ok = List.for_all (fun e -> e.solo_utilization > 0.5) entries in
  let delay_family = [ "vegas"; "fast"; "copa"; "ledbat" ] in
  let fragile =
    List.filter (fun n -> (find n).adv_ratio > 1.8) delay_family
  in
  [
    Report.row ~id:"E17a" ~label:"every CCA fills a clean link"
      ~paper:"f-efficiency on ideal paths"
      ~measured:
        (String.concat ", "
           (List.map (fun e -> Printf.sprintf "%s %.2f" e.cca_name e.solo_utilization)
              entries))
      ~ok:solo_ok;
    Report.row ~id:"E17b" ~label:"10 ms jitter splits the families"
      ~paper:"delay-convergent CCAs are jitter-fragile; loss-based are delay-blind"
      ~measured:
        (Printf.sprintf "fragile under adversarial jitter: {%s}; reno %.1f, cubic %.1f"
           (String.concat ", " fragile)
           (find "reno").adv_ratio (find "cubic").adv_ratio)
      ~ok:
        (List.length fragile >= 3
        && (find "reno").adv_ratio < 2.5
        && (find "cubic").adv_ratio < 2.5);
    (let adversarial_worse =
       List.filter (fun n -> (find n).adv_ratio > (find n).jitter_ratio) delay_family
     in
     Report.row ~id:"E17c" ~label:"jitter pattern matters more than magnitude"
       ~paper:"sec. 3: delay must be modeled non-deterministic, not random"
       ~measured:
         (Printf.sprintf "adversarial >= random for {%s} at equal 10 ms budget"
            (String.concat ", " adversarial_worse))
       ~ok:(List.length adversarial_worse >= 3));
  ]

let run ?(quick = false) () = rows_of_entries (measure ~quick ())

let plan ~quick =
  let duration = duration_of ~quick in
  let jobs =
    List.map
      (fun (cca_name, make_cca) ->
        Runner.Job.create
          ~key:(Printf.sprintf "matrix/%s/dur=%g" cca_name duration)
          (fun () -> entry_of ~cca_name ~make_cca ~duration))
      (ccas ())
  in
  let merge payloads =
    rows_of_entries (List.map (fun b -> (Runner.Job.decode b : entry)) payloads)
  in
  (jobs, merge)
