type point = {
  jitter : float;
  jitter_over_delta : float;
  ratio : float;
}

let rate = Sim.Units.mbps 24.
let rm = 0.04

(* Each flow's fair share is rate/2; Copa's equilibrium oscillation at that
   share (paper §2.2: 4 alpha / C) is the natural unit for D. *)
let delta_max = 4. *. 1500. /. (rate /. 2.)

let ratio_of x1 x2 = Float.max x1 x2 /. Float.max (Float.min x1 x2) 1.
let late_jitter jitter_d t = if t < 1. then 0. else jitter_d

let measure_ratio ~jitter_d ~duration =
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm ~duration
         [
           Sim.Network.flow
             ~jitter:(Sim.Jitter.Trace (late_jitter jitter_d))
             ~jitter_bound:jitter_d (Copa.make ());
           Sim.Network.flow (Copa.make ());
         ])
  in
  let t0 = duration /. 2. in
  ratio_of
    (Sim.Network.throughput net ~flow:0 ~t0 ~t1:duration)
    (Sim.Network.throughput net ~flow:1 ~t0 ~t1:duration)

(* Same scenario on the fluid backend: the poisoned flow's jitter trace
   feeds the law's min-delay estimate exactly as the ACK path feeds
   Copa's min-RTT window.  The ratio is over counted bytes in the same
   half-open measurement window (ratios are scale-free, so bytes vs
   bytes/sec does not matter). *)
let measure_ratio_fluid ~jitter_d ~duration =
  let law = Ccac.Model.copa_fluid () in
  let eng =
    Fluid.Engine.run_config
      (Fluid.Engine.config ~rate ~rm ~duration ~measure_from:(duration /. 2.)
         [
           Fluid.Engine.flow ~jitter:(late_jitter jitter_d) law;
           Fluid.Engine.flow law;
         ])
  in
  ratio_of (Fluid.Engine.counted_bytes eng 0) (Fluid.Engine.counted_bytes eng 1)

(* Hybrid: packet-level inside a window after t=0 (flow start) and t=1
   (jitter activation — the only discontinuities this scenario has),
   fluid in between and after.  The starvation verdict depends on the
   poisoned min-RTT surviving both seam directions. *)
let measure_ratio_hybrid ~jitter_d ~duration =
  let copa_at ~cwnd =
    Copa.make
      ~params:{ Copa.default_params with init_cwnd_packets = cwnd /. 1500. }
      ()
  in
  let r =
    Fluid.Hybrid.run
      (Fluid.Hybrid.config ~rate ~rm ~duration ~measure_from:(duration /. 2.)
         ~events:[ 1.0 ]
         [
           Fluid.Hybrid.flow
             ~jitter:(late_jitter jitter_d)
             ~jitter_bound:jitter_d ~packet_cca:copa_at
             (Ccac.Model.copa_fluid ());
           Fluid.Hybrid.flow ~packet_cca:copa_at (Ccac.Model.copa_fluid ());
         ])
  in
  ratio_of r.Fluid.Hybrid.counted.(0) r.Fluid.Hybrid.counted.(1)

let params ~quick =
  ((if quick then [ 0.25; 1.; 4.; 8. ] else [ 0.25; 0.5; 1.; 2.; 3.; 4.; 6.; 8. ]),
   if quick then 20. else 40.)

let point_at ?(backend = Fluid.Backend.Packet) ~m ~duration () =
  let jitter_d = m *. delta_max in
  let measure =
    match backend with
    | Fluid.Backend.Packet -> measure_ratio
    | Fluid.Backend.Fluid -> measure_ratio_fluid
    | Fluid.Backend.Hybrid -> measure_ratio_hybrid
  in
  {
    jitter = jitter_d;
    jitter_over_delta = m;
    ratio = measure ~jitter_d ~duration;
  }

let sweep ?(quick = false) ?backend () =
  let multipliers, duration = params ~quick in
  List.map (fun m -> point_at ?backend ~m ~duration ()) multipliers

let rows_of_points ?(backend = Fluid.Backend.Packet) points =
  let at m =
    match List.find_opt (fun p -> Sim.Units.feq p.jitter_over_delta m) points with
    | Some p -> p.ratio
    | None -> nan
  in
  let low = at 0.25 and high = at 8. in
  let curve =
    String.concat ", "
      (List.map
         (fun p -> Printf.sprintf "D=%.1f*delta:%.1f" p.jitter_over_delta p.ratio)
         points)
  in
  let label =
    match backend with
    | Fluid.Backend.Packet ->
        "starvation ratio vs jitter (copa, D in units of delta_max)"
    | b ->
        Printf.sprintf
          "starvation ratio vs jitter (copa, D in units of delta_max, %s \
           backend)"
          (Fluid.Backend.to_string b)
  in
  [
    Report.row ~id:"E14" ~label
      ~paper:"Theorem 1 boundary: starvation constructible once D > 2 delta_max"
      ~measured:curve
      ~ok:(low < 2. && high > 4. && high > 2. *. low);
  ]

let run ?(quick = false) ?backend () =
  rows_of_points ?backend (sweep ~quick ?backend ())

let plan ~quick ~backend =
  let multipliers, duration = params ~quick in
  let jobs =
    List.map
      (fun m ->
        Runner.Job.create
          ~key:
            (Printf.sprintf "threshold/copa/m=%g/dur=%g/backend=%s" m duration
               (Fluid.Backend.to_string backend))
          (fun () -> point_at ~backend ~m ~duration ()))
      multipliers
  in
  let merge payloads =
    rows_of_points ~backend
      (List.map (fun b -> (Runner.Job.decode b : point)) payloads)
  in
  (jobs, merge)
