type point = {
  jitter : float;
  jitter_over_delta : float;
  ratio : float;
}

let rate = Sim.Units.mbps 24.
let rm = 0.04

(* Each flow's fair share is rate/2; Copa's equilibrium oscillation at that
   share (paper §2.2: 4 alpha / C) is the natural unit for D. *)
let delta_max = 4. *. 1500. /. (rate /. 2.)

let measure_ratio ~jitter_d ~duration =
  let late_jitter t = if t < 1. then 0. else jitter_d in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm ~duration
         [
           Sim.Network.flow
             ~jitter:(Sim.Jitter.Trace late_jitter)
             ~jitter_bound:jitter_d (Copa.make ());
           Sim.Network.flow (Copa.make ());
         ])
  in
  let t0 = duration /. 2. in
  let x1 = Sim.Network.throughput net ~flow:0 ~t0 ~t1:duration in
  let x2 = Sim.Network.throughput net ~flow:1 ~t0 ~t1:duration in
  Float.max x1 x2 /. Float.max (Float.min x1 x2) 1.

let params ~quick =
  ((if quick then [ 0.25; 1.; 4.; 8. ] else [ 0.25; 0.5; 1.; 2.; 3.; 4.; 6.; 8. ]),
   if quick then 20. else 40.)

let point_at ~m ~duration =
  let jitter_d = m *. delta_max in
  {
    jitter = jitter_d;
    jitter_over_delta = m;
    ratio = measure_ratio ~jitter_d ~duration;
  }

let sweep ?(quick = false) () =
  let multipliers, duration = params ~quick in
  List.map (fun m -> point_at ~m ~duration) multipliers

let rows_of_points points =
  let at m =
    match List.find_opt (fun p -> Sim.Units.feq p.jitter_over_delta m) points with
    | Some p -> p.ratio
    | None -> nan
  in
  let low = at 0.25 and high = at 8. in
  let curve =
    String.concat ", "
      (List.map
         (fun p -> Printf.sprintf "D=%.1f*delta:%.1f" p.jitter_over_delta p.ratio)
         points)
  in
  [
    Report.row ~id:"E14" ~label:"starvation ratio vs jitter (copa, D in units of delta_max)"
      ~paper:"Theorem 1 boundary: starvation constructible once D > 2 delta_max"
      ~measured:curve
      ~ok:(low < 2. && high > 4. && high > 2. *. low);
  ]

let run ?(quick = false) () = rows_of_points (sweep ~quick ())

let plan ~quick =
  let multipliers, duration = params ~quick in
  let jobs =
    List.map
      (fun m ->
        Runner.Job.create
          ~key:(Printf.sprintf "threshold/copa/m=%g/dur=%g" m duration)
          (fun () -> point_at ~m ~duration))
      multipliers
  in
  let merge payloads =
    rows_of_points (List.map (fun b -> (Runner.Job.decode b : point)) payloads)
  in
  (jobs, merge)
