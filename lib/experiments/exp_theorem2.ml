let run ?(quick = false) () =
  let duration = if quick then 15. else 40. in
  (* E8: Theorem 2 under-utilization sweep. *)
  let t2 =
    Core.Theorem2.run
      ~make_cca:(fun () -> Vegas.make ())
      ~rate:(Sim.Units.mbps 4.) ~rm:0.04
      ~multipliers:(if quick then [ 10.; 100. ] else [ 10.; 100.; 1000. ])
      ~duration ()
  in
  let utils = List.map (fun p -> p.Core.Theorem2.utilization) t2.Core.Theorem2.points in
  let decreasing =
    let rec chk = function
      | a :: (b :: _ as rest) -> a > b && chk rest
      | _ -> true
    in
    chk utils
  in
  let last_util = List.nth utils (List.length utils - 1) in
  (* Theorem 2 is a statement about the converged regime; startup spikes
     on the fast links are reported separately. *)
  let violations =
    List.fold_left (fun a p -> a + p.Core.Theorem2.settled_violations) 0
      t2.Core.Theorem2.points
  in
  (* E9: Theorem 3 strong-model iteration on Algorithm 1. *)
  let alg1_params =
    (* Gentle AIMD constants: a large additive step makes Alg1's control
       loop overshoot badly at megabit rates, smearing the per-trace
       throughputs the iteration compares. *)
    { Alg1.default_params with rm = 0.02; rmax = 0.06; d_jitter = 0.01;
      a = Sim.Units.mbps 0.02; b = 0.95 }
  in
  let t3 =
    Core.Theorem3.run
      ~make_cca:(fun () -> Alg1.make ~params:alg1_params ())
      ~lambda:(Sim.Units.mbps 1.) ~rm:0.02 ~big_d:0.01 ~s:1.6
      ~duration:(if quick then 20. else 40.)
      ()
  in
  [
    Report.row ~id:"E8" ~label:"theorem 2: vegas on 10x..1000x faster link"
      ~paper:"utilization -> 0 as C' grows"
      ~measured:
        (Printf.sprintf "utilization %s (violations %d)"
           (String.concat " -> " (List.map (Printf.sprintf "%.3f") utils))
           violations)
      ~ok:(decreasing && last_util < 0.05 && violations = 0);
    (let steps = t3.Core.Theorem3.steps in
     let total =
       match (steps, List.rev steps) with
       | first :: _, last :: _ when first.Core.Theorem3.throughput > 0. ->
           last.Core.Theorem3.throughput /. first.Core.Theorem3.throughput
       | _ -> 0.
     in
     Report.row ~id:"E9" ~label:"theorem 3: strong-model iteration on alg1"
       ~paper:"some consecutive trace pair ratio >= s"
       ~measured:
         (Printf.sprintf "%d traces, best consecutive ratio %.2f (s=%.1f), total %.1fx"
            (List.length steps) t3.Core.Theorem3.ratio t3.Core.Theorem3.target_s total)
       ~ok:(t3.Core.Theorem3.witness <> None && total > 4.));
  ]
