(** E12: bounded model checking in the style of the paper's CCAC usage
    (Appendix C, §5.4, §6.3).

    - AIMD over 10 RTTs, 1 BDP buffer, adversarial victim selection:
      unfairness is bounded (the paper proved no starvation trace exists
      at this length; our exhaustive search reproduces the bound).
    - The same model with injected non-congestive loss: the bound grows
      with the horizon — loss-based CCAs starve under asymmetric loss.
    - Algorithm 1 under the discretized jitter adversary: no trace found
      exceeding its design s or breaking f-efficiency, while a Vegas-like
      curve with the same endpoints is driven past the same s. *)

val run : ?quick:bool -> unit -> Report.row list
