let curves () =
  [
    Core.Rate_delay.vegas Vegas.default_params;
    Core.Rate_delay.fast Fast_tcp.default_params;
    Core.Rate_delay.copa Copa.default_params;
    Core.Rate_delay.bbr_pacing;
    Core.Rate_delay.bbr_cwnd Bbr.default_params;
    Core.Rate_delay.pcc_vivace;
    Core.Rate_delay.ledbat Ledbat.default_params;
  ]

let analytic_series ~rm ~rates =
  List.map
    (fun c ->
      (c.Core.Rate_delay.curve_name, Core.Rate_delay.sweep c ~rates ~rm))
    (curves ())

(* Empirical spot check: simulate the CCA at a rate and compare the
   measured band to the analytic one. *)
let spot ~quick ~rm (curve : Core.Rate_delay.curve) make_cca rate =
  let m =
    Core.Convergence.measure ~make_cca ~rate ~rm
      ~duration:(if quick then 15. else 40.)
      ()
  in
  let band = curve.Core.Rate_delay.band ~rate ~rm in
  let tol = Float.max (0.3 *. (band.Core.Rate_delay.d_max -. band.Core.Rate_delay.d_min)) 0.004 in
  let inside =
    m.Core.Convergence.d_min >= band.Core.Rate_delay.d_min -. tol
    && m.Core.Convergence.d_max <= band.Core.Rate_delay.d_max +. tol
  in
  (m, band, inside)

let run ?(quick = false) () =
  let rm = 0.1 in
  let rate = Sim.Units.mbps 12. in
  let cases =
    [
      (Core.Rate_delay.vegas Vegas.default_params, (fun () -> Vegas.make ()), "vegas");
      (Core.Rate_delay.fast Fast_tcp.default_params, (fun () -> Fast_tcp.make ()), "fast");
      (Core.Rate_delay.copa Copa.default_params, (fun () -> Copa.make ()), "copa");
      (Core.Rate_delay.ledbat Ledbat.default_params, (fun () -> Ledbat.make ()), "ledbat");
    ]
  in
  let spot_rows =
    List.map
      (fun (curve, mk, name) ->
        let m, band, inside = spot ~quick ~rm curve mk rate in
        Report.row ~id:"F3" ~label:(name ^ " empirical vs analytic band @12 Mbit/s")
          ~paper:
            (Printf.sprintf "[%s, %s]" (Report.msec band.Core.Rate_delay.d_min)
               (Report.msec band.Core.Rate_delay.d_max))
          ~measured:
            (Printf.sprintf "[%s, %s]" (Report.msec m.Core.Convergence.d_min)
               (Report.msec m.Core.Convergence.d_max))
          ~ok:inside)
      cases
  in
  (* Structural property behind Theorem 1: delta stays bounded (and the
     bands approach Rm) as C grows, for every analytic curve. *)
  let rates = List.map Sim.Units.mbps [ 0.1; 1.; 10.; 100. ] in
  let shape_rows =
    List.map
      (fun (c : Core.Rate_delay.curve) ->
        let bands = List.map (fun r -> c.band ~rate:r ~rm) rates in
        let widths = List.map Core.Rate_delay.width bands in
        let non_expanding =
          match (widths, List.rev widths) with
          | w0 :: _, wlast :: _ -> wlast <= w0 +. 1e-9
          | _ -> false
        in
        (* Definition 1 bounds d_max only for C above some lambda; use
           lambda = 1 Mbit/s as in the Figure 3 panels. *)
        let d_max_bounded =
          List.for_all2
            (fun r (b : Core.Rate_delay.band) ->
              r < Sim.Units.mbps 1. || b.d_max < 10. *. rm)
            rates bands
        in
        Report.row ~id:"F2/F3" ~label:(c.curve_name ^ " band shape over 0.1..100 Mbit/s")
          ~paper:"delta(C) bounded, d_max(C) bounded above lambda"
          ~measured:
            (Printf.sprintf "delta: %s -> %s"
               (Report.msec (List.hd widths))
               (Report.msec (List.hd (List.rev widths))))
          ~ok:(non_expanding && d_max_bounded))
      (curves ())
  in
  spot_rows @ shape_rows
