let rate = Sim.Units.mbps 120.
let rm = 0.059 (* the path's true floor; +1 ms jitter makes it look like 60 ms *)

let poison_trace arrival = if arrival < 0.065 then 0. else 0.001

let run ?(quick = false) () =
  let duration = if quick then 20. else 60. in
  let t0 = duration /. 6. and t1 = duration in
  let single =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm ~duration
         [
           Sim.Network.flow ~jitter:(Sim.Jitter.Trace poison_trace)
             ~jitter_bound:0.001 (Copa.make ());
         ])
  in
  let x_single = Sim.Network.throughput single ~flow:0 ~t0 ~t1 in
  let two =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm ~duration
         [
           Sim.Network.flow ~jitter:(Sim.Jitter.Trace poison_trace)
             ~jitter_bound:0.001 (Copa.make ());
           Sim.Network.flow ~jitter:(Sim.Jitter.Constant 0.001) ~jitter_bound:0.001
             (Copa.make ());
         ])
  in
  let x1 = Sim.Network.throughput two ~flow:0 ~t0 ~t1 in
  let x2 = Sim.Network.throughput two ~flow:1 ~t0 ~t1 in
  [
    Report.row ~id:"E1" ~label:"copa single, 1ms minRTT error"
      ~paper:"8 Mbit/s of 120 (15x under)"
      ~measured:(Printf.sprintf "%s of 120" (Report.mbps x_single))
      ~ok:(x_single < 0.33 *. rate);
    Report.row ~id:"E2" ~label:"copa 2-flow, flow1 poisoned"
      ~paper:"8.8 vs 95 Mbit/s (~11:1)"
      ~measured:(Printf.sprintf "%s vs %s (%.1f:1)" (Report.mbps x1) (Report.mbps x2)
           (x2 /. x1))
      ~ok:(x2 /. x1 > 3.);
  ]
