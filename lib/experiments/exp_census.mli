(** E19: the starvation census.

    The headline experiments measure two long-lived flows; this one asks
    the population question: across a churning workload of up to one
    million finite flows — Poisson arrivals, Pareto(1.5) sizes — how is
    throughput distributed, and how many flows starve outright?

    One cell per (variant, CCA, ACK-path jitter) triple.  The [std]
    variant offers 70% load against an unbounded buffer; the [heavy]
    variant overdrives a 20-packet buffer at 140% load, so drops — not
    just latecomer disadvantage — shape the distribution.  Each flow's
    rate is its goodput over its own lifetime (start to completion or
    the horizon), so the measure is meaningful for flows that lived only
    a fraction of the run.  Results are reported as a
    {!Sim.Stats.ratio_summary}: finite quantiles of
    [best rate / flow rate] over the non-starved flows plus an explicit
    starved count — never an infinite ratio, so the JSON line printed
    per cell is always parseable.

    This is also the scale exercise for the simulator itself: cells run
    on {!Sim.Population} (slot recycling, columnar CCA state,
    concurrency-bounded memory), the workload DESIGN.md §13 exists for.
    Cell jobs are silent — JSON lines and tables are printed by the
    merge in the parent — so serial, forked and domain-parallel runs
    are byte-identical. *)

type cell = {
  variant : string;  (** ["std"] or ["heavy"] *)
  cca_name : string;
  backend : string;  (** ["packet"], ["fluid"] or ["hybrid"] *)
  jitter_ms : float;
  flows : int;
  completed : int;  (** flows that finished their size before the horizon *)
  summary : Sim.Stats.ratio_summary;
  peak_pending : int;  (** event-queue high-water mark, sampled at spawns *)
  peak_active : int;  (** concurrency high-water mark *)
  slots : int;  (** flow slots ever created — bounded by concurrency *)
  table_capacity : int;  (** rows in the shared flow table *)
  fallbacks : int;  (** delay-line non-monotone escapes; must be 0 *)
}

val run : ?quick:bool -> ?backend:Fluid.Backend.t -> unit -> Report.row list
(** Quick runs 250 flows per cell; full runs 1M per [std] cell and 250k
    per [heavy] cell.  Each cell prints one ["census {...}"] JSON line
    on stdout.  [backend] (default [Packet]) selects the substrate;
    [Fluid] and [Hybrid] both run the {!Fluid.Census} port (the census
    has no event schedule to hand a hybrid switcher), whose per-flow
    law state is admitted and released with the flow — peak concurrent
    state rows take the [slots] column, the packet-only counters report
    zero. *)

val plan :
  quick:bool ->
  backend:Fluid.Backend.t ->
  Runner.Job.t list * (bytes list -> Report.row list)
(** One job per cell, keys embedding the backend; the merge prints the
    JSON lines and yields the same rows as {!run}. *)
