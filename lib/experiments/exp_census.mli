(** E19: the starvation census.

    The headline experiments measure two long-lived flows; this one asks
    the population question: across a churning workload of tens of
    thousands of finite flows — Poisson arrivals, Pareto(1.5) sizes —
    how is throughput distributed, and how many flows starve outright?

    One cell per (CCA, ACK-path jitter) pair.  Each flow's rate is its
    goodput over its own lifetime (start to completion or the horizon),
    so the measure is meaningful for flows that lived only a fraction of
    the run.  Results are reported as a {!Sim.Stats.ratio_summary}: finite
    quantiles of [best rate / flow rate] over the non-starved flows plus
    an explicit starved count — never an infinite ratio, so the JSON
    line each cell prints is always parseable.

    This is also the scale exercise for the simulator itself: the full
    census is 100k flows (4 cells x 25k) through one event queue per
    cell, the workload the timing-wheel scheduler and the flat flow
    table exist for. *)

type cell = {
  cca_name : string;
  jitter_ms : float;
  flows : int;
  completed : int;  (** flows that finished their size before the horizon *)
  summary : Sim.Stats.ratio_summary;
  peak_pending : int;
      (** pending events right after build — with every arrival pre-armed,
          the event queue's population high-water mark *)
}

val run : ?quick:bool -> unit -> Report.row list
(** Quick runs 250 flows per cell; full runs 25k per cell (100k total).
    Each cell prints one ["census {...}"] JSON line on stdout. *)

val plan : quick:bool -> Runner.Job.t list * (bytes list -> Report.row list)
(** One job per cell; the merge yields the same rows as {!run}. *)
