(** §5.4 PCC Allegro random-loss experiments (E6).

    120 Mbit/s, Rm = 40 ms, 1 BDP of buffer.
    - E6a: flow 1 sees 2% random loss, flow 2 none -> unequal congestion
      signals starve flow 1 (paper: 10.3 vs 99.1 Mbit/s).
    - E6b: both see 2% -> fair and efficient (the signal is equal).
    - E6c: a single flow with 2% loss still fills the link (Allegro
      tolerates loss below its 5% threshold).

    E6b converges slowly (the loss-noise-limited gradient the module doc
    of {!Pcc_allegro} describes), so the full run uses a 400 s horizon and
    measures the final quarter. *)

val run : ?quick:bool -> unit -> Report.row list
