let rate = Sim.Units.mbps 120.
let rm = 0.04

let mk seed = Pcc_allegro.make ~params:{ Pcc_allegro.default_params with seed } ()

let run_net ~duration flows =
  let buffer = Sim.Units.bdp_bytes ~rate ~rtt:rm in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm ~duration flows)
  in
  let t0 = 0.75 *. duration in
  Array.init (List.length flows) (fun i ->
      Sim.Network.throughput net ~flow:i ~t0 ~t1:duration)

let run ?(quick = false) () =
  let dur_short = if quick then 30. else 60. in
  let dur_long = if quick then 60. else 400. in
  let asym =
    run_net ~duration:dur_short
      [ Sim.Network.flow ~loss_rate:0.02 (mk 1); Sim.Network.flow (mk 2) ]
  in
  let sym =
    run_net ~duration:dur_long
      [ Sim.Network.flow ~loss_rate:0.02 (mk 1); Sim.Network.flow ~loss_rate:0.02 (mk 2) ]
  in
  (* The single-flow climb out of a noisy Starting exit takes ~40 s. *)
  let single = run_net ~duration:60. [ Sim.Network.flow ~loss_rate:0.02 (mk 1) ] in
  let ratio xs = Sim.Stats.max_min_ratio (Array.to_list xs) in
  [
    Report.row ~id:"E6a" ~label:"allegro, 2% loss on flow 1 only"
      ~paper:"10.3 vs 99.1 Mbit/s (~10:1)"
      ~measured:(Printf.sprintf "%s vs %s (%.1f:1)" (Report.mbps asym.(0))
           (Report.mbps asym.(1)) (asym.(1) /. asym.(0)))
      ~ok:(asym.(1) /. asym.(0) > 1.8);
    Report.row ~id:"E6b" ~label:"allegro, 2% loss on both"
      ~paper:"fair and efficient"
      ~measured:(Printf.sprintf "%s vs %s (ratio %.1f, util %.2f)"
           (Report.mbps sym.(0)) (Report.mbps sym.(1)) (ratio sym)
           ((sym.(0) +. sym.(1)) /. rate))
        (* The fairness gradient is noise-limited; quick runs only check
           efficiency and bounded skew, the full 400 s run checks fairness. *)
      ~ok:
        ((quick || ratio sym < 2.5) && sym.(0) +. sym.(1) > 0.85 *. rate);
    Report.row ~id:"E6c" ~label:"allegro single flow, 2% loss"
      ~paper:"full utilization (tolerates < 5%)"
      ~measured:(Report.mbps single.(0))
      ~ok:(single.(0) > 0.85 *. rate);
  ]
