(** All experiments, keyed by the names the CLI and benchmark harness use.

    Each experiment exposes two ways to execute:

    - [run], the historical in-process entry point (used by tests and the
      per-experiment CLI commands);
    - [plan], which names the experiment's independent simulations as
      {!Runner.Job.t} values plus a merge that rebuilds the report rows
      from the job payloads.  Plans from several experiments can be
      flattened into one {!Runner.Pool.run} call, which is how
      [run_selection] parallelizes and caches whole-suite runs while
      keeping the printed output byte-identical to the serial run. *)

type plan = {
  jobs : Runner.Job.t list;
  merge : bytes list -> Report.row list;
      (** Takes the job payloads in submission order.  May print
          experiment-specific tables (they appear after the jobs' own
          replayed stdout, before the report table). *)
}

type experiment = {
  key : string;  (** CLI name, e.g. "copa" *)
  title : string;
  plan : quick:bool -> backend:Fluid.Backend.t -> plan;
      (** [backend] selects the simulation substrate.  Experiments with a
          fluid/hybrid port embed it in their job keys (a cached packet
          result must never satisfy a fluid request); packet-only
          experiments ignore it and keep backend-free keys, so they cache
          across backend selections. *)
  run : quick:bool -> Report.row list;
}

val all : experiment list

val find : string -> experiment option
(** Looks up [all] plus the hidden [selftest-fail] experiment, whose only
    job raises deliberately — the fixture behind the exit-code tests for
    quarantined jobs. *)

val keys : unit -> string list
(** The public experiment keys, in registry order. *)

val select : string list -> (experiment list, string) result
(** Resolve CLI experiment names ([[]] means all).  The error for an
    unknown key names both the offending keys and every available one —
    the single message all front ends print. *)

val run_selection :
  ?quick:bool ->
  ?backend:Runner.Pool.backend ->
  ?sim_backend:Fluid.Backend.t ->
  ?workers:int ->
  ?cache:Runner.Cache.t ->
  ?timeout:float ->
  ?policy:Runner.Supervise.policy ->
  ?journal:string ->
  ?allow_failures:bool ->
  experiment list ->
  Report.row list * Runner.Pool.stats
(** Run the given experiments through one job pool ([workers] defaults to
    1 = serial in-process), printing each experiment's output and table in
    registry order; returns the concatenated rows and the pool counters.
    Output is byte-identical for any worker count and for cached re-runs.

    [backend] selects how [workers >= 2] are realized (see
    {!Runner.Pool.backend}); [`Domain] runs the plain unsupervised pool
    regardless of [policy]/[journal], since supervision is built on the
    process boundary.  [sim_backend] (default [Packet]) is the simulation
    substrate handed to each experiment's plan — the [repro --backend]
    flag.

    Giving [policy] and/or [journal] routes the matrix through
    {!Runner.Supervise.run}: per-attempt deadlines and heap ceilings,
    retries with backoff, failure records, and journal-based resume
    (jobs journaled done with intact cache entries are replayed, not
    re-executed).  The merge layer needs every payload, so a quarantined
    job still raises — but only after the rest of the matrix completed
    and cached its results, so a subsequent run re-executes only the
    stragglers.  With [allow_failures] a quarantine instead skips the
    whole owning experiment (notice on stderr, no rows) and the run
    completes; the quarantine still shows in the returned stats.
    @raise Runner.Pool.Job_failed if a job raises or keeps crashing
    (unless [allow_failures]). *)

val run_all :
  ?quick:bool ->
  ?workers:int ->
  ?cache:Runner.Cache.t ->
  ?timeout:float ->
  unit ->
  Report.row list * Runner.Pool.stats
(** [run_selection] over every experiment. *)
