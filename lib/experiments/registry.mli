(** All experiments, keyed by the names the CLI and benchmark harness use. *)

type experiment = {
  key : string;  (** CLI name, e.g. "copa" *)
  title : string;
  run : quick:bool -> Report.row list;
}

val all : experiment list

val find : string -> experiment option

val run_all : ?quick:bool -> unit -> Report.row list
(** Run every experiment, printing each table as it completes; returns the
    concatenated rows. *)
