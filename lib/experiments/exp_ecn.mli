(** E13 (extension): explicit signaling avoids starvation (§6.4).

    The paper conjectures that an AQM that marks packets above a queue
    threshold, paired with a CCA that reacts to marks and ignores small
    loss, prevents the starvation that non-congestive loss inflicts on
    loss-based CCAs.  Head-to-head on a 48 Mbit/s, Rm = 40 ms link with
    2% random loss on flow 1's path:

    - plain Reno: flow 1 collapses (loss is its only congestion signal);
    - ECN-Reno on a marking bottleneck: both flows keep their shares,
      because CE marks — which both flows see equally — carry the
      congestion signal and the non-congestive loss is ignored. *)

val run : ?quick:bool -> unit -> Report.row list
