(** E15 (extension): in-network isolation, the conclusion's escape hatch.

    The paper closes by noting that purely end-to-end CCAs may always
    suffer from these problems and that "active queue management, explicit
    congestion signaling, or stronger isolation" may be required.  E13
    covered signaling; this experiment covers isolation.

    An unresponsive 240-packet-window blaster (three bandwidth-delay
    products) shares the bottleneck with a Copa flow.  Under the shared FIFO of the §3 model, the blaster's
    standing queue reads as congestion to Copa, which backs off to a
    trickle.  Under deficit-round-robin per-flow queues, Copa's delay
    signal reflects only its own backlog: it takes its half of the link
    regardless of the blaster. *)

type outcome = {
  fifo_copa : float;  (** Copa's throughput under FIFO, bytes/s *)
  fifo_blast : float;
  drr_copa : float;
  drr_blast : float;
}

val measure : ?quick:bool -> unit -> outcome
val run : ?quick:bool -> unit -> Report.row list
