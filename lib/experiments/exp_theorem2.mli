(** E8 (Theorem 2) and E9 (Theorem 3).

    E8: a Vegas flow's ideal-path delay trajectory on C = 4 Mbit/s fits in
    a small jitter budget, so replaying it on links 10x..1000x faster
    leaves the CCA sending at ~C — utilization falls like 1/multiplier.

    E9: the strong-model iteration d_{n+1} = max(0, d_n - D) applied to
    Algorithm 1 (a delay-bounding CCA): successive traces carry less
    phantom delay, the rate climbs the exponential curve, and some
    consecutive pair of traces differs by more than s — the two-flow
    starvation witness. *)

val run : ?quick:bool -> unit -> Report.row list
