(** §5.2 BBR experiments (E3 cwnd-limited starvation, E4 +alpha ablation).

    E3: two BBR flows with Rm 40 ms and 80 ms share 120 Mbit/s for 60 s
    with a little ACK jitter (the paper relied on natural OS jitter);
    the small-RTT flow starves (paper: 8.3 vs 107 Mbit/s).

    E4: the quanta ablation, run as the paper runs it — on the cwnd-limited
    fixed-point iteration w_i <- 2 Rm C w_i/(w1+w2) + alpha.  With alpha > 0
    a 99:1 split contracts to the unique equal fixed point; with alpha = 0
    every split of 2 C Rm is a fixed point and the starved flow stays
    starved. *)

val run : ?quick:bool -> unit -> Report.row list
