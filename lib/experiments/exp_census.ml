(* The starvation census: a churning population of finite flows per
   (variant, CCA, jitter) cell.  Arrivals are Poisson over the first 60%
   of the horizon, sizes are Pareto(alpha = 1.5) — most flows a few
   segments, a few elephants — and each flow's rate is its goodput over
   its own lifetime.  The cell's verdict is a {!Sim.Stats.ratio_summary}:
   finite throughput-ratio quantiles plus an explicit starved count,
   never an infinite ratio.

   Cells run on {!Sim.Population}: a slot pool sized by peak concurrency
   streams the whole population through recycled flows and columnar
   (arena-row) CCA state, which is what lets the full census put one
   million flows through one machine.  Jobs are silent — each cell's
   JSON line and the report table are printed by the merge in the parent
   — so -j 1, forked and domain-parallel runs are byte-identical. *)

type cell = {
  variant : string; (* "std" | "heavy" *)
  cca_name : string;
  backend : string; (* "packet" | "fluid" | "hybrid" *)
  jitter_ms : float;
  flows : int;
  completed : int;
  summary : Sim.Stats.ratio_summary;
  peak_pending : int;
  peak_active : int;
  slots : int;
  table_capacity : int;
  fallbacks : int;
}

let mss = Cca.default_mss
let rate = Sim.Units.mbps 480.
let rm = 0.02
let arrival_frac = 0.6
let alpha = 1.5
let xm = float_of_int (10 * mss)
let size_cap = 10_000_000
let jitter_d = 0.02

(* Pareto(1.5) mean is 3 xm; the cap only trims the far tail, so this
   closed form is an adequate sizing heuristic, not an identity. *)
let mean_size = alpha /. (alpha -. 1.) *. xm

let duration_for ~load n =
  Float.max 5. (float_of_int n *. mean_size /. (load *. rate *. arrival_frac))

(* The standard census offers 70% load against an unbounded buffer; the
   starvation-heavy variant overdrives a 20-packet buffer at 140% load,
   so drops — not just latecomer disadvantage — shape the distribution. *)
type variant = {
  v_name : string;
  v_load : float;
  v_buffer : int option;
  v_n_full : int;
}

let std = { v_name = "std"; v_load = 0.7; v_buffer = None; v_n_full = 1_000_000 }

let heavy =
  { v_name = "heavy"; v_load = 1.4; v_buffer = Some (20 * mss);
    v_n_full = 250_000 }

let population v ~quick = if quick then 250 else v.v_n_full

(* One arena per cell: every flow incarnation of the cell lives in (and
   returns to) the same flat float rows.  [prev] is always resettable
   here because a cell is single-CCA. *)
let columnar_factory cca_name =
  let recycle i =
    match i.Cca.reset with Some r -> r (); i | None -> assert false
  in
  match cca_name with
  | "copa" ->
      let cols = Columns.create ~nfields:Copa.nfields () in
      fun ~slot:_ ~prev ->
        (match prev with Some i -> recycle i | None -> Copa.make_in cols)
  | "reno" ->
      let cols = Columns.create ~nfields:Reno.nfields () in
      fun ~slot:_ ~prev ->
        (match prev with Some i -> recycle i | None -> Reno.make_in cols)
  | "vegas" ->
      let cols = Columns.create ~nfields:Vegas.nfields () in
      fun ~slot:_ ~prev ->
        (match prev with Some i -> recycle i | None -> Vegas.make_in cols)
  | name -> invalid_arg ("census: no columnar factory for " ^ name)

let fluid_law = function
  | "copa" -> Ccac.Model.copa_fluid ()
  | "reno" -> Ccac.Model.reno_fluid
  | "vegas" -> Ccac.Model.vegas_fluid ()
  | name -> invalid_arg ("census: no fluid law for " ^ name)

let cell_key ~variant ~cca_name ~backend ~jitter_d ~n =
  Printf.sprintf "census/%s/%s/jit=%gms/n=%d/backend=%s" variant.v_name
    cca_name (jitter_d *. 1e3) n
    (Fluid.Backend.to_string backend)

let run_cell_packet ~variant ~cca_name ~backend ~jitter_d ~n ~seed =
  let key = cell_key ~variant ~cca_name ~backend ~jitter_d ~n in
  let cfg =
    {
      Sim.Population.n;
      duration = duration_for ~load:variant.v_load n;
      arrival_frac;
      rate;
      buffer = variant.v_buffer;
      rm;
      mss;
      jitter_d;
      seed;
      key;
      alpha;
      xm;
      size_cap;
    }
  in
  let r = Sim.Population.run ~cca:(columnar_factory cca_name) cfg in
  (* In place: the goodput column is ours and n can be 10^6 — no sorted
     copies. *)
  let summary = Sim.Stats.ratio_summary_in_place r.Sim.Population.goodputs in
  {
    variant = variant.v_name;
    cca_name;
    backend = Fluid.Backend.to_string backend;
    jitter_ms = jitter_d *. 1e3;
    flows = n;
    completed = r.Sim.Population.completed;
    summary;
    peak_pending = r.Sim.Population.peak_pending;
    peak_active = r.Sim.Population.peak_active;
    slots = r.Sim.Population.slots;
    table_capacity = r.Sim.Population.table_capacity;
    fallbacks = r.Sim.Population.fallbacks;
  }

(* The fluid census: same population law (identical labeled Rng streams
   would be ideal, but the fluid census draws its own streams under the
   cell key, so the workload is statistically — not sample-for-sample —
   the same).  Per-flow law state is admitted/released with the flow, so
   peak concurrent state rows play the role the slot pool plays on the
   packet side; the event-queue and flow-table columns have no fluid
   analogue and report as zero. *)
let run_cell_fluid ~variant ~cca_name ~backend ~jitter_d ~n ~seed =
  let key = cell_key ~variant ~cca_name ~backend ~jitter_d ~n in
  let r =
    Fluid.Census.run
      (Fluid.Census.config ~key ~seed ~n
         ~duration:(duration_for ~load:variant.v_load n)
         ~arrival_frac ~rate
         ?buffer:(Option.map float_of_int variant.v_buffer)
         ~rm ~mss:(float_of_int mss) ~jitter_d ~alpha ~xm
         ~size_cap:(float_of_int size_cap) (fluid_law cca_name))
  in
  if r.Fluid.Census.conservation_error > 1. +. (1e-6 *. r.Fluid.Census.offered_bytes)
  then
    failwith
      (Printf.sprintf "census %s: fluid conservation error %.1f B" key
         r.Fluid.Census.conservation_error);
  let summary = Sim.Stats.ratio_summary_in_place r.Fluid.Census.goodputs in
  {
    variant = variant.v_name;
    cca_name;
    backend = Fluid.Backend.to_string backend;
    jitter_ms = jitter_d *. 1e3;
    flows = n;
    completed = r.Fluid.Census.completed;
    summary;
    peak_pending = 0;
    peak_active = r.Fluid.Census.peak_active;
    slots = r.Fluid.Census.peak_active;
    table_capacity = 0;
    fallbacks = 0;
  }

let run_cell ~variant ~cca_name ~backend ~jitter_d ~n ~seed =
  match backend with
  | Fluid.Backend.Packet ->
      run_cell_packet ~variant ~cca_name ~backend ~jitter_d ~n ~seed
  | Fluid.Backend.Fluid | Fluid.Backend.Hybrid ->
      (* The census has no discontinuity schedule to hand a hybrid
         switcher, so both non-packet backends run the pure fluid
         census. *)
      run_cell_fluid ~variant ~cca_name ~backend ~jitter_d ~n ~seed

let cells =
  [
    (std, "copa", 0.);
    (std, "copa", jitter_d);
    (std, "reno", 0.);
    (std, "reno", jitter_d);
    (std, "vegas", 0.);
    (std, "vegas", jitter_d);
    (heavy, "copa", 0.);
    (heavy, "reno", 0.);
  ]

(* One JSON line per cell; every numeric field is finite by construction
   ({!Sim.Stats.ratio_summary} never emits [inf]).  Printed by the merge,
   not the job, so cells can run on the domain pool. *)
let print_cell c =
  Printf.printf
    "census {\"variant\":\"%s\",\"cca\":\"%s\",\"backend\":\"%s\",\
     \"jitter_ms\":%g,\"flows\":%d,\
     \"completed\":%d,\"starved\":%d,\"ratio_p50\":%.6g,\"ratio_p90\":%.6g,\
     \"ratio_p99\":%.6g,\"ratio_max\":%.6g,\"slots\":%d,\"peak_active\":%d}\n"
    c.variant c.cca_name c.backend c.jitter_ms c.flows c.completed
    c.summary.Sim.Stats.starved c.summary.Sim.Stats.p50 c.summary.Sim.Stats.p90
    c.summary.Sim.Stats.p99 c.summary.Sim.Stats.max_ratio c.slots c.peak_active

let rows_of_cells cs =
  List.map
    (fun c ->
      print_cell c;
      let s = c.summary in
      let heavy = c.variant = "heavy" in
      Report.row ~id:"E19"
        ~label:
          (Printf.sprintf "census[%s] %s jitter=%gms (%d flows%s)" c.variant
             c.cca_name c.jitter_ms c.flows
             (if c.backend = "packet" then "" else ", " ^ c.backend))
        ~paper:
          (if heavy then
             "sec. 3.2: under overload with shallow buffers, starvation is \
              the common case, not the tail"
           else
             "sec. 3.2: workloads starve a subset of flows; report the \
              distribution, not a single max/min ratio")
        ~measured:
          (Printf.sprintf
             "completed %d/%d, starved %d, ratio p50/p90/p99 = \
              %.2f/%.2f/%.2f, max %.2f, slots %d, peak events %d"
             c.completed c.flows s.Sim.Stats.starved s.Sim.Stats.p50
             s.Sim.Stats.p90 s.Sim.Stats.p99 s.Sim.Stats.max_ratio c.slots
             c.peak_pending)
        ~ok:
          (s.Sim.Stats.total = c.flows
          && Float.is_finite s.Sim.Stats.p99
          && Float.is_finite s.Sim.Stats.max_ratio
          && c.fallbacks = 0
          && c.slots <= c.flows
          (* The overdriven cell cannot promise completions, only a
             well-formed distribution; the standard cell must drain. *)
          && (heavy || c.completed > c.flows / 2)))
    cs

let run ?(quick = false) ?(backend = Fluid.Backend.Packet) () =
  rows_of_cells
    (List.map
       (fun (variant, cca_name, jitter_d) ->
         run_cell ~variant ~cca_name ~backend ~jitter_d
           ~n:(population variant ~quick)
           ~seed:42)
       cells)

let plan ~quick ~backend =
  let jobs =
    List.map
      (fun (variant, cca_name, jitter_d) ->
        let n = population variant ~quick in
        let key = cell_key ~variant ~cca_name ~backend ~jitter_d ~n in
        Runner.Job.create ~key (fun () ->
            run_cell ~variant ~cca_name ~backend ~jitter_d ~n ~seed:42))
      cells
  in
  let merge payloads =
    rows_of_cells (List.map (fun b -> (Runner.Job.decode b : cell)) payloads)
  in
  (jobs, merge)
