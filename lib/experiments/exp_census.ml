(* The starvation census: a churning population of finite flows per
   (CCA, jitter) cell.  Arrivals are Poisson over the first 60% of the
   horizon, sizes are Pareto(alpha = 1.5) — most flows a few segments,
   a few elephants — and each flow's rate is its goodput over its own
   lifetime.  The cell's verdict is a {!Sim.Stats.ratio_summary}: finite
   throughput-ratio quantiles plus an explicit starved count, never an
   infinite ratio. *)

type cell = {
  cca_name : string;
  jitter_ms : float;
  flows : int;
  completed : int;
  summary : Sim.Stats.ratio_summary;
  peak_pending : int;  (** event-queue high-water mark, sampled at build *)
}

let mss = Cca.default_mss
let rate = Sim.Units.mbps 480.
let rm = 0.02
let load = 0.7
let arrival_frac = 0.6
let alpha = 1.5
let xm = float_of_int (10 * mss)
let size_cap = 10_000_000

(* Pareto(1.5) mean is 3 xm; the cap only trims the far tail, so this
   closed form is an adequate sizing heuristic, not an identity. *)
let mean_size = alpha /. (alpha -. 1.) *. xm

let duration_for n =
  Float.max 5. (float_of_int n *. mean_size /. (load *. rate *. arrival_frac))

let population ~quick = if quick then 250 else 25_000

let cell_specs ~key ~cca_make ~jitter_d ~n ~duration ~seed =
  let master = Sim.Rng.create ~seed in
  let arrivals = Sim.Rng.stream master ~label:(key ^ "/arrivals") in
  let sizes = Sim.Rng.stream master ~label:(key ^ "/sizes") in
  let window = arrival_frac *. duration in
  let mean_gap = window /. float_of_int n in
  let t = ref 0. in
  List.init n (fun _ ->
      t := !t +. Sim.Rng.exponential arrivals ~mean:mean_gap;
      let start_time = Float.min !t window in
      let size =
        min size_cap (int_of_float (Sim.Rng.pareto sizes ~alpha ~xm))
      in
      let jitter, jitter_bound =
        if jitter_d > 0. then
          (Sim.Jitter.Uniform { lo = 0.; hi = jitter_d }, jitter_d)
        else (Sim.Jitter.No_jitter, infinity)
      in
      Sim.Network.flow ~start_time ~jitter ~jitter_bound ~mss
        ~record_series:false ~size_bytes:size (cca_make ()))

let run_cell ~key ~cca_name ~cca_make ~jitter_d ~n ~seed =
  let duration = duration_for n in
  let specs = cell_specs ~key ~cca_make ~jitter_d ~n ~duration ~seed in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm ~seed ~duration specs
  in
  let net = Sim.Network.build cfg in
  let peak_pending = Sim.Event_queue.pending (Sim.Network.event_queue net) in
  let net = Sim.Network.run net in
  let flows = Sim.Network.flows net in
  let completed =
    Array.fold_left (fun acc f -> if Sim.Flow.completed f then acc + 1 else acc)
      0 flows
  in
  let summary = Sim.Stats.ratio_summary (Sim.Network.goodputs net) in
  let c =
    { cca_name; jitter_ms = jitter_d *. 1e3; flows = n; completed; summary;
      peak_pending }
  in
  (* One JSON line per cell; every numeric field is finite by
     construction ({!Sim.Stats.ratio_summary} never emits [inf]). *)
  Printf.printf
    "census {\"cca\":\"%s\",\"jitter_ms\":%g,\"flows\":%d,\"completed\":%d,\
     \"starved\":%d,\"ratio_p50\":%.6g,\"ratio_p90\":%.6g,\"ratio_p99\":%.6g,\
     \"ratio_max\":%.6g}\n"
    c.cca_name c.jitter_ms c.flows c.completed c.summary.Sim.Stats.starved
    c.summary.Sim.Stats.p50 c.summary.Sim.Stats.p90 c.summary.Sim.Stats.p99
    c.summary.Sim.Stats.max_ratio;
  c

let jitter_d = 0.02

let cells =
  [
    ("copa", (fun () -> Copa.make ()), 0.);
    ("copa", (fun () -> Copa.make ()), jitter_d);
    ("reno", (fun () -> Reno.make ()), 0.);
    ("reno", (fun () -> Reno.make ()), jitter_d);
  ]

let cell_key ~cca_name ~jitter_d ~n =
  Printf.sprintf "census/%s/jit=%gms/n=%d" cca_name (jitter_d *. 1e3) n

let rows_of_cells cs =
  List.map
    (fun c ->
      let s = c.summary in
      Report.row
        ~id:"E19"
        ~label:
          (Printf.sprintf "census %s jitter=%gms (%d flows)" c.cca_name
             c.jitter_ms c.flows)
        ~paper:
          "sec. 3.2: workloads starve a subset of flows; report the \
           distribution, not a single max/min ratio"
        ~measured:
          (Printf.sprintf
             "completed %d/%d, starved %d, ratio p50/p90/p99 = \
              %.2f/%.2f/%.2f, max %.2f, peak events %d"
             c.completed c.flows s.Sim.Stats.starved s.Sim.Stats.p50 s.Sim.Stats.p90
             s.Sim.Stats.p99 s.Sim.Stats.max_ratio c.peak_pending)
        ~ok:
          (c.completed > c.flows / 2
          && s.Sim.Stats.total = c.flows
          && Float.is_finite s.Sim.Stats.p99
          && Float.is_finite s.Sim.Stats.max_ratio))
    cs

let run ?(quick = false) () =
  let n = population ~quick in
  rows_of_cells
    (List.map
       (fun (cca_name, cca_make, jitter_d) ->
         run_cell
           ~key:(cell_key ~cca_name ~jitter_d ~n)
           ~cca_name ~cca_make ~jitter_d ~n ~seed:42)
       cells)

let plan ~quick =
  let n = population ~quick in
  let jobs =
    List.map
      (fun (cca_name, cca_make, jitter_d) ->
        let key = cell_key ~cca_name ~jitter_d ~n in
        Runner.Job.create ~key (fun () ->
            run_cell ~key ~cca_name ~cca_make ~jitter_d ~n ~seed:42))
      cells
  in
  let merge payloads =
    rows_of_cells (List.map (fun b -> (Runner.Job.decode b : cell)) payloads)
  in
  (jobs, merge)
