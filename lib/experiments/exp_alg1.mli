(** E10 (the §6.3 figure-of-merit table) and E11 (Algorithm 1 vs Vegas
    under the same jitter).

    E10 tabulates mu+/mu- for the Vegas-family curve (Eq. 1) against the
    exponential curve (Eq. 2), including the paper's example points
    (D = 10 ms, Rmax = 100 ms: s = 2 -> ~2^10; s = 4 -> ~2^20).

    E11 runs the head-to-head simulation: two flows share a 20 Mbit/s
    link; after a grace period flow 1's path picks up a persistent 10 ms of
    non-congestive delay (legal for D = 10 ms).  Algorithm 1, designed for
    that D, keeps the flows within its advertised s = 2; Vegas starves
    flow 1. *)

val run : ?quick:bool -> unit -> Report.row list

val merit_rows : unit -> Core.Ambiguity.merit_row list
