let model_rows ~quick =
  let rm = 0.05 and mss = 1500. in
  let link_rate = Sim.Units.mbps 8. in
  let horizon = if quick then 30 else 40 in
  let vegas = Ccac.Model.vegas_model ~rm ~mss ~alpha:3. in
  let aimd = Ccac.Model.aimd_model ~rm ~mss in
  let u_vegas, _ =
    Ccac.Model.max_unfairness ~cca:vegas ~link_rate ~rm ~big_d:rm ~horizon ()
  in
  let util_vegas =
    Ccac.Model.min_utilization ~cca:vegas ~link_rate ~rm ~big_d:rm ~horizon ()
  in
  let bdp = link_rate *. rm in
  let aimd_run big_d =
    fst (Ccac.Model.max_unfairness ~cca:aimd ~link_rate ~rm ~big_d ~buffer:bdp ~horizon ())
  in
  let u_aimd_0 = aimd_run 0. and u_aimd_j = aimd_run rm in
  [
    Report.row ~id:"E12g" ~label:"Appendix C model: vegas vs jitter D=Rm"
      ~paper:"delay-convergent CCAs break in the CCAC model"
      ~measured:
        (Printf.sprintf "max unfairness %.2f, min utilization %.2f" u_vegas util_vegas)
      ~ok:(u_vegas > 1.5 || util_vegas < 0.8);
    Report.row ~id:"E12h" ~label:"Appendix C model: AIMD is delay-blind"
      ~paper:"pure delay jitter cannot move loss-based AIMD (sec. 5.4)"
      ~measured:
        (Printf.sprintf "max unfairness %.2f with D=0, %.2f with D=Rm" u_aimd_0 u_aimd_j)
      ~ok:(Float.abs (u_aimd_0 -. u_aimd_j) < 1e-9);
  ]

let run ?(quick = false) () =
  let bdp = 10. and buffer = 10. in
  (* AIMD, no injected loss: exhaustive over 10 RTTs. *)
  let clean = Ccac.Aimd_check.check ~bdp ~buffer ~horizon:10 () in
  (* Same, longer horizon: the bound must stay modest (no blow-up). *)
  let clean_long =
    Ccac.Aimd_check.check ~bdp ~buffer ~horizon:(if quick then 14 else 16) ()
  in
  (* Injected loss allowed: the adversary can now keep flow 1 down. *)
  let lossy =
    Ccac.Aimd_check.check ~bdp ~buffer ~horizon:(if quick then 10 else 12)
      ~allow_injected_loss:true ()
  in
  let alg1_params =
    (* Additive constant sized so a newcomer reaches its share within the
       warmup half of the horizon. *)
    { Alg1.default_params with rm = 0.05; rmax = 0.1; d_jitter = 0.01; s = 2.;
      a = Sim.Units.mbps 0.5 }
  in
  let horizon = if quick then 24 else 40 in
  let link_rate = Sim.Units.mbps 10. in
  let exp_check =
    Ccac.Alg1_check.check ~params:alg1_params ~link_rate
      ~curve:Ccac.Alg1_check.Exponential ~horizon ()
  in
  let veg_check =
    Ccac.Alg1_check.check ~params:alg1_params ~link_rate
      ~curve:Ccac.Alg1_check.Vegas_like ~horizon ()
  in
  let aiad_check =
    Ccac.Alg1_check.check ~params:alg1_params ~link_rate
      ~curve:Ccac.Alg1_check.Exponential ~dynamics:Ccac.Alg1_check.Aiad ~horizon ()
  in
  [
    Report.row ~id:"E12a" ~label:"AIMD 10 RTTs, adversarial drops (exhaustive)"
      ~paper:"no starvation trace exists (CCAC proof)"
      ~measured:
        (Printf.sprintf "max ratio %.2f (exhaustive=%b)" clean.Ccac.Aimd_check.max_ratio
           clean.Ccac.Aimd_check.exhaustive)
      ~ok:(clean.Ccac.Aimd_check.max_ratio < 25. && clean.Ccac.Aimd_check.exhaustive);
    Report.row ~id:"E12b" ~label:"AIMD longer horizon, still no injected loss"
      ~paper:"unfairness stays bounded"
      ~measured:(Printf.sprintf "max ratio %.2f" clean_long.Ccac.Aimd_check.max_ratio)
      ~ok:(clean_long.Ccac.Aimd_check.max_ratio < 40.);
    Report.row ~id:"E12c" ~label:"AIMD with injected non-congestive loss"
      ~paper:"starvation returns (PCC Allegro analysis)"
      ~measured:(Printf.sprintf "max ratio %.2f" lossy.Ccac.Aimd_check.max_ratio)
      ~ok:(lossy.Ccac.Aimd_check.max_ratio > 2. *. clean.Ccac.Aimd_check.max_ratio);
    Report.row ~id:"E12d" ~label:"alg1 (exponential curve) vs jitter adversary"
      ~paper:"CCAC found no violation"
      ~measured:
        (Printf.sprintf "max ratio %.2f (s=2), min util %.2f"
           exp_check.Ccac.Alg1_check.max_ratio exp_check.Ccac.Alg1_check.min_utilization)
      ~ok:
        (exp_check.Ccac.Alg1_check.max_ratio < 2.6
        && exp_check.Ccac.Alg1_check.min_utilization > 0.5);
    Report.row ~id:"E12e" ~label:"vegas-like curve, same adversary"
      ~paper:"breaks: ratio exceeds the same s"
      ~measured:(Printf.sprintf "max ratio %.2f" veg_check.Ccac.Alg1_check.max_ratio)
      ~ok:(veg_check.Ccac.Alg1_check.max_ratio > exp_check.Ccac.Alg1_check.max_ratio);
    Report.row ~id:"E12f" ~label:"alg1 with AIAD instead of AIMD"
      ~paper:"CCAC steered the design to AIMD (sec. 6.3)"
      ~measured:
        (Printf.sprintf "max ratio %.2f (AIMD: %.2f)"
           aiad_check.Ccac.Alg1_check.max_ratio exp_check.Ccac.Alg1_check.max_ratio)
      ~ok:(aiad_check.Ccac.Alg1_check.max_ratio
           > exp_check.Ccac.Alg1_check.max_ratio +. 0.2);
  ]
  @ model_rows ~quick
