let rate = Sim.Units.mbps 120.

let jitter = Sim.Jitter.Uniform { lo = 0.; hi = 0.002 }

let mk seed = Bbr.make ~params:{ Bbr.default_params with seed } ()

let two_rtt_starvation ~duration =
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.04 ~duration
         [
           Sim.Network.flow ~jitter ~jitter_bound:0.002 (mk 1);
           Sim.Network.flow ~extra_rm:0.04 ~jitter ~jitter_bound:0.002 (mk 2);
         ])
  in
  let t0 = duration /. 6. in
  ( Sim.Network.throughput net ~flow:0 ~t0 ~t1:duration,
    Sim.Network.throughput net ~flow:1 ~t0 ~t1:duration )

(* The paper's §5.2 fixed-point analysis of cwnd-limited mode: in that
   mode ACKs for flow i arrive at rate C w_i / (w1 + w2), the bandwidth
   estimate equals the ACK rate, and the update is

     w_i <- 2 Rm C w_i / (w1 + w2) + alpha.

   With alpha > 0 the iteration contracts to the unique equal split
   w_i = 2 C Rm / n + alpha; with alpha = 0 every split of 2 C Rm is a
   fixed point, so a newcomer stuck at epsilon stays there. *)
let cwnd_fixed_point ~alpha ~iterations ~w1_0 ~w2_0 ~rm =
  let c = rate in
  let w1 = ref w1_0 and w2 = ref w2_0 in
  for _ = 1 to iterations do
    let total = !w1 +. !w2 in
    let next1 = (2. *. rm *. c *. !w1 /. total) +. alpha in
    let next2 = (2. *. rm *. c *. !w2 /. total) +. alpha in
    w1 := next1;
    w2 := next2
  done;
  (!w1, !w2)

(* The n-flow fixed point: with n equal-RTT cwnd-limited BBR flows the
   paper derives RTT = 2 Rm + n alpha / C.  Measure it with n = 3. *)
let n_flow_equilibrium_rtt ~duration =
  let n = 3 in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.04 ~duration
         (List.init n (fun i ->
              Sim.Network.flow ~jitter ~jitter_bound:0.002 (mk (10 + i)))))
  in
  let rtts =
    Array.to_list (Sim.Network.flows net)
    |> List.concat_map (fun f ->
           Array.to_list
             (Sim.Series.window_values (Sim.Flow.rtt_series f)
                ~t0:(0.75 *. duration) ~t1:duration))
  in
  Sim.Stats.median (Array.of_list rtts)

let run ?(quick = false) () =
  let duration = if quick then 20. else 60. in
  let x1, x2 = two_rtt_starvation ~duration in
  let rm = 0.04 in
  let bdp2 = 2. *. rate *. rm in
  let alpha = Bbr.default_params.Bbr.quanta_packets *. 1500. in
  (* Start from a 99:1 split of the 2-BDP pie. *)
  let w1_with, w2_with =
    cwnd_fixed_point ~alpha ~iterations:10_000 ~w1_0:(0.01 *. bdp2)
      ~w2_0:(0.99 *. bdp2) ~rm
  in
  let w1_wo, w2_wo =
    cwnd_fixed_point ~alpha:0. ~iterations:10_000 ~w1_0:(0.01 *. bdp2)
      ~w2_0:(0.99 *. bdp2) ~rm
  in
  [
    Report.row ~id:"E3" ~label:"bbr 2-flow, Rm 40/80 ms"
      ~paper:"8.3 vs 107 Mbit/s (~13:1)"
      ~measured:(Printf.sprintf "%s vs %s (%.1f:1)" (Report.mbps x1) (Report.mbps x2)
           (Float.max x1 x2 /. Float.min x1 x2))
      ~ok:(Float.max x1 x2 /. Float.min x1 x2 > 5.);
    Report.row ~id:"E4a" ~label:"cwnd fixed point from 99:1 split, with +alpha"
      ~paper:"unique fixed point: converges to equal shares"
      ~measured:(Printf.sprintf "w1/w2 = %.3f" (w1_with /. w2_with))
      ~ok:(Float.abs ((w1_with /. w2_with) -. 1.) < 0.01);
    Report.row ~id:"E4b" ~label:"cwnd fixed point from 99:1 split, alpha = 0"
      ~paper:"any split is a fixed point: stays 99:1"
      ~measured:(Printf.sprintf "w1/w2 = %.3f" (w1_wo /. w2_wo))
      ~ok:(w1_wo /. w2_wo < 0.05);
    (let measured = n_flow_equilibrium_rtt ~duration in
     let predicted =
       Bbr.equilibrium_rtt_cwnd_limited Bbr.default_params ~rate ~rm ~n_flows:3
     in
     Report.row ~id:"E4c" ~label:"3-flow equilibrium RTT (simulated)"
       ~paper:(Printf.sprintf "RTT = 2Rm + n*alpha/C = %s" (Report.msec predicted))
       ~measured:(Report.msec measured)
         (* ProbeRTT dips and the 1.25x probe phases widen the observed
            distribution; the median must sit near the fixed point. *)
       ~ok:(Float.abs (measured -. predicted) < 0.35 *. predicted));
  ]
