(** CSV export of the figure series, for external plotting. *)

val write_csv : path:string -> cols:string list -> float list list -> unit
(** Write a header row and one line per sample. *)

val series_to_rows : ?stride:int -> Sim.Series.t -> float list list
(** (time, value) rows, optionally keeping every [stride]-th sample. *)

val figures : dir:string -> quick:bool -> string list
(** Regenerate every figure's data and write one CSV per series under
    [dir] (created if missing).  Returns the paths written. *)
