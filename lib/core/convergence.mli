(** Delay-convergence measurement (paper §2.2, Definition 1).

    Runs a CCA alone on an ideal path (constant rate, no jitter, unbounded
    buffer) and extracts the converged delay band [d_min(C), d_max(C)], the
    oscillation width delta(C) = d_max - d_min, and the convergence time T
    after which every RTT sample stays inside the band. *)

type measurement = {
  cca_name : string;
  rate : float;  (** bottleneck rate, bytes/s *)
  rm : float;
  duration : float;
  converged : bool;
      (** the band was reached before [tail_frac * duration], held, and is
          stable: its extrema over the two halves of the tail window agree
          (a monotone drift — e.g. an unbounded queue — is not
          convergence even though it technically "enters" its own tail
          band) *)
  t_converge : float;  (** the paper's T; [nan] if never converged *)
  d_min : float;  (** band floor over the tail window, seconds (RTT) *)
  d_max : float;  (** band ceiling *)
  delta : float;  (** d_max - d_min *)
  throughput : float;  (** bytes/s over the tail window *)
  efficiency : float;  (** throughput / rate *)
  rtt : Sim.Series.t;  (** full RTT trajectory (ack time, rtt) *)
  rate_trace : Sim.Series.t;  (** delivery-rate trajectory, bytes/s *)
}

val measure :
  make_cca:(unit -> Cca.t) ->
  rate:float ->
  rm:float ->
  ?duration:float ->
  ?tail_frac:float ->
  ?band_pad_frac:float ->
  ?seed:int ->
  unit ->
  measurement
(** [duration] defaults to the larger of 30 s and 400 RTTs.  The band is
    measured over the trailing [tail_frac] (default 0.4) of the run and
    padded by [band_pad_frac] (default 0.02) of its width (plus a 10 us
    absolute guard) before searching for the earliest entry time T. *)

val is_delay_convergent :
  make_cca:(unit -> Cca.t) ->
  rates:float list ->
  rm:float ->
  ?duration:float ->
  ?seed:int ->
  unit ->
  bool * float * float
(** Check Definition 1 empirically over a set of rates: every run must
    converge.  Returns (all converged, sup d_max, sup delta) — the
    empirical d_max-bar and delta-max bounds used by the theorems. *)
