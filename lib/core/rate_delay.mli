(** Rate-delay maps (paper Figures 2 and 3).

    For a fixed minimum RTT, a delay-convergent CCA maps each bottleneck
    rate C to the delay band it converges to.  This module provides the
    analytic bands derived in §2.2/§5 for the CCAs in [lib/cca], and an
    empirical sweep that measures them with {!Convergence}. *)

type band = { d_min : float; d_max : float }

val width : band -> float
(** delta(C). *)

type curve = {
  curve_name : string;
  band : rate:float -> rm:float -> band;
      (** converged RTT band on an ideal path of the given rate *)
  delta_max : rm:float -> float;
      (** analytic sup of delta(C) over all C above the curve's lambda *)
}

val vegas : Vegas.params -> curve
(** [Rm + target/C] with delta = 0 (Figure 3, leftmost panel; the target is
    the alpha..beta window so the band has width (beta-alpha) packets). *)

val fast : Fast_tcp.params -> curve
val copa : Copa.params -> curve

val bbr_pacing : curve
(** Pacing-limited BBR: band [Rm, 1.25 Rm]; delta_max = Rm/4 (§5.2). *)

val bbr_cwnd : Bbr.params -> curve
(** cwnd-limited BBR: RTT = 2 Rm + alpha/C, delta = 0 (§5.2). *)

val pcc_vivace : curve
(** Band [Rm, 1.05 Rm]; delta_max = Rm/20 (§5.3). *)

val ledbat : Ledbat.params -> curve
(** [Rm + target + mss/C], delta = 0: a constant standing queue
    independent of C — the LEDBAT/min-filter family of §2.2. *)

val alg1 : Alg1.params -> curve
(** Inverse of Algorithm 1's mu(d) curve, oscillating by one AIMD step. *)

val sweep :
  curve -> rates:float list -> rm:float -> (float * band) list
(** Evaluate the analytic curve over a rate grid — the Figure 3 series. *)

val empirical_sweep :
  make_cca:(unit -> Cca.t) ->
  rates:float list ->
  rm:float ->
  ?duration:float ->
  ?seed:int ->
  unit ->
  (float * band) list
(** Measured bands via {!Convergence.measure} over the same grid. *)
