let blocks ~d ~jitter =
  if jitter <= 0. then invalid_arg "Ambiguity.blocks: jitter must be positive";
  let lo = Float.max 0. (d -. jitter) in
  (int_of_float (Float.floor (lo /. jitter)), int_of_float (Float.floor (d /. jitter)))

let distinguishable ~d1 ~d2 ~jitter =
  (* Windows [d_i - D, d_i] overlap iff |d1 - d2| <= D. *)
  Float.abs (d1 -. d2) > jitter

let vegas_mu_plus ~alpha_bytes ~jitter ~s =
  alpha_bytes /. jitter *. (1. -. (1. /. s))

let vegas_range ~rm ~rmax ~jitter ~s = (rmax -. rm) /. jitter *. (1. -. (1. /. s))

let exponential_range ~rm ~rmax ~jitter ~s = s ** ((rmax -. rm -. jitter) /. jitter)

type merit_row = {
  jitter : float;
  s : float;
  rmax : float;
  rm : float;
  vegas : float;
  exponential : float;
}

let merit_table ~rm ~rmax ~jitters ~ss =
  List.concat_map
    (fun jitter ->
      List.map
        (fun s ->
          {
            jitter;
            s;
            rmax;
            rm;
            vegas = vegas_range ~rm ~rmax ~jitter ~s;
            exponential = exponential_range ~rm ~rmax ~jitter ~s;
          })
        ss)
    jitters
