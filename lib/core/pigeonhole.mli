(** Step 1 of the Theorem 1 proof (Figure 4).

    Scan the geometric rate sequence lambda_i = lambda0 * factor^i,
    measuring each rate's converged delay band, until two rates are found
    whose d_max values land in the same epsilon-sized bucket of the
    [Rm, d_max-bar] interval.  Because the sequence is infinite and the
    buckets finite, such a pair always exists for a delay-convergent CCA;
    the search surfaces it constructively. *)

type pair = {
  c1 : float;  (** slower link rate, bytes/s *)
  c2 : float;  (** faster link rate; c2 >= factor * c1 *)
  m1 : Convergence.measurement;
  m2 : Convergence.measurement;
  epsilon : float;
  gap : float;  (** |d_max(c1) - d_max(c2)|, < epsilon by construction *)
  probes : Convergence.measurement list;
      (** every rate measured during the search, for the Figure 4 plot *)
}

val find_pair :
  measure:(rate:float -> Convergence.measurement) ->
  lambda0:float ->
  factor:float ->
  epsilon:float ->
  ?max_probes:int ->
  unit ->
  (pair, string) result
(** [factor] is the paper's s/f.  [measure] typically wraps
    {!Convergence.measure} with the CCA and Rm fixed.  Fails (with a
    diagnostic) only if a probe does not converge or [max_probes]
    (default 24) is exhausted — which for a delay-convergent CCA means
    epsilon was too small for the probe budget. *)
