(** Theorem 2: a CCA whose converged delay stays at or below the jitter
    bound D can be driven to arbitrarily low utilization.

    Construction (paper §6.1): record the delay trajectory d(t) of the CCA
    alone on an ideal link of rate C.  Then run it on a much faster link
    C' >> C with a jitter controller that reproduces d(t) exactly — since
    the queue on the fast link stays near-empty, the entire delay fits in
    the [0, D] jitter budget whenever d_max(C) <= Rm + D.  The
    deterministic CCA sends at its rate-C trajectory and utilization falls
    as C'/C grows. *)

type point = {
  fast_rate : float;  (** C', bytes/s *)
  throughput : float;
  utilization : float;
  jitter_violations : int;  (** clamps over the whole run *)
  settled_violations : int;
      (** clamps for packets sent after the reference run's convergence
          time — the regime Theorem 2 speaks about *)
}

type outcome = {
  base : Convergence.measurement;  (** the rate-C reference run *)
  big_d : float;  (** jitter budget needed: d_max(C) - Rm (plus margin) *)
  points : point list;  (** utilization vs C' sweep *)
}

val run :
  make_cca:(unit -> Cca.t) ->
  rate:float ->
  rm:float ->
  multipliers:float list ->
  ?duration:float ->
  ?seed:int ->
  unit ->
  outcome
(** [multipliers] are the C'/C factors to sweep (e.g. [10; 100; 1000]). *)
