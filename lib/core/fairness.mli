(** Fairness and starvation metrics (paper §4.2, Definitions 2-4). *)

type report = {
  throughputs : float array;  (** bytes/s per flow over the window *)
  ratio : float;  (** fastest over slowest; [infinity] if one flow starved *)
  jain : float;
  utilization : float;  (** sum of throughputs over mean link rate *)
}

val of_network : Sim.Network.t -> ?warmup_frac:float -> unit -> report

val is_s_fair : report -> s:float -> bool
(** True when the throughput ratio is below [s]. *)

val starvation_score : report -> float
(** The measured ratio — the quantity Theorem 1 drives above any target s. *)

val throughput_definition : Sim.Flow.t -> t:float -> float
(** The paper's throughput at time t: bytes acknowledged in [0, t] / t. *)

val ratio_trajectory : Sim.Network.t -> dt:float -> Sim.Series.t
(** Definition 2 made visible: the max/min ratio of the flows'
    cumulative throughputs (bytes acked in [0, t] / t) sampled every [dt].
    The network is s-fair exactly when this curve eventually stays under
    s; a starving scenario shows it ratcheting upward instead. *)

val s_fair_from : Sim.Network.t -> dt:float -> s:float -> float option
(** The earliest sample time after which the Definition-2 ratio stays
    below [s] for the remainder of the run; [None] if it never does. *)

val f_efficiency :
  make_cca:(unit -> Cca.t) ->
  rate:float ->
  rm:float ->
  ?duration:float ->
  ?seed:int ->
  unit ->
  float
(** Empirical f for Definition 4: the best fraction of the link rate the
    CCA's running throughput reaches at any point past the first quarter of
    an ideal-path run (the definition only requires throughput >= f C
    infinitely often, so we take the max over checkpoints). *)
