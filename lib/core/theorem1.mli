(** Constructive reproduction of Theorem 1: starvation is inevitable for
    deterministic, f-efficient, delay-convergent CCAs when the
    non-congestive jitter bound D exceeds 2 delta_max.

    The pipeline mirrors the proof:

    + {b Step 1} ({!Pigeonhole}): find link rates C1, C2 with
      C2 >= (s/f) C1 whose converged delay bands overlap within epsilon.
    + {b Step 2} ({!Convergence}): record the single-flow delay and rate
      trajectories on ideal links of rates C1 and C2 (Figure 5).
    + {b Step 3} ({!Emulation}): run both flows — their CCA instances
      deterministically re-warmed to their converged states — on a shared
      link of rate C1+C2, with per-flow jitter controllers that impose the
      recorded delay trajectories.  Verify 0 <= eta_i(t) <= D both
      analytically (on the recorded trajectories, via Eq. 5) and at runtime
      (the jitter elements count clamps), and measure the throughput ratio.

    The flows start the shared phase with empty pipes, so the first
    round-trip is a transient the proof's fluid model does not have; the
    runtime bound check therefore also reports violations after a settle
    window.  The analytic check has no such caveat. *)

type outcome = {
  pair : Pigeonhole.pair;
  delta_max : float;  (** sup of measured delta(C) over all probes *)
  epsilon : float;
  big_d : float;  (** the model's D = 2 (delta_max + epsilon) *)
  analytic : Emulation.check;  (** Eq. 5 bound check on the trajectories *)
  runtime_violations : int;  (** jitter clamps over the whole shared run *)
  settled_violations : int;  (** clamps after the settle window *)
  max_emulation_error : float;
      (** after the settle window, the largest gap between an RTT a flow
          actually observed in the shared scenario and the recorded
          single-flow trajectory it was supposed to observe — the direct
          check that "each flow thinks it is alone on its own link" *)
  x1 : float;  (** slow flow's throughput in the shared scenario, bytes/s *)
  x2 : float;  (** fast flow's throughput *)
  ratio : float;
  target_s : float;
  starved : bool;  (** ratio >= target s *)
  t_start : float;  (** shared-phase start time (= max of the two T_i) *)
  d_star : Sim.Series.t;  (** Eq. 5 trajectory (Figure 6) *)
  net : Sim.Network.t;  (** the shared-link network, for further inspection *)
}

type construction = Case1 | Case2
(** Which branch of the Appendix A case split to execute.

    [Case1] (the general case): shared link of rate C1+C2, initial
    backlog realizing the Eq. 5 d*(t), jitter topping each flow up to its
    trajectory.  [Case2] (the easy case, applicable when
    [min d_min <= Rm + delta_max + epsilon]): a link so fast its queueing
    is negligible, with the *entire* delay trajectories emulated by the
    jitter element alone — the same mechanism as Theorem 2, which is why
    the paper notes Case 2 also proves non-f-efficiency. *)

val run :
  make_cca:(unit -> Cca.t) ->
  rm:float ->
  s:float ->
  f:float ->
  lambda0:float ->
  ?epsilon:float ->
  ?phase2_duration:float ->
  ?single_duration:float ->
  ?seed:int ->
  ?construction:construction ->
  unit ->
  (outcome, string) result
(** [s] is the target starvation ratio, [f] the CCA's efficiency (Step 1
    spaces probe rates by s/f), [lambda0] the first probe rate (bytes/s).
    [epsilon] defaults to 0.5 ms.  [construction] defaults to [Case1],
    which works whenever the converged delays leave room for a standing
    queue; [Case2] requires the paper's case-2 condition and fails with
    an error otherwise. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {2 Trajectory helpers} (shared with the Theorem 2/3 constructions) *)

val by_send_time : Sim.Series.t -> Sim.Series.t
(** Re-index an (ack time, RTT) series by packet send time
    (send = ack - rtt), dropping non-monotone duplicates. *)

val target_of_series : Sim.Series.t -> float -> float
(** Step interpolation with first-/last-value extension — the delay target
    the emulation controllers follow. *)

