type outcome = {
  pair : Pigeonhole.pair;
  delta_max : float;
  epsilon : float;
  big_d : float;
  analytic : Emulation.check;
  runtime_violations : int;
  settled_violations : int;
  max_emulation_error : float;
  x1 : float;
  x2 : float;
  ratio : float;
  target_s : float;
  starved : bool;
  t_start : float;
  d_star : Sim.Series.t;
  net : Sim.Network.t;
}

(* RTT trajectory re-indexed by packet send time (ack series carry ack
   times).  FIFO delivery keeps send times non-decreasing across acks of
   one flow; coalesced samples at equal times are dropped. *)
let by_send_time (rtt : Sim.Series.t) =
  let out = Sim.Series.create ~name:"rtt_by_send" () in
  let last = ref neg_infinity in
  Array.iter2
    (fun ta r ->
      let ts = ta -. r in
      if ts > !last then begin
        Sim.Series.add out ~time:ts r;
        last := ts
      end)
    (Sim.Series.times rtt) (Sim.Series.values rtt);
  out

let target_of_series s =
  let first = match Sim.Series.first s with Some (_, v) -> v | None -> nan in
  fun tau -> match Sim.Series.value_at s tau with Some v -> v | None -> first

type construction = Case1 | Case2

let run ~make_cca ~rm ~s ~f ~lambda0 ?(epsilon = 5e-4) ?(phase2_duration = 30.)
    ?single_duration ?(seed = 42) ?(construction = Case1) () =
  let single_duration =
    match single_duration with
    | Some d -> d
    | None -> Float.max (Float.max 30. (400. *. rm)) (2.5 *. phase2_duration)
  in
  let measure ~rate =
    Convergence.measure ~make_cca ~rate ~rm ~duration:single_duration ~seed ()
  in
  let factor = s /. f in
  match Pigeonhole.find_pair ~measure ~lambda0 ~factor ~epsilon () with
  | Error e -> Error e
  | Ok pair ->
      let m1 = pair.Pigeonhole.m1 and m2 = pair.Pigeonhole.m2 in
      let c1 = pair.Pigeonhole.c1 and c2 = pair.Pigeonhole.c2 in
      let delta_max =
        List.fold_left
          (fun acc m -> Float.max acc m.Convergence.delta)
          0. pair.Pigeonhole.probes
      in
      let epsilon_eff = Float.max pair.Pigeonhole.gap epsilon in
      let big_d = 2. *. (delta_max +. epsilon_eff) in
      let t1 = Float.max m1.Convergence.t_converge (4. *. rm) in
      let t2 = Float.max m2.Convergence.t_converge (4. *. rm) in
      let t_start = Float.max t1 t2 in
      (* Trajectories by send time, shifted so both start at their own T_i. *)
      let d1 = by_send_time m1.Convergence.rtt in
      let d2 = by_send_time m2.Convergence.rtt in
      let horizon = Float.min phase2_duration (single_duration -. t_start) in
      (* Analytic Eq. 5 bound check over the overlapping converged window,
         in shifted coordinates tau in [0, horizon] where flow i sees
         d_i(T_i + tau). *)
      let shift1 = t1 -. t_start and shift2 = t2 -. t_start in
      let resampled series t_from =
        let out = Sim.Series.create () in
        let tgt = target_of_series series in
        let dtg = rm /. 4. in
        let k = ref 0 in
        while float_of_int !k *. dtg <= horizon do
          let tau = float_of_int !k *. dtg in
          Sim.Series.add out ~time:tau (tgt (t_from +. tau));
          incr k
        done;
        out
      in
      let d1_traj = resampled d1 t1 and d2_traj = resampled d2 t2 in
      let analytic =
        match construction with
        | Case1 ->
            Emulation.verify ~c1 ~c2 ~d1:d1_traj ~d2:d2_traj ~delta_max
              ~epsilon:epsilon_eff ~t0:0. ~t1:horizon ~dt:(rm /. 4.)
        | Case2 ->
            (* The queue is ~empty, so d* = Rm and the whole trajectory
               must fit in the jitter budget: 0 <= d_i - Rm <= D. *)
            let big_d = 2. *. (delta_max +. epsilon_eff) in
            let star = Sim.Series.create ~name:"d_star" () in
            Sim.Series.add star ~time:0. rm;
            Sim.Series.add star ~time:horizon rm;
            let samples = ref 0 and violations = ref 0 in
            let eta_min = ref infinity and eta_max = ref neg_infinity in
            List.iter
              (fun traj ->
                Array.iter
                  (fun v ->
                    let eta = v -. rm in
                    incr samples;
                    if eta < !eta_min then eta_min := eta;
                    if eta > !eta_max then eta_max := eta;
                    if eta < -1e-9 || eta > big_d +. 1e-9 then incr violations)
                  (Sim.Series.values traj))
              [ d1_traj; d2_traj ];
            {
              Emulation.samples = !samples;
              violations = !violations;
              eta_min = !eta_min;
              eta_max = !eta_max;
              d_star = star;
            }
      in
      (* Re-warm fresh CCA instances to their converged states by replaying
         the (deterministic) single-flow runs up to T_i. *)
      let warm rate t_i =
        let cca = make_cca () in
        let cfg =
          Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm ~seed
            ~duration:t_i
            [ Sim.Network.flow cca ]
        in
        ignore (Sim.Network.run_config cfg);
        cca
      in
      let cca1 = warm c1 t1 and cca2 = warm c2 t2 in
      (* Shared-link scenario. *)
      let ctrl1 =
        Emulation.make_controller ~target:(target_of_series d1) ~time_shift:shift1 ()
      in
      let ctrl2 =
        Emulation.make_controller ~target:(target_of_series d2) ~time_shift:shift2 ()
      in
      let d1_0 = target_of_series d1 t1 and d2_0 = target_of_series d2 t2 in
      (* Each flow opens its converged window paced at its own link rate, so
         the joint arrival rate equals the shared service rate and the
         phantom backlog below realizes d*(0) exactly (Appendix A's initial
         conditions). *)
      let case2_ok =
        Float.min m1.Convergence.d_min m2.Convergence.d_min
        <= rm +. delta_max +. epsilon_eff +. 1e-9
      in
      let shared_rate, phantom =
        match construction with
        | Case1 ->
            ( c1 +. c2,
              Emulation.initial_queue_bytes ~c1 ~c2 ~d1_0 ~d2_0 ~delta_max
                ~epsilon:epsilon_eff ~rm )
        | Case2 -> (50. *. (c1 +. c2), 0)
      in
      if construction = Case2 && not case2_ok then
        Error "case-2 condition (min d_min <= Rm + delta_max + eps) does not hold"
      else begin
      let cfg =
        Sim.Network.config
          ~rate:(Sim.Link.Constant shared_rate)
          ~rm ~seed ~t0:t_start ~duration:phase2_duration
          ~initial_queue_bytes:phantom
          [
            Sim.Network.flow ~start_time:t_start ~jitter:ctrl1.Emulation.policy
              ~jitter_bound:big_d ~initial_pacing:c1 cca1;
            Sim.Network.flow ~start_time:t_start ~jitter:ctrl2.Emulation.policy
              ~jitter_bound:big_d ~initial_pacing:c2 cca2;
          ]
      in
      let net = Sim.Network.run_config cfg in
      let jitters = Sim.Network.jitters net in
      let runtime_violations =
        Sim.Jitter.violations jitters.(0) + Sim.Jitter.violations jitters.(1)
      in
      (* Violations after the settle window, from the controllers' logs. *)
      let settle = t_start +. (10. *. (rm +. delta_max)) in
      let settled_violations =
        List.fold_left
          (fun acc ctrl ->
            Array.fold_left
              (fun acc2 (t, eta) ->
                if t >= settle && (eta < -1e-9 || eta > big_d +. 1e-9) then acc2 + 1
                else acc2)
              acc
              (Array.map2
                 (fun a b -> (a, b))
                 (Sim.Series.times ctrl.Emulation.requested)
                 (Sim.Series.values ctrl.Emulation.requested)))
          0 [ ctrl1; ctrl2 ]
      in
      (* Direct emulation check: each flow's observed RTT, indexed by send
         time, must equal the recorded trajectory it was assigned. *)
      let max_emulation_error =
        let flows_arr = Sim.Network.flows net in
        let err flow_idx recorded shift =
          let target = target_of_series recorded in
          let observed = by_send_time (Sim.Flow.rtt_series flows_arr.(flow_idx)) in
          Array.fold_left Float.max 0.
            (Array.mapi
               (fun i ts ->
                 if ts >= settle then
                   Float.abs ((Sim.Series.values observed).(i) -. target (ts +. shift))
                 else 0.)
               (Sim.Series.times observed))
        in
        Float.max (err 0 d1 shift1) (err 1 d2 shift2)
      in
      let t_end = t_start +. phase2_duration in
      let t_meas = t_start +. (0.25 *. phase2_duration) in
      let x1 = Sim.Network.throughput net ~flow:0 ~t0:t_meas ~t1:t_end in
      let x2 = Sim.Network.throughput net ~flow:1 ~t0:t_meas ~t1:t_end in
      let ratio = if x1 <= 0. then infinity else x2 /. x1 in
      Ok
        {
          pair;
          delta_max;
          epsilon = epsilon_eff;
          big_d;
          analytic;
          runtime_violations;
          settled_violations;
          max_emulation_error;
          x1;
          x2;
          ratio;
          target_s = s;
          starved = ratio >= s;
          t_start;
          d_star = analytic.Emulation.d_star;
          net;
        }
      end

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>Theorem 1 construction:@,\
    \  C1 = %.2f Mbit/s, C2 = %.2f Mbit/s (C2/C1 = %.1f)@,\
    \  d_max(C1) = %.3f ms, d_max(C2) = %.3f ms (gap %.4f ms)@,\
    \  delta_max = %.4f ms, epsilon = %.4f ms, D = %.4f ms@,\
    \  analytic eta in [%.4f, %.4f] ms, violations %d/%d@,\
    \  runtime jitter clamps: %d (after settle: %d), max emulation error %.4f ms@,\
    \  throughput: x1 = %.3f Mbit/s, x2 = %.3f Mbit/s, ratio = %.1f (target s = %.1f)@,\
    \  starved: %b@]"
    (Sim.Units.to_mbps o.pair.Pigeonhole.c1)
    (Sim.Units.to_mbps o.pair.Pigeonhole.c2)
    (o.pair.Pigeonhole.c2 /. o.pair.Pigeonhole.c1)
    (Sim.Units.to_ms o.pair.Pigeonhole.m1.Convergence.d_max)
    (Sim.Units.to_ms o.pair.Pigeonhole.m2.Convergence.d_max)
    (Sim.Units.to_ms o.pair.Pigeonhole.gap)
    (Sim.Units.to_ms o.delta_max) (Sim.Units.to_ms o.epsilon)
    (Sim.Units.to_ms o.big_d)
    (Sim.Units.to_ms o.analytic.Emulation.eta_min)
    (Sim.Units.to_ms o.analytic.Emulation.eta_max)
    o.analytic.Emulation.violations o.analytic.Emulation.samples
    o.runtime_violations o.settled_violations
    (Sim.Units.to_ms o.max_emulation_error) (Sim.Units.to_mbps o.x1)
    (Sim.Units.to_mbps o.x2) o.ratio o.target_s o.starved
