type report = {
  throughputs : float array;
  ratio : float;
  jain : float;
  utilization : float;
}

let of_network net ?(warmup_frac = 0.25) () =
  let xs = Sim.Network.throughputs net ~warmup_frac () in
  let l = Array.to_list xs in
  {
    throughputs = xs;
    ratio = Sim.Stats.max_min_ratio l;
    jain = Sim.Stats.jain_index l;
    utilization = Sim.Network.utilization net ~warmup_frac ();
  }

let is_s_fair r ~s = r.ratio < s
let starvation_score r = r.ratio

let throughput_definition flow ~t =
  if t <= 0. then 0.
  else
    let delivered =
      match Sim.Series.value_at (Sim.Flow.delivered_series flow) t with
      | Some v -> v
      | None -> 0.
    in
    delivered /. t

let ratio_trajectory net ~dt =
  let flows = Sim.Network.flows net in
  let out = Sim.Series.create ~name:"throughput_ratio" () in
  let horizon =
    Array.fold_left
      (fun acc f ->
        match Sim.Series.last (Sim.Flow.delivered_series f) with
        | Some (t, _) -> Float.max acc t
        | None -> acc)
      0. flows
  in
  let t = ref dt in
  while !t <= horizon do
    let xs =
      Array.to_list (Array.map (fun f -> throughput_definition f ~t:!t) flows)
    in
    if List.for_all (fun x -> x > 0.) xs then
      Sim.Series.add out ~time:!t (Sim.Stats.max_min_ratio xs);
    t := !t +. dt
  done;
  out

let s_fair_from net ~dt ~s =
  let traj = ratio_trajectory net ~dt in
  let times = Sim.Series.times traj and values = Sim.Series.values traj in
  let n = Array.length times in
  if n = 0 then None
  else begin
    (* Last index where the ratio is >= s; fair from the next sample on. *)
    let last_bad = ref (-1) in
    for i = 0 to n - 1 do
      if values.(i) >= s then last_bad := i
    done;
    if !last_bad = n - 1 then None
    else if !last_bad < 0 then Some times.(0)
    else Some times.(!last_bad + 1)
  end

let f_efficiency ~make_cca ~rate ~rm ?duration ?(seed = 42) () =
  let duration =
    match duration with Some d -> d | None -> Float.max 30. (400. *. rm)
  in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm ~seed ~duration
      [ Sim.Network.flow (make_cca ()) ]
  in
  let net = Sim.Network.run_config cfg in
  let flow = (Sim.Network.flows net).(0) in
  let best = ref 0. in
  let checkpoints = 64 in
  for k = checkpoints / 4 to checkpoints do
    let t = duration *. float_of_int k /. float_of_int checkpoints in
    let f = throughput_definition flow ~t /. rate in
    if f > !best then best := f
  done;
  !best
