type band = { d_min : float; d_max : float }

let width b = b.d_max -. b.d_min

type curve = {
  curve_name : string;
  band : rate:float -> rm:float -> band;
  delta_max : rm:float -> float;
}

let transmission_floor ~rate ~mss = float_of_int mss /. rate

let vegas (p : Vegas.params) =
  {
    curve_name = "vegas";
    band =
      (fun ~rate ~rm ->
        let tx = transmission_floor ~rate ~mss:p.mss in
        let per_pkt = float_of_int p.mss /. rate in
        {
          d_min = rm +. tx +. (p.alpha *. per_pkt);
          d_max = rm +. tx +. (p.beta *. per_pkt);
        });
    (* The alpha..beta window shrinks with C; its sup over C > lambda is at
       C = lambda, but for the paper's purposes the width tends to 0. *)
    delta_max = (fun ~rm:_ -> 0.);
  }

let fast (p : Fast_tcp.params) =
  {
    curve_name = "fast";
    band =
      (fun ~rate ~rm ->
        let tx = transmission_floor ~rate ~mss:p.mss in
        let d = rm +. tx +. (p.alpha_packets *. float_of_int p.mss /. rate) in
        { d_min = d; d_max = d });
    delta_max = (fun ~rm:_ -> 0.);
  }

let copa (p : Copa.params) =
  {
    curve_name = "copa";
    band =
      (fun ~rate ~rm ->
        let lo, hi = Copa.delay_band p ~rate ~rm in
        let tx = transmission_floor ~rate ~mss:p.mss in
        { d_min = lo +. tx; d_max = hi +. tx });
    delta_max = (fun ~rm:_ -> 0.);
  }

let bbr_pacing =
  {
    curve_name = "bbr-pacing";
    band =
      (fun ~rate ~rm ->
        let tx = transmission_floor ~rate ~mss:Cca.default_mss in
        { d_min = rm +. tx; d_max = (1.25 *. rm) +. tx });
    delta_max = (fun ~rm -> 0.25 *. rm);
  }

let bbr_cwnd (p : Bbr.params) =
  {
    curve_name = "bbr-cwnd";
    band =
      (fun ~rate ~rm ->
        let d = Bbr.equilibrium_rtt_cwnd_limited p ~rate ~rm ~n_flows:1 in
        let tx = transmission_floor ~rate ~mss:p.mss in
        { d_min = d +. tx; d_max = d +. tx });
    delta_max = (fun ~rm:_ -> 0.);
  }

let pcc_vivace =
  {
    curve_name = "pcc-vivace";
    band =
      (fun ~rate ~rm ->
        let tx = transmission_floor ~rate ~mss:Cca.default_mss in
        { d_min = rm +. tx; d_max = (1.05 *. rm) +. tx });
    delta_max = (fun ~rm -> rm /. 20.);
  }

let ledbat (p : Ledbat.params) =
  {
    curve_name = "ledbat";
    band =
      (fun ~rate ~rm ->
        let d = Ledbat.equilibrium_rtt p ~rate ~rm in
        { d_min = d; d_max = d });
    delta_max = (fun ~rm:_ -> 0.);
  }

let alg1 (p : Alg1.params) =
  {
    curve_name = "alg1";
    band =
      (fun ~rate ~rm ->
        (* Invert mu(d): d = rm + rmax - D * log_s (mu / mu-).  The AIMD
           cycle oscillates between the crossing rate and b*rate, i.e. over
           a delay interval of D * log_s (1/b). *)
        let d_of_rate r =
          p.rm +. p.rmax
          -. (p.d_jitter *. (Float.log (r /. p.mu_minus) /. Float.log p.s))
        in
        let tx = transmission_floor ~rate ~mss:p.mss in
        let hi = d_of_rate (p.b *. rate) +. tx and lo = d_of_rate rate +. tx in
        ignore rm;
        { d_min = Float.min lo hi; d_max = Float.max lo hi });
    delta_max =
      (fun ~rm:_ -> p.d_jitter *. (Float.log (1. /. p.b) /. Float.log p.s));
  }

let sweep curve ~rates ~rm = List.map (fun r -> (r, curve.band ~rate:r ~rm)) rates

let empirical_sweep ~make_cca ~rates ~rm ?duration ?seed () =
  List.map
    (fun rate ->
      let m = Convergence.measure ~make_cca ~rate ~rm ?duration ?seed () in
      (rate, { d_min = m.Convergence.d_min; d_max = m.Convergence.d_max }))
    rates
