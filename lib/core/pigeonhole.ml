type pair = {
  c1 : float;
  c2 : float;
  m1 : Convergence.measurement;
  m2 : Convergence.measurement;
  epsilon : float;
  gap : float;
  probes : Convergence.measurement list;
}

let find_pair ~measure ~lambda0 ~factor ~epsilon ?(max_probes = 24) () =
  if factor <= 1. then invalid_arg "Pigeonhole.find_pair: factor must exceed 1";
  if epsilon <= 0. then invalid_arg "Pigeonhole.find_pair: epsilon must be positive";
  let bucket_of m = int_of_float (Float.floor (m.Convergence.d_max /. epsilon)) in
  let rec scan i seen probes =
    if i >= max_probes then
      Error
        (Printf.sprintf
           "no pigeonhole pair within %d probes (epsilon=%.6f too fine?)" max_probes
           epsilon)
    else begin
      let rate = lambda0 *. (factor ** float_of_int i) in
      let m = measure ~rate in
      let probes = m :: probes in
      if not m.Convergence.converged then
        Error
          (Printf.sprintf "CCA did not converge at rate %.0f bytes/s — not \
                           delay-convergent at this rate" rate)
      else begin
        (* Check this probe against every earlier one: buckets catch pairs
           within the same epsilon-cell, and we also accept any pair whose
           d_max gap is directly below epsilon (buckets can split a close
           pair across a boundary). *)
        let close =
          List.find_opt
            (fun (b, prev) ->
              b = bucket_of m
              || Float.abs (prev.Convergence.d_max -. m.Convergence.d_max) < epsilon)
            seen
        in
        match close with
        | Some (_, prev) ->
            Ok
              {
                c1 = prev.Convergence.rate;
                c2 = m.Convergence.rate;
                m1 = prev;
                m2 = m;
                epsilon;
                gap = Float.abs (prev.Convergence.d_max -. m.Convergence.d_max);
                probes = List.rev probes;
              }
        | None -> scan (i + 1) ((bucket_of m, m) :: seen) probes
      end
    end
  in
  scan 0 [] []
