(** Theorem 3: in the "strong" model (adversary also controls the link
    rate), every deterministic, f-efficient, delay-bounding CCA starves.

    Constructive iteration from Appendix B: let d_1(t) be the queueing
    delay of the CCA alone on an ideal link of rate lambda; build traces
    d_{n+1}(t) = max(0, d_n(t) - D).  Each trace is imposed on the flow
    with a delay controller (the strong-model adversary can create any
    queue trajectory by varying the rate).  Throughputs x_n grow as the
    delays shrink; within ceil(max d_1 / D) steps either two consecutive
    traces differ by more than s — giving a two-flow starvation scenario
    where one flow's packets get +D of non-congestive delay and the
    other's get 0 — or the delay hits 0 and f-efficiency forces the
    throughput ratio above s anyway. *)

type step = {
  index : int;
  throughput : float;  (** bytes/s on this trace *)
  max_delay : float;  (** sup of the imposed queueing delay *)
}

type outcome = {
  steps : step list;
  witness : (int * int) option;
      (** indices (n, n+1) of consecutive traces whose throughput ratio
          exceeds s — the starvation pair *)
  ratio : float;  (** largest consecutive ratio observed *)
  target_s : float;
}

val run :
  make_cca:(unit -> Cca.t) ->
  lambda:float ->
  rm:float ->
  big_d:float ->
  s:float ->
  ?duration:float ->
  ?max_steps:int ->
  ?seed:int ->
  unit ->
  outcome
(** [lambda] is the initial ideal-link rate (bytes/s); [big_d] the model's
    D.  The fast link used to impose the traces is sized automatically. *)
