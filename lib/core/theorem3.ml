type step = {
  index : int;
  throughput : float;
  max_delay : float;
}

type outcome = {
  steps : step list;
  witness : (int * int) option;
  ratio : float;
  target_s : float;
}

let run ~make_cca ~lambda ~rm ~big_d ~s ?duration ?(max_steps = 12) ?(seed = 42) () =
  let base = Convergence.measure ~make_cca ~rate:lambda ~rm ?duration ~seed () in
  let duration = base.Convergence.duration in
  (* d_1: queueing component of the recorded trajectory (RTT minus floor). *)
  let by_send = Theorem1.by_send_time base.Convergence.rtt in
  let d1 = Sim.Series.map (fun rtt -> Float.max 0. (rtt -. rm)) by_send in
  let fast_rate = lambda *. 1000. in
  (* Impose trace d_n with a controller on a link fast enough to keep its
     own queue negligible. *)
  let run_trace d_n =
    let q_target = Theorem1.target_of_series d_n in
    let target tau = rm +. q_target tau in
    let ctrl = Emulation.make_controller ~target ~time_shift:0. () in
    let cfg =
      Sim.Network.config
        ~rate:(Sim.Link.Constant fast_rate)
        ~rm ~seed ~duration
        [
          (* The strong model has no jitter bound; the controller plays the
             role of the rate-varying adversary. *)
          Sim.Network.flow ~jitter:ctrl.Emulation.policy ~jitter_bound:infinity
            (make_cca ());
        ]
    in
    let net = Sim.Network.run_config cfg in
    (* Tail half only: the additive climb toward the trace's equilibrium
       rate is a transient the theorem's long-run throughputs exclude. *)
    Sim.Network.throughput net ~flow:0 ~t0:(duration /. 2.) ~t1:duration
  in
  let max_of series =
    Array.fold_left Float.max 0. (Sim.Series.values series)
  in
  let rec iterate n d_n acc =
    let x_n = run_trace d_n in
    let step = { index = n; throughput = x_n; max_delay = max_of d_n } in
    let acc = step :: acc in
    if n >= max_steps || step.max_delay <= 0. then List.rev acc
    else begin
      let d_next = Sim.Series.map (fun d -> Float.max 0. (d -. big_d)) d_n in
      iterate (n + 1) d_next acc
    end
  in
  let steps = iterate 1 d1 [] in
  let rec best_pair = function
    | a :: (b :: _ as rest) ->
        let r = if a.throughput <= 0. then infinity else b.throughput /. a.throughput in
        let w, best = best_pair rest in
        if r >= best then (Some (a.index, b.index), r) else (w, best)
    | _ -> (None, 0.)
  in
  let witness, ratio = best_pair steps in
  let witness = if ratio >= s then witness else None in
  { steps; witness; ratio; target_s = s }
