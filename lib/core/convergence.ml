type measurement = {
  cca_name : string;
  rate : float;
  rm : float;
  duration : float;
  converged : bool;
  t_converge : float;
  d_min : float;
  d_max : float;
  delta : float;
  throughput : float;
  efficiency : float;
  rtt : Sim.Series.t;
  rate_trace : Sim.Series.t;
}

let measure ~make_cca ~rate ~rm ?duration ?(tail_frac = 0.4) ?(band_pad_frac = 0.02)
    ?(seed = 42) () =
  let cca = make_cca () in
  let duration =
    match duration with Some d -> d | None -> Float.max 30. (400. *. rm)
  in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm ~seed ~duration
      [ Sim.Network.flow cca ]
  in
  let net = Sim.Network.run_config cfg in
  let flow = (Sim.Network.flows net).(0) in
  let rtt = Sim.Flow.rtt_series flow in
  let tail0 = (1. -. tail_frac) *. duration in
  let band = Sim.Series.min_max_in rtt ~t0:tail0 ~t1:duration in
  match band with
  | None ->
      {
        cca_name = cca.Cca.name;
        rate;
        rm;
        duration;
        converged = false;
        t_converge = nan;
        d_min = nan;
        d_max = nan;
        delta = nan;
        throughput = 0.;
        efficiency = 0.;
        rtt;
        rate_trace = Sim.Flow.rate_series flow ~window:(4. *. rm);
      }
  | Some (lo, hi) ->
      let pad = Float.max (band_pad_frac *. (hi -. lo)) 1e-5 in
      let lo' = lo -. pad and hi' = hi +. pad in
      (* Earliest time after which every sample stays inside the padded
         band: scan from the end for the last out-of-band sample. *)
      let times = Sim.Series.times rtt and values = Sim.Series.values rtt in
      let n = Array.length times in
      let t_converge = ref 0. in
      (try
         for i = n - 1 downto 0 do
           if values.(i) < lo' || values.(i) > hi' then begin
             t_converge := times.(i);
             raise Exit
           end
         done
       with Exit -> ());
      let throughput = Sim.Flow.throughput flow ~t0:tail0 ~t1:duration in
      (* A band measured over a monotone drift looks "entered" exactly at
         the tail boundary; require the band itself to be stable across
         the two halves of the tail window. *)
      let stable =
        let mid = (tail0 +. duration) /. 2. in
        match
          ( Sim.Series.min_max_in rtt ~t0:tail0 ~t1:mid,
            Sim.Series.min_max_in rtt ~t0:mid ~t1:duration )
        with
        | Some (lo1, hi1), Some (lo2, hi2) ->
            let drift = Float.max (Float.abs (hi2 -. hi1)) (Float.abs (lo2 -. lo1)) in
            drift <= Float.max (0.5 *. (hi -. lo)) (Float.max pad 1e-4)
        | _ -> false
      in
      {
        cca_name = cca.Cca.name;
        rate;
        rm;
        duration;
        converged = !t_converge < tail0 && stable;
        t_converge = !t_converge;
        d_min = lo;
        d_max = hi;
        delta = hi -. lo;
        throughput;
        efficiency = throughput /. rate;
        rtt;
        rate_trace = Sim.Flow.rate_series flow ~window:(4. *. rm);
      }

let is_delay_convergent ~make_cca ~rates ~rm ?duration ?seed () =
  let ms =
    List.map (fun rate -> measure ~make_cca ~rate ~rm ?duration ?seed ()) rates
  in
  let all = List.for_all (fun m -> m.converged) ms in
  let sup f = List.fold_left (fun acc m -> Float.max acc (f m)) 0. ms in
  (all, sup (fun m -> m.d_max), sup (fun m -> m.delta))
