(** Measurement-ambiguity analysis (§6.2) and the bounded-rate-range
    figure of merit (§6.3).

    With jitter bound D, a measured RTT d only pins the congestive part to
    the window [max(0, d - D), d] — two D-sized blocks in the discretized
    mental model of §6.2.  A rate-delay curve avoids s-unfairness on
    [mu-, mu+] when rates s apart map to delays more than D apart; §6.3
    derives the resulting supported rate range for the Vegas family
    (Eq. 1, linear in Rmax/D) and for the paper's exponential curve
    (Eq. 2, exponential: s^((Rmax - Rm - D)/D)). *)

val blocks : d:float -> jitter:float -> int * int
(** The (lowest, highest) D-sized block index the congestive delay + Rm of
    a measured RTT [d] can lie in. *)

val distinguishable : d1:float -> d2:float -> jitter:float -> bool
(** True when two measured delays cannot be explained by the same
    congestive state, i.e. their ambiguity windows do not overlap. *)

val vegas_mu_plus : alpha_bytes:float -> jitter:float -> s:float -> float
(** Eq. 1 precursor: the largest rate (bytes/s) at which the Vegas-family
    curve still separates mu from s*mu by more than D:
    [alpha / D * (1 - 1/s)]. *)

val vegas_range : rm:float -> rmax:float -> jitter:float -> s:float -> float
(** Eq. 1: mu+/mu- = (Rmax - Rm)/D * (1 - 1/s). *)

val exponential_range : rm:float -> rmax:float -> jitter:float -> s:float -> float
(** §6.3: mu+/mu- = s^((Rmax - Rm - D)/D). *)

type merit_row = {
  jitter : float;
  s : float;
  rmax : float;
  rm : float;
  vegas : float;
  exponential : float;
}

val merit_table :
  rm:float -> rmax:float -> jitters:float list -> ss:float list -> merit_row list
(** The §6.3 comparison grid (the paper's example: D = 10 ms, Rmax = 100 ms,
    s = 2 gives ~2^10; s = 4 gives ~2^20). *)
