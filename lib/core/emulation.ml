type check = {
  samples : int;
  violations : int;
  eta_min : float;
  eta_max : float;
  d_star : Sim.Series.t;
}

let d_star_constant ~delta_max ~epsilon = delta_max +. epsilon

let d_star_at ~c1 ~c2 ~d1 ~d2 ~delta_max ~epsilon =
  (((c1 *. d1) +. (c2 *. d2)) /. (c1 +. c2)) -. d_star_constant ~delta_max ~epsilon

let verify ~c1 ~c2 ~d1 ~d2 ~delta_max ~epsilon ~t0 ~t1 ~dt =
  let big_d = (2. *. delta_max) +. (2. *. epsilon) in
  let star = Sim.Series.create ~name:"d_star" () in
  let samples = ref 0 and violations = ref 0 in
  let eta_min = ref infinity and eta_max = ref neg_infinity in
  let t = ref t0 in
  while !t <= t1 +. 1e-12 do
    (match (Sim.Series.value_at d1 !t, Sim.Series.value_at d2 !t) with
    | Some v1, Some v2 ->
        let ds = d_star_at ~c1 ~c2 ~d1:v1 ~d2:v2 ~delta_max ~epsilon in
        Sim.Series.add star ~time:!t ds;
        List.iter
          (fun v ->
            let eta = v -. ds in
            incr samples;
            if eta < !eta_min then eta_min := eta;
            if eta > !eta_max then eta_max := eta;
            if eta < -1e-9 || eta > big_d +. 1e-9 then incr violations)
          [ v1; v2 ]
    | _ -> ());
    t := !t +. dt
  done;
  {
    samples = !samples;
    violations = !violations;
    eta_min = !eta_min;
    eta_max = !eta_max;
    d_star = star;
  }

type controller = {
  policy : Sim.Jitter.policy;
  requested : Sim.Series.t;
}

let make_controller ~target ~time_shift () =
  let requested = Sim.Series.create ~name:"eta_requested" () in
  let last_logged = ref neg_infinity in
  let policy =
    Sim.Jitter.Controller
      (fun (req : Sim.Jitter.request) ->
        let wanted_rtt = target (req.sent +. time_shift) in
        let eta = req.sent +. wanted_rtt -. req.arrival in
        (* ACKs may be processed out of send order only across flows; within
           a flow sends are ordered, so the series stays monotone.  Guard
           anyway against coalesced batches sharing a send time. *)
        if req.sent > !last_logged then begin
          Sim.Series.add requested ~time:req.sent eta;
          last_logged := req.sent
        end;
        eta)
  in
  { policy; requested }

let initial_queue_bytes ~c1 ~c2 ~d1_0 ~d2_0 ~delta_max ~epsilon ~rm =
  let ds0 = d_star_at ~c1 ~c2 ~d1:d1_0 ~d2:d2_0 ~delta_max ~epsilon in
  let backlog = (ds0 -. rm) *. (c1 +. c2) in
  if backlog <= 0. then 0 else int_of_float (Float.round backlog)
