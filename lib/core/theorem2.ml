type point = {
  fast_rate : float;
  throughput : float;
  utilization : float;
  jitter_violations : int;
  settled_violations : int;
}

type outcome = {
  base : Convergence.measurement;
  big_d : float;
  points : point list;
}

let run ~make_cca ~rate ~rm ~multipliers ?duration ?(seed = 42) () =
  let base = Convergence.measure ~make_cca ~rate ~rm ?duration ~seed () in
  let duration = base.Convergence.duration in
  let d_by_send = Theorem1.by_send_time base.Convergence.rtt in
  let target = Theorem1.target_of_series d_by_send in
  (* Jitter budget: everything above the propagation floor must fit,
     including the slow-start overshoot before convergence. *)
  let d_sup =
    Array.fold_left Float.max 0. (Sim.Series.values base.Convergence.rtt)
  in
  let big_d = Float.max 0. (d_sup -. rm) +. 1e-4 in
  let points =
    List.map
      (fun mult ->
        let fast_rate = rate *. mult in
        let ctrl = Emulation.make_controller ~target ~time_shift:0. () in
        let cfg =
          Sim.Network.config
            ~rate:(Sim.Link.Constant fast_rate)
            ~rm ~seed ~duration
            [
              Sim.Network.flow ~jitter:ctrl.Emulation.policy ~jitter_bound:big_d
                (make_cca ());
            ]
        in
        let net = Sim.Network.run_config cfg in
        let throughput = (Sim.Network.throughputs net ()).(0) in
        let settle = Float.max base.Convergence.t_converge (4. *. rm) in
        let settled_violations =
          Array.fold_left ( + ) 0
            (Array.map2
               (fun t eta ->
                 if t >= settle && (eta < -1e-9 || eta > big_d +. 1e-9) then 1 else 0)
               (Sim.Series.times ctrl.Emulation.requested)
               (Sim.Series.values ctrl.Emulation.requested))
        in
        {
          fast_rate;
          throughput;
          utilization = throughput /. fast_rate;
          jitter_violations = Sim.Jitter.violations (Sim.Network.jitters net).(0);
          settled_violations;
        })
      multipliers
  in
  { base; big_d; points }
