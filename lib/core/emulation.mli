(** Step 3 of the Theorem 1 proof: delay-trajectory emulation.

    Given the single-flow delay trajectories d1(t), d2(t) that a CCA
    produced alone on ideal links of rates C1 and C2, the construction runs
    both flows on one shared link of rate C1+C2 and chooses each flow's
    non-congestive delay eta_i(t) so that flow i observes exactly d_i(t).
    The shared queue then contributes (Appendix A, Eq. 5)

    d*(t) = (C1 d1(t) + C2 d2(t)) / (C1 + C2) - (delta_max + epsilon)

    and eta_i(t) = d_i(t) - d*(t) must stay inside [0, D] with
    D = 2 delta_max + 2 epsilon.  This module computes d*, the eta
    schedules, verifies the bounds analytically on the recorded
    trajectories, and builds the online jitter controllers that impose the
    trajectories inside the 2-flow simulation. *)

type check = {
  samples : int;
  violations : int;  (** grid points where eta fell outside [0, D] *)
  eta_min : float;
  eta_max : float;
  d_star : Sim.Series.t;  (** the Eq. 5 trajectory, for the Figure 6 plot *)
}

val d_star_constant : delta_max:float -> epsilon:float -> float
(** The constant subtracted in Eq. 5. *)

val d_star_at :
  c1:float -> c2:float -> d1:float -> d2:float -> delta_max:float ->
  epsilon:float -> float
(** Pointwise Eq. 5. *)

val verify :
  c1:float ->
  c2:float ->
  d1:Sim.Series.t ->
  d2:Sim.Series.t ->
  delta_max:float ->
  epsilon:float ->
  t0:float ->
  t1:float ->
  dt:float ->
  check
(** Analytic bound check of both eta trajectories over a uniform grid.
    [d1]/[d2] are RTT-vs-send-time series from the single-flow runs. *)

(** Online controller state for one flow of the 2-flow scenario. *)
type controller = {
  policy : Sim.Jitter.policy;
      (** plug into the flow's jitter element; targets the recorded
          trajectory by send time *)
  requested : Sim.Series.t;  (** (send time, eta requested), for debugging *)
}

val make_controller :
  target:(float -> float) ->
  time_shift:float ->
  unit ->
  controller
(** [target tau] is the RTT the flow must observe for a packet sent at
    (2-flow scenario) time tau; [time_shift] maps scenario time to recorded
    trajectory time (tau_recorded = tau + time_shift).  The controller
    computes eta = sent + target(sent) - arrival online, so the emulation
    is exact regardless of what the shared queue actually does; the jitter
    element clamps and counts any bound violation. *)

val initial_queue_bytes :
  c1:float -> c2:float -> d1_0:float -> d2_0:float -> delta_max:float ->
  epsilon:float -> rm:float -> int
(** Bytes of phantom backlog that set the shared queue's initial delay to
    d*(0) - Rm (Appendix A's choice of initial conditions); 0 if d*(0)
    does not exceed Rm. *)
