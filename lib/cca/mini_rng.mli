(** Minimal deterministic PRNG for CCAs that randomize probe ordering
    (PCC's randomized controlled trials, BBR's probe phase).  Kept inside
    [lib/cca] so the CCA library stays dependency-free; the simulator has
    its own richer generator. *)

type t

val create : seed:int -> t
val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
