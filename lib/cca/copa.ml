type params = {
  delta : float;
  min_rtt_window : float;
  init_cwnd_packets : float;
  mss : int;
}

let default_params =
  {
    delta = 0.5;
    min_rtt_window = 100.;
    init_cwnd_packets = 4.;
    mss = Cca.default_mss;
  }

type direction = Up | Down | Unset

type state = {
  p : params;
  mutable cwnd : float; (* bytes *)
  min_rtt : Window.Extremum.t;
  standing : Window.Extremum.t;
  mutable srtt : float;
  mutable velocity : float;
  mutable direction : direction;
  mutable same_direction_rtts : int;
  mutable epoch_start : float;
  mutable cwnd_at_epoch : float;
  mutable slow_start : bool;
}

let mss_f s = float_of_int s.p.mss

let queue_delay s =
  match (Window.Extremum.get s.standing, Window.Extremum.get s.min_rtt) with
  | Some st, Some mn -> Float.max 0. (st -. mn)
  | _ -> 0.

let target_rate_pps s =
  let dq = queue_delay s in
  if dq <= 0. then infinity else 1. /. (s.p.delta *. dq)

let current_rate_pps s =
  match Window.Extremum.get s.standing with
  | Some st when st > 0. -> s.cwnd /. mss_f s /. st
  | _ -> 0.

let make ?(params = default_params) () =
  let s =
    {
      p = params;
      cwnd = params.init_cwnd_packets *. float_of_int params.mss;
      min_rtt = Window.Extremum.create_min ~window:params.min_rtt_window;
      standing = Window.Extremum.create_min ~window:0.05;
      srtt = 0.;
      velocity = 1.;
      direction = Unset;
      same_direction_rtts = 0;
      epoch_start = 0.;
      cwnd_at_epoch = 0.;
      slow_start = true;
    }
  in
  let per_rtt_velocity_update () =
    let dir = if s.cwnd > s.cwnd_at_epoch then Up else Down in
    (match (s.direction, dir) with
    | Up, Up | Down, Down ->
        s.same_direction_rtts <- s.same_direction_rtts + 1;
        if s.same_direction_rtts >= 3 then s.velocity <- Float.min (s.velocity *. 2.) 1e6
    | _ ->
        s.direction <- dir;
        s.same_direction_rtts <- 0;
        s.velocity <- 1.);
    s.direction <- dir;
    s.cwnd_at_epoch <- s.cwnd
  in
  let on_ack (a : Cca.ack_info) =
    let mss = mss_f s in
    Window.Extremum.push s.min_rtt ~time:a.now a.rtt;
    s.srtt <- (if s.srtt = 0. then a.rtt else (0.875 *. s.srtt) +. (0.125 *. a.rtt));
    Window.Extremum.set_window s.standing (Float.max (s.srtt /. 2.) 1e-4);
    Window.Extremum.push s.standing ~time:a.now a.rtt;
    let target = target_rate_pps s in
    let current = current_rate_pps s in
    if s.slow_start then begin
      if current < target then
        (* Double per RTT: +1 packet per acked packet. *)
        s.cwnd <- s.cwnd +. float_of_int a.acked_bytes
      else s.slow_start <- false
    end;
    if not s.slow_start then begin
      let cwnd_pkts = Float.max (s.cwnd /. mss) 1. in
      let step = s.velocity *. mss /. (s.p.delta *. cwnd_pkts) in
      if current <= target then s.cwnd <- s.cwnd +. step
      else s.cwnd <- s.cwnd -. step;
      s.cwnd <- Float.max s.cwnd (2. *. mss)
    end;
    if a.now -. s.epoch_start >= s.srtt && s.srtt > 0. then begin
      s.epoch_start <- a.now;
      per_rtt_velocity_update ()
    end
  in
  let on_loss (l : Cca.loss_info) =
    match l.kind with
    | `Timeout -> s.cwnd <- 2. *. mss_f s
    | `Dupack ->
        (* Copa's default mode halves the window on loss. *)
        s.cwnd <- Float.max (s.cwnd /. 2.) (2. *. mss_f s)
  in
  let pacing_rate () =
    match Window.Extremum.get s.standing with
    | Some st when st > 0. -> Some (2. *. s.cwnd /. st)
    | _ -> None
  in
  {
    Cca.name = "copa";
    on_ack;
    on_loss;
    on_send = (fun _ -> ());
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> s.cwnd);
    pacing_rate;
    inspect =
      (fun () ->
        [
          ("cwnd", s.cwnd);
          ("min_rtt", Window.Extremum.get_default s.min_rtt nan);
          ("standing_rtt", Window.Extremum.get_default s.standing nan);
          ("queue_delay", queue_delay s);
          ("velocity", s.velocity);
          ("target_pps", target_rate_pps s);
        ]);
  }

(* --- Columnar variant ---------------------------------------------------- *)

(* Same algorithm as [make] with the float state in one row of a shared
   {!Columns} arena.  Copa is only partially columnar: the two
   windowed-minimum deques are inherently variable-length and stay boxed
   per instance (they are bounded by the window's sample count and are
   cleared on reset/release).  Direction is encoded 0/1/2 =
   Unset/Up/Down, the same-direction RTT count and the slow-start flag
   as small exact floats, so every update below is bit-identical to the
   boxed path — asserted by the trace-equivalence qcheck property. *)

let nfields = 8
let f_cwnd = 0
let f_srtt = 1
let f_velocity = 2
let f_direction = 3 (* 0 = Unset, 1 = Up, 2 = Down *)
let f_same_dir = 4
let f_epoch_start = 5
let f_cwnd_at_epoch = 6
let f_slow_start = 7 (* 1 = slow start *)

let make_in ?(params = default_params) cols =
  if Columns.nfields cols <> nfields then
    invalid_arg "Copa.make_in: arena has the wrong number of fields";
  let mss = float_of_int params.mss in
  let r = Columns.alloc cols in
  let min_rtt = Window.Extremum.create_min ~window:params.min_rtt_window in
  let standing = Window.Extremum.create_min ~window:0.05 in
  let reset () =
    Columns.set cols r f_cwnd (params.init_cwnd_packets *. mss);
    Columns.set cols r f_srtt 0.;
    Columns.set cols r f_velocity 1.;
    Columns.set cols r f_direction 0.;
    Columns.set cols r f_same_dir 0.;
    Columns.set cols r f_epoch_start 0.;
    Columns.set cols r f_cwnd_at_epoch 0.;
    Columns.set cols r f_slow_start 1.;
    Window.Extremum.clear min_rtt;
    Window.Extremum.set_window min_rtt params.min_rtt_window;
    Window.Extremum.clear standing;
    Window.Extremum.set_window standing 0.05
  in
  reset ();
  let queue_delay () =
    match (Window.Extremum.get standing, Window.Extremum.get min_rtt) with
    | Some st, Some mn -> Float.max 0. (st -. mn)
    | _ -> 0.
  in
  let target_rate_pps () =
    let dq = queue_delay () in
    if dq <= 0. then infinity else 1. /. (params.delta *. dq)
  in
  let current_rate_pps () =
    match Window.Extremum.get standing with
    | Some st when st > 0. -> Columns.get cols r f_cwnd /. mss /. st
    | _ -> 0.
  in
  let per_rtt_velocity_update () =
    let dir =
      if Columns.get cols r f_cwnd > Columns.get cols r f_cwnd_at_epoch then 1.
      else 2.
    in
    (if Columns.get cols r f_direction = dir then begin
       let same = Columns.get cols r f_same_dir +. 1. in
       Columns.set cols r f_same_dir same;
       if same >= 3. then
         Columns.set cols r f_velocity
           (Float.min (Columns.get cols r f_velocity *. 2.) 1e6)
     end
     else begin
       Columns.set cols r f_direction dir;
       Columns.set cols r f_same_dir 0.;
       Columns.set cols r f_velocity 1.
     end);
    Columns.set cols r f_direction dir;
    Columns.set cols r f_cwnd_at_epoch (Columns.get cols r f_cwnd)
  in
  let on_ack (a : Cca.ack_info) =
    Window.Extremum.push min_rtt ~time:a.now a.rtt;
    let srtt0 = Columns.get cols r f_srtt in
    let srtt =
      if srtt0 = 0. then a.rtt else (0.875 *. srtt0) +. (0.125 *. a.rtt)
    in
    Columns.set cols r f_srtt srtt;
    Window.Extremum.set_window standing (Float.max (srtt /. 2.) 1e-4);
    Window.Extremum.push standing ~time:a.now a.rtt;
    let target = target_rate_pps () in
    let current = current_rate_pps () in
    if Columns.get cols r f_slow_start = 1. then begin
      if current < target then
        Columns.set cols r f_cwnd
          (Columns.get cols r f_cwnd +. float_of_int a.acked_bytes)
      else Columns.set cols r f_slow_start 0.
    end;
    if Columns.get cols r f_slow_start <> 1. then begin
      let cwnd = Columns.get cols r f_cwnd in
      let cwnd_pkts = Float.max (cwnd /. mss) 1. in
      let step =
        Columns.get cols r f_velocity *. mss /. (params.delta *. cwnd_pkts)
      in
      let cwnd = if current <= target then cwnd +. step else cwnd -. step in
      Columns.set cols r f_cwnd (Float.max cwnd (2. *. mss))
    end;
    if a.now -. Columns.get cols r f_epoch_start >= srtt && srtt > 0. then begin
      Columns.set cols r f_epoch_start a.now;
      per_rtt_velocity_update ()
    end
  in
  let on_loss (l : Cca.loss_info) =
    match l.kind with
    | `Timeout -> Columns.set cols r f_cwnd (2. *. mss)
    | `Dupack ->
        Columns.set cols r f_cwnd
          (Float.max (Columns.get cols r f_cwnd /. 2.) (2. *. mss))
  in
  let pacing_rate () =
    match Window.Extremum.get standing with
    | Some st when st > 0. -> Some (2. *. Columns.get cols r f_cwnd /. st)
    | _ -> None
  in
  let cca =
    {
      Cca.name = "copa";
      on_ack;
      on_loss;
      on_send = (fun _ -> ());
      on_timer = (fun _ -> ());
      next_timer = (fun () -> None);
      cwnd = (fun () -> Columns.get cols r f_cwnd);
      pacing_rate;
      inspect =
        (fun () ->
          [
            ("cwnd", Columns.get cols r f_cwnd);
            ("min_rtt", Window.Extremum.get_default min_rtt nan);
            ("standing_rtt", Window.Extremum.get_default standing nan);
            ("queue_delay", queue_delay ());
            ("velocity", Columns.get cols r f_velocity);
            ("target_pps", target_rate_pps ());
          ]);
    }
  in
  let release () =
    Window.Extremum.clear min_rtt;
    Window.Extremum.clear standing;
    Columns.free cols r
  in
  { Cca.cca; reset = Some reset; release }

let equilibrium_queue_delay p ~rate = float_of_int p.mss /. (p.delta *. rate)

let delay_band p ~rate ~rm =
  let dq = equilibrium_queue_delay p ~rate in
  (* Empirically Copa's velocity mechanism makes the queue oscillate over
     roughly 4 packets around the 1/delta-packet target (paper §2.2:
     "4 alpha / C for Copa"). *)
  let alpha = float_of_int p.mss /. rate in
  (rm +. Float.max 0. (dq -. (2. *. alpha)), rm +. dq +. (2. *. alpha))
