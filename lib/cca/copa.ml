type params = {
  delta : float;
  min_rtt_window : float;
  init_cwnd_packets : float;
  mss : int;
}

let default_params =
  {
    delta = 0.5;
    min_rtt_window = 100.;
    init_cwnd_packets = 4.;
    mss = Cca.default_mss;
  }

type direction = Up | Down | Unset

type state = {
  p : params;
  mutable cwnd : float; (* bytes *)
  min_rtt : Window.Extremum.t;
  standing : Window.Extremum.t;
  mutable srtt : float;
  mutable velocity : float;
  mutable direction : direction;
  mutable same_direction_rtts : int;
  mutable epoch_start : float;
  mutable cwnd_at_epoch : float;
  mutable slow_start : bool;
}

let mss_f s = float_of_int s.p.mss

let queue_delay s =
  match (Window.Extremum.get s.standing, Window.Extremum.get s.min_rtt) with
  | Some st, Some mn -> Float.max 0. (st -. mn)
  | _ -> 0.

let target_rate_pps s =
  let dq = queue_delay s in
  if dq <= 0. then infinity else 1. /. (s.p.delta *. dq)

let current_rate_pps s =
  match Window.Extremum.get s.standing with
  | Some st when st > 0. -> s.cwnd /. mss_f s /. st
  | _ -> 0.

let make ?(params = default_params) () =
  let s =
    {
      p = params;
      cwnd = params.init_cwnd_packets *. float_of_int params.mss;
      min_rtt = Window.Extremum.create_min ~window:params.min_rtt_window;
      standing = Window.Extremum.create_min ~window:0.05;
      srtt = 0.;
      velocity = 1.;
      direction = Unset;
      same_direction_rtts = 0;
      epoch_start = 0.;
      cwnd_at_epoch = 0.;
      slow_start = true;
    }
  in
  let per_rtt_velocity_update () =
    let dir = if s.cwnd > s.cwnd_at_epoch then Up else Down in
    (match (s.direction, dir) with
    | Up, Up | Down, Down ->
        s.same_direction_rtts <- s.same_direction_rtts + 1;
        if s.same_direction_rtts >= 3 then s.velocity <- Float.min (s.velocity *. 2.) 1e6
    | _ ->
        s.direction <- dir;
        s.same_direction_rtts <- 0;
        s.velocity <- 1.);
    s.direction <- dir;
    s.cwnd_at_epoch <- s.cwnd
  in
  let on_ack (a : Cca.ack_info) =
    let mss = mss_f s in
    Window.Extremum.push s.min_rtt ~time:a.now a.rtt;
    s.srtt <- (if s.srtt = 0. then a.rtt else (0.875 *. s.srtt) +. (0.125 *. a.rtt));
    Window.Extremum.set_window s.standing (Float.max (s.srtt /. 2.) 1e-4);
    Window.Extremum.push s.standing ~time:a.now a.rtt;
    let target = target_rate_pps s in
    let current = current_rate_pps s in
    if s.slow_start then begin
      if current < target then
        (* Double per RTT: +1 packet per acked packet. *)
        s.cwnd <- s.cwnd +. float_of_int a.acked_bytes
      else s.slow_start <- false
    end;
    if not s.slow_start then begin
      let cwnd_pkts = Float.max (s.cwnd /. mss) 1. in
      let step = s.velocity *. mss /. (s.p.delta *. cwnd_pkts) in
      if current <= target then s.cwnd <- s.cwnd +. step
      else s.cwnd <- s.cwnd -. step;
      s.cwnd <- Float.max s.cwnd (2. *. mss)
    end;
    if a.now -. s.epoch_start >= s.srtt && s.srtt > 0. then begin
      s.epoch_start <- a.now;
      per_rtt_velocity_update ()
    end
  in
  let on_loss (l : Cca.loss_info) =
    match l.kind with
    | `Timeout -> s.cwnd <- 2. *. mss_f s
    | `Dupack ->
        (* Copa's default mode halves the window on loss. *)
        s.cwnd <- Float.max (s.cwnd /. 2.) (2. *. mss_f s)
  in
  let pacing_rate () =
    match Window.Extremum.get s.standing with
    | Some st when st > 0. -> Some (2. *. s.cwnd /. st)
    | _ -> None
  in
  {
    Cca.name = "copa";
    on_ack;
    on_loss;
    on_send = (fun _ -> ());
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> s.cwnd);
    pacing_rate;
    inspect =
      (fun () ->
        [
          ("cwnd", s.cwnd);
          ("min_rtt", Window.Extremum.get_default s.min_rtt nan);
          ("standing_rtt", Window.Extremum.get_default s.standing nan);
          ("queue_delay", queue_delay s);
          ("velocity", s.velocity);
          ("target_pps", target_rate_pps s);
        ]);
  }

let equilibrium_queue_delay p ~rate = float_of_int p.mss /. (p.delta *. rate)

let delay_band p ~rate ~rm =
  let dq = equilibrium_queue_delay p ~rate in
  (* Empirically Copa's velocity mechanism makes the queue oscillate over
     roughly 4 packets around the 1/delta-packet target (paper §2.2:
     "4 alpha / C for Copa"). *)
  let alpha = float_of_int p.mss /. rate in
  (rm +. Float.max 0. (dq -. (2. *. alpha)), rm +. dq +. (2. *. alpha))
