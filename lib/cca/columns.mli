(** Flat column arena for per-flow CCA state.

    The columnar layout contract for {!Cca} implementations: all float
    state of one CCA kind lives in one unboxed [float array], one row of
    [nfields] consecutive cells per instance.  Rows are allocated with
    {!alloc}, recycled through a free list with {!free}, and accessed by
    (row, field) — every access is an unboxed float-array load or store.

    Constructors like [Reno.make_in] take an arena and return a
    {!Cca.instance} whose closures hold only the arena and a row index;
    releasing the instance returns the row to the free list, so a
    churning million-flow population's CCA state footprint is bounded by
    peak concurrency, not population size.

    The backing array is replaced on growth: cache [t] (and go through
    {!get}/{!set}), never the array itself, across events. *)

type t

val create : ?capacity:int -> nfields:int -> unit -> t
(** Arena with rows of [nfields] float cells; [capacity] (default 16)
    pre-sizes the backing array in rows.
    @raise Invalid_argument if [nfields <= 0]. *)

val nfields : t -> int

val alloc : t -> int
(** Pop a recycled row (or extend the arena) and zero-fill it.  Returns
    the row index. *)

val free : t -> int -> unit
(** Return a row to the free list.  The caller must not touch the row
    afterwards; {!alloc} will hand it out again zeroed.
    @raise Invalid_argument on an index never allocated. *)

val rows : t -> int
(** Rows ever allocated — the high-water mark, free or live. *)

val live : t -> int
(** Rows currently allocated and not freed. *)

val capacity : t -> int
(** Rows the backing array can hold before the next growth. *)

val get : t -> int -> int -> float
(** [get t row field]. *)

val set : t -> int -> int -> float -> unit
(** [set t row field v]. *)
