type params = {
  alpha_packets : float;
  gamma : float;
  init_cwnd_packets : float;
  mss : int;
}

let default_params =
  { alpha_packets = 10.; gamma = 0.5; init_cwnd_packets = 4.; mss = Cca.default_mss }

type state = {
  p : params;
  mutable cwnd : float; (* bytes *)
  mutable base_rtt : float;
  mutable last_rtt : float;
  mutable epoch_start : float;
}

let per_rtt_update s =
  if s.last_rtt > 0. && s.base_rtt < infinity then begin
    let mss = float_of_int s.p.mss in
    let target =
      (s.base_rtt /. s.last_rtt *. s.cwnd) +. (s.p.alpha_packets *. mss)
    in
    let next = ((1. -. s.p.gamma) *. s.cwnd) +. (s.p.gamma *. target) in
    s.cwnd <- Float.max (Float.min (2. *. s.cwnd) next) (2. *. mss)
  end

let make ?(params = default_params) () =
  let s =
    {
      p = params;
      cwnd = params.init_cwnd_packets *. float_of_int params.mss;
      base_rtt = infinity;
      last_rtt = 0.;
      epoch_start = 0.;
    }
  in
  let on_ack (a : Cca.ack_info) =
    if a.rtt < s.base_rtt then s.base_rtt <- a.rtt;
    s.last_rtt <- a.rtt;
    if a.now -. s.epoch_start >= a.rtt then begin
      s.epoch_start <- a.now;
      per_rtt_update s
    end
  in
  let on_loss (l : Cca.loss_info) =
    match l.kind with
    | `Timeout -> s.cwnd <- 2. *. float_of_int s.p.mss
    | `Dupack -> s.cwnd <- Float.max (s.cwnd /. 2.) (2. *. float_of_int s.p.mss)
  in
  {
    Cca.name = "fast";
    on_ack;
    on_loss;
    on_send = (fun _ -> ());
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    inspect =
      (fun () ->
        [ ("cwnd", s.cwnd); ("base_rtt", s.base_rtt); ("last_rtt", s.last_rtt) ]);
  }

let equilibrium_rtt p ~rate ~rm =
  rm +. (p.alpha_packets *. float_of_int p.mss /. rate)
