(** Copa (Arun & Balakrishnan, NSDI 2018), default mode.

    Copa targets the sending rate [1 / (delta * dq)] packets/s, where [dq]
    is the queueing delay estimated as [standing RTT - min RTT]: the
    standing RTT is the minimum over a recent half-RTT window, the min RTT
    the minimum over a long window.  The window moves toward the target by
    [velocity / (delta * cwnd)] packets per ACK, with the velocity doubling
    after three consecutive RTTs moving in one direction.

    Equilibrium queueing delay for a single flow on rate [C] is
    [mss / (delta * C)] seconds, oscillating over a band of roughly
    [4 * mss / C] — the paper's "[4 alpha / C] for Copa" (§2.2).

    The long-window min-RTT estimate is the state the §5.1 experiment
    poisons: one packet with an RTT 1 ms below the true propagation delay
    makes Copa perceive a phantom standing queue forever (within the
    window), collapsing its rate. *)

type params = {
  delta : float;  (** packets of queueing "price" (default 0.5) *)
  min_rtt_window : float;  (** seconds of memory for the min filter (default 100) *)
  init_cwnd_packets : float;
  mss : int;
}

val default_params : params
val make : ?params:params -> unit -> Cca.t

val nfields : int
(** Float cells per instance in the columnar layout. *)

val make_in : ?params:params -> Columns.t -> Cca.instance
(** Columnar constructor: identical algorithm to {!make} with the float
    state in one arena row ({!nfields} fields).  Copa is partially
    columnar — the two windowed-minimum deques stay boxed per instance
    and are cleared on reset/release.  Trace-equivalent to {!make} —
    asserted by a qcheck property. *)

val equilibrium_queue_delay : params -> rate:float -> float
(** [mss / (delta * C)] seconds. *)

val delay_band : params -> rate:float -> rm:float -> float * float
(** Analytic (d_min, d_max) after convergence on an ideal path — the Copa
    panel of Figure 3. *)
