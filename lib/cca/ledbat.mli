(** LEDBAT (RFC 6817), the min-filter delay CCA the paper cites in §2.2.

    LEDBAT targets a fixed queueing delay [target]: each RTT it nudges the
    window by [gain * (target - queueing_delay) / target] segments, where
    the queueing delay is the current one-way-delay estimate minus a base
    delay tracked as a minimum over a long history.  Loss halves the
    window.

    On an ideal path it converges to [target] of standing queue, so its
    rate-delay map is the horizontal line [Rm + target + mss/C]:
    delta(C) -> 0 and the delay band does not shrink with C.  Because the
    base-delay minimum is poisoned exactly like Copa's (§5.1), the same
    1 ms trick collapses it — another delay-convergent victim of
    Theorem 1's mechanism. *)

type params = {
  target : float;  (** queueing-delay target, seconds (RFC: 100 ms;
                       default here 25 ms, a modern choice) *)
  gain : float;  (** default 1 *)
  base_history : float;  (** base-delay memory, seconds (default 100) *)
  init_cwnd_packets : float;
  mss : int;
}

val default_params : params
val make : ?params:params -> unit -> Cca.t

val equilibrium_rtt : params -> rate:float -> rm:float -> float
(** [Rm + target + mss/C]. *)
