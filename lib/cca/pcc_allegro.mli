(** PCC Allegro (Dong et al., NSDI 2015): loss-threshold utility with
    randomized controlled trials.

    Utility: [u(x) = x * (1 - L) * sigmoid(alpha (L - 0.05)) - x * L]
    (x in Mbit/s, L the loss fraction, sigmoid(y) = 1/(1+e^y), alpha=100).
    Below 5% loss the utility grows with rate, so Allegro pushes to full
    utilization regardless of random loss under the threshold; above it the
    utility collapses.

    Control loop: in the decision state the sender runs four monitor
    intervals — two at [rate (1+eps)] and two at [rate (1-eps)] in random
    order.  Only a consistent verdict (both high-rate MIs beat both
    low-rate MIs, or vice versa) moves the rate; otherwise [eps] grows and
    the trial repeats.  A won trial enters the rate-adjusting state, moving
    in the winning direction with growing steps until utility drops.

    §5.4: the space of loss rates is much smaller than the space of rates,
    so when one of two flows sees even a small extra random loss it
    converges to a far lower rate — starvation, same shape as BBR's. *)

type params = {
  alpha : float;
      (** sigmoid steepness (default 50; the literature's 100 makes the
          cliff so sharp that per-MI binomial loss noise dominates the
          randomized trials at sub-second monitor intervals) *)
  loss_threshold : float;  (** default 0.05 *)
  eps0 : float;  (** initial probe amplitude (default 0.01) *)
  eps_max : float;  (** default 0.05 *)
  init_rate : float;  (** bytes/s *)
  min_rate : float;
  seed : int;
  mss : int;
}

val default_params : params
val make : ?params:params -> unit -> Cca.t

val utility : params -> rate_mbps:float -> loss:float -> float
