(** Algorithm 1 from §6.3 of the paper: a delay-convergent CCA whose
    rate-delay curve spaces rates more than [s] apart onto delays more than
    [d_jitter] apart, bounding unfairness to [s] for rates in
    [mu_minus, mu_plus] despite measurement ambiguity up to [d_jitter].

    Every [rm] seconds:
    {v
      if mu < mu_minus * s ** ((rmax - (d - rm)) / d_jitter)
      then mu <- mu + a           (additive increase)
      else mu <- b * mu           (multiplicative decrease)
    v}
    where [d] is the latest measured RTT.  AIMD (not Vegas-style AIAD) is
    deliberate — the paper reports CCAC only verified fairness with MD —
    and the rate moves by the same amount each RTT regardless of ACK count.

    The algorithm assumes oracular knowledge of [rm], as the paper grants. *)

type params = {
  rm : float;  (** known propagation RTT, seconds *)
  rmax : float;  (** maximum tolerable queueing delay, seconds *)
  d_jitter : float;  (** designed-for non-congestive jitter bound D *)
  s : float;  (** tolerated unfairness ratio (> 1) *)
  mu_minus : float;  (** minimum supported rate, bytes/s *)
  a : float;  (** additive step, bytes/s per RTT *)
  b : float;  (** multiplicative decrease in (0,1) *)
  init_rate : float;  (** bytes/s *)
  mss : int;
}

val default_params : params
(** D = 10 ms, s = 2, rmax = 100 ms, rm = 50 ms — the paper's running
    example supporting a ~2^10 rate range. *)

val make : ?params:params -> unit -> Cca.t

val target_rate : params -> d:float -> float
(** The rate-delay curve mu(d) = mu_minus * s^((rmax - (d - rm)) / D). *)

val mu_plus : params -> float
(** Maximum supported rate: mu(rm + D), per Theorem 2's full-utilization
    requirement of at least D of standing queue. *)

val rate_range : params -> float
(** Figure of merit mu+/mu- = s^((rmax - D) / D). *)
