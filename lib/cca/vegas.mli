(** TCP Vegas (Brakmo et al., SIGCOMM 1994).

    Once per RTT, estimates the number of its own packets sitting in the
    bottleneck queue as [cwnd * (rtt - base_rtt) / rtt] and additively
    increases (below [alpha]) or decreases (above [beta]) the window by one
    segment, holding otherwise.  Equilibrium: between [alpha] and [beta]
    packets queued, i.e. the rate-delay map of Figure 3 (left) with
    delta(C) = 0.

    The [base_rtt] is the minimum RTT ever observed — the estimate the
    paper's §5.1 scenarios poison with one under-delayed packet. *)

type params = {
  alpha : float;  (** lower bound on queued packets (default 2) *)
  beta : float;  (** upper bound on queued packets (default 4) *)
  gamma : float;  (** slow-start exit threshold in queued packets (default 1) *)
  init_cwnd_packets : float;  (** default 4 *)
  mss : int;
}

val default_params : params

val make : ?params:params -> unit -> Cca.t

val nfields : int
(** Float cells per instance in the columnar layout. *)

val make_in : ?params:params -> Columns.t -> Cca.instance
(** Columnar constructor: identical algorithm to {!make} with all the
    float state (booleans as 0./1. cells, [base_rtt] starting at
    [infinity]) in one arena row of {!nfields} fields.  Bitwise
    trace-equivalent to {!make} — asserted by a qcheck property — so
    Vegas can join the million-flow census cells. *)

val equilibrium_rtt : params -> rate:float -> rm:float -> float
(** Analytic equilibrium RTT on an ideal path of the given rate: the §4.1
    formula [Rm + alpha_pkts * mss / C] (using the alpha/beta midpoint). *)
