module Extremum = struct
  (* Standard sliding-window-extremum monotonic deque, stored as a list with
     the newest sample first.  Invariant: values are strictly "improving"
     toward the tail (for a min filter, the tail holds the smallest value),
     so the current extremum is the last element.  Window sizes in this
     code base hold at most a few thousand samples, so O(length) tail
     eviction is fine. *)
  type entry = { time : float; value : float }

  type t = {
    mutable window : float;
    dominates : float -> float -> bool; (* [dominates new old]: old entry is useless *)
    mutable items : entry list; (* newest first *)
  }

  let create_min ~window =
    { window; dominates = (fun n o -> n <= o); items = [] }

  let create_max ~window =
    { window; dominates = (fun n o -> n >= o); items = [] }

  let evict t ~time =
    let cutoff = time -. t.window in
    t.items <- List.filter (fun e -> e.time >= cutoff) t.items

  let push t ~time value =
    evict t ~time;
    let rec drop_dominated = function
      | e :: rest when t.dominates value e.value -> drop_dominated rest
      | l -> l
    in
    t.items <- { time; value } :: drop_dominated t.items

  let get t =
    match t.items with
    | [] -> None
    | items ->
        let rec last = function
          | [ e ] -> e.value
          | _ :: rest -> last rest
          | [] -> assert false
        in
        Some (last items)

  let get_default t d = match get t with Some v -> v | None -> d
  let set_window t w = t.window <- w
  let clear t = t.items <- []
end

module Ewma = struct
  type t = { gain : float; mutable value : float option }

  let create ~gain = { gain; value = None }

  let push t x =
    match t.value with
    | None -> t.value <- Some x
    | Some v -> t.value <- Some (((1. -. t.gain) *. v) +. (t.gain *. x))

  let get t = t.value
  let get_default t d = match t.value with Some v -> v | None -> d
end
