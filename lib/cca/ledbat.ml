type params = {
  target : float;
  gain : float;
  base_history : float;
  init_cwnd_packets : float;
  mss : int;
}

let default_params =
  {
    target = 0.025;
    gain = 1.;
    base_history = 100.;
    init_cwnd_packets = 4.;
    mss = Cca.default_mss;
  }

type state = {
  p : params;
  mutable cwnd : float;
  mutable slow_start : bool;
  base : Window.Extremum.t;
}

let make ?(params = default_params) () =
  let mss = float_of_int params.mss in
  let s =
    {
      p = params;
      cwnd = params.init_cwnd_packets *. mss;
      slow_start = true;
      base = Window.Extremum.create_min ~window:params.base_history;
    }
  in
  let on_ack (a : Cca.ack_info) =
    Window.Extremum.push s.base ~time:a.now a.rtt;
    let base = Window.Extremum.get_default s.base a.rtt in
    let queuing = Float.max 0. (a.rtt -. base) in
    if s.slow_start && queuing >= s.p.target then s.slow_start <- false;
    if s.slow_start then
      (* Standard slow start until the delay target is reached. *)
      s.cwnd <- s.cwnd +. float_of_int a.acked_bytes
    else begin
      let off_target = (s.p.target -. queuing) /. s.p.target in
      (* Per-ACK fraction of the per-RTT adjustment (byte counting). *)
      let bytes_ratio = float_of_int a.acked_bytes /. Float.max s.cwnd mss in
      s.cwnd <- s.cwnd +. (s.p.gain *. off_target *. bytes_ratio *. mss)
    end;
    s.cwnd <- Float.max s.cwnd (2. *. mss)
  in
  let on_loss (l : Cca.loss_info) =
    s.slow_start <- false;
    match l.kind with
    | `Timeout -> s.cwnd <- 2. *. mss
    | `Dupack -> s.cwnd <- Float.max (s.cwnd /. 2.) (2. *. mss)
  in
  {
    Cca.name = "ledbat";
    on_ack;
    on_loss;
    on_send = (fun _ -> ());
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    inspect =
      (fun () ->
        [
          ("cwnd", s.cwnd);
          ("base", Window.Extremum.get_default s.base nan);
          ("slow_start", if s.slow_start then 1. else 0.);
        ]);
  }

let equilibrium_rtt p ~rate ~rm =
  rm +. p.target +. (float_of_int p.mss /. rate)
