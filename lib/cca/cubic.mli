(** CUBIC (Ha, Rhee, Xu, 2008).

    After a loss the window is cut to [beta * w_max] and then grows along
    [w(t) = c (t - k)^3 + w_max] (in packets, t in seconds since the loss),
    where [k = cbrt (w_max (1 - beta) / c)].  A TCP-friendly lower bound
    keeps CUBIC at least as aggressive as Reno at small
    bandwidth-delay products.  Loss events within one RTT coalesce, as in
    {!Reno}. *)

type params = {
  c : float;  (** cubic scaling constant, packets/s^3 (default 0.4) *)
  beta : float;  (** multiplicative decrease (default 0.7) *)
  init_cwnd_packets : float;
  mss : int;
}

val default_params : params
val make : ?params:params -> unit -> Cca.t
