(* Flat column arena for per-flow CCA state.

   One arena holds the state of every live CCA instance of one kind in a
   single unboxed [float array]: row [r]'s fields occupy
   [r * nfields .. r * nfields + nfields - 1].  Reads and writes are
   unboxed float-array accesses — the same discipline as
   [Flow.Table] — so a quiesced flow's congestion state costs
   [nfields] floats of flat storage instead of a boxed record plus
   header, and a million-flow census keeps all CCA state in a handful
   of contiguous arrays.

   Rows are recycled through an explicit free list: [free] pushes a
   retired row onto a stack and [alloc] pops it before growing the
   arena, so steady-state flow churn allocates nothing and the arena's
   high-water mark tracks peak concurrency, not total population.

   Growth replaces [data], so CCA callbacks must re-read [t.data] (or go
   through {!get}/{!set}) on every event rather than caching the array
   across events.  Within one callback no allocation happens, so a
   single read of [t.data] per callback is safe. *)

type t = {
  nfields : int;
  mutable data : float array; (* row r, field f at r * nfields + f *)
  mutable rows : int; (* rows ever allocated (high-water mark) *)
  mutable free : int array; (* stack of retired row indices *)
  mutable nfree : int;
}

let create ?(capacity = 16) ~nfields () =
  if nfields <= 0 then invalid_arg "Columns.create: nfields must be positive";
  let capacity = max 1 capacity in
  {
    nfields;
    data = Array.make (capacity * nfields) 0.;
    rows = 0;
    free = [||];
    nfree = 0;
  }

let nfields t = t.nfields
let rows t = t.rows
let live t = t.rows - t.nfree
let capacity t = Array.length t.data / t.nfields

let alloc t =
  let r =
    if t.nfree > 0 then begin
      t.nfree <- t.nfree - 1;
      t.free.(t.nfree)
    end
    else begin
      let r = t.rows in
      if (r + 1) * t.nfields > Array.length t.data then begin
        let data = Array.make (2 * Array.length t.data) 0. in
        Array.blit t.data 0 data 0 (t.rows * t.nfields);
        t.data <- data
      end;
      t.rows <- r + 1;
      r
    end
  in
  Array.fill t.data (r * t.nfields) t.nfields 0.;
  r

let free t r =
  if r < 0 || r >= t.rows then invalid_arg "Columns.free: row out of range";
  if t.nfree = Array.length t.free then begin
    let cap = max 16 (2 * Array.length t.free) in
    let fr = Array.make cap 0 in
    Array.blit t.free 0 fr 0 t.nfree;
    t.free <- fr
  end;
  t.free.(t.nfree) <- r;
  t.nfree <- t.nfree + 1

let get t r f = t.data.((r * t.nfields) + f)
let set t r f v = t.data.((r * t.nfields) + f) <- v
