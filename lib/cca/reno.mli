(** TCP NewReno congestion avoidance (loss-based AIMD).

    Slow start to [ssthresh], then one segment of window growth per RTT
    (byte-counted).  A dup-ACK loss halves the window; a timeout resets it
    to one segment.  Losses within one RTT of a reduction are treated as
    part of the same congestion event (standard fast-recovery behavior),
    which is what bounds AIMD unfairness under bursty loss (§5.4). *)

type params = {
  init_cwnd_packets : float;
  initial_ssthresh : float;  (** bytes; [infinity] = slow start until loss *)
  mss : int;
}

val default_params : params
val make : ?params:params -> unit -> Cca.t
