(** TCP NewReno congestion avoidance (loss-based AIMD).

    Slow start to [ssthresh], then one segment of window growth per RTT
    (byte-counted).  A dup-ACK loss halves the window; a timeout resets it
    to one segment.  Losses within one RTT of a reduction are treated as
    part of the same congestion event (standard fast-recovery behavior),
    which is what bounds AIMD unfairness under bursty loss (§5.4). *)

type params = {
  init_cwnd_packets : float;
  initial_ssthresh : float;  (** bytes; [infinity] = slow start until loss *)
  mss : int;
}

val default_params : params
val make : ?params:params -> unit -> Cca.t

val nfields : int
(** Float cells per instance in the columnar layout. *)

val make_in : ?params:params -> Columns.t -> Cca.instance
(** Columnar constructor: identical algorithm to {!make}, with all state
    in one row of the given arena (which must have {!nfields} fields).
    The returned instance is resettable and its [release] frees the row.
    Trace-equivalent to {!make} — asserted by a qcheck property. *)
