type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int ((seed * 2654435761) lor 1) }

let next t =
  (* splitmix64 step *)
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.

let bool t = float t < 0.5
