(** PCC Vivace (Dong et al., NSDI 2018): online-learning rate control.

    Time is split into monitor intervals (MIs) of one smoothed RTT.  The
    sender runs probe pairs — one MI at [rate * (1 + eps)] and one at
    [rate * (1 - eps)], in random order — and evaluates each with the
    Vivace utility

    [u(x) = x^0.9 - b * x * max(0, dRTT/dt) - c * x * L]

    (x in Mbit/s, RTT gradient from a least-squares fit over the MI's RTT
    samples, L the loss fraction).  The rate then moves along the utility
    gradient with confidence amplification and a per-step change bound.

    On an ideal link this converges to full utilization with (near) zero
    standing queue, probing delay between [Rm] and about [1.05 Rm] —
    [delta_max = Rm / 20] (Figure 3, right).  The §5.3 experiment defeats
    it by quantizing one flow's ACK clock so that flow's RTT gradient and
    throughput measurements are garbage at sub-quantum resolution. *)

type params = {
  eps : float;  (** probe amplitude (default 0.05) *)
  throughput_exponent : float;  (** default 0.9 *)
  latency_coeff : float;  (** b (default 900) *)
  loss_coeff : float;  (** c (default 11.35) *)
  theta0 : float;  (** base gradient step, Mbit/s per utility unit (default 1) *)
  omega : float;  (** max relative rate change per decision (default 0.05) *)
  init_rate : float;  (** bytes/s (default 1 Mbit/s) *)
  min_rate : float;  (** bytes/s floor (default 64 kbit/s) *)
  seed : int;
  mss : int;
}

val default_params : params
val make : ?params:params -> unit -> Cca.t

val utility :
  params -> rate_mbps:float -> rtt_gradient:float -> loss:float -> float
(** The Vivace utility function, exposed for tests and analysis. *)
