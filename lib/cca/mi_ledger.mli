(** Monitor-interval accounting for PCC-style CCAs.

    PCC evaluates candidate rates over monitor intervals (MIs).  Getting
    this right requires attributing every ACK and loss to the MI in which
    the packet was *sent*, and computing an MI's utility only once its
    feedback is complete — otherwise losses caused by a high-rate MI land
    in the following interval and systematically reward rate increases
    (a runaway this code base reproduced before gaining this module).

    The ledger tracks open MIs, attributes samples by send time, and
    releases results when an MI's send window has closed and either all its
    packets are accounted for or a grace period has elapsed. *)

type result = {
  label : int;  (** caller's tag from {!begin_mi} *)
  rate : float;  (** commanded rate during the MI, bytes/s *)
  duration : float;  (** send-window length, seconds *)
  sent_bytes : int;
  acked_bytes : int;
  lost_bytes : int;
  rtt_samples : (float * float) list;  (** (ack time, rtt), oldest first *)
}

val throughput : result -> float
(** Acked bytes over the send-window duration, bytes/s. *)

val loss_fraction : result -> float
(** Lost bytes over sent bytes; 0 when nothing was sent. *)

val rtt_slope : result -> float
(** Least-squares slope of RTT over ack time within the MI, s/s;
    0 with fewer than two samples. *)

type t

val create : unit -> t

val begin_mi : t -> now:float -> rate:float -> label:int -> unit
(** Open a new MI; the previous MI's send window closes at [now].
    Use a negative [label] for unevaluated filler intervals: they are
    tracked (so attribution works) but never returned by {!poll}. *)

val current_rate : t -> float option
(** Rate of the MI currently open for sending. *)

val on_send : t -> bytes:int -> unit
val on_ack : t -> sent_time:float -> now:float -> bytes:int -> rtt:float -> unit
val on_loss : t -> lost_packets:(float * int) list -> unit

val poll : t -> now:float -> grace:float -> result list
(** Completed evaluated MIs, oldest first.  An MI completes when its send
    window has closed and either every sent byte is acked or lost, or
    [now >= window end + grace]. *)
