type params = {
  eps : float;
  throughput_exponent : float;
  latency_coeff : float;
  loss_coeff : float;
  theta0 : float;
  omega : float;
  init_rate : float;
  min_rate : float;
  seed : int;
  mss : int;
}

let default_params =
  {
    eps = 0.05;
    throughput_exponent = 0.9;
    latency_coeff = 900.;
    loss_coeff = 11.35;
    theta0 = 1.;
    omega = 0.05;
    init_rate = 1e6 /. 8.;
    min_rate = 64e3 /. 8.;
    seed = 7;
    mss = Cca.default_mss;
  }

let utility p ~rate_mbps ~rtt_gradient ~loss =
  if rate_mbps <= 0. then 0.
  else
    (rate_mbps ** p.throughput_exponent)
    -. (p.latency_coeff *. rate_mbps *. Float.max 0. rtt_gradient)
    -. (p.loss_coeff *. rate_mbps *. loss)

let utility_of_result p (r : Mi_ledger.result) =
  utility p
    ~rate_mbps:(Mi_ledger.throughput r *. 8. /. 1e6)
    ~rtt_gradient:(Mi_ledger.rtt_slope r)
    ~loss:(Mi_ledger.loss_fraction r)

(* MI labels *)
let label_slow_start = 0
let label_up = 1
let label_down = 2
let label_hold = -1

type phase =
  | Slow_start of { prev_utility : float option }
  | Pair of { base : float; mutable up_u : float option; mutable down_u : float option }

type state = {
  p : params;
  rng : Mini_rng.t;
  ledger : Mi_ledger.t;
  mutable rate : float; (* current decision rate, bytes/s *)
  mutable phase : phase;
  mutable plan : (float * int) list; (* (rate, label) of upcoming MIs *)
  mutable srtt : float;
  mutable mi_end : float;
  mutable consecutive_same_dir : int;
  mutable last_direction : int;
}

let make ?(params = default_params) () =
  let s =
    {
      p = params;
      rng = Mini_rng.create ~seed:params.seed;
      ledger = Mi_ledger.create ();
      rate = params.init_rate;
      phase = Slow_start { prev_utility = None };
      plan = [ (params.init_rate, label_slow_start) ];
      srtt = 0.05;
      mi_end = 0.;
      consecutive_same_dir = 0;
      last_direction = 0;
    }
  in
  let clamp r = Float.max s.p.min_rate r in
  let mi_duration () = Float.max s.srtt 0.01 in
  let schedule_pair base =
    let up = clamp (base *. (1. +. s.p.eps)) in
    let down = clamp (base *. (1. -. s.p.eps)) in
    let pair =
      if Mini_rng.bool s.rng then [ (up, label_up); (down, label_down) ]
      else [ (down, label_down); (up, label_up) ]
    in
    s.phase <- Pair { base; up_u = None; down_u = None };
    s.plan <- pair
  in
  let apply_gradient base up_u down_u =
    let base_mbps = base *. 8. /. 1e6 in
    let gradient = (up_u -. down_u) /. (2. *. s.p.eps *. base_mbps) in
    let direction = if gradient > 0. then 1 else -1 in
    if direction = s.last_direction then
      s.consecutive_same_dir <- s.consecutive_same_dir + 1
    else begin
      s.last_direction <- direction;
      s.consecutive_same_dir <- 1
    end;
    let theta = s.p.theta0 *. float_of_int s.consecutive_same_dir in
    let step_mbps = theta *. gradient in
    let bound = s.p.omega *. base_mbps in
    let step_mbps = Float.max (-.bound) (Float.min bound step_mbps) in
    clamp (base +. (step_mbps *. 1e6 /. 8.))
  in
  let handle_result (r : Mi_ledger.result) =
    let u = utility_of_result s.p r in
    match s.phase with
    | Slow_start { prev_utility } when r.label = label_slow_start -> begin
        match prev_utility with
        | Some prev when u <= prev ->
            (* Utility stopped improving: back off to the last good rate
               and start probing around it. *)
            s.rate <- clamp (s.rate /. 2.);
            schedule_pair s.rate
        | _ ->
            s.phase <- Slow_start { prev_utility = Some u };
            s.rate <- s.rate *. 2.;
            s.plan <- [ (s.rate, label_slow_start) ]
      end
    | Pair pair ->
        if r.label = label_up then pair.up_u <- Some u
        else if r.label = label_down then pair.down_u <- Some u;
        (match (pair.up_u, pair.down_u) with
        | Some up_u, Some down_u ->
            s.rate <- apply_gradient pair.base up_u down_u;
            schedule_pair s.rate
        | _ -> ())
    | Slow_start _ -> ()
  in
  let process now =
    List.iter handle_result (Mi_ledger.poll s.ledger ~now ~grace:(4. *. mi_duration ()))
  in
  let on_timer now =
    process now;
    let rate, label =
      match s.plan with
      | next :: rest ->
          s.plan <- rest;
          next
      | [] -> (s.rate, label_hold)
    in
    Mi_ledger.begin_mi s.ledger ~now ~rate ~label;
    s.mi_end <- now +. mi_duration ()
  in
  let on_ack (a : Cca.ack_info) =
    s.srtt <- (0.875 *. s.srtt) +. (0.125 *. a.rtt);
    Mi_ledger.on_ack s.ledger ~sent_time:a.sent_time ~now:a.now ~bytes:a.acked_bytes
      ~rtt:a.rtt;
    process a.now
  in
  let on_loss (l : Cca.loss_info) =
    Mi_ledger.on_loss s.ledger ~lost_packets:l.lost_packets;
    process l.now
  in
  let on_send (i : Cca.send_info) = Mi_ledger.on_send s.ledger ~bytes:i.sent_bytes in
  let current_rate () =
    match Mi_ledger.current_rate s.ledger with Some r -> r | None -> s.rate
  in
  {
    Cca.name = "pcc-vivace";
    on_ack;
    on_loss;
    on_send;
    on_timer;
    next_timer = (fun () -> Some s.mi_end);
    cwnd = (fun () -> infinity);
    pacing_rate = (fun () -> Some (current_rate ()));
    inspect =
      (fun () ->
        [
          ("rate", s.rate);
          ("mi_rate", current_rate ());
          ("srtt", s.srtt);
          ("consecutive", float_of_int s.consecutive_same_dir);
        ]);
  }
