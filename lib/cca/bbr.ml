type params = {
  quanta_packets : float;
  enable_quanta : bool;
  cwnd_gain : float;
  startup_gain : float;
  bw_window_rounds : float;
  min_rtt_window : float;
  probe_rtt_duration : float;
  probe_rtt_cwnd_packets : float;
  init_cwnd_packets : float;
  seed : int;
  mss : int;
}

let default_params =
  {
    quanta_packets = 3.;
    enable_quanta = true;
    cwnd_gain = 2.;
    startup_gain = 2.89;
    bw_window_rounds = 10.;
    min_rtt_window = 10.;
    probe_rtt_duration = 0.2;
    probe_rtt_cwnd_packets = 4.;
    init_cwnd_packets = 10.;
    seed = 1;
    mss = Cca.default_mss;
  }

type mode = Startup | Drain | Probe_bw | Probe_rtt of float (* exit time *)

let gain_cycle = [| 1.25; 0.75; 1.; 1.; 1.; 1.; 1.; 1. |]

type state = {
  p : params;
  mutable mode : mode;
  bw_filter : Window.Extremum.t; (* indexed by round count *)
  mutable min_rtt : float;
  mutable min_rtt_stamp : float;
  mutable round_count : int;
  mutable next_round_delivered : int;
  mutable full_bw : float;
  mutable full_bw_rounds : int;
  mutable cycle_index : int;
  mutable cycle_start : float;
  mutable inflight : int;
  mutable last_rtt : float;
}

let btl_bw s = Window.Extremum.get_default s.bw_filter 0.

let bdp s = btl_bw s *. (if s.min_rtt = infinity then 0. else s.min_rtt)

let quanta_bytes s =
  if s.p.enable_quanta then s.p.quanta_packets *. float_of_int s.p.mss else 0.

let pacing_gain s =
  match s.mode with
  | Startup -> s.p.startup_gain
  | Drain -> 1. /. s.p.startup_gain
  | Probe_bw -> gain_cycle.(s.cycle_index)
  | Probe_rtt _ -> 1.

let cwnd s =
  let mss = float_of_int s.p.mss in
  match s.mode with
  | Probe_rtt _ -> s.p.probe_rtt_cwnd_packets *. mss
  | Startup | Drain | Probe_bw ->
      if btl_bw s <= 0. then s.p.init_cwnd_packets *. mss
      else begin
        let gain = match s.mode with Startup -> s.p.startup_gain | _ -> s.p.cwnd_gain in
        Float.max ((gain *. bdp s) +. quanta_bytes s) (4. *. mss)
      end

(* Tiny deterministic generator for the initial ProbeBW phase. *)
let pick_phase seed =
  let x = (seed * 2654435761) land 0x3FFFFFFF in
  let i = x mod 7 in
  if i >= 1 then i + 1 else i (* any phase except the 0.75 drain slot *)

let enter_probe_bw s now =
  s.mode <- Probe_bw;
  s.cycle_index <- pick_phase (s.p.seed + s.round_count);
  s.cycle_start <- now

let advance_cycle s now =
  if s.min_rtt < infinity && now -. s.cycle_start >= s.min_rtt then begin
    s.cycle_index <- (s.cycle_index + 1) mod Array.length gain_cycle;
    s.cycle_start <- now
  end

let check_full_pipe s =
  let bw = btl_bw s in
  if bw > s.full_bw *. 1.25 then begin
    s.full_bw <- bw;
    s.full_bw_rounds <- 0
  end
  else s.full_bw_rounds <- s.full_bw_rounds + 1

let make ?(params = default_params) () =
  let s =
    {
      p = params;
      mode = Startup;
      bw_filter = Window.Extremum.create_max ~window:params.bw_window_rounds;
      min_rtt = infinity;
      min_rtt_stamp = 0.;
      round_count = 0;
      next_round_delivered = 0;
      full_bw = 0.;
      full_bw_rounds = 0;
      cycle_index = 0;
      cycle_start = 0.;
      inflight = 0;
      last_rtt = 0.;
    }
  in
  let on_ack (a : Cca.ack_info) =
    s.inflight <- a.inflight;
    s.last_rtt <- a.rtt;
    (* Round accounting: a round ends when a packet sent after the previous
       round's end is acknowledged. *)
    if a.delivered >= s.next_round_delivered then begin
      s.round_count <- s.round_count + 1;
      s.next_round_delivered <- a.delivered_now;
      if s.mode = Startup then begin
        check_full_pipe s;
        if s.full_bw_rounds >= 3 then s.mode <- Drain
      end
    end;
    (* Bandwidth sample into the max filter (windowed by round count). *)
    let sample = Cca.bandwidth_sample a in
    if sample > 0. && not a.app_limited then
      Window.Extremum.push s.bw_filter ~time:(float_of_int s.round_count) sample;
    (* Min RTT filter with explicit expiry. *)
    if a.rtt <= s.min_rtt || a.now -. s.min_rtt_stamp > s.p.min_rtt_window then begin
      let expired = a.now -. s.min_rtt_stamp > s.p.min_rtt_window && a.rtt > s.min_rtt in
      s.min_rtt <- a.rtt;
      s.min_rtt_stamp <- a.now;
      if expired && s.mode = Probe_bw then
        s.mode <- Probe_rtt (a.now +. s.p.probe_rtt_duration)
    end;
    (* Mode transitions. *)
    (match s.mode with
    | Drain ->
        if float_of_int a.inflight <= bdp s then enter_probe_bw s a.now
    | Probe_rtt exit_time ->
        if a.now >= exit_time then begin
          s.min_rtt_stamp <- a.now;
          enter_probe_bw s a.now
        end
    | Probe_bw -> advance_cycle s a.now
    | Startup -> ())
  in
  let on_loss (_ : Cca.loss_info) = () in
  (* BBRv1 ignores losses for rate control. *)
  {
    Cca.name = "bbr";
    on_ack;
    on_loss;
    on_send = (fun (i : Cca.send_info) -> s.inflight <- i.inflight);
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> cwnd s);
    pacing_rate =
      (fun () ->
        let bw = btl_bw s in
        if bw <= 0. then None else Some (pacing_gain s *. bw));
    inspect =
      (fun () ->
        [
          ("btl_bw", btl_bw s);
          ("min_rtt", s.min_rtt);
          ("bdp", bdp s);
          ("cwnd", cwnd s);
          ("pacing_gain", pacing_gain s);
          ( "mode",
            match s.mode with
            | Startup -> 0.
            | Drain -> 1.
            | Probe_bw -> 2.
            | Probe_rtt _ -> 3. );
          ("round", float_of_int s.round_count);
        ]);
  }

let equilibrium_rate_cwnd_limited p ~rtt ~rm =
  let alpha = p.quanta_packets *. float_of_int p.mss in
  if rtt <= 2. *. rm then infinity else alpha /. (rtt -. (2. *. rm))

let equilibrium_rtt_cwnd_limited p ~rate ~rm ~n_flows =
  let alpha = p.quanta_packets *. float_of_int p.mss in
  (2. *. rm) +. (float_of_int n_flows *. alpha /. rate)
