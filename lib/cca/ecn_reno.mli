(** ECN-driven AIMD (paper §6.4).

    The paper conjectures that explicit congestion signaling sidesteps the
    starvation result: unlike delay and loss, a CE mark is an unambiguous
    congestion signal, so a CCA that reacts to marks and *ignores small
    amounts of loss* keeps a usable fixed point even when one flow's path
    adds non-congestive loss or jitter.

    This CCA is NewReno's window dynamics with the congestion signal moved
    to ECN: halve once per RTT when an ACK echoes CE; ignore dup-ACK losses
    as long as the measured loss fraction stays under [loss_tolerance]
    (they might be non-congestive); still react to heavy loss and to
    timeouts, since a mark-blind overload must not run away. *)

type params = {
  init_cwnd_packets : float;
  loss_tolerance : float;
      (** fraction of losses per window tolerated without reaction
          (default 0.05, PCC Allegro's threshold) *)
  mss : int;
}

val default_params : params
val make : ?params:params -> unit -> Cca.t
