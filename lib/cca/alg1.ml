type params = {
  rm : float;
  rmax : float;
  d_jitter : float;
  s : float;
  mu_minus : float;
  a : float;
  b : float;
  init_rate : float;
  mss : int;
}

let default_params =
  {
    rm = 0.05;
    rmax = 0.1;
    d_jitter = 0.01;
    s = 2.;
    mu_minus = 12500.; (* 100 kbit/s *)
    a = 12500.;
    b = 0.9;
    init_rate = 125000.;
    mss = Cca.default_mss;
  }

let target_rate p ~d =
  p.mu_minus *. (p.s ** ((p.rmax -. (d -. p.rm)) /. p.d_jitter))

let mu_plus p = target_rate p ~d:(p.rm +. p.d_jitter)

let rate_range p = p.s ** ((p.rmax -. p.d_jitter) /. p.d_jitter)

type state = {
  p : params;
  mutable rate : float;
  mutable last_rtt : float;
  mutable next_update : float;
}

let make ?(params = default_params) () =
  let s =
    { p = params; rate = params.init_rate; last_rtt = params.rm; next_update = 0. }
  in
  let on_timer now =
    let threshold = target_rate s.p ~d:s.last_rtt in
    if s.rate < threshold then s.rate <- s.rate +. s.p.a
    else s.rate <- s.p.b *. s.rate;
    s.rate <- Float.max s.rate s.p.mu_minus;
    s.next_update <- now +. s.p.rm
  in
  let on_ack (a : Cca.ack_info) = s.last_rtt <- a.rtt in
  {
    Cca.name = "alg1";
    on_ack;
    on_loss = (fun _ -> ());
    on_send = (fun _ -> ());
    on_timer;
    next_timer = (fun () -> Some s.next_update);
    (* Cap in-flight data at twice the worst-case BDP so a sudden capacity
       drop cannot build an unbounded queue. *)
    cwnd = (fun () -> 2. *. s.rate *. (s.p.rm +. s.p.rmax));
    pacing_rate = (fun () -> Some s.rate);
    inspect =
      (fun () ->
        [
          ("rate", s.rate);
          ("last_rtt", s.last_rtt);
          ("target", target_rate s.p ~d:s.last_rtt);
        ]);
  }
