(** BBR v1 (Cardwell et al., ACM Queue 2016), as analyzed in §5.2.

    The sender estimates the bottleneck bandwidth as a windowed maximum of
    delivery-rate samples (10 rounds) and the propagation RTT as a windowed
    minimum (10 s).  Pacing follows an 8-phase gain cycle
    [1.25, 0.75, 1, 1, 1, 1, 1, 1]; a congestion window of
    [cwnd_gain * BDP + quanta] caps in-flight data.

    The [quanta] term is the "+alpha" the paper credits with forcing a
    unique fair fixed point in cwnd-limited mode; [enable_quanta:false]
    removes it to reproduce the paper's ablation (any split of 2*BDP then
    becomes a fixed point, so a saturated incumbent starves a newcomer).

    The paper's two modes arise naturally: with smooth ACKs, the flow is
    pacing-limited (delay in [Rm, 1.25 Rm]); with ACK jitter, the max
    filter overestimates bandwidth and the cwnd cap takes over
    (equilibrium rate [quanta / (RTT - 2 Rm)], Figure 3). *)

type params = {
  quanta_packets : float;  (** the +alpha term, packets (default 3) *)
  enable_quanta : bool;  (** ablation switch (default true) *)
  cwnd_gain : float;  (** default 2 *)
  startup_gain : float;  (** default 2.89 *)
  bw_window_rounds : float;  (** max-filter window, rounds (default 10) *)
  min_rtt_window : float;  (** min-filter window, seconds (default 10) *)
  probe_rtt_duration : float;  (** default 0.2 s *)
  probe_rtt_cwnd_packets : float;  (** default 4 *)
  init_cwnd_packets : float;
  seed : int;  (** randomizes the initial ProbeBW phase *)
  mss : int;
}

val default_params : params
val make : ?params:params -> unit -> Cca.t

val equilibrium_rate_cwnd_limited : params -> rtt:float -> rm:float -> float
(** §5.2: [alpha / (RTT - 2 Rm)] bytes/s — the cwnd-limited rate-delay map. *)

val equilibrium_rtt_cwnd_limited : params -> rate:float -> rm:float -> n_flows:int -> float
(** §5.2: RTT = [2 Rm + n alpha / C] at the n-flow fixed point. *)
