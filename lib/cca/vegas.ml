type params = {
  alpha : float;
  beta : float;
  gamma : float;
  init_cwnd_packets : float;
  mss : int;
}

let default_params =
  { alpha = 2.; beta = 4.; gamma = 1.; init_cwnd_packets = 4.; mss = Cca.default_mss }

type state = {
  p : params;
  mutable cwnd : float; (* bytes *)
  mutable base_rtt : float;
  mutable last_rtt : float;
  mutable epoch_start : float; (* time the current once-per-RTT epoch began *)
  mutable slow_start : bool;
  mutable ss_parity : bool; (* Vegas doubles every other RTT in slow start *)
}

let queued_packets s =
  if s.last_rtt <= 0. || s.base_rtt = infinity then 0.
  else
    s.cwnd /. float_of_int s.p.mss *. ((s.last_rtt -. s.base_rtt) /. s.last_rtt)

let per_rtt_update s =
  let mss = float_of_int s.p.mss in
  let diff = queued_packets s in
  if s.slow_start then begin
    if diff > s.p.gamma then s.slow_start <- false
    else begin
      s.ss_parity <- not s.ss_parity;
      if s.ss_parity then s.cwnd <- s.cwnd *. 2.
    end
  end;
  if not s.slow_start then begin
    if diff < s.p.alpha then s.cwnd <- s.cwnd +. mss
    else if diff > s.p.beta then s.cwnd <- s.cwnd -. mss
  end;
  s.cwnd <- Float.max s.cwnd (2. *. mss)

let make ?(params = default_params) () =
  let s =
    {
      p = params;
      cwnd = params.init_cwnd_packets *. float_of_int params.mss;
      base_rtt = infinity;
      last_rtt = 0.;
      epoch_start = 0.;
      slow_start = true;
      ss_parity = false;
    }
  in
  let on_ack (a : Cca.ack_info) =
    if a.rtt < s.base_rtt then s.base_rtt <- a.rtt;
    s.last_rtt <- a.rtt;
    if a.now -. s.epoch_start >= a.rtt then begin
      s.epoch_start <- a.now;
      per_rtt_update s
    end
  in
  let on_loss (l : Cca.loss_info) =
    match l.kind with
    | `Timeout -> s.cwnd <- 2. *. float_of_int s.p.mss
    | `Dupack -> s.cwnd <- Float.max (s.cwnd /. 2.) (2. *. float_of_int s.p.mss)
  in
  {
    Cca.name = "vegas";
    on_ack;
    on_loss;
    on_send = (fun _ -> ());
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    inspect =
      (fun () ->
        [
          ("cwnd", s.cwnd);
          ("base_rtt", s.base_rtt);
          ("queued_packets", queued_packets s);
          ("slow_start", if s.slow_start then 1. else 0.);
        ]);
  }

let equilibrium_rtt p ~rate ~rm =
  let target = (p.alpha +. p.beta) /. 2. in
  rm +. (target *. float_of_int p.mss /. rate)
