type params = {
  alpha : float;
  beta : float;
  gamma : float;
  init_cwnd_packets : float;
  mss : int;
}

let default_params =
  { alpha = 2.; beta = 4.; gamma = 1.; init_cwnd_packets = 4.; mss = Cca.default_mss }

type state = {
  p : params;
  mutable cwnd : float; (* bytes *)
  mutable base_rtt : float;
  mutable last_rtt : float;
  mutable epoch_start : float; (* time the current once-per-RTT epoch began *)
  mutable slow_start : bool;
  mutable ss_parity : bool; (* Vegas doubles every other RTT in slow start *)
}

let queued_packets s =
  if s.last_rtt <= 0. || s.base_rtt = infinity then 0.
  else
    s.cwnd /. float_of_int s.p.mss *. ((s.last_rtt -. s.base_rtt) /. s.last_rtt)

let per_rtt_update s =
  let mss = float_of_int s.p.mss in
  let diff = queued_packets s in
  if s.slow_start then begin
    if diff > s.p.gamma then s.slow_start <- false
    else begin
      s.ss_parity <- not s.ss_parity;
      if s.ss_parity then s.cwnd <- s.cwnd *. 2.
    end
  end;
  if not s.slow_start then begin
    if diff < s.p.alpha then s.cwnd <- s.cwnd +. mss
    else if diff > s.p.beta then s.cwnd <- s.cwnd -. mss
  end;
  s.cwnd <- Float.max s.cwnd (2. *. mss)

(* --- Columnar variant ---------------------------------------------------- *)

(* Same algorithm as [make], with the mutable record replaced by one row
   of a shared {!Columns} arena.  Kept textually parallel to the boxed
   path on purpose — a qcheck property asserts bitwise trace
   equivalence, so the boxed implementation stays the readable
   reference.  Booleans live in float cells (0. / 1.); [base_rtt]'s
   initial [infinity] round-trips through the column unchanged. *)

let nfields = 6
let f_cwnd = 0
let f_base_rtt = 1
let f_last_rtt = 2
let f_epoch_start = 3
let f_slow_start = 4
let f_ss_parity = 5

let make_in ?(params = default_params) cols =
  if Columns.nfields cols <> nfields then
    invalid_arg "Vegas.make_in: arena has the wrong number of fields";
  let mss = float_of_int params.mss in
  let r = Columns.alloc cols in
  let reset () =
    Columns.set cols r f_cwnd (params.init_cwnd_packets *. mss);
    Columns.set cols r f_base_rtt infinity;
    Columns.set cols r f_last_rtt 0.;
    Columns.set cols r f_epoch_start 0.;
    Columns.set cols r f_slow_start 1.;
    Columns.set cols r f_ss_parity 0.
  in
  reset ();
  let queued_packets () =
    let last_rtt = Columns.get cols r f_last_rtt in
    if last_rtt <= 0. || Columns.get cols r f_base_rtt = infinity then 0.
    else
      Columns.get cols r f_cwnd /. mss
      *. ((last_rtt -. Columns.get cols r f_base_rtt) /. last_rtt)
  in
  let per_rtt_update () =
    let diff = queued_packets () in
    if Columns.get cols r f_slow_start = 1. then begin
      if diff > params.gamma then Columns.set cols r f_slow_start 0.
      else begin
        Columns.set cols r f_ss_parity
          (1. -. Columns.get cols r f_ss_parity);
        if Columns.get cols r f_ss_parity = 1. then
          Columns.set cols r f_cwnd (Columns.get cols r f_cwnd *. 2.)
      end
    end;
    if Columns.get cols r f_slow_start <> 1. then begin
      if diff < params.alpha then
        Columns.set cols r f_cwnd (Columns.get cols r f_cwnd +. mss)
      else if diff > params.beta then
        Columns.set cols r f_cwnd (Columns.get cols r f_cwnd -. mss)
    end;
    Columns.set cols r f_cwnd
      (Float.max (Columns.get cols r f_cwnd) (2. *. mss))
  in
  let on_ack (a : Cca.ack_info) =
    if a.rtt < Columns.get cols r f_base_rtt then
      Columns.set cols r f_base_rtt a.rtt;
    Columns.set cols r f_last_rtt a.rtt;
    if a.now -. Columns.get cols r f_epoch_start >= a.rtt then begin
      Columns.set cols r f_epoch_start a.now;
      per_rtt_update ()
    end
  in
  let on_loss (l : Cca.loss_info) =
    match l.kind with
    | `Timeout -> Columns.set cols r f_cwnd (2. *. mss)
    | `Dupack ->
        Columns.set cols r f_cwnd
          (Float.max (Columns.get cols r f_cwnd /. 2.) (2. *. mss))
  in
  let cca =
    {
      Cca.name = "vegas";
      on_ack;
      on_loss;
      on_send = (fun _ -> ());
      on_timer = (fun _ -> ());
      next_timer = (fun () -> None);
      cwnd = (fun () -> Columns.get cols r f_cwnd);
      pacing_rate = (fun () -> None);
      inspect =
        (fun () ->
          [
            ("cwnd", Columns.get cols r f_cwnd);
            ("base_rtt", Columns.get cols r f_base_rtt);
            ("queued_packets", queued_packets ());
            ("slow_start", Columns.get cols r f_slow_start);
          ]);
    }
  in
  { Cca.cca; reset = Some reset; release = (fun () -> Columns.free cols r) }

let make ?(params = default_params) () =
  let s =
    {
      p = params;
      cwnd = params.init_cwnd_packets *. float_of_int params.mss;
      base_rtt = infinity;
      last_rtt = 0.;
      epoch_start = 0.;
      slow_start = true;
      ss_parity = false;
    }
  in
  let on_ack (a : Cca.ack_info) =
    if a.rtt < s.base_rtt then s.base_rtt <- a.rtt;
    s.last_rtt <- a.rtt;
    if a.now -. s.epoch_start >= a.rtt then begin
      s.epoch_start <- a.now;
      per_rtt_update s
    end
  in
  let on_loss (l : Cca.loss_info) =
    match l.kind with
    | `Timeout -> s.cwnd <- 2. *. float_of_int s.p.mss
    | `Dupack -> s.cwnd <- Float.max (s.cwnd /. 2.) (2. *. float_of_int s.p.mss)
  in
  {
    Cca.name = "vegas";
    on_ack;
    on_loss;
    on_send = (fun _ -> ());
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    inspect =
      (fun () ->
        [
          ("cwnd", s.cwnd);
          ("base_rtt", s.base_rtt);
          ("queued_packets", queued_packets s);
          ("slow_start", if s.slow_start then 1. else 0.);
        ]);
  }

let equilibrium_rtt p ~rate ~rm =
  let target = (p.alpha +. p.beta) /. 2. in
  rm +. (target *. float_of_int p.mss /. rate)
