(** The paper's "silly" CCA: a fixed congestion window, forever (§4.2).

    It trivially avoids starvation (both flows hold identical windows) but
    is not f-efficient for any f on links faster than
    [cwnd / Rm] — the degenerate corner the f-efficiency definition
    exists to exclude. *)

val make : ?cwnd_packets:float -> ?mss:int -> unit -> Cca.t
(** Default: 10 packets of 1500 bytes. *)
