type params = {
  alpha : float;
  loss_threshold : float;
  eps0 : float;
  eps_max : float;
  init_rate : float;
  min_rate : float;
  seed : int;
  mss : int;
}

let default_params =
  {
    alpha = 50.;
    loss_threshold = 0.05;
    eps0 = 0.01;
    eps_max = 0.05;
    init_rate = 1e6 /. 8.;
    min_rate = 64e3 /. 8.;
    seed = 11;
    mss = Cca.default_mss;
  }

let sigmoid y = 1. /. (1. +. exp y)

let utility p ~rate_mbps ~loss =
  (rate_mbps *. (1. -. loss) *. sigmoid (p.alpha *. (loss -. p.loss_threshold)))
  -. (rate_mbps *. loss)

let utility_of_result p (r : Mi_ledger.result) =
  utility p
    ~rate_mbps:(Mi_ledger.throughput r *. 8. /. 1e6)
    ~loss:(Mi_ledger.loss_fraction r)

let label_start = 0
let label_trial i = 10 + i
let label_adjust = 20
let label_hold = -1

type phase =
  | Starting of { prev_utility : float option }
  | Trial of {
      base : float;
      eps : float;
      order : bool array; (* true = high-rate MI *)
      utilities : float option array;
    }
  | Adjusting of { direction : float; mutable step : int; mutable prev_utility : float }

type state = {
  p : params;
  rng : Mini_rng.t;
  ledger : Mi_ledger.t;
  mutable rate : float;
  mutable phase : phase;
  mutable plan : (float * int) list;
  mutable srtt : float;
  mutable mi_end : float;
}

let random_order rng =
  let order = [| true; true; false; false |] in
  for i = 3 downto 1 do
    let j = int_of_float (Mini_rng.float rng *. float_of_int (i + 1)) in
    let j = min j i in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  order

let make ?(params = default_params) () =
  let s =
    {
      p = params;
      rng = Mini_rng.create ~seed:params.seed;
      ledger = Mi_ledger.create ();
      rate = params.init_rate;
      phase = Starting { prev_utility = None };
      plan = [ (params.init_rate, label_start) ];
      srtt = 0.05;
      mi_end = 0.;
    }
  in
  let clamp r = Float.max s.p.min_rate r in
  let mi_duration () = Float.max s.srtt 0.01 in
  let begin_trial ~eps =
    let order = random_order s.rng in
    s.phase <- Trial { base = s.rate; eps; order; utilities = Array.make 4 None };
    s.plan <-
      Array.to_list
        (Array.mapi
           (fun i is_high ->
             let sign = if is_high then 1. else -1. in
             (clamp (s.rate *. (1. +. (sign *. eps))), label_trial i))
           order)
  in
  let enter_adjusting direction =
    s.phase <- Adjusting { direction; step = 1; prev_utility = neg_infinity };
    s.plan <- [ (s.rate, label_adjust) ]
  in
  let conclude_trial base eps order utilities =
    let verdicts = Array.map Option.get utilities in
    let high = ref [] and low = ref [] in
    Array.iteri
      (fun i is_high ->
        if is_high then high := verdicts.(i) :: !high
        else low := verdicts.(i) :: !low)
      order;
    let all_greater a b = List.for_all (fun x -> List.for_all (fun y -> x > y) b) a in
    if all_greater !high !low then begin
      s.rate <- clamp (base *. (1. +. eps));
      enter_adjusting 1.
    end
    else if all_greater !low !high then begin
      s.rate <- clamp (base *. (1. -. eps));
      enter_adjusting (-1.)
    end
    else begin_trial ~eps:(Float.min (eps +. s.p.eps0) s.p.eps_max)
  in
  let handle_result (r : Mi_ledger.result) =
    let u = utility_of_result s.p r in
    match s.phase with
    | Starting { prev_utility } when r.label = label_start -> begin
        match prev_utility with
        | Some prev when u <= prev ->
            s.rate <- clamp (s.rate /. 2.);
            begin_trial ~eps:s.p.eps0
        | _ ->
            s.phase <- Starting { prev_utility = Some u };
            s.rate <- s.rate *. 2.;
            s.plan <- [ (s.rate, label_start) ]
      end
    | Trial { base; eps; order; utilities } when r.label >= 10 && r.label < 14 ->
        utilities.(r.label - 10) <- Some u;
        if Array.for_all Option.is_some utilities then
          conclude_trial base eps order utilities
    | Adjusting a when r.label = label_adjust ->
        if u >= a.prev_utility then begin
          a.prev_utility <- u;
          a.step <- a.step + 1;
          s.rate <-
            clamp (s.rate *. (1. +. (a.direction *. float_of_int a.step *. s.p.eps0)));
          s.plan <- [ (s.rate, label_adjust) ]
        end
        else begin
          (* Utility dropped: step back and re-run trials. *)
          s.rate <-
            clamp (s.rate /. (1. +. (a.direction *. float_of_int a.step *. s.p.eps0)));
          begin_trial ~eps:s.p.eps0
        end
    | Starting _ | Trial _ | Adjusting _ -> ()
  in
  let process now =
    List.iter handle_result (Mi_ledger.poll s.ledger ~now ~grace:(4. *. mi_duration ()))
  in
  let on_timer now =
    process now;
    let rate, label =
      match s.plan with
      | next :: rest ->
          s.plan <- rest;
          next
      | [] -> (s.rate, label_hold)
    in
    Mi_ledger.begin_mi s.ledger ~now ~rate ~label;
    s.mi_end <- now +. mi_duration ()
  in
  let on_ack (a : Cca.ack_info) =
    s.srtt <- (0.875 *. s.srtt) +. (0.125 *. a.rtt);
    Mi_ledger.on_ack s.ledger ~sent_time:a.sent_time ~now:a.now ~bytes:a.acked_bytes
      ~rtt:a.rtt;
    process a.now
  in
  let on_loss (l : Cca.loss_info) =
    Mi_ledger.on_loss s.ledger ~lost_packets:l.lost_packets;
    process l.now
  in
  let on_send (i : Cca.send_info) = Mi_ledger.on_send s.ledger ~bytes:i.sent_bytes in
  let current_rate () =
    match Mi_ledger.current_rate s.ledger with Some r -> r | None -> s.rate
  in
  {
    Cca.name = "pcc-allegro";
    on_ack;
    on_loss;
    on_send;
    on_timer;
    next_timer = (fun () -> Some s.mi_end);
    cwnd = (fun () -> infinity);
    pacing_rate = (fun () -> Some (current_rate ()));
    inspect =
      (fun () ->
        [ ("rate", s.rate); ("mi_rate", current_rate ()); ("srtt", s.srtt) ]);
  }
