type result = {
  label : int;
  rate : float;
  duration : float;
  sent_bytes : int;
  acked_bytes : int;
  lost_bytes : int;
  rtt_samples : (float * float) list;
}

let throughput r =
  if r.duration <= 0. then 0. else float_of_int r.acked_bytes /. r.duration

let loss_fraction r =
  if r.sent_bytes = 0 then 0.
  else float_of_int r.lost_bytes /. float_of_int r.sent_bytes

let rtt_slope r =
  let n = List.length r.rtt_samples in
  if n < 2 then 0.
  else begin
    let nf = float_of_int n in
    let st = ref 0. and sv = ref 0. and stt = ref 0. and stv = ref 0. in
    List.iter
      (fun (t, v) ->
        st := !st +. t;
        sv := !sv +. v;
        stt := !stt +. (t *. t);
        stv := !stv +. (t *. v))
      r.rtt_samples;
    let denom = (nf *. !stt) -. (!st *. !st) in
    if Float.abs denom < 1e-12 then 0. else ((nf *. !stv) -. (!st *. !sv)) /. denom
  end

type mi = {
  label : int;
  rate : float;
  t0 : float;
  mutable t1 : float; (* send-window end; infinity while open *)
  mutable sent : int;
  mutable acked : int;
  mutable lost : int;
  mutable rtts : (float * float) list; (* newest first *)
}

type t = { mutable mis : mi list (* oldest first *) }

let create () = { mis = [] }

let begin_mi t ~now ~rate ~label =
  (match List.rev t.mis with
  | last :: _ when last.t1 = infinity -> last.t1 <- now
  | _ -> ());
  t.mis <-
    t.mis
    @ [ { label; rate; t0 = now; t1 = infinity; sent = 0; acked = 0; lost = 0; rtts = [] } ]

let current t =
  let rec last = function [] -> None | [ m ] -> Some m | _ :: rest -> last rest in
  match last t.mis with Some m when m.t1 = infinity -> Some m | _ -> None

let current_rate t = Option.map (fun m -> m.rate) (current t)

let on_send t ~bytes =
  match current t with Some m -> m.sent <- m.sent + bytes | None -> ()

let owner t sent_time =
  List.find_opt (fun m -> sent_time >= m.t0 && sent_time < m.t1) t.mis

let on_ack t ~sent_time ~now ~bytes ~rtt =
  match owner t sent_time with
  | Some m ->
      m.acked <- m.acked + bytes;
      m.rtts <- (now, rtt) :: m.rtts
  | None -> ()

let on_loss t ~lost_packets =
  List.iter
    (fun (sent_time, bytes) ->
      match owner t sent_time with
      | Some m -> m.lost <- m.lost + bytes
      | None -> ())
    lost_packets

let complete m ~now ~grace =
  m.t1 < infinity
  && (m.acked + m.lost >= m.sent || now >= m.t1 +. grace)

let poll t ~now ~grace =
  let done_, open_ = List.partition (fun m -> complete m ~now ~grace) t.mis in
  t.mis <- open_;
  done_
  |> List.filter (fun m -> m.label >= 0)
  |> List.map (fun m ->
         {
           label = m.label;
           rate = m.rate;
           duration = m.t1 -. m.t0;
           sent_bytes = m.sent;
           acked_bytes = m.acked;
           lost_bytes = m.lost;
           rtt_samples = List.rev m.rtts;
         })
