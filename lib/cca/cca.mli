(** Common interface for congestion control algorithms.

    A CCA is a state machine driven by acknowledgment, loss and send events.
    It exposes its control decisions through a congestion window (bytes) and
    an optional pacing rate (bytes/s).  All times are absolute simulation
    times in seconds; all sizes are bytes.

    Instances own private mutable state (captured in the closures of {!t}),
    which lets an instance converge on one network and then keep running,
    state intact, on another — the operation at the heart of the paper's
    Theorem 1 construction. *)

(** Information delivered to the CCA for every acknowledged packet.

    Fields are mutable so drivers can reuse one scratch record across
    calls instead of allocating ~10 words per ACK on the hot path.  The
    record is only valid for the duration of the [on_ack] call: a CCA
    must copy out any field it needs later and must not retain the
    record itself. *)
type ack_info = {
  mutable now : float;  (** time the ACK reached the sender *)
  mutable rtt : float;  (** RTT sampled by this packet, seconds *)
  mutable acked_bytes : int;  (** bytes newly acknowledged by this ACK *)
  mutable sent_time : float;  (** when the acked packet was sent *)
  mutable delivered : int;
      (** cumulative bytes delivered (receiver side) when the acked packet
          was sent — used with [delivered_now] for rate samples, as in
          BBR's delivery-rate estimator *)
  mutable delivered_now : int;
      (** cumulative bytes delivered including this packet *)
  mutable inflight : int;  (** bytes in flight after processing this ACK *)
  mutable app_limited : bool;
      (** sender was application-limited for this sample *)
  mutable ecn_ce : bool;
      (** the acked packet carried a congestion-experienced mark *)
}

(** Information delivered on a loss event. *)
type loss_info = {
  now : float;
  lost_bytes : int;
  lost_packets : (float * int) list;
      (** (send time, bytes) of each lost packet — lets monitor-interval
          CCAs (PCC) attribute losses to the interval that sent them *)
  inflight : int;  (** bytes in flight after removing the lost bytes *)
  kind : [ `Dupack | `Timeout ];
}

(** Information delivered when a packet is sent.  Same reuse contract
    as {!ack_info}: valid only for the duration of the [on_send] call. *)
type send_info = {
  mutable now : float;
  mutable sent_bytes : int;
  mutable inflight : int;
}

(** A congestion control algorithm instance. *)
type t = {
  name : string;
  on_ack : ack_info -> unit;
  on_loss : loss_info -> unit;
  on_send : send_info -> unit;
  on_timer : float -> unit;  (** called at (or after) the requested time *)
  next_timer : unit -> float option;
      (** absolute time at which the CCA wants [on_timer] called; [None] if
          no timer is pending.  Re-read after every event. *)
  cwnd : unit -> float;  (** congestion window, bytes; [infinity] = unlimited *)
  pacing_rate : unit -> float option;
      (** bytes/s; [None] means no pacing (send whenever window allows) *)
  inspect : unit -> (string * float) list;
      (** named internals for tracing and tests *)
}

(** A CCA instance plus its lifecycle hooks, for populations that churn
    through many short flows.  [reset] re-initializes the instance's
    state in place so one instance (and its arena row, for columnar
    constructors like [Reno.make_in]) can serve successive flow
    incarnations without allocating; [None] means the instance is
    single-use and a fresh one must be built per flow.  [release]
    returns any arena rows to their free list; the instance must not be
    driven afterwards. *)
type instance = {
  cca : t;
  reset : (unit -> unit) option;
  release : unit -> unit;
}

val default_mss : int
(** Default segment size, 1500 bytes, used by all CCAs in this library. *)

val instance_of : ?release:(unit -> unit) -> t -> instance
(** Wrap a boxed, single-use CCA as an {!instance} ([reset = None]). *)

val make_stub : ?name:string -> cwnd_bytes:float -> unit -> t
(** A trivial CCA with a fixed window and no pacing — the paper's example of
    a "silly" algorithm that avoids starvation but is not f-efficient. *)

val bandwidth_sample : ack_info -> float
(** Delivery-rate sample implied by an ACK: bytes delivered between the
    acked packet's send and its acknowledgment, divided by the elapsed
    interval measured on the sender clock.  Returns [0.] for degenerate
    intervals. *)
