(** FAST TCP (Wei, Jin, Low, Hegde, ToN 2006).

    Once per RTT the window moves toward the fixed point that keeps [alpha]
    packets queued:
    [w <- min (2w, (1-gamma) w + gamma (base_rtt / rtt * w + alpha))].
    Same equilibrium family as Vegas (delta(C) = 0, queue of [alpha]
    packets) but with multiplicative convergence, which makes it practical
    at large bandwidth-delay products. *)

type params = {
  alpha_packets : float;  (** queued packets at equilibrium (default 10) *)
  gamma : float;  (** smoothing step in (0,1] (default 0.5) *)
  init_cwnd_packets : float;
  mss : int;
}

val default_params : params
val make : ?params:params -> unit -> Cca.t

val equilibrium_rtt : params -> rate:float -> rm:float -> float
(** [Rm + alpha * mss / C] — the Figure 3 (left) line. *)
