type params = {
  c : float;
  beta : float;
  init_cwnd_packets : float;
  mss : int;
}

let default_params =
  { c = 0.4; beta = 0.7; init_cwnd_packets = 4.; mss = Cca.default_mss }

type state = {
  p : params;
  mutable cwnd : float; (* bytes *)
  mutable ssthresh : float;
  mutable w_max : float; (* packets *)
  mutable k : float;
  mutable epoch_start : float; (* time of last loss; < 0 = no epoch yet *)
  mutable recovery_until : float;
  mutable last_rtt : float;
  mutable reno_cwnd : float; (* TCP-friendly estimate, packets *)
}

let make ?(params = default_params) () =
  let mss = float_of_int params.mss in
  let s =
    {
      p = params;
      cwnd = params.init_cwnd_packets *. mss;
      ssthresh = infinity;
      w_max = 0.;
      k = 0.;
      epoch_start = -1.;
      recovery_until = neg_infinity;
      last_rtt = 0.;
      reno_cwnd = params.init_cwnd_packets;
    }
  in
  let on_ack (a : Cca.ack_info) =
    s.last_rtt <- a.rtt;
    let acked = float_of_int a.acked_bytes in
    if s.cwnd < s.ssthresh then s.cwnd <- s.cwnd +. acked
    else if s.epoch_start < 0. then
      (* No loss yet but above ssthresh: Reno-style growth. *)
      s.cwnd <- s.cwnd +. (mss *. acked /. s.cwnd)
    else begin
      let t = a.now -. s.epoch_start +. a.rtt in
      let w_cubic = (s.p.c *. ((t -. s.k) ** 3.)) +. s.w_max in
      (* TCP-friendly region: emulate Reno growth from the same loss point. *)
      s.reno_cwnd <- s.reno_cwnd +. (acked /. s.cwnd);
      let target_pkts = Float.max w_cubic s.reno_cwnd in
      let target = target_pkts *. mss in
      if target > s.cwnd then begin
        (* Approach the target over the next RTT, as the RFC prescribes. *)
        let cwnd_pkts = Float.max (s.cwnd /. mss) 1. in
        s.cwnd <- s.cwnd +. ((target -. s.cwnd) /. cwnd_pkts *. (acked /. mss))
      end
      else
        (* Below target region: minimal growth to stay responsive. *)
        s.cwnd <- s.cwnd +. (0.01 *. mss *. acked /. s.cwnd)
    end
  in
  let on_loss (l : Cca.loss_info) =
    if l.now >= s.recovery_until then begin
      s.recovery_until <- l.now +. Float.max s.last_rtt 0.01;
      let cwnd_pkts = s.cwnd /. mss in
      s.w_max <- cwnd_pkts;
      s.k <- Float.cbrt (s.w_max *. (1. -. s.p.beta) /. s.p.c);
      s.epoch_start <- l.now;
      s.reno_cwnd <- cwnd_pkts *. s.p.beta;
      s.ssthresh <- Float.max (s.cwnd *. s.p.beta) (2. *. mss);
      s.cwnd <-
        (match l.kind with
        | `Dupack -> s.ssthresh
        | `Timeout -> mss)
    end
  in
  {
    Cca.name = "cubic";
    on_ack;
    on_loss;
    on_send = (fun _ -> ());
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    inspect =
      (fun () ->
        [
          ("cwnd", s.cwnd);
          ("w_max", s.w_max);
          ("k", s.k);
          ("ssthresh", s.ssthresh);
        ]);
  }
