type params = {
  init_cwnd_packets : float;
  loss_tolerance : float;
  mss : int;
}

let default_params =
  { init_cwnd_packets = 4.; loss_tolerance = 0.05; mss = Cca.default_mss }

type state = {
  p : params;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable recovery_until : float;
  mutable last_rtt : float;
  (* Loss-fraction accounting over a sliding window of recent packets. *)
  mutable window_sent : int;
  mutable window_lost : int;
  mutable window_start : float;
}

let make ?(params = default_params) () =
  let mss = float_of_int params.mss in
  let s =
    {
      p = params;
      cwnd = params.init_cwnd_packets *. mss;
      ssthresh = infinity;
      recovery_until = neg_infinity;
      last_rtt = 0.;
      window_sent = 0;
      window_lost = 0;
      window_start = 0.;
    }
  in
  let halve now =
    if now >= s.recovery_until then begin
      s.recovery_until <- now +. Float.max s.last_rtt 0.01;
      s.ssthresh <- Float.max (s.cwnd /. 2.) (2. *. mss);
      s.cwnd <- s.ssthresh
    end
  in
  let roll_window now =
    (* Reset the loss accounting roughly every 4 RTTs. *)
    if now -. s.window_start > 4. *. Float.max s.last_rtt 0.01 then begin
      s.window_sent <- 0;
      s.window_lost <- 0;
      s.window_start <- now
    end
  in
  let on_ack (a : Cca.ack_info) =
    s.last_rtt <- a.rtt;
    roll_window a.now;
    if a.ecn_ce then halve a.now
    else begin
      let acked = float_of_int a.acked_bytes in
      if s.cwnd < s.ssthresh then s.cwnd <- s.cwnd +. acked
      else s.cwnd <- s.cwnd +. (mss *. acked /. s.cwnd)
    end
  in
  let on_loss (l : Cca.loss_info) =
    roll_window l.now;
    s.window_lost <- s.window_lost + (l.lost_bytes / s.p.mss);
    match l.kind with
    | `Timeout ->
        s.ssthresh <- Float.max (s.cwnd /. 2.) (2. *. mss);
        s.cwnd <- mss;
        s.recovery_until <- l.now +. Float.max s.last_rtt 0.01
    | `Dupack ->
        let loss_frac =
          if s.window_sent = 0 then 0.
          else float_of_int s.window_lost /. float_of_int s.window_sent
        in
        (* Small loss fractions may be non-congestive: ignore them and let
           the ECN marks carry the congestion signal.  Demand a minimum
           sample so a single early loss cannot masquerade as a high
           fraction. *)
        if s.window_sent >= 100 && loss_frac > s.p.loss_tolerance then halve l.now
  in
  let on_send (i : Cca.send_info) =
    s.window_sent <- s.window_sent + (i.sent_bytes / s.p.mss)
  in
  {
    Cca.name = "ecn-reno";
    on_ack;
    on_loss;
    on_send;
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    inspect =
      (fun () ->
        [
          ("cwnd", s.cwnd);
          ("ssthresh", s.ssthresh);
          ( "loss_frac",
            if s.window_sent = 0 then 0.
            else float_of_int s.window_lost /. float_of_int s.window_sent );
        ]);
  }
