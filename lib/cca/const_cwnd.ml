let make ?(cwnd_packets = 10.) ?(mss = Cca.default_mss) () =
  Cca.make_stub ~name:"const-cwnd"
    ~cwnd_bytes:(cwnd_packets *. float_of_int mss)
    ()
