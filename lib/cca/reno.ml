type params = {
  init_cwnd_packets : float;
  initial_ssthresh : float;
  mss : int;
}

let default_params =
  { init_cwnd_packets = 4.; initial_ssthresh = infinity; mss = Cca.default_mss }

type state = {
  p : params;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable recovery_until : float;
  mutable last_rtt : float;
}

let make ?(params = default_params) () =
  let mss = float_of_int params.mss in
  let s =
    {
      p = params;
      cwnd = params.init_cwnd_packets *. mss;
      ssthresh = params.initial_ssthresh;
      recovery_until = neg_infinity;
      last_rtt = 0.;
    }
  in
  let on_ack (a : Cca.ack_info) =
    s.last_rtt <- a.rtt;
    let acked = float_of_int a.acked_bytes in
    if s.cwnd < s.ssthresh then s.cwnd <- s.cwnd +. acked
    else s.cwnd <- s.cwnd +. (mss *. acked /. s.cwnd)
  in
  let on_loss (l : Cca.loss_info) =
    if l.now >= s.recovery_until then begin
      s.recovery_until <- l.now +. Float.max s.last_rtt 0.01;
      match l.kind with
      | `Dupack ->
          s.ssthresh <- Float.max (s.cwnd /. 2.) (2. *. mss);
          s.cwnd <- s.ssthresh
      | `Timeout ->
          s.ssthresh <- Float.max (s.cwnd /. 2.) (2. *. mss);
          s.cwnd <- mss
    end
  in
  {
    Cca.name = "reno";
    on_ack;
    on_loss;
    on_send = (fun _ -> ());
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    inspect = (fun () -> [ ("cwnd", s.cwnd); ("ssthresh", s.ssthresh) ]);
  }
