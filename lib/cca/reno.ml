type params = {
  init_cwnd_packets : float;
  initial_ssthresh : float;
  mss : int;
}

let default_params =
  { init_cwnd_packets = 4.; initial_ssthresh = infinity; mss = Cca.default_mss }

type state = {
  p : params;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable recovery_until : float;
  mutable last_rtt : float;
}

(* --- Columnar variant ---------------------------------------------------- *)

(* Same algorithm as [make], with the mutable record replaced by one row
   of a shared {!Columns} arena.  The two implementations are kept
   textually parallel on purpose: a qcheck property asserts they are
   trace-equivalent (byte-identical census output), so any drift between
   them is caught, and the boxed path remains the readable reference. *)

let nfields = 4
let f_cwnd = 0
let f_ssthresh = 1
let f_recovery = 2
let f_last_rtt = 3

let make_in ?(params = default_params) cols =
  if Columns.nfields cols <> nfields then
    invalid_arg "Reno.make_in: arena has the wrong number of fields";
  let mss = float_of_int params.mss in
  let r = Columns.alloc cols in
  let reset () =
    Columns.set cols r f_cwnd (params.init_cwnd_packets *. mss);
    Columns.set cols r f_ssthresh params.initial_ssthresh;
    Columns.set cols r f_recovery neg_infinity;
    Columns.set cols r f_last_rtt 0.
  in
  reset ();
  let on_ack (a : Cca.ack_info) =
    Columns.set cols r f_last_rtt a.rtt;
    let acked = float_of_int a.acked_bytes in
    let cwnd = Columns.get cols r f_cwnd in
    if cwnd < Columns.get cols r f_ssthresh then
      Columns.set cols r f_cwnd (cwnd +. acked)
    else Columns.set cols r f_cwnd (cwnd +. (mss *. acked /. cwnd))
  in
  let on_loss (l : Cca.loss_info) =
    if l.now >= Columns.get cols r f_recovery then begin
      Columns.set cols r f_recovery
        (l.now +. Float.max (Columns.get cols r f_last_rtt) 0.01);
      match l.kind with
      | `Dupack ->
          let ss = Float.max (Columns.get cols r f_cwnd /. 2.) (2. *. mss) in
          Columns.set cols r f_ssthresh ss;
          Columns.set cols r f_cwnd ss
      | `Timeout ->
          Columns.set cols r f_ssthresh
            (Float.max (Columns.get cols r f_cwnd /. 2.) (2. *. mss));
          Columns.set cols r f_cwnd mss
    end
  in
  let cca =
    {
      Cca.name = "reno";
      on_ack;
      on_loss;
      on_send = (fun _ -> ());
      on_timer = (fun _ -> ());
      next_timer = (fun () -> None);
      cwnd = (fun () -> Columns.get cols r f_cwnd);
      pacing_rate = (fun () -> None);
      inspect =
        (fun () ->
          [
            ("cwnd", Columns.get cols r f_cwnd);
            ("ssthresh", Columns.get cols r f_ssthresh);
          ]);
    }
  in
  { Cca.cca; reset = Some reset; release = (fun () -> Columns.free cols r) }

let make ?(params = default_params) () =
  let mss = float_of_int params.mss in
  let s =
    {
      p = params;
      cwnd = params.init_cwnd_packets *. mss;
      ssthresh = params.initial_ssthresh;
      recovery_until = neg_infinity;
      last_rtt = 0.;
    }
  in
  let on_ack (a : Cca.ack_info) =
    s.last_rtt <- a.rtt;
    let acked = float_of_int a.acked_bytes in
    if s.cwnd < s.ssthresh then s.cwnd <- s.cwnd +. acked
    else s.cwnd <- s.cwnd +. (mss *. acked /. s.cwnd)
  in
  let on_loss (l : Cca.loss_info) =
    if l.now >= s.recovery_until then begin
      s.recovery_until <- l.now +. Float.max s.last_rtt 0.01;
      match l.kind with
      | `Dupack ->
          s.ssthresh <- Float.max (s.cwnd /. 2.) (2. *. mss);
          s.cwnd <- s.ssthresh
      | `Timeout ->
          s.ssthresh <- Float.max (s.cwnd /. 2.) (2. *. mss);
          s.cwnd <- mss
    end
  in
  {
    Cca.name = "reno";
    on_ack;
    on_loss;
    on_send = (fun _ -> ());
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> s.cwnd);
    pacing_rate = (fun () -> None);
    inspect = (fun () -> [ ("cwnd", s.cwnd); ("ssthresh", s.ssthresh) ]);
  }
