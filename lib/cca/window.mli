(** Sliding-window filters over timestamped samples.

    Used by BBR (windowed-max bandwidth), Copa (standing RTT = windowed-min
    over half an RTT), and the experiment analysis code.  Samples must be
    pushed with non-decreasing timestamps; stale samples are evicted lazily
    on push and query. *)

(** Windowed minimum/maximum filter.  O(1) amortized per push. *)
module Extremum : sig
  type t

  val create_min : window:float -> t
  (** Filter reporting the minimum over the last [window] seconds. *)

  val create_max : window:float -> t
  (** Filter reporting the maximum over the last [window] seconds. *)

  val push : t -> time:float -> float -> unit
  (** Insert a sample.  Times must be non-decreasing. *)

  val get : t -> float option
  (** Current extremum over the window, [None] if the window is empty. *)

  val get_default : t -> float -> float
  (** [get_default t d] is the extremum, or [d] when empty. *)

  val set_window : t -> float -> unit
  (** Change the window length (takes effect on subsequent evictions). *)

  val clear : t -> unit
end

(** Exponentially weighted moving average. *)
module Ewma : sig
  type t

  val create : gain:float -> t
  (** [gain] in (0, 1]: weight of each new sample. *)

  val push : t -> float -> unit
  val get : t -> float option
  val get_default : t -> float -> float
end
