type ack_info = {
  mutable now : float;
  mutable rtt : float;
  mutable acked_bytes : int;
  mutable sent_time : float;
  mutable delivered : int;
  mutable delivered_now : int;
  mutable inflight : int;
  mutable app_limited : bool;
  mutable ecn_ce : bool;
}

type loss_info = {
  now : float;
  lost_bytes : int;
  lost_packets : (float * int) list;
  inflight : int;
  kind : [ `Dupack | `Timeout ];
}

type send_info = {
  mutable now : float;
  mutable sent_bytes : int;
  mutable inflight : int;
}

type t = {
  name : string;
  on_ack : ack_info -> unit;
  on_loss : loss_info -> unit;
  on_send : send_info -> unit;
  on_timer : float -> unit;
  next_timer : unit -> float option;
  cwnd : unit -> float;
  pacing_rate : unit -> float option;
  inspect : unit -> (string * float) list;
}

type instance = {
  cca : t;
  reset : (unit -> unit) option;
  release : unit -> unit;
}

let default_mss = 1500

let instance_of ?(release = ignore) cca = { cca; reset = None; release }

let make_stub ?(name = "const-cwnd") ~cwnd_bytes () =
  {
    name;
    on_ack = (fun _ -> ());
    on_loss = (fun _ -> ());
    on_send = (fun _ -> ());
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> cwnd_bytes);
    pacing_rate = (fun () -> None);
    inspect = (fun () -> [ ("cwnd", cwnd_bytes) ]);
  }

let bandwidth_sample (a : ack_info) =
  let interval = a.now -. a.sent_time in
  let bytes = a.delivered_now - a.delivered in
  if interval <= 0. || bytes <= 0 then 0.
  else float_of_int bytes /. interval
