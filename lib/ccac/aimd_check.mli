(** Discretized two-flow AIMD model with an adversarial dropper
    (Appendix C / §5.4).

    One step = one RTT.  Both flows run AIMD: +1 packet per RTT, halve on a
    loss event.  The shared FIFO bottleneck carries [bdp] packets per RTT
    over a buffer of [buffer] packets; when joint demand exceeds
    bdp + buffer, at least one flow must lose (drop-tail), and the
    adversary picks which (modeling burstiness/delayed-ACK bias, the
    Figure 7 mechanism).  Optionally the adversary may also inject
    non-congestive drops on flow 1 (the §5.4 random-loss attack on
    loss-based CCAs).

    The check asks: over all traces of [horizon] RTTs, how unfair can the
    adversary make the outcome?  The paper (using CCAC) proved unfairness
    is bounded over 10 RTTs for 1-BDP buffers without injected loss; this
    module reproduces that with exhaustive search, and shows the bound
    grows once injected loss is allowed. *)

(** Adversary move for one RTT. *)
type choice = Victim_1 | Victim_2 | Victim_both | Inject_loss_1 | No_op

type state = {
  w1 : float;  (** flow 1 cwnd, packets *)
  w2 : float;
  acked1 : float;  (** cumulative goodput, packets *)
  acked2 : float;
  steps : int;
}

type verdict = {
  max_ratio : float;  (** worst x2/x1 the adversary achieved *)
  utilization : float;  (** utilization on that worst trace *)
  trace : choice list;
  exhaustive : bool;  (** DFS (exact) or beam (lower bound) *)
}

val check :
  bdp:float ->
  buffer:float ->
  horizon:int ->
  ?allow_injected_loss:bool ->
  ?w1_0:float ->
  ?w2_0:float ->
  ?beam_width:int ->
  unit ->
  verdict
(** Initial windows default to (1, bdp) — the worst case of a newcomer
    meeting an incumbent.  DFS is used when the tree has at most ~2e6
    leaves, otherwise beam search with [beam_width] (default 4096). *)
