type 's cca = {
  name : string;
  init : 's;
  update : 's -> delay:float -> acked:float -> lost:bool -> 's;
  rate : 's -> float;
}

let vegas_model ~rm ~mss ~alpha =
  {
    name = "vegas-model";
    init = 4. *. mss;
    update =
      (fun cwnd ~delay ~acked:_ ~lost ->
        if lost then Float.max (cwnd /. 2.) (2. *. mss)
        else begin
          let queued_pkts = cwnd /. mss *. (Float.max 0. (delay -. rm) /. delay) in
          let next =
            if queued_pkts < alpha then cwnd +. mss
            else if queued_pkts > alpha +. 2. then cwnd -. mss
            else cwnd
          in
          Float.max next (2. *. mss)
        end);
    rate = (fun cwnd -> cwnd /. rm);
  }

let aimd_model ~rm ~mss =
  {
    name = "aimd-model";
    init = 4. *. mss;
    update =
      (fun cwnd ~delay:_ ~acked:_ ~lost ->
        if lost then Float.max (cwnd /. 2.) mss else cwnd +. mss);
    rate = (fun cwnd -> cwnd /. rm);
  }

(* ------------------------------------------------------------------ *)
(* Fluid per-RTT update laws.  These drive the discretised fluid
   backend in [lib/fluid]: the engine calls [f_update] once per
   observed RTT with the epoch's feedback, and derives the sending
   rate as cwnd / delay (self-clocking).  Unlike [vegas_model] above,
   the perceived base RTT here is the running minimum of observed
   delays, so jitter can poison it — which is the starvation
   mechanism the threshold sweep measures. *)

type fluid = {
  f_name : string;
  f_nstate : int;  (* length of the state vector *)
  f_init : mss:float -> float array;
  f_update :
    float array ->
    mss:float ->
    delay:float ->
    min_delay:float ->
    acked:float ->
    lost:bool ->
    unit;
  f_cwnd : float array -> float;
  f_warm : float array -> cwnd:float -> unit;
}

let clamp_floor ~mss cwnd = Float.max cwnd (2. *. mss)

(* All three laws keep cwnd in slot 0 and a slow-start flag in slot 1;
   warming from an externally observed window exits slow start. *)
let warm_cwnd s ~cwnd =
  s.(0) <- cwnd;
  s.(1) <- 0.

(* Reno: +1 mss per RTT in congestion avoidance, double in slow start
   until the first loss, halve on a lossy epoch.  Delay-blind. *)
let reno_fluid =
  {
    f_name = "reno";
    f_nstate = 2;
    f_init = (fun ~mss -> [| 4. *. mss; 1. |]);
    f_update =
      (fun s ~mss ~delay:_ ~min_delay:_ ~acked:_ ~lost ->
        if lost then begin
          s.(1) <- 0.;
          s.(0) <- clamp_floor ~mss (s.(0) /. 2.)
        end
        else if s.(1) > 0.5 then s.(0) <- s.(0) *. 2.
        else s.(0) <- s.(0) +. mss);
    f_cwnd = (fun s -> s.(0));
    f_warm = warm_cwnd;
  }

(* Vegas: slow-start doubling until the perceived queue exceeds
   [gamma] packets, then AIAD toward the [alpha]..[beta] corridor of
   queued packets, estimated as cwnd/mss * (delay - min_delay)/delay. *)
let vegas_fluid ?(alpha = 2.) ?(beta = 4.) ?(gamma = 1.) () =
  {
    f_name = "vegas";
    f_nstate = 2;
    f_init = (fun ~mss -> [| 4. *. mss; 1. |]);
    f_update =
      (fun s ~mss ~delay ~min_delay ~acked:_ ~lost ->
        if lost then begin
          s.(1) <- 0.;
          s.(0) <- clamp_floor ~mss (s.(0) /. 2.)
        end
        else begin
          let queued =
            s.(0) /. mss *. (Float.max 0. (delay -. min_delay) /. delay)
          in
          if s.(1) > 0.5 then
            if queued > gamma then s.(1) <- 0. else s.(0) <- s.(0) *. 2.;
          if s.(1) < 0.5 then begin
            if queued < alpha then s.(0) <- s.(0) +. mss
            else if queued > beta then s.(0) <- s.(0) -. mss;
            s.(0) <- clamp_floor ~mss s.(0)
          end
        end);
    f_cwnd = (fun s -> s.(0));
    f_warm = warm_cwnd;
  }

(* Copa: target rate 1/(delta * dq) packets/s where dq is the
   perceived queueing delay; cwnd moves by mss/delta per RTT toward
   the target (velocity 1), doubling while below target in slow
   start.  With one flow on a link of rate C this settles at
   dq = mss / (delta * C) — the same equilibrium the packet-level
   [Copa.equilibrium_queue_delay] predicts. *)
let copa_fluid ?(delta = 0.5) () =
  {
    f_name = "copa";
    f_nstate = 2;
    f_init = (fun ~mss -> [| 4. *. mss; 1. |]);
    f_update =
      (fun s ~mss ~delay ~min_delay ~acked:_ ~lost ->
        if lost then begin
          s.(1) <- 0.;
          s.(0) <- clamp_floor ~mss (s.(0) /. 2.)
        end
        else begin
          let dq = Float.max 0. (delay -. min_delay) in
          let target_pps = if dq <= 0. then infinity else 1. /. (delta *. dq) in
          let current_pps = s.(0) /. mss /. delay in
          if s.(1) > 0.5 then
            if current_pps < target_pps then s.(0) <- s.(0) *. 2.
            else s.(1) <- 0.;
          if s.(1) < 0.5 then begin
            if current_pps <= target_pps then s.(0) <- s.(0) +. (mss /. delta)
            else s.(0) <- s.(0) -. (mss /. delta);
            s.(0) <- clamp_floor ~mss s.(0)
          end
        end);
    f_cwnd = (fun s -> s.(0));
    f_warm = warm_cwnd;
  }

let fluid_of_name name =
  match String.lowercase_ascii name with
  | "reno" -> reno_fluid
  | "vegas" -> vegas_fluid ()
  | "copa" -> copa_fluid ()
  | other -> invalid_arg (Printf.sprintf "Model.fluid_of_name: %s" other)

type choice = {
  waste : bool;
  split_bias : [ `Fifo | `Favor_1 | `Favor_2 ];
  jitter_1 : float;
  jitter_2 : float;
}

type 's state = {
  cca1 : 's;
  cca2 : 's;
  arrived1 : float;
  arrived2 : float;
  served1 : float;  (** physical cumulative service *)
  served2 : float;
  counted1 : float;  (** service after the warmup — the metric inputs *)
  counted2 : float;
  served1_lag : float;
  served2_lag : float;
  steps : int;
}

let queue st = st.arrived1 +. st.arrived2 -. st.served1 -. st.served2

let unfairness st =
  let x1 = st.counted1 and x2 = st.counted2 in
  if x1 <= 0. then if x2 > 0. then infinity else 1.
  else Float.max (x2 /. x1) (x1 /. x2)

let utilization ~link_rate ~rm ~warmup st =
  let measured = max (st.steps - warmup) 1 in
  (st.counted1 +. st.counted2) /. (link_rate *. rm *. float_of_int measured)

let system ~cca ~link_rate ~rm ~big_d ~buffer ~warmup ~score =
  let jitters = [ 0.; big_d /. 2.; big_d ] in
  let choices st =
    let backlogged = queue st > 1e-9 in
    let wastes = if backlogged then [ false ] else [ false; true ] in
    List.concat_map
      (fun waste ->
        List.concat_map
          (fun split_bias ->
            List.concat_map
              (fun jitter_1 ->
                List.map
                  (fun jitter_2 -> { waste; split_bias; jitter_1; jitter_2 })
                  jitters)
              jitters)
          [ `Fifo; `Favor_1; `Favor_2 ])
      wastes
  in
  let step st c =
    (* Arrivals this step at the CCAs' current rates, clipped by the
       buffer: bytes beyond it are dropped and become the loss signal. *)
    let a1_want = cca.rate st.cca1 *. rm and a2_want = cca.rate st.cca2 *. rm in
    let q0 = queue st in
    let room = Float.max 0. (buffer +. (link_rate *. rm) -. q0) in
    let want = a1_want +. a2_want in
    let scale = if want <= room || want <= 0. then 1. else room /. want in
    let a1 = a1_want *. scale and a2 = a2_want *. scale in
    let lost1 = scale < 1. -. 1e-12 && a1_want > 0. in
    let lost2 = scale < 1. -. 1e-12 && a2_want > 0. in
    let arrived1 = st.arrived1 +. a1 and arrived2 = st.arrived2 +. a2 in
    (* Service: full rate when backlogged; wasteable otherwise. *)
    let backlog1 = arrived1 -. st.served1 and backlog2 = arrived2 -. st.served2 in
    let capacity = if c.waste then 0. else link_rate *. rm in
    let total_served = Float.min (backlog1 +. backlog2) capacity in
    (* FIFO relaxation floors: each flow must receive at least what it had
       enqueued one queueing-delay ago (already-served bytes count). *)
    let floor1 = Float.min backlog1 (Float.max 0. (st.served1_lag -. st.served1)) in
    let floor2 = Float.min backlog2 (Float.max 0. (st.served2_lag -. st.served2)) in
    let floor_total = Float.min total_served (floor1 +. floor2) in
    let spare = total_served -. floor_total in
    let s1, s2 =
      let room1 = backlog1 -. floor1 and room2 = backlog2 -. floor2 in
      match c.split_bias with
      | `Favor_1 ->
          let extra1 = Float.min spare room1 in
          (floor1 +. extra1, floor2 +. Float.min (spare -. extra1) room2)
      | `Favor_2 ->
          let extra2 = Float.min spare room2 in
          (floor1 +. Float.min (spare -. extra2) room1, floor2 +. extra2)
      | `Fifo ->
          (* Proportional to backlog — the neutral FIFO approximation. *)
          let total_room = room1 +. room2 in
          if total_room <= 0. then (floor1, floor2)
          else
            ( floor1 +. (spare *. room1 /. total_room),
              floor2 +. (spare *. room2 /. total_room) )
    in
    let served1 = st.served1 +. s1 and served2 = st.served2 +. s2 in
    (* Observed delays: queueing plus adversarial jitter. *)
    let qd =
      (arrived1 +. arrived2 -. served1 -. served2) /. link_rate
    in
    let d1 = rm +. qd +. c.jitter_1 and d2 = rm +. qd +. c.jitter_2 in
    (* Eventual-throughput accounting: service before warmup does not
       count toward the fairness/utilization metrics. *)
    let count = st.steps >= warmup in
    {
      cca1 = cca.update st.cca1 ~delay:d1 ~acked:s1 ~lost:lost1;
      cca2 = cca.update st.cca2 ~delay:d2 ~acked:s2 ~lost:lost2;
      arrived1;
      arrived2;
      served1;
      served2;
      counted1 = (st.counted1 +. if count then s1 else 0.);
      counted2 = (st.counted2 +. if count then s2 else 0.);
      served1_lag = arrived1 -. (qd *. cca.rate st.cca1);
      served2_lag = arrived2 -. (qd *. cca.rate st.cca2);
      steps = st.steps + 1;
    }
  in
  {
    Search.initial =
      {
        cca1 = cca.init;
        cca2 = cca.init;
        arrived1 = 0.;
        arrived2 = 0.;
        served1 = 0.;
        served2 = 0.;
        counted1 = 0.;
        counted2 = 0.;
        served1_lag = 0.;
        served2_lag = 0.;
        steps = 0;
      };
    choices;
    step;
    score;
  }

let max_unfairness ~cca ~link_rate ~rm ~big_d ?buffer ~horizon ?(beam_width = 256) () =
  let buffer = Option.value buffer ~default:infinity in
  let sys =
    system ~cca ~link_rate ~rm ~big_d ~buffer ~warmup:(horizon / 2)
      ~score:unfairness
  in
  let best = Search.beam_max sys ~horizon ~width:beam_width in
  (best.Search.score, best.Search.trace)

let min_utilization ~cca ~link_rate ~rm ~big_d ?buffer ~horizon ?(beam_width = 256) () =
  let warmup = horizon / 2 in
  let buffer = Option.value buffer ~default:infinity in
  let score st = 1. -. utilization ~link_rate ~rm ~warmup st in
  let sys = system ~cca ~link_rate ~rm ~big_d ~buffer ~warmup ~score in
  let best = Search.beam_max sys ~horizon ~width:beam_width in
  1. -. best.Search.score
