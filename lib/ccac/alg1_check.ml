type curve = Exponential | Vegas_like

type dynamics = Aimd | Aiad

type state = {
  mu1 : float;
  mu2 : float;
  queue : float;
  acked1 : float;
  acked2 : float;
  steps : int;
}

type verdict = {
  max_ratio : float;
  min_utilization : float;
  ratio_trace : (float * float) list;
  horizon : int;
}

let threshold ~params ~curve ~d =
  match curve with
  | Exponential -> Alg1.target_rate params ~d
  | Vegas_like ->
      (* Same endpoints as the exponential curve: mu(rm + rmax) = mu-. *)
      let alpha = params.Alg1.mu_minus *. params.Alg1.rmax in
      if d <= params.Alg1.rm then infinity else alpha /. (d -. params.Alg1.rm)

let system ~params ~link_rate ~curve ~dynamics ~warmup ~score =
  let p = params in
  let rm = p.Alg1.rm in
  let jitter_levels = [ 0.; p.Alg1.d_jitter /. 2.; p.Alg1.d_jitter ] in
  let choices _ =
    List.concat_map (fun j1 -> List.map (fun j2 -> (j1, j2)) jitter_levels) jitter_levels
  in
  let update mu d =
    let next =
      if mu < threshold ~params:p ~curve ~d then mu +. p.Alg1.a
      else
        match dynamics with
        | Aimd -> p.Alg1.b *. mu
        | Aiad -> mu -. p.Alg1.a
    in
    Float.max next p.Alg1.mu_minus
  in
  let step st (j1, j2) =
    let qd = st.queue /. link_rate in
    let d1 = rm +. qd +. j1 and d2 = rm +. qd +. j2 in
    let total = st.mu1 +. st.mu2 in
    let served = Float.min total link_rate in
    let share mu = if total <= 0. then 0. else served *. mu /. total in
    (* Throughput is an eventual property (Definitions 2 and 4): only
       account for service after the warmup, so the additive climb from
       the initial rates does not masquerade as unfairness. *)
    let count = st.steps >= warmup in
    {
      mu1 = update st.mu1 d1;
      mu2 = update st.mu2 d2;
      queue = Float.max 0. (st.queue +. ((total -. link_rate) *. rm));
      acked1 = (st.acked1 +. if count then share st.mu1 *. rm else 0.);
      acked2 = (st.acked2 +. if count then share st.mu2 *. rm else 0.);
      steps = st.steps + 1;
    }
  in
  {
    Search.initial =
      {
        mu1 = p.Alg1.mu_minus;
        mu2 = link_rate;
        queue = 0.;
        acked1 = 0.;
        acked2 = 0.;
        steps = 0;
      };
    choices;
    step;
    score;
  }

let ratio st =
  if st.acked1 <= 0. then if st.acked2 > 0. then infinity else 1.
  else Float.max (st.acked2 /. st.acked1) (st.acked1 /. st.acked2)

let check ~params ~link_rate ~curve ?(dynamics = Aimd) ~horizon ?(beam_width = 512) () =
  let warmup = horizon / 2 in
  let ratio_sys = system ~params ~link_rate ~curve ~dynamics ~warmup ~score:ratio in
  let best_ratio = Search.beam_max ratio_sys ~horizon ~width:beam_width in
  let underutil st =
    let measured = max (st.steps - warmup) 1 in
    let capacity = link_rate *. params.Alg1.rm *. float_of_int measured in
    1. -. ((st.acked1 +. st.acked2) /. capacity)
  in
  let util_sys = system ~params ~link_rate ~curve ~dynamics ~warmup ~score:underutil in
  let worst_util = Search.beam_max util_sys ~horizon ~width:beam_width in
  {
    max_ratio = best_ratio.Search.score;
    min_utilization = 1. -. worst_util.Search.score;
    ratio_trace = best_ratio.Search.trace;
    horizon;
  }
