(** The CCAC-style discretized network model, extended to two flows as in
    Appendix C.

    Time advances in steps of one Rm.  The model tracks per-flow cumulative
    arrivals A_i and service S_i (bytes).  Each step the adversary picks:

    - whether the link wastes its spare capacity (CCAC's waste variable —
      only available when the queue is empty, so a backlogged link must
      serve at full rate);
    - how the served bytes split between the flows, within the Appendix C
      FIFO relaxation [S_i(t) > A_i(t - d_t)]: a flow must receive at
      least the bytes it had already enqueued one queueing-delay ago, but
      between that floor and its full backlog the split is adversarial
      (modeling burst interleaving at the queue);
    - each flow's non-congestive delay from {0, D/2, D} (the §3 element).

    The CCA under test is supplied as a pure update function so states can
    be shared across search branches.  Two reference models are included:
    a Vegas-style AIAD-on-delay and a plain AIMD. *)

type 's cca = {
  name : string;
  init : 's;
  update : 's -> delay:float -> acked:float -> lost:bool -> 's;
      (** one Rm's worth of feedback: observed (jitterable) RTT, bytes
          delivered, and whether the flow physically lost packets to a
          buffer overflow this step.  Loss is physical — jitter cannot
          fake it, which is exactly why loss-based CCAs resist the delay
          adversary (§5.4). *)
  rate : 's -> float;  (** current sending rate, bytes/s *)
}

val vegas_model : rm:float -> mss:float -> alpha:float -> float cca
(** AIAD toward [alpha] packets of perceived queueing (state = cwnd bytes).
    The perceived base RTT is the true [rm] — an oracle that only makes
    the model *harder* to break, so found violations are conservative. *)

val aimd_model : rm:float -> mss:float -> float cca
(** +1 packet per Rm, halve on physical loss.  State = cwnd bytes.
    Delay-blind, so the jitter adversary cannot touch it directly. *)

(** Adversary move for one step. *)
type choice = {
  waste : bool;  (** waste spare capacity this step (queue must be empty) *)
  split_bias : [ `Fifo | `Favor_1 | `Favor_2 ];
  jitter_1 : float;
  jitter_2 : float;
}

type 's state = {
  cca1 : 's;
  cca2 : 's;
  arrived1 : float;  (** cumulative bytes *)
  arrived2 : float;
  served1 : float;  (** physical cumulative service *)
  served2 : float;
  counted1 : float;  (** post-warmup service — what the metrics use *)
  counted2 : float;
  served1_lag : float;  (** A_1 one queueing-delay ago: the FIFO floor *)
  served2_lag : float;
  steps : int;
}

val system :
  cca:'s cca ->
  link_rate:float ->
  rm:float ->
  big_d:float ->
  buffer:float ->
  warmup:int ->
  score:('s state -> float) ->
  ('s state, choice) Search.system
(** Build a searchable system.  [buffer] (bytes; pass [infinity] for the
    unbounded ideal queue) bounds the physical queue; arrivals beyond it
    are dropped and reported to the CCA as loss.  [score] is evaluated on
    final states; service is only credited to the metrics after [warmup]
    steps (throughput is an eventual property). *)

val unfairness : 's state -> float
(** max ratio of the counted (post-warmup) services, with infinity for
    starvation. *)

val utilization : link_rate:float -> rm:float -> warmup:int -> 's state -> float

val max_unfairness :
  cca:'s cca ->
  link_rate:float ->
  rm:float ->
  big_d:float ->
  ?buffer:float ->
  horizon:int ->
  ?beam_width:int ->
  unit ->
  float * choice list
(** Beam-search the adversary's best unfairness over [horizon] steps. *)

val min_utilization :
  cca:'s cca ->
  link_rate:float ->
  rm:float ->
  big_d:float ->
  ?buffer:float ->
  horizon:int ->
  ?beam_width:int ->
  unit ->
  float
(** Beam-search the adversary's best under-utilization (single metric). *)
