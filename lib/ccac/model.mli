(** The CCAC-style discretized network model, extended to two flows as in
    Appendix C.

    Time advances in steps of one Rm.  The model tracks per-flow cumulative
    arrivals A_i and service S_i (bytes).  Each step the adversary picks:

    - whether the link wastes its spare capacity (CCAC's waste variable —
      only available when the queue is empty, so a backlogged link must
      serve at full rate);
    - how the served bytes split between the flows, within the Appendix C
      FIFO relaxation [S_i(t) > A_i(t - d_t)]: a flow must receive at
      least the bytes it had already enqueued one queueing-delay ago, but
      between that floor and its full backlog the split is adversarial
      (modeling burst interleaving at the queue);
    - each flow's non-congestive delay from {0, D/2, D} (the §3 element).

    The CCA under test is supplied as a pure update function so states can
    be shared across search branches.  Two reference models are included:
    a Vegas-style AIAD-on-delay and a plain AIMD. *)

type 's cca = {
  name : string;
  init : 's;
  update : 's -> delay:float -> acked:float -> lost:bool -> 's;
      (** one Rm's worth of feedback: observed (jitterable) RTT, bytes
          delivered, and whether the flow physically lost packets to a
          buffer overflow this step.  Loss is physical — jitter cannot
          fake it, which is exactly why loss-based CCAs resist the delay
          adversary (§5.4). *)
  rate : 's -> float;  (** current sending rate, bytes/s *)
}

val vegas_model : rm:float -> mss:float -> alpha:float -> float cca
(** AIAD toward [alpha] packets of perceived queueing (state = cwnd bytes).
    The perceived base RTT is the true [rm] — an oracle that only makes
    the model *harder* to break, so found violations are conservative. *)

val aimd_model : rm:float -> mss:float -> float cca
(** +1 packet per Rm, halve on physical loss.  State = cwnd bytes.
    Delay-blind, so the jitter adversary cannot touch it directly. *)

(** {1 Fluid per-RTT update laws}

    These seed the discretised fluid backend in [lib/fluid].  The
    engine owns the clock: it tracks each flow's observed delay
    (propagation + queueing + jitter) and running minimum, groups
    feedback into one-RTT epochs, and calls [f_update] once per epoch.
    State is a plain float array so the engine can keep millions of
    flows in flat storage.  Unlike [vegas_model] above, the base-RTT
    estimate is the running min of observed delays — jitter can poison
    it, which is what the starvation threshold measures. *)

type fluid = {
  f_name : string;
  f_nstate : int;  (** length of the per-flow state vector *)
  f_init : mss:float -> float array;  (** fresh state for one flow *)
  f_update :
    float array ->
    mss:float ->
    delay:float ->
    min_delay:float ->
    acked:float ->
    lost:bool ->
    unit;
      (** advance one RTT epoch in place: [delay] is the epoch's
          observed RTT, [min_delay] the running minimum, [acked] the
          bytes delivered during the epoch, [lost] whether the flow
          saw drops this epoch. *)
  f_cwnd : float array -> float;  (** current window, bytes *)
  f_warm : float array -> cwnd:float -> unit;
      (** seed the state from an externally observed window (bytes) —
          the hybrid backend's packet->fluid translation.  Exits slow
          start. *)
}

val reno_fluid : fluid
(** Slow-start doubling until first loss, then +1 mss per RTT; halve
    on a lossy epoch.  Delay-blind. *)

val vegas_fluid : ?alpha:float -> ?beta:float -> ?gamma:float -> unit -> fluid
(** Slow-start until perceived queue > [gamma] packets, then AIAD
    toward the [alpha]..[beta] corridor (defaults 2..4, matching the
    packet-level [Cca.Vegas] defaults). *)

val copa_fluid : ?delta:float -> unit -> fluid
(** Velocity-1 Copa: move cwnd by mss/delta per RTT toward the target
    rate 1/(delta * dq) packets/s.  Single-flow equilibrium queueing
    delay is mss/(delta*C), matching [Cca.Copa.equilibrium_queue_delay]. *)

val fluid_of_name : string -> fluid
(** "reno" | "vegas" | "copa" (case-insensitive) with default
    parameters; raises [Invalid_argument] otherwise. *)

(** Adversary move for one step. *)
type choice = {
  waste : bool;  (** waste spare capacity this step (queue must be empty) *)
  split_bias : [ `Fifo | `Favor_1 | `Favor_2 ];
  jitter_1 : float;
  jitter_2 : float;
}

type 's state = {
  cca1 : 's;
  cca2 : 's;
  arrived1 : float;  (** cumulative bytes *)
  arrived2 : float;
  served1 : float;  (** physical cumulative service *)
  served2 : float;
  counted1 : float;  (** post-warmup service — what the metrics use *)
  counted2 : float;
  served1_lag : float;  (** A_1 one queueing-delay ago: the FIFO floor *)
  served2_lag : float;
  steps : int;
}

val system :
  cca:'s cca ->
  link_rate:float ->
  rm:float ->
  big_d:float ->
  buffer:float ->
  warmup:int ->
  score:('s state -> float) ->
  ('s state, choice) Search.system
(** Build a searchable system.  [buffer] (bytes; pass [infinity] for the
    unbounded ideal queue) bounds the physical queue; arrivals beyond it
    are dropped and reported to the CCA as loss.  [score] is evaluated on
    final states; service is only credited to the metrics after [warmup]
    steps (throughput is an eventual property). *)

val unfairness : 's state -> float
(** max ratio of the counted (post-warmup) services, with infinity for
    starvation. *)

val utilization : link_rate:float -> rm:float -> warmup:int -> 's state -> float

val max_unfairness :
  cca:'s cca ->
  link_rate:float ->
  rm:float ->
  big_d:float ->
  ?buffer:float ->
  horizon:int ->
  ?beam_width:int ->
  unit ->
  float * choice list
(** Beam-search the adversary's best unfairness over [horizon] steps. *)

val min_utilization :
  cca:'s cca ->
  link_rate:float ->
  rm:float ->
  big_d:float ->
  ?buffer:float ->
  horizon:int ->
  ?beam_width:int ->
  unit ->
  float
(** Beam-search the adversary's best under-utilization (single metric). *)
