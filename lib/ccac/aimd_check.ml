type choice = Victim_1 | Victim_2 | Victim_both | Inject_loss_1 | No_op

type state = {
  w1 : float;
  w2 : float;
  acked1 : float;
  acked2 : float;
  steps : int;
}

type verdict = {
  max_ratio : float;
  utilization : float;
  trace : choice list;
  exhaustive : bool;
}

let ratio st =
  if st.acked1 <= 0. then if st.acked2 > 0. then infinity else 1.
  else Float.max (st.acked2 /. st.acked1) (st.acked1 /. st.acked2)

let system ~bdp ~buffer ~allow_injected_loss =
  let deliver st =
    (* FIFO: capacity shared in proportion to demand. *)
    let demand = st.w1 +. st.w2 in
    let served = Float.min demand bdp in
    if demand <= 0. then (0., 0.)
    else (served *. st.w1 /. demand, served *. st.w2 /. demand)
  in
  let grow w = w +. 1. in
  let halve w = Float.max (w /. 2.) 1. in
  let choices st =
    let overflow = st.w1 +. st.w2 > bdp +. buffer in
    if overflow then [ Victim_1; Victim_2; Victim_both ]
    else if allow_injected_loss then [ No_op; Inject_loss_1 ]
    else [ No_op ]
  in
  let step st c =
    let a1, a2 = deliver st in
    let st = { st with acked1 = st.acked1 +. a1; acked2 = st.acked2 +. a2 } in
    let w1, w2 =
      match c with
      | No_op -> (grow st.w1, grow st.w2)
      | Victim_1 | Inject_loss_1 -> (halve st.w1, grow st.w2)
      | Victim_2 -> (grow st.w1, halve st.w2)
      | Victim_both -> (halve st.w1, halve st.w2)
    in
    { st with w1; w2; steps = st.steps + 1 }
  in
  fun ~w1_0 ~w2_0 ->
    {
      Search.initial = { w1 = w1_0; w2 = w2_0; acked1 = 0.; acked2 = 0.; steps = 0 };
      choices;
      step;
      score = ratio;
    }

let check ~bdp ~buffer ~horizon ?(allow_injected_loss = false) ?(w1_0 = 1.)
    ?(w2_0 = bdp) ?(beam_width = 4096) () =
  let sys = system ~bdp ~buffer ~allow_injected_loss ~w1_0 ~w2_0 in
  (* Branching is at most 3 per step; DFS is exact up to ~13 steps even in
     the worst case, and usually much cheaper because overflow is rare. *)
  let use_dfs =
    (not allow_injected_loss) && horizon <= 16
    || (allow_injected_loss && horizon <= 12)
  in
  let best =
    if use_dfs then Search.dfs_max sys ~horizon
    else Search.beam_max sys ~horizon ~width:beam_width
  in
  let st = best.Search.state in
  let util =
    (st.acked1 +. st.acked2) /. (bdp *. float_of_int (max st.steps 1))
  in
  {
    max_ratio = best.Search.score;
    utilization = util;
    trace = best.Search.trace;
    exhaustive = use_dfs;
  }
