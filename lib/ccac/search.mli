(** Bounded adversarial search over discretized network traces.

    The paper (and its Appendix C extension) uses the CCAC SMT verifier to
    ask "does a network trace of length T exist on which the CCA misbehaves
    (starves, or under-utilizes)?".  No SMT solver is available in this
    environment, so we answer the same bounded question by explicit search
    over a discretized adversary-choice alphabet: exhaustive DFS when the
    tree is small, beam search otherwise.  DFS results are exact for the
    discretized model; beam results are lower bounds on the adversary's
    best score. *)

type ('s, 'c) system = {
  initial : 's;
  choices : 's -> 'c list;  (** adversary moves available in this state *)
  step : 's -> 'c -> 's;  (** must be pure: states are shared across branches *)
  score : 's -> float;  (** objective the adversary maximizes, at horizon *)
}

type ('s, 'c) best = { state : 's; score : float; trace : 'c list }

val dfs_max : ('s, 'c) system -> horizon:int -> ('s, 'c) best
(** Exhaustive depth-first maximization over all choice sequences of length
    [horizon].  Exact; exponential in the horizon. *)

val beam_max : ('s, 'c) system -> horizon:int -> width:int -> ('s, 'c) best
(** Keep the [width] best-scoring partial states per depth (scored with
    [score] on intermediate states).  A lower bound on the true optimum. *)

val count_leaves : ('s, 'c) system -> horizon:int -> int
(** Size of the DFS tree's leaf set — use to decide DFS vs beam. *)
