type ('s, 'c) system = {
  initial : 's;
  choices : 's -> 'c list;
  step : 's -> 'c -> 's;
  score : 's -> float;
}

type ('s, 'c) best = { state : 's; score : float; trace : 'c list }

let dfs_max sys ~horizon =
  let best = ref { state = sys.initial; score = neg_infinity; trace = [] } in
  let rec go state depth rev_trace =
    if depth = horizon then begin
      let score = sys.score state in
      if score > !best.score then
        best := { state; score; trace = List.rev rev_trace }
    end
    else
      match sys.choices state with
      | [] ->
          (* Dead end: score what we have. *)
          let score = sys.score state in
          if score > !best.score then
            best := { state; score; trace = List.rev rev_trace }
      | cs ->
          List.iter (fun c -> go (sys.step state c) (depth + 1) (c :: rev_trace)) cs
  in
  go sys.initial 0 [];
  !best

let beam_max sys ~horizon ~width =
  let expand (state, rev_trace) =
    match sys.choices state with
    | [] -> [ (state, rev_trace) ]
    | cs -> List.map (fun c -> (sys.step state c, c :: rev_trace)) cs
  in
  let rec go depth frontier =
    if depth = horizon then frontier
    else begin
      let next = List.concat_map expand frontier in
      let sorted =
        List.sort
          (fun (a, _) (b, _) -> Float.compare (sys.score b) (sys.score a))
          next
      in
      let rec take n = function
        | [] -> []
        | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
      in
      go (depth + 1) (take width sorted)
    end
  in
  let final = go 0 [ (sys.initial, []) ] in
  List.fold_left
    (fun acc (state, rev_trace) ->
      let score = sys.score state in
      if score > acc.score then { state; score; trace = List.rev rev_trace } else acc)
    { state = sys.initial; score = neg_infinity; trace = [] }
    final

let count_leaves sys ~horizon =
  let rec go state depth =
    if depth = horizon then 1
    else
      match sys.choices state with
      | [] -> 1
      | cs -> List.fold_left (fun acc c -> acc + go (sys.step state c) (depth + 1)) 0 cs
  in
  go sys.initial 0
