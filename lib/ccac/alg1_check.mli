(** Bounded verification of Algorithm 1 (§6.3) against the jitter
    adversary, in the style of the paper's CCAC checks.

    One step = one Rm.  Two flows run Algorithm 1 on a shared link of rate
    C; the queue evolves as a fluid.  Each step, the adversary
    independently picks each flow's non-congestive delay from
    {0, D/2, D} — the discretized §3 delay element.  The check searches for
    traces that make the flows more than s-unfair, or that leave the link
    under f-utilized, with rates inside [mu-, mu+].

    The paper reports CCAC could not break Algorithm 1; this bounded
    search reproduces that (score stays under the target), and also shows
    that the same adversary *does* break a Vegas-style curve under the
    same D (by replacing the rate-delay function). *)

type curve = Exponential | Vegas_like
(** Which rate-delay threshold the CCA uses: Algorithm 1's exponential
    curve, or a Vegas-family curve [mu = alpha / (d - rm)] with the same
    operating range — the §6.3 comparison. *)

type dynamics = Aimd | Aiad
(** The increase/decrease rule around the threshold.  The paper reports
    that CCAC pushed the design from Vegas/Copa-style AIAD to AIMD because
    "the fairness properties of AIMD are critical in the presence of
    measurement ambiguity"; the [Aiad] variant reproduces that ablation. *)

type state = {
  mu1 : float;  (** flow rates, bytes/s *)
  mu2 : float;
  queue : float;  (** bottleneck backlog, bytes *)
  acked1 : float;
  acked2 : float;
  steps : int;
}

type verdict = {
  max_ratio : float;  (** worst throughput ratio found *)
  min_utilization : float;  (** worst utilization found (separate search) *)
  ratio_trace : (float * float) list;  (** adversary jitters on worst ratio trace *)
  horizon : int;
}

val check :
  params:Alg1.params ->
  link_rate:float ->
  curve:curve ->
  ?dynamics:dynamics ->
  horizon:int ->
  ?beam_width:int ->
  unit ->
  verdict
(** [dynamics] defaults to [Aimd] (the published Algorithm 1). *)
