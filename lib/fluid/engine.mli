(** Fixed-step discretised fluid backend: n flows on one bottleneck,
    each advancing a {!Ccac.Model.fluid} per-RTT update law, the link
    integrating a fluid queue (occupancy ODE, proportional loss when
    the buffer is full, queueing-delay feedback plus per-flow jitter).

    Per step of length [dt] each active flow observes
    [delay = rm + extra_rm + q/C + jitter t], offers [cwnd/delay * dt]
    bytes, arrivals are clipped by the free buffer room (the clipped
    fraction dropped proportionally and flagged as loss), the queue
    serves [min(q, C*dt)] split by backlog, and a flow whose epoch is
    one observed RTT old runs its law's update.

    Deterministic: a pure function of the config (jitter closures
    included).  The byte ledger is exact up to float rounding —
    {!conservation_error} is the oracle input. *)

type flow_spec

val flow :
  ?start_time:float ->
  ?stop_time:float ->
  ?extra_rm:float ->
  ?jitter:(float -> float) ->
  ?size:float ->
  ?mss:float ->
  Ccac.Model.fluid ->
  flow_spec
(** [jitter] maps absolute sim time to the flow's non-congestive extra
    delay (the model's D element); [size] in bytes ([infinity] = an
    unbounded stream, the default). *)

type config = private {
  rate : float;  (** bottleneck, bytes/s *)
  buffer : float;  (** bytes; [infinity] = unbounded *)
  rm : float;  (** base propagation RTT, seconds *)
  dt : float;  (** step, seconds (default rm/8) *)
  t0 : float;
  duration : float;
  measure_from : float;  (** absolute time; counted bytes + queue integral *)
  initial_queue : float;  (** phantom backlog pre-loaded at [t0] *)
  flows : flow_spec array;
}

val config :
  rate:float ->
  ?buffer:float ->
  rm:float ->
  ?dt:float ->
  ?t0:float ->
  ?measure_from:float ->
  ?initial_queue:float ->
  duration:float ->
  flow_spec list ->
  config

type t

val create : config -> t
(** Flows with [start_time <= t0] are active immediately (so the hybrid
    driver can seed their state before stepping). *)

val run_until : t -> float -> unit
val run : t -> t
val run_config : config -> t

val now : t -> float
val steps : t -> int
val queue_bytes : t -> float
val mean_queue_bytes : t -> float
(** Time-average of the queue from [measure_from] to [now]. *)

val flow_cwnd : t -> int -> float
val set_flow_cwnd : t -> int -> float -> unit
(** Hybrid packet->fluid translation: seed the law state from an
    externally observed window (exits slow start). *)

val flow_min_delay : t -> int -> float
val set_flow_min_delay : t -> int -> float -> unit
val flow_delay : t -> int -> float
val flow_rate : t -> int -> float
(** cwnd over the last observed delay — the paced-rate estimate handed
    to the packet backend at a fluid->packet switch. *)

val served_bytes : t -> int -> float
val counted_bytes : t -> int -> float
(** Bytes served after [measure_from]. *)

val offered_bytes : t -> int -> float
val dropped_bytes : t -> int -> float
val completed : t -> int -> bool
val goodput : t -> int -> float
(** Served bytes over the flow's own active lifetime. *)

val accepted_total : t -> float
val served_total : t -> float
(** Includes the phantom initial-queue bytes drained through the link. *)

val offered_total : t -> float
val dropped_total : t -> float

val conservation_error : t -> float
(** [|initial_queue + accepted - served - queue|] in bytes: every
    accepted byte is either still queued or was served.  Should be
    within float rounding of 0; the fluid conservation oracle asserts
    it. *)
