type t = Packet | Fluid | Hybrid

let all = [ Packet; Fluid; Hybrid ]

let to_string = function
  | Packet -> "packet"
  | Fluid -> "fluid"
  | Hybrid -> "hybrid"

let of_string s =
  match String.lowercase_ascii s with
  | "packet" -> Ok Packet
  | "fluid" -> Ok Fluid
  | "hybrid" -> Ok Hybrid
  | other ->
      Error
        (Printf.sprintf "unknown backend %S (expected packet|fluid|hybrid)"
           other)
