(* Fluid port of the starvation census: a churning population of sized
   flows drawn from the same kind of labeled-Rng streams the packet
   [Sim.Population] engine uses (arrival times Poisson, sizes Pareto
   capped, per-flow constant jitter uniform in [0, jitter_d]), advanced
   by one shared fluid law.

   Unlike [Engine], which iterates every configured flow each step,
   this loop keeps an explicit active set (swap-remove on completion)
   so cost per step is O(active), not O(population) — the whole point
   of running a million-flow cell on the fluid backend.  Law state
   lives in per-flow arrays allocated at admission and dropped at
   completion, so resident state is bounded by peak concurrency. *)

type config = {
  key : string;
  seed : int;
  n : int;
  duration : float;
  arrival_frac : float;  (* arrivals span [0, arrival_frac * duration] *)
  rate : float;
  buffer : float;
  rm : float;
  mss : float;
  jitter_d : float;
  alpha : float;  (* pareto shape for sizes *)
  xm : float;  (* pareto scale, bytes *)
  size_cap : float;
  dt : float;
  law : Ccac.Model.fluid;
}

let config ~key ~seed ~n ~duration ~arrival_frac ~rate ?(buffer = infinity)
    ~rm ?(mss = 1500.) ~jitter_d ~alpha ~xm ~size_cap ?dt law =
  let dt = match dt with Some d -> d | None -> rm /. 4. in
  if n <= 0 || duration <= 0. || rate <= 0. || rm <= 0. || dt <= 0.
     || arrival_frac <= 0. || arrival_frac > 1. || jitter_d < 0.
  then invalid_arg "Fluid.Census.config";
  { key; seed; n; duration; arrival_frac; rate; buffer; rm; mss; jitter_d;
    alpha; xm; size_cap; dt; law }

type result = {
  goodputs : float array;
  completed : int;
  peak_active : int;
  steps : int;
  offered_bytes : float;
  served_bytes : float;
  conservation_error : float;
}

let run cfg =
  let n = cfg.n in
  let master = Sim.Rng.create ~seed:cfg.seed in
  let arr_rng = Sim.Rng.stream master ~label:(cfg.key ^ "/fluid-arrivals") in
  let size_rng = Sim.Rng.stream master ~label:(cfg.key ^ "/fluid-sizes") in
  let jit_rng = Sim.Rng.stream master ~label:(cfg.key ^ "/fluid-jitter") in
  let window = cfg.arrival_frac *. cfg.duration in
  let mean_gap = window /. float_of_int n in
  let arrival = Array.make n 0. in
  let size = Array.make n 0. in
  let jit = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. Sim.Rng.exponential arr_rng ~mean:mean_gap;
    arrival.(i) <- Float.min !acc cfg.duration;
    size.(i) <-
      Float.min cfg.size_cap (Sim.Rng.pareto size_rng ~alpha:cfg.alpha ~xm:cfg.xm);
    jit.(i) <- Sim.Rng.uniform jit_rng ~lo:0. ~hi:cfg.jitter_d
  done;
  (* Per-flow dynamic state; [state] rows exist only while active. *)
  let state = Array.make n [||] in
  let min_d = Array.make n infinity in
  let last_d = Array.make n infinity in
  let ep_start = Array.make n 0. in
  let ep_acked = Array.make n 0. in
  let ep_lost = Bytes.make n '\000' in
  let accepted = Array.make n 0. in
  let served = Array.make n 0. in
  let t_start = Array.make n nan in
  let t_end = Array.make n nan in
  let want = Array.make n 0. in
  let active = Array.make n 0 in
  let n_active = ref 0 in
  let peak_active = ref 0 in
  let completed = ref 0 in
  let offered_total = ref 0. in
  let q = ref 0. in
  let ptr = ref 0 in
  let t = ref 0. in
  let steps = ref 0 in
  let law = cfg.law in
  while !t < cfg.duration -. 1e-9 do
    let dt = Float.min cfg.dt (cfg.duration -. !t) in
    let t' = !t +. dt in
    (* Admissions. *)
    while !ptr < n && arrival.(!ptr) <= !t +. 1e-12 do
      let i = !ptr in
      state.(i) <- law.Ccac.Model.f_init ~mss:cfg.mss;
      t_start.(i) <- !t;
      ep_start.(i) <- !t;
      active.(!n_active) <- i;
      incr n_active;
      if !n_active > !peak_active then peak_active := !n_active;
      incr ptr
    done;
    let qd = !q /. cfg.rate in
    (* Offers. *)
    let total_want = ref 0. in
    for k = 0 to !n_active - 1 do
      let i = active.(k) in
      let d = cfg.rm +. qd +. jit.(i) in
      if d < min_d.(i) then min_d.(i) <- d;
      last_d.(i) <- d;
      let w =
        Float.min
          (law.Ccac.Model.f_cwnd state.(i) /. d *. dt)
          (Float.max 0. (size.(i) -. accepted.(i)))
      in
      want.(i) <- w;
      total_want := !total_want +. w
    done;
    let room = Float.max 0. (cfg.buffer +. (cfg.rate *. dt) -. !q) in
    let scale =
      if !total_want <= room || !total_want <= 0. then 1.
      else room /. !total_want
    in
    let lossy = scale < 1. -. 1e-12 in
    for k = 0 to !n_active - 1 do
      let i = active.(k) in
      let w = want.(i) in
      if w > 0. then begin
        offered_total := !offered_total +. w;
        let a = w *. scale in
        accepted.(i) <- accepted.(i) +. a;
        if lossy then Bytes.unsafe_set ep_lost i '\001';
        q := !q +. a
      end
    done;
    (* Service: proportional to backlog; total flow backlog = q. *)
    let s_total = Float.min !q (cfg.rate *. dt) in
    if s_total > 0. && !q > 0. then begin
      let share = s_total /. !q in
      for k = 0 to !n_active - 1 do
        let i = active.(k) in
        let b = Float.max 0. (accepted.(i) -. served.(i)) in
        if b > 0. then begin
          let s = b *. share in
          served.(i) <- served.(i) +. s;
          ep_acked.(i) <- ep_acked.(i) +. s
        end
      done;
      q := Float.max 0. (!q -. s_total)
    end;
    (* Epochs + completions (iterate downward: completion swap-removes). *)
    let k = ref (!n_active - 1) in
    while !k >= 0 do
      let i = active.(!k) in
      if t' -. ep_start.(i) >= last_d.(i) then begin
        law.Ccac.Model.f_update state.(i) ~mss:cfg.mss ~delay:last_d.(i)
          ~min_delay:min_d.(i) ~acked:ep_acked.(i)
          ~lost:(Bytes.unsafe_get ep_lost i <> '\000');
        ep_start.(i) <- t';
        ep_acked.(i) <- 0.;
        Bytes.unsafe_set ep_lost i '\000'
      end;
      if served.(i) >= size.(i) -. 1e-6 then begin
        t_end.(i) <- t';
        state.(i) <- [||];
        incr completed;
        decr n_active;
        active.(!k) <- active.(!n_active)
      end;
      decr k
    done;
    t := t';
    incr steps
  done;
  let served_total = ref 0. in
  let goodputs =
    Array.init n (fun i ->
        served_total := !served_total +. served.(i);
        if Float.is_nan t_start.(i) then 0.
        else
          let e = if Float.is_nan t_end.(i) then cfg.duration else t_end.(i) in
          let span = e -. t_start.(i) in
          if span <= 0. then 0. else served.(i) /. span)
  in
  let accepted_total = Array.fold_left ( +. ) 0. accepted in
  { goodputs;
    completed = !completed;
    peak_active = !peak_active;
    steps = !steps;
    offered_bytes = !offered_total;
    served_bytes = !served_total;
    conservation_error = Float.abs (accepted_total -. !served_total -. !q) }
