(** Simulation backend selector, threaded from [repro --backend] through
    the experiment registry into each experiment's job plan.  Cache keys
    must embed the backend (see DESIGN.md §14): the same experiment under
    a different backend is a different computation. *)

type t = Packet | Fluid | Hybrid

val all : t list
val to_string : t -> string
val of_string : string -> (t, string) result
(** "packet" | "fluid" | "hybrid", case-insensitive; [Error] names the
    accepted values. *)
