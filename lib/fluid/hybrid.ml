(* Hybrid backend: fluid far from discontinuities, packet-level inside
   a window after each event (flow starts, jitter/fault activations,
   known loss episodes — the caller names the event times).

   State translation at the seams:
   - fluid -> packet: each flow's fluid window becomes a warm packet
     CCA (the caller's [packet_cca ~cwnd] constructor, expected to set
     init_cwnd_packets / initial_ssthresh from it), paced at the fluid
     rate estimate via [initial_pacing], with one synthetic zero-byte
     ACK carrying the fluid min-delay so delay-based CCAs keep their
     (possibly jitter-poisoned) base-RTT estimate; the fluid queue is
     pre-loaded as [initial_queue_bytes].
   - packet -> fluid: the retained [Cca.t] handles give back the final
     window ([cwnd ()], seeded via the law's [f_warm]), the inspect
     min-RTT/base-RTT refreshes the fluid min-delay, tail throughput
     becomes the per-flow rate estimate, and the link's queued bytes
     carry over as the fluid initial queue.

   A byte ledger spans the seams: for every segment,
   q_start + inflow = outflow + q_end, where inflow is bytes entering
   the bottleneck (fluid accepted arrivals; packet offered minus the
   carried-in phantom queue) and outflow is bytes leaving it (fluid
   service; packet delivered + dropped).  Rounding the queue to whole
   bytes at fluid->packet seams is the only slack, bounded by one byte
   per handoff — the hybrid conservation oracle checks the chained
   identity against exactly that tolerance. *)

type flow_spec = {
  law : Ccac.Model.fluid;
  packet_cca : cwnd:float -> Cca.t;
  jitter : float -> float;
  jitter_bound : float;
  mss : float;
}

let flow ?(jitter = fun _ -> 0.) ?(jitter_bound = infinity) ?(mss = 1500.)
    ~packet_cca law =
  { law; packet_cca; jitter; jitter_bound; mss }

type config = {
  rate : float;
  buffer : float;
  rm : float;
  dt : float;
  duration : float;
  measure_from : float;
  events : float list;
  window : float;
  flows : flow_spec array;
}

let config ~rate ?(buffer = infinity) ~rm ?dt ?measure_from ?(events = [])
    ?window ~duration flows =
  let dt = match dt with Some d -> d | None -> rm /. 8. in
  let window = match window with Some w -> w | None -> 50. *. rm in
  if rate <= 0. || rm <= 0. || dt <= 0. || duration <= 0. || window <= 0. then
    invalid_arg "Fluid.Hybrid.config";
  let measure_from = Option.value measure_from ~default:0. in
  { rate; buffer; rm; dt; duration; measure_from; events; window;
    flows = Array.of_list flows }

type kind = [ `Fluid | `Packet ]

(* The packet windows: [e, e + window] around each event (flow start
   at t=0 always counts), merged when they overlap, clipped to the
   horizon.  Everything between them runs fluid. *)
let segments cfg =
  let events =
    List.sort_uniq compare
      (0. :: List.filter (fun e -> e >= 0. && e < cfg.duration) cfg.events)
  in
  let packet =
    List.fold_left
      (fun acc e ->
        let a = e and b = Float.min cfg.duration (e +. cfg.window) in
        match acc with
        | (a0, b0) :: rest when a <= b0 -> (a0, Float.max b0 b) :: rest
        | _ -> (a, b) :: acc)
      [] events
    |> List.rev
  in
  let rec weave t packet acc =
    if t >= cfg.duration -. 1e-9 then List.rev acc
    else
      match packet with
      | (a, b) :: rest when a <= t +. 1e-9 ->
          weave b rest ((t, b, `Packet) :: acc)
      | (a, _) :: _ -> weave a packet ((t, a, `Fluid) :: acc)
      | [] -> List.rev ((t, cfg.duration, `Fluid) :: acc)
  in
  weave 0. packet []

type result = {
  counted : float array;  (** bytes per flow within [measure_from, duration] *)
  served : float array;
  rates : float array;  (** final per-flow rate estimates, bytes/s *)
  segments : (float * float * kind) list;
  inflow : float;
  outflow : float;
  q_final : float;
  handoffs : int;  (** fluid->packet seams (1 byte of rounding slack each) *)
  conservation_error : float;
      (** |inflow - outflow - q_final| over the whole chained run *)
}

let run cfg =
  let n = Array.length cfg.flows in
  let segs = segments cfg in
  let cwnd = Array.init n (fun i ->
      let s = cfg.flows.(i) in
      s.law.Ccac.Model.f_cwnd (s.law.Ccac.Model.f_init ~mss:s.mss))
  in
  let min_d = Array.make n infinity in
  let rates = Array.init n (fun i -> cwnd.(i) /. cfg.rm) in
  let counted = Array.make n 0. in
  let served = Array.make n 0. in
  let q = ref 0. in
  let inflow = ref 0. in
  let outflow = ref 0. in
  let handoffs = ref 0 in
  List.iter
    (fun (a, b, kind) ->
      match kind with
      | `Fluid ->
          let eng =
            Engine.create
              (Engine.config ~rate:cfg.rate ~buffer:cfg.buffer ~rm:cfg.rm
                 ~dt:cfg.dt ~t0:a ~measure_from:cfg.measure_from
                 ~initial_queue:!q ~duration:(b -. a)
                 (Array.to_list
                    (Array.map
                       (fun s ->
                         Engine.flow ~start_time:a ~jitter:s.jitter
                           ~mss:s.mss s.law)
                       cfg.flows)))
          in
          for i = 0 to n - 1 do
            Engine.set_flow_cwnd eng i cwnd.(i);
            if min_d.(i) < infinity then Engine.set_flow_min_delay eng i min_d.(i)
          done;
          ignore (Engine.run eng);
          for i = 0 to n - 1 do
            cwnd.(i) <- Engine.flow_cwnd eng i;
            min_d.(i) <- Engine.flow_min_delay eng i;
            rates.(i) <- Engine.flow_rate eng i;
            counted.(i) <- counted.(i) +. Engine.counted_bytes eng i;
            served.(i) <- served.(i) +. Engine.served_bytes eng i
          done;
          inflow := !inflow +. Engine.accepted_total eng;
          outflow := !outflow +. Engine.served_total eng;
          q := Engine.queue_bytes eng
      | `Packet ->
          let q_int = int_of_float (Float.round !q) in
          incr handoffs;
          let ccas =
            Array.mapi
              (fun i s ->
                let cca = s.packet_cca ~cwnd:cwnd.(i) in
                if min_d.(i) < infinity then
                  cca.Cca.on_ack
                    { Cca.now = a; rtt = min_d.(i); acked_bytes = 0;
                      sent_time = a -. min_d.(i); delivered = 0;
                      delivered_now = 0; inflight = 0; app_limited = true;
                      ecn_ce = false };
                cca)
              cfg.flows
          in
          let net =
            Sim.Network.run_config
              (Sim.Network.config
                 ~rate:(Sim.Link.Constant cfg.rate)
                 ?buffer:
                   (if cfg.buffer = infinity then None
                    else Some (int_of_float cfg.buffer))
                 ~rm:cfg.rm ~t0:a ~initial_queue_bytes:q_int
                 ~duration:(b -. a)
                 (Array.to_list
                    (Array.mapi
                       (fun i s ->
                         Sim.Network.flow ~start_time:a
                           ~jitter:(Sim.Jitter.Trace s.jitter)
                           ~jitter_bound:s.jitter_bound
                           ~mss:(int_of_float s.mss)
                           ~initial_pacing:rates.(i) ccas.(i))
                       cfg.flows)))
          in
          let link = Sim.Network.link net in
          let flows = Sim.Network.flows net in
          for i = 0 to n - 1 do
            cwnd.(i) <- ccas.(i).Cca.cwnd ();
            (match
               List.find_opt
                 (fun (k, v) ->
                   (k = "min_rtt" || k = "base_rtt") && Float.is_finite v)
                 (ccas.(i).Cca.inspect ())
             with
            | Some (_, v) -> min_d.(i) <- Float.min min_d.(i) v
            | None -> ());
            (* Packet state -> per-flow rate estimate: tail throughput
               over the last few RTTs of the window. *)
            let tail = Float.max a (b -. (8. *. cfg.rm)) in
            rates.(i) <- Sim.Network.throughput net ~flow:i ~t0:tail ~t1:b;
            if rates.(i) <= 0. then rates.(i) <- cwnd.(i) /. cfg.rm;
            served.(i) <-
              served.(i) +. float_of_int (Sim.Flow.delivered_bytes flows.(i));
            let m0 = Float.max a cfg.measure_from in
            if b > m0 then
              counted.(i) <-
                counted.(i)
                +. (Sim.Network.throughput net ~flow:i ~t0:m0 ~t1:b *. (b -. m0))
          done;
          inflow :=
            !inflow
            +. float_of_int (Sim.Link.offered_bytes link)
            -. float_of_int q_int;
          outflow :=
            !outflow
            +. float_of_int (Sim.Link.delivered_bytes link)
            +. float_of_int (Sim.Link.dropped_bytes link);
          q := float_of_int (Sim.Link.queued_bytes link))
    segs;
  { counted; served; rates; segments = segs; inflow = !inflow;
    outflow = !outflow; q_final = !q; handoffs = !handoffs;
    conservation_error = Float.abs (!inflow -. !outflow -. !q) }
