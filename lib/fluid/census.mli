(** Fluid port of the starvation census: a churning population of
    Pareto-sized flows (Poisson arrivals over [arrival_frac *
    duration], per-flow constant jitter uniform in [0, jitter_d], all
    drawn from labeled {!Sim.Rng} streams so the population is a pure
    function of (seed, key)) advanced by one shared fluid law on one
    bottleneck.  Cost per step is O(active flows), not O(population),
    and law state is allocated at admission and dropped at completion,
    so resident state tracks peak concurrency. *)

type config = private {
  key : string;
  seed : int;
  n : int;
  duration : float;
  arrival_frac : float;
  rate : float;
  buffer : float;
  rm : float;
  mss : float;
  jitter_d : float;
  alpha : float;
  xm : float;
  size_cap : float;
  dt : float;
  law : Ccac.Model.fluid;
}

val config :
  key:string ->
  seed:int ->
  n:int ->
  duration:float ->
  arrival_frac:float ->
  rate:float ->
  ?buffer:float ->
  rm:float ->
  ?mss:float ->
  jitter_d:float ->
  alpha:float ->
  xm:float ->
  size_cap:float ->
  ?dt:float ->
  Ccac.Model.fluid ->
  config
(** [dt] defaults to rm/4. *)

type result = {
  goodputs : float array;
      (** per flow, served bytes over its own lifetime; 0. = starved *)
  completed : int;
  peak_active : int;
  steps : int;
  offered_bytes : float;
  served_bytes : float;
  conservation_error : float;  (** |accepted - served - final queue| *)
}

val run : config -> result
