(* Fixed-step discretised fluid simulation of n flows on one bottleneck.

   Each step of length dt:
   - every active flow observes delay = rm + extra_rm + q/C + jitter(t)
     and offers rate * dt bytes, where rate = cwnd / delay
     (self-clocking: the window spread over the observed RTT);
   - arrivals are clipped by the free room buffer + C*dt - q; the
     clipped fraction is dropped *proportionally* across offering
     flows and flagged as this epoch's loss signal — the same
     proportional-overflow rule the CCAC model step uses;
   - the queue serves min(q, C*dt) bytes, split across backlogged
     flows in proportion to their backlog (the neutral FIFO
     approximation);
   - a flow whose last epoch started one observed-RTT ago advances its
     CCA state via the law's per-RTT update.

   The engine keeps an exact byte ledger (offered = accepted + dropped;
   accepted + initial queue = served + final queue, up to float
   rounding) that the fluid conservation oracle checks. *)

type flow_spec = {
  law : Ccac.Model.fluid;
  start_time : float;
  stop_time : float;
  extra_rm : float;
  jitter : float -> float;
  size : float;
  mss : float;
}

let flow ?(start_time = 0.) ?(stop_time = infinity) ?(extra_rm = 0.)
    ?(jitter = fun _ -> 0.) ?(size = infinity) ?(mss = 1500.) law =
  if mss <= 0. then invalid_arg "Fluid.Engine.flow: mss <= 0";
  if size <= 0. then invalid_arg "Fluid.Engine.flow: size <= 0";
  { law; start_time; stop_time; extra_rm; jitter; size; mss }

type config = {
  rate : float;
  buffer : float;
  rm : float;
  dt : float;
  t0 : float;
  duration : float;
  measure_from : float;
  initial_queue : float;
  flows : flow_spec array;
}

let config ~rate ?(buffer = infinity) ~rm ?dt ?(t0 = 0.) ?measure_from
    ?(initial_queue = 0.) ~duration flows =
  let dt = match dt with Some d -> d | None -> rm /. 8. in
  if rate <= 0. || rm <= 0. || dt <= 0. || duration < 0. || initial_queue < 0.
  then invalid_arg "Fluid.Engine.config";
  let measure_from = Option.value measure_from ~default:t0 in
  { rate; buffer; rm; dt; t0; duration; measure_from; initial_queue;
    flows = Array.of_list flows }

type fstate = {
  spec : flow_spec;
  state : float array;
  mutable started : bool;
  mutable finished : bool;
  mutable min_d : float;
  mutable last_d : float;
  mutable epoch_start : float;
  mutable epoch_acked : float;
  mutable epoch_lost : bool;
  mutable offered : float;
  mutable accepted : float;
  mutable dropped : float;
  mutable served : float;
  mutable counted : float;
  mutable t_start : float;
  mutable t_end : float;  (* nan while running *)
}

type t = {
  cfg : config;
  fl : fstate array;
  want : float array;  (* per-step scratch *)
  mutable now : float;
  mutable q : float;
  mutable phantom : float;  (* initial-queue backlog not owned by a flow *)
  mutable phantom_served : float;
  mutable q_integral : float;
  mutable measured_time : float;
  mutable steps : int;
}

let fresh_fstate ~t0 spec =
  let st =
    { spec;
      state = spec.law.Ccac.Model.f_init ~mss:spec.mss;
      started = false; finished = false;
      min_d = infinity; last_d = infinity;
      epoch_start = t0; epoch_acked = 0.; epoch_lost = false;
      offered = 0.; accepted = 0.; dropped = 0.; served = 0.; counted = 0.;
      t_start = nan; t_end = nan }
  in
  if spec.start_time <= t0 then begin
    st.started <- true;
    st.t_start <- t0
  end;
  st

let create cfg =
  { cfg;
    fl = Array.map (fresh_fstate ~t0:cfg.t0) cfg.flows;
    want = Array.make (Array.length cfg.flows) 0.;
    now = cfg.t0;
    q = cfg.initial_queue;
    phantom = cfg.initial_queue;
    phantom_served = 0.;
    q_integral = 0.;
    measured_time = 0.;
    steps = 0 }

let active f t = f.started && not f.finished && t < f.spec.stop_time

let step eng dt =
  let cfg = eng.cfg in
  let t = eng.now in
  let t' = t +. dt in
  (* Activations. *)
  Array.iter
    (fun f ->
      if (not f.started) && f.spec.start_time <= t +. 1e-12 then begin
        f.started <- true;
        f.t_start <- t;
        f.epoch_start <- t
      end)
    eng.fl;
  let qd = eng.q /. cfg.rate in
  (* Offers. *)
  let total_want = ref 0. in
  Array.iteri
    (fun i f ->
      if active f t then begin
        let d = cfg.rm +. f.spec.extra_rm +. qd +. f.spec.jitter t in
        if d < f.min_d then f.min_d <- d;
        f.last_d <- d;
        let cwnd = f.spec.law.Ccac.Model.f_cwnd f.state in
        let w = cwnd /. d *. dt in
        let w =
          if f.spec.size = infinity then w
          else Float.min w (Float.max 0. (f.spec.size -. f.accepted))
        in
        eng.want.(i) <- w;
        total_want := !total_want +. w
      end
      else eng.want.(i) <- 0.)
    eng.fl;
  (* Clip by the free room; drops are proportional and flagged. *)
  let room = Float.max 0. (cfg.buffer +. (cfg.rate *. dt) -. eng.q) in
  let scale =
    if !total_want <= room || !total_want <= 0. then 1. else room /. !total_want
  in
  Array.iteri
    (fun i f ->
      let w = eng.want.(i) in
      if w > 0. then begin
        let a = w *. scale in
        f.offered <- f.offered +. w;
        f.accepted <- f.accepted +. a;
        f.dropped <- f.dropped +. (w -. a);
        if scale < 1. -. 1e-12 then f.epoch_lost <- true;
        eng.q <- eng.q +. a
      end)
    eng.fl;
  (* Service, split in proportion to backlog (FIFO approximation).
     Finished/stopped flows still drain whatever they have queued. *)
  let s_total = Float.min eng.q (cfg.rate *. dt) in
  if s_total > 0. then begin
    let backlog_total = ref eng.phantom in
    Array.iter
      (fun f ->
        if f.started then
          backlog_total := !backlog_total +. Float.max 0. (f.accepted -. f.served))
      eng.fl;
    if !backlog_total > 0. then begin
      let share = s_total /. !backlog_total in
      Array.iter
        (fun f ->
          if f.started then begin
            let b = Float.max 0. (f.accepted -. f.served) in
            if b > 0. then begin
              let s = b *. share in
              f.served <- f.served +. s;
              f.epoch_acked <- f.epoch_acked +. s;
              if t >= cfg.measure_from then f.counted <- f.counted +. s
            end
          end)
        eng.fl;
      let sp = eng.phantom *. share in
      eng.phantom <- eng.phantom -. sp;
      eng.phantom_served <- eng.phantom_served +. sp;
      eng.q <- Float.max 0. (eng.q -. s_total)
    end
  end;
  (* Per-RTT epochs and completions. *)
  Array.iter
    (fun f ->
      if active f t then begin
        if t' -. f.epoch_start >= f.last_d then begin
          f.spec.law.Ccac.Model.f_update f.state ~mss:f.spec.mss
            ~delay:f.last_d ~min_delay:f.min_d ~acked:f.epoch_acked
            ~lost:f.epoch_lost;
          f.epoch_start <- t';
          f.epoch_acked <- 0.;
          f.epoch_lost <- false
        end;
        if f.spec.size < infinity && f.served >= f.spec.size -. 1e-6 then begin
          f.finished <- true;
          f.t_end <- t'
        end
        else if t' >= f.spec.stop_time && Float.is_nan f.t_end then
          f.t_end <- f.spec.stop_time
      end)
    eng.fl;
  if t >= cfg.measure_from then begin
    eng.q_integral <- eng.q_integral +. (eng.q *. dt);
    eng.measured_time <- eng.measured_time +. dt
  end;
  eng.now <- t';
  eng.steps <- eng.steps + 1

let run_until eng t_end =
  while eng.now < t_end -. 1e-9 do
    step eng (Float.min eng.cfg.dt (t_end -. eng.now))
  done

let run eng =
  run_until eng (eng.cfg.t0 +. eng.cfg.duration);
  eng

let run_config cfg = run (create cfg)

(* Accessors. *)

let now eng = eng.now
let steps eng = eng.steps
let queue_bytes eng = eng.q

let flow_cwnd eng i = eng.fl.(i).spec.law.Ccac.Model.f_cwnd eng.fl.(i).state

let set_flow_cwnd eng i cwnd =
  eng.fl.(i).spec.law.Ccac.Model.f_warm eng.fl.(i).state ~cwnd

let flow_min_delay eng i = eng.fl.(i).min_d

let set_flow_min_delay eng i d =
  eng.fl.(i).min_d <- d;
  if Float.is_nan eng.fl.(i).last_d || eng.fl.(i).last_d = infinity then
    eng.fl.(i).last_d <- d

let flow_delay eng i =
  let f = eng.fl.(i) in
  if f.last_d < infinity then f.last_d
  else eng.cfg.rm +. f.spec.extra_rm +. (eng.q /. eng.cfg.rate)

let flow_rate eng i = flow_cwnd eng i /. flow_delay eng i
let served_bytes eng i = eng.fl.(i).served
let counted_bytes eng i = eng.fl.(i).counted
let offered_bytes eng i = eng.fl.(i).offered
let dropped_bytes eng i = eng.fl.(i).dropped
let completed eng i = eng.fl.(i).finished

let goodput eng i =
  let f = eng.fl.(i) in
  if not f.started then 0.
  else
    let t_end = if Float.is_nan f.t_end then eng.now else f.t_end in
    let span = t_end -. f.t_start in
    if span <= 0. then 0. else f.served /. span

let mean_queue_bytes eng =
  if eng.measured_time <= 0. then 0. else eng.q_integral /. eng.measured_time

let accepted_total eng =
  Array.fold_left (fun acc f -> acc +. f.accepted) 0. eng.fl

let served_total eng =
  Array.fold_left (fun acc f -> acc +. f.served) 0. eng.fl
  +. eng.phantom_served

let offered_total eng =
  Array.fold_left (fun acc f -> acc +. f.offered) 0. eng.fl

let dropped_total eng =
  Array.fold_left (fun acc f -> acc +. f.dropped) 0. eng.fl

(* |initial queue + accepted - served - final queue|: every accepted
   byte is either still queued or was served.  Dropped bytes never
   enter the ledger.  Exact up to float rounding across the step
   accumulations. *)
let conservation_error eng =
  Float.abs
    (eng.cfg.initial_queue +. accepted_total eng -. served_total eng -. eng.q)
