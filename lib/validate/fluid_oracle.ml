open Sim

(* Cross-validation of the fluid backend against the packet simulator,
   plus the fluid/hybrid byte-conservation oracles.

   Tolerance discipline follows queueing.ml: the acceptance band is
   z=5 times the empirical standard error of the packet-side
   measurement (estimated from disjoint subintervals of the
   measurement window), floored by a model-granularity term — the
   CCA's own oscillation band (the same alpha..beta / sawtooth slack
   the equilibrium oracles use) plus the fluid model's discretisation
   bias.  A fluid backend that drifts outside that band disagrees with
   packet reality by more than packet reality disagrees with itself. *)

type cca_kind = Reno | Copa | Vegas

let kind_name = function Reno -> "reno" | Copa -> "copa" | Vegas -> "vegas"

let kind_law = function
  | Reno -> Ccac.Model.reno_fluid
  | Copa -> Ccac.Model.copa_fluid ()
  | Vegas -> Ccac.Model.vegas_fluid ()

let kind_cca = function
  | Reno -> Reno.make ()
  | Copa -> Copa.make ()
  | Vegas -> Vegas.make ()

let z = 5.

let mean_queue_bytes net ~t0 ~t1 =
  Series.integral (Link.queue_series (Network.link net)) ~t0 ~t1 /. (t1 -. t0)

(* Standard error of a windowed packet measurement, from [k] disjoint
   subintervals — the statistical half of the z=5 band. *)
let stderr_of ~t0 ~t1 ~k f =
  let stats = Stats.Online.create () in
  let dt = (t1 -. t0) /. float_of_int k in
  for i = 0 to k - 1 do
    let a = t0 +. (float_of_int i *. dt) in
    Stats.Online.add stats (f ~t0:a ~t1:(a +. dt))
  done;
  let sd = Stats.Online.stddev stats in
  if Float.is_nan sd then 0. else sd /. sqrt (float_of_int k)

let ratio_of x0 x1 = Float.max x0 x1 /. Float.max (Float.min x0 x1) 1.

(* The per-link fluid byte-conservation oracle: every accepted byte is
   either still queued or was served, exactly, up to float rounding
   across the step accumulations. *)
let conservation ~scenario eng =
  Oracle.check ~oracle:"fluid-conservation" ~scenario ~expected:0.
    ~observed:(Fluid.Engine.conservation_error eng)
    ~tolerance:(1. +. (1e-6 *. Fluid.Engine.accepted_total eng))
    ~detail:
      (Printf.sprintf "accepted=%.0fB served=%.0fB q=%.0fB steps=%d"
         (Fluid.Engine.accepted_total eng)
         (Fluid.Engine.served_total eng)
         (Fluid.Engine.queue_bytes eng) (Fluid.Engine.steps eng))
    ()

(* Fluid vs packet on a symmetric 2-flow scenario: equilibrium
   throughput ratio and standing queue must agree.  Reno runs against
   a 1-BDP drop-tail buffer (it needs loss to regulate); the
   delay-based CCAs run with the unbounded queue their standing-queue
   laws assume. *)
let agreement_kind ?(seed = 7) ?(rate = Units.mbps 20.) ?(rm = Units.ms 40.)
    ?(duration = 30.) kind =
  let buffer_bytes =
    match kind with Reno -> Some (rate *. rm) | Copa | Vegas -> None
  in
  let t0 = duration /. 2. and t1 = duration in
  let net =
    Network.run_config
      (Network.config ~rate:(Link.Constant rate)
         ?buffer:(Option.map int_of_float buffer_bytes)
         ~rm ~seed ~record_queue:true ~duration
         [ Network.flow (kind_cca kind); Network.flow (kind_cca kind) ])
  in
  let ratio_p =
    ratio_of
      (Network.throughput net ~flow:0 ~t0 ~t1)
      (Network.throughput net ~flow:1 ~t0 ~t1)
  in
  let queue_p = mean_queue_bytes net ~t0 ~t1 in
  let law = kind_law kind in
  let eng =
    Fluid.Engine.run_config
      (Fluid.Engine.config ~rate ?buffer:buffer_bytes ~rm ~duration
         ~measure_from:t0
         [ Fluid.Engine.flow law; Fluid.Engine.flow law ])
  in
  let ratio_f =
    ratio_of (Fluid.Engine.counted_bytes eng 0) (Fluid.Engine.counted_bytes eng 1)
  in
  let queue_f = Fluid.Engine.mean_queue_bytes eng in
  let scenario = Printf.sprintf "%s-2flow" (kind_name kind) in
  let detail =
    Printf.sprintf "C=%.0fB/s rm=%gs dur=%gs seed=%d" rate rm duration seed
  in
  let ratio_se =
    stderr_of ~t0 ~t1 ~k:8 (fun ~t0 ~t1 ->
        ratio_of
          (Network.throughput net ~flow:0 ~t0 ~t1)
          (Network.throughput net ~flow:1 ~t0 ~t1))
  in
  let queue_se = stderr_of ~t0 ~t1 ~k:8 (mean_queue_bytes net) in
  let mss = 1500. in
  (* Model-granularity floors, per CCA (two flows share the queue). *)
  let queue_floor =
    match kind with
    | Reno -> 0.25 *. Option.get buffer_bytes
    | Copa -> (4. *. mss) +. (0.5 *. queue_p)
    | Vegas -> 2. *. 3. *. mss  (* n * ((beta-alpha)/2 + 1) packets *)
  in
  let ratio_floor = (0.35 *. ratio_p) +. 0.25 in
  [
    Oracle.check ~oracle:"fluid-packet-ratio" ~scenario ~expected:ratio_p
      ~observed:ratio_f
      ~tolerance:(Float.max (z *. ratio_se) ratio_floor)
      ~detail ();
    Oracle.check ~oracle:"fluid-packet-queue" ~scenario ~expected:queue_p
      ~observed:queue_f
      ~tolerance:(Float.max (z *. queue_se) queue_floor)
      ~detail ();
    conservation ~scenario eng;
  ]

let agreement ?seed ?rate ?rm ?duration () =
  List.concat_map
    (fun k -> agreement_kind ?seed ?rate ?rm ?duration k)
    [ Reno; Copa; Vegas ]

(* The hybrid ledger chains fluid and packet segments; the only slack
   is the queue rounded to whole bytes at each fluid->packet seam. *)
let hybrid_conservation ~scenario (r : Fluid.Hybrid.result) =
  Oracle.check ~oracle:"hybrid-conservation" ~scenario ~expected:0.
    ~observed:r.Fluid.Hybrid.conservation_error
    ~tolerance:
      (1. +. float_of_int r.Fluid.Hybrid.handoffs
       +. (1e-6 *. r.Fluid.Hybrid.inflow))
    ~detail:
      (Printf.sprintf "inflow=%.0fB outflow=%.0fB q=%.0fB segments=%d"
         r.Fluid.Hybrid.inflow r.Fluid.Hybrid.outflow r.Fluid.Hybrid.q_final
         (List.length r.Fluid.Hybrid.segments))
    ()

(* End-to-end hybrid check on the threshold scenario: conservation
   holds across the seams, and a jitter bound far above the Copa
   threshold still starves one flow (ratio > 4) while a bound far
   below it does not (ratio < 2) — the hybrid must preserve the
   poisoned min-RTT across the fluid->packet handoff for this. *)
let hybrid_threshold ?(duration = 30.) () =
  let rate = Units.mbps 24. and rm = 0.04 in
  let delta_max = 4. *. 1500. /. (rate /. 2.) in
  let run m =
    let jd = m *. delta_max in
    let late t = if t < 1. then 0. else jd in
    let copa_at ~cwnd =
      Copa.make
        ~params:{ Copa.default_params with init_cwnd_packets = cwnd /. 1500. }
        ()
    in
    Fluid.Hybrid.run
      (Fluid.Hybrid.config ~rate ~rm ~duration ~measure_from:(duration /. 2.)
         ~events:[ 1.0 ]
         [
           Fluid.Hybrid.flow ~jitter:late ~jitter_bound:jd ~packet_cca:copa_at
             (Ccac.Model.copa_fluid ());
           Fluid.Hybrid.flow ~packet_cca:copa_at (Ccac.Model.copa_fluid ());
         ])
  in
  let ratio (r : Fluid.Hybrid.result) =
    ratio_of r.Fluid.Hybrid.counted.(0) r.Fluid.Hybrid.counted.(1)
  in
  let low = run 0.25 and high = run 8. in
  [
    hybrid_conservation ~scenario:"hybrid-threshold-low" low;
    hybrid_conservation ~scenario:"hybrid-threshold-high" high;
    Oracle.check ~oracle:"hybrid-threshold-ratio" ~scenario:"below-threshold"
      ~expected:1. ~observed:(ratio low) ~tolerance:1.
      ~detail:"D = delta_max/4: no starvation expected" ();
    (if ratio high > 4. then
       Oracle.pass ~oracle:"hybrid-threshold-ratio" ~scenario:"above-threshold"
         ~detail:(Printf.sprintf "D = 8*delta_max: ratio=%.1f > 4" (ratio high))
         ()
     else
       Oracle.fail ~oracle:"hybrid-threshold-ratio" ~scenario:"above-threshold"
         ~detail:
           (Printf.sprintf "D = 8*delta_max: ratio=%.1f <= 4 (min-RTT handoff lost?)"
              (ratio high))
         ());
  ]

let all ?seed ?(quick = false) () =
  let duration = if quick then 20. else 30. in
  agreement ?seed ~duration ()
  @ hybrid_threshold ~duration:(if quick then 20. else 30.) ()
