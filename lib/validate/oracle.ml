type verdict = {
  oracle : string;
  scenario : string;
  expected : float;
  observed : float;
  tolerance : float;
  ok : bool;
  detail : string;
}

let check ~oracle ~scenario ~expected ~observed ~tolerance ?(detail = "") () =
  let ok =
    (not (Float.is_nan expected))
    && (not (Float.is_nan observed))
    && Float.abs (observed -. expected) <= tolerance
  in
  { oracle; scenario; expected; observed; tolerance; ok; detail }

let exact ~oracle ~scenario ~expected ~observed ?(detail = "") () =
  let ok =
    (not (Float.is_nan expected))
    && (not (Float.is_nan observed))
    && expected = observed
  in
  { oracle; scenario; expected; observed; tolerance = 0.; ok; detail }

let pass ~oracle ~scenario ?(detail = "") () =
  { oracle; scenario; expected = 1.; observed = 1.; tolerance = 0.; ok = true;
    detail }

let fail ~oracle ~scenario ?(detail = "") () =
  { oracle; scenario; expected = 1.; observed = 0.; tolerance = 0.; ok = false;
    detail }

let all_ok vs = List.for_all (fun v -> v.ok) vs
let failures vs = List.filter (fun v -> not v.ok) vs

let to_string v =
  Printf.sprintf "%s %-24s %-28s expected %.6g observed %.6g (tol %.3g)%s"
    (if v.ok then "PASS" else "FAIL")
    v.oracle v.scenario v.expected v.observed v.tolerance
    (if v.detail = "" then "" else " — " ^ v.detail)

(* Minimal JSON string escaping: the details we emit are ASCII summaries,
   but be safe about quotes, backslashes and control bytes. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/infinity literals; encode them as strings. *)
let json_float f =
  if Float.is_nan f then "\"nan\""
  else if f = infinity then "\"inf\""
  else if f = neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" f

let to_json v =
  Printf.sprintf
    {|{"oracle":"%s","scenario":"%s","expected":%s,"observed":%s,"tolerance":%s,"ok":%b,"detail":"%s"}|}
    (json_escape v.oracle) (json_escape v.scenario) (json_float v.expected)
    (json_float v.observed) (json_float v.tolerance) v.ok
    (json_escape v.detail)

let list_to_json vs =
  "[" ^ String.concat ",\n " (List.map to_json vs) ^ "]"
