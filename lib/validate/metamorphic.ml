open Sim

type scenario = {
  name : string;
  deterministic : bool;
  nflows : int;
  build : scale:int -> shift:float -> permute:bool -> Network.config;
}

(* Builder helpers: [scale] multiplies every byte-valued quantity (rate,
   mss, buffer, initial queue), [shift] translates every absolute time.
   CCA instances are created inside the builder so each variant starts
   cold. *)

let mss_of ~scale = scale * 1500

let reno ~scale () =
  Reno.make
    ~params:{ Reno.default_params with Reno.mss = mss_of ~scale }
    ()

let vegas ~scale () =
  Vegas.make
    ~params:{ Vegas.default_params with Vegas.mss = mss_of ~scale }
    ()

let copa ~scale () =
  Copa.make ~params:{ Copa.default_params with Copa.mss = mss_of ~scale } ()

let cubic ~scale () =
  Cubic.make
    ~params:{ Cubic.default_params with Cubic.mss = mss_of ~scale }
    ()

let bbr ~scale () =
  Bbr.make ~params:{ Bbr.default_params with Bbr.mss = mss_of ~scale } ()

let order ~permute flows = if permute then List.rev flows else flows

let matrix () =
  [
    {
      name = "reno-solo-initq";
      deterministic = true;
      nflows = 1;
      build =
        (fun ~scale ~shift ~permute ->
          let s = float_of_int scale in
          ignore permute;
          Network.config
            ~rate:(Link.Constant (s *. Units.mbps 10.))
            ~rm:(Units.ms 40.) ~seed:11 ~t0:shift ~duration:20.
            ~initial_queue_bytes:(scale * 30_000)
            [
              Network.flow ~start_time:shift ~mss:(mss_of ~scale)
                (reno ~scale ());
            ]);
    };
    {
      name = "reno-pair-staggered";
      deterministic = true;
      nflows = 2;
      build =
        (fun ~scale ~shift ~permute ->
          let s = float_of_int scale in
          Network.config
            ~rate:(Link.Constant (s *. Units.mbps 12.))
            ~rm:(Units.ms 30.) ~seed:12 ~t0:shift ~duration:24.
            ~buffer:(scale * 90_000)
            (order ~permute
               [
                 Network.flow ~start_time:shift ~mss:(mss_of ~scale)
                   (reno ~scale ());
                 Network.flow ~start_time:(shift +. 3.) ~mss:(mss_of ~scale)
                   (reno ~scale ());
               ]));
    };
    {
      name = "reno-vs-vegas";
      deterministic = true;
      nflows = 2;
      build =
        (fun ~scale ~shift ~permute ->
          let s = float_of_int scale in
          Network.config
            ~rate:(Link.Constant (s *. Units.mbps 16.))
            ~rm:(Units.ms 50.) ~seed:13 ~t0:shift ~duration:24.
            (order ~permute
               [
                 Network.flow ~start_time:shift ~mss:(mss_of ~scale)
                   (reno ~scale ());
                 Network.flow ~start_time:(shift +. 1.) ~mss:(mss_of ~scale)
                   (vegas ~scale ());
               ]));
    };
    {
      name = "copa-delack";
      deterministic = true;
      nflows = 1;
      build =
        (fun ~scale ~shift ~permute ->
          let s = float_of_int scale in
          ignore permute;
          Network.config
            ~rate:(Link.Constant (s *. Units.mbps 8.))
            ~rm:(Units.ms 40.) ~seed:14 ~t0:shift ~duration:20.
            [
              Network.flow ~start_time:shift ~mss:(mss_of ~scale)
                ~ack_policy:
                  (Network.Delayed { count = 2; timeout = Units.ms 5. })
                (copa ~scale ());
            ]);
    };
    {
      name = "cubic-vs-bbr-lossy";
      deterministic = false;
      nflows = 2;
      build =
        (fun ~scale ~shift ~permute ->
          let s = float_of_int scale in
          Network.config
            ~rate:(Link.Constant (s *. Units.mbps 20.))
            ~rm:(Units.ms 30.) ~seed:15 ~t0:shift ~duration:20.
            ~buffer:(scale * 150_000)
            (order ~permute
               [
                 Network.flow ~start_time:shift ~mss:(mss_of ~scale)
                   ~loss_rate:0.005 (cubic ~scale ());
                 Network.flow ~start_time:(shift +. 2.) ~mss:(mss_of ~scale)
                   (bbr ~scale ());
               ]));
    };
    {
      name = "vegas-aggregate-jitter";
      deterministic = false;
      nflows = 1;
      build =
        (fun ~scale ~shift ~permute ->
          let s = float_of_int scale in
          ignore permute;
          Network.config
            ~rate:(Link.Constant (s *. Units.mbps 10.))
            ~rm:(Units.ms 40.) ~seed:16 ~t0:shift ~duration:20.
            [
              Network.flow ~start_time:shift ~mss:(mss_of ~scale)
                ~jitter:(Jitter.Uniform { lo = 0.; hi = Units.ms 4. })
                ~jitter_bound:(Units.ms 5.)
                ~ack_policy:(Network.Aggregate { period = 0.004 })
                (vegas ~scale ());
            ]);
    };
  ]

(* The shift must be a multiple of every Aggregate ack period in the
   matrix (16 / 0.004 = 4000 exactly) and a power of two so the time
   translation itself is exact at the config level. *)
let shift_delta = 16.

let run_throughputs cfg =
  let net = Network.run_config cfg in
  Network.throughputs net ()

let verdicts scn =
  let base = run_throughputs (scn.build ~scale:1 ~shift:0. ~permute:false) in
  let rescale =
    let scaled = run_throughputs (scn.build ~scale:2 ~shift:0. ~permute:false) in
    Array.to_list
      (Array.mapi
         (fun i x ->
           (* Doubling every byte quantity is a power-of-two float
              scaling: exact, so the verdict is too. *)
           Oracle.exact ~oracle:"rescale-x2"
             ~scenario:(Printf.sprintf "%s/flow%d" scn.name i)
             ~expected:(2. *. x) ~observed:scaled.(i)
             ~detail:"rate, mss, buffer, initial queue all x2" ())
         base)
  in
  let shifted_vs =
    let shifted =
      run_throughputs (scn.build ~scale:1 ~shift:shift_delta ~permute:false)
    in
    Array.to_list
      (Array.mapi
         (fun i x ->
           (* Ulp loss at the shifted magnitude can flip event ties and
              compound through CCA feedback; 2% is far below any real
              shift-variance bug and far above rounding noise. *)
           Oracle.check ~oracle:"time-shift"
             ~scenario:(Printf.sprintf "%s/flow%d" scn.name i)
             ~expected:x ~observed:shifted.(i)
             ~tolerance:(0.02 *. Float.max x 1.)
             ~detail:(Printf.sprintf "t0 += %.0fs" shift_delta)
             ())
         base)
  in
  let permuted_vs =
    if (not scn.deterministic) || scn.nflows < 2 then []
    else begin
      let permuted =
        run_throughputs (scn.build ~scale:1 ~shift:0. ~permute:true)
      in
      let n = Array.length base in
      Array.to_list
        (Array.mapi
           (fun i x ->
             (* Flow i of the base listing is flow n-1-i of the reversed
                one.  Tolerance, not equality: permuting changes
                event-queue insertion order, which legitimately reorders
                simultaneous events. *)
             Oracle.check ~oracle:"flow-permutation"
               ~scenario:(Printf.sprintf "%s/flow%d" scn.name i)
               ~expected:x
               ~observed:permuted.(n - 1 - i)
               ~tolerance:(0.01 *. Float.max x 1.)
               ~detail:"flow list reversed" ())
           base)
    end
  in
  rescale @ shifted_vs @ permuted_vs

let jitter_monotonicity () =
  let throughput_with delay =
    let jitter =
      if delay = 0. then Jitter.No_jitter else Jitter.Constant delay
    in
    let cfg =
      Network.config
        ~rate:(Link.Constant (Units.mbps 10.))
        ~rm:(Units.ms 40.) ~seed:17 ~duration:20.
        [ Network.flow ~jitter ~jitter_bound:(Units.ms 40.) (reno ~scale:1 ()) ]
    in
    (run_throughputs cfg).(0)
  in
  let delays = [ 0.; Units.ms 10.; Units.ms 30. ] in
  let xs = List.map throughput_with delays in
  let rec pairs = function
    | (d0, x0) :: ((d1, x1) :: _ as rest) ->
        (* Non-increasing with 5% slack: a longer ACK path must not make
           an ACK-clocked flow faster. *)
        (* Only an *increase* violates monotonicity: judge the excess
           of the slower-path throughput over the faster-path one. *)
        Oracle.check ~oracle:"jitter-monotonic"
          ~scenario:(Printf.sprintf "reno-jitter-%.0fms" (Units.to_ms d1))
          ~expected:0. ~observed:(Float.max 0. (x1 -. x0))
          ~tolerance:(0.05 *. x0)
          ~detail:
            (Printf.sprintf "throughput(%.0fms)=%.0f vs throughput(%.0fms)=%.0f"
               (Units.to_ms d0) x0 (Units.to_ms d1) x1)
          ()
        :: pairs rest
    | _ -> []
  in
  pairs (List.combine delays xs)

let all () =
  List.concat_map verdicts (matrix ()) @ jitter_monotonicity ()
