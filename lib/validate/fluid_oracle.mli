(** Cross-validation of the fluid backend (lib/fluid) against the
    packet-level simulator, plus the fluid and hybrid byte-conservation
    oracles.

    Tolerances follow the z=5 discipline of {!Queueing}: z times the
    empirical standard error of the packet-side measurement (from
    disjoint subintervals of the measurement window), floored by the
    CCA's own oscillation band — the same sawtooth / alpha..beta slack
    the {!Equilibrium} oracles grant the packet simulator itself. *)

type cca_kind = Reno | Copa | Vegas

val kind_name : cca_kind -> string

val agreement_kind :
  ?seed:int ->
  ?rate:float ->
  ?rm:float ->
  ?duration:float ->
  cca_kind ->
  Oracle.verdict list
(** Run the same symmetric 2-flow scenario on both backends (Reno with
    a 1-BDP drop-tail buffer, the delay CCAs unbounded) and judge:
    equilibrium throughput ratio agreement, standing-queue agreement,
    and the fluid run's byte conservation. *)

val agreement :
  ?seed:int -> ?rate:float -> ?rm:float -> ?duration:float -> unit ->
  Oracle.verdict list
(** {!agreement_kind} over Reno, Copa and Vegas. *)

val conservation : scenario:string -> Fluid.Engine.t -> Oracle.verdict
(** Per-link fluid byte-conservation:
    [initial_queue + accepted = served + queue] within
    [1 + 1e-6 * accepted] bytes of float rounding. *)

val hybrid_conservation :
  scenario:string -> Fluid.Hybrid.result -> Oracle.verdict
(** Chained inflow/outflow/queue identity across all fluid and packet
    segments; slack is one byte per fluid->packet handoff (queue
    rounding) plus float rounding. *)

val hybrid_threshold : ?duration:float -> unit -> Oracle.verdict list
(** End-to-end hybrid run of the E14 threshold scenario at D far below
    and far above the Copa starvation threshold: conservation holds at
    both, the high-D run starves (ratio > 4 — requires the poisoned
    min-RTT to survive the seams), the low-D run does not. *)

val all : ?seed:int -> ?quick:bool -> unit -> Oracle.verdict list
