(** Analytic queueing-theory oracles: the simulator against M/M/1 and
    M/D/1 closed forms.

    An open-loop {!Sim.Source} drives Poisson arrivals into a bare
    constant-rate {!Sim.Link} — with exponential packet sizes that is an
    M/M/1 queue, with fixed sizes an M/D/1 queue, and both have textbook
    mean sojourn time and mean occupancy:

    - M/M/1:  W = 1/(mu (1 - rho)),          L = rho/(1 - rho)
    - M/D/1:  W = (1/mu)(1 + rho/(2(1-rho))), L = rho + rho^2/(2(1-rho))

    where mu is the service rate in packets/s and rho = lambda/mu.  No
    amount of byte-identity with yesterday's run can fake agreement with
    these — they are external ground truth.

    Tolerances are principled, not hand-tuned: the acceptance band is
    [z * stderr * autocorrelation inflation] around the closed form,
    where stderr comes from {!Sim.Stats.Online} over the post-warmup
    sojourn samples and the inflation factor [sqrt((1+rho)/(1-rho))]
    compensates for consecutive sojourn times being positively
    correlated in a busy queue (an i.i.d. CLT band would be too tight
    and flake).  [z = 5] puts the per-check false-positive probability
    below 1e-6 while still catching percent-level bias at the default
    sample sizes. *)

type spec = {
  label : string;  (** scenario name carried into the verdicts *)
  lambda : float;  (** arrival rate, packets/s *)
  mean_size : float;  (** mean packet size, bytes *)
  deterministic_size : bool;  (** true = M/D/1, false = M/M/1 *)
  link_rate : float;  (** bytes/s *)
  horizon : float;  (** simulated seconds *)
  warmup : float;  (** seconds discarded before sampling *)
}

val mm1_default : spec
val md1_default : spec
(** rho = 0.7 at 100 packets/s service rate, 300 simulated seconds
    (~21k arrivals) — tight enough bands to catch percent-level bias,
    small enough to run in every test suite invocation. *)

type measured = {
  completed : int;  (** packets fully served after warmup *)
  mean_sojourn : float;  (** seconds in system (queue + service) *)
  sojourn_stderr : float;  (** i.i.d. stderr of the mean, pre-inflation *)
  mean_occupancy : float;  (** time-average packets in system post-warmup *)
  utilization : float;  (** measured busy fraction of the link *)
}

val run : rng:Sim.Rng.t -> spec -> measured
(** Simulate the open-loop scenario and measure.  Deterministic given
    the generator's state. *)

val verdicts : rng:Sim.Rng.t -> spec -> Oracle.verdict list
(** Run and judge: mean sojourn and mean occupancy against the closed
    forms, plus a coarse utilization cross-check (observed busy fraction
    vs rho). *)
