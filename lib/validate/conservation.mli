(** Byte-conservation oracles over a finished {!Sim.Network} run.

    These are exact identities, not statistical bands: every packet the
    senders emit must be accounted for as dropped before the link (random
    loss, fault bursts), dropped at the link, still inside the link,
    still propagating, or delivered to a receiver — per link, per flow,
    and end to end.  They complement the periodic {!Sim.Invariant}
    monitor by judging the final state of any run, monitored or not, and
    by reporting through {!Oracle.verdict} records. *)

val verdicts : scenario:string -> Sim.Network.t -> Oracle.verdict list
(** Judge a network that has been run (or advanced): aggregate link
    conservation (offered = delivered + dropped + queued — the phantom
    initial-queue bytes enter through [offered] like any other traffic),
    per-flow tiling of the link counters, per-flow sender-to-link and
    end-to-end path conservation, and — when the run carried an
    invariant monitor — a zero-violations verdict. *)
