(** Verdict records: one oracle's judgment on one scenario.

    Every oracle in [lib/validate] — analytic, conservation, equilibrium,
    metamorphic, fuzz — reports through this one record so CI failures
    are diagnosable from the verdict alone (which oracle, on which
    scenario, expected what, saw what, with what tolerance) without
    rerunning anything. *)

type verdict = {
  oracle : string;  (** oracle name, e.g. ["mm1-sojourn"] *)
  scenario : string;
      (** scenario identifier: a matrix scenario name or a fuzz digest *)
  expected : float;
  observed : float;
  tolerance : float;
      (** absolute half-width of the acceptance band; [ok] iff
          [|observed - expected| <= tolerance] at creation time *)
  ok : bool;
  detail : string;  (** free-form context: parameters, sample counts *)
}

val check :
  oracle:string -> scenario:string -> expected:float -> observed:float ->
  tolerance:float -> ?detail:string -> unit -> verdict
(** Judge [observed] against [expected ± tolerance].  NaN observed or
    expected never passes. *)

val exact :
  oracle:string -> scenario:string -> expected:float -> observed:float ->
  ?detail:string -> unit -> verdict
(** Zero-tolerance comparison ([expected = observed] bitwise, NaN fails)
    — for conservation identities and metamorphic transformations that
    must hold exactly. *)

val pass : oracle:string -> scenario:string -> ?detail:string -> unit -> verdict
val fail : oracle:string -> scenario:string -> ?detail:string -> unit -> verdict
(** Boolean oracles (determinism, zero-violation counts) expressed as
    1-vs-1 or 1-vs-0 verdicts. *)

val all_ok : verdict list -> bool
val failures : verdict list -> verdict list
val to_string : verdict -> string
(** One line: PASS/FAIL, oracle, scenario, expected/observed/tolerance. *)

val to_json : verdict -> string
(** Self-contained JSON object (no trailing newline). *)

val list_to_json : verdict list -> string
(** JSON array of {!to_json} objects. *)
