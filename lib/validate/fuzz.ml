open Sim

type violation = {
  id : int;
  summary : string;
  failing : Oracle.verdict list;
  shrunk : string option;
  repro_path : string option;
}

type report = {
  seed : int;
  samples : int;
  verdicts_checked : int;
  violations : violation list;
}

let cca_names = [| "reno"; "vegas"; "copa"; "cubic"; "bbr" |]

let make_cca ~scale name =
  let mss = scale * 1500 in
  match name with
  | "reno" -> Reno.make ~params:{ Reno.default_params with Reno.mss } ()
  | "vegas" -> Vegas.make ~params:{ Vegas.default_params with Vegas.mss } ()
  | "copa" -> Copa.make ~params:{ Copa.default_params with Copa.mss } ()
  | "cubic" -> Cubic.make ~params:{ Cubic.default_params with Cubic.mss } ()
  | "bbr" -> Bbr.make ~params:{ Bbr.default_params with Bbr.mss } ()
  | _ -> assert false

(* All Rng draws are scale-free (times, fractions, choices); byte-valued
   quantities are derived from the draws and multiplied by [scale]
   afterwards.  The draw sequence is therefore identical across scales,
   which is what makes the rescale metamorphic check meaningful on
   fuzzed scenarios. *)
let generate ~rng ?(scale = 1) id =
  let nflows = 1 + Rng.int rng 3 in
  let rate1 = Units.mbps (Rng.uniform rng ~lo:2. ~hi:50.) in
  let rm = Rng.uniform rng ~lo:0.01 ~hi:0.1 in
  let duration = Rng.uniform rng ~lo:5. ~hi:12. in
  let bdp1 = Units.bdp_bytes ~rate:rate1 ~rtt:rm in
  let buffer1 =
    match Rng.int rng 3 with
    | 0 -> None
    | 1 -> Some (max bdp1 (8 * 1500))
    | _ -> Some (max (bdp1 / 2) (4 * 1500))
  in
  let initial_queue1 =
    if Rng.int rng 3 = 0 then
      int_of_float (Rng.float rng 0.5 *. float_of_int bdp1)
    else 0
  in
  let net_seed = Rng.int rng 1_000_000 in
  let flow_descrs =
    List.init nflows (fun _ ->
        let cca = cca_names.(Rng.int rng (Array.length cca_names)) in
        let start = Rng.float rng 3. in
        let loss =
          if Rng.bool rng ~p:0.3 then Rng.uniform rng ~lo:0.002 ~hi:0.02
          else 0.
        in
        let jitter_hi =
          if Rng.bool rng ~p:0.3 then Rng.uniform rng ~lo:0.001 ~hi:0.008
          else 0.
        in
        let ack =
          match Rng.int rng 4 with
          | 0 | 1 -> `Immediate
          | 2 -> `Delayed
          | _ -> `Aggregate (Rng.uniform rng ~lo:0.002 ~hi:0.01)
        in
        (cca, start, loss, jitter_hi, ack))
  in
  let n_faults = Rng.int rng 3 in
  let fault_descrs =
    List.init n_faults (fun _ ->
        let t0 = Rng.uniform rng ~lo:1. ~hi:(Float.max 1.5 (duration -. 1.)) in
        match Rng.int rng 5 with
        | 0 ->
            `Blackout (t0, t0 +. Rng.uniform rng ~lo:0.05 ~hi:0.5)
        | 1 -> `Rate_step (t0, Rng.uniform rng ~lo:0.3 ~hi:1.)
        | 2 ->
            `Bursty
              ( Rng.int rng nflows,
                t0,
                t0 +. Rng.uniform rng ~lo:0.2 ~hi:1.5,
                Rng.uniform rng ~lo:0.3 ~hi:0.8 )
        | 3 ->
            `Ack_blackhole
              (Rng.int rng nflows, t0, t0 +. Rng.uniform rng ~lo:0.05 ~hi:0.3)
        | _ -> `Buffer_resize (t0, Rng.float rng 1.5))
  in
  (* Materialize at the requested scale. *)
  let s = float_of_int scale in
  let mss = scale * 1500 in
  let flows =
    List.map
      (fun (cca, start, loss, jitter_hi, ack) ->
        let jitter, bound =
          if jitter_hi > 0. then
            (Jitter.Uniform { lo = 0.; hi = jitter_hi }, jitter_hi +. 0.001)
          else (Jitter.No_jitter, infinity)
        in
        let ack_policy =
          match ack with
          | `Immediate -> Network.Immediate
          | `Delayed -> Network.Delayed { count = 2; timeout = 0.005 }
          | `Aggregate p -> Network.Aggregate { period = p }
        in
        Network.flow ~start_time:start ~mss ~loss_rate:loss ~jitter
          ~jitter_bound:bound ~ack_policy
          (make_cca ~scale cca))
      flow_descrs
  in
  let faults =
    Fault.plan
      (List.map
         (function
           | `Blackout (t0, t1) -> Fault.Link_blackout { t0; t1 }
           | `Rate_step (at, frac) ->
               Fault.Rate_step { at; rate = frac *. s *. rate1 }
           | `Bursty (flow, t0, t1, loss_bad) ->
               Fault.Bursty_loss
                 {
                   flow;
                   t0;
                   t1;
                   p_enter = 0.05;
                   p_exit = 0.3;
                   loss_good = 0.;
                   loss_bad;
                 }
           | `Ack_blackhole (flow, t0, t1) -> Fault.Ack_blackhole { flow; t0; t1 }
           | `Buffer_resize (at, frac) ->
               Fault.Buffer_resize
                 { at; buffer = Some (scale * max (4 * 1500) (int_of_float (frac *. float_of_int bdp1))) })
         fault_descrs)
  in
  let cfg =
    Network.config
      ~rate:(Link.Constant (s *. rate1))
      ?buffer:(Option.map (fun b -> scale * b) buffer1)
      ~rm ~seed:net_seed ~duration ~faults
      ~initial_queue_bytes:(scale * initial_queue1)
      ~monitor_period:0.05 flows
  in
  let summary =
    Printf.sprintf
      "scenario-%d: %d flows [%s] rate=%.1fMbit rm=%.0fms dur=%.1fs buf=%s \
       initq=%d faults=%d seed=%d"
      id nflows
      (String.concat ","
         (List.map
            (fun (cca, _, loss, j, ack) ->
              Printf.sprintf "%s%s%s%s" cca
                (if loss > 0. then Printf.sprintf "+loss%.3f" loss else "")
                (if j > 0. then Printf.sprintf "+jit%.0fms" (j *. 1000.) else "")
                (match ack with
                | `Immediate -> ""
                | `Delayed -> "+delack"
                | `Aggregate _ -> "+aggack"))
            flow_descrs))
      (Units.to_mbps rate1) (Units.to_ms rm) duration
      (match buffer1 with None -> "inf" | Some b -> string_of_int b)
      initial_queue1 n_faults net_seed
  in
  (cfg, summary)

let scenario_rng ~seed ~id =
  Rng.stream (Rng.create ~seed) ~label:(Printf.sprintf "scenario-%d" id)

let check_sample ~seed ~id () =
  let label = Printf.sprintf "fuzz-%d/scenario-%d" seed id in
  let gen ~scale = generate ~rng:(scenario_rng ~seed ~id) ~scale id in
  let cfg, summary = gen ~scale:1 in
  let net = Network.run_config (Shrink.copy_config cfg) in
  let conservation = Conservation.verdicts ~scenario:label net in
  (* Determinism: an independent run of the same config must land on the
     same full state hash.  This subsumes "same throughputs" and churns
     the whole checkpoint-hash machinery on a random scenario. *)
  let determinism =
    let net2 = Network.run_config (Shrink.copy_config cfg) in
    let h1 = Network.state_hash net and h2 = Network.state_hash net2 in
    if h1 = h2 then
      [ Oracle.pass ~oracle:"determinism" ~scenario:label ~detail:h1 () ]
    else
      [
        Oracle.fail ~oracle:"determinism" ~scenario:label
          ~detail:(Printf.sprintf "%s <> %s" h1 h2)
          ();
      ]
  in
  let rescale =
    let cfg2, _ = gen ~scale:2 in
    let base = Network.throughputs net () in
    let scaled =
      Network.throughputs (Network.run_config (Shrink.copy_config cfg2)) ()
    in
    Array.to_list
      (Array.mapi
         (fun i x ->
           Oracle.exact ~oracle:"rescale-x2"
             ~scenario:(Printf.sprintf "%s/flow%d" label i)
             ~expected:(2. *. x) ~observed:scaled.(i) ())
         base)
  in
  (conservation @ determinism @ rescale, summary)

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let violation_to_json v =
  Printf.sprintf
    {|{"id":%d,"summary":"%s","shrunk":%s,"repro":%s,"failing":%s}|}
    v.id
    (String.concat "" (List.map (fun c ->
         match c with
         | '"' -> "\\\"" | '\\' -> "\\\\"
         | c when Char.code c < 0x20 -> Printf.sprintf "\\u%04x" (Char.code c)
         | c -> String.make 1 c)
         (List.init (String.length v.summary) (String.get v.summary))))
    (match v.shrunk with
    | None -> "null"
    | Some s -> Printf.sprintf "%S" s)
    (match v.repro_path with
    | None -> "null"
    | Some s -> Printf.sprintf "%S" s)
    (Oracle.list_to_json v.failing)

let report_to_json r =
  Printf.sprintf
    {|{"seed":%d,"samples":%d,"verdicts_checked":%d,"violations":[%s]}|}
    r.seed r.samples r.verdicts_checked
    (String.concat ",\n" (List.map violation_to_json r.violations))

let run ?dir ?(log = fun _ -> ()) ~seed ~n () =
  let violations = ref [] in
  let checked = ref 0 in
  for id = 0 to n - 1 do
    let verdicts, summary = check_sample ~seed ~id () in
    checked := !checked + List.length verdicts;
    let failing = Oracle.failures verdicts in
    if failing <> [] then begin
      log (Printf.sprintf "fuzz: VIOLATION at %s — %s" summary
             (String.concat "; "
                (List.map (fun (v : Oracle.verdict) -> v.Oracle.oracle) failing)));
      (* Shrink when the failure is visible to the invariant monitor
         (conservation and invariant verdicts are; determinism and
         rescale mismatches are not invariant-class and are recorded
         un-shrunk). *)
      let cfg, _ = generate ~rng:(scenario_rng ~seed ~id) id in
      let shrunk, repro_path =
        match Shrink.shrink cfg with
        | None -> (None, None)
        | Some result ->
            let path =
              Option.map
                (fun d ->
                  let subdir =
                    Filename.concat d (Printf.sprintf "fuzz-%d" seed)
                  in
                  mkdirs subdir;
                  let path =
                    Filename.concat subdir
                      (Printf.sprintf "scenario-%d.repro.bin" id)
                  in
                  Shrink.write_repro path result;
                  path)
                dir
            in
            (Some (Shrink.describe result), path)
      in
      let v = { id; summary; failing; shrunk; repro_path } in
      (match dir with
      | None -> ()
      | Some d ->
          let subdir = Filename.concat d (Printf.sprintf "fuzz-%d" seed) in
          mkdirs subdir;
          Snapshot.write_atomic_file
            (Filename.concat subdir (Printf.sprintf "scenario-%d.json" id))
            (violation_to_json v));
      violations := v :: !violations
    end
  done;
  { seed; samples = n; verdicts_checked = !checked;
    violations = List.rev !violations }
