(** Seeded scenario fuzzing: random configurations over CCA mix × jitter
    × faults × buffer/horizon, each cross-examined by every applicable
    oracle, with violations shrunk into minimal reproducers and
    persisted as a replayable corpus.

    Reproducibility contract: scenario [i] of seed [S] is generated from
    [Rng.stream (Rng.create ~seed:S) ~label:"scenario-i"] — a pure
    function of (S, i).  [repro --fuzz N --fuzz-seed S] therefore
    revisits exactly the same scenarios on any machine, and a nightly
    seed rotation only has to vary [S]. *)

type violation = {
  id : int;  (** scenario index within the fuzz run *)
  summary : string;  (** generated-scenario parameter digest line *)
  failing : Oracle.verdict list;
  shrunk : string option;
      (** [Sim.Shrink.describe] of the minimized reproducer, when the
          violation trips the invariant monitor and shrinking succeeded *)
  repro_path : string option;  (** on-disk reproducer, when persisted *)
}

type report = {
  seed : int;
  samples : int;
  verdicts_checked : int;
  violations : violation list;
}

val generate :
  rng:Sim.Rng.t -> ?scale:int -> int -> Sim.Network.config * string
(** Generate scenario [i]'s config and its one-line parameter summary.
    [scale] (default 1) multiplies every byte-valued quantity — used by
    the fuzzer's rescale metamorphic check.  Consumes the generator, so
    pass a fresh labeled stream. *)

val check_sample :
  seed:int -> id:int -> unit -> Oracle.verdict list * string
(** Run scenario [id] of [seed] through every oracle: a monitored run
    (invariant checks including the conservation chain), end-state
    conservation verdicts, a determinism rerun (state hashes must
    match), and the exact rescale-×2 metamorphic property.  Returns all
    verdicts plus the scenario summary. *)

val run :
  ?dir:string -> ?log:(string -> unit) -> seed:int -> n:int -> unit -> report
(** Fuzz [n] scenarios.  For each violation: shrink (when the invariant
    monitor trips) and, when [dir] is given, persist
    [<dir>/fuzz-<seed>/scenario-<id>.json] (verdicts + summary) and
    [.../scenario-<id>.repro.bin] (a {!Sim.Shrink} reproducer loadable
    by [repro --replay]).  [log] receives one progress line per
    violation. *)

val report_to_json : report -> string
