(** Metamorphic properties: transformations of a {!Sim.Network} config
    whose outputs must match a predicted transformation of the original
    output.

    Each scenario is a {e builder} parameterized by the transformation
    axes, so every variant gets fresh CCA instances (configs embed
    stateful CCA closures; sharing them across runs would leak warmed
    state between variants):

    - {b unit rescaling} ([scale = 2]): link rate, MSS, buffer and
      initial queue all doubled.  Packet counts, event times and every
      time-valued quantity are unchanged, and byte-valued floats scale
      by a power of two — which is {e exact} in binary floating point —
      so throughput must double bitwise.
    - {b time-origin shift} ([shift = 16 s]): everything happens 16
      seconds later.  Float addition at a different magnitude loses
      ulps, which CCA feedback can amplify into one-packet differences,
      so the comparison carries a small tolerance rather than bitwise
      equality.
    - {b flow permutation} ([permute = true]): flows listed in reverse
      order must see the same per-flow throughputs (matched through the
      permutation).  Only meaningful for deterministic scenarios: the
      per-flow RNG streams are split in flow order, so permuting a
      stochastic config legitimately changes its noise.
    - {b jitter monotonicity}: adding a larger constant ACK-path delay
      must not increase a single Reno flow's throughput. *)

type scenario = {
  name : string;
  deterministic : bool;
      (** no random loss, no stochastic jitter — eligible for the
          flow-permutation check *)
  nflows : int;
  build : scale:int -> shift:float -> permute:bool -> Sim.Network.config;
}

val matrix : unit -> scenario list
(** The 6-scenario snapshot matrix: Reno solo (with an initial phantom
    queue), staggered Reno pair, Reno vs Vegas, Copa with delayed ACKs,
    Cubic vs BBR under random loss, Vegas behind aggregated ACKs with
    uniform jitter.  All fault-free and constant-rate so every
    transformation axis is well-defined. *)

val verdicts : scenario -> Oracle.verdict list
(** Run the scenario's applicable checks (rescale and shift always;
    permutation when deterministic with ≥ 2 flows). *)

val jitter_monotonicity : unit -> Oracle.verdict list
(** Single Reno flow with constant ACK-path delays 0 / 10 / 30 ms:
    throughput must be non-increasing (5% slack). *)

val all : unit -> Oracle.verdict list
(** Every check on every matrix scenario, plus jitter monotonicity. *)
