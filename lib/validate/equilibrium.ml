open Sim

(* Time-average queue occupancy (bytes) from the link's recorded step
   series: exact integral over the window, not an event-weighted mean. *)
let mean_queue_bytes net ~t0 ~t1 =
  let series = Link.queue_series (Network.link net) in
  Series.integral series ~t0 ~t1 /. (t1 -. t0)

let reno_loss_law ?(seed = 7) () =
  let p = 0.02 in
  let rate = Units.mbps 100. in
  let rm = Units.ms 40. in
  let duration = 60. in
  let cfg =
    Network.config ~rate:(Link.Constant rate) ~rm ~seed ~duration
      [ Network.flow ~loss_rate:p (Reno.make ()) ]
  in
  let net = Network.run_config cfg in
  let mss = Flow.mss (Network.flows net).(0) in
  let t0 = 0.25 *. duration and t1 = duration in
  let observed = Network.throughput net ~flow:0 ~t0 ~t1 in
  (* Evaluate the law at the measured mean RTT so a small standing queue
     doesn't masquerade as a loss-response bug. *)
  let rtt =
    match Series.mean_in (Flow.rtt_series (Network.flows net).(0)) ~t0 ~t1 with
    | Some r -> r
    | None -> rm
  in
  let expected = float_of_int mss *. sqrt 1.5 /. (rtt *. sqrt p) in
  [
    Oracle.check ~oracle:"reno-loss-law" ~scenario:"reno-p2pct"
      ~expected ~observed
      ~tolerance:(0.25 *. expected)
      ~detail:
        (Printf.sprintf "p=%.3f mean_rtt=%.4fs mss=%d window=[%.0f,%.0f]" p rtt
           mss t0 t1)
      ();
  ]

let vegas_standing_queue ?(seed = 7) () =
  let rate = Units.mbps 20. in
  let rm = Units.ms 40. in
  let duration = 30. in
  let cfg =
    Network.config ~rate:(Link.Constant rate) ~rm ~seed ~record_queue:true ~duration
      [ Network.flow (Vegas.make ()) ]
  in
  let net = Network.run_config cfg in
  let p = Vegas.default_params in
  let mss = float_of_int p.Vegas.mss in
  let observed = mean_queue_bytes net ~t0:(duration /. 3.) ~t1:duration in
  (* Corridor [alpha, beta] packets, with one packet of slack on each
     side for the once-per-RTT adjustment granularity. *)
  let expected = (p.Vegas.alpha +. p.Vegas.beta) /. 2. *. mss in
  let tolerance =
    (((p.Vegas.beta -. p.Vegas.alpha) /. 2.) +. 1.) *. mss
  in
  [
    Oracle.check ~oracle:"vegas-standing-queue" ~scenario:"vegas-solo"
      ~expected ~observed ~tolerance
      ~detail:
        (Printf.sprintf "alpha=%g beta=%g mss=%g C=%.0fB/s" p.Vegas.alpha
           p.Vegas.beta mss rate)
      ();
  ]

let copa_standing_queue ?(seed = 7) () =
  let rate = Units.mbps 20. in
  let rm = Units.ms 40. in
  let duration = 30. in
  let cfg =
    Network.config ~rate:(Link.Constant rate) ~rm ~seed ~record_queue:true ~duration
      [ Network.flow (Copa.make ()) ]
  in
  let net = Network.run_config cfg in
  let p = Copa.default_params in
  let mss = float_of_int p.Copa.mss in
  let observed_delay =
    mean_queue_bytes net ~t0:(duration /. 3.) ~t1:duration /. rate
  in
  let expected = Copa.equilibrium_queue_delay p ~rate in
  (* Copa sweeps a sawtooth of ~4 mss around the target (§2.2); the
     time-average can sit anywhere inside it, so accept half the band
     plus half the target. *)
  let tolerance = (2. *. mss /. rate) +. (0.5 *. expected) in
  [
    Oracle.check ~oracle:"copa-standing-queue" ~scenario:"copa-solo"
      ~expected ~observed:observed_delay ~tolerance
      ~detail:
        (Printf.sprintf "delta=%g mss=%g C=%.0fB/s" p.Copa.delta mss rate)
      ();
  ]

let all ?seed () =
  reno_loss_law ?seed ()
  @ vegas_standing_queue ?seed ()
  @ copa_standing_queue ?seed ()
