(** CCA equilibrium oracles: closed-loop steady states against the
    closed forms the paper builds on.

    - Reno under Bernoulli loss p obeys the square-root law
      [throughput ≈ mss * sqrt(3/2) / (rtt * sqrt p)] (Mathis et al.);
      the tolerance is wide (±25%) because the law itself is a
      steady-state approximation, but it still catches a simulator whose
      loss response or ACK clocking is wrong by a structural factor.
    - Vegas holds a standing queue between [alpha] and [beta] packets.
    - Copa (default mode) oscillates around a standing queueing delay of
      [mss / (delta * C)] with a band of roughly [4 mss / C] (§2.2 of
      the paper).

    Each oracle runs its own small single-flow scenario (deterministic
    except for Reno's Bernoulli loss, which is seeded) and reports
    {!Oracle.verdict}s. *)

val reno_loss_law : ?seed:int -> unit -> Oracle.verdict list
(** Single Reno flow, 2% i.i.d. loss, a link fast enough that queueing
    is negligible.  Judges measured goodput against the square-root law
    evaluated at the measured mean RTT. *)

val vegas_standing_queue : ?seed:int -> unit -> Oracle.verdict list
(** Single Vegas flow on an ideal path: the time-averaged standing queue
    must sit within the [alpha..beta]-packet corridor. *)

val copa_standing_queue : ?seed:int -> unit -> Oracle.verdict list
(** Single Copa flow on an ideal path: the time-averaged queueing delay
    must sit within the oscillation band around [mss / (delta * C)]. *)

val all : ?seed:int -> unit -> Oracle.verdict list
