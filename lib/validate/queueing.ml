type spec = {
  label : string;
  lambda : float;
  mean_size : float;
  deterministic_size : bool;
  link_rate : float;
  horizon : float;
  warmup : float;
}

(* rho = 0.7 at mu = 100 packets/s: far enough from saturation that the
   variance inflation is moderate, loaded enough that the queueing term
   dominates pure service time (a do-nothing queue would fail loudly).
   Mean size 10^4 bytes keeps the integer-byte discretization of
   exponential sizes below 10^-4 relative. *)
let mm1_default =
  {
    label = "mm1-rho0.7";
    lambda = 70.;
    mean_size = 10_000.;
    deterministic_size = false;
    link_rate = 1e6;
    horizon = 300.;
    warmup = 20.;
  }

let md1_default =
  { mm1_default with label = "md1-rho0.7"; deterministic_size = true }

type measured = {
  completed : int;
  mean_sojourn : float;
  sojourn_stderr : float;
  mean_occupancy : float;
  utilization : float;
}

let run ~rng spec =
  let eq = Sim.Event_queue.create () in
  let link =
    Sim.Link.create ~eq ~rate:(Sim.Link.Constant spec.link_rate)
      ~record_queue:false ()
  in
  let soj = Sim.Stats.Online.create () in
  (* Time-average of the in-system packet count over [warmup, horizon],
     integrated at every arrival/departure transition. *)
  let n_in_system = ref 0 in
  let occ_acc = ref 0. in
  let last_t = ref 0. in
  let integrate_to now =
    let from = Float.max !last_t spec.warmup in
    if now > from then
      occ_acc := !occ_acc +. (float_of_int !n_in_system *. (now -. from));
    last_t := now
  in
  let delivered_at_warmup = ref 0 in
  Sim.Link.set_on_dequeue link (fun pkt ->
      let now = Sim.Event_queue.now eq in
      integrate_to now;
      decr n_in_system;
      if pkt.Sim.Packet.sent_at >= spec.warmup then
        Sim.Stats.Online.add soj (now -. pkt.Sim.Packet.sent_at));
  let sizes =
    if spec.deterministic_size then
      Sim.Source.Fixed (int_of_float spec.mean_size)
    else Sim.Source.Exponential { mean = spec.mean_size }
  in
  let _source =
    Sim.Source.create ~eq ~rng
      ~arrivals:(Sim.Source.Poisson { rate = spec.lambda })
      ~sizes ~until:spec.horizon
      ~send:(fun pkt ->
        integrate_to (Sim.Event_queue.now eq);
        incr n_in_system;
        ignore (Sim.Link.enqueue link pkt))
      ()
  in
  Sim.Event_queue.schedule eq ~at:spec.warmup (fun () ->
      delivered_at_warmup := Sim.Link.delivered_bytes link);
  Sim.Event_queue.run_until eq spec.horizon;
  integrate_to spec.horizon;
  let window = spec.horizon -. spec.warmup in
  let n = Sim.Stats.Online.count soj in
  {
    completed = n;
    mean_sojourn = Sim.Stats.Online.mean soj;
    sojourn_stderr =
      (if n < 2 then nan
       else Sim.Stats.Online.stddev soj /. sqrt (float_of_int n));
    mean_occupancy = !occ_acc /. window;
    utilization =
      float_of_int (Sim.Link.delivered_bytes link - !delivered_at_warmup)
      /. (spec.link_rate *. window);
  }

let verdicts ~rng spec =
  let m = run ~rng spec in
  let mu = spec.link_rate /. spec.mean_size in
  let rho = spec.lambda /. mu in
  let expected_w, expected_l =
    if spec.deterministic_size then
      (* M/D/1: Pollaczek–Khinchine with zero service variance. *)
      ( (1. /. mu) *. (1. +. (rho /. (2. *. (1. -. rho)))),
        rho +. (rho *. rho /. (2. *. (1. -. rho))) )
    else ((1. /. mu) /. (1. -. rho), rho /. (1. -. rho))
  in
  (* Consecutive sojourn times in a busy queue are positively correlated,
     so the i.i.d. stderr understates the variance of the sample mean;
     sqrt((1+rho)/(1-rho)) is the standard inflation for an M/M/1-like
     autocorrelation structure.  z = 5 makes a false alarm astronomically
     unlikely; the 0.5% relative floor absorbs integer-byte size
     discretization and finite-horizon edge effects. *)
  let inflation = sqrt ((1. +. rho) /. (1. -. rho)) in
  let z = 5. in
  let tol_w =
    Float.max (z *. m.sojourn_stderr *. inflation) (0.005 *. expected_w)
  in
  let rel_w = tol_w /. expected_w in
  let detail =
    Printf.sprintf "rho=%.2f mu=%.1f/s n=%d stderr=%.3g inflation=%.2f" rho mu
      m.completed m.sojourn_stderr inflation
  in
  [
    Oracle.check
      ~oracle:(if spec.deterministic_size then "md1-sojourn" else "mm1-sojourn")
      ~scenario:spec.label ~expected:expected_w ~observed:m.mean_sojourn
      ~tolerance:tol_w ~detail ();
    (* Little's law ties L's relative error to W's; the 1.5 headroom
       covers the extra arrival-count noise in the time average. *)
    Oracle.check
      ~oracle:
        (if spec.deterministic_size then "md1-occupancy" else "mm1-occupancy")
      ~scenario:spec.label ~expected:expected_l ~observed:m.mean_occupancy
      ~tolerance:(1.5 *. rel_w *. expected_l)
      ~detail ();
    Oracle.check ~oracle:"utilization" ~scenario:spec.label ~expected:rho
      ~observed:m.utilization ~tolerance:(0.05 *. rho) ~detail ();
  ]
