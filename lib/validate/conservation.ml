let fi = float_of_int

let verdicts ~scenario net =
  let open Sim in
  let cfg = Network.config_of net in
  let link = Network.link net in
  let flows = Network.flows net in
  let random_losses = Network.random_losses net in
  let fault_drops = Network.fault_data_drops net in
  let received = Network.received_bytes net in
  let propagating = Network.propagating_bytes net in
  let offered = Link.offered_bytes link
  and delivered = Link.delivered_bytes link
  and dropped = Link.dropped_bytes link
  and queued = Link.queued_bytes link in
  (* [offered] includes the phantom warm-start bytes (they enter through
     [Link.enqueue]), so the identity needs no initial-queue term. *)
  let link_verdict =
    Oracle.exact ~oracle:"link-conservation" ~scenario
      ~expected:(fi offered)
      ~observed:(fi (delivered + dropped + queued))
      ~detail:
        (Printf.sprintf "offered=%d initial=%d delivered=%d dropped=%d queued=%d"
           offered cfg.Network.initial_queue_bytes delivered dropped queued)
      ()
  in
  let phantom = Network.phantom_flow_id in
  let sum_offered = ref (Link.offered_bytes_for link ~flow:phantom)
  and sum_delivered = ref (Link.delivered_bytes_for link ~flow:phantom)
  and sum_dropped = ref (Link.dropped_bytes_for link ~flow:phantom) in
  let per_flow =
    Array.to_list
      (Array.mapi
         (fun i f ->
           let mss = Flow.mss f in
           let sent = Flow.sent_bytes f in
           let prelink =
             mss
             * (random_losses.(i)
               + if i < Array.length fault_drops then fault_drops.(i) else 0)
           in
           let offered_i = Link.offered_bytes_for link ~flow:i
           and delivered_i = Link.delivered_bytes_for link ~flow:i
           and dropped_i = Link.dropped_bytes_for link ~flow:i in
           sum_offered := !sum_offered + offered_i;
           sum_delivered := !sum_delivered + delivered_i;
           sum_dropped := !sum_dropped + dropped_i;
           let in_link = offered_i - delivered_i - dropped_i in
           let scn = Printf.sprintf "%s/flow%d" scenario i in
           [
             Oracle.exact ~oracle:"flow-conservation" ~scenario:scn
               ~expected:(fi sent)
               ~observed:(fi (prelink + offered_i))
               ~detail:
                 (Printf.sprintf "sent=%d prelink=%d offered=%d" sent prelink
                    offered_i)
               ();
             (* End to end: every sent byte is a counted drop, inside
                the link, on the propagation line, or at the receiver.
                [propagating] comes from the delay line's own occupancy
                — an independent witness, not derived from the link
                counters — so this genuinely cross-checks the receiver
                counters against the link's view. *)
             Oracle.exact ~oracle:"path-conservation" ~scenario:scn
               ~expected:(fi sent)
               ~observed:
                 (fi
                    (prelink + dropped_i + in_link + propagating.(i)
                   + received.(i)))
               ~detail:
                 (Printf.sprintf
                    "sent=%d prelink=%d link-drops=%d in-link=%d \
                     propagating=%d received=%d"
                    sent prelink dropped_i in_link propagating.(i)
                    received.(i))
               ();
           ])
         flows)
    |> List.concat
  in
  let tiling =
    Oracle.exact ~oracle:"link-flow-conservation" ~scenario
      ~expected:(fi (offered + delivered + dropped))
      ~observed:(fi (!sum_offered + !sum_delivered + !sum_dropped))
      ~detail:
        (Printf.sprintf
           "aggregates offered=%d delivered=%d dropped=%d; per-flow sums %d/%d/%d"
           offered delivered dropped !sum_offered !sum_delivered !sum_dropped)
      ()
  in
  let monitor =
    match Network.invariant net with
    | None -> []
    | Some inv ->
        [
          Oracle.check ~oracle:"invariant-violations" ~scenario ~expected:0.
            ~observed:(fi (Invariant.count inv))
            ~tolerance:0.
            ~detail:(Invariant.summary inv)
            ();
        ]
  in
  (link_verdict :: tiling :: per_flow) @ monitor
