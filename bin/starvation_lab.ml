(* starvation_lab: CLI front end for the reproduction.

   Subcommands:
     list                      show available experiments
     run <key> [--quick]      run one experiment and print its table
     all [--quick]            run every experiment
     figures [--quick]        dump the numeric series behind the figures
     duel --cca <name> ...    ad-hoc two-flow duel on a configurable link *)

open Cmdliner

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use shortened runs (coarser numbers).")

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-10s %s\n" e.Experiments.Registry.key
          e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments")
    Term.(const run $ const ())

(* ---------------- run ---------------- *)

let run_cmd =
  let key =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let run key quick =
    match Experiments.Registry.select [ key ] with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | Ok es ->
        List.iter
          (fun e ->
            let rows = e.Experiments.Registry.run ~quick in
            Experiments.Report.print_rows ~title:e.Experiments.Registry.title
              rows;
            if not (Experiments.Report.all_ok rows) then exit 2)
          es
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment")
    Term.(const run $ key $ quick_arg)

(* ---------------- all ---------------- *)

let all_cmd =
  let run quick =
    let rows, _stats = Experiments.Registry.run_all ~quick () in
    let bad = List.filter (fun r -> not r.Experiments.Report.ok) rows in
    Printf.printf "\n%d/%d checks hold the paper's shape\n"
      (List.length rows - List.length bad)
      (List.length rows);
    if bad <> [] then exit 2
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment")
    Term.(const run $ quick_arg)

(* ---------------- report ---------------- *)

let report_cmd =
  let out =
    Arg.(value & opt string "EXPERIMENTS.generated.md"
         & info [ "out" ] ~docv:"FILE" ~doc:"Output markdown file.")
  in
  let run out quick =
    let oc = open_out out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc
          "# Generated experiment report\n\nProduced by `starvation_lab report`;            every row is paper-vs-measured.\n\n";
        List.iter
          (fun e ->
            Printf.printf "running %s...\n%!" e.Experiments.Registry.key;
            let rows = e.Experiments.Registry.run ~quick in
            output_string oc
              (Experiments.Report.to_markdown ~title:e.Experiments.Registry.title rows);
            output_string oc "\n")
          Experiments.Registry.all);
    Printf.printf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Run every experiment and write a markdown report")
    Term.(const run $ out $ quick_arg)

(* ---------------- figures ---------------- *)

let figures_cmd =
  let run quick =
    let series_points s =
      Array.to_list
        (Array.map2
           (fun t v -> (t, Sim.Units.to_ms v))
           (Sim.Series.times s) (Sim.Series.values s))
    in
    (* Figure 1 charts *)
    List.iter
      (fun (name, s) ->
        print_string
          (Experiments.Ascii_plot.render
             ~title:(Printf.sprintf "Figure 1 (%s): RTT (ms) vs time (s)" name)
             [ (name, series_points s) ]))
      (Experiments.Exp_fig1.series ~quick ());
    (* Figure 3 charts: d_max curves on a log-rate axis *)
    let rates =
      List.map Sim.Units.mbps [ 0.1; 0.2; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100. ]
    in
    let fig3 =
      List.map
        (fun (name, pts) ->
          ( name,
            List.map
              (fun (r, (b : Core.Rate_delay.band)) ->
                (Float.log10 (Sim.Units.to_mbps r), Sim.Units.to_ms b.d_max))
              pts ))
        (Experiments.Exp_fig3.analytic_series ~rm:0.1 ~rates)
    in
    print_string
      (Experiments.Ascii_plot.render
         ~title:"Figure 3: d_max (ms) vs log10 rate (Mbit/s), Rm = 100 ms" fig3);
    (* E14 phase diagram *)
    let phase =
      List.map
        (fun (p : Experiments.Exp_threshold.point) ->
          (p.jitter_over_delta, Float.min p.ratio 50.))
        (Experiments.Exp_threshold.sweep ~quick ())
    in
    print_string
      (Experiments.Ascii_plot.render
         ~title:
           "E14: throughput ratio (capped at 50) vs D / delta_max (copa, theorem 1             boundary at 2)"
         [ ("copa", phase) ]);
    (* Figure 1 series *)
    List.iter
      (fun (name, s) ->
        let data =
          Array.to_list
            (Array.map2
               (fun t v -> [ t; Sim.Units.to_ms v ])
               (Sim.Series.times s) (Sim.Series.values s))
        in
        let every = max 1 (List.length data / 200) in
        let data = List.filteri (fun i _ -> i mod every = 0) data in
        Experiments.Report.print_series
          ~title:(Printf.sprintf "Figure 1 (%s): time (s) vs RTT (ms)" name)
          ~cols:[ "t"; "rtt_ms" ] data)
      (Experiments.Exp_fig1.series ~quick ());
    (* Figure 3 series *)
    let rates =
      List.map Sim.Units.mbps [ 0.1; 0.2; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100. ]
    in
    List.iter
      (fun (name, pts) ->
        Experiments.Report.print_series
          ~title:(Printf.sprintf "Figure 3 (%s): rate (Mbit/s) vs delay band (ms)" name)
          ~cols:[ "mbps"; "d_min_ms"; "d_max_ms" ]
          (List.map
             (fun (r, (b : Core.Rate_delay.band)) ->
               [ Sim.Units.to_mbps r; Sim.Units.to_ms b.d_min; Sim.Units.to_ms b.d_max ])
             pts))
      (Experiments.Exp_fig3.analytic_series ~rm:0.1 ~rates);
    (* Figure 7 cwnd traces *)
    List.iter
      (fun (r : Experiments.Exp_fig7.result) ->
        let dump tag s =
          let data =
            Array.to_list
              (Array.map2
                 (fun t v -> [ t; v /. 1500. ])
                 (Sim.Series.times s) (Sim.Series.values s))
          in
          let every = max 1 (List.length data / 300) in
          let data = List.filteri (fun i _ -> i mod every = 0) data in
          Experiments.Report.print_series
            ~title:
              (Printf.sprintf "Figure 7 (%s, %s): time (s) vs cwnd (packets)" r.cca_name
                 tag)
            ~cols:[ "t"; "cwnd_pkts" ] data
        in
        dump "delayed-ack" r.cwnd_delack;
        dump "per-packet-ack" r.cwnd_normal)
      (Experiments.Exp_fig7.series ~quick ());
    (* Figures 4-6 come from the Theorem 1 outcome *)
    match Experiments.Exp_theorem1.outcome ~quick () with
    | Error e -> Printf.printf "theorem1 failed: %s\n" e
    | Ok o ->
        Experiments.Report.print_series
          ~title:"Figure 4: probe rates vs d_max (ms)"
          ~cols:[ "mbps"; "d_max_ms" ]
          (List.map
             (fun (m : Core.Convergence.measurement) ->
               [ Sim.Units.to_mbps m.rate; Sim.Units.to_ms m.d_max ])
             o.Core.Theorem1.pair.Core.Pigeonhole.probes);
        let ds = o.Core.Theorem1.d_star in
        let data =
          Array.to_list
            (Array.map2
               (fun t v -> [ t; Sim.Units.to_ms v ])
               (Sim.Series.times ds) (Sim.Series.values ds))
        in
        let every = max 1 (List.length data / 200) in
        let data = List.filteri (fun i _ -> i mod every = 0) data in
        Experiments.Report.print_series
          ~title:"Figure 6: shared-queue delay d*(t) (Eq. 5)" ~cols:[ "t"; "d_star_ms" ]
          data
  in
  Cmd.v (Cmd.info "figures" ~doc:"Dump the numeric series behind the paper's figures")
    Term.(const run $ quick_arg)

(* ---------------- convergence ---------------- *)

let cca_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "vegas" -> Ok ("vegas", fun () -> Vegas.make ())
    | "fast" -> Ok ("fast", fun () -> Fast_tcp.make ())
    | "copa" -> Ok ("copa", fun () -> Copa.make ())
    | "bbr" -> Ok ("bbr", fun () -> Bbr.make ())
    | "vivace" -> Ok ("vivace", fun () -> Pcc_vivace.make ())
    | "allegro" -> Ok ("allegro", fun () -> Pcc_allegro.make ())
    | "reno" -> Ok ("reno", fun () -> Reno.make ())
    | "cubic" -> Ok ("cubic", fun () -> Cubic.make ())
    | "alg1" -> Ok ("alg1", fun () -> Alg1.make ())
    | "ledbat" -> Ok ("ledbat", fun () -> Ledbat.make ())
    | "ecn-reno" -> Ok ("ecn-reno", fun () -> Ecn_reno.make ())
    | other -> Error (`Msg (Printf.sprintf "unknown CCA %S" other))
  in
  Arg.conv (parse, fun ppf (name, _) -> Format.pp_print_string ppf name)

let convergence_cmd =
  let cca =
    Arg.(
      value
      & opt cca_conv ("copa", fun () -> Copa.make ())
      & info [ "cca" ] ~docv:"CCA"
          ~doc:"vegas|fast|copa|bbr|vivace|allegro|reno|cubic|alg1|ledbat|ecn-reno")
  in
  let rates =
    Arg.(
      value
      & opt (list float) [ 1.; 4.; 16.; 64. ]
      & info [ "rates" ] ~docv:"MBPS,..." ~doc:"Link rates to probe, Mbit/s.")
  in
  let rm_ms =
    Arg.(value & opt float 40. & info [ "rtt" ] ~docv:"MS" ~doc:"Propagation RTT, ms.")
  in
  let duration =
    Arg.(value & opt float 30. & info [ "duration" ] ~docv:"SECONDS" ~doc:"Per-rate run.")
  in
  let run (name, make_cca) rates rm_ms duration =
    let rm = Sim.Units.ms rm_ms in
    Printf.printf
      "Delay-convergence of %s (Definition 1), Rm = %.0f ms:
%-12s %-10s %-8s %-22s %-10s %s
"
      name rm_ms "rate" "converged" "T (s)" "band (ms)" "delta(ms)" "efficiency";
    List.iter
      (fun mbps ->
        let m =
          Core.Convergence.measure ~make_cca ~rate:(Sim.Units.mbps mbps) ~rm
            ~duration ()
        in
        Printf.printf "%-12s %-10b %-8.1f [%8.3f, %8.3f]  %-10.3f %.3f
"
          (Printf.sprintf "%g Mbit/s" mbps)
          m.Core.Convergence.converged m.Core.Convergence.t_converge
          (Sim.Units.to_ms m.Core.Convergence.d_min)
          (Sim.Units.to_ms m.Core.Convergence.d_max)
          (Sim.Units.to_ms m.Core.Convergence.delta)
          m.Core.Convergence.efficiency)
      rates
  in
  Cmd.v
    (Cmd.info "convergence"
       ~doc:"Measure a CCA's delay-convergence (Definition 1) over a rate sweep")
    Term.(const run $ cca $ rates $ rm_ms $ duration)

(* ---------------- theorem1 ---------------- *)

let theorem1_cmd =
  let cca =
    Arg.(
      value
      & opt cca_conv ("fast", fun () -> Fast_tcp.make ())
      & info [ "cca" ] ~docv:"CCA" ~doc:"CCA to starve (fast and ledbat are tuned).")
  in
  let s_arg =
    Arg.(value & opt float 4. & info [ "s" ] ~docv:"S" ~doc:"Target throughput ratio.")
  in
  let f_arg =
    Arg.(value & opt float 0.8 & info [ "f" ] ~docv:"F" ~doc:"Assumed efficiency.")
  in
  let rtt_ms =
    Arg.(value & opt float 20. & info [ "rtt" ] ~docv:"MS" ~doc:"Propagation RTT, ms.")
  in
  let lambda0 =
    Arg.(value & opt float 2. & info [ "lambda0" ] ~docv:"MBPS"
           ~doc:"First pigeonhole probe rate, Mbit/s.")
  in
  let eps_ms =
    Arg.(value & opt float 2. & info [ "epsilon" ] ~docv:"MS"
           ~doc:"Pigeonhole bucket size, ms.")
  in
  let run (name, make_cca) s f rtt_ms lambda0 eps_ms =
    Printf.printf "Running the Theorem 1 construction on %s (s=%.1f, f=%.1f)...
%!"
      name s f;
    match
      Core.Theorem1.run ~make_cca ~rm:(Sim.Units.ms rtt_ms) ~s ~f
        ~lambda0:(Sim.Units.mbps lambda0)
        ~epsilon:(Sim.Units.ms eps_ms) ()
    with
    | Error e ->
        Printf.eprintf "construction failed: %s
" e;
        exit 2
    | Ok o ->
        Format.printf "%a@." Core.Theorem1.pp_outcome o;
        if not o.Core.Theorem1.starved then exit 2
  in
  Cmd.v
    (Cmd.info "theorem1" ~doc:"Run the Theorem 1 starvation construction end to end")
    Term.(const run $ cca $ s_arg $ f_arg $ rtt_ms $ lambda0 $ eps_ms)

(* ---------------- model ---------------- *)

let model_cmd =
  let model_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "vegas" -> Ok `Vegas
      | "aimd" -> Ok `Aimd
      | other -> Error (`Msg (Printf.sprintf "unknown model %S (vegas|aimd)" other))
    in
    Arg.conv
      (parse, fun ppf m -> Format.pp_print_string ppf (match m with `Vegas -> "vegas" | `Aimd -> "aimd"))
  in
  let which =
    Arg.(value & opt model_conv `Vegas
         & info [ "model" ] ~docv:"MODEL" ~doc:"vegas|aimd")
  in
  let jitter_ms =
    Arg.(value & opt float 50. & info [ "jitter" ] ~docv:"MS" ~doc:"The model's D, ms.")
  in
  let horizon =
    Arg.(value & opt int 40 & info [ "horizon" ] ~docv:"STEPS" ~doc:"Trace length, Rm steps.")
  in
  let run which jitter_ms horizon =
    let rm = 0.05 and mss = 1500. in
    let link_rate = Sim.Units.mbps 8. in
    let big_d = Sim.Units.ms jitter_ms in
    let report name u util =
      Printf.printf
        "%s, D = %.0f ms, %d steps:\n  worst unfairness  %.2f\n  worst utilization %.2f\n"
        name jitter_ms horizon u util
    in
    match which with
    | `Vegas ->
        let cca = Ccac.Model.vegas_model ~rm ~mss ~alpha:3. in
        let u, _ = Ccac.Model.max_unfairness ~cca ~link_rate ~rm ~big_d ~horizon () in
        let util = Ccac.Model.min_utilization ~cca ~link_rate ~rm ~big_d ~horizon () in
        report "vegas (delay-convergent)" u util
    | `Aimd ->
        let cca = Ccac.Model.aimd_model ~rm ~mss in
        let buffer = link_rate *. rm in
        let u, _ =
          Ccac.Model.max_unfairness ~cca ~link_rate ~rm ~big_d ~buffer ~horizon ()
        in
        let util =
          Ccac.Model.min_utilization ~cca ~link_rate ~rm ~big_d ~buffer ~horizon ()
        in
        report "aimd (loss-based, delay-blind)" u util
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:"Bounded adversarial search in the Appendix C discretized model")
    Term.(const run $ which $ jitter_ms $ horizon)

(* ---------------- trace ---------------- *)

let trace_cmd =
  let cca =
    Arg.(
      value
      & opt cca_conv ("bbr", fun () -> Bbr.make ())
      & info [ "cca" ] ~docv:"CCA"
          ~doc:"vegas|fast|copa|bbr|vivace|allegro|reno|cubic|alg1|ledbat|ecn-reno")
  in
  let mbps_f =
    Arg.(value & opt float 24. & info [ "rate" ] ~docv:"MBPS" ~doc:"Link rate, Mbit/s.")
  in
  let rm_ms =
    Arg.(value & opt float 40. & info [ "rtt" ] ~docv:"MS" ~doc:"Propagation RTT, ms.")
  in
  let duration =
    Arg.(value & opt float 20. & info [ "duration" ] ~docv:"SECONDS" ~doc:"Run length.")
  in
  let run (name, make_cca) mbps rm_ms duration =
    let rate = Sim.Units.mbps mbps in
    let rm = Sim.Units.ms rm_ms in
    let net =
      Sim.Network.run_config
        (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm ~duration
           [ Sim.Network.flow ~inspect_period:(duration /. 200.) (make_cca ()) ])
    in
    let f = (Sim.Network.flows net).(0) in
    let to_pts ?(scale = fun v -> v) s =
      Array.to_list
        (Array.map2
           (fun t v -> (t, scale v))
           (Sim.Series.times s) (Sim.Series.values s))
    in
    print_string
      (Experiments.Ascii_plot.render
         ~title:(Printf.sprintf "%s on %.0f Mbit/s, Rm = %.0f ms: RTT (ms)" name mbps rm_ms)
         [ ("rtt", to_pts ~scale:Sim.Units.to_ms (Sim.Flow.rtt_series f)) ]);
    print_string
      (Experiments.Ascii_plot.render ~title:"cwnd (packets)"
         [ ("cwnd", to_pts ~scale:(fun v -> v /. 1500.) (Sim.Flow.cwnd_series f)) ]);
    print_string
      (Experiments.Ascii_plot.render ~title:"delivery rate (Mbit/s)"
         [ ("rate", to_pts ~scale:Sim.Units.to_mbps (Sim.Flow.rate_series f ~window:(4. *. rm))) ]);
    (* CCA internals, skipping constants (flat series carry no information). *)
    List.iter
      (fun (k, s) ->
        match Sim.Series.min_max_in s ~t0:0. ~t1:duration with
        | Some (lo, hi) when hi -. lo > 1e-9 && Sim.Series.length s > 2 ->
            print_string
              (Experiments.Ascii_plot.render
                 ~title:(Printf.sprintf "internal: %s" k)
                 [ (k, to_pts s) ])
        | _ -> ())
      (Sim.Flow.inspect_series f);
    Printf.printf "throughput: %s, utilization %.2f
"
      (Experiments.Report.mbps (Sim.Network.throughputs net ()).(0))
      (Sim.Network.utilization net ())
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one flow and chart its RTT, cwnd, rate and CCA internals")
    Term.(const run $ cca $ mbps_f $ rm_ms $ duration)

(* ---------------- export ---------------- *)

let export_cmd =
  let dir =
    Arg.(value & opt string "figures" & info [ "dir" ] ~docv:"DIR"
           ~doc:"Directory for the CSV files.")
  in
  let run dir quick =
    let paths = Experiments.Export.figures ~dir ~quick in
    List.iter (Printf.printf "wrote %s\n") paths
  in
  Cmd.v (Cmd.info "export" ~doc:"Write the figure series as CSV files")
    Term.(const run $ dir $ quick_arg)

(* ---------------- duel ---------------- *)

let duel_cmd =
  let cca =
    Arg.(
      value
      & opt cca_conv ("copa", fun () -> Copa.make ())
      & info [ "cca" ] ~docv:"CCA"
          ~doc:"vegas|fast|copa|bbr|vivace|allegro|reno|cubic|alg1|ledbat|ecn-reno")
  in
  let mbps_f =
    Arg.(value & opt float 24. & info [ "rate" ] ~docv:"MBPS" ~doc:"Link rate, Mbit/s.")
  in
  let rm_ms =
    Arg.(value & opt float 40. & info [ "rtt" ] ~docv:"MS" ~doc:"Propagation RTT, ms.")
  in
  let jitter_ms =
    Arg.(
      value & opt float 0.
      & info [ "jitter" ] ~docv:"MS"
          ~doc:"Uniform non-congestive delay bound on flow 1's ACK path, ms.")
  in
  let duration =
    Arg.(value & opt float 30. & info [ "duration" ] ~docv:"SECONDS" ~doc:"Run length.")
  in
  let trace_file =
    Arg.(value & opt (some string) None
         & info [ "trace-file" ] ~docv:"PATH"
             ~doc:"Mahimahi mm-link trace for the bottleneck (overrides --rate).")
  in
  let run (_, make_cca) mbps rm_ms jitter_ms duration trace_file =
    let rate =
      match trace_file with
      | Some path -> Sim.Link.load_mahimahi_trace path
      | None -> Sim.Link.Constant (Sim.Units.mbps mbps)
    in
    let rm = Sim.Units.ms rm_ms in
    let d = Sim.Units.ms jitter_ms in
    let flow1 =
      if jitter_ms > 0. then
        Sim.Network.flow ~jitter:(Sim.Jitter.Uniform { lo = 0.; hi = d })
          ~jitter_bound:d (make_cca ())
      else Sim.Network.flow (make_cca ())
    in
    (* A 4-BDP drop-tail buffer: unbounded queues make loss-based CCAs
       spiral into RTO races instead of their normal sawtooth. *)
    let buffer = 4 * Sim.Units.bdp_bytes ~rate:(Sim.Link.rate_at rate 0.) ~rtt:rm in
    let net =
      Sim.Network.run_config
        (Sim.Network.config ~rate ~buffer ~rm ~duration
           [ flow1; Sim.Network.flow (make_cca ()) ])
    in
    let report = Core.Fairness.of_network net () in
    Array.iteri
      (fun i x -> Printf.printf "flow %d: %s\n" i (Experiments.Report.mbps x))
      report.Core.Fairness.throughputs;
    Printf.printf "ratio %.2f, jain %.3f, utilization %.2f\n"
      report.Core.Fairness.ratio report.Core.Fairness.jain
      report.Core.Fairness.utilization
  in
  Cmd.v
    (Cmd.info "duel" ~doc:"Ad-hoc two-flow duel with optional jitter on flow 1")
    Term.(const run $ cca $ mbps_f $ rm_ms $ jitter_ms $ duration $ trace_file)

let () =
  let doc = "Reproduction lab for 'Starvation in End-to-End Congestion Control'" in
  let info = Cmd.info "starvation_lab" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; all_cmd; report_cmd; figures_cmd; export_cmd;
            convergence_cmd; trace_cmd; model_cmd; theorem1_cmd; duel_cmd ]))
