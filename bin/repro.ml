(* Parallel reproduction driver.

   Runs the experiment suite through the Runner pool: simulations fan out
   across forked workers, results merge deterministically, and a
   content-addressed cache under --cache-dir makes re-runs of an unchanged
   binary free.  Output on stdout is byte-identical for every -j level and
   for cached re-runs; the pool's counters go to stderr so the streams can
   be diffed independently. *)

open Cmdliner

let keys_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
         ~doc:"Experiment keys to run (see $(b,starvation_lab list)).")

let all_arg =
  Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ]
         ~doc:"Short durations and fewer seeds (CI scale).")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker processes. 1 runs serially in-process; 0 or negative \
               means one per core.")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ]
         ~doc:"Re-simulate everything; neither read nor write the run cache.")

let cache_dir_arg =
  Arg.(value & opt string "_cache" & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Run-cache directory.")

let check_arg =
  Arg.(value & flag & info [ "check" ]
         ~doc:"Exit 2 unless every report row holds the paper's shape.")

let select keys all =
  if all || keys = [] then Ok Experiments.Registry.all
  else
    let missing =
      List.filter (fun k -> Experiments.Registry.find k = None) keys
    in
    if missing <> [] then
      Error (Printf.sprintf "unknown experiment(s): %s" (String.concat ", " missing))
    else Ok (List.filter_map Experiments.Registry.find keys)

let main keys all quick jobs no_cache cache_dir check =
  match select keys all with
  | Error msg ->
      prerr_endline ("repro: " ^ msg);
      exit 1
  | Ok experiments ->
      let workers = if jobs <= 0 then Runner.Pool.default_workers () else jobs in
      let cache =
        if no_cache then None else Some (Runner.Cache.create ~dir:cache_dir ())
      in
      let t0 = Unix.gettimeofday () in
      let rows, stats =
        Experiments.Registry.run_selection ~quick ~workers ?cache experiments
      in
      let bad = List.filter (fun r -> not r.Experiments.Report.ok) rows in
      Printf.printf "\n%d/%d checks hold the paper's shape\n"
        (List.length rows - List.length bad)
        (List.length rows);
      Printf.eprintf
        "runner: %d jobs, %d cache hits, %d executed, %d respawns, %d workers, %.1f s\n"
        stats.Runner.Pool.jobs stats.Runner.Pool.cache_hits
        stats.Runner.Pool.executed stats.Runner.Pool.respawns workers
        (Unix.gettimeofday () -. t0);
      if check && bad <> [] then exit 2

let cmd =
  let doc = "Parallel, cached reproduction of the paper's experiment suite" in
  Cmd.v
    (Cmd.info "repro" ~doc)
    Term.(
      const main $ keys_arg $ all_arg $ quick_arg $ jobs_arg $ no_cache_arg
      $ cache_dir_arg $ check_arg)

let () = exit (Cmd.eval cmd)
