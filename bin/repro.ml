let () =
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant (Sim.Units.mbps 12.)) ~buffer:(64*1500)
      ~rm:0.04 ~initial_queue_bytes:(10 * 1500) ~monitor_period:0.05 ~duration:2.
      [ Sim.Network.flow (Sim.Cca.reno ()) ]
  in
  let t = Sim.Network.run_config cfg in
  match Sim.Network.invariant t with
  | None -> print_endline "no monitor"
  | Some inv -> print_endline (Sim.Invariant.summary inv)
