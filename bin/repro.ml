(* Parallel reproduction driver.

   Runs the experiment suite through the Runner pool: simulations fan out
   across forked workers, results merge deterministically, and a
   content-addressed cache under --cache-dir makes re-runs of an unchanged
   binary free.  Output on stdout is byte-identical for every -j level and
   for cached re-runs; the pool's counters go to stderr so the streams can
   be diffed independently.

   When the cache is enabled the matrix runs supervised (Runner.Supervise):
   each completed job is journaled beside the cache as it lands, so a run
   killed mid-matrix can be finished with --resume, re-executing only the
   jobs that had not completed.  --split-run proves checkpoint fidelity by
   serializing and restoring every simulation at mid-horizon; the output
   must stay byte-identical.  --selftest-shrink and --replay exercise the
   failing-scenario minimizer end to end. *)

open Cmdliner

let keys_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
         ~doc:"Experiment keys to run, or the single word $(b,list) to \
               print every available key and exit.")

let all_arg =
  Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ]
         ~doc:"Short durations and fewer seeds (CI scale).")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker processes. 1 runs serially in-process; 0 or negative \
               means one per core.")

let pool_arg =
  Arg.(value
       & opt (enum [ ("fork", `Fork); ("domain", `Domain) ]) `Fork
       & info [ "pool" ] ~docv:"BACKEND"
           ~doc:"Worker pool backend for -j >= 2: $(b,fork) (isolated \
                 processes; supervised retries, deadlines, per-job stdout \
                 capture) or $(b,domain) (shared-memory domains in one \
                 process; unsupervised, for silent census-style jobs — \
                 output stays byte-identical to -j 1).")

let backend_arg =
  let backend_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error (fun m -> `Msg m) (Fluid.Backend.of_string s)),
        fun ppf b -> Format.pp_print_string ppf (Fluid.Backend.to_string b) )
  in
  Arg.(value & opt backend_conv Fluid.Backend.Packet
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Simulation substrate for backend-aware experiments \
                 (threshold, census, validate): $(b,packet) (the \
                 event-driven simulator), $(b,fluid) (fixed-step \
                 discretised fluid model; orders of magnitude faster), or \
                 $(b,hybrid) (fluid far from discontinuities, packet-level \
                 windows around them).  Cache keys incorporate the \
                 backend, so results never cross substrates.  Packet-only \
                 experiments ignore this flag.")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ]
         ~doc:"Re-simulate everything; neither read nor write the run cache \
               (also disables the resume journal).")

let cache_dir_arg =
  Arg.(value & opt string "_cache" & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Run-cache directory.")

let check_arg =
  Arg.(value & flag & info [ "check" ]
         ~doc:"Exit 2 unless every report row holds the paper's shape.")

let resume_arg =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Keep the resume journal from a previous (possibly killed) \
               run: jobs it records as done with intact cache entries are \
               replayed, not re-executed.  Without this flag the journal \
               is cleared at startup.")

let split_run_arg =
  Arg.(value & flag & info [ "split-run" ]
         ~doc:"Run every simulation to mid-horizon, serialize, restore, \
               and finish on the restored copy.  Output must be \
               byte-identical to a normal run — this is the \
               checkpoint/restore equivalence proof at suite scale.")

let deadline_arg =
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS"
         ~doc:"Per-attempt wall-clock deadline for each job (forked \
               workers only).")

let max_attempts_arg =
  Arg.(value & opt int 3 & info [ "max-attempts" ] ~docv:"N"
         ~doc:"Supervised attempts per job before it is quarantined.")

let selftest_shrink_arg =
  Arg.(value & opt (some string) None
       & info [ "selftest-shrink" ] ~docv:"DIR"
         ~doc:"Ignore the experiment arguments: run a scenario that \
               deliberately trips an invariant, auto-shrink it, write the \
               reproducer and a summary under $(docv), and exit 0 iff the \
               minimized scenario has at most 2 flows and at most 1 fault \
               event while still tripping the same check.")

let replay_arg =
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE"
         ~doc:"Load a reproducer written by --selftest-shrink (or by the \
               shrinker) and re-run it; exit 0 iff it still trips the \
               recorded invariant check.")

let allow_failures_arg =
  Arg.(value & flag & info [ "allow-failures" ]
         ~doc:"Do not fail the run when a job is quarantined: skip the \
               owning experiment (notice on stderr) and exit 0.  Without \
               this flag any quarantined or retry-exhausted job exits 3.")

let fuzz_arg =
  Arg.(value & opt (some int) None & info [ "fuzz" ] ~docv:"N"
         ~doc:"Ignore the experiment arguments: fuzz $(docv) generated \
               scenarios through every validation oracle (conservation, \
               determinism, rescale metamorphic + the invariant monitor). \
               Violations are shrunk, persisted as a replayable corpus \
               under the cache dir, and exit 4.")

let fuzz_seed_arg =
  Arg.(value & opt int 1 & info [ "fuzz-seed" ] ~docv:"SEED"
         ~doc:"Base seed for --fuzz: scenario $(i,i) of seed $(i,S) is a \
               pure function of (S, i), so a violating (seed, index) pair \
               reproduces anywhere.")

let select keys all =
  Experiments.Registry.select (if all then [] else keys)

(* `repro list`: the machine-checked inventory.  One key per line so the
   smoke test (and shell completion) can round-trip every key through
   `plan` without parsing a table. *)
let list_keys () =
  List.iter print_endline (Experiments.Registry.keys ())

(* --------------------------------------------------------------------- *)
(* Shrinker self-test and replay                                          *)
(* --------------------------------------------------------------------- *)

(* A scenario built to trip exactly one invariant deterministically: flow 0
   requests jitter up to 0.05 s against a declared bound of 0.02 s, so the
   monitor's jitter-bound check fires on the first audit after a clamped
   request.  Flow 1 and the two link faults are decoys the shrinker should
   strip away. *)
let selftest_config () =
  Sim.Network.config
    ~rate:(Sim.Link.Constant 1_500_000.)
    ~rm:0.05 ~seed:7 ~monitor_period:0.05 ~duration:4.0
    ~faults:
      (Sim.Fault.plan
         [
           Sim.Fault.Link_blackout { t0 = 1.0; t1 = 1.2 };
           Sim.Fault.Rate_step { at = 2.0; rate = 750_000. };
         ])
    [
      Sim.Network.flow
        ~jitter:(Sim.Jitter.Uniform { lo = 0.; hi = 0.05 })
        ~jitter_bound:0.02 (Reno.make ());
      Sim.Network.flow (Reno.make ());
    ]

let selftest_shrink dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let cfg = selftest_config () in
  let before = Sim.Shrink.trips cfg in
  (match before with
  | [] ->
      prerr_endline "selftest-shrink: scenario unexpectedly clean";
      exit 1
  | tally ->
      List.iter
        (fun (check, n) ->
          Printf.printf "selftest-shrink: initial run trips %s x%d\n" check n)
        tally);
  match Sim.Shrink.shrink cfg with
  | None ->
      prerr_endline "selftest-shrink: shrinker lost the violation";
      exit 1
  | Some r ->
      let flows = List.length r.Sim.Shrink.config.Sim.Network.flows in
      let faults =
        List.length (Sim.Fault.events r.Sim.Shrink.config.Sim.Network.faults)
      in
      let repro = Filename.concat dir "reproducer.bin" in
      Sim.Shrink.write_repro repro r;
      let summary =
        Printf.sprintf
          "{\n\
          \  \"check\": \"%s\",\n\
          \  \"flows\": %d,\n\
          \  \"fault_events\": %d,\n\
          \  \"duration\": %g,\n\
          \  \"violations\": %d,\n\
          \  \"runs\": %d\n\
           }\n"
          r.Sim.Shrink.check flows faults
          r.Sim.Shrink.config.Sim.Network.duration r.Sim.Shrink.violations
          r.Sim.Shrink.runs
      in
      Sim.Snapshot.write_atomic_file (Filename.concat dir "shrink.json") summary;
      print_endline (Sim.Shrink.describe r);
      Printf.printf "selftest-shrink: reproducer written to %s\n" repro;
      let ok =
        flows <= 2 && faults <= 1
        && List.mem_assoc r.Sim.Shrink.check before
      in
      if not ok then begin
        Printf.eprintf
          "selftest-shrink: FAILED (flows=%d faults=%d check=%s)\n" flows
          faults r.Sim.Shrink.check;
        exit 1
      end;
      print_endline "selftest-shrink: OK"

let replay file =
  match Sim.Shrink.load_repro file with
  | exception Sim.Snapshot.Incompatible msg ->
      Printf.eprintf "replay: cannot load %s: %s\n" file msg;
      exit 1
  | r ->
      let tally = Sim.Shrink.trips r.Sim.Shrink.config in
      List.iter
        (fun (check, n) -> Printf.printf "replay: trips %s x%d\n" check n)
        tally;
      if List.mem_assoc r.Sim.Shrink.check tally then begin
        Printf.printf "replay: reproducer still trips %s\n" r.Sim.Shrink.check;
        exit 0
      end
      else begin
        Printf.eprintf "replay: reproducer no longer trips %s\n"
          r.Sim.Shrink.check;
        exit 1
      end

(* --------------------------------------------------------------------- *)
(* Scenario fuzzing                                                       *)
(* --------------------------------------------------------------------- *)

let fuzz ~seed ~n ~cache_dir =
  let t0 = Unix.gettimeofday () in
  let report =
    Validate.Fuzz.run ~dir:cache_dir ~log:print_endline ~seed ~n ()
  in
  Printf.printf
    "fuzz: seed %d, %d scenarios, %d verdicts, %d violation(s), %.1f s\n" seed
    report.Validate.Fuzz.samples report.Validate.Fuzz.verdicts_checked
    (List.length report.Validate.Fuzz.violations)
    (Unix.gettimeofday () -. t0);
  let subdir = Filename.concat cache_dir (Printf.sprintf "fuzz-%d" seed) in
  (try Unix.mkdir cache_dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (try Unix.mkdir subdir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Sim.Snapshot.write_atomic_file
    (Filename.concat subdir "report.json")
    (Validate.Fuzz.report_to_json report);
  Printf.printf "fuzz: report written to %s\n"
    (Filename.concat subdir "report.json");
  if report.Validate.Fuzz.violations <> [] then begin
    List.iter
      (fun v ->
        Printf.eprintf "fuzz: violation in %s%s\n" v.Validate.Fuzz.summary
          (match v.Validate.Fuzz.repro_path with
          | Some p -> Printf.sprintf " (reproducer: %s)" p
          | None -> ""))
      report.Validate.Fuzz.violations;
    exit 4
  end

(* --------------------------------------------------------------------- *)
(* Main driver                                                            *)
(* --------------------------------------------------------------------- *)

let main keys all quick jobs pool sim_backend no_cache cache_dir check resume
    split_run deadline max_attempts selftest replay_file allow_failures fuzz_n
    fuzz_seed =
  match (selftest, replay_file, fuzz_n) with
  | Some dir, _, _ -> selftest_shrink dir
  | None, Some file, _ -> replay file
  | None, None, Some n -> fuzz ~seed:fuzz_seed ~n ~cache_dir
  | None, None, None when keys = [ "list" ] && not all -> list_keys ()
  | None, None, None -> (
      match select keys all with
      | Error msg ->
          prerr_endline ("repro: " ^ msg);
          exit 1
      | Ok experiments ->
          if split_run then Sim.Network.set_split_run true;
          let workers =
            if jobs <= 0 then Runner.Pool.default_workers () else jobs
          in
          let cache =
            if no_cache then None
            else Some (Runner.Cache.create ~dir:cache_dir ())
          in
          (* The journal lives beside the cache: jobs are recorded as they
             complete, so a killed run leaves exactly the breadcrumbs
             --resume needs.  A fresh (non-resume) run clears it. *)
          let journal =
            match cache with
            | None -> None
            | Some _ ->
                let path = Filename.concat cache_dir "journal" in
                if not resume then (try Sys.remove path with Sys_error _ -> ());
                Some path
          in
          let policy =
            {
              Runner.Supervise.default_policy with
              deadline;
              max_attempts;
            }
          in
          let t0 = Unix.gettimeofday () in
          let rows, stats =
            try
              Experiments.Registry.run_selection ~quick ~backend:pool
                ~sim_backend ~workers ?cache ~policy ?journal ~allow_failures
                experiments
            with Runner.Pool.Job_failed { key; reason } ->
              (* Quarantine / exhausted retries: a distinct exit code so
                 CI can tell "simulator results drifted" (2) from "a job
                 would not complete" (3). *)
              Printf.eprintf
                "repro: job %s failed permanently: %s\n\
                 repro: (use --allow-failures to downgrade to a skip)\n"
                key reason;
              exit 3
          in
          let bad = List.filter (fun r -> not r.Experiments.Report.ok) rows in
          Printf.printf "\n%d/%d checks hold the paper's shape\n"
            (List.length rows - List.length bad)
            (List.length rows);
          Printf.eprintf
            "runner: %d jobs, %d cache hits, %d executed, %d respawns, %d \
             retried, %d quarantined, %d resumed, %d workers, %.1f s\n"
            stats.Runner.Pool.jobs stats.Runner.Pool.cache_hits
            stats.Runner.Pool.executed stats.Runner.Pool.respawns
            stats.Runner.Pool.retried stats.Runner.Pool.quarantined
            stats.Runner.Pool.resumed workers
            (Unix.gettimeofday () -. t0);
          if check && bad <> [] then exit 2)

let cmd =
  let doc = "Parallel, cached reproduction of the paper's experiment suite" in
  Cmd.v
    (Cmd.info "repro" ~doc)
    Term.(
      const main $ keys_arg $ all_arg $ quick_arg $ jobs_arg $ pool_arg
      $ backend_arg $ no_cache_arg
      $ cache_dir_arg $ check_arg $ resume_arg $ split_run_arg $ deadline_arg
      $ max_attempts_arg $ selftest_shrink_arg $ replay_arg
      $ allow_failures_arg $ fuzz_arg $ fuzz_seed_arg)

let () = exit (Cmd.eval cmd)
