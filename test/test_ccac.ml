(* Tests for the bounded adversarial search (the CCAC substitute). *)

let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Generic search                                                      *)
(* ------------------------------------------------------------------ *)

(* Toy system: state is an int, choices add 0/1/2, score is the value.
   The optimum over h steps is 2h. *)
let toy =
  {
    Ccac.Search.initial = 0;
    choices = (fun _ -> [ 0; 1; 2 ]);
    step = (fun s c -> s + c);
    score = float_of_int;
  }

let test_dfs_exact () =
  let best = Ccac.Search.dfs_max toy ~horizon:5 in
  Alcotest.(check (float 1e-9)) "optimum" 10. best.Ccac.Search.score;
  Alcotest.(check (list int)) "trace" [ 2; 2; 2; 2; 2 ] best.Ccac.Search.trace

let test_beam_lower_bound () =
  let best = Ccac.Search.beam_max toy ~horizon:5 ~width:2 in
  Alcotest.(check (float 1e-9)) "beam finds optimum on monotone system" 10.
    best.Ccac.Search.score

let test_dfs_dead_end () =
  let sys =
    {
      Ccac.Search.initial = 0;
      choices = (fun s -> if s >= 2 then [] else [ 1 ]);
      step = (fun s c -> s + c);
      score = float_of_int;
    }
  in
  let best = Ccac.Search.dfs_max sys ~horizon:10 in
  Alcotest.(check (float 1e-9)) "stops at dead end" 2. best.Ccac.Search.score

let test_count_leaves () =
  Alcotest.(check int) "3^4" 81 (Ccac.Search.count_leaves toy ~horizon:4)

let prop_beam_never_beats_dfs =
  QCheck.Test.make ~name:"beam score <= dfs score" ~count:30
    QCheck.(pair (int_range 1 6) (int_range 1 8))
    (fun (h, w) ->
      let dfs = Ccac.Search.dfs_max toy ~horizon:h in
      let beam = Ccac.Search.beam_max toy ~horizon:h ~width:w in
      beam.Ccac.Search.score <= dfs.Ccac.Search.score +. 1e-9)

(* ------------------------------------------------------------------ *)
(* AIMD check                                                          *)
(* ------------------------------------------------------------------ *)

let test_aimd_bounded_10rtt () =
  let v = Ccac.Aimd_check.check ~bdp:10. ~buffer:10. ~horizon:10 () in
  Alcotest.(check bool) "exhaustive" true v.Ccac.Aimd_check.exhaustive;
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f bounded" v.Ccac.Aimd_check.max_ratio)
    true
    (Float.is_finite v.Ccac.Aimd_check.max_ratio
    && v.Ccac.Aimd_check.max_ratio < 25.)

let test_aimd_injected_loss_worse () =
  let clean = Ccac.Aimd_check.check ~bdp:10. ~buffer:10. ~horizon:10 () in
  let lossy =
    Ccac.Aimd_check.check ~bdp:10. ~buffer:10. ~horizon:10
      ~allow_injected_loss:true ()
  in
  Alcotest.(check bool) "injected loss strictly worse" true
    (lossy.Ccac.Aimd_check.max_ratio > clean.Ccac.Aimd_check.max_ratio)

let test_aimd_equal_start_fair () =
  let v =
    Ccac.Aimd_check.check ~bdp:10. ~buffer:10. ~horizon:10 ~w1_0:5. ~w2_0:5. ()
  in
  Alcotest.(check bool) "equal start keeps ratio moderate" true
    (v.Ccac.Aimd_check.max_ratio < 8.)

let test_aimd_overflow_forces_victim () =
  (* With joint demand above bdp+buffer the only moves are victim picks. *)
  let v = Ccac.Aimd_check.check ~bdp:2. ~buffer:1. ~horizon:3 ~w1_0:3. ~w2_0:3. () in
  Alcotest.(check bool) "trace contains a victim choice" true
    (List.exists
       (function
         | Ccac.Aimd_check.Victim_1 | Ccac.Aimd_check.Victim_2
         | Ccac.Aimd_check.Victim_both ->
             true
         | Ccac.Aimd_check.Inject_loss_1 | Ccac.Aimd_check.No_op -> false)
       v.Ccac.Aimd_check.trace)

let test_aimd_utilization_positive () =
  let v = Ccac.Aimd_check.check ~bdp:10. ~buffer:10. ~horizon:10 () in
  Alcotest.(check bool) "worst trace still delivers" true
    (v.Ccac.Aimd_check.utilization > 0.)

(* ------------------------------------------------------------------ *)
(* Alg1 check                                                          *)
(* ------------------------------------------------------------------ *)

let alg1_params =
  { Alg1.default_params with rm = 0.05; rmax = 0.1; d_jitter = 0.01; s = 2.;
    a = Sim.Units.mbps 0.5 }

let test_alg1_survives () =
  let v =
    Ccac.Alg1_check.check ~params:alg1_params ~link_rate:(Sim.Units.mbps 10.)
      ~curve:Ccac.Alg1_check.Exponential ~horizon:30 ~beam_width:128 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f stays near design s" v.Ccac.Alg1_check.max_ratio)
    true
    (v.Ccac.Alg1_check.max_ratio < 2.6);
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f stays high" v.Ccac.Alg1_check.min_utilization)
    true
    (v.Ccac.Alg1_check.min_utilization > 0.5)

let test_vegas_like_breaks () =
  let exp_v =
    Ccac.Alg1_check.check ~params:alg1_params ~link_rate:(Sim.Units.mbps 10.)
      ~curve:Ccac.Alg1_check.Exponential ~horizon:30 ~beam_width:128 ()
  in
  let veg =
    Ccac.Alg1_check.check ~params:alg1_params ~link_rate:(Sim.Units.mbps 10.)
      ~curve:Ccac.Alg1_check.Vegas_like ~horizon:30 ~beam_width:128 ()
  in
  Alcotest.(check bool) "vegas-like is worse" true
    (veg.Ccac.Alg1_check.max_ratio > exp_v.Ccac.Alg1_check.max_ratio)

let test_alg1_trace_length () =
  let v =
    Ccac.Alg1_check.check ~params:alg1_params ~link_rate:(Sim.Units.mbps 10.)
      ~curve:Ccac.Alg1_check.Exponential ~horizon:12 ~beam_width:32 ()
  in
  Alcotest.(check int) "trace matches horizon" 12
    (List.length v.Ccac.Alg1_check.ratio_trace)

(* ------------------------------------------------------------------ *)
(* Appendix C model                                                    *)
(* ------------------------------------------------------------------ *)

let model_rm = 0.05
let model_mss = 1500.
let model_rate = Sim.Units.mbps 8.

let test_model_vegas_ideal () =
  let vegas = Ccac.Model.vegas_model ~rm:model_rm ~mss:model_mss ~alpha:3. in
  let u, _ =
    Ccac.Model.max_unfairness ~cca:vegas ~link_rate:model_rate ~rm:model_rm
      ~big_d:0. ~horizon:30 ()
  in
  let util =
    Ccac.Model.min_utilization ~cca:vegas ~link_rate:model_rate ~rm:model_rm
      ~big_d:0. ~horizon:30 ()
  in
  Alcotest.(check bool) "fair on ideal path" true (u < 1.5);
  Alcotest.(check bool) "efficient on ideal path" true (util > 0.9)

let test_model_vegas_jitter_hurts () =
  let vegas = Ccac.Model.vegas_model ~rm:model_rm ~mss:model_mss ~alpha:3. in
  let u0, _ =
    Ccac.Model.max_unfairness ~cca:vegas ~link_rate:model_rate ~rm:model_rm
      ~big_d:0. ~horizon:40 ()
  in
  let u_jitter, _ =
    Ccac.Model.max_unfairness ~cca:vegas ~link_rate:model_rate ~rm:model_rm
      ~big_d:model_rm ~horizon:40 ()
  in
  let util_jitter =
    Ccac.Model.min_utilization ~cca:vegas ~link_rate:model_rate ~rm:model_rm
      ~big_d:model_rm ~horizon:40 ()
  in
  Alcotest.(check bool) "jitter raises unfairness" true (u_jitter > u0 +. 0.5);
  Alcotest.(check bool) "jitter breaks efficiency" true (util_jitter < 0.8)

let test_model_aimd_delay_blind () =
  (* The paper's sec. 5.4 point: loss-based AIMD is immune to pure delay
     jitter because loss is a physical event.  The adversary's best
     scores must be identical with and without jitter. *)
  let aimd = Ccac.Model.aimd_model ~rm:model_rm ~mss:model_mss in
  let bdp = model_rate *. model_rm in
  let run big_d =
    let u, _ =
      Ccac.Model.max_unfairness ~cca:aimd ~link_rate:model_rate ~rm:model_rm
        ~big_d ~buffer:bdp ~horizon:40 ()
    in
    let util =
      Ccac.Model.min_utilization ~cca:aimd ~link_rate:model_rate ~rm:model_rm
        ~big_d ~buffer:bdp ~horizon:40 ()
    in
    (u, util)
  in
  let u0, util0 = run 0. in
  let uj, utilj = run model_rm in
  Alcotest.(check (float 1e-9)) "unfairness unchanged" u0 uj;
  Alcotest.(check (float 1e-9)) "utilization unchanged" util0 utilj;
  Alcotest.(check bool) "bounded" true (Float.is_finite u0 && u0 < 5.)

let test_model_waste_requires_empty_queue () =
  (* With a backlogged queue the adversary may not waste: the choices list
     must shrink accordingly. *)
  let vegas = Ccac.Model.vegas_model ~rm:model_rm ~mss:model_mss ~alpha:3. in
  let sys =
    Ccac.Model.system ~cca:vegas ~link_rate:model_rate ~rm:model_rm ~big_d:0.01
      ~buffer:infinity ~warmup:0 ~score:Ccac.Model.unfairness
  in
  let initial_choices = List.length (sys.Ccac.Search.choices sys.Ccac.Search.initial) in
  (* Step forward without waste until a queue builds. *)
  let no_waste =
    { Ccac.Model.waste = false; split_bias = `Fifo; jitter_1 = 0.; jitter_2 = 0. }
  in
  let rec go st n = if n = 0 then st else go (sys.Ccac.Search.step st no_waste) (n - 1) in
  (* Vegas needs ~30 steps of +1 packet growth before its rate exceeds the
     link and a standing queue forms. *)
  let later = go sys.Ccac.Search.initial 45 in
  let later_choices = List.length (sys.Ccac.Search.choices later) in
  Alcotest.(check int) "empty queue: waste allowed (2x3x3x3)" 54 initial_choices;
  Alcotest.(check int) "backlogged: no waste (3x3x3)" 27 later_choices

let test_model_conservation () =
  (* served <= arrived always; queue never negative. *)
  let vegas = Ccac.Model.vegas_model ~rm:model_rm ~mss:model_mss ~alpha:3. in
  let sys =
    Ccac.Model.system ~cca:vegas ~link_rate:model_rate ~rm:model_rm ~big_d:0.02
      ~buffer:infinity ~warmup:0 ~score:Ccac.Model.unfairness
  in
  let choice =
    { Ccac.Model.waste = false; split_bias = `Favor_2; jitter_1 = 0.02; jitter_2 = 0. }
  in
  let rec go st n =
    if n > 0 then begin
      let open Ccac.Model in
      Alcotest.(check bool) "served1 <= arrived1" true (st.served1 <= st.arrived1 +. 1e-9);
      Alcotest.(check bool) "served2 <= arrived2" true (st.served2 <= st.arrived2 +. 1e-9);
      Alcotest.(check bool) "queue nonneg" true
        (st.arrived1 +. st.arrived2 -. st.served1 -. st.served2 >= -1e-9);
      go (sys.Ccac.Search.step st choice) (n - 1)
    end
  in
  go sys.Ccac.Search.initial 30

let test_model_cca_updates () =
  let vegas = Ccac.Model.vegas_model ~rm:0.05 ~mss:1500. ~alpha:3. in
  (* Loss halves. *)
  let w = 30000. in
  let after_loss = vegas.Ccac.Model.update w ~delay:0.05 ~acked:1500. ~lost:true in
  Alcotest.(check (float 1.)) "vegas halves on loss" 15000. after_loss;
  (* Below-target queueing grows by one packet. *)
  let grown = vegas.Ccac.Model.update w ~delay:0.0505 ~acked:1500. ~lost:false in
  Alcotest.(check (float 1.)) "vegas grows" 31500. grown;
  let aimd = Ccac.Model.aimd_model ~rm:0.05 ~mss:1500. in
  Alcotest.(check (float 1.)) "aimd halves on loss" 15000.
    (aimd.Ccac.Model.update w ~delay:0.5 ~acked:0. ~lost:true);
  Alcotest.(check (float 1.)) "aimd ignores delay" 31500.
    (aimd.Ccac.Model.update w ~delay:5.0 ~acked:0. ~lost:false)

let test_model_unfairness_metric () =
  let st =
    {
      Ccac.Model.cca1 = 0.;
      cca2 = 0.;
      arrived1 = 0.;
      arrived2 = 0.;
      served1 = 0.;
      served2 = 0.;
      counted1 = 100.;
      counted2 = 400.;
      served1_lag = 0.;
      served2_lag = 0.;
      steps = 10;
    }
  in
  Alcotest.(check (float 1e-9)) "ratio" 4. (Ccac.Model.unfairness st);
  let starved = { st with Ccac.Model.counted1 = 0. } in
  Alcotest.(check bool) "starved = infinity" true
    (Ccac.Model.unfairness starved = infinity);
  Alcotest.(check (float 1e-9)) "utilization" 0.5
    (Ccac.Model.utilization ~link_rate:200. ~rm:1. ~warmup:5 st)

let test_beam_width_one_is_greedy () =
  (* Width-1 beam on the monotone toy system follows the greedy path. *)
  let best = Ccac.Search.beam_max toy ~horizon:6 ~width:1 in
  Alcotest.(check (float 1e-9)) "greedy = optimal here" 12. best.Ccac.Search.score

let () =
  Alcotest.run "ccac"
    [
      ( "search",
        [
          Alcotest.test_case "dfs exact" `Quick test_dfs_exact;
          Alcotest.test_case "beam lower bound" `Quick test_beam_lower_bound;
          Alcotest.test_case "dead end" `Quick test_dfs_dead_end;
          Alcotest.test_case "count leaves" `Quick test_count_leaves;
          qt prop_beam_never_beats_dfs;
        ] );
      ( "aimd",
        [
          Alcotest.test_case "bounded at 10 rtts" `Quick test_aimd_bounded_10rtt;
          Alcotest.test_case "injected loss worse" `Quick test_aimd_injected_loss_worse;
          Alcotest.test_case "equal start fair" `Quick test_aimd_equal_start_fair;
          Alcotest.test_case "overflow forces victim" `Quick test_aimd_overflow_forces_victim;
          Alcotest.test_case "utilization positive" `Quick test_aimd_utilization_positive;
        ] );
      ( "alg1",
        [
          Alcotest.test_case "alg1 survives" `Quick test_alg1_survives;
          Alcotest.test_case "vegas-like breaks" `Quick test_vegas_like_breaks;
          Alcotest.test_case "trace length" `Quick test_alg1_trace_length;
        ] );
      ( "appendix-c model",
        [
          Alcotest.test_case "vegas ideal" `Quick test_model_vegas_ideal;
          Alcotest.test_case "vegas jitter hurts" `Quick test_model_vegas_jitter_hurts;
          Alcotest.test_case "aimd delay-blind" `Quick test_model_aimd_delay_blind;
          Alcotest.test_case "waste needs empty queue" `Quick
            test_model_waste_requires_empty_queue;
          Alcotest.test_case "conservation" `Quick test_model_conservation;
          Alcotest.test_case "cca updates" `Quick test_model_cca_updates;
          Alcotest.test_case "metrics" `Quick test_model_unfairness_metric;
          Alcotest.test_case "beam width one" `Quick test_beam_width_one_is_greedy;
        ] );
    ]
