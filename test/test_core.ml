(* Tests for the analysis layer: convergence measurement, rate-delay
   curves, fairness metrics, the pigeonhole search, the Eq. 5 emulation
   machinery, the ambiguity/figure-of-merit math, and (as a slow test)
   the full Theorem 1 construction. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Convergence                                                         *)
(* ------------------------------------------------------------------ *)

let measure_vegas ?(rate = Sim.Units.mbps 12.) ?(rm = 0.02) () =
  Core.Convergence.measure ~make_cca:(fun () -> Vegas.make ()) ~rate ~rm
    ~duration:10. ()

let test_convergence_vegas () =
  let m = measure_vegas () in
  Alcotest.(check bool) "converged" true m.Core.Convergence.converged;
  Alcotest.(check bool) "band above floor" true (m.Core.Convergence.d_min >= 0.02);
  Alcotest.(check bool) "efficient" true (m.Core.Convergence.efficiency > 0.9);
  Alcotest.(check bool) "t_converge sensible" true
    (m.Core.Convergence.t_converge >= 0. && m.Core.Convergence.t_converge < 6.)

let test_convergence_band_contains_tail () =
  let m = measure_vegas () in
  let tail =
    Sim.Series.window_values m.Core.Convergence.rtt ~t0:6. ~t1:10.
  in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "sample in band" true
        (v >= m.Core.Convergence.d_min -. 1e-9
        && v <= m.Core.Convergence.d_max +. 1e-9))
    tail

let test_convergence_delta_definition () =
  let m = measure_vegas () in
  check_float "delta = d_max - d_min"
    (m.Core.Convergence.d_max -. m.Core.Convergence.d_min)
    m.Core.Convergence.delta

let test_convergence_nonconvergent_flagged () =
  (* Reno on a buffered link saws forever: the band is the whole sawtooth,
     but convergence into it should still be detected as entering late or
     having a wide band; what must NOT happen is a crash.  We assert only
     structural sanity here. *)
  let rate = Sim.Units.mbps 12. in
  let m =
    Core.Convergence.measure ~make_cca:(fun () -> Reno.make ()) ~rate ~rm:0.02
      ~duration:10. ()
  in
  Alcotest.(check bool) "delta is a sawtooth width" true
    (m.Core.Convergence.delta > 0.001)

let test_is_delay_convergent () =
  let ok, d_max_sup, delta_sup =
    Core.Convergence.is_delay_convergent
      ~make_cca:(fun () -> Fast_tcp.make ())
      ~rates:[ Sim.Units.mbps 8.; Sim.Units.mbps 32. ]
      ~rm:0.02 ~duration:10. ()
  in
  Alcotest.(check bool) "fast is delay-convergent" true ok;
  Alcotest.(check bool) "sup d_max finite" true (Float.is_finite d_max_sup);
  Alcotest.(check bool) "delta small" true (delta_sup < 0.01)

(* ------------------------------------------------------------------ *)
(* Rate-delay curves                                                   *)
(* ------------------------------------------------------------------ *)

let test_curves_at_spot () =
  let rm = 0.1 and rate = Sim.Units.mbps 12. in
  let v = Core.Rate_delay.vegas Vegas.default_params in
  let b = v.Core.Rate_delay.band ~rate ~rm in
  (* alpha..beta packets at 1 ms/packet plus 1 ms transmission. *)
  check_float_eps 1e-6 "vegas d_min" (rm +. 0.003) b.Core.Rate_delay.d_min;
  check_float_eps 1e-6 "vegas d_max" (rm +. 0.005) b.Core.Rate_delay.d_max;
  let bp = Core.Rate_delay.bbr_pacing.Core.Rate_delay.band ~rate ~rm in
  check_float_eps 1e-6 "bbr pacing width" ((0.25 *. rm) )
    (Core.Rate_delay.width bp);
  let pv = Core.Rate_delay.pcc_vivace.Core.Rate_delay.band ~rate ~rm in
  check_float_eps 1e-6 "vivace width" (rm /. 20.) (Core.Rate_delay.width pv)

let test_curve_delta_max () =
  let rm = 0.1 in
  check_float "vegas delta_max = 0" 0.
    ((Core.Rate_delay.vegas Vegas.default_params).Core.Rate_delay.delta_max ~rm);
  check_float "bbr pacing delta_max = rm/4" (rm /. 4.)
    (Core.Rate_delay.bbr_pacing.Core.Rate_delay.delta_max ~rm);
  check_float "vivace delta_max = rm/20" (rm /. 20.)
    (Core.Rate_delay.pcc_vivace.Core.Rate_delay.delta_max ~rm)

let prop_curves_shrink_with_rate =
  QCheck.Test.make ~name:"rate-delay bands decrease with link rate" ~count:100
    QCheck.(pair (float_range 1e5 1e7) (float_range 1.5 20.))
    (fun (rate, mult) ->
      let rm = 0.05 in
      List.for_all
        (fun (c : Core.Rate_delay.curve) ->
          let b1 = c.band ~rate ~rm and b2 = c.band ~rate:(rate *. mult) ~rm in
          b2.Core.Rate_delay.d_max <= b1.Core.Rate_delay.d_max +. 1e-12)
        [
          Core.Rate_delay.vegas Vegas.default_params;
          Core.Rate_delay.fast Fast_tcp.default_params;
          Core.Rate_delay.copa Copa.default_params;
          Core.Rate_delay.bbr_cwnd Bbr.default_params;
        ])

let test_alg1_curve_inversion () =
  let p = Alg1.default_params in
  let c = Core.Rate_delay.alg1 p in
  (* At rate mu(d), the band should bracket d. *)
  let d = p.Alg1.rm +. 0.03 in
  let rate = Alg1.target_rate p ~d in
  let b = c.Core.Rate_delay.band ~rate ~rm:p.Alg1.rm in
  Alcotest.(check bool) "band brackets d" true
    (b.Core.Rate_delay.d_min <= d +. 0.01 && b.Core.Rate_delay.d_max >= d -. 0.001)

let test_sweep_lengths () =
  let rates = [ 1e5; 1e6; 1e7 ] in
  let c = Core.Rate_delay.vegas Vegas.default_params in
  Alcotest.(check int) "sweep one point per rate" 3
    (List.length (Core.Rate_delay.sweep c ~rates ~rm:0.05))

let test_convergence_diverging_flagged () =
  (* A pathological CCA that grows its window forever on an unbounded
     queue never settles into a band; the detector must say so. *)
  let make_runaway () =
    let cwnd = ref 6000. in
    {
      Cca.name = "runaway";
      on_ack = (fun (a : Cca.ack_info) -> cwnd := !cwnd +. float_of_int a.acked_bytes);
      on_loss = (fun _ -> ());
      on_send = (fun _ -> ());
      on_timer = (fun _ -> ());
      next_timer = (fun () -> None);
      cwnd = (fun () -> !cwnd);
      pacing_rate = (fun () -> None);
      inspect = (fun () -> []);
    }
  in
  let m =
    Core.Convergence.measure ~make_cca:make_runaway ~rate:(Sim.Units.mbps 12.)
      ~rm:0.02 ~duration:10. ()
  in
  Alcotest.(check bool) "not converged" false m.Core.Convergence.converged

(* ------------------------------------------------------------------ *)
(* Fairness                                                            *)
(* ------------------------------------------------------------------ *)

let test_fairness_report () =
  let rate = Sim.Units.mbps 12. in
  let buffer = Sim.Units.bdp_bytes ~rate ~rtt:0.02 in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm:0.02
         ~duration:20.
         [ Sim.Network.flow (Reno.make ()); Sim.Network.flow (Reno.make ()) ])
  in
  let r = Core.Fairness.of_network net () in
  Alcotest.(check bool) "ratio finite" true (Float.is_finite r.Core.Fairness.ratio);
  Alcotest.(check bool) "s-fair at s=3" true (Core.Fairness.is_s_fair r ~s:3.);
  Alcotest.(check bool) "not s-fair at s=1" false (Core.Fairness.is_s_fair r ~s:1.);
  Alcotest.(check bool) "jain high" true (r.Core.Fairness.jain > 0.8);
  Alcotest.(check bool) "utilization high" true (r.Core.Fairness.utilization > 0.8)

let test_f_efficiency () =
  let f =
    Core.Fairness.f_efficiency ~make_cca:(fun () -> Fast_tcp.make ())
      ~rate:(Sim.Units.mbps 12.) ~rm:0.02 ~duration:10. ()
  in
  Alcotest.(check bool) (Printf.sprintf "fast f=%.2f > 0.8" f) true (f > 0.8);
  let f_silly =
    Core.Fairness.f_efficiency
      ~make_cca:(fun () -> Const_cwnd.make ~cwnd_packets:2. ())
      ~rate:(Sim.Units.mbps 100.) ~rm:0.05 ~duration:10. ()
  in
  Alcotest.(check bool) "const cwnd is not f-efficient on fast links" true
    (f_silly < 0.05)

let test_throughput_definition () =
  let rate = Sim.Units.mbps 12. in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.02 ~duration:10.
         [ Sim.Network.flow (Fast_tcp.make ()) ])
  in
  let x = Core.Fairness.throughput_definition (Sim.Network.flows net).(0) ~t:10. in
  Alcotest.(check bool) "bytes(0,t)/t near link rate" true (x > 0.8 *. rate);
  check_float "zero at t=0" 0.
    (Core.Fairness.throughput_definition (Sim.Network.flows net).(0) ~t:0.)

let test_ratio_trajectory () =
  let rate = Sim.Units.mbps 12. in
  let buffer = Sim.Units.bdp_bytes ~rate ~rtt:0.02 in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm:0.02
         ~duration:20.
         [ Sim.Network.flow (Reno.make ()); Sim.Network.flow (Reno.make ()) ])
  in
  let traj = Core.Fairness.ratio_trajectory net ~dt:0.5 in
  Alcotest.(check bool) "has samples" true (Sim.Series.length traj > 10);
  Array.iter
    (fun v -> Alcotest.(check bool) "ratio >= 1" true (v >= 1.))
    (Sim.Series.values traj);
  (* Two identical Renos settle under s = 3 at some finite time. *)
  match Core.Fairness.s_fair_from net ~dt:0.5 ~s:3. with
  | Some t -> Alcotest.(check bool) "finite entry time" true (t < 20.)
  | None -> Alcotest.fail "never became 3-fair"

let test_s_fair_from_never () =
  (* One silent flow: the ratio has no samples with both positive, or the
     starved flow keeps it above any s; either way there is no entry time
     for a tiny s. *)
  let rate = Sim.Units.mbps 12. in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.02 ~duration:5.
         [
           Sim.Network.flow (Fast_tcp.make ());
           Sim.Network.flow (Const_cwnd.make ~cwnd_packets:2. ());
         ])
  in
  match Core.Fairness.s_fair_from net ~dt:0.5 ~s:1.05 with
  | None -> ()
  | Some t -> Alcotest.fail (Printf.sprintf "claimed 1.05-fair from %.1f" t)

(* ------------------------------------------------------------------ *)
(* Pigeonhole                                                          *)
(* ------------------------------------------------------------------ *)

let fake_measurement ~rate ~d_max =
  {
    Core.Convergence.cca_name = "fake";
    rate;
    rm = 0.05;
    duration = 1.;
    converged = true;
    t_converge = 0.1;
    d_min = d_max -. 0.001;
    d_max;
    delta = 0.001;
    throughput = rate;
    efficiency = 1.;
    rtt = Sim.Series.create ();
    rate_trace = Sim.Series.create ();
  }

let test_pigeonhole_finds_close_pair () =
  (* d_max(C) = rm + 1/C: a decreasing curve; geometric probes must find a
     pair within epsilon. *)
  let measure ~rate = fake_measurement ~rate ~d_max:(0.05 +. (1000. /. rate)) in
  match
    Core.Pigeonhole.find_pair ~measure ~lambda0:1e5 ~factor:4. ~epsilon:5e-4 ()
  with
  | Error e -> Alcotest.fail e
  | Ok pair ->
      Alcotest.(check bool) "gap below epsilon" true
        (pair.Core.Pigeonhole.gap < 5e-4);
      Alcotest.(check bool) "rates spaced by factor" true
        (pair.Core.Pigeonhole.c2 >= 4. *. pair.Core.Pigeonhole.c1)

let test_pigeonhole_rejects_nonconvergent () =
  let measure ~rate =
    { (fake_measurement ~rate ~d_max:0.06) with Core.Convergence.converged = false }
  in
  match Core.Pigeonhole.find_pair ~measure ~lambda0:1e5 ~factor:4. ~epsilon:1e-3 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should fail on non-convergent CCA"

let test_pigeonhole_budget () =
  (* A curve that never repeats within the probe budget: linear spacing of
     d_max values all more than epsilon apart. *)
  let count = ref 0. in
  let measure ~rate =
    count := !count +. 1.;
    fake_measurement ~rate ~d_max:(1.0 -. (0.01 *. !count))
  in
  match
    Core.Pigeonhole.find_pair ~measure ~lambda0:1e5 ~factor:2. ~epsilon:1e-6
      ~max_probes:5 ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "budget should be exhausted"

let test_pigeonhole_validates_args () =
  let measure ~rate = fake_measurement ~rate ~d_max:0.06 in
  Alcotest.(check bool) "factor <= 1 rejected" true
    (try
       ignore (Core.Pigeonhole.find_pair ~measure ~lambda0:1e5 ~factor:1. ~epsilon:1e-3 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Emulation (Eq. 5)                                                   *)
(* ------------------------------------------------------------------ *)

let test_d_star_weighted_average () =
  (* Equal rates: plain average minus the constant. *)
  check_float "symmetric" (0.055 -. 0.003)
    (Core.Emulation.d_star_at ~c1:1e6 ~c2:1e6 ~d1:0.05 ~d2:0.06 ~delta_max:0.002
       ~epsilon:0.001);
  (* Heavier flow dominates. *)
  let ds =
    Core.Emulation.d_star_at ~c1:1e6 ~c2:9e6 ~d1:0.05 ~d2:0.06 ~delta_max:0.
      ~epsilon:0.
  in
  check_float_eps 1e-12 "weighted" 0.059 ds

let mk_series pts =
  let s = Sim.Series.create () in
  List.iter (fun (t, v) -> Sim.Series.add s ~time:t v) pts;
  s

let test_emulation_verify_clean () =
  (* Two trajectories within delta+eps of each other: bounds must hold. *)
  let d1 = mk_series [ (0., 0.050); (1., 0.0505); (2., 0.050) ] in
  let d2 = mk_series [ (0., 0.0502); (1., 0.0508); (2., 0.0503) ] in
  let chk =
    Core.Emulation.verify ~c1:1e6 ~c2:4e6 ~d1 ~d2 ~delta_max:0.0008 ~epsilon:0.0002
      ~t0:0. ~t1:2. ~dt:0.1
  in
  Alcotest.(check int) "no violations" 0 chk.Core.Emulation.violations;
  Alcotest.(check bool) "eta nonnegative" true (chk.Core.Emulation.eta_min >= 0.);
  Alcotest.(check bool) "eta below D" true
    (chk.Core.Emulation.eta_max <= 2. *. (0.0008 +. 0.0002))

let test_emulation_verify_catches_violation () =
  (* Trajectories much further apart than delta_max+epsilon claim. *)
  let d1 = mk_series [ (0., 0.050); (2., 0.050) ] in
  let d2 = mk_series [ (0., 0.080); (2., 0.080) ] in
  let chk =
    Core.Emulation.verify ~c1:1e6 ~c2:1e6 ~d1 ~d2 ~delta_max:0.001 ~epsilon:0.001
      ~t0:0. ~t1:2. ~dt:0.5
  in
  Alcotest.(check bool) "violations detected" true (chk.Core.Emulation.violations > 0)

let test_controller_targets_rtt () =
  let ctrl =
    Core.Emulation.make_controller ~target:(fun _ -> 0.08) ~time_shift:0. ()
  in
  match ctrl.Core.Emulation.policy with
  | Sim.Jitter.Controller f ->
      (* Packet sent at 1.0, arrives back at 1.06: eta should be 0.02 so
         the total is 0.08. *)
      check_float "eta tops up to target" 0.02
        (f { Sim.Jitter.flow = 0; arrival = 1.06; sent = 1.0 });
      Alcotest.(check int) "request logged" 1
        (Sim.Series.length ctrl.Core.Emulation.requested)
  | _ -> Alcotest.fail "controller policy expected"

let test_initial_queue_bytes () =
  let b =
    Core.Emulation.initial_queue_bytes ~c1:1e6 ~c2:1e6 ~d1_0:0.06 ~d2_0:0.06
      ~delta_max:0.002 ~epsilon:0.001 ~rm:0.05
  in
  (* d*(0) = 0.06 - 0.003 = 0.057; backlog = (0.057-0.05) * 2e6 = 14000. *)
  Alcotest.(check int) "backlog" 14000 b;
  Alcotest.(check int) "clamped at zero" 0
    (Core.Emulation.initial_queue_bytes ~c1:1e6 ~c2:1e6 ~d1_0:0.05 ~d2_0:0.05
       ~delta_max:0.01 ~epsilon:0.01 ~rm:0.05)

let prop_d_star_below_min =
  QCheck.Test.make
    ~name:"d* sits below min(d1,d2) when they are within delta+eps" ~count:200
    QCheck.(quad (float_range 1e5 1e8) (float_range 1e5 1e8)
              (float_range 0.01 0.2) (float_range 0. 0.001))
    (fun (c1, c2, d1, gap) ->
      let delta_max = 0.0015 and epsilon = 0.0005 in
      let d2 = d1 +. gap in
      (* gap <= delta_max + epsilon by construction (0.001 < 0.002) *)
      let ds = Core.Emulation.d_star_at ~c1 ~c2 ~d1 ~d2 ~delta_max ~epsilon in
      ds <= Float.min d1 d2 +. 1e-12
      && Float.max d1 d2 <= ds +. (2. *. (delta_max +. epsilon)) +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Ambiguity / figure of merit                                         *)
(* ------------------------------------------------------------------ *)

let test_d_star_constant () =
  check_float "delta + eps" 0.003
    (Core.Emulation.d_star_constant ~delta_max:0.002 ~epsilon:0.001)

let test_starvation_score () =
  let r =
    {
      Core.Fairness.throughputs = [| 1.; 5. |];
      ratio = 5.;
      jain = 0.7;
      utilization = 0.9;
    }
  in
  check_float "score = ratio" 5. (Core.Fairness.starvation_score r)

let test_vegas_mu_plus () =
  (* alpha = 6000 B, D = 10 ms, s = 2: mu+ = alpha/D * (1 - 1/2). *)
  check_float_eps 1e-9 "eq. 1 precursor" 300_000.
    (Core.Ambiguity.vegas_mu_plus ~alpha_bytes:6000. ~jitter:0.01 ~s:2.)

let test_blocks () =
  let lo, hi = Core.Ambiguity.blocks ~d:0.055 ~jitter:0.01 in
  Alcotest.(check int) "low block" 4 lo;
  Alcotest.(check int) "high block" 5 hi;
  let lo0, hi0 = Core.Ambiguity.blocks ~d:0.005 ~jitter:0.01 in
  Alcotest.(check int) "clamps at zero" 0 lo0;
  Alcotest.(check int) "same block" 0 hi0

let test_distinguishable () =
  Alcotest.(check bool) "far apart" true
    (Core.Ambiguity.distinguishable ~d1:0.05 ~d2:0.08 ~jitter:0.01);
  Alcotest.(check bool) "within jitter" false
    (Core.Ambiguity.distinguishable ~d1:0.05 ~d2:0.055 ~jitter:0.01)

let test_merit_paper_examples () =
  (* D = 10 ms, s = 2, Rmax = 100 ms -> ~2^10; s = 4 -> ~2^20 (paper 6.3,
     with Rm = 0 as in the paper's O() form). *)
  check_float_eps 1e-6 "s=2" (2. ** 9.)
    (Core.Ambiguity.exponential_range ~rm:0. ~rmax:0.1 ~jitter:0.01 ~s:2.);
  check_float_eps 1e-6 "s=4" (4. ** 9.)
    (Core.Ambiguity.exponential_range ~rm:0. ~rmax:0.1 ~jitter:0.01 ~s:4.);
  check_float_eps 1e-6 "vegas eq.1" 5.
    (Core.Ambiguity.vegas_range ~rm:0. ~rmax:0.1 ~jitter:0.01 ~s:2.)

let test_merit_table_structure () =
  let rows =
    Core.Ambiguity.merit_table ~rm:0. ~rmax:0.1 ~jitters:[ 0.01; 0.02 ]
      ~ss:[ 2.; 4. ]
  in
  Alcotest.(check int) "grid size" 4 (List.length rows);
  List.iter
    (fun (r : Core.Ambiguity.merit_row) ->
      Alcotest.(check bool) "exponential beats vegas" true (r.exponential > r.vegas))
    rows

let prop_exponential_range_monotone_in_s =
  QCheck.Test.make ~name:"exponential range grows with s" ~count:100
    QCheck.(pair (float_range 1.1 3.) (float_range 1.1 3.))
    (fun (s1, s2) ->
      let lo = Float.min s1 s2 and hi = Float.max s1 s2 in
      Core.Ambiguity.exponential_range ~rm:0. ~rmax:0.1 ~jitter:0.01 ~s:hi
      >= Core.Ambiguity.exponential_range ~rm:0. ~rmax:0.1 ~jitter:0.01 ~s:lo -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Theorem machinery helpers                                           *)
(* ------------------------------------------------------------------ *)

let test_by_send_time () =
  let acks = mk_series [ (1.0, 0.1); (1.05, 0.1); (1.1, 0.12) ] in
  let by_send = Core.Theorem1.by_send_time acks in
  Alcotest.(check int) "three samples" 3 (Sim.Series.length by_send);
  let times = Sim.Series.times by_send in
  check_float "send = ack - rtt" 0.9 times.(0);
  check_float_eps 1e-9 "third" 0.98 times.(2)

let test_by_send_time_drops_nonmonotone () =
  (* Second sample's send time goes backwards (big RTT jump). *)
  let acks = mk_series [ (1.0, 0.05); (1.01, 0.2) ] in
  let by_send = Core.Theorem1.by_send_time acks in
  Alcotest.(check int) "dropped" 1 (Sim.Series.length by_send)

let test_target_of_series_extension () =
  let s = mk_series [ (1., 5.); (2., 6.) ] in
  let f = Core.Theorem1.target_of_series s in
  check_float "before start" 5. (f 0.);
  check_float "mid" 5. (f 1.5);
  check_float "after end" 6. (f 99.)

(* ------------------------------------------------------------------ *)
(* Theorems end-to-end (small versions)                                *)
(* ------------------------------------------------------------------ *)

let test_theorem1_full () =
  match
    Core.Theorem1.run
      ~make_cca:(fun () -> Fast_tcp.make ())
      ~rm:0.01 ~s:3. ~f:0.8
      ~lambda0:(Sim.Units.mbps 4.)
      ~epsilon:0.002 ~phase2_duration:4. ~single_duration:10. ()
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      Alcotest.(check bool) "starved" true o.Core.Theorem1.starved;
      Alcotest.(check int) "no runtime clamps" 0 o.Core.Theorem1.runtime_violations;
      Alcotest.(check int) "no analytic violations" 0
        o.Core.Theorem1.analytic.Core.Emulation.violations;
      Alcotest.(check bool) "D > 2 delta_max" true
        (o.Core.Theorem1.big_d > 2. *. o.Core.Theorem1.delta_max);
      Alcotest.(check bool)
        (Printf.sprintf "emulation exact to %.4f ms"
           (Sim.Units.to_ms o.Core.Theorem1.max_emulation_error))
        true
        (o.Core.Theorem1.max_emulation_error < 0.001)

let test_theorem2_full () =
  let o =
    Core.Theorem2.run
      ~make_cca:(fun () -> Vegas.make ())
      ~rate:(Sim.Units.mbps 4.) ~rm:0.02 ~multipliers:[ 10.; 100. ] ~duration:15. ()
  in
  let utils = List.map (fun p -> p.Core.Theorem2.utilization) o.Core.Theorem2.points in
  (match utils with
  | [ u10; u100 ] ->
      Alcotest.(check bool) "10x -> ~0.1" true (u10 < 0.15);
      Alcotest.(check bool) "100x -> ~0.01" true (u100 < 0.02)
  | _ -> Alcotest.fail "two points expected");
  List.iter
    (fun p ->
      Alcotest.(check int) "no settled violations" 0 p.Core.Theorem2.settled_violations)
    o.Core.Theorem2.points

let test_theorem3_full () =
  (* Gentle AIMD constants keep Alg1's oscillation band narrow so each
     D-subtraction step shows up cleanly in the throughputs. *)
  let params =
    { Alg1.default_params with rm = 0.02; rmax = 0.06; d_jitter = 0.01;
      a = Sim.Units.mbps 0.02; b = 0.95 }
  in
  let o =
    Core.Theorem3.run
      ~make_cca:(fun () -> Alg1.make ~params ())
      ~lambda:(Sim.Units.mbps 1.) ~rm:0.02 ~big_d:0.01 ~s:1.6 ~duration:20. ()
  in
  Alcotest.(check bool) "found witness pair" true (o.Core.Theorem3.witness <> None);
  (* Delays must shrink along the iteration. *)
  let delays = List.map (fun s -> s.Core.Theorem3.max_delay) o.Core.Theorem3.steps in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "delays shrink" true (decreasing delays)

let () =
  Alcotest.run "core"
    [
      ( "convergence",
        [
          Alcotest.test_case "vegas" `Quick test_convergence_vegas;
          Alcotest.test_case "band contains tail" `Quick test_convergence_band_contains_tail;
          Alcotest.test_case "delta definition" `Quick test_convergence_delta_definition;
          Alcotest.test_case "reno sawtooth" `Quick test_convergence_nonconvergent_flagged;
          Alcotest.test_case "runaway not converged" `Quick
            test_convergence_diverging_flagged;
          Alcotest.test_case "is_delay_convergent" `Quick test_is_delay_convergent;
        ] );
      ( "rate_delay",
        [
          Alcotest.test_case "spot values" `Quick test_curves_at_spot;
          Alcotest.test_case "delta_max" `Quick test_curve_delta_max;
          Alcotest.test_case "alg1 inversion" `Quick test_alg1_curve_inversion;
          Alcotest.test_case "sweep lengths" `Quick test_sweep_lengths;
          qt prop_curves_shrink_with_rate;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "report" `Quick test_fairness_report;
          Alcotest.test_case "f-efficiency" `Quick test_f_efficiency;
          Alcotest.test_case "throughput definition" `Quick test_throughput_definition;
          Alcotest.test_case "ratio trajectory" `Quick test_ratio_trajectory;
          Alcotest.test_case "s_fair_from never" `Quick test_s_fair_from_never;
        ] );
      ( "pigeonhole",
        [
          Alcotest.test_case "finds pair" `Quick test_pigeonhole_finds_close_pair;
          Alcotest.test_case "rejects non-convergent" `Quick
            test_pigeonhole_rejects_nonconvergent;
          Alcotest.test_case "budget" `Quick test_pigeonhole_budget;
          Alcotest.test_case "validates args" `Quick test_pigeonhole_validates_args;
        ] );
      ( "emulation",
        [
          Alcotest.test_case "d* weighted average" `Quick test_d_star_weighted_average;
          Alcotest.test_case "verify clean" `Quick test_emulation_verify_clean;
          Alcotest.test_case "verify catches violation" `Quick
            test_emulation_verify_catches_violation;
          Alcotest.test_case "controller" `Quick test_controller_targets_rtt;
          Alcotest.test_case "initial queue" `Quick test_initial_queue_bytes;
          qt prop_d_star_below_min;
        ] );
      ( "ambiguity",
        [
          Alcotest.test_case "d_star constant" `Quick test_d_star_constant;
          Alcotest.test_case "starvation score" `Quick test_starvation_score;
          Alcotest.test_case "vegas mu+" `Quick test_vegas_mu_plus;
          Alcotest.test_case "blocks" `Quick test_blocks;
          Alcotest.test_case "distinguishable" `Quick test_distinguishable;
          Alcotest.test_case "paper examples" `Quick test_merit_paper_examples;
          Alcotest.test_case "table structure" `Quick test_merit_table_structure;
          qt prop_exponential_range_monotone_in_s;
        ] );
      ( "trajectory helpers",
        [
          Alcotest.test_case "by_send_time" `Quick test_by_send_time;
          Alcotest.test_case "drops non-monotone" `Quick test_by_send_time_drops_nonmonotone;
          Alcotest.test_case "target extension" `Quick test_target_of_series_extension;
        ] );
      ( "theorems",
        [
          Alcotest.test_case "theorem 1 end-to-end" `Slow test_theorem1_full;
          Alcotest.test_case "theorem 2 end-to-end" `Slow test_theorem2_full;
          Alcotest.test_case "theorem 3 end-to-end" `Slow test_theorem3_full;
        ] );
    ]
