(* Checkpoint/restore fidelity, snapshot persistence, checkpointed-run
   divergence location, and the failing-scenario shrinker.

   The load-bearing property throughout: running a scenario 0→T is
   byte-identical (state hash, flow statistics) to running 0→T/2,
   serializing, restoring into a fresh heap, and running T/2→T. *)

let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Scenario builders                                                   *)
(* ------------------------------------------------------------------ *)

(* Every run needs a fresh config: instantiated CCA closures carry
   mutable state, so sharing one config across two runs would let the
   first dirty the second. *)

let mk_cca = function
  | 0 -> Reno.make ()
  | 1 -> Cubic.make ()
  | 2 -> Bbr.make ()
  | 3 -> Vegas.make ()
  | _ -> Copa.make ()

let base_flow ?jitter ?jitter_bound ?ack_policy ?loss_rate cca_id =
  Sim.Network.flow ?jitter ?jitter_bound ?ack_policy ?loss_rate (mk_cca cca_id)

(* A matrix of deliberately awkward scenarios: CCAs with internal state
   machines, jitter RNG streams, delayed/aggregated ACK timers, random
   loss, AQM marking state, DRR per-flow queues, and fault chains —
   everything the snapshot must carry. *)
let scenarios : (string * (unit -> Sim.Network.config)) list =
  let rate = Sim.Units.mbps 12. in
  let buffer = 48 * 1500 in
  [
    ( "reno-plain",
      fun () ->
        Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm:0.04
          ~seed:1 ~duration:2.0
          [ base_flow 0 ] );
    ( "cubic-vs-bbr-jitter",
      fun () ->
        Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm:0.04
          ~seed:2 ~duration:2.0
          [
            base_flow
              ~jitter:(Sim.Jitter.Uniform { lo = 0.; hi = 0.01 })
              ~jitter_bound:0.02 1;
            base_flow 2;
          ] );
    ( "vegas-delack-loss",
      fun () ->
        Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm:0.04
          ~seed:3 ~duration:2.0
          [
            base_flow
              ~ack_policy:(Sim.Network.Delayed { count = 2; timeout = 0.04 })
              ~loss_rate:0.01 3;
            base_flow ~ack_policy:(Sim.Network.Aggregate { period = 0.01 }) 4;
          ] );
    ( "reno-blackout-monitored",
      fun () ->
        Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm:0.04
          ~seed:4 ~monitor_period:0.05 ~duration:2.0
          ~faults:
            (Sim.Fault.plan
               [
                 (* The snapshot point (t = 1.0) lands inside this
                    blackout: pending RTO timers and a dark link are
                    exactly the state a checkpoint must not lose. *)
                 Sim.Fault.Link_blackout { t0 = 0.8; t1 = 1.3 };
                 Sim.Fault.Rate_step { at = 1.6; rate = rate /. 2. };
               ])
          [ base_flow 0; base_flow 2 ] );
    ( "bursty-ackhole-drr",
      fun () ->
        Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm:0.04
          ~seed:5 ~discipline:(Sim.Link.Drr { quantum = 1500 }) ~duration:2.0
          ~faults:
            (Sim.Fault.plan
               [
                 Sim.Fault.Bursty_loss
                   { flow = 0; t0 = 0.3; t1 = 1.7; p_enter = 0.05;
                     p_exit = 0.3; loss_good = 0.; loss_bad = 0.4 };
                 Sim.Fault.Ack_blackhole { flow = 1; t0 = 0.9; t1 = 1.1 };
               ])
          [ base_flow 1; base_flow 0 ] );
    ( "codel-ecn",
      fun () ->
        Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer
          ~aqm:(Sim.Aqm.codel ()) ~rm:0.04 ~seed:6 ~duration:2.0
          [ base_flow 0; base_flow 1 ] );
  ]

(* Observable outcome of a finished run, compared bit-for-bit. *)
let outcome net =
  let flows = Sim.Network.flows net in
  let t0 = Sim.Network.start_time net and t1 = Sim.Network.horizon net in
  let per_flow =
    Array.to_list flows
    |> List.concat_map (fun f ->
           [
             string_of_int (Sim.Flow.delivered_bytes f);
             string_of_int (Sim.Flow.lost_bytes f);
             Int64.to_string
               (Int64.bits_of_float (Sim.Flow.throughput f ~t0 ~t1));
             string_of_int (Sim.Flow.stall_probes f);
           ])
  in
  String.concat "," (Sim.Network.state_hash net :: per_flow)

let run_straight mk = outcome (Sim.Network.run_config (mk ()))

(* 0→frac·T, capture, restore, finish on the restored copy. *)
let run_split ?(frac = 0.5) mk =
  let cfg = mk () in
  let net = Sim.Network.build cfg in
  let t_mid =
    Sim.Network.start_time net
    +. (frac *. (Sim.Network.horizon net -. Sim.Network.start_time net))
  in
  Sim.Network.run_to net t_mid;
  let restored = Sim.Snapshot.restore (Sim.Snapshot.capture net) in
  outcome (Sim.Network.run restored)

(* ------------------------------------------------------------------ *)
(* Split-run equivalence                                               *)
(* ------------------------------------------------------------------ *)

let test_split_run_matrix () =
  List.iter
    (fun (name, mk) ->
      Alcotest.(check string)
        (name ^ ": split == straight")
        (run_straight mk) (run_split mk))
    scenarios

let test_double_split () =
  (* Snapshot twice (at 1/3 and 2/3) — restores compose. *)
  let _, mk = List.nth scenarios 3 in
  let cfg = mk () in
  let net = Sim.Network.build cfg in
  let t0 = Sim.Network.start_time net and hz = Sim.Network.horizon net in
  Sim.Network.run_to net (t0 +. ((hz -. t0) /. 3.));
  let net2 = Sim.Snapshot.restore (Sim.Snapshot.capture net) in
  Sim.Network.run_to net2 (t0 +. (2. *. (hz -. t0) /. 3.));
  let net3 = Sim.Snapshot.restore (Sim.Snapshot.capture net2) in
  Alcotest.(check string) "two restores == straight" (run_straight mk)
    (outcome (Sim.Network.run net3))

let test_restore_is_independent () =
  (* Advancing the restored copy must not disturb the original. *)
  let _, mk = List.nth scenarios 1 in
  let net = Sim.Network.build (mk ()) in
  Sim.Network.run_to net 1.0;
  let h_mid = Sim.Network.state_hash net in
  let restored = Sim.Snapshot.restore (Sim.Snapshot.capture net) in
  ignore (Sim.Network.run restored);
  Alcotest.(check string) "original undisturbed" h_mid
    (Sim.Network.state_hash net);
  ignore (Sim.Network.run net);
  Alcotest.(check string) "both futures identical"
    (Sim.Network.state_hash restored)
    (Sim.Network.state_hash net)

(* Randomized scenarios: seed, snapshot point, flow mix, optional
   blackout arranged to cover the snapshot point (so some snapshots land
   mid-blackout with RTO timers pending). *)
let qcheck_split_equivalence =
  let gen =
    QCheck.make
      ~print:(fun (seed, fracq, mix, blackout) ->
        Printf.sprintf "seed=%d frac=%d/8 mix=%d blackout=%b" seed fracq mix
          blackout)
      QCheck.Gen.(
        quad (int_range 0 1000) (int_range 1 7) (int_range 0 24) bool)
  in
  QCheck.Test.make ~name:"snapshot/restore/run == straight run (randomized)"
    ~count:25 gen (fun (seed, fracq, mix, blackout) ->
      let frac = float_of_int fracq /. 8. in
      let duration = 1.6 in
      let mk () =
        let flows =
          [
            base_flow
              ~jitter:(Sim.Jitter.Uniform { lo = 0.; hi = 0.005 })
              ~jitter_bound:0.01 (mix mod 5);
            base_flow ~loss_rate:0.005
              ~ack_policy:(Sim.Network.Delayed { count = 2; timeout = 0.03 })
              (mix / 5);
          ]
        in
        let faults =
          if blackout then
            (* Window straddling the snapshot point: the restore must
               revive a dark link and the RTO timers it provoked. *)
            let t_snap = frac *. duration in
            Sim.Fault.plan
              [
                Sim.Fault.Link_blackout
                  {
                    t0 = Float.max 0.01 (t_snap -. 0.15);
                    t1 = Float.min (duration -. 0.01) (t_snap +. 0.15);
                  };
              ]
          else Sim.Fault.none
        in
        Sim.Network.config ~rate:(Sim.Link.Constant (Sim.Units.mbps 8.))
          ~buffer:(32 * 1500) ~rm:0.03 ~seed ~faults ~duration flows
      in
      String.equal (run_straight mk) (run_split ~frac mk))

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "ccstarve_snap" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_save_load_roundtrip () =
  with_temp_file (fun path ->
      let _, mk = List.nth scenarios 3 in
      let net = Sim.Network.build (mk ()) in
      Sim.Network.run_to net 1.0;
      let snap = Sim.Snapshot.capture net in
      Sim.Snapshot.save path snap;
      let loaded = Sim.Snapshot.load path in
      Alcotest.(check (float 0.)) "time survives" (Sim.Snapshot.time snap)
        (Sim.Snapshot.time loaded);
      Alcotest.(check string) "hash survives" (Sim.Snapshot.hash snap)
        (Sim.Snapshot.hash loaded);
      let finished = Sim.Network.run (Sim.Snapshot.restore loaded) in
      Alcotest.(check string) "restored-from-disk == straight"
        (run_straight mk) (outcome finished))

let expect_incompatible name f =
  match f () with
  | exception Sim.Snapshot.Incompatible _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Snapshot.Incompatible")

let test_corrupt_snapshot_rejected () =
  with_temp_file (fun path ->
      let _, mk = List.nth scenarios 0 in
      let net = Sim.Network.build (mk ()) in
      Sim.Network.run_to net 0.5;
      Sim.Snapshot.save path (Sim.Snapshot.capture net);
      let raw = In_channel.with_open_bin path In_channel.input_all in
      (* Truncation. *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub raw 0 (String.length raw / 2)));
      expect_incompatible "truncated" (fun () -> Sim.Snapshot.load path);
      (* A flipped byte deep in the payload. *)
      let tampered = Bytes.of_string raw in
      let i = String.length raw - 40 in
      Bytes.set tampered i (Char.chr (Char.code (Bytes.get tampered i) lxor 1));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc tampered);
      expect_incompatible "bit flip" (fun () ->
          Sim.Snapshot.restore (Sim.Snapshot.load path));
      (* Not a snapshot at all. *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "not a snapshot\n");
      expect_incompatible "bad magic" (fun () -> Sim.Snapshot.load path))

(* ------------------------------------------------------------------ *)
(* Checkpoint streams and divergence location                          *)
(* ------------------------------------------------------------------ *)

let checkpoint_stream mk =
  let acc = ref [] in
  let net = Sim.Network.build (mk ()) in
  ignore
    (Sim.Snapshot.run_with_checkpoints ~interval:0.25
       ~on_checkpoint:(fun s ->
         acc := (Sim.Snapshot.time s, Sim.Snapshot.hash s) :: !acc)
       net);
  List.rev !acc

let test_checkpoint_cadence_and_determinism () =
  let _, mk = List.nth scenarios 4 in
  let a = checkpoint_stream mk and b = checkpoint_stream mk in
  Alcotest.(check int) "2 s / 0.25 s = 7 interior checkpoints" 7
    (List.length a);
  Alcotest.(check (list (pair (float 0.) string)))
    "checkpoint hash streams identical" a b

let fingerprint_stream ~seed () =
  let acc = ref [] in
  let net =
    Sim.Network.build
      (Sim.Network.config ~rate:(Sim.Link.Constant (Sim.Units.mbps 8.))
         ~buffer:(32 * 1500) ~rm:0.03 ~seed ~duration:1.5
         [ base_flow ~loss_rate:0.01 0; base_flow 1 ])
  in
  ignore
    (Sim.Snapshot.run_with_checkpoints ~interval:0.25
       ~on_checkpoint:(fun s -> acc := Sim.Snapshot.time s :: !acc)
       net);
  (* Re-run collecting full fingerprints (capture only records the
     digest; the fingerprint stream is what first_divergence compares). *)
  let acc = ref [] in
  let net =
    Sim.Network.build
      (Sim.Network.config ~rate:(Sim.Link.Constant (Sim.Units.mbps 8.))
         ~buffer:(32 * 1500) ~rm:0.03 ~seed ~duration:1.5
         [ base_flow ~loss_rate:0.01 0; base_flow 1 ])
  in
  let rec step t =
    if t < 1.5 then begin
      Sim.Network.run_to net t;
      acc := (t, Sim.Network.fingerprint net) :: !acc;
      step (t +. 0.25)
    end
  in
  step 0.25;
  List.rev !acc

let test_first_divergence () =
  let a = fingerprint_stream ~seed:11 () in
  let b = fingerprint_stream ~seed:11 () in
  Alcotest.(check bool) "identical runs never diverge" true
    (Sim.Snapshot.first_divergence a b = None);
  let c = fingerprint_stream ~seed:12 () in
  match Sim.Snapshot.first_divergence a c with
  | None -> Alcotest.fail "different seeds must diverge"
  | Some (t, component) ->
      Alcotest.(check bool) "divergence at a checkpoint time" true
        (t >= 0.25 && t <= 1.25);
      Alcotest.(check bool) "component named" true
        (String.length component > 0)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* One flow violates its declared jitter bound (Uniform above the bound
   clamps, and clamps are audited); the second flow and both faults are
   decoys the shrinker must discard. *)
let violating_config () =
  Sim.Network.config ~rate:(Sim.Link.Constant (Sim.Units.mbps 1.5)) ~rm:0.05
    ~seed:7 ~monitor_period:0.05 ~duration:4.0
    ~faults:
      (Sim.Fault.plan
         [
           Sim.Fault.Link_blackout { t0 = 1.0; t1 = 1.2 };
           Sim.Fault.Rate_step { at = 2.0; rate = 750_000. };
         ])
    [
      Sim.Network.flow
        ~jitter:(Sim.Jitter.Uniform { lo = 0.; hi = 0.05 })
        ~jitter_bound:0.02 (Reno.make ());
      Sim.Network.flow (Reno.make ());
    ]

let test_shrink_minimizes () =
  match Sim.Shrink.shrink (violating_config ()) with
  | None -> Alcotest.fail "expected a violation to shrink"
  | Some r ->
      Alcotest.(check string) "same check survives" "jitter-bound"
        r.Sim.Shrink.check;
      Alcotest.(check bool) "at most 2 flows" true
        (List.length r.Sim.Shrink.config.Sim.Network.flows <= 2);
      Alcotest.(check bool) "at most 1 fault event" true
        (List.length
           (Sim.Fault.events r.Sim.Shrink.config.Sim.Network.faults)
        <= 1);
      Alcotest.(check bool) "horizon shrank" true
        (r.Sim.Shrink.config.Sim.Network.duration < 4.0);
      Alcotest.(check bool) "still violates" true (r.Sim.Shrink.violations > 0);
      (* The minimized config must remain runnable and still trip. *)
      Alcotest.(check bool) "reproducer re-trips" true
        (List.mem_assoc r.Sim.Shrink.check
           (Sim.Shrink.trips r.Sim.Shrink.config))

let test_shrink_clean_config () =
  let clean () =
    Sim.Network.config ~rate:(Sim.Link.Constant (Sim.Units.mbps 8.))
      ~buffer:(32 * 1500) ~rm:0.03 ~seed:1 ~monitor_period:0.05 ~duration:1.0
      [ Sim.Network.flow (Reno.make ()) ]
  in
  Alcotest.(check bool) "clean scenario does not shrink" true
    (Sim.Shrink.shrink (clean ()) = None)

let test_repro_file_roundtrip () =
  with_temp_file (fun path ->
      match Sim.Shrink.shrink (violating_config ()) with
      | None -> Alcotest.fail "expected a violation"
      | Some r ->
          Sim.Shrink.write_repro path r;
          let r' = Sim.Shrink.load_repro path in
          Alcotest.(check string) "check survives disk" r.Sim.Shrink.check
            r'.Sim.Shrink.check;
          Alcotest.(check bool) "loaded reproducer still trips" true
            (List.mem_assoc r'.Sim.Shrink.check
               (Sim.Shrink.trips r'.Sim.Shrink.config));
          (* Corruption is rejected before Marshal sees the payload. *)
          let raw = In_channel.with_open_bin path In_channel.input_all in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc
                (String.sub raw 0 (String.length raw - 7)));
          expect_incompatible "truncated repro" (fun () ->
              Sim.Shrink.load_repro path))

let () =
  Alcotest.run "snapshot"
    [
      ( "split-run",
        [
          Alcotest.test_case "scenario matrix" `Quick test_split_run_matrix;
          Alcotest.test_case "double split" `Quick test_double_split;
          Alcotest.test_case "restore is independent" `Quick
            test_restore_is_independent;
          qt qcheck_split_equivalence;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load roundtrip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick
            test_corrupt_snapshot_rejected;
        ] );
      ( "checkpoints",
        [
          Alcotest.test_case "cadence and determinism" `Quick
            test_checkpoint_cadence_and_determinism;
          Alcotest.test_case "first divergence" `Quick test_first_divergence;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimizes to the core" `Quick
            test_shrink_minimizes;
          Alcotest.test_case "clean config" `Quick test_shrink_clean_config;
          Alcotest.test_case "repro file roundtrip" `Quick
            test_repro_file_roundtrip;
        ] );
    ]
