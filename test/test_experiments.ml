(* Tests for the experiment layer: the report formatting, the registry,
   and the cheaper experiments end-to-end in quick mode.  The expensive
   scenario experiments run as `Slow cases (picked up by `dune runtest`
   but kept out of quick iteration via ALCOTEST_QUICK_TESTS). *)

let test_report_row () =
  let r =
    Experiments.Report.row ~id:"X" ~label:"case" ~paper:"p" ~measured:"m" ~ok:true
  in
  Alcotest.(check string) "id" "X" r.Experiments.Report.id;
  Alcotest.(check bool) "all_ok true" true (Experiments.Report.all_ok [ r ]);
  let bad = { r with Experiments.Report.ok = false } in
  Alcotest.(check bool) "all_ok false" false (Experiments.Report.all_ok [ r; bad ])

let test_report_markdown () =
  let rows =
    [
      Experiments.Report.row ~id:"X1" ~label:"case a" ~paper:"p" ~measured:"m" ~ok:true;
      Experiments.Report.row ~id:"X2" ~label:"case b" ~paper:"q" ~measured:"n" ~ok:false;
    ]
  in
  let md = Experiments.Report.to_markdown ~title:"T" rows in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "title" true (contains md "## T");
  Alcotest.(check bool) "row" true (contains md "| X1 | case a | p | m | yes |");
  Alcotest.(check bool) "failure bolded" true (contains md "**NO**")

let test_report_formatting () =
  Alcotest.(check string) "mbps" "12.00 Mbit/s"
    (Experiments.Report.mbps (Sim.Units.mbps 12.));
  Alcotest.(check string) "msec" "42.00 ms" (Experiments.Report.msec 0.042)

let test_registry_complete () =
  let keys = List.map (fun e -> e.Experiments.Registry.key) Experiments.Registry.all in
  let expected =
    [ "fig1"; "fig3"; "copa"; "bbr"; "vivace"; "fig7"; "allegro"; "theorem1";
      "theorem2"; "alg1"; "ccac"; "ecn"; "threshold"; "isolation"; "robustness";
      "matrix"; "faults"; "census" ]
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " registered") true (List.mem k keys))
    expected;
  Alcotest.(check int) "no duplicates" (List.length keys)
    (List.length (List.sort_uniq String.compare keys));
  Alcotest.(check bool) "all paper artifacts plus extensions covered" true
    (List.length keys >= 14)

let test_registry_find () =
  Alcotest.(check bool) "find copa" true (Experiments.Registry.find "copa" <> None);
  Alcotest.(check bool) "find nonsense" true
    (Experiments.Registry.find "nonsense" = None)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_registry_select () =
  (match Experiments.Registry.select [] with
  | Ok es ->
      Alcotest.(check int) "empty selection = all"
        (List.length Experiments.Registry.all)
        (List.length es)
  | Error e -> Alcotest.failf "empty selection rejected: %s" e);
  (match Experiments.Registry.select [ "copa"; "census" ] with
  | Ok es ->
      Alcotest.(check (list string)) "subset in request order"
        [ "copa"; "census" ]
        (List.map (fun e -> e.Experiments.Registry.key) es)
  | Error e -> Alcotest.failf "valid subset rejected: %s" e);
  match Experiments.Registry.select [ "copa"; "badkey" ] with
  | Ok _ -> Alcotest.fail "unknown key accepted"
  | Error msg ->
      Alcotest.(check bool) "names the offender" true (contains msg "badkey");
      Alcotest.(check bool) "advertises alternatives" true
        (contains msg "available:");
      List.iter
        (fun k ->
          Alcotest.(check bool) ("error lists " ^ k) true (contains msg k))
        (Experiments.Registry.keys ())

let test_registry_keys_round_trip_plan () =
  (* Every advertised key must resolve through [select] and produce a
     non-empty job plan under every backend — the contract `repro list`
     relies on. *)
  List.iter
    (fun key ->
      match Experiments.Registry.select [ key ] with
      | Error e -> Alcotest.failf "%s does not select: %s" key e
      | Ok [ e ] ->
          List.iter
            (fun backend ->
              let p = e.Experiments.Registry.plan ~quick:true ~backend in
              Alcotest.(check bool)
                (Printf.sprintf "%s plans jobs under %s" key
                   (Fluid.Backend.to_string backend))
                true
                (p.Experiments.Registry.jobs <> []))
            Fluid.Backend.all
      | Ok es ->
          Alcotest.failf "%s selected %d experiments" key (List.length es))
    (Experiments.Registry.keys ())

(* `repro list` must advertise exactly the registry: exercised against
   the real driver binary, same pattern as the exit-code tests in
   test_runner. *)
let repro_exe = "../bin/repro.exe"

let test_repro_list_smoke () =
  if not (Sys.file_exists repro_exe) then ()
  else begin
    let out_file = Filename.temp_file "repro_list" ".out" in
    let status =
      Sys.command
        (Printf.sprintf "%s list >%s 2>/dev/null" repro_exe
           (Filename.quote out_file))
    in
    let ic = open_in out_file in
    let n = in_channel_length ic in
    let out = really_input_string ic n in
    close_in ic;
    Sys.remove out_file;
    Alcotest.(check int) "exit 0" 0 status;
    let lines =
      List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
    in
    Alcotest.(check (list string)) "one key per line, registry order"
      (Experiments.Registry.keys ())
      lines
  end

let test_merit_rows () =
  let rows = Experiments.Exp_alg1.merit_rows () in
  Alcotest.(check int) "3 jitters x 3 s" 9 (List.length rows)

let test_copa_poison_trace_is_legal () =
  (* The poison schedule must stay within the declared 1 ms bound. *)
  for i = 0 to 1000 do
    let t = float_of_int i *. 0.01 in
    let d = Experiments.Exp_copa.poison_trace t in
    Alcotest.(check bool) "in [0, 1ms]" true (d >= 0. && d <= 0.001)
  done

let run_rows name rows =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s / %s %s: %s" name r.Experiments.Report.id
           r.Experiments.Report.label r.Experiments.Report.measured)
        true r.Experiments.Report.ok)
    rows

(* End-to-end experiment runs (quick mode). *)
let test_exp_ccac () = run_rows "ccac" (Experiments.Exp_ccac.run ~quick:true ())
let test_exp_fig1 () = run_rows "fig1" (Experiments.Exp_fig1.run ~quick:true ())
let test_exp_copa () = run_rows "copa" (Experiments.Exp_copa.run ~quick:true ())
let test_exp_bbr () = run_rows "bbr" (Experiments.Exp_bbr.run ~quick:true ())
let test_exp_vivace () = run_rows "vivace" (Experiments.Exp_vivace.run ~quick:true ())
let test_exp_fig7 () = run_rows "fig7" (Experiments.Exp_fig7.run ~quick:true ())
let test_exp_fig3 () = run_rows "fig3" (Experiments.Exp_fig3.run ~quick:true ())
let test_exp_theorem1 () = run_rows "theorem1" (Experiments.Exp_theorem1.run ~quick:true ())
let test_exp_theorem2 () = run_rows "theorem2" (Experiments.Exp_theorem2.run ~quick:true ())
let test_exp_alg1 () = run_rows "alg1" (Experiments.Exp_alg1.run ~quick:true ())
let test_exp_allegro () = run_rows "allegro" (Experiments.Exp_allegro.run ~quick:true ())
let test_exp_ecn () = run_rows "ecn" (Experiments.Exp_ecn.run ~quick:true ())
let test_exp_threshold () = run_rows "threshold" (Experiments.Exp_threshold.run ~quick:true ())
let test_exp_isolation () = run_rows "isolation" (Experiments.Exp_isolation.run ~quick:true ())
let test_exp_robustness () = run_rows "robustness" (Experiments.Exp_robustness.run ~quick:true ())
let test_exp_matrix () = run_rows "matrix" (Experiments.Exp_matrix.run ~quick:true ())
let test_exp_faults () = run_rows "faults" (Experiments.Exp_faults.run ~quick:true ())
let test_exp_census () = run_rows "census" (Experiments.Exp_census.run ~quick:true ())

let test_series_to_rows_stride () =
  let s = Sim.Series.create () in
  for i = 0 to 9 do
    Sim.Series.add s ~time:(float_of_int i) (float_of_int (i * i))
  done;
  Alcotest.(check int) "stride 3 keeps 4" 4
    (List.length (Experiments.Export.series_to_rows ~stride:3 s));
  Alcotest.(check int) "stride 1 keeps all" 10
    (List.length (Experiments.Export.series_to_rows s))

let test_threshold_sweep_escalates () =
  let pts = Experiments.Exp_threshold.sweep ~quick:true () in
  Alcotest.(check bool) "several points" true (List.length pts >= 3);
  let first = List.hd pts and last = List.nth pts (List.length pts - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "ratio rises with D (%.1f -> %.1f)"
       first.Experiments.Exp_threshold.ratio last.Experiments.Exp_threshold.ratio)
    true
    (last.Experiments.Exp_threshold.ratio
    > 2. *. first.Experiments.Exp_threshold.ratio)

let test_export_csv () =
  let dir = Filename.temp_file "ccstarve" "" in
  Sys.remove dir;
  let rows = [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "t.csv" in
  Experiments.Export.write_csv ~path ~cols:[ "a"; "b" ] rows;
  let ic = open_in path in
  let header = input_line ic in
  let first = input_line ic in
  close_in ic;
  Alcotest.(check string) "header" "a,b" header;
  Alcotest.(check string) "row" "1,2" first

(* ------------------------------------------------------------------ *)
(* ASCII plots                                                         *)
(* ------------------------------------------------------------------ *)

let test_plot_empty () =
  Alcotest.(check string) "stub" "(no data)\n" (Experiments.Ascii_plot.render []);
  Alcotest.(check string) "stub for empty series" "(no data)\n"
    (Experiments.Ascii_plot.render [ ("a", []) ])

let test_plot_contains_markers_and_labels () =
  let out =
    Experiments.Ascii_plot.render ~title:"T" ~width:40 ~height:10
      [ ("up", [ (0., 0.); (1., 1.) ]); ("down", [ (0., 1.); (1., 0.) ]) ]
  in
  Alcotest.(check bool) "title present" true
    (String.length out > 0 && String.sub out 0 1 = "T");
  Alcotest.(check bool) "marker 1" true (String.contains out '*');
  Alcotest.(check bool) "marker 2" true (String.contains out '+');
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "legend up" true (contains out "* up");
  Alcotest.(check bool) "legend down" true (contains out "+ down")

let test_plot_dimensions () =
  let out =
    Experiments.Ascii_plot.render ~width:30 ~height:8 [ ("s", [ (0., 5.); (2., 7.) ]) ]
  in
  let lines = String.split_on_char '\n' out in
  (* 8 canvas rows + axis + x labels + legend, no title. *)
  Alcotest.(check bool) "row count sane" true
    (List.length lines >= 11 && List.length lines <= 13);
  (* Every canvas row has the axis bar. *)
  let canvas_rows = List.filteri (fun i _ -> i < 8) lines in
  List.iter
    (fun l -> Alcotest.(check bool) "axis bar" true (String.contains l '|'))
    canvas_rows

let test_plot_render_series_wrapper () =
  let s = Sim.Series.create () in
  Sim.Series.add s ~time:0. 1.;
  Sim.Series.add s ~time:1. 2.;
  let out = Experiments.Ascii_plot.render_series ~title:"W" ("wrapped", s) in
  Alcotest.(check bool) "has marker" true (String.contains out '*');
  Alcotest.(check bool) "has title" true (String.length out > 0 && out.[0] = 'W')

let test_registry_titles_nonempty () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Experiments.Registry.key ^ " has a title")
        true
        (String.length e.Experiments.Registry.title > 10))
    Experiments.Registry.all

let test_plot_degenerate_point () =
  (* A single point must not crash or divide by zero. *)
  let out = Experiments.Ascii_plot.render [ ("pt", [ (1., 1.) ]) ] in
  Alcotest.(check bool) "renders" true (String.contains out '*')

let () =
  Alcotest.run "experiments"
    [
      ( "report",
        [
          Alcotest.test_case "row" `Quick test_report_row;
          Alcotest.test_case "formatting" `Quick test_report_formatting;
          Alcotest.test_case "markdown" `Quick test_report_markdown;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "select" `Quick test_registry_select;
          Alcotest.test_case "keys round-trip plan" `Quick
            test_registry_keys_round_trip_plan;
          Alcotest.test_case "repro list" `Quick test_repro_list_smoke;
        ] );
      ( "static",
        [
          Alcotest.test_case "merit rows" `Quick test_merit_rows;
          Alcotest.test_case "poison trace legal" `Quick test_copa_poison_trace_is_legal;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "ccac" `Quick test_exp_ccac;
          Alcotest.test_case "fig1" `Slow test_exp_fig1;
          Alcotest.test_case "copa" `Slow test_exp_copa;
          Alcotest.test_case "bbr" `Slow test_exp_bbr;
          Alcotest.test_case "vivace" `Slow test_exp_vivace;
          Alcotest.test_case "fig7" `Slow test_exp_fig7;
          Alcotest.test_case "fig3" `Slow test_exp_fig3;
          Alcotest.test_case "theorem1" `Slow test_exp_theorem1;
          Alcotest.test_case "theorem2" `Slow test_exp_theorem2;
          Alcotest.test_case "alg1" `Slow test_exp_alg1;
          Alcotest.test_case "allegro" `Slow test_exp_allegro;
          Alcotest.test_case "ecn" `Slow test_exp_ecn;
          Alcotest.test_case "threshold" `Slow test_exp_threshold;
          Alcotest.test_case "threshold escalates" `Slow test_threshold_sweep_escalates;
          Alcotest.test_case "isolation" `Slow test_exp_isolation;
          Alcotest.test_case "robustness" `Slow test_exp_robustness;
          Alcotest.test_case "matrix" `Slow test_exp_matrix;
          Alcotest.test_case "faults" `Slow test_exp_faults;
          Alcotest.test_case "census" `Slow test_exp_census;
        ] );
      ( "export",
        [
          Alcotest.test_case "csv" `Quick test_export_csv;
          Alcotest.test_case "stride" `Quick test_series_to_rows_stride;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "markers and labels" `Quick
            test_plot_contains_markers_and_labels;
          Alcotest.test_case "dimensions" `Quick test_plot_dimensions;
          Alcotest.test_case "degenerate point" `Quick test_plot_degenerate_point;
          Alcotest.test_case "render_series" `Quick test_plot_render_series_wrapper;
          Alcotest.test_case "registry titles" `Quick test_registry_titles_nonempty;
        ] );
    ]
