(* Tests for the simulation substrate: heap, event queue, rng, stats,
   series, jitter, link, flow and network integration. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Sim.Heap.create ~dummy:0 ~cmp:Int.compare () in
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
  List.iter (Sim.Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  Alcotest.(check int) "size" 6 (Sim.Heap.size h);
  Alcotest.(check (option int)) "peek" (Some 1) (Sim.Heap.peek h);
  Alcotest.(check (option int)) "pop" (Some 1) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "pop2" (Some 2) (Sim.Heap.pop h);
  Alcotest.(check int) "size after" 4 (Sim.Heap.size h)

let test_heap_pop_exn_empty () =
  let h = Sim.Heap.create ~dummy:0 ~cmp:Int.compare () in
  Alcotest.check_raises "empty pop_exn"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Sim.Heap.pop_exn h))

let test_heap_clear () =
  let h = Sim.Heap.create ~dummy:0 ~cmp:Int.compare () in
  List.iter (Sim.Heap.push h) [ 3; 1; 2 ];
  Sim.Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Sim.Heap.is_empty h);
  Sim.Heap.push h 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Sim.Heap.peek h)

let test_heap_to_sorted_preserves () =
  let h = Sim.Heap.create ~dummy:0 ~cmp:Int.compare () in
  List.iter (Sim.Heap.push h) [ 4; 2; 7 ];
  Alcotest.(check (list int)) "sorted" [ 2; 4; 7 ] (Sim.Heap.to_sorted_list h);
  Alcotest.(check int) "unchanged" 3 (Sim.Heap.size h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.create ~dummy:0 ~cmp:Int.compare () in
      List.iter (Sim.Heap.push h) xs;
      let drained = Sim.Heap.to_sorted_list h in
      drained = List.sort Int.compare xs)

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap peek is minimum under interleaved ops" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Sim.Heap.create ~dummy:0 ~cmp:Int.compare () in
      let model = ref [] in
      List.for_all
        (fun (is_push, x) ->
          if is_push then begin
            Sim.Heap.push h x;
            model := x :: !model;
            true
          end
          else begin
            let expect =
              match !model with
              | [] -> None
              | l -> Some (List.fold_left min max_int l)
            in
            let got = Sim.Heap.pop h in
            (match got with
            | Some v ->
                let rec remove = function
                  | [] -> []
                  | y :: rest -> if y = v then rest else y :: remove rest
                in
                model := remove !model
            | None -> ());
            got = expect
          end)
        ops)

(* Regression for a space leak: [pop] used to leave the popped root's
   replacement duplicated in the vacated tail slot, pinning elements (and
   anything their closures captured) until the slot was overwritten by a
   later push.  A drained heap must not reach any popped element. *)
let test_heap_pop_releases () =
  let h =
    Sim.Heap.create ~dummy:(ref 0) ~cmp:(fun a b -> Int.compare !a !b) ()
  in
  let n = 8 in
  let w = Weak.create n in
  for i = 0 to n - 1 do
    let r = ref i in
    Weak.set w i (Some r);
    Sim.Heap.push h r
  done;
  while not (Sim.Heap.is_empty h) do
    ignore (Sim.Heap.pop h)
  done;
  Gc.full_major ();
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "element %d collected after drain" i)
      true
      (Weak.get w i = None)
  done

let test_heap_clear_releases () =
  let h =
    Sim.Heap.create ~dummy:(ref 0) ~cmp:(fun a b -> Int.compare !a !b) ()
  in
  let n = 8 in
  let w = Weak.create n in
  for i = 0 to n - 1 do
    let r = ref i in
    Weak.set w i (Some r);
    Sim.Heap.push h r
  done;
  Sim.Heap.clear h;
  Gc.full_major ();
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "element %d collected after clear" i)
      true
      (Weak.get w i = None)
  done

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_eq_ordering () =
  let eq = Sim.Event_queue.create () in
  let log = ref [] in
  Sim.Event_queue.schedule eq ~at:2.0 (fun () -> log := 2 :: !log);
  Sim.Event_queue.schedule eq ~at:1.0 (fun () -> log := 1 :: !log);
  Sim.Event_queue.schedule eq ~at:3.0 (fun () -> log := 3 :: !log);
  Sim.Event_queue.run eq;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  check_float "now" 3.0 (Sim.Event_queue.now eq)

let test_eq_fifo_ties () =
  let eq = Sim.Event_queue.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Sim.Event_queue.schedule eq ~at:1.0 (fun () -> log := i :: !log)
  done;
  Sim.Event_queue.run eq;
  Alcotest.(check (list int)) "fifo ties" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let prop_eq_stable_order =
  QCheck.Test.make
    ~name:"event queue drains in (time, insertion) order under random times"
    ~count:200
    QCheck.(list_of_size Gen.(0 -- 40) (int_range 0 5))
    (fun times ->
      (* Times drawn from a tiny set so equal-time ties are the common
         case: ties must fire in insertion (FIFO) order. *)
      let eq = Sim.Event_queue.create () in
      let log = ref [] in
      List.iteri
        (fun i t ->
          Sim.Event_queue.schedule eq ~at:(float_of_int t) (fun () ->
              log := i :: !log))
        times;
      Sim.Event_queue.run eq;
      let expect =
        List.mapi (fun i t -> (t, i)) times
        |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.map snd
      in
      List.rev !log = expect)

let test_eq_past_rejected () =
  let eq = Sim.Event_queue.create () in
  Sim.Event_queue.schedule eq ~at:1.0 (fun () -> ());
  ignore (Sim.Event_queue.step eq);
  Alcotest.(check bool) "raises" true
    (try
       Sim.Event_queue.schedule eq ~at:0.5 (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_eq_nested_scheduling () =
  let eq = Sim.Event_queue.create () in
  let log = ref [] in
  Sim.Event_queue.schedule eq ~at:1.0 (fun () ->
      log := "a" :: !log;
      Sim.Event_queue.schedule_after eq ~delay:0.5 (fun () -> log := "b" :: !log));
  Sim.Event_queue.run_until eq 2.0;
  Alcotest.(check (list string)) "nested" [ "a"; "b" ] (List.rev !log);
  check_float "now at horizon" 2.0 (Sim.Event_queue.now eq)

let test_eq_run_until_excludes_future () =
  let eq = Sim.Event_queue.create () in
  let fired = ref false in
  Sim.Event_queue.schedule eq ~at:5.0 (fun () -> fired := true);
  Sim.Event_queue.run_until eq 4.0;
  Alcotest.(check bool) "future not fired" false !fired;
  Alcotest.(check int) "still pending" 1 (Sim.Event_queue.pending eq)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:1 in
  for _ = 1 to 100 do
    check_float "same stream" (Sim.Rng.float a 1.) (Sim.Rng.float b 1.)
  done

let test_rng_seeds_differ () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  let same = ref true in
  for _ = 1 to 16 do
    if Sim.Rng.float a 1. <> Sim.Rng.float b 1. then same := false
  done;
  Alcotest.(check bool) "streams differ" false !same

let test_rng_split_independent () =
  let parent = Sim.Rng.create ~seed:3 in
  let c1 = Sim.Rng.split parent in
  let c2 = Sim.Rng.split parent in
  let same = ref true in
  for _ = 1 to 16 do
    if Sim.Rng.float c1 1. <> Sim.Rng.float c2 1. then same := false
  done;
  Alcotest.(check bool) "children differ" false !same

let test_rng_stream_order_independent () =
  (* The fuzzer's reproducibility contract: scenario i's generator is a
     pure function of (seed, label) — deriving other labels first, in any
     order, must not change it, and deriving must not advance the parent. *)
  let draws g = Array.init 8 (fun _ -> Sim.Rng.float g 1.) in
  let a = Sim.Rng.create ~seed:42 in
  let direct = draws (Sim.Rng.stream a ~label:"scenario-5") in
  let b = Sim.Rng.create ~seed:42 in
  ignore (draws (Sim.Rng.stream b ~label:"scenario-9"));
  ignore (draws (Sim.Rng.stream b ~label:"scenario-0"));
  let after_others = draws (Sim.Rng.stream b ~label:"scenario-5") in
  Alcotest.(check (array (float 0.))) "label alone determines the stream"
    direct after_others;
  (* The parent is untouched: its own draws match a fresh parent's. *)
  let fresh = Sim.Rng.create ~seed:42 in
  Alcotest.(check (array (float 0.))) "parent not advanced by stream"
    (draws fresh) (draws b)

let test_rng_stream_labels_decorrelated () =
  let a = Sim.Rng.stream (Sim.Rng.create ~seed:42) ~label:"scenario-1" in
  let b = Sim.Rng.stream (Sim.Rng.create ~seed:42) ~label:"scenario-2" in
  let n = 10_000 in
  let matches = ref 0 and corr = ref 0. in
  for _ = 1 to n do
    let x = Sim.Rng.float a 1. and y = Sim.Rng.float b 1. in
    if x = y then incr matches;
    corr := !corr +. ((x -. 0.5) *. (y -. 0.5))
  done;
  Alcotest.(check int) "no identical draws" 0 !matches;
  (* Sample correlation of uniforms: stderr ~ 1/(12 sqrt n) ~ 8.3e-4. *)
  Alcotest.(check bool) "uncorrelated" true
    (Float.abs (!corr /. float_of_int n) < 5e-3)

let test_rng_exponential_mean () =
  let r = Sim.Rng.create ~seed:11 in
  let n = 100_000 and mean = 0.02 in
  let sum = ref 0. in
  for _ = 1 to n do
    let x = Sim.Rng.exponential r ~mean in
    Alcotest.(check bool) "non-negative finite" true (Float.is_finite x && x >= 0.);
    sum := !sum +. x
  done;
  let m = !sum /. float_of_int n in
  (* stderr = mean/sqrt(n) ~ 6.3e-5; allow 5 sigma. *)
  Alcotest.(check bool) "mean within band" true
    (Float.abs (m -. mean) < 5. *. mean /. sqrt (float_of_int n))

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng float stays in [0,bound)" ~count:100
    QCheck.(pair small_int (float_range 0.001 1000.))
    (fun (seed, bound) ->
      let r = Sim.Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Sim.Rng.float r bound in
        if x < 0. || x >= bound then ok := false
      done;
      !ok)

let test_rng_bool_probability () =
  let r = Sim.Rng.create ~seed:7 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Sim.Rng.bool r ~p:0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "freq near 0.3" true (Float.abs (freq -. 0.3) < 0.01)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_online_stats () =
  let o = Sim.Stats.Online.create () in
  List.iter (Sim.Stats.Online.add o) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_float_eps 1e-9 "mean" 5. (Sim.Stats.Online.mean o);
  check_float_eps 1e-9 "variance" (32. /. 7.) (Sim.Stats.Online.variance o);
  check_float "min" 2. (Sim.Stats.Online.min o);
  check_float "max" 9. (Sim.Stats.Online.max o)

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Sim.Stats.median xs);
  check_float "p0" 1. (Sim.Stats.percentile xs 0.);
  check_float "p100" 5. (Sim.Stats.percentile xs 100.);
  check_float "p25" 2. (Sim.Stats.percentile xs 25.)

let test_percentile_invalid () =
  Alcotest.(check bool) "empty raises" true
    (try ignore (Sim.Stats.percentile [||] 50.); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "p out of range raises" true
    (try ignore (Sim.Stats.percentile [| 1. |] 101.); false
     with Invalid_argument _ -> true)

let test_percentile_single () =
  check_float "single" 42. (Sim.Stats.percentile [| 42. |] 75.)

let test_jain () =
  check_float "equal shares" 1. (Sim.Stats.jain_index [ 5.; 5.; 5. ]);
  check_float_eps 1e-9 "one hog" 0.25 (Sim.Stats.jain_index [ 1.; 0.; 0.; 0. ])

let test_max_min_ratio () =
  check_float "ratio" 4. (Sim.Stats.max_min_ratio [ 1.; 4.; 2. ]);
  check_float "all zero" 1. (Sim.Stats.max_min_ratio [ 0.; 0. ]);
  Alcotest.(check bool) "inf" true (Sim.Stats.max_min_ratio [ 0.; 1. ] = infinity)

(* Regressions for the small-count/sign conventions: empty extrema used
   to leak their +/-infinity initializers, a singleton "had" variance 0,
   and a negative value could make max_min_ratio report 1 (mx = 0, mn < 0)
   as if the shares were perfectly fair. *)
let test_online_empty_is_nan () =
  let o = Sim.Stats.Online.create () in
  Alcotest.(check int) "count" 0 (Sim.Stats.Online.count o);
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " is nan") true (Float.is_nan v))
    [
      ("mean", Sim.Stats.Online.mean o);
      ("variance", Sim.Stats.Online.variance o);
      ("stddev", Sim.Stats.Online.stddev o);
      ("min", Sim.Stats.Online.min o);
      ("max", Sim.Stats.Online.max o);
    ]

let test_online_singleton () =
  let o = Sim.Stats.Online.create () in
  Sim.Stats.Online.add o 5.;
  check_float "mean" 5. (Sim.Stats.Online.mean o);
  check_float "min" 5. (Sim.Stats.Online.min o);
  check_float "max" 5. (Sim.Stats.Online.max o);
  Alcotest.(check bool) "variance undefined" true
    (Float.is_nan (Sim.Stats.Online.variance o));
  Alcotest.(check bool) "stddev undefined" true
    (Float.is_nan (Sim.Stats.Online.stddev o))

let test_max_min_ratio_rejects_negative () =
  Alcotest.check_raises "negative value"
    (Invalid_argument "Stats.max_min_ratio: negative value") (fun () ->
      ignore (Sim.Stats.max_min_ratio [ -1.; 0. ]))

let prop_jain_bounds =
  QCheck.Test.make ~name:"jain index in (0,1]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (float_range 0.0 100.))
    (fun xs ->
      let j = Sim.Stats.jain_index xs in
      j > 0. && j <= 1. +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Series                                                              *)
(* ------------------------------------------------------------------ *)

let mk_series pts =
  let s = Sim.Series.create () in
  List.iter (fun (t, v) -> Sim.Series.add s ~time:t v) pts;
  s

let test_series_value_at () =
  let s = mk_series [ (1., 10.); (2., 20.); (3., 30.) ] in
  Alcotest.(check (option (float 1e-9))) "before" None (Sim.Series.value_at s 0.5);
  Alcotest.(check (option (float 1e-9))) "exact" (Some 10.) (Sim.Series.value_at s 1.);
  Alcotest.(check (option (float 1e-9))) "between" (Some 20.) (Sim.Series.value_at s 2.5);
  Alcotest.(check (option (float 1e-9))) "after" (Some 30.) (Sim.Series.value_at s 99.)

let test_series_rejects_decreasing () =
  let s = mk_series [ (1., 1.) ] in
  Alcotest.(check bool) "raises" true
    (try
       Sim.Series.add s ~time:0.5 2.;
       false
     with Invalid_argument _ -> true)

let test_series_integral () =
  (* Step function: 10 on [1,2), 20 on [2,3), 30 after. *)
  let s = mk_series [ (1., 10.); (2., 20.); (3., 30.) ] in
  check_float "full" (10. +. 20.) (Sim.Series.integral s ~t0:1. ~t1:3.);
  check_float "partial" (0.5 *. 10.) (Sim.Series.integral s ~t0:1. ~t1:1.5);
  check_float "beyond" (10. +. 20. +. 30.) (Sim.Series.integral s ~t0:1. ~t1:4.);
  check_float "before start" 10. (Sim.Series.integral s ~t0:0. ~t1:2.)

let test_series_window () =
  let s = mk_series [ (1., 1.); (2., 2.); (3., 3.); (4., 4.) ] in
  Alcotest.(check int) "window size" 2
    (List.length (Sim.Series.window s ~t0:2. ~t1:3.));
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9))))
    "min max" (Some (2., 3.))
    (Sim.Series.min_max_in s ~t0:2. ~t1:3.)

let test_series_degenerate_windows () =
  let s = mk_series [ (1., 1.); (2., 2.); (3., 3.); (4., 4.) ] in
  let sampleless = [ (2.2, 2.8); (10., 20.); (3., 2.) ] in
  List.iter
    (fun (t0, t1) ->
      let tag = Printf.sprintf "[%g,%g]" t0 t1 in
      Alcotest.(check int) (tag ^ " window empty") 0
        (List.length (Sim.Series.window s ~t0 ~t1));
      Alcotest.(check int) (tag ^ " values empty") 0
        (Array.length (Sim.Series.window_values s ~t0 ~t1));
      Alcotest.(check bool) (tag ^ " no extrema") true
        (Sim.Series.min_max_in s ~t0 ~t1 = None);
      Alcotest.(check bool) (tag ^ " no mean") true
        (Sim.Series.mean_in s ~t0 ~t1 = None))
    sampleless;
  (* A point window that hits a sample time exactly yields that sample. *)
  Alcotest.(check int) "point window hit" 1
    (List.length (Sim.Series.window s ~t0:3. ~t1:3.));
  check_float "point window mean" 3.
    (Option.get (Sim.Series.mean_in s ~t0:3. ~t1:3.));
  (* NaN bounds raise rather than select an arbitrary range. *)
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "nan t0 window" true
    (raises (fun () -> Sim.Series.window s ~t0:Float.nan ~t1:3.));
  Alcotest.(check bool) "nan t1 values" true
    (raises (fun () -> Sim.Series.window_values s ~t0:1. ~t1:Float.nan));
  Alcotest.(check bool) "nan min_max" true
    (raises (fun () -> Sim.Series.min_max_in s ~t0:Float.nan ~t1:Float.nan));
  Alcotest.(check bool) "nan mean" true
    (raises (fun () -> Sim.Series.mean_in s ~t0:Float.nan ~t1:2.))

let test_series_resample () =
  let s = mk_series [ (0., 5.); (1., 10.) ] in
  let grid = Sim.Series.resample s ~t0:0. ~t1:2. ~dt:0.5 in
  Alcotest.(check int) "grid points" 5 (Array.length grid);
  check_float "at 0" 5. (snd grid.(0));
  check_float "at 0.5" 5. (snd grid.(1));
  check_float "at 1.0" 10. (snd grid.(2));
  check_float "at 2.0" 10. (snd grid.(4))

let prop_series_integral_additive =
  QCheck.Test.make ~name:"series integral is additive over adjacent windows"
    ~count:100
    QCheck.(list_of_size Gen.(2 -- 20) (pair (float_range 0. 100.) (float_range 0. 10.)))
    (fun pts ->
      let pts =
        List.sort (fun (a, _) (b, _) -> Float.compare a b) pts
      in
      let s = mk_series pts in
      let a = Sim.Series.integral s ~t0:0. ~t1:50. in
      let b = Sim.Series.integral s ~t0:50. ~t1:100. in
      let whole = Sim.Series.integral s ~t0:0. ~t1:100. in
      Float.abs (a +. b -. whole) < 1e-6 *. Float.max 1. (Float.abs whole))

let test_series_map () =
  let s = mk_series [ (1., 2.); (3., 4.) ] in
  let doubled = Sim.Series.map (fun v -> 2. *. v) s in
  Alcotest.(check int) "length" 2 (Sim.Series.length doubled);
  check_float "time preserved" 1. (Sim.Series.times doubled).(0);
  check_float "value doubled" 4. (Sim.Series.values doubled).(0)

let test_series_first_last () =
  let s = mk_series [ (1., 10.); (2., 20.) ] in
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9)))) "first" (Some (1., 10.))
    (Sim.Series.first s);
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9)))) "last" (Some (2., 20.))
    (Sim.Series.last s);
  let empty = Sim.Series.create () in
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9)))) "empty first" None
    (Sim.Series.first empty)

let prop_online_matches_batch_mean =
  QCheck.Test.make ~name:"online mean matches batch mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-100.) 100.))
    (fun xs ->
      let o = Sim.Stats.Online.create () in
      List.iter (Sim.Stats.Online.add o) xs;
      let batch = Sim.Stats.mean (Array.of_list xs) in
      Float.abs (Sim.Stats.Online.mean o -. batch) < 1e-9 *. Float.max 1. (Float.abs batch))

let test_units_extras () =
  check_float_eps 1e-9 "bdp packets" 40.
    (Sim.Units.bdp_packets ~rate:(Sim.Units.mbps 12.) ~rtt:0.04 ~mss:1500);
  Alcotest.(check bool) "feq close" true (Sim.Units.feq 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "feq far" false (Sim.Units.feq 1.0 1.1)

(* ------------------------------------------------------------------ *)
(* Jitter element                                                      *)
(* ------------------------------------------------------------------ *)

let req ~arrival = { Sim.Jitter.flow = 0; arrival; sent = arrival -. 0.05 }

let test_jitter_trace_policy () =
  let j =
    Sim.Jitter.create ~bound:1. ~rng:(Sim.Rng.create ~seed:1)
      (Sim.Jitter.Trace (fun t -> t /. 10.))
  in
  check_float "uses arrival time" 1.1 (Sim.Jitter.release_time j (req ~arrival:1.));
  check_float "later arrival, larger delay" 2.42
    (Sim.Jitter.release_time j (req ~arrival:2.2))

let test_jitter_constant () =
  let j =
    Sim.Jitter.create ~bound:1. ~rng:(Sim.Rng.create ~seed:1) (Sim.Jitter.Constant 0.01)
  in
  check_float "release" 1.01 (Sim.Jitter.release_time j (req ~arrival:1.));
  Alcotest.(check int) "no violations" 0 (Sim.Jitter.violations j)

let test_jitter_no_reorder () =
  (* A big delay followed by a small one: the second packet must not pass. *)
  let calls = ref [ 0.05; 0.0 ] in
  let policy =
    Sim.Jitter.Controller
      (fun _ ->
        match !calls with
        | d :: rest ->
            calls := rest;
            d
        | [] -> 0.)
  in
  let j = Sim.Jitter.create ~bound:1. ~rng:(Sim.Rng.create ~seed:1) policy in
  let r1 = Sim.Jitter.release_time j (req ~arrival:1.0) in
  let r2 = Sim.Jitter.release_time j (req ~arrival:1.01) in
  check_float "first" 1.05 r1;
  Alcotest.(check bool) "no reorder" true (r2 >= r1)

let test_jitter_clamps_and_counts () =
  let j =
    Sim.Jitter.create ~bound:0.01 ~rng:(Sim.Rng.create ~seed:1)
      (Sim.Jitter.Constant 0.05)
  in
  let r = Sim.Jitter.release_time j (req ~arrival:2.) in
  check_float "clamped to bound" 2.01 r;
  Alcotest.(check int) "violation counted" 1 (Sim.Jitter.violations j);
  check_float "max requested" 0.05 (Sim.Jitter.max_requested j)

let test_jitter_negative_clamped () =
  let j =
    Sim.Jitter.create ~bound:0.01 ~rng:(Sim.Rng.create ~seed:1)
      (Sim.Jitter.Constant (-0.02))
  in
  let r = Sim.Jitter.release_time j (req ~arrival:2.) in
  check_float "clamped to zero" 2. r;
  Alcotest.(check int) "violation counted" 1 (Sim.Jitter.violations j)

let test_jitter_violation_accounting () =
  (* A mixed request schedule: over-bound, under-zero, legal.  The
     counters must tally every violation exactly and track the worst
     excess over the whole run, not just the last one. *)
  let requests = ref [ 0.05; -0.02; 0.005; 0.03 ] in
  let policy =
    Sim.Jitter.Controller
      (fun _ ->
        match !requests with
        | d :: rest ->
            requests := rest;
            d
        | [] -> 0.)
  in
  let j = Sim.Jitter.create ~bound:0.01 ~rng:(Sim.Rng.create ~seed:1) policy in
  for i = 1 to 4 do
    ignore (Sim.Jitter.release_time j (req ~arrival:(float_of_int i)))
  done;
  Alcotest.(check int) "three violations" 3 (Sim.Jitter.violations j);
  check_float "worst excess is the 0.05 request" 0.04 (Sim.Jitter.worst_excess j);
  check_float "max requested" 0.05 (Sim.Jitter.max_requested j)

let test_jitter_no_violation_no_excess () =
  let j =
    Sim.Jitter.create ~bound:0.01 ~rng:(Sim.Rng.create ~seed:1)
      (Sim.Jitter.Constant 0.01)
  in
  for i = 1 to 10 do
    ignore (Sim.Jitter.release_time j (req ~arrival:(float_of_int i)))
  done;
  Alcotest.(check int) "bound-riding is legal" 0 (Sim.Jitter.violations j);
  check_float "no excess" 0. (Sim.Jitter.worst_excess j)

let test_jitter_create_validates () =
  let rng () = Sim.Rng.create ~seed:1 in
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Jitter.create: Uniform lo > hi") (fun () ->
      ignore
        (Sim.Jitter.create ~rng:(rng ())
           (Sim.Jitter.Uniform { lo = 0.02; hi = 0.01 })));
  Alcotest.check_raises "negative lo"
    (Invalid_argument "Jitter.create: Uniform lo must be >= 0") (fun () ->
      ignore
        (Sim.Jitter.create ~rng:(rng ())
           (Sim.Jitter.Uniform { lo = -0.01; hi = 0.01 })));
  Alcotest.check_raises "nan hi"
    (Invalid_argument "Jitter.create: Uniform bounds must be finite") (fun () ->
      ignore
        (Sim.Jitter.create ~rng:(rng ())
           (Sim.Jitter.Uniform { lo = 0.; hi = nan })));
  Alcotest.check_raises "infinite hi"
    (Invalid_argument "Jitter.create: Uniform bounds must be finite") (fun () ->
      ignore
        (Sim.Jitter.create ~rng:(rng ())
           (Sim.Jitter.Uniform { lo = 0.; hi = infinity })));
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Jitter.create: bound must be non-negative") (fun () ->
      ignore (Sim.Jitter.create ~bound:(-0.5) ~rng:(rng ()) Sim.Jitter.No_jitter));
  (* Over-bound Uniform hi is a legal adversary: clamped and counted at
     release time, not rejected at construction. *)
  ignore
    (Sim.Jitter.create ~bound:0.01 ~rng:(rng ())
       (Sim.Jitter.Uniform { lo = 0.; hi = 0.05 }))

let prop_jitter_uniform_in_bounds =
  QCheck.Test.make ~name:"uniform jitter stays within [lo,hi] and never reorders"
    ~count:50
    QCheck.(pair small_int (float_range 0.001 0.05))
    (fun (seed, hi) ->
      let j =
        Sim.Jitter.create ~bound:hi ~rng:(Sim.Rng.create ~seed)
          (Sim.Jitter.Uniform { lo = 0.; hi })
      in
      let last = ref neg_infinity in
      let ok = ref true in
      for i = 1 to 100 do
        let arrival = float_of_int i *. 0.01 in
        let r = Sim.Jitter.release_time j (req ~arrival) in
        if r < arrival || r < !last then ok := false;
        last := r
      done;
      !ok && Sim.Jitter.violations j = 0)

(* ------------------------------------------------------------------ *)
(* Link                                                                *)
(* ------------------------------------------------------------------ *)

let test_rate_at_piecewise () =
  let r = Sim.Link.Piecewise [| (0., 100.); (1., 200.); (2., 0.) |] in
  check_float "seg0" 100. (Sim.Link.rate_at r 0.5);
  check_float "seg1" 200. (Sim.Link.rate_at r 1.5);
  check_float "seg2" 0. (Sim.Link.rate_at r 5.);
  check_float "before first" 100. (Sim.Link.rate_at r (-1.))

let test_transmit_end_constant () =
  check_float "constant" 2.
    (Sim.Link.transmit_end (Sim.Link.Constant 100.) ~start:1. ~bytes:100)

let test_transmit_end_across_segments () =
  (* 100 B/s for 1 s carries 100 B; then 200 B/s. 150 bytes from t=0:
     100 B by t=1, remaining 50 B at 200 B/s -> 0.25 s. *)
  let r = Sim.Link.Piecewise [| (0., 100.); (1., 200.) |] in
  check_float "across" 1.25 (Sim.Link.transmit_end r ~start:0. ~bytes:150)

let test_transmit_end_through_zero () =
  (* Link pauses on [1,2): transmission resumes after. *)
  let r = Sim.Link.Piecewise [| (0., 100.); (1., 0.); (2., 100.) |] in
  check_float "spans outage" 2.5 (Sim.Link.transmit_end r ~start:0.5 ~bytes:100)

let test_transmit_end_dead_link () =
  let r = Sim.Link.Piecewise [| (0., 0.) |] in
  Alcotest.(check bool) "infinite" true
    (Sim.Link.transmit_end r ~start:0. ~bytes:10 = infinity)

let mk_pkt ?(flow = 0) ?(size = 1000) seq =
  {
    Sim.Packet.flow;
    seq;
    size;
    sent_at = 0.;
    delivered_at_send = 0;
    app_limited = false;
    ce = false;
  }

let test_link_fifo_service () =
  let eq = Sim.Event_queue.create () in
  let link =
    Sim.Link.create ~eq ~rate:(Sim.Link.Constant 1000.) ~record_queue:true ()
  in
  let served = ref [] in
  Sim.Link.set_on_dequeue link (fun p -> served := p.Sim.Packet.seq :: !served);
  ignore (Sim.Link.enqueue link (mk_pkt 0));
  ignore (Sim.Link.enqueue link (mk_pkt 1));
  Sim.Event_queue.run eq;
  Alcotest.(check (list int)) "fifo order" [ 0; 1 ] (List.rev !served);
  check_float "service time" 2. (Sim.Event_queue.now eq);
  Alcotest.(check int) "delivered bytes" 2000 (Sim.Link.delivered_bytes link)

let test_link_drop_tail () =
  let eq = Sim.Event_queue.create () in
  let link =
    Sim.Link.create ~eq ~rate:(Sim.Link.Constant 1000.) ~buffer:2500
      ~record_queue:false ()
  in
  Sim.Link.set_on_dequeue link (fun _ -> ());
  Alcotest.(check bool) "first fits" true (Sim.Link.enqueue link (mk_pkt 0) = `Enqueued);
  Alcotest.(check bool) "second fits" true (Sim.Link.enqueue link (mk_pkt 1) = `Enqueued);
  Alcotest.(check bool) "third dropped" true (Sim.Link.enqueue link (mk_pkt 2) = `Dropped);
  Alcotest.(check int) "drop count" 1 (Sim.Link.drops link)

let test_link_queue_delay () =
  let eq = Sim.Event_queue.create () in
  let link =
    Sim.Link.create ~eq ~rate:(Sim.Link.Constant 1000.) ~record_queue:false ()
  in
  Sim.Link.set_on_dequeue link (fun _ -> ());
  ignore (Sim.Link.enqueue link (mk_pkt 0));
  ignore (Sim.Link.enqueue link (mk_pkt 1));
  check_float "two packets queued" 2. (Sim.Link.queue_delay link)

let test_link_counters_under_full_buffer () =
  (* Hammer a full buffer and check every counter: drops, dropped bytes,
     offered bytes, ECN marks, and the conservation identity the
     invariant monitor relies on. *)
  let eq = Sim.Event_queue.create () in
  let link =
    Sim.Link.create ~eq ~rate:(Sim.Link.Constant 1000.) ~buffer:3000
      ~ecn_threshold:1000 ~record_queue:false ()
  in
  Sim.Link.set_on_dequeue link (fun _ -> ());
  for seq = 0 to 9 do
    ignore (Sim.Link.enqueue link (mk_pkt seq))
  done;
  (* 3 admitted (3000-byte buffer), 7 dropped at the tail. *)
  Alcotest.(check int) "drops" 7 (Sim.Link.drops link);
  Alcotest.(check int) "dropped bytes" 7000 (Sim.Link.dropped_bytes link);
  Alcotest.(check int) "offered bytes" 10_000 (Sim.Link.offered_bytes link);
  Alcotest.(check int) "queued bytes" 3000 (Sim.Link.queued_bytes link);
  (* Arrivals strictly above the 1000-byte threshold get CE-marked: only
     the 3rd admitted packet saw a 2000-byte queue. *)
  Alcotest.(check int) "ce marks" 1 (Sim.Link.ce_marks link);
  Sim.Event_queue.run eq;
  Alcotest.(check int) "delivered bytes" 3000 (Sim.Link.delivered_bytes link);
  Alcotest.(check int) "conservation" (Sim.Link.offered_bytes link)
    (Sim.Link.delivered_bytes link + Sim.Link.dropped_bytes link
    + Sim.Link.queued_bytes link)

let test_link_set_buffer () =
  (* Shrinking below the occupancy never evicts; it only blocks new
     admissions until the queue drains below the new cap. *)
  let eq = Sim.Event_queue.create () in
  let link =
    Sim.Link.create ~eq ~rate:(Sim.Link.Constant 1000.) ~buffer:3000
      ~record_queue:false ()
  in
  Sim.Link.set_on_dequeue link (fun _ -> ());
  for seq = 0 to 2 do
    ignore (Sim.Link.enqueue link (mk_pkt seq))
  done;
  Alcotest.(check int) "full" 3000 (Sim.Link.queued_bytes link);
  Sim.Link.set_buffer link (Some 1000);
  Alcotest.(check bool) "no eviction" true (Sim.Link.queued_bytes link = 3000);
  Alcotest.(check bool) "admission blocked" true
    (Sim.Link.enqueue link (mk_pkt 3) = `Dropped);
  Alcotest.(check (option int)) "accessor" (Some 1000) (Sim.Link.buffer link);
  Alcotest.(check bool) "rejects negative" true
    (try Sim.Link.set_buffer link (Some (-1)); false
     with Invalid_argument _ -> true)

(* More link properties *)

let prop_link_conserves_bytes =
  QCheck.Test.make ~name:"link conserves bytes (in = out + queued + dropped)"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (pair (float_range 0. 1.) (int_range 100 2000)))
    (fun arrivals ->
      let eq = Sim.Event_queue.create () in
      let link =
        Sim.Link.create ~eq ~rate:(Sim.Link.Constant 10_000.) ~buffer:5_000
          ~record_queue:false ()
      in
      let delivered = ref 0 in
      Sim.Link.set_on_dequeue link (fun p -> delivered := !delivered + p.Sim.Packet.size);
      let sent = ref 0 and dropped = ref 0 in
      let arrivals = List.sort (fun (a, _) (b, _) -> Float.compare a b) arrivals in
      List.iteri
        (fun i (t, size) ->
          Sim.Event_queue.schedule eq ~at:t (fun () ->
              sent := !sent + size;
              match Sim.Link.enqueue link (mk_pkt ~size i) with
              | `Dropped -> dropped := !dropped + size
              | `Enqueued -> ()))
        arrivals;
      Sim.Event_queue.run eq;
      (* After the queue drains completely: *)
      !sent = !delivered + !dropped && Sim.Link.queued_bytes link = 0)

let prop_transmit_end_consistent_with_rate =
  QCheck.Test.make
    ~name:"piecewise transmit_end delivers exactly the requested bytes" ~count:200
    QCheck.(triple (float_range 0. 5.) (int_range 1 100_000)
              (list_of_size Gen.(1 -- 5) (float_range 100. 10_000.)))
    (fun (start, bytes, seg_rates) ->
      (* Breakpoints at 1s intervals. *)
      let segs =
        Array.of_list (List.mapi (fun i r -> (float_of_int i, r)) seg_rates)
      in
      let rate = Sim.Link.Piecewise segs in
      let finish = Sim.Link.transmit_end rate ~start ~bytes in
      if not (Float.is_finite finish) then true
      else begin
        (* Numerically integrate the rate over [start, finish]. *)
        let n = 20_000 in
        let dt = (finish -. start) /. float_of_int n in
        let acc = ref 0. in
        for k = 0 to n - 1 do
          let t = start +. ((float_of_int k +. 0.5) *. dt) in
          acc := !acc +. (Sim.Link.rate_at rate t *. dt)
        done;
        Float.abs (!acc -. float_of_int bytes)
        < 0.01 *. Float.max 1. (float_of_int bytes)
      end)

(* Exact cross-check of [transmit_end] against [rate_at]: the rate is
   piecewise constant, so integrating it between consecutive cut points
   (breakpoints clipped to the interval), sampling each piece at its
   midpoint, is exact up to float rounding — no discretization error,
   unlike the sampled property above.  Rates include 0 so outages and the
   dead-tail/infinity branch are exercised. *)
let piecewise_integral rate segs ~t0 ~t1 =
  let cuts =
    Array.to_list (Array.map fst segs)
    |> List.filter (fun c -> c > t0 && c < t1)
    |> List.sort_uniq Float.compare
  in
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        go (acc +. (Sim.Link.rate_at rate ((a +. b) /. 2.) *. (b -. a))) rest
    | _ -> acc
  in
  go 0. ((t0 :: cuts) @ [ t1 ])

let prop_transmit_end_exact_integral =
  QCheck.Test.make
    ~name:"piecewise transmit_end agrees with exact rate_at integral"
    ~count:500
    QCheck.(triple (float_range 0. 6.) (int_range 0 50_000)
              (list_of_size Gen.(1 -- 6)
                 (pair (float_range 0.1 2.) (int_range 0 3))))
    (fun (start, bytes, spec) ->
      (* Irregular breakpoints (cumulative gaps); rates drawn from a set
         containing 0 so zero-rate segments are common. *)
      let rates = [| 0.; 500.; 5_000.; 50_000. |] in
      let t = ref 0. in
      let segs =
        Array.of_list
          (List.map
             (fun (gap, ri) ->
               t := !t +. gap;
               (!t, rates.(ri)))
             spec)
      in
      let rate = Sim.Link.Piecewise segs in
      let finish = Sim.Link.transmit_end rate ~start ~bytes in
      let b = float_of_int bytes in
      if Float.is_finite finish then
        finish >= start
        && Float.abs (piecewise_integral rate segs ~t0:start ~t1:finish -. b)
           <= 1e-6 *. Float.max 1. b
      else begin
        (* [infinity] is only correct when the final segment's rate is 0
           and the finite prefix cannot carry the payload. *)
        let last = fst segs.(Array.length segs - 1) in
        let upto = Float.max last start in
        Sim.Link.rate_at rate (upto +. 1.) = 0.
        && piecewise_integral rate segs ~t0:start ~t1:upto < b
      end)

(* ------------------------------------------------------------------ *)
(* AQM                                                                 *)
(* ------------------------------------------------------------------ *)

let test_aqm_threshold () =
  let a = Sim.Aqm.threshold ~mark_above:10_000 in
  Alcotest.(check bool) "below passes" true
    (Sim.Aqm.on_enqueue a ~now:0. ~queue_bytes:5_000 = Sim.Aqm.Pass);
  Alcotest.(check bool) "above marks" true
    (Sim.Aqm.on_enqueue a ~now:0. ~queue_bytes:15_000 = Sim.Aqm.Mark);
  Alcotest.(check int) "one mark counted" 1 (Sim.Aqm.marks a);
  Alcotest.(check bool) "dequeue passes" true
    (Sim.Aqm.on_dequeue a ~now:1. ~sojourn:10. = Sim.Aqm.Pass)

let test_aqm_red_regimes () =
  let a =
    Sim.Aqm.red ~wq:1.0 ~max_p:0.5 ~min_th:10_000 ~max_th:20_000
      ~rng:(Sim.Rng.create ~seed:4) ()
  in
  (* wq = 1 makes the EWMA track the instantaneous queue. *)
  Alcotest.(check bool) "below min_th never marks" true
    (Sim.Aqm.on_enqueue a ~now:0. ~queue_bytes:5_000 = Sim.Aqm.Pass);
  Alcotest.(check bool) "above max_th always marks" true
    (Sim.Aqm.on_enqueue a ~now:0. ~queue_bytes:30_000 = Sim.Aqm.Mark);
  (* In between: marks with some probability — over many trials both
     outcomes must appear. *)
  let marked = ref 0 and passed = ref 0 in
  for _ = 1 to 200 do
    match Sim.Aqm.on_enqueue a ~now:0. ~queue_bytes:15_000 with
    | Sim.Aqm.Mark -> incr marked
    | Sim.Aqm.Pass -> incr passed
  done;
  Alcotest.(check bool) "probabilistic region marks some" true (!marked > 0);
  Alcotest.(check bool) "and passes some" true (!passed > 0)

let test_aqm_red_validates () =
  Alcotest.(check bool) "max_th <= min_th rejected" true
    (try
       ignore (Sim.Aqm.red ~min_th:10 ~max_th:10 ~rng:(Sim.Rng.create ~seed:1) ());
       false
     with Invalid_argument _ -> true)

let test_aqm_codel () =
  let a = Sim.Aqm.codel ~target:0.005 ~interval:0.1 () in
  (* Sojourn below target: never marks. *)
  Alcotest.(check bool) "below target passes" true
    (Sim.Aqm.on_dequeue a ~now:0. ~sojourn:0.001 = Sim.Aqm.Pass);
  (* Sojourn above target but only briefly: still passes. *)
  Alcotest.(check bool) "first above passes" true
    (Sim.Aqm.on_dequeue a ~now:0.01 ~sojourn:0.01 = Sim.Aqm.Pass);
  Alcotest.(check bool) "still within interval" true
    (Sim.Aqm.on_dequeue a ~now:0.05 ~sojourn:0.01 = Sim.Aqm.Pass);
  (* Above target for a full interval: marking starts. *)
  Alcotest.(check bool) "marks after interval" true
    (Sim.Aqm.on_dequeue a ~now:0.12 ~sojourn:0.01 = Sim.Aqm.Mark);
  (* Dropping below target resets the state. *)
  Alcotest.(check bool) "reset below target" true
    (Sim.Aqm.on_dequeue a ~now:0.2 ~sojourn:0.001 = Sim.Aqm.Pass);
  Alcotest.(check bool) "needs a fresh interval" true
    (Sim.Aqm.on_dequeue a ~now:0.25 ~sojourn:0.01 = Sim.Aqm.Pass)

let test_aqm_codel_accelerates () =
  (* Once in the marking state, the sqrt control law shortens the gap
     between successive marks. *)
  let a = Sim.Aqm.codel ~target:0.005 ~interval:0.1 () in
  let marks = ref [] in
  let dt = 0.005 in
  for i = 0 to 400 do
    let now = float_of_int i *. dt in
    match Sim.Aqm.on_dequeue a ~now ~sojourn:0.02 with
    | Sim.Aqm.Mark -> marks := now :: !marks
    | Sim.Aqm.Pass -> ()
  done;
  let marks = List.rev !marks in
  Alcotest.(check bool) "several marks" true (List.length marks >= 4);
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b -. a) :: gaps rest
    | _ -> []
  in
  let gs = gaps marks in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> b <= a +. 1e-9 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "gaps shrink" true (non_increasing gs)

let test_aqm_red_monotone_in_depth () =
  let count_marks depth =
    let a =
      Sim.Aqm.red ~wq:1.0 ~max_p:0.3 ~min_th:10_000 ~max_th:30_000
        ~rng:(Sim.Rng.create ~seed:42) ()
    in
    let n = ref 0 in
    for _ = 1 to 500 do
      if Sim.Aqm.on_enqueue a ~now:0. ~queue_bytes:depth = Sim.Aqm.Mark then incr n
    done;
    !n
  in
  let shallow = count_marks 12_000 and deep = count_marks 28_000 in
  Alcotest.(check bool)
    (Printf.sprintf "deeper queue marks more (%d vs %d)" deep shallow)
    true (deep > 2 * shallow)

let test_link_ecn_marking () =
  let eq = Sim.Event_queue.create () in
  let link =
    Sim.Link.create ~eq ~rate:(Sim.Link.Constant 1000.) ~ecn_threshold:1500
      ~record_queue:false ()
  in
  Sim.Link.set_on_dequeue link (fun _ -> ());
  let p0 = mk_pkt 0 and p1 = mk_pkt 1 and p2 = mk_pkt 2 in
  ignore (Sim.Link.enqueue link p0);
  ignore (Sim.Link.enqueue link p1);
  ignore (Sim.Link.enqueue link p2);
  Alcotest.(check bool) "first unmarked" false p0.Sim.Packet.ce;
  Alcotest.(check bool) "second unmarked (at threshold)" false p1.Sim.Packet.ce;
  Alcotest.(check bool) "third marked" true p2.Sim.Packet.ce;
  Alcotest.(check int) "mark counter" 1 (Sim.Link.ce_marks link)

let test_link_rejects_double_aqm () =
  let eq = Sim.Event_queue.create () in
  Alcotest.(check bool) "both aqm args rejected" true
    (try
       ignore
         (Sim.Link.create ~eq ~rate:(Sim.Link.Constant 1.) ~ecn_threshold:1
            ~aqm:(Sim.Aqm.threshold ~mark_above:1) ~record_queue:false ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Trace-driven link (Mahimahi-style opportunities)                    *)
(* ------------------------------------------------------------------ *)

let opp = Sim.Link.Opportunities { times = [| 0.1; 0.5; 0.9 |]; period = 1.; bytes = 1500 }

let test_opportunities_transmit_end () =
  check_float "first" 0.1 (Sim.Link.transmit_end opp ~start:0. ~bytes:1500);
  check_float "strictly after" 0.5 (Sim.Link.transmit_end opp ~start:0.1 ~bytes:1500);
  check_float "wraps" 1.1 (Sim.Link.transmit_end opp ~start:0.95 ~bytes:1500);
  check_float "second cycle" 1.5 (Sim.Link.transmit_end opp ~start:1.2 ~bytes:1500)

let test_opportunities_rate_at () =
  check_float "average rate" 4500. (Sim.Link.rate_at opp 123.)

let test_opportunities_service () =
  let eq = Sim.Event_queue.create () in
  let link = Sim.Link.create ~eq ~rate:opp ~record_queue:false () in
  let served_at = ref [] in
  Sim.Link.set_on_dequeue link (fun _ -> served_at := Sim.Event_queue.now eq :: !served_at);
  for i = 0 to 3 do
    ignore (Sim.Link.enqueue link (mk_pkt i))
  done;
  Sim.Event_queue.run eq;
  Alcotest.(check (list (float 1e-9))) "served at opportunity instants"
    [ 0.1; 0.5; 0.9; 1.1 ] (List.rev !served_at)

let test_opportunities_strict_advance_far_from_origin () =
  (* Regression: at large absolute times, [base + times.(i)] can round to
     exactly [start]; the lookup must keep advancing rather than serving
     infinite packets in zero time. *)
  let times = Array.init 991 (fun i -> Float.of_int i *. 0.00201817) in
  let trace = Sim.Link.Opportunities { times; period = 2.; bytes = 1500 } in
  let t = ref 1000.0 (* far from the origin *) in
  for _ = 1 to 5000 do
    let next = Sim.Link.transmit_end trace ~start:!t ~bytes:1500 in
    Alcotest.(check bool) "strictly advances" true (next > !t);
    t := next
  done;
  (* 5000 packets at ~495.5 opportunities/s take ~10.1 s. *)
  Alcotest.(check bool)
    (Printf.sprintf "rate respected (reached %.2f)" !t)
    true
    (!t -. 1000. > 9.)

let test_cellular_trace_mean_rate () =
  let rng = Sim.Rng.create ~seed:5 in
  let mean_rate = Sim.Units.mbps 12. in
  let trace =
    Sim.Link.cellular_trace ~rng ~period:2. ~mean_rate ~burstiness:4. ()
  in
  let avg = Sim.Link.rate_at trace 0. in
  Alcotest.(check bool)
    (Printf.sprintf "avg %.0f within 25%% of %.0f" avg mean_rate)
    true
    (Float.abs (avg -. mean_rate) < 0.25 *. mean_rate);
  match trace with
  | Sim.Link.Opportunities { times; period; _ } ->
      Alcotest.(check bool) "times sorted in [0, period)" true
        (Array.for_all (fun t -> t >= 0. && t < period) times
        &&
        let ok = ref true in
        for i = 1 to Array.length times - 1 do
          if times.(i) < times.(i - 1) then ok := false
        done;
        !ok)
  | _ -> Alcotest.fail "expected an opportunity trace"

let test_mahimahi_loader () =
  let path = Filename.temp_file "mmtrace" ".trace" in
  let oc = open_out path in
  output_string oc "# comment\n0\n1\n1\n3\n\n10\n";
  close_out oc;
  let trace = Sim.Link.load_mahimahi_trace path in
  (match trace with
  | Sim.Link.Opportunities { times; period; bytes } ->
      Alcotest.(check int) "count" 5 (Array.length times);
      check_float "period = last ms" 0.01 period;
      Alcotest.(check int) "mtu" 1500 bytes;
      (* Duplicate timestamps are legal (two opportunities in one ms). *)
      check_float "first" 0. times.(0)
  | _ -> Alcotest.fail "expected opportunities");
  Sys.remove path

let test_mahimahi_loader_rejects_garbage () =
  let reject content =
    let path = Filename.temp_file "mmtrace" ".trace" in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    let r =
      try
        ignore (Sim.Link.load_mahimahi_trace path);
        false
      with Invalid_argument _ -> true
    in
    Sys.remove path;
    r
  in
  Alcotest.(check bool) "non-numeric" true (reject "abc\n");
  Alcotest.(check bool) "negative" true (reject "-5\n");
  Alcotest.(check bool) "unsorted" true (reject "5\n3\n");
  Alcotest.(check bool) "empty" true (reject "# nothing\n")

let test_bundled_trace_runs () =
  (* The repo ships a synthetic cellular trace; a flow must push real
     traffic through it.  Tests run from the build sandbox, so resolve the
     path from the project root if needed. *)
  let candidates = [ "data/cellular5s.trace"; "../data/cellular5s.trace";
                     "../../data/cellular5s.trace"; "../../../data/cellular5s.trace" ] in
  match List.find_opt Sys.file_exists candidates with
  | None -> () (* sandboxed layout without the data dir: nothing to check *)
  | Some path ->
      let trace = Sim.Link.load_mahimahi_trace path in
      let cfg =
        Sim.Network.config ~rate:trace ~buffer:(90 * 1500) ~rm:0.04 ~duration:10.
          [ Sim.Network.flow (Cubic.make ()) ]
      in
      let net = Sim.Network.run_config cfg in
      let u = Sim.Network.utilization net () in
      Alcotest.(check bool) (Printf.sprintf "utilization %.2f" u) true (u > 0.5)

let test_cellular_trace_validates () =
  let rng = Sim.Rng.create ~seed:1 in
  Alcotest.(check bool) "burstiness < 1 rejected" true
    (try
       ignore
         (Sim.Link.cellular_trace ~rng ~period:1. ~mean_rate:1e6 ~burstiness:0.5 ());
       false
     with Invalid_argument _ -> true)

let test_reno_on_cellular_link () =
  (* End to end: Reno should still push reasonable utilization through a
     bursty opportunity trace. *)
  let rng = Sim.Rng.create ~seed:9 in
  let mean_rate = Sim.Units.mbps 12. in
  let trace = Sim.Link.cellular_trace ~rng ~period:1. ~mean_rate ~burstiness:3. () in
  let cfg =
    Sim.Network.config ~rate:trace ~buffer:(60 * 1500) ~rm:0.04 ~duration:20.
      [ Sim.Network.flow (Reno.make ()) ]
  in
  let net = Sim.Network.run_config cfg in
  let u = Sim.Network.utilization net () in
  Alcotest.(check bool) (Printf.sprintf "utilization %.2f > 0.5" u) true (u > 0.5)

(* ------------------------------------------------------------------ *)
(* DRR scheduling                                                      *)
(* ------------------------------------------------------------------ *)

let test_drr_rejects_bad_quantum () =
  let eq = Sim.Event_queue.create () in
  Alcotest.(check bool) "quantum 0 rejected" true
    (try
       ignore
         (Sim.Link.create ~eq ~rate:(Sim.Link.Constant 1.)
            ~discipline:(Sim.Link.Drr { quantum = 0 }) ~record_queue:false ());
       false
     with Invalid_argument _ -> true)

let test_drr_interleaves_backlogged_flows () =
  (* Two flows dump 10 packets each simultaneously; DRR must alternate
     service between them rather than draining flow 0 first. *)
  let eq = Sim.Event_queue.create () in
  let link =
    Sim.Link.create ~eq ~rate:(Sim.Link.Constant 1500.)
      ~discipline:(Sim.Link.Drr { quantum = 1500 }) ~record_queue:false ()
  in
  let order = ref [] in
  Sim.Link.set_on_dequeue link (fun p -> order := p.Sim.Packet.flow :: !order);
  for i = 0 to 9 do
    ignore (Sim.Link.enqueue link (mk_pkt ~flow:0 ~size:1500 i));
    ignore (Sim.Link.enqueue link (mk_pkt ~flow:1 ~size:1500 i))
  done;
  Sim.Event_queue.run eq;
  let order = List.rev !order in
  Alcotest.(check int) "all served" 20 (List.length order);
  (* In any window of 4 consecutive services, both flows appear. *)
  let arr = Array.of_list order in
  for i = 0 to Array.length arr - 4 do
    let window = Array.sub arr i 4 in
    Alcotest.(check bool) "interleaved" true
      (Array.exists (fun f -> f = 0) window && Array.exists (fun f -> f = 1) window)
  done

let test_drr_equal_service_unequal_demand () =
  (* A greedy flow and a modest flow: the modest flow's packets must not
     wait behind the greedy flow's whole backlog. *)
  let eq = Sim.Event_queue.create () in
  let link =
    Sim.Link.create ~eq ~rate:(Sim.Link.Constant 15000.)
      ~discipline:(Sim.Link.Drr { quantum = 1500 }) ~record_queue:false ()
  in
  let finish_time = Hashtbl.create 8 in
  Sim.Link.set_on_dequeue link (fun p ->
      Hashtbl.replace finish_time (p.Sim.Packet.flow, p.Sim.Packet.seq)
        (Sim.Event_queue.now eq));
  (* Greedy: 50 packets; modest: 2 packets, enqueued after the burst. *)
  for i = 0 to 49 do
    ignore (Sim.Link.enqueue link (mk_pkt ~flow:0 ~size:1500 i))
  done;
  for i = 0 to 1 do
    ignore (Sim.Link.enqueue link (mk_pkt ~flow:1 ~size:1500 i))
  done;
  Sim.Event_queue.run eq;
  let modest_done = Hashtbl.find finish_time (1, 1) in
  let greedy_done = Hashtbl.find finish_time (0, 49) in
  (* The modest flow's 2 packets finish within ~5 service slots, not after
     the greedy flow's 50. *)
  Alcotest.(check bool)
    (Printf.sprintf "modest at %.2fs long before greedy at %.2fs" modest_done
       greedy_done)
    true
    (modest_done < 0.6 && greedy_done > 4.9)

let test_drr_on_trace_link () =
  (* The scheduler and the opportunity-trace service compose. *)
  let eq = Sim.Event_queue.create () in
  let link =
    Sim.Link.create ~eq ~rate:opp ~discipline:(Sim.Link.Drr { quantum = 1500 })
      ~record_queue:false ()
  in
  let served = ref [] in
  Sim.Link.set_on_dequeue link (fun p -> served := p.Sim.Packet.flow :: !served);
  for i = 0 to 2 do
    (* Packet size equal to the quantum gives strict alternation. *)
    ignore (Sim.Link.enqueue link (mk_pkt ~flow:0 ~size:1500 i));
    ignore (Sim.Link.enqueue link (mk_pkt ~flow:1 ~size:1500 i))
  done;
  Sim.Event_queue.run eq;
  let served = List.rev !served in
  Alcotest.(check int) "all served" 6 (List.length served);
  (* DRR interleaves: both flows appear within any 3 consecutive services
     (flow 0's head start on the first opportunity shifts the phase, so
     strict alternation from index 0 is not guaranteed). *)
  let arr = Array.of_list served in
  for i = 0 to Array.length arr - 3 do
    let w = Array.sub arr i 3 in
    Alcotest.(check bool) "window has both" true
      (Array.exists (fun f -> f = 0) w && Array.exists (fun f -> f = 1) w)
  done;
  Alcotest.(check int) "flow 0 total" 3
    (List.length (List.filter (fun f -> f = 0) served))

let test_drr_work_conserving () =
  (* One flow alone must get the full rate despite the scheduler. *)
  let eq = Sim.Event_queue.create () in
  let link =
    Sim.Link.create ~eq ~rate:(Sim.Link.Constant 1500.)
      ~discipline:(Sim.Link.Drr { quantum = 750 }) ~record_queue:false ()
  in
  let done_ = ref 0 in
  Sim.Link.set_on_dequeue link (fun _ -> incr done_);
  for i = 0 to 4 do
    ignore (Sim.Link.enqueue link (mk_pkt ~flow:3 ~size:1500 i))
  done;
  Sim.Event_queue.run eq;
  Alcotest.(check int) "all served" 5 !done_;
  Alcotest.(check (float 1e-6)) "at full rate" 5. (Sim.Event_queue.now eq)

(* ------------------------------------------------------------------ *)
(* Flow behaviors                                                      *)
(* ------------------------------------------------------------------ *)

let test_flow_rto_fires () =
  (* A link that dies after the first packets: the flow must declare the
     outstanding data lost via its retransmission timer and tell the CCA. *)
  let rate = Sim.Link.Piecewise [| (0., 1.5e5); (0.05, 0.) |] in
  let cfg =
    Sim.Network.config ~rate ~rm:0.02 ~duration:3.
      [ Sim.Network.flow (Reno.make ()) ]
  in
  let net = Sim.Network.run_config cfg in
  let f = (Sim.Network.flows net).(0) in
  Alcotest.(check bool) "losses recorded" true (Sim.Flow.lost_bytes f > 0);
  (* The flow keeps probing the dead link with its post-timeout window, so
     in-flight data is bounded by that one-segment window (plus the probe
     in the queue), not by the original flight. *)
  Alcotest.(check bool) "inflight collapsed to the timeout window" true
    (Sim.Flow.inflight f <= 2 * 1500)

let test_flow_initial_pacing_spreads_sends () =
  (* With initial pacing at the link rate, the queue should never build
     during the first flight. *)
  let rate = Sim.Units.mbps 12. in
  let run pacing =
    let spec =
      Sim.Network.flow ?initial_pacing:pacing (Cca.make_stub ~cwnd_bytes:1.5e6 ())
    in
    let cfg =
      Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.04 ~duration:0.5
        ~record_queue:true [ spec ]
    in
    let net = Sim.Network.run_config cfg in
    (* Initial pacing only covers the opening flight (until the first ACK
       at ~Rm), so compare queue peaks within that window. *)
    let qs =
      Sim.Series.window_values
        (Sim.Link.queue_series (Sim.Network.link net))
        ~t0:0. ~t1:0.03
    in
    Array.fold_left Float.max 0. qs
  in
  let burst_peak = run None in
  let paced_peak = run (Some rate) in
  Alcotest.(check bool)
    (Printf.sprintf "paced peak %.0f << burst peak %.0f" paced_peak burst_peak)
    true
    (paced_peak < burst_peak /. 10.)

let test_flow_dupack_loss_detection () =
  (* Drop exactly one packet mid-stream: packet-threshold detection must
     report one dup-ack loss, not a timeout. *)
  let losses = ref [] in
  let base = Reno.make () in
  let cca =
    { base with
      Cca.on_loss = (fun l -> losses := l :: !losses; base.Cca.on_loss l) }
  in
  let rate = Sim.Units.mbps 12. in
  let spec = Sim.Network.flow ~loss_rate:0.002 cca in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.02 ~duration:5. [ spec ]
  in
  ignore (Sim.Network.run_config cfg);
  Alcotest.(check bool) "some losses" true (!losses <> []);
  Alcotest.(check bool) "all dupack, no timeout" true
    (List.for_all (fun (l : Cca.loss_info) -> l.kind = `Dupack) !losses);
  Alcotest.(check bool) "send times attached" true
    (List.for_all (fun (l : Cca.loss_info) -> l.lost_packets <> []) !losses)

let test_flow_ce_propagates () =
  (* ECN marks set by the link must reach the CCA via ack_info. *)
  let saw_ce = ref false in
  let base = Cca.make_stub ~cwnd_bytes:1.5e6 () in
  let cca =
    { base with
      Cca.on_ack = (fun a -> if a.Cca.ecn_ce then saw_ce := true) }
  in
  let rate = Sim.Units.mbps 4. in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant rate) ~ecn_threshold:3000 ~rm:0.02
      ~duration:2.
      [ Sim.Network.flow cca ]
  in
  ignore (Sim.Network.run_config cfg);
  Alcotest.(check bool) "CE echoed to sender" true !saw_ce

(* ------------------------------------------------------------------ *)
(* Units                                                               *)
(* ------------------------------------------------------------------ *)

let test_units_roundtrip () =
  check_float_eps 1e-9 "mbps" 12. (Sim.Units.to_mbps (Sim.Units.mbps 12.));
  check_float_eps 1e-9 "ms" 42. (Sim.Units.to_ms (Sim.Units.ms 42.));
  Alcotest.(check int) "bdp" 60000
    (Sim.Units.bdp_bytes ~rate:(Sim.Units.mbps 12.) ~rtt:0.04)

(* ------------------------------------------------------------------ *)
(* Network integration                                                 *)
(* ------------------------------------------------------------------ *)

let run_single ?buffer ?(duration = 20.) ?(rm = 0.04) ?(rate = Sim.Units.mbps 12.)
    ?jitter ?jitter_bound ?ack_policy ?loss_rate cca =
  let spec = Sim.Network.flow ?jitter ?jitter_bound ?ack_policy ?loss_rate cca in
  Sim.Network.run_config
    (Sim.Network.config ~rate:(Sim.Link.Constant rate) ?buffer ~rm ~duration [ spec ])

let test_network_reno_utilizes () =
  let rate = Sim.Units.mbps 12. in
  let buffer = Sim.Units.bdp_bytes ~rate ~rtt:0.04 in
  let net = run_single ~buffer (Reno.make ()) in
  let u = Sim.Network.utilization net () in
  Alcotest.(check bool) (Printf.sprintf "reno utilization %.2f > 0.8" u) true (u > 0.8)

let test_network_vegas_queue_target () =
  let net = run_single (Vegas.make ()) in
  let f = (Sim.Network.flows net).(0) in
  (* At 12 Mbit/s one packet takes 1 ms; Vegas keeps 2..4 packets queued,
     plus the packet's own transmission time in the RTT. *)
  let rtts = Sim.Series.window_values (Sim.Flow.rtt_series f) ~t0:15. ~t1:20. in
  let mx = Array.fold_left Float.max 0. rtts in
  let mn = Array.fold_left Float.min infinity rtts in
  Alcotest.(check bool) "rtt stable in [42,46] ms" true
    (mn >= 0.041 && mx <= 0.0461)

let test_network_rtt_floor () =
  (* No queueing: RTT can never fall below Rm + transmission time. *)
  let net = run_single (Const_cwnd.make ~cwnd_packets:2. ()) in
  let f = (Sim.Network.flows net).(0) in
  let rtts = Sim.Series.values (Sim.Flow.rtt_series f) in
  let mn = Array.fold_left Float.min infinity rtts in
  let tx = 1500. /. Sim.Units.mbps 12. in
  Alcotest.(check bool) "floor respected" true (mn >= 0.04 +. tx -. 1e-9)

let test_network_two_flows_share () =
  let rate = Sim.Units.mbps 12. in
  let buffer = Sim.Units.bdp_bytes ~rate ~rtt:0.04 in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm:0.04 ~duration:60.
      [ Sim.Network.flow (Reno.make ()); Sim.Network.flow (Reno.make ()) ]
  in
  let net = Sim.Network.run_config cfg in
  let xs = Sim.Network.throughputs net () in
  let ratio = Float.max xs.(0) xs.(1) /. Float.min xs.(0) xs.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "reno/reno ratio %.2f < 2" ratio)
    true (ratio < 2.)

let test_network_constant_jitter_inflates_rtt () =
  let net =
    run_single ~jitter:(Sim.Jitter.Constant 0.01) ~jitter_bound:0.02
      (Const_cwnd.make ~cwnd_packets:2. ())
  in
  let f = (Sim.Network.flows net).(0) in
  let rtts = Sim.Series.window_values (Sim.Flow.rtt_series f) ~t0:10. ~t1:20. in
  let mn = Array.fold_left Float.min infinity rtts in
  Alcotest.(check bool) "rtt >= rm + jitter" true (mn >= 0.05)

let test_network_random_loss_counted () =
  let net = run_single ~loss_rate:0.1 ~duration:10. (Const_cwnd.make ()) in
  Alcotest.(check bool) "losses happened" true ((Sim.Network.random_losses net).(0) > 0)

let test_network_delayed_ack_timeout_flush () =
  (* A 2-packet window with delayed ACKs of 4 would deadlock without the
     timeout flush: the receiver holds 2 ACKs < count, the sender stalls.
     The timeout must release them and keep the flow alive. *)
  let spec =
    Sim.Network.flow
      ~ack_policy:(Sim.Network.Delayed { count = 4; timeout = 0.05 })
      (Cca.make_stub ~cwnd_bytes:3000. ())
  in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant (Sim.Units.mbps 12.)) ~rm:0.04
      ~duration:5. [ spec ]
  in
  let net = Sim.Network.run_config cfg in
  let f = (Sim.Network.flows net).(0) in
  Alcotest.(check bool) "flow made progress" true (Sim.Flow.delivered_bytes f > 30_000)

let test_eq_schedule_after_negative_clamped () =
  let eq = Sim.Event_queue.create () in
  Sim.Event_queue.run_until eq 1.0;
  let fired_at = ref nan in
  Sim.Event_queue.schedule_after eq ~delay:(-5.) (fun () ->
      fired_at := Sim.Event_queue.now eq);
  Sim.Event_queue.run eq;
  check_float "clamped to now" 1.0 !fired_at

let test_network_delayed_ack_batches () =
  (* With delayed ACKs of 4, the number of ACK events is about 1/4 the
     packets; cumulative delivered bytes must still match. *)
  let spec =
    Sim.Network.flow
      ~ack_policy:(Sim.Network.Delayed { count = 4; timeout = 0.5 })
      (Const_cwnd.make ~cwnd_packets:8. ())
  in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant (Sim.Units.mbps 12.)) ~rm:0.04
      ~duration:10. [ spec ]
  in
  let net = Sim.Network.run_config cfg in
  let f = (Sim.Network.flows net).(0) in
  let acks = Sim.Series.length (Sim.Flow.rtt_series f) in
  let delivered_pkts = Sim.Flow.delivered_bytes f / 1500 in
  Alcotest.(check bool)
    (Printf.sprintf "acks %d ~ packets/4 %d" acks (delivered_pkts / 4))
    true
    (acks <= (delivered_pkts / 4) + 8)

let test_network_ack_aggregation_quantizes () =
  let period = 0.06 in
  let spec =
    Sim.Network.flow ~ack_policy:(Sim.Network.Aggregate { period })
      (Const_cwnd.make ~cwnd_packets:4. ())
  in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant (Sim.Units.mbps 12.)) ~rm:0.04
      ~duration:10. [ spec ]
  in
  let net = Sim.Network.run_config cfg in
  let f = (Sim.Network.flows net).(0) in
  let times = Sim.Series.times (Sim.Flow.rtt_series f) in
  let on_grid t =
    let k = Float.round (t /. period) in
    Float.abs (t -. (k *. period)) < 1e-6
  in
  Alcotest.(check bool) "all acks on the grid" true (Array.for_all on_grid times)

let test_network_initial_queue_delays_first_rtt () =
  (* Phantom bytes create an initial standing queue. *)
  let spec = Sim.Network.flow (Const_cwnd.make ~cwnd_packets:1. ()) in
  let rate = Sim.Units.mbps 12. in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.04 ~duration:5.
      ~initial_queue_bytes:15000 [ spec ]
  in
  let net = Sim.Network.run_config cfg in
  let f = (Sim.Network.flows net).(0) in
  match Sim.Series.first (Sim.Flow.rtt_series f) with
  | None -> Alcotest.fail "no rtt sample"
  | Some (_, rtt) ->
      (* 15000 B at 1.5e6 B/s = 10 ms of initial queueing. *)
      Alcotest.(check bool)
        (Printf.sprintf "first rtt %.4f >= 0.05" rtt)
        true (rtt >= 0.05)

let test_flow_inspect_series () =
  let rate = Sim.Units.mbps 12. in
  let spec = Sim.Network.flow ~inspect_period:0.1 (Vegas.make ()) in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.02 ~duration:2. [ spec ]
  in
  let net = Sim.Network.run_config cfg in
  let f = (Sim.Network.flows net).(0) in
  let series = Sim.Flow.inspect_series f in
  Alcotest.(check bool) "has cwnd internal" true (List.mem_assoc "cwnd" series);
  let cwnd = List.assoc "cwnd" series in
  Alcotest.(check bool)
    (Printf.sprintf "~20 samples, got %d" (Sim.Series.length cwnd))
    true
    (Sim.Series.length cwnd >= 15 && Sim.Series.length cwnd <= 25)

let test_network_config_validation () =
  let mk_cfg ?(flows = [ Sim.Network.flow (Reno.make ()) ]) ?(duration = 1.)
      ?(rm = 0.01) ?loss_rate () =
    let flows =
      match loss_rate with
      | Some p -> [ Sim.Network.flow ~loss_rate:p (Reno.make ()) ]
      | None -> flows
    in
    Sim.Network.config ~rate:(Sim.Link.Constant 1e6) ~rm ~duration flows
  in
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty flows" true (rejects (fun () -> mk_cfg ~flows:[] ()));
  Alcotest.(check bool) "zero duration" true (rejects (fun () -> mk_cfg ~duration:0. ()));
  Alcotest.(check bool) "negative rm" true (rejects (fun () -> mk_cfg ~rm:(-0.1) ()));
  Alcotest.(check bool) "loss rate 1" true (rejects (fun () -> mk_cfg ~loss_rate:1. ()));
  Alcotest.(check bool) "stop before start" true
    (rejects (fun () ->
         Sim.Network.config ~rate:(Sim.Link.Constant 1e6) ~rm:0.01 ~duration:1.
           [ Sim.Network.flow ~start_time:5. ~stop_time:4. (Reno.make ()) ]));
  (* And a valid config passes. *)
  ignore (mk_cfg ())

let test_network_ack_policy_validation () =
  let mk policy =
    Sim.Network.config ~rate:(Sim.Link.Constant 1e6) ~rm:0.01 ~duration:1.
      [ Sim.Network.flow ~ack_policy:policy (Reno.make ()) ]
  in
  let rejects p = try ignore (mk p); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "delayed count 0" true
    (rejects (Sim.Network.Delayed { count = 0; timeout = 0.01 }));
  Alcotest.(check bool) "delayed timeout 0" true
    (rejects (Sim.Network.Delayed { count = 2; timeout = 0. }));
  Alcotest.(check bool) "delayed timeout nan" true
    (rejects (Sim.Network.Delayed { count = 2; timeout = Float.nan }));
  Alcotest.(check bool) "aggregate period 0" true
    (rejects (Sim.Network.Aggregate { period = 0. }));
  Alcotest.(check bool) "aggregate negative period" true
    (rejects (Sim.Network.Aggregate { period = -0.1 }));
  ignore (mk (Sim.Network.Delayed { count = 2; timeout = 0.01 }));
  ignore (mk (Sim.Network.Aggregate { period = 0.02 }));
  ignore (mk Sim.Network.Immediate)

let test_network_deterministic () =
  let mk () =
    let rate = Sim.Units.mbps 12. in
    let buffer = Sim.Units.bdp_bytes ~rate ~rtt:0.04 in
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm:0.04
         ~duration:20. ~seed:9
         [
           Sim.Network.flow ~loss_rate:0.01 (Reno.make ());
           Sim.Network.flow (Cubic.make ());
         ])
  in
  let a = Sim.Network.throughputs (mk ()) () in
  let b = Sim.Network.throughputs (mk ()) () in
  check_float "flow0 identical" a.(0) b.(0);
  check_float "flow1 identical" a.(1) b.(1)

let test_network_accessor_lengths () =
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant 1e6) ~rm:0.01 ~duration:1.
      [ Sim.Network.flow (Reno.make ()); Sim.Network.flow (Reno.make ());
        Sim.Network.flow (Reno.make ()) ]
  in
  let net = Sim.Network.run_config cfg in
  Alcotest.(check int) "flows" 3 (Array.length (Sim.Network.flows net));
  Alcotest.(check int) "jitters" 3 (Array.length (Sim.Network.jitters net));
  Alcotest.(check int) "random losses" 3 (Array.length (Sim.Network.random_losses net));
  Array.iter
    (fun n -> Alcotest.(check int) "no random losses configured" 0 n)
    (Sim.Network.random_losses net);
  Alcotest.(check int) "throughputs" 3
    (Array.length (Sim.Network.throughputs net ()))

let test_network_flow_start_stop () =
  let rate = Sim.Units.mbps 12. in
  let buffer = Sim.Units.bdp_bytes ~rate ~rtt:0.04 in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm:0.04 ~duration:30.
      [
        Sim.Network.flow (Reno.make ());
        Sim.Network.flow ~start_time:10. ~stop_time:20. (Reno.make ());
      ]
  in
  let net = Sim.Network.run_config cfg in
  let late = (Sim.Network.flows net).(1) in
  let x_before = Sim.Flow.throughput late ~t0:0. ~t1:10. in
  let x_during = Sim.Flow.throughput late ~t0:12. ~t1:20. in
  let x_after = Sim.Flow.throughput late ~t0:25. ~t1:30. in
  Alcotest.(check bool) "silent before start" true (x_before = 0.);
  Alcotest.(check bool) "active during window" true (x_during > 0.);
  Alcotest.(check bool) "silent after stop" true (x_after < x_during /. 10.)

(* Integration property: random small scenarios must respect physical
   invariants — capacity, nonnegative inflight, RTT floor. *)
let prop_network_physical_invariants =
  QCheck.Test.make ~name:"random scenarios respect capacity and RTT floor" ~count:25
    QCheck.(
      quad (int_range 0 3) (* cca selector *)
        (float_range 2. 24.) (* Mbit/s *)
        (float_range 0.005 0.08) (* rm *)
        (float_range 0. 0.01) (* jitter bound *))
    (fun (cca_i, mbps, rm, jit) ->
      let make_cca () =
        match cca_i with
        | 0 -> Reno.make ()
        | 1 -> Vegas.make ()
        | 2 -> Copa.make ()
        | _ -> Fast_tcp.make ()
      in
      let rate = Sim.Units.mbps mbps in
      let duration = 5. in
      let jitter =
        if jit > 0. then Some (Sim.Jitter.Uniform { lo = 0.; hi = jit }) else None
      in
      let cfg =
        Sim.Network.config ~rate:(Sim.Link.Constant rate)
          ~buffer:(4 * Sim.Units.bdp_bytes ~rate ~rtt:rm)
          ~rm ~duration
          [
            Sim.Network.flow ?jitter ~jitter_bound:jit (make_cca ());
            Sim.Network.flow (make_cca ());
          ]
      in
      let net = Sim.Network.run_config cfg in
      let flows = Sim.Network.flows net in
      let total_delivered =
        Array.fold_left (fun acc f -> acc + Sim.Flow.delivered_bytes f) 0 flows
      in
      (* Capacity: the link can serve at most rate * duration (+1 pkt). *)
      let capacity_ok = float_of_int total_delivered <= (rate *. duration) +. 1500. in
      let inflight_ok = Array.for_all (fun f -> Sim.Flow.inflight f >= 0) flows in
      let floor = rm +. (1500. /. rate) -. 1e-9 in
      let rtt_ok =
        Array.for_all
          (fun f ->
            Array.for_all (fun v -> v >= floor)
              (Sim.Series.values (Sim.Flow.rtt_series f)))
          flows
      in
      capacity_ok && inflight_ok && rtt_ok)

(* ------------------------------------------------------------------ *)
(* Event-queue handles                                                 *)
(* ------------------------------------------------------------------ *)

let test_eq_handle_reschedule () =
  let eq = Sim.Event_queue.create () in
  let fired = ref [] in
  let h = Sim.Event_queue.handle (fun () -> fired := "h" :: !fired) in
  Alcotest.(check bool) "idle" false (Sim.Event_queue.is_scheduled h);
  Sim.Event_queue.schedule_handle eq h ~at:5.0;
  Alcotest.(check bool) "scheduled" true (Sim.Event_queue.is_scheduled h);
  check_float "time" 5.0 (Sim.Event_queue.scheduled_time eq h);
  (* Moving an armed handle must not duplicate it. *)
  Sim.Event_queue.schedule_handle eq h ~at:2.0;
  Alcotest.(check int) "one entry" 1 (Sim.Event_queue.pending eq);
  Sim.Event_queue.schedule eq ~at:3.0 (fun () -> fired := "x" :: !fired);
  Sim.Event_queue.run eq;
  Alcotest.(check (list string)) "moved before x" [ "h"; "x" ] (List.rev !fired);
  Alcotest.(check bool) "idle after fire" false (Sim.Event_queue.is_scheduled h)

let test_eq_handle_cancel () =
  let eq = Sim.Event_queue.create () in
  let fired = ref [] in
  let h = Sim.Event_queue.handle (fun () -> fired := "h" :: !fired) in
  Sim.Event_queue.schedule_handle eq h ~at:1.0;
  Sim.Event_queue.schedule eq ~at:2.0 (fun () -> fired := "x" :: !fired);
  Sim.Event_queue.cancel eq h;
  Alcotest.(check bool) "idle after cancel" false (Sim.Event_queue.is_scheduled h);
  (* Physical deletion: the cancelled entry no longer counts as pending. *)
  Alcotest.(check int) "pending" 1 (Sim.Event_queue.pending eq);
  Sim.Event_queue.run eq;
  Alcotest.(check (list string)) "only x" [ "x" ] (List.rev !fired);
  check_float "idle scheduled_time" infinity (Sim.Event_queue.scheduled_time eq h)

let test_eq_handle_fifo_ties () =
  (* A moved handle takes a fresh sequence number, so it ties like a
     newly scheduled event: after every earlier-scheduled event at the
     same time. *)
  let eq = Sim.Event_queue.create () in
  let fired = ref [] in
  let h = Sim.Event_queue.handle (fun () -> fired := "h" :: !fired) in
  Sim.Event_queue.schedule_handle eq h ~at:1.0;
  Sim.Event_queue.schedule eq ~at:2.0 (fun () -> fired := "a" :: !fired);
  Sim.Event_queue.schedule_handle eq h ~at:2.0;
  Sim.Event_queue.schedule eq ~at:2.0 (fun () -> fired := "b" :: !fired);
  Sim.Event_queue.run eq;
  Alcotest.(check (list string)) "tie order" [ "a"; "h"; "b" ] (List.rev !fired)

(* ------------------------------------------------------------------ *)
(* Delay line                                                          *)
(* ------------------------------------------------------------------ *)

(* The correctness claim the per-flow delay lines rest on: delivery
   times and order are exactly those of scheduling every payload as its
   own event.  Pushes happen at increasing sim times with arbitrary
   (possibly non-monotone) due offsets, so the fallback path is
   exercised too.  With a monotone due schedule (fallbacks = 0 — the
   only regime Network uses, enforced by Jitter's clamp) the match must
   be exact, ties included.  A fallback event can legitimately order
   differently against a ring re-arm at the very same timestamp, so
   with fallbacks > 0 we require the same per-payload delivery times
   (order within a tie may differ). *)
let prop_delay_line_matches_naive =
  QCheck.Test.make
    ~name:"delay line delivers like naive per-packet scheduling" ~count:300
    QCheck.(list_of_size Gen.(0 -- 30) (pair (int_range 0 5) (int_range 0 3)))
    (fun steps ->
      let run use_line =
        let eq = Sim.Event_queue.create () in
        let log = ref [] in
        let line =
          Sim.Delay_line.create ~eq ~dummy:(-1) (fun k ->
              log := (Sim.Event_queue.now eq, k) :: !log)
        in
        let t = ref 0. in
        List.iteri
          (fun k (offset, gap) ->
            let push_at = !t in
            let due = push_at +. (float_of_int offset *. 0.1) in
            Sim.Event_queue.schedule eq ~at:push_at (fun () ->
                if use_line then Sim.Delay_line.push line ~due k
                else
                  Sim.Event_queue.schedule eq ~at:due (fun () ->
                      log := (Sim.Event_queue.now eq, k) :: !log));
            t := !t +. (float_of_int gap *. 0.1))
          steps;
        Sim.Event_queue.run eq;
        (List.rev !log, Sim.Delay_line.fallbacks line)
      in
      let line_log, fallbacks = run true in
      let naive_log, _ = run false in
      if fallbacks = 0 then line_log = naive_log
      else List.sort compare line_log = List.sort compare naive_log)

let test_delay_line_fallback_counted () =
  let eq = Sim.Event_queue.create () in
  let log = ref [] in
  let line =
    Sim.Delay_line.create ~eq ~dummy:(-1) (fun k ->
        log := (Sim.Event_queue.now eq, k) :: !log)
  in
  Sim.Delay_line.push line ~due:5.0 1;
  (* Non-monotone: would overtake payload 1 inside the ring. *)
  Sim.Delay_line.push line ~due:3.0 2;
  Alcotest.(check int) "fallbacks" 1 (Sim.Delay_line.fallbacks line);
  Alcotest.(check int) "pushes" 2 (Sim.Delay_line.pushes line);
  Sim.Event_queue.run eq;
  Alcotest.(check (list (pair (float 1e-9) int)))
    "delivered in time order" [ (3.0, 2); (5.0, 1) ] (List.rev !log)

let test_delay_line_one_pending_event () =
  let eq = Sim.Event_queue.create () in
  let line = Sim.Delay_line.create ~eq ~dummy:(-1) (fun _ -> ()) in
  for k = 0 to 99 do
    Sim.Delay_line.push line ~due:(float_of_int k) k
  done;
  Alcotest.(check int) "queued" 100 (Sim.Delay_line.length line);
  (* The whole backlog is represented by a single event-queue entry. *)
  Alcotest.(check int) "one event" 1 (Sim.Event_queue.pending eq);
  Sim.Event_queue.run eq;
  Alcotest.(check int) "drained" 0 (Sim.Delay_line.length line)

(* ------------------------------------------------------------------ *)
(* Source                                                              *)
(* ------------------------------------------------------------------ *)

let test_source_poisson_count () =
  (* A Poisson(rate) source over [0, T] generates ~rate*T arrivals;
     5 sigma = 5 sqrt(rate*T) bounds the count with false-positive
     probability < 1e-6. *)
  let eq = Sim.Event_queue.create () in
  let rng = Sim.Rng.create ~seed:5 in
  let rate = 500. and horizon = 20. in
  let src =
    Sim.Source.create ~eq ~rng ~arrivals:(Sim.Source.Poisson { rate })
      ~sizes:(Sim.Source.Fixed 1000) ~until:horizon
      ~send:(fun _ -> ())
      ()
  in
  Sim.Event_queue.run_until eq horizon;
  let expect = rate *. horizon in
  let slack = 5. *. sqrt expect in
  let n = float_of_int (Sim.Source.sent_packets src) in
  Alcotest.(check bool)
    (Printf.sprintf "count %g within %g +/- %g" n expect slack)
    true
    (Float.abs (n -. expect) <= slack);
  Alcotest.(check int) "bytes = 1000 * packets"
    (1000 * Sim.Source.sent_packets src)
    (Sim.Source.sent_bytes src)

(* ------------------------------------------------------------------ *)
(* Event-queue step hook                                               *)
(* ------------------------------------------------------------------ *)

let test_eq_step_hook_observes_every_step () =
  let eq = Sim.Event_queue.create () in
  let seen = ref [] in
  Sim.Event_queue.set_step_hook eq (Some (fun now -> seen := now :: !seen));
  List.iter
    (fun t -> Sim.Event_queue.schedule eq ~at:t (fun () -> ()))
    [ 3.; 1.; 2. ];
  Sim.Event_queue.run eq;
  Alcotest.(check (list (float 0.))) "hook saw the advanced clock, in order"
    [ 1.; 2.; 3. ] (List.rev !seen);
  (* Removing the hook stops observation; no stale closure fires. *)
  Sim.Event_queue.set_step_hook eq None;
  Sim.Event_queue.schedule eq ~at:4. (fun () -> ());
  Sim.Event_queue.run eq;
  Alcotest.(check int) "no observation after removal" 3 (List.length !seen)

(* ------------------------------------------------------------------ *)
(* Hot-path resource envelope                                          *)
(* ------------------------------------------------------------------ *)

let bdp_reno_config ~nflows =
  let rate = Sim.Units.mbps 12. in
  Sim.Network.config ~rate:(Sim.Link.Constant rate)
    ~buffer:(Sim.Units.bdp_bytes ~rate ~rtt:0.04) ~rm:0.04 ~duration:1.
    (List.init nflows (fun _ -> Sim.Network.flow (Reno.make ())))

(* With per-flow delay lines and preallocated timer handles, event-queue
   occupancy is O(flows + link), not O(packets in flight): each flow
   owns at most a data line + ACK line + 3 timers, the link one
   completion slot.  The old per-packet scheduler peaked at 44 entries
   on this exact run. *)
let test_network_event_queue_peak () =
  let net = Sim.Network.build (bdp_reno_config ~nflows:2) in
  let eq = Sim.Network.event_queue net in
  let peak = ref 0 in
  while Sim.Event_queue.now eq < 1.0 && Sim.Event_queue.step eq do
    peak := max !peak (Sim.Event_queue.pending eq)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "peak %d <= 16" !peak)
    true (!peak <= 16);
  Alcotest.(check int) "no delay-line fallbacks" 0
    (Sim.Network.delay_line_fallbacks net)

(* Allocation budget: the 1 s Reno run must stay under 80 minor words
   per delivered packet (measured ~32-45 after the allocation-light
   rewrite; the pre-rewrite hot path cost ~166).  Bytecode boxes
   differently, so the budget only binds on the native backend. *)
let test_network_minor_words_budget () =
  match Sys.backend_type with
  | Sys.Native ->
      let cfg = bdp_reno_config ~nflows:1 in
      ignore (Sim.Network.run_config cfg) (* warm up *);
      let w0 = Gc.minor_words () in
      let net = Sim.Network.run_config cfg in
      let minor = Gc.minor_words () -. w0 in
      let pkts = Sim.Flow.delivered_bytes (Sim.Network.flows net).(0) / 1500 in
      let per_pkt = minor /. float_of_int pkts in
      Alcotest.(check bool)
        (Printf.sprintf "%.1f minor words/packet <= 80 over %d packets" per_pkt
           pkts)
        true
        (pkts > 500 && per_pkt <= 80.)
  | Sys.Bytecode | Sys.Other _ -> ()

(* ------------------------------------------------------------------ *)
(* Series window queries (binary-search rewrite)                       *)
(* ------------------------------------------------------------------ *)

let prop_series_window_queries_match_naive =
  QCheck.Test.make
    ~name:"series window queries match brute force" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 30) (float_range 0. 10.))
        (pair (float_range (-1.) 11.) (float_range (-1.) 11.)))
    (fun (vals, (a, b)) ->
      let s = Sim.Series.create () in
      List.iteri (fun i v -> Sim.Series.add s ~time:(float_of_int i) v) vals;
      let t0 = Float.min a b and t1 = Float.max a b in
      let naive =
        List.filteri (fun i _ -> float_of_int i >= t0 && float_of_int i <= t1) vals
      in
      let got = Array.to_list (Sim.Series.window_values s ~t0 ~t1) in
      let mean_ok =
        match (Sim.Series.mean_in s ~t0 ~t1, naive) with
        | None, [] -> true
        | Some m, (_ :: _ as l) ->
            m = List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
        | _ -> false
      in
      let minmax_ok =
        match (Sim.Series.min_max_in s ~t0 ~t1, naive) with
        | None, [] -> true
        | Some (mn, mx), (h :: _ as l) ->
            mn = List.fold_left Float.min h l && mx = List.fold_left Float.max h l
        | _ -> false
      in
      got = naive && mean_ok && minmax_ok)

(* ------------------------------------------------------------------ *)
(* Timer-wheel backend and million-flow scale                          *)
(* ------------------------------------------------------------------ *)

(* The wheel/heap contract is exact: both backends consume one global
   sequence number per insertion and compare exactly, so any trace of
   schedules, cancels, re-arms and interleaved pops must fire in the
   same order under both. *)
let prop_eq_backend_equivalence =
  QCheck.Test.make
    ~name:"wheel and heap backends pop identically under random traces"
    ~count:150
    QCheck.(
      list_of_size
        Gen.(0 -- 80)
        (triple (int_range 0 4) (int_range 0 7) (int_range 0 200000)))
    (fun ops ->
      let run backend =
        (* A low, trace-dependent threshold: 0 forces every insertion
           through the wheel (cascade coverage); small nonzero values
           make traces cross it mid-run, mixing overflow-era and
           wheel-era residents in one queue. *)
        let wheel_threshold = 7 * List.length ops mod 23 in
        let eq = Sim.Event_queue.create ~backend ~wheel_threshold () in
        let log = ref [] in
        let handles =
          Array.init 8 (fun i ->
              Sim.Event_queue.handle (fun () -> log := i :: !log))
        in
        List.iteri
          (fun j (op, hi, t) ->
            let at = Sim.Event_queue.now eq +. (float_of_int t *. 1e-5) in
            match op with
            | 0 | 1 -> Sim.Event_queue.schedule_handle eq handles.(hi) ~at
            | 2 ->
                (* far beyond the wheel horizon: the overflow-heap path *)
                Sim.Event_queue.schedule_handle eq handles.(hi)
                  ~at:(at +. 1e8)
            | 3 -> Sim.Event_queue.cancel eq handles.(hi)
            | _ ->
                let tag = 100 + j in
                Sim.Event_queue.schedule eq ~at (fun () -> log := tag :: !log))
          ops;
        (* Interleave a partial drain with fresh arming: the due-heap
           handoff only happens when pops and inserts mix. *)
        for _ = 1 to 5 do
          ignore (Sim.Event_queue.step eq)
        done;
        List.iteri
          (fun j (op, hi, t) ->
            if op = 0 then
              Sim.Event_queue.schedule_handle eq handles.(hi)
                ~at:(Sim.Event_queue.now eq +. (float_of_int (t + j) *. 1e-5)))
          ops;
        Sim.Event_queue.run eq;
        List.rev !log
      in
      run Sim.Event_queue.Heap = run Sim.Event_queue.Wheel)

let test_eq_peak_100k_flows () =
  (* The census workload shape at full scale: 100k sized flows armed in
     one queue.  Build is O(n); the queue's population equals the flow
     count exactly (one start event each), and the first slice of the
     run executes without disturbing the clock contract. *)
  let n = 100_000 in
  let specs =
    List.init n (fun i ->
        Sim.Network.flow
          ~start_time:(float_of_int i *. 1e-4)
          ~record_series:false ~size_bytes:3000
          (Cca.make_stub ~cwnd_bytes:3000. ()))
  in
  let cfg =
    Sim.Network.config
      ~rate:(Sim.Link.Constant (Sim.Units.mbps 96.))
      ~rm:0.01 ~duration:20. specs
  in
  let net = Sim.Network.build cfg in
  let eq = Sim.Network.event_queue net in
  Alcotest.(check int) "one pending start event per flow" n
    (Sim.Event_queue.pending eq);
  Sim.Network.run_to net 0.05;
  Alcotest.(check bool) "early starts executed, rest pending" true
    (Sim.Event_queue.pending eq > n / 2);
  check_float "clock at slice horizon" 0.05 (Sim.Event_queue.now eq)

let test_network_backend_equivalence () =
  (* End-to-end: a full simulation evolves identically under both
     backends — every component digest except the scheduler's own
     (whose fold encodes backend-specific structure: the same armed
     events live in different containers) must agree. *)
  let cfg backend =
    Sim.Network.config
      ~rate:(Sim.Link.Constant (Sim.Units.mbps 24.))
      ~rm:0.02 ~duration:3. ~backend
      [
        Sim.Network.flow (Reno.make ());
        Sim.Network.flow ~jitter:(Sim.Jitter.Constant 0.005)
          ~jitter_bound:0.005 (Reno.make ());
      ]
  in
  let fp backend =
    List.filter
      (fun (name, _) -> name <> "event-queue")
      (Sim.Network.fingerprint (Sim.Network.run_config (cfg backend)))
  in
  let heap = fp Sim.Event_queue.Heap and wheel = fp Sim.Event_queue.Wheel in
  List.iter2
    (fun (n1, d1) (n2, d2) ->
      Alcotest.(check string) ("component name " ^ n1) n1 n2;
      Alcotest.(check string) ("digest " ^ n1) d1 d2)
    heap wheel

let test_flow_table_memory_bounded () =
  (* 10k idle flows in one shared table must cost a bounded number of
     heap words each.  The old eager 1024-slot outstanding rings alone
     were ~2k words per flow; the 16-slot rings plus the
     structure-of-arrays table keep the whole flow a few hundred. *)
  let n = 10_000 in
  let eq = Sim.Event_queue.create () in
  let table = Sim.Flow.Table.create ~capacity:n () in
  Gc.full_major ();
  let before = (Gc.stat ()).Gc.live_words in
  let flows =
    Array.init n (fun i ->
        Sim.Flow.create ~eq ~id:i
          ~cca:(Cca.make_stub ~cwnd_bytes:3000. ())
          ~start_time:5. ~record_series:false ~table
          ~transmit:(fun _ -> ())
          ())
  in
  Gc.full_major ();
  let after = (Gc.stat ()).Gc.live_words in
  let per_flow = (after - before) / n in
  Alcotest.(check bool)
    (Printf.sprintf "%d live words per idle flow (bound 1000)" per_flow)
    true (per_flow <= 1000);
  ignore (Sys.opaque_identity flows)

let test_network_sized_flow_completes () =
  let size = 15_000 in
  let cfg =
    Sim.Network.config
      ~rate:(Sim.Link.Constant (Sim.Units.mbps 12.))
      ~rm:0.02 ~duration:5.
      [ Sim.Network.flow ~size_bytes:size (Reno.make ()) ]
  in
  let net = Sim.Network.run_config cfg in
  let f = (Sim.Network.flows net).(0) in
  Alcotest.(check bool) "completed" true (Sim.Flow.completed f);
  Alcotest.(check int) "delivered its size" size (Sim.Flow.delivered_bytes f);
  (match Sim.Flow.completion_time f with
  | Some ct ->
      Alcotest.(check bool) "finished early" true (ct < 1.);
      let g = (Sim.Network.goodputs net).(0) in
      Alcotest.(check bool) "goodput over own lifetime" true
        (g > float_of_int size /. 1.)
  | None -> Alcotest.fail "no completion time");
  (* Completion quiesces the flow: no timers left re-arming forever. *)
  Alcotest.(check int) "event queue drained" 0
    (Sim.Event_queue.pending (Sim.Network.event_queue net))

(* Scripted window driver for the outstanding ring: a stub CCA whose
   window we resize by hand, ACKs delivered oldest-first on command.
   Every ACK triggers sends synchronously, so op sequences walk the ring
   head (min_out) and tail (next_seq) through arbitrary phases of the
   16-slot initial capacity — growth must relocate a live wrapped window
   without corrupting it. *)
let prop_flow_ring_growth_conservation =
  QCheck.Test.make
    ~name:"outstanding ring survives growth at any wrap phase" ~count:100
    QCheck.(list_of_size Gen.(1 -- 150) (int_range 0 3))
    (fun ops ->
      let mss = 1500 in
      let eq = Sim.Event_queue.create () in
      let cw = ref (float_of_int (4 * mss)) in
      let base = Cca.make_stub ~cwnd_bytes:!cw () in
      let cca = { base with Cca.cwnd = (fun () -> !cw) } in
      let sent = Queue.create () in
      let flow =
        Sim.Flow.create ~eq ~id:0 ~cca ~start_time:0. ~record_series:false
          ~transmit:(fun p -> Queue.push p sent)
          ()
      in
      Sim.Event_queue.run_until eq 0.;
      let ok = ref true in
      let check () =
        ok :=
          !ok
          && Sim.Flow.inflight flow = Sim.Flow.outstanding_bytes flow
          && Sim.Flow.sent_bytes flow
             = Sim.Flow.delivered_bytes flow + Sim.Flow.inflight flow
      in
      List.iter
        (fun op ->
          (match op with
          | 0 | 1 ->
              (* grow the window one segment: pushes next_seq across the
                 capacity boundary while min_out sits anywhere *)
              cw := !cw +. float_of_int mss;
              if not (Queue.is_empty sent) then
                Sim.Flow.receive_ack_one flow (Queue.pop sent)
          | 2 -> cw := Float.max (float_of_int mss) (!cw -. float_of_int mss)
          | _ ->
              if not (Queue.is_empty sent) then
                Sim.Flow.receive_ack_one flow (Queue.pop sent));
          check ())
        ops;
      (* Drain: close the window first — the stream is infinite, so with
         any window open each ACK would trigger a fresh send and the
         queue would never empty — then ack everything outstanding. *)
      cw := 0.;
      while not (Queue.is_empty sent) do
        Sim.Flow.receive_ack_one flow (Queue.pop sent);
        check ()
      done;
      !ok && Sim.Flow.inflight flow = 0)

let test_ratio_summary () =
  let s = Sim.Stats.ratio_summary [| 1.; 2.; 4.; 0. |] in
  Alcotest.(check int) "total" 4 s.Sim.Stats.total;
  Alcotest.(check int) "starved" 1 s.Sim.Stats.starved;
  check_float "p50 over live ratios" 2. s.Sim.Stats.p50;
  check_float "max ratio" 4. s.Sim.Stats.max_ratio;
  let even = Sim.Stats.ratio_summary [| 5.; 5.; 5. |] in
  Alcotest.(check int) "none starved" 0 even.Sim.Stats.starved;
  check_float "fair p99" 1. even.Sim.Stats.p99;
  let dead = Sim.Stats.ratio_summary [| 0.; 0. |] in
  Alcotest.(check int) "all starved" 2 dead.Sim.Stats.starved;
  check_float "quantiles zeroed, not inf" 0. dead.Sim.Stats.p99;
  check_float "max zeroed, not inf" 0. dead.Sim.Stats.max_ratio

let test_ratio_summary_rejects () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty" true
    (raises (fun () -> Sim.Stats.ratio_summary [||]));
  Alcotest.(check bool) "negative" true
    (raises (fun () -> Sim.Stats.ratio_summary [| 1.; -2. |]));
  Alcotest.(check bool) "nan" true
    (raises (fun () -> Sim.Stats.ratio_summary [| nan |]));
  Alcotest.(check bool) "infinite rate" true
    (raises (fun () -> Sim.Stats.ratio_summary [| infinity |]))

let prop_ratio_summary_finite =
  QCheck.Test.make ~name:"ratio summary never emits inf or nan" ~count:300
    QCheck.(list_of_size Gen.(1 -- 40) (float_range 0. 1e9))
    (fun xs ->
      let s = Sim.Stats.ratio_summary (Array.of_list xs) in
      List.for_all Float.is_finite
        [ s.Sim.Stats.p50; s.Sim.Stats.p90; s.Sim.Stats.p99; s.Sim.Stats.max_ratio ]
      && s.Sim.Stats.starved <= s.Sim.Stats.total)

let test_rng_pareto () =
  let g = Sim.Rng.create ~seed:7 in
  let xm = 10. and alpha = 1.5 in
  let n = 20_000 in
  let draws = Array.init n (fun _ -> Sim.Rng.pareto g ~alpha ~xm) in
  Alcotest.(check bool) "all >= xm" true (Array.for_all (fun x -> x >= xm) draws);
  (* The heavy tail makes the sample mean unreliable; the median is
     xm * 2^(1/alpha) and concentrates fast. *)
  let med = Sim.Stats.median draws in
  let expect = xm *. Float.exp (Float.log 2. /. alpha) in
  Alcotest.(check bool)
    (Printf.sprintf "median %.3f within 5%% of %.3f" med expect)
    true
    (Float.abs (med -. expect) /. expect < 0.05);
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad alpha" true
    (raises (fun () -> Sim.Rng.pareto g ~alpha:0. ~xm));
  Alcotest.(check bool) "bad xm" true
    (raises (fun () -> Sim.Rng.pareto g ~alpha ~xm:(-1.)))

(* ------------------------------------------------------------------ *)
(* In-place ratio summary                                              *)
(* ------------------------------------------------------------------ *)

(* Independent oracle: the pre-columnar implementation (filtered copy of
   the live rates, {!Stats.percentile} per quantile).  The in-place path
   must reproduce it bit for bit. *)
let ratio_summary_oracle xs =
  let n = Array.length xs in
  let mx = Array.fold_left Float.max 0. xs in
  let live =
    Array.of_list (List.filter (fun x -> x > 0.) (Array.to_list xs))
  in
  let starved = n - Array.length live in
  if Array.length live = 0 then
    {
      Sim.Stats.total = n;
      starved;
      p50 = 0.;
      p90 = 0.;
      p99 = 0.;
      max_ratio = 0.;
    }
  else begin
    let ratios = Array.map (fun x -> mx /. x) live in
    let q p = Sim.Stats.percentile ratios p in
    {
      Sim.Stats.total = n;
      starved;
      p50 = q 50.;
      p90 = q 90.;
      p99 = q 99.;
      max_ratio =
        Float.max 1. (Array.fold_left Float.max neg_infinity ratios);
    }
  end

let prop_ratio_summary_in_place_matches =
  QCheck.Test.make
    ~name:"in-place ratio summary matches the copying oracle bit for bit"
    ~count:300
    QCheck.(
      list_of_size Gen.(1 -- 60)
        (oneof [ float_range 0. 1e9; always 0. ]))
    (fun xs ->
      let a = Array.of_list xs in
      let got = Sim.Stats.ratio_summary_in_place (Array.copy a) in
      let via_copy = Sim.Stats.ratio_summary a in
      let expect = ratio_summary_oracle a in
      let beq x y = Int64.bits_of_float x = Int64.bits_of_float y in
      let same s1 s2 =
        s1.Sim.Stats.total = s2.Sim.Stats.total
        && s1.Sim.Stats.starved = s2.Sim.Stats.starved
        && beq s1.Sim.Stats.p50 s2.Sim.Stats.p50
        && beq s1.Sim.Stats.p90 s2.Sim.Stats.p90
        && beq s1.Sim.Stats.p99 s2.Sim.Stats.p99
        && beq s1.Sim.Stats.max_ratio s2.Sim.Stats.max_ratio
      in
      same got expect && same via_copy expect)

(* Degenerate inputs exercised directly against the in-place variant:
   the qcheck oracle above covers the bulk distribution, but the edge
   cases (empty, singleton, all-equal, all-starved, rejects) deserve
   named assertions that fail individually. *)
let test_ratio_summary_in_place_degenerate () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty raises" true
    (raises (fun () -> Sim.Stats.ratio_summary_in_place [||]));
  let single = Sim.Stats.ratio_summary_in_place [| 3.5 |] in
  Alcotest.(check int) "single total" 1 single.Sim.Stats.total;
  Alcotest.(check int) "single starved" 0 single.Sim.Stats.starved;
  check_float "single p50" 1. single.Sim.Stats.p50;
  check_float "single p99" 1. single.Sim.Stats.p99;
  check_float "single max" 1. single.Sim.Stats.max_ratio;
  let equal = Sim.Stats.ratio_summary_in_place (Array.make 17 2.25) in
  Alcotest.(check int) "all-equal starved" 0 equal.Sim.Stats.starved;
  check_float "all-equal p50" 1. equal.Sim.Stats.p50;
  check_float "all-equal p99" 1. equal.Sim.Stats.p99;
  check_float "all-equal max" 1. equal.Sim.Stats.max_ratio;
  let dead = Sim.Stats.ratio_summary_in_place [| 0.; 0.; 0. |] in
  Alcotest.(check int) "all-starved count" 3 dead.Sim.Stats.starved;
  check_float "all-starved quantiles zeroed" 0. dead.Sim.Stats.p99;
  check_float "all-starved max zeroed" 0. dead.Sim.Stats.max_ratio;
  Alcotest.(check bool) "nan raises" true
    (raises (fun () -> Sim.Stats.ratio_summary_in_place [| 1.; nan |]));
  Alcotest.(check bool) "negative raises" true
    (raises (fun () -> Sim.Stats.ratio_summary_in_place [| -1. |]));
  Alcotest.(check bool) "infinite raises" true
    (raises (fun () -> Sim.Stats.ratio_summary_in_place [| 1.; infinity |]))

(* ------------------------------------------------------------------ *)
(* Timer-wheel lazy allocation                                         *)
(* ------------------------------------------------------------------ *)

let test_eq_wheel_lazy_bypass () =
  let eq = Sim.Event_queue.create () in
  let fired = ref 0 in
  for i = 1 to 200 do
    Sim.Event_queue.schedule eq
      ~at:(float_of_int i *. 0.01)
      (fun () -> incr fired)
  done;
  Alcotest.(check bool)
    "small queue never allocates the wheel" false
    (Sim.Event_queue.wheel_allocated eq);
  Alcotest.(check int) "pending counts inserts" 200 (Sim.Event_queue.pending eq);
  for i = 201 to 300 do
    Sim.Event_queue.schedule eq
      ~at:(float_of_int i *. 0.01)
      (fun () -> incr fired)
  done;
  Alcotest.(check bool)
    "wheel allocates past the threshold" true
    (Sim.Event_queue.wheel_allocated eq);
  Alcotest.(check int) "pending after growth" 300 (Sim.Event_queue.pending eq);
  (* Partial drain: the O(1) counter must track pops and survive the
     internal wheel-to-heap migrations. *)
  Sim.Event_queue.run_until eq 1.;
  Alcotest.(check int) "fired through t=1" 100 !fired;
  Alcotest.(check int) "pending mid-run" 200 (Sim.Event_queue.pending eq);
  Sim.Event_queue.run_until eq 10.;
  Alcotest.(check int) "all fired" 300 !fired;
  Alcotest.(check int) "drained" 0 (Sim.Event_queue.pending eq)

(* ------------------------------------------------------------------ *)
(* Population engine                                                   *)
(* ------------------------------------------------------------------ *)

(* Scaled-down census cell: same shape as E19 (Poisson arrivals over the
   front of the run, Pareto sizes, one bottleneck) but small enough for
   the test suite. *)
let population_cfg ?(n = 1500) ?(seed = 11) ?(key = "test/pop")
    ?(jitter_d = 0.) () =
  let mss = 1500 in
  let rate = 7.5e6 (* 60 Mbit/s *) in
  let load = 0.7 and arrival_frac = 0.6 in
  let xm = float_of_int (10 * mss) in
  let mean_size = 3. *. xm in
  let duration =
    float_of_int n *. mean_size /. (load *. rate *. arrival_frac)
  in
  {
    Sim.Population.n;
    duration;
    arrival_frac;
    rate;
    buffer = Some 262_144;
    rm = 0.02;
    mss;
    jitter_d;
    seed;
    key;
    alpha = 1.5;
    xm;
    size_cap = 1_000_000;
  }

let boxed_reno ~slot:_ ~prev:_ = Cca.instance_of (Reno.make ())

let goodputs_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

let test_population_recycles_slots () =
  let cfg = population_cfg () in
  let r = Sim.Population.run ~cca:boxed_reno cfg in
  Alcotest.(check int) "spawned = n" cfg.Sim.Population.n r.Sim.Population.spawned;
  Alcotest.(check bool)
    "most flows complete" true
    (r.Sim.Population.completed > cfg.Sim.Population.n / 2);
  (* The point of the engine: resources scale with peak concurrency. *)
  Alcotest.(check bool)
    (Printf.sprintf "slots (%d) well below n" r.Sim.Population.slots)
    true
    (r.Sim.Population.slots < cfg.Sim.Population.n / 4);
  Alcotest.(check bool)
    "slots cover peak concurrency" true
    (r.Sim.Population.slots >= r.Sim.Population.peak_active);
  Alcotest.(check bool)
    (Printf.sprintf "table capacity (%d) bounded by concurrency, not n"
       r.Sim.Population.table_capacity)
    true
    (r.Sim.Population.table_capacity < cfg.Sim.Population.n);
  Alcotest.(check bool)
    "event queue bounded by concurrency" true
    (r.Sim.Population.peak_pending < 4096);
  Alcotest.(check int) "no delay-line fallbacks" 0 r.Sim.Population.fallbacks;
  Alcotest.(check bool)
    "goodputs finite and non-negative" true
    (Array.for_all
       (fun g -> Float.is_finite g && g >= 0.)
       r.Sim.Population.goodputs);
  Alcotest.(check bool)
    "someone made progress" true
    (Array.exists (fun g -> g > 0.) r.Sim.Population.goodputs)

let test_population_deterministic () =
  let cfg = population_cfg ~n:800 ~jitter_d:0.02 () in
  let r1 = Sim.Population.run ~cca:boxed_reno cfg in
  let r2 = Sim.Population.run ~cca:boxed_reno cfg in
  Alcotest.(check bool)
    "goodputs bit-identical across runs" true
    (goodputs_equal r1.Sim.Population.goodputs r2.Sim.Population.goodputs);
  Alcotest.(check int)
    "completed equal" r1.Sim.Population.completed r2.Sim.Population.completed

(* System-level trace equivalence: a whole census population driven by
   columnar recycled CCA instances produces bit-identical goodputs to one
   driven by fresh boxed instances — per slot, alternating CCA kinds to
   exercise the mixed-cell matrix. *)
let test_population_columnar_equivalence () =
  let cfg = population_cfg ~n:800 ~key:"test/pop-col" ~jitter_d:0.02 () in
  let boxed ~slot ~prev:_ =
    Cca.instance_of (if slot mod 2 = 0 then Reno.make () else Copa.make ())
  in
  let reno_cols = Columns.create ~nfields:Reno.nfields () in
  let copa_cols = Columns.create ~nfields:Copa.nfields () in
  let columnar ~slot ~prev =
    match prev with
    | Some i ->
        (match i.Cca.reset with
        | Some r -> r ()
        | None -> Alcotest.fail "columnar instance lost its reset");
        i
    | None ->
        if slot mod 2 = 0 then Reno.make_in reno_cols
        else Copa.make_in copa_cols
  in
  let rb = Sim.Population.run ~cca:boxed cfg in
  let rc = Sim.Population.run ~cca:columnar cfg in
  Alcotest.(check bool)
    "columnar goodputs bit-identical to boxed" true
    (goodputs_equal rb.Sim.Population.goodputs rc.Sim.Population.goodputs);
  Alcotest.(check int)
    "completed equal" rb.Sim.Population.completed rc.Sim.Population.completed;
  Alcotest.(check bool)
    "arena rows bounded by slots" true
    (Columns.rows reno_cols + Columns.rows copa_cols
    <= rb.Sim.Population.slots)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "pop_exn empty" `Quick test_heap_pop_exn_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "to_sorted preserves" `Quick test_heap_to_sorted_preserves;
          Alcotest.test_case "pop releases elements" `Quick test_heap_pop_releases;
          Alcotest.test_case "clear releases elements" `Quick
            test_heap_clear_releases;
          qt prop_heap_sorts;
          qt prop_heap_interleaved;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_eq_ordering;
          Alcotest.test_case "fifo ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "past rejected" `Quick test_eq_past_rejected;
          Alcotest.test_case "nested" `Quick test_eq_nested_scheduling;
          Alcotest.test_case "run_until excludes future" `Quick
            test_eq_run_until_excludes_future;
          Alcotest.test_case "schedule_after clamps" `Quick
            test_eq_schedule_after_negative_clamped;
          Alcotest.test_case "handle reschedule" `Quick test_eq_handle_reschedule;
          Alcotest.test_case "handle cancel" `Quick test_eq_handle_cancel;
          Alcotest.test_case "handle fifo ties" `Quick test_eq_handle_fifo_ties;
          Alcotest.test_case "step hook" `Quick
            test_eq_step_hook_observes_every_step;
          Alcotest.test_case "wheel lazy bypass" `Quick test_eq_wheel_lazy_bypass;
          qt prop_eq_stable_order;
          qt prop_eq_backend_equivalence;
          Alcotest.test_case "peak at 100k flows" `Slow test_eq_peak_100k_flows;
        ] );
      ( "delay_line",
        [
          Alcotest.test_case "fallback counted" `Quick
            test_delay_line_fallback_counted;
          Alcotest.test_case "one pending event" `Quick
            test_delay_line_one_pending_event;
          qt prop_delay_line_matches_naive;
        ] );
      ( "source",
        [ Alcotest.test_case "poisson count" `Quick test_source_poisson_count ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "stream order independent" `Quick
            test_rng_stream_order_independent;
          Alcotest.test_case "stream labels decorrelated" `Quick
            test_rng_stream_labels_decorrelated;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "pareto" `Quick test_rng_pareto;
          Alcotest.test_case "bool probability" `Quick test_rng_bool_probability;
          qt prop_rng_float_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "online" `Quick test_online_stats;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile single" `Quick test_percentile_single;
          Alcotest.test_case "percentile invalid" `Quick test_percentile_invalid;
          Alcotest.test_case "jain" `Quick test_jain;
          Alcotest.test_case "max min ratio" `Quick test_max_min_ratio;
          Alcotest.test_case "online empty is nan" `Quick test_online_empty_is_nan;
          Alcotest.test_case "online singleton" `Quick test_online_singleton;
          Alcotest.test_case "max min ratio rejects negative" `Quick
            test_max_min_ratio_rejects_negative;
          Alcotest.test_case "ratio summary" `Quick test_ratio_summary;
          Alcotest.test_case "ratio summary rejects" `Quick
            test_ratio_summary_rejects;
          Alcotest.test_case "ratio summary in place degenerate" `Quick
            test_ratio_summary_in_place_degenerate;
          qt prop_jain_bounds;
          qt prop_online_matches_batch_mean;
          qt prop_ratio_summary_finite;
          qt prop_ratio_summary_in_place_matches;
        ] );
      ( "series",
        [
          Alcotest.test_case "value_at" `Quick test_series_value_at;
          Alcotest.test_case "rejects decreasing" `Quick test_series_rejects_decreasing;
          Alcotest.test_case "integral" `Quick test_series_integral;
          Alcotest.test_case "window" `Quick test_series_window;
          Alcotest.test_case "degenerate windows" `Quick
            test_series_degenerate_windows;
          Alcotest.test_case "resample" `Quick test_series_resample;
          Alcotest.test_case "map" `Quick test_series_map;
          Alcotest.test_case "first last" `Quick test_series_first_last;
          qt prop_series_integral_additive;
          qt prop_series_window_queries_match_naive;
        ] );
      ( "jitter",
        [
          Alcotest.test_case "constant" `Quick test_jitter_constant;
          Alcotest.test_case "trace policy" `Quick test_jitter_trace_policy;
          Alcotest.test_case "no reorder" `Quick test_jitter_no_reorder;
          Alcotest.test_case "clamps and counts" `Quick test_jitter_clamps_and_counts;
          Alcotest.test_case "negative clamped" `Quick test_jitter_negative_clamped;
          Alcotest.test_case "violation accounting" `Quick
            test_jitter_violation_accounting;
          Alcotest.test_case "bound riding legal" `Quick
            test_jitter_no_violation_no_excess;
          Alcotest.test_case "create validates" `Quick test_jitter_create_validates;
          qt prop_jitter_uniform_in_bounds;
        ] );
      ( "link",
        [
          Alcotest.test_case "rate_at piecewise" `Quick test_rate_at_piecewise;
          Alcotest.test_case "transmit constant" `Quick test_transmit_end_constant;
          Alcotest.test_case "transmit across segments" `Quick
            test_transmit_end_across_segments;
          Alcotest.test_case "transmit through zero" `Quick
            test_transmit_end_through_zero;
          Alcotest.test_case "dead link" `Quick test_transmit_end_dead_link;
          Alcotest.test_case "fifo service" `Quick test_link_fifo_service;
          Alcotest.test_case "drop tail" `Quick test_link_drop_tail;
          Alcotest.test_case "queue delay" `Quick test_link_queue_delay;
          Alcotest.test_case "counters under full buffer" `Quick
            test_link_counters_under_full_buffer;
          Alcotest.test_case "set_buffer" `Quick test_link_set_buffer;
          QCheck_alcotest.to_alcotest prop_link_conserves_bytes;
          QCheck_alcotest.to_alcotest prop_transmit_end_consistent_with_rate;
          QCheck_alcotest.to_alcotest prop_transmit_end_exact_integral;
        ] );
      ( "aqm",
        [
          Alcotest.test_case "threshold" `Quick test_aqm_threshold;
          Alcotest.test_case "red regimes" `Quick test_aqm_red_regimes;
          Alcotest.test_case "red validates" `Quick test_aqm_red_validates;
          Alcotest.test_case "codel" `Quick test_aqm_codel;
          Alcotest.test_case "codel accelerates" `Quick test_aqm_codel_accelerates;
          Alcotest.test_case "red monotone" `Quick test_aqm_red_monotone_in_depth;
          Alcotest.test_case "link marking" `Quick test_link_ecn_marking;
          Alcotest.test_case "double aqm rejected" `Quick test_link_rejects_double_aqm;
        ] );
      ( "trace-link",
        [
          Alcotest.test_case "transmit_end" `Quick test_opportunities_transmit_end;
          Alcotest.test_case "rate_at" `Quick test_opportunities_rate_at;
          Alcotest.test_case "service at opportunities" `Quick test_opportunities_service;
          Alcotest.test_case "strict advance far from origin" `Quick
            test_opportunities_strict_advance_far_from_origin;
          Alcotest.test_case "cellular mean rate" `Quick test_cellular_trace_mean_rate;
          Alcotest.test_case "cellular validates" `Quick test_cellular_trace_validates;
          Alcotest.test_case "mahimahi loader" `Quick test_mahimahi_loader;
          Alcotest.test_case "mahimahi rejects garbage" `Quick
            test_mahimahi_loader_rejects_garbage;
          Alcotest.test_case "bundled trace" `Quick test_bundled_trace_runs;
          Alcotest.test_case "reno end-to-end" `Quick test_reno_on_cellular_link;
        ] );
      ( "drr",
        [
          Alcotest.test_case "bad quantum" `Quick test_drr_rejects_bad_quantum;
          Alcotest.test_case "interleaves" `Quick test_drr_interleaves_backlogged_flows;
          Alcotest.test_case "unequal demand" `Quick test_drr_equal_service_unequal_demand;
          Alcotest.test_case "work conserving" `Quick test_drr_work_conserving;
          Alcotest.test_case "drr on trace link" `Quick test_drr_on_trace_link;
        ] );
      ( "flow",
        [
          Alcotest.test_case "rto fires" `Quick test_flow_rto_fires;
          Alcotest.test_case "initial pacing" `Quick test_flow_initial_pacing_spreads_sends;
          Alcotest.test_case "dupack detection" `Quick test_flow_dupack_loss_detection;
          Alcotest.test_case "ce propagates" `Quick test_flow_ce_propagates;
          Alcotest.test_case "table memory bounded" `Quick
            test_flow_table_memory_bounded;
          qt prop_flow_ring_growth_conservation;
        ] );
      ( "units",
        [
          Alcotest.test_case "roundtrip" `Quick test_units_roundtrip;
          Alcotest.test_case "extras" `Quick test_units_extras;
        ] );
      ( "network",
        [
          Alcotest.test_case "reno utilizes" `Quick test_network_reno_utilizes;
          Alcotest.test_case "vegas queue target" `Quick test_network_vegas_queue_target;
          Alcotest.test_case "rtt floor" `Quick test_network_rtt_floor;
          Alcotest.test_case "two reno share" `Quick test_network_two_flows_share;
          Alcotest.test_case "constant jitter inflates rtt" `Quick
            test_network_constant_jitter_inflates_rtt;
          Alcotest.test_case "random loss counted" `Quick test_network_random_loss_counted;
          Alcotest.test_case "delayed acks batch" `Quick test_network_delayed_ack_batches;
          Alcotest.test_case "delayed ack timeout flush" `Quick
            test_network_delayed_ack_timeout_flush;
          Alcotest.test_case "ack aggregation quantizes" `Quick
            test_network_ack_aggregation_quantizes;
          Alcotest.test_case "initial queue" `Quick
            test_network_initial_queue_delays_first_rtt;
          Alcotest.test_case "inspect series" `Quick test_flow_inspect_series;
          Alcotest.test_case "config validation" `Quick test_network_config_validation;
          Alcotest.test_case "ack policy validation" `Quick
            test_network_ack_policy_validation;
          Alcotest.test_case "deterministic" `Quick test_network_deterministic;
          Alcotest.test_case "accessor lengths" `Quick test_network_accessor_lengths;
          Alcotest.test_case "start stop" `Quick test_network_flow_start_stop;
          Alcotest.test_case "backend equivalence" `Quick
            test_network_backend_equivalence;
          Alcotest.test_case "sized flow completes" `Quick
            test_network_sized_flow_completes;
          Alcotest.test_case "event queue stays small" `Quick
            test_network_event_queue_peak;
          Alcotest.test_case "minor-words budget" `Quick
            test_network_minor_words_budget;
          qt prop_network_physical_invariants;
        ] );
      ( "population",
        [
          Alcotest.test_case "recycles slots" `Quick
            test_population_recycles_slots;
          Alcotest.test_case "deterministic" `Quick test_population_deterministic;
          Alcotest.test_case "columnar equivalence" `Quick
            test_population_columnar_equivalence;
        ] );
    ]
