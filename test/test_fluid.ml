(* Tests for lib/fluid: the backend selector, the fixed-step fluid
   engine's byte ledger and determinism, the fluid census, and the
   cross-validation oracles in lib/validate/fluid_oracle. *)

let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Backend selector                                                    *)
(* ------------------------------------------------------------------ *)

let test_backend_round_trip () =
  List.iter
    (fun b ->
      let s = Fluid.Backend.to_string b in
      match Fluid.Backend.of_string s with
      | Ok b' ->
          Alcotest.(check string)
            (Printf.sprintf "round-trip %s" s)
            s
            (Fluid.Backend.to_string b')
      | Error e -> Alcotest.failf "round-trip %s rejected: %s" s e)
    Fluid.Backend.all;
  (match Fluid.Backend.of_string "FLUID" with
  | Ok Fluid.Backend.Fluid -> ()
  | _ -> Alcotest.fail "of_string is case-insensitive");
  match Fluid.Backend.of_string "quantum" with
  | Ok _ -> Alcotest.fail "unknown backend accepted"
  | Error msg ->
      List.iter
        (fun b ->
          let name = Fluid.Backend.to_string b in
          let mentions =
            let len = String.length name in
            let n = String.length msg in
            let rec scan i =
              i + len <= n && (String.sub msg i len = name || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "error names %s" name)
            true mentions)
        Fluid.Backend.all

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let engine_config ?(rate = 1.25e6) ?(rm = 0.04) ?(duration = 30.)
    ?(nflows = 2) law =
  let flows =
    List.init nflows (fun _ -> Fluid.Engine.flow ~mss:1500. law)
  in
  Fluid.Engine.config ~rate ~buffer:(2. *. rate *. rm) ~rm ~duration flows

let test_engine_conservation () =
  List.iter
    (fun (name, law) ->
      let eng = Fluid.Engine.run_config (engine_config law) in
      let accepted = Fluid.Engine.accepted_total eng in
      let err = Fluid.Engine.conservation_error eng in
      Alcotest.(check bool)
        (Printf.sprintf "%s: flows actually sent" name)
        true (accepted > 0.);
      Alcotest.(check bool)
        (Printf.sprintf "%s: ledger closes (err %.3g)" name err)
        true
        (err <= 1. +. 1e-6 *. accepted))
    [
      ("reno", Ccac.Model.reno_fluid);
      ("copa", Ccac.Model.copa_fluid ());
      ("vegas", Ccac.Model.vegas_fluid ());
    ]

let test_engine_deterministic () =
  let run () =
    let eng = Fluid.Engine.run_config (engine_config Ccac.Model.reno_fluid) in
    ( Fluid.Engine.steps eng,
      Int64.bits_of_float (Fluid.Engine.served_total eng),
      Int64.bits_of_float (Fluid.Engine.queue_bytes eng),
      Int64.bits_of_float (Fluid.Engine.flow_cwnd eng 0) )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bitwise-identical reruns" true (a = b)

let test_engine_symmetric_fairness () =
  (* Two identical Reno flows on one link: equilibrium shares within a
     sawtooth band of each other, and the link is near-saturated. *)
  let rate = 1.25e6 in
  let eng =
    Fluid.Engine.run_config
      (engine_config ~rate ~duration:60. Ccac.Model.reno_fluid)
  in
  let r0 = Fluid.Engine.goodput eng 0 and r1 = Fluid.Engine.goodput eng 1 in
  let ratio = Float.max r0 r1 /. Float.min r0 r1 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput ratio %.3f < 1.5" ratio)
    true (ratio < 1.5);
  let util = (r0 +. r1) /. rate in
  Alcotest.(check bool)
    (Printf.sprintf "utilisation %.2f in [0.6, 1.01]" util)
    true
    (util > 0.6 && util < 1.01)

let prop_engine_conservation =
  QCheck.Test.make ~name:"fluid ledger closes for arbitrary small configs"
    ~count:25
    QCheck.(
      triple (1 -- 4)
        (float_range 2.5e5 5e6)
        (float_range 0.01 0.08))
    (fun (nflows, rate, rm) ->
      let eng =
        Fluid.Engine.run_config
          (engine_config ~nflows ~rate ~rm ~duration:20.
             (Ccac.Model.copa_fluid ()))
      in
      Fluid.Engine.conservation_error eng
      <= 1. +. (1e-6 *. Fluid.Engine.accepted_total eng))

(* ------------------------------------------------------------------ *)
(* Census                                                              *)
(* ------------------------------------------------------------------ *)

let test_census_smoke () =
  let n = 300 in
  let mss = 1500. in
  let cfg =
    Fluid.Census.config ~key:"test/fluid-census" ~seed:42 ~n ~duration:120.
      ~arrival_frac:0.6 ~rate:7.5e6 ~rm:0.04 ~mss ~jitter_d:0.01 ~alpha:1.5
      ~xm:(10. *. mss) ~size_cap:(3000. *. mss)
      (Ccac.Model.copa_fluid ())
  in
  let res = Fluid.Census.run cfg in
  Alcotest.(check int) "goodput per flow" n (Array.length res.Fluid.Census.goodputs);
  Alcotest.(check bool) "most flows complete" true
    (res.Fluid.Census.completed > n / 2);
  Alcotest.(check bool) "population overlapped" true
    (res.Fluid.Census.peak_active > 1);
  Alcotest.(check bool) "goodputs finite and non-negative" true
    (Array.for_all
       (fun g -> Float.is_finite g && g >= 0.)
       res.Fluid.Census.goodputs);
  Alcotest.(check bool) "census ledger closes" true
    (res.Fluid.Census.conservation_error
    <= 1. +. (1e-6 *. res.Fluid.Census.offered_bytes))

let test_census_deterministic () =
  let cfg () =
    Fluid.Census.config ~key:"test/fluid-census-det" ~seed:7 ~n:120
      ~duration:60. ~arrival_frac:0.6 ~rate:7.5e6 ~rm:0.04 ~mss:1500.
      ~jitter_d:0.005 ~alpha:1.5 ~xm:15000. ~size_cap:1.5e6
      (Ccac.Model.vegas_fluid ())
  in
  let a = Fluid.Census.run (cfg ()) and b = Fluid.Census.run (cfg ()) in
  Alcotest.(check int) "same completions" a.Fluid.Census.completed
    b.Fluid.Census.completed;
  Alcotest.(check bool) "bitwise-identical goodputs" true
    (Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a.Fluid.Census.goodputs b.Fluid.Census.goodputs)

(* ------------------------------------------------------------------ *)
(* Cross-validation oracles                                            *)
(* ------------------------------------------------------------------ *)

let check_verdicts name vs =
  Alcotest.(check bool) "ran something" true (vs <> []);
  match Validate.Oracle.failures vs with
  | [] -> ()
  | fs ->
      Alcotest.failf "%s: %d oracle failure(s):\n%s" name (List.length fs)
        (String.concat "\n" (List.map Validate.Oracle.to_string fs))

let test_fluid_oracle_agreement () =
  check_verdicts "fluid-vs-packet agreement"
    (Validate.Fluid_oracle.all ~quick:true ())

let test_hybrid_threshold () =
  check_verdicts "hybrid threshold"
    (Validate.Fluid_oracle.hybrid_threshold ())

let () =
  Alcotest.run "fluid"
    [
      ( "backend",
        [ Alcotest.test_case "round trip" `Quick test_backend_round_trip ] );
      ( "engine",
        [
          Alcotest.test_case "conservation" `Quick test_engine_conservation;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "symmetric fairness" `Quick
            test_engine_symmetric_fairness;
          qt prop_engine_conservation;
        ] );
      ( "census",
        [
          Alcotest.test_case "smoke" `Quick test_census_smoke;
          Alcotest.test_case "deterministic" `Quick test_census_deterministic;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "fluid vs packet" `Slow test_fluid_oracle_agreement;
          Alcotest.test_case "hybrid threshold" `Slow test_hybrid_threshold;
        ] );
    ]
