(* Fault-injection layer and runtime invariant monitor.

   Three layers of coverage: unit tests for the Fault plan compiler and
   the Invariant recorder; targeted recovery tests (a blackout must not
   deadlock any CCA, and a pathological CCA whose window collapses to
   zero must be un-wedged by the stall probe); and a randomized chaos
   harness — seeds x scenarios x CCAs, every run monitored — asserting
   the simulator's own conservation laws hold under every fault, results
   replay bit-identically per seed, and every flow recovers after a
   blackout shorter than the run. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Fault plan: validation and rate compilation                         *)
(* ------------------------------------------------------------------ *)

let test_plan_validation () =
  let rejects evs =
    try
      ignore (Sim.Fault.plan evs);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty blackout window" true
    (rejects [ Sim.Fault.Link_blackout { t0 = 2.; t1 = 2. } ]);
  Alcotest.(check bool) "negative time" true
    (rejects [ Sim.Fault.Link_blackout { t0 = -1.; t1 = 2. } ]);
  Alcotest.(check bool) "negative rate" true
    (rejects [ Sim.Fault.Rate_step { at = 0.; rate = -1. } ]);
  Alcotest.(check bool) "negative buffer" true
    (rejects [ Sim.Fault.Buffer_resize { at = 0.; buffer = Some (-5) } ]);
  Alcotest.(check bool) "negative flow" true
    (rejects [ Sim.Fault.Ack_blackhole { flow = -1; t0 = 0.; t1 = 1. } ]);
  Alcotest.(check bool) "probability above 1" true
    (rejects
       [
         Sim.Fault.Bursty_loss
           { flow = 0; t0 = 0.; t1 = 1.; p_enter = 1.5; p_exit = 0.1;
             loss_good = 0.; loss_bad = 0.5 };
       ]);
  Alcotest.(check bool) "unrecoverable loss_bad" true
    (rejects
       [
         Sim.Fault.Bursty_loss
           { flow = 0; t0 = 0.; t1 = 1.; p_enter = 0.1; p_exit = 0.;
             loss_good = 0.; loss_bad = 1. };
       ]);
  Alcotest.(check bool) "empty plan is fine" true
    (Sim.Fault.is_empty (Sim.Fault.plan []));
  ignore
    (Sim.Fault.plan
       [
         Sim.Fault.Link_blackout { t0 = 1.; t1 = 2. };
         Sim.Fault.Rate_step { at = 3.; rate = 1e6 };
       ])

let test_compile_rate_blackout () =
  let plan = Sim.Fault.plan [ Sim.Fault.Link_blackout { t0 = 1.; t1 = 2. } ] in
  let r = Sim.Fault.compile_rate plan (Sim.Link.Constant 1000.) in
  check_float "before" 1000. (Sim.Link.rate_at r 0.5);
  check_float "during" 0. (Sim.Link.rate_at r 1.5);
  check_float "boundary start is dark" 0. (Sim.Link.rate_at r 1.);
  check_float "after" 1000. (Sim.Link.rate_at r 2.);
  (* The service loop integrates across the dark window. *)
  check_float "transmission spans the blackout" 2.5
    (Sim.Link.transmit_end r ~start:0.5 ~bytes:1000)

let test_compile_rate_steps () =
  let plan =
    Sim.Fault.plan
      [
        Sim.Fault.Rate_step { at = 1.; rate = 500. };
        Sim.Fault.Rate_step { at = 2.; rate = 2000. };
        Sim.Fault.Link_blackout { t0 = 1.5; t1 = 1.6 };
      ]
  in
  let r = Sim.Fault.compile_rate plan (Sim.Link.Constant 1000.) in
  check_float "base before first step" 1000. (Sim.Link.rate_at r 0.5);
  check_float "first step" 500. (Sim.Link.rate_at r 1.2);
  check_float "blackout wins over step" 0. (Sim.Link.rate_at r 1.55);
  check_float "step resumes after blackout" 500. (Sim.Link.rate_at r 1.8);
  check_float "second step" 2000. (Sim.Link.rate_at r 3.)

let test_compile_rate_piecewise_base () =
  let base = Sim.Link.Piecewise [| (0., 1000.); (4., 4000.) |] in
  let plan = Sim.Fault.plan [ Sim.Fault.Link_blackout { t0 = 1.; t1 = 2. } ] in
  let r = Sim.Fault.compile_rate plan base in
  check_float "base seg 0" 1000. (Sim.Link.rate_at r 0.5);
  check_float "dark" 0. (Sim.Link.rate_at r 1.5);
  check_float "base restored" 1000. (Sim.Link.rate_at r 3.);
  check_float "base seg 1 survives" 4000. (Sim.Link.rate_at r 5.)

let test_compile_rate_passthrough_and_opportunities () =
  let base = Sim.Link.Constant 7. in
  Alcotest.(check bool) "no link faults -> base unchanged" true
    (Sim.Fault.compile_rate
       (Sim.Fault.plan [ Sim.Fault.Ack_blackhole { flow = 0; t0 = 0.; t1 = 1. } ])
       base
    == base);
  let opp = Sim.Link.Opportunities { times = [| 0. |]; period = 1.; bytes = 1500 } in
  Alcotest.(check bool) "opportunities + blackout rejected" true
    (try
       ignore
         (Sim.Fault.compile_rate
            (Sim.Fault.plan [ Sim.Fault.Link_blackout { t0 = 0.; t1 = 1. } ])
            opp);
       false
     with Invalid_argument _ -> true)

let test_fault_runtime_drops () =
  let plan =
    Sim.Fault.plan
      [
        Sim.Fault.Ack_blackhole { flow = 0; t0 = 1.; t1 = 2. };
        Sim.Fault.Bursty_loss
          { flow = 1; t0 = 0.; t1 = 10.; p_enter = 1.; p_exit = 0.;
            loss_good = 0.; loss_bad = 0.9 };
      ]
  in
  let f = Sim.Fault.instantiate plan ~nflows:2 ~rng:(Sim.Rng.create ~seed:3) in
  Alcotest.(check bool) "outside window" false (Sim.Fault.ack_drop f ~flow:0 ~now:0.5);
  Alcotest.(check bool) "inside window" true (Sim.Fault.ack_drop f ~flow:0 ~now:1.5);
  Alcotest.(check bool) "end exclusive" false (Sim.Fault.ack_drop f ~flow:0 ~now:2.);
  Alcotest.(check bool) "other flow untouched" false
    (Sim.Fault.ack_drop f ~flow:1 ~now:1.5);
  Alcotest.(check int) "ack drop counted" 1 (Sim.Fault.ack_drops f).(0);
  (* p_enter = 1: the chain is bad from the first packet; ~90% drops. *)
  let dropped = ref 0 in
  for _ = 1 to 1000 do
    if Sim.Fault.data_drop f ~flow:1 ~now:5. then incr dropped
  done;
  Alcotest.(check bool)
    (Printf.sprintf "bursty drops near 900 (%d)" !dropped)
    true
    (!dropped > 800 && !dropped < 980);
  Alcotest.(check int) "data drops counted" !dropped (Sim.Fault.data_drops f).(1);
  Alcotest.(check int) "clean flow has none" 0 (Sim.Fault.data_drops f).(0)

let test_fault_runtime_deterministic () =
  let plan =
    Sim.Fault.plan
      [
        Sim.Fault.Bursty_loss
          { flow = 0; t0 = 0.; t1 = 10.; p_enter = 0.1; p_exit = 0.3;
            loss_good = 0.01; loss_bad = 0.5 };
      ]
  in
  let sequence () =
    let f = Sim.Fault.instantiate plan ~nflows:1 ~rng:(Sim.Rng.create ~seed:11) in
    List.init 500 (fun _ -> Sim.Fault.data_drop f ~flow:0 ~now:1.)
  in
  Alcotest.(check (list bool)) "same seed, same chain" (sequence ()) (sequence ())

(* ------------------------------------------------------------------ *)
(* Invariant monitor                                                   *)
(* ------------------------------------------------------------------ *)

let test_invariant_recorder () =
  let inv = Sim.Invariant.create ~max_recorded:2 () in
  Alcotest.(check bool) "fresh monitor ok" true (Sim.Invariant.ok inv);
  let lazy_forced = ref false in
  Sim.Invariant.check inv ~time:0. ~name:"a"
    ~detail:(fun () -> lazy_forced := true; "boom")
    true;
  Alcotest.(check bool) "detail lazy on pass" false !lazy_forced;
  Sim.Invariant.check inv ~time:1. ~name:"a" ~detail:(fun () -> "first") false;
  Sim.Invariant.check inv ~time:2. ~name:"b" ~detail:(fun () -> "second") false;
  Sim.Invariant.check inv ~time:3. ~name:"a" ~detail:(fun () -> "third") false;
  Alcotest.(check int) "total exact despite cap" 3 (Sim.Invariant.count inv);
  Alcotest.(check int) "checks run" 4 (Sim.Invariant.checks_run inv);
  Alcotest.(check bool) "not ok" false (Sim.Invariant.ok inv);
  let recorded = Sim.Invariant.violations inv in
  Alcotest.(check int) "recording capped" 2 (List.length recorded);
  Alcotest.(check string) "oldest first" "first"
    (List.hd recorded).Sim.Invariant.detail;
  Alcotest.(check (list (pair string int))) "per-check tally"
    [ ("a", 2); ("b", 1) ]
    (Sim.Invariant.by_check inv);
  Alcotest.(check string) "summary" "3 violations in 4 checks: a x2, b x1"
    (Sim.Invariant.summary inv)

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let rate = Sim.Units.mbps 12.
let rm = 0.04
let buffer = 64 * 1500

let delivered_at flow t =
  match Sim.Series.value_at (Sim.Flow.delivered_series flow) t with
  | Some v -> v
  | None -> 0.

let run_faulted ?(flows = 1) ?(duration = 8.) ?(seed = 1) ~events mk =
  Sim.Network.run_config
    (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm ~seed
       ~faults:(Sim.Fault.plan events) ~monitor_period:0.05 ~duration
       (List.init flows (fun _ -> Sim.Network.flow (mk ()))))

let test_blackout_recovery () =
  (* A 1.2 s total blackout mid-run: every CCA must resume delivering
     after the link comes back, with zero invariant violations. *)
  List.iter
    (fun (name, mk) ->
      let net =
        run_faulted ~events:[ Sim.Fault.Link_blackout { t0 = 3.; t1 = 4.2 } ] mk
      in
      let flow = (Sim.Network.flows net).(0) in
      let during = delivered_at flow 4.2 -. delivered_at flow 3.1 in
      let after = delivered_at flow 8. -. delivered_at flow 4.3 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: starved during blackout (%.0f B)" name during)
        true
        (during < 0.05 *. rate *. 1.2);
      Alcotest.(check bool)
        (Printf.sprintf "%s: recovered after blackout (%.0f B)" name after)
        true
        (after > 0.2 *. rate *. 3.5);
      match Sim.Network.invariant net with
      | Some inv ->
          Alcotest.(check string)
            (name ^ ": no violations")
            "" (if Sim.Invariant.ok inv then "" else Sim.Invariant.summary inv)
      | None -> Alcotest.fail "monitor requested but absent")
    [
      ("reno", fun () -> Reno.make ());
      ("cubic", fun () -> Cubic.make ());
      ("bbr", fun () -> Bbr.make ());
      ("vegas", fun () -> Vegas.make ());
    ]

(* A pathological CCA: a timeout collapses its window to zero forever.
   Without the stall probe the flow would deadlock after the first
   blackout; with it, the probe keeps forcing one segment per RTO and
   the flow keeps (slowly) delivering. *)
let wedge_cca () =
  let cwnd = ref 10_500. in
  {
    Cca.name = "wedge";
    on_ack = (fun _ -> ());
    on_loss = (fun info -> if info.Cca.kind = `Timeout then cwnd := 0.);
    on_send = (fun _ -> ());
    on_timer = (fun _ -> ());
    next_timer = (fun () -> None);
    cwnd = (fun () -> !cwnd);
    pacing_rate = (fun () -> None);
    inspect = (fun () -> []);
  }

let test_stall_probe_unwedges () =
  let net =
    run_faulted ~duration:10.
      ~events:[ Sim.Fault.Link_blackout { t0 = 2.; t1 = 3. } ]
      wedge_cca
  in
  let flow = (Sim.Network.flows net).(0) in
  Alcotest.(check bool) "window collapsed to zero" true
    ((Sim.Flow.cca flow).Cca.cwnd () = 0.);
  Alcotest.(check bool) "stall probes fired" true (Sim.Flow.stall_probes flow > 0);
  let after = delivered_at flow 10. -. delivered_at flow 3. in
  Alcotest.(check bool)
    (Printf.sprintf "still delivering after collapse (%.0f B)" after)
    true (after > 0.);
  match Sim.Network.invariant net with
  | Some inv ->
      Alcotest.(check string) "no violations" ""
        (if Sim.Invariant.ok inv then "" else Sim.Invariant.summary inv)
  | None -> Alcotest.fail "monitor requested but absent"

let test_cca_sanity_clamp () =
  (* A CCA emitting NaN outputs is clamped (degraded counter) and the
     monitor's cca-sane check reports it — the run itself stays finite. *)
  let nan_cca () =
    {
      Cca.name = "nan";
      on_ack = (fun _ -> ());
      on_loss = (fun _ -> ());
      on_send = (fun _ -> ());
      on_timer = (fun _ -> ());
      next_timer = (fun () -> None);
      cwnd = (fun () -> Float.nan);
      pacing_rate = (fun () -> Some Float.nan);
      inspect = (fun () -> []);
    }
  in
  let net = run_faulted ~duration:2. ~events:[] nan_cca in
  let flow = (Sim.Network.flows net).(0) in
  Alcotest.(check bool) "degraded counted" true (Sim.Flow.degraded_count flow > 0);
  Alcotest.(check bool) "flow still made progress" true
    (Sim.Flow.delivered_bytes flow > 0);
  match Sim.Network.invariant net with
  | Some inv ->
      Alcotest.(check bool) "cca-sane violations reported" true
        (List.mem_assoc "cca-sane" (Sim.Invariant.by_check inv));
      Alcotest.(check bool) "conservation still holds" false
        (List.mem_assoc "link-conservation" (Sim.Invariant.by_check inv))
  | None -> Alcotest.fail "monitor requested but absent"

(* ------------------------------------------------------------------ *)
(* Chaos harness                                                       *)
(* ------------------------------------------------------------------ *)

(* Scenario matrix: flow 0 takes the per-flow faults; the link-level
   faults hit everyone.  Windows sized for an 8 s run. *)
let chaos_scenarios =
  [
    ("blackout", [ Sim.Fault.Link_blackout { t0 = 3.; t1 = 4. } ]);
    ( "rate-renegotiation",
      [
        Sim.Fault.Rate_step { at = 2.5; rate = rate /. 5. };
        Sim.Fault.Rate_step { at = 5.5; rate };
      ] );
    ( "bursty-loss",
      [
        Sim.Fault.Bursty_loss
          { flow = 0; t0 = 2.; t1 = 6.; p_enter = 0.05; p_exit = 0.25;
            loss_good = 0.; loss_bad = 0.5 };
      ] );
    ("ack-blackhole", [ Sim.Fault.Ack_blackhole { flow = 0; t0 = 3.; t1 = 3.8 } ]);
    ( "buffer-shrink",
      [
        Sim.Fault.Buffer_resize { at = 3.; buffer = Some (4 * 1500) };
        Sim.Fault.Buffer_resize { at = 5.5; buffer = Some buffer };
      ] );
  ]

let chaos_ccas =
  [
    ("reno", fun seed -> ignore seed; Reno.make ());
    ("cubic", fun seed -> ignore seed; Cubic.make ());
    ("bbr", fun seed -> Bbr.make ~params:{ Bbr.default_params with seed } ());
  ]

type chaos_result = {
  delivered : int array;
  lost : int array;
  link_delivered : int;
  link_drops : int;
  data_drops : int array;
  ack_drops : int array;
  stall_probes : int array;
  violations : int;
}

let chaos_run ~seed ~events ~mk =
  let duration = 8. in
  let net =
    Sim.Network.run_config
      (Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm ~seed
         ~faults:(Sim.Fault.plan events) ~monitor_period:0.05 ~duration
         [
           Sim.Network.flow (mk seed);
           Sim.Network.flow ~extra_rm:0.02 (mk (seed + 1000));
         ])
  in
  let flows = Sim.Network.flows net in
  ( net,
    {
      delivered = Array.map Sim.Flow.delivered_bytes flows;
      lost = Array.map Sim.Flow.lost_bytes flows;
      link_delivered = Sim.Link.delivered_bytes (Sim.Network.link net);
      link_drops = Sim.Link.drops (Sim.Network.link net);
      data_drops = Sim.Network.fault_data_drops net;
      ack_drops = Sim.Network.fault_ack_drops net;
      stall_probes = Array.map Sim.Flow.stall_probes flows;
      violations =
        (match Sim.Network.invariant net with
        | Some inv -> Sim.Invariant.count inv
        | None -> -1);
    } )

let test_chaos () =
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let runs = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun (scen, events) ->
          List.iter
            (fun (cca_name, mk) ->
              incr runs;
              let label = Printf.sprintf "%s/%s/seed%d" cca_name scen seed in
              let net, r = chaos_run ~seed ~events ~mk in
              Alcotest.(check int) (label ^ ": zero violations") 0 r.violations;
              Array.iteri
                (fun i d ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: flow %d delivered" label i)
                    true (d > 0))
                r.delivered;
              (* Every flow must resume delivering once a blackout ends. *)
              if scen = "blackout" then
                Array.iter
                  (fun f ->
                    let after = delivered_at f 8. -. delivered_at f 4.1 in
                    Alcotest.(check bool)
                      (Printf.sprintf "%s: flow %d recovered" label (Sim.Flow.id f))
                      true (after > 0.))
                  (Sim.Network.flows net))
            chaos_ccas)
        chaos_scenarios)
    seeds;
  Alcotest.(check bool)
    (Printf.sprintf "at least 50 randomized runs (%d)" !runs)
    true (!runs >= 50)

let test_chaos_deterministic () =
  (* Bit-identical replay: every integer counter matches across two runs
     of every scenario with the same seed. *)
  List.iter
    (fun (scen, events) ->
      let _, a = chaos_run ~seed:7 ~events ~mk:(fun s -> ignore s; Reno.make ()) in
      let _, b = chaos_run ~seed:7 ~events ~mk:(fun s -> ignore s; Reno.make ()) in
      let lbl what = Printf.sprintf "%s: %s identical" scen what in
      Alcotest.(check (array int)) (lbl "delivered") a.delivered b.delivered;
      Alcotest.(check (array int)) (lbl "lost") a.lost b.lost;
      Alcotest.(check int) (lbl "link delivered") a.link_delivered b.link_delivered;
      Alcotest.(check int) (lbl "link drops") a.link_drops b.link_drops;
      Alcotest.(check (array int)) (lbl "fault data drops") a.data_drops b.data_drops;
      Alcotest.(check (array int)) (lbl "fault ack drops") a.ack_drops b.ack_drops;
      Alcotest.(check (array int)) (lbl "stall probes") a.stall_probes b.stall_probes)
    chaos_scenarios

let test_no_fault_runs_unchanged () =
  (* An empty plan must leave the RNG split sequence alone: a config with
     [~faults:Fault.none] replays exactly like one without the option. *)
  let mk ~with_faults =
    let cfg =
      if with_faults then
        Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm ~seed:5
          ~faults:Sim.Fault.none ~duration:6.
          [ Sim.Network.flow ~loss_rate:0.02 (Reno.make ()) ]
      else
        Sim.Network.config ~rate:(Sim.Link.Constant rate) ~buffer ~rm ~seed:5
          ~duration:6.
          [ Sim.Network.flow ~loss_rate:0.02 (Reno.make ()) ]
    in
    let net = Sim.Network.run_config cfg in
    ( Sim.Flow.delivered_bytes (Sim.Network.flows net).(0),
      (Sim.Network.random_losses net).(0) )
  in
  let d1, l1 = mk ~with_faults:true and d2, l2 = mk ~with_faults:false in
  Alcotest.(check int) "delivered identical" d2 d1;
  Alcotest.(check int) "random losses identical" l2 l1

let () =
  Alcotest.run "faults"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "compile blackout" `Quick test_compile_rate_blackout;
          Alcotest.test_case "compile steps" `Quick test_compile_rate_steps;
          Alcotest.test_case "compile piecewise base" `Quick
            test_compile_rate_piecewise_base;
          Alcotest.test_case "passthrough and opportunities" `Quick
            test_compile_rate_passthrough_and_opportunities;
          Alcotest.test_case "runtime drops" `Quick test_fault_runtime_drops;
          Alcotest.test_case "runtime deterministic" `Quick
            test_fault_runtime_deterministic;
        ] );
      ( "invariant",
        [ Alcotest.test_case "recorder" `Quick test_invariant_recorder ] );
      ( "recovery",
        [
          Alcotest.test_case "blackout recovery" `Slow test_blackout_recovery;
          Alcotest.test_case "stall probe unwedges" `Quick test_stall_probe_unwedges;
          Alcotest.test_case "cca sanity clamp" `Quick test_cca_sanity_clamp;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "75 monitored runs" `Slow test_chaos;
          Alcotest.test_case "bit-identical replay" `Slow test_chaos_deterministic;
          Alcotest.test_case "no-fault runs unchanged" `Quick
            test_no_fault_runs_unchanged;
        ] );
    ]
